(* Tests for the echoc serve stack: the content-addressed plan cache
   (hit/miss, LRU eviction under a byte cap, single-flight compiles), the
   request engine (protocol, same-shape eval batching, tenant budgets), the
   real-corpus loader, and the Unix-socket server end to end.

   The load-bearing properties are differential: a cache-served executable
   must train bit-identically to a cold-compiled one (the served executor
   comes from a different build, so the loop feeds it by name), and a
   stacked eval batch must score every member bit-identically to a serial
   run — at every domain count. *)

open Echo_tensor
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor
module Language_model = Echo_models.Language_model
module Model = Echo_models.Model
module Params = Echo_models.Params
module Loop = Echo_train.Loop
module Optimizer = Echo_train.Optimizer
module Corpus = Echo_workloads.Corpus
module Plan_cache = Echo_serve.Plan_cache
module Engine = Echo_serve.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let lm_cfg ?(hidden = 8) ?(batch = 2) ?(seq_len = 4) ?(vocab = 20) () =
  {
    Language_model.ptb_default with
    Language_model.hidden;
    embed = hidden;
    layers = 1;
    seq_len;
    batch;
    vocab;
    dropout = 0.0;
    seed = 42;
  }

let training_graph cfg =
  let lm = Language_model.build cfg in
  (lm, (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph)

(* Plan_cache: hit/miss accounting and physical sharing. *)

let test_cache_hit_miss () =
  let cache = Plan_cache.create () in
  let _, graph = training_graph (lm_cfg ()) in
  let key = Pipeline.cache_key graph in
  let compiles = ref 0 in
  let compile () =
    incr compiles;
    Pipeline.compile_graph graph
  in
  let e1, hit1 = Plan_cache.fetch cache ~key ~compile in
  let e2, hit2 = Plan_cache.fetch cache ~key ~compile in
  check_bool "first is a miss" false hit1;
  check_bool "second is a hit" true hit2;
  check_int "one compile" 1 !compiles;
  check_bool "same executable served" true
    (Pipeline.executor e1 == Pipeline.executor e2);
  let s = Plan_cache.stats cache in
  check_int "hits" 1 s.Plan_cache.hits;
  check_int "misses" 1 s.Plan_cache.misses;
  check_int "entries" 1 s.Plan_cache.entries;
  check_int "bytes = footprint" (Executor.footprint_bytes (Pipeline.executor e1))
    s.Plan_cache.bytes

(* Distinct knobs must produce distinct keys even on one graph. *)

let test_cache_key_separates_knobs () =
  let _, graph = training_graph (lm_cfg ()) in
  let base = Pipeline.cache_key graph in
  check_bool "budget changes the key" true
    (base <> Pipeline.cache_key ~budget_bytes:1_000_000 graph);
  check_bool "fusion changes the key" true
    (Pipeline.cache_key ~fuse:true graph <> Pipeline.cache_key ~fuse:false graph);
  (* [~oversubscribe:true] keeps the requested domain count even on a
     single-core machine, where [create ~domains:2] would clamp to 1 and
     legitimately produce the same key. *)
  check_bool "runtime changes the key" true
    (Pipeline.cache_key ~runtime:(Parallel.create ~domains:1 ()) graph
    <> Pipeline.cache_key
         ~runtime:(Parallel.create ~domains:2 ~oversubscribe:true ())
         graph);
  check_bool "blocking threshold changes the key" true
    (Pipeline.cache_key ~runtime:(Parallel.create ~blocking_threshold:64 ())
       graph
    <> Pipeline.cache_key
         ~runtime:(Parallel.create ~blocking_threshold:4096 ())
         graph);
  let other = Echo_core.Planner.instantiate "recompute-all" in
  check_bool "planner changes the key" true
    (base <> Pipeline.cache_key ~planner:other graph)

(* LRU eviction under the byte cap: oldest-used entries fall out first; an
   entry that alone exceeds the cap is served but not retained. *)

let test_cache_eviction () =
  let _, g_small = training_graph (lm_cfg ~hidden:4 ()) in
  let _, g_mid = training_graph (lm_cfg ~hidden:6 ()) in
  let _, g_big = training_graph (lm_cfg ~hidden:8 ()) in
  let size g =
    Executor.footprint_bytes (Pipeline.executor (Pipeline.compile_graph g))
  in
  let sz_small = size g_small and sz_mid = size g_mid and sz_big = size g_big in
  (* Cap fits small+mid (and small+big, so evicting mid alone settles the
     cache) but not all three at once. *)
  let cap = sz_small + sz_big + (sz_mid / 2) in
  let cache = Plan_cache.create ~cap_bytes:cap () in
  let fetch g =
    ignore
      (Plan_cache.fetch cache ~key:(Pipeline.cache_key g) ~compile:(fun () ->
           Pipeline.compile_graph g))
  in
  fetch g_small;
  fetch g_mid;
  (* Touch small so mid is the LRU victim. *)
  fetch g_small;
  fetch g_big;
  let s = Plan_cache.stats cache in
  check_bool "under cap" true (s.Plan_cache.bytes <= cap);
  check_int "one eviction" 1 s.Plan_cache.evictions;
  (* small survived (it was touched after mid, so mid was the LRU victim):
     fetching it again is a hit. Check this *before* re-fetching mid — that
     re-insert goes over cap again and evicts the then-LRU entry. *)
  let hits_before = (Plan_cache.stats cache).Plan_cache.hits in
  fetch g_small;
  check_int "recently-used entry survived" (hits_before + 1)
    (Plan_cache.stats cache).Plan_cache.hits;
  (* mid was evicted: fetching it again is a miss. *)
  let before = (Plan_cache.stats cache).Plan_cache.misses in
  fetch g_mid;
  check_int "evicted entry recompiles" (before + 1)
    (Plan_cache.stats cache).Plan_cache.misses;
  (* An entry alone over the cap is compiled but not retained. *)
  let tiny = Plan_cache.create ~cap_bytes:16 () in
  let e, hit =
    Plan_cache.fetch tiny ~key:(Pipeline.cache_key g_small) ~compile:(fun () ->
        Pipeline.compile_graph g_small)
  in
  check_bool "served" false hit;
  check_bool "executable works" true
    (Executor.footprint_bytes (Pipeline.executor e) > 16);
  check_int "not retained" 0 (Plan_cache.stats tiny).Plan_cache.entries

(* Single-flight: concurrent fetches of one missing key run exactly one
   compile; every domain receives the same executable. *)

let test_cache_single_flight () =
  let cache = Plan_cache.create () in
  let _, graph = training_graph (lm_cfg ()) in
  let key = Pipeline.cache_key graph in
  let compiles = Atomic.make 0 in
  let compile () =
    Atomic.incr compiles;
    (* Widen the race window so every domain is in-flight together. *)
    Unix.sleepf 0.05;
    Pipeline.compile_graph graph
  in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Plan_cache.fetch cache ~key ~compile))
  in
  let results = List.map Domain.join workers in
  check_int "exactly one compile" 1 (Atomic.get compiles);
  let exes = List.map (fun (e, _) -> Pipeline.executor e) results in
  List.iter
    (fun e -> check_bool "all share one executable" true (e == List.hd exes))
    exes;
  check_int "one miss" 1 (Plan_cache.stats cache).Plan_cache.misses;
  check_int "three waiter hits" 3 (Plan_cache.stats cache).Plan_cache.hits

(* A failing compile releases the key instead of wedging later fetches. *)

let test_cache_failed_compile_releases_key () =
  let cache = Plan_cache.create () in
  let _, graph = training_graph (lm_cfg ()) in
  let key = Pipeline.cache_key ~budget_bytes:1 graph in
  check_bool "budget aborts" true
    (match
       Plan_cache.fetch cache ~key ~compile:(fun () ->
           Pipeline.compile_graph ~budget_bytes:1 graph)
     with
    | _ -> false
    | exception Executor.Budget_exceeded _ -> true);
  let _, hit =
    Plan_cache.fetch cache ~key ~compile:(fun () -> Pipeline.compile_graph graph)
  in
  check_bool "key released for the next fetch" false hit

(* The differential core: a cache-served executable — compiled by a
   *different build* of the same structure, so every node id differs —
   trains bit-identically to a cold compile, at 1, 2 and 4 domains. *)

let train_losses ~runtime ?cache ?(corpus_length = 200) () =
  let cfg = lm_cfg () in
  let lm, graph = training_graph cfg in
  let corpus =
    Corpus.generate ~seed:5 ~vocab:cfg.Language_model.vocab
      ~length:corpus_length
  in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      (Corpus.lm_batches corpus ~batch:cfg.Language_model.batch
         ~seq_len:cfg.Language_model.seq_len ~steps:3)
  in
  let result =
    Loop.train ~graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
      ~runtime ?cache ~batches ()
  in
  result.Loop.losses

let test_cached_train_bit_identical () =
  List.iter
    (fun domains ->
      let runtime = Parallel.create ~domains () in
      let cold = train_losses ~runtime () in
      let cache = Plan_cache.create () in
      (* Prime the cache from an independent build: different node ids,
         same fingerprint. *)
      let _, graph = training_graph (lm_cfg ()) in
      let key = Pipeline.cache_key ~runtime graph in
      ignore
        (Plan_cache.fetch cache ~key ~compile:(fun () ->
             Pipeline.compile_graph ~runtime graph));
      let warm = train_losses ~runtime ~cache:(Plan_cache.hook cache) () in
      let s = Plan_cache.stats cache in
      check_bool
        (Printf.sprintf "training compile served from cache (%d domains)"
           domains)
        true
        (s.Plan_cache.hits >= 1);
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "cached losses bit-identical (%d domains)" domains)
        cold warm)
    [ 1; 2; 4 ]

(* Same-shape eval batching: the stacked step scores every request
   bit-identically to serial execution, at 1, 2 and 4 domains. *)

let eval_lines =
  [
    "eval hidden=8 vocab=20 tokens=1,2,3,4,5";
    "eval hidden=8 vocab=20 tokens=5,4,3,2,1";
    "eval hidden=8 vocab=20 tokens=7,7,7,7,7";
    "eval hidden=8 vocab=20 tokens=0,19,3,11,6";
  ]

let loss_of resp =
  Scanf.sscanf resp "ok loss=%h batched=%d" (fun l k -> (l, k))

let test_batched_eval_bit_identical () =
  List.iter
    (fun domains ->
      let runtime = Parallel.create ~domains () in
      let batched_engine = Engine.create ~runtime () in
      let batched = Engine.exec_all batched_engine eval_lines in
      let serial_engine = Engine.create ~runtime () in
      let serial = List.map (Engine.exec serial_engine) eval_lines in
      List.iter2
        (fun b s ->
          let bl, bk = loss_of b and sl, sk = loss_of s in
          check_int
            (Printf.sprintf "stacked batch of %d (%d domains)"
               (List.length eval_lines) domains)
            (List.length eval_lines) bk;
          check_int "serial batch of 1" 1 sk;
          check_bool
            (Printf.sprintf "bit-identical loss (%d domains)" domains)
            true
            (Int64.equal (Int64.bits_of_float bl) (Int64.bits_of_float sl)))
        batched serial)
    [ 1; 2; 4 ]

(* Tenants: unknown tenants are rejected by name; a tiny budget rejects
   compilation loudly; a batch mixing a budgeted tenant falls back without
   corrupting the unbudgeted request's result. *)

let test_tenant_budgets () =
  let engine =
    Engine.create ~tenants:[ ("tiny", 1); ("big", 64 * 1024 * 1024) ] ()
  in
  let r = Engine.exec engine "compile hidden=8 vocab=20 tenant=nosuch" in
  check_bool "unknown tenant named" true
    (String.length r >= 3
    && String.sub r 0 3 = "err"
    && String.length r > 0
    &&
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    contains r "nosuch");
  let r = Engine.exec engine "compile hidden=8 vocab=20 tenant=tiny" in
  check_string "tiny budget rejected"
    "err budget exceeded: requested=" (String.sub r 0 31);
  let r = Engine.exec engine "compile hidden=8 vocab=20 tenant=big" in
  check_string "big budget compiles" "ok" (String.sub r 0 2);
  (* Batched eval with one member over budget: the stacked step falls back
     to singles; the unbudgeted member still gets the serial-identical
     loss, the budgeted one a loud rejection. *)
  let free_engine = Engine.create () in
  let expected, _ =
    loss_of (Engine.exec free_engine "eval hidden=8 vocab=20 tokens=1,2,3,4,5")
  in
  let responses =
    Engine.exec_all engine
      [
        "eval hidden=8 vocab=20 tokens=1,2,3,4,5";
        "eval hidden=8 vocab=20 tokens=5,4,3,2,1 tenant=tiny";
      ]
  in
  (match responses with
  | [ ok_resp; err_resp ] ->
    let l, _ = loss_of ok_resp in
    check_bool "unbudgeted member unharmed" true
      (Int64.equal (Int64.bits_of_float l) (Int64.bits_of_float expected));
    check_string "budgeted member rejected" "err budget exceeded: requested="
      (String.sub err_resp 0 31)
  | _ -> Alcotest.fail "two responses expected")

(* Protocol failure modes: loud, named errors; no silent fallbacks. *)

let test_protocol_errors () =
  let engine = Engine.create () in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  List.iter
    (fun (req, prefix) ->
      let resp = Engine.exec engine req in
      check_bool
        (Printf.sprintf "%S -> %S" req resp)
        true (starts_with prefix resp))
    [
      ("", "err empty request");
      ("bogus", "err unknown verb \"bogus\"");
      ("ping extra=1", "err unknown key \"extra\" for ping");
      ("compile hidden=nope", "err bad value for hidden: \"nope\"");
      ("compile hidden", "err malformed token \"hidden\"");
      ("compile model=resnet", "err unknown model \"resnet\"");
      ("compile hidden=8 hidden=9", "err duplicate key \"hidden\"");
      ("eval hidden=8 vocab=20", "err eval needs tokens=");
      ("eval hidden=8 vocab=20 tokens=1", "err eval needs at least 2 tokens");
      ("eval hidden=8 vocab=20 tokens=1,99", "err bad token \"99\"");
      ("compile hidden=8 tenant=t", "err unknown tenant \"t\"");
      ("ping", "ok pong");
    ];
  check_bool "create rejects bad tenants" true
    (match Engine.create ~tenants:[ ("a", 0) ] () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "create rejects duplicate tenants" true
    (match Engine.create ~tenants:[ ("a", 1); ("a", 2) ] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Corpus.load_text: PTB-style ingest is a pure function of the file. *)

let test_corpus_load_text () =
  let path = Filename.temp_file "echo_corpus" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "the cat sat\nthe cat ran\n";
      close_out oc;
      let c = Corpus.load_text path in
      (* <eos>=0, then first-appearance order: the=1 cat=2 sat=3 ran=4 *)
      check_int "vocab" 5 (Corpus.vocab c);
      check_int "length" 8 (Corpus.length c);
      Alcotest.(check (list int))
        "token stream"
        [ 1; 2; 3; 0; 1; 2; 4; 0 ]
        (List.init (Corpus.length c) (Corpus.token c));
      Alcotest.(check (array string))
        "dictionary"
        [| "<eos>"; "the"; "cat"; "sat"; "ran" |]
        (Corpus.vocab_words c);
      (* Determinism: a second load builds the identical stream. *)
      let c' = Corpus.load_text path in
      Alcotest.(check (list int))
        "reload identical"
        (List.init (Corpus.length c) (Corpus.token c))
        (List.init (Corpus.length c') (Corpus.token c')));
  check_bool "empty corpus rejected" true
    (let empty = Filename.temp_file "echo_corpus" ".txt" in
     Fun.protect
       ~finally:(fun () -> Sys.remove empty)
       (fun () ->
         match Corpus.load_text empty with
         | _ -> false
         | exception Invalid_argument _ -> true));
  check_bool "missing file rejected" true
    (match Corpus.load_text "/nonexistent/echo.txt" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* End to end over the real Unix socket: the server in a domain, a scripted
   pipelined client session — compile miss, compile hit, batched evals,
   budget rejection, stats, shutdown — and the train response compared
   bit-for-bit against a direct Loop.train of the same request. *)

let read_lines fd n =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let count s = String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 s in
  while count (Buffer.contents buf) < n do
    let r = Unix.read fd chunk 0 (Bytes.length chunk) in
    if r = 0 then failwith "server closed early";
    Buffer.add_subbytes buf chunk 0 r
  done;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let test_socket_end_to_end () =
  let socket = Filename.temp_file "echo_serve" ".sock" in
  Sys.remove socket;
  let engine =
    Engine.create ~tenants:[ ("tiny", 1) ] ~max_batch:8
      ~runtime:(Parallel.create ~domains:1 ())
      ()
  in
  let server = Domain.spawn (fun () -> Echo_serve.Server.serve ~socket engine) in
  (* The server binds asynchronously; poll for the socket file. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec connect () =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd
    with
    | fd -> fd
    | exception Unix.Unix_error _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      connect ()
  in
  let fd = connect () in
  let requests =
    [
      "ping";
      "compile hidden=8 seq_len=4 batch=2 vocab=20";
      "compile hidden=8 seq_len=4 batch=2 vocab=20";
      "train hidden=8 seq_len=4 batch=2 vocab=20 steps=3 lr=0.5";
      "eval hidden=8 vocab=20 tokens=1,2,3,4,5";
      "eval hidden=8 vocab=20 tokens=5,4,3,2,1";
      "compile hidden=8 seq_len=4 batch=2 vocab=20 tenant=tiny";
      "stats";
      "shutdown";
    ]
  in
  let payload = String.concat "\n" requests ^ "\n" in
  let _ = Unix.write_substring fd payload 0 (String.length payload) in
  let responses = read_lines fd (List.length requests) in
  Domain.join server;
  Unix.close fd;
  check_int "one response per request" (List.length requests)
    (List.length responses);
  let nth = List.nth responses in
  check_string "ping" "ok pong" (nth 0);
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  check_bool "first compile is a miss" true
    (starts_with "ok key=" (nth 1)
    &&
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    contains (nth 1) "cached=false");
  check_bool "second compile is a hit" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains (nth 2) "cached=true");
  (* The train response must be byte-identical to a direct Loop.train of
     the same request: same model, same synthetic corpus, sequential
     runtime — served through the cache entry the compile request created. *)
  (* Mirror the engine's synthetic train corpus: seed 5, length
     (steps+2)*batch*seq_len+1 for steps=3 batch=2 seq_len=4. *)
  let expected_losses =
    train_losses
      ~runtime:(Parallel.create ~domains:1 ())
      ~corpus_length:(((3 + 2) * 2 * 4) + 1)
      ()
  in
  check_string "train bit-identical to direct Loop.train"
    (Printf.sprintf "ok steps=%d losses=%s"
       (List.length expected_losses)
       (String.concat "," (List.map (Printf.sprintf "%h") expected_losses)))
    (nth 3);
  (* Pipelined evals coalesced into one stacked step... *)
  let l1, k1 = loss_of (nth 4) in
  let l2, k2 = loss_of (nth 5) in
  check_int "eval 1 batched" 2 k1;
  check_int "eval 2 batched" 2 k2;
  (* ...bit-identical to serial engine-level execution. *)
  let direct = Engine.create ~runtime:(Parallel.create ~domains:1 ()) () in
  let d1, _ = loss_of (Engine.exec direct "eval hidden=8 vocab=20 tokens=1,2,3,4,5") in
  let d2, _ = loss_of (Engine.exec direct "eval hidden=8 vocab=20 tokens=5,4,3,2,1") in
  check_bool "eval 1 bit-identical" true
    (Int64.equal (Int64.bits_of_float l1) (Int64.bits_of_float d1));
  check_bool "eval 2 bit-identical" true
    (Int64.equal (Int64.bits_of_float l2) (Int64.bits_of_float d2));
  check_string "budget rejection" "err budget exceeded: requested="
    (String.sub (nth 6) 0 31);
  check_bool "stats" true (starts_with "ok hits=" (nth 7));
  check_string "shutdown" "ok bye" (nth 8);
  check_bool "socket file removed" true (not (Sys.file_exists socket))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "serve",
      [
        t "cache hit and miss" test_cache_hit_miss;
        t "cache key separates knobs" test_cache_key_separates_knobs;
        t "cache LRU eviction" test_cache_eviction;
        t "cache single-flight" test_cache_single_flight;
        t "failed compile releases key" test_cache_failed_compile_releases_key;
        t "cached train bit-identical" test_cached_train_bit_identical;
        t "batched eval bit-identical" test_batched_eval_bit_identical;
        t "tenant budgets" test_tenant_budgets;
        t "protocol errors" test_protocol_errors;
        t "corpus load_text" test_corpus_load_text;
        t "socket end to end" test_socket_end_to_end;
      ] );
  ]
