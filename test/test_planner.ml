(* The planner registry and its planners.

   The load-bearing contracts of the pluggable-planner architecture:

   - the registry resolves every policy the rest of the system uses (specs,
     aliases, knobs) and rejects malformed specs with a message, not a
     crash;
   - the dp-bptt segment planner trades frontier bytes for recomputation in
     the direction its knobs promise;
   - the OLLA-style arena solver never regresses from the greedy best-fit
     plan, is deterministic under a fixed seed, and always produces a plan
     Echo-verify's offset checker accepts;
   - the escalation ladder's tail really is ordered by measured overhead;
   - every planner's claimed saving is honest to within its declared
     tolerance;
   - and, above all, every registered planner trains bit-identically to
     the stash-all baseline — recomputation must never change the math. *)

open Echo_tensor
open Echo_models
module Planner = Echo_core.Planner
module Pass = Echo_core.Pass
module Autotune = Echo_core.Autotune

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let dev = Echo_gpusim.Device.titan_xp

let tiny_lm () =
  Language_model.build
    {
      Language_model.ptb_default with
      vocab = 60;
      embed = 12;
      hidden = 12;
      layers = 2;
      seq_len = 6;
      batch = 3;
      dropout = 0.2;
    }

let training_graph model =
  (Echo_compiler.Pipeline.differentiate (Echo_compiler.Pipeline.of_model model))
    .Echo_compiler.Pipeline.autodiff.Echo_autodiff.Grad.graph

let lm_graph = lazy (training_graph (tiny_lm ()).Language_model.model)

let tiny_nmt_graph =
  lazy
    (training_graph
       (Nmt.build
          {
            Nmt.gnmt_like with
            src_vocab = 15;
            tgt_vocab = 15;
            embed = 4;
            hidden = 4;
            enc_layers = 1;
            dec_layers = 1;
            src_len = 3;
            tgt_len = 3;
            batch = 2;
            dropout = 0.1;
          })
       .Nmt.model)

(* ------------------------------------------------------------------ *)
(* Registry *)

let builtin_names =
  [
    "stash-all"; "mirror-all-cheap"; "checkpoint-sqrt"; "dp-bptt"; "echo";
    "echo-cheap"; "echo-noshare"; "echo-notrans"; "recompute-all";
    "olla-arena";
  ]

let test_registry_builtins () =
  let names = List.map (fun p -> p.Planner.name) (Planner.all ()) in
  List.iter
    (fun n -> check_bool (n ^ " registered") true (List.mem n names))
    builtin_names;
  check_bool "find hit" true (Planner.find "echo" <> None);
  check_bool "find miss" true (Planner.find "no-such" = None);
  (* The --policy list rendering mentions every planner and every knob. *)
  let listing = Format.asprintf "%a" Planner.pp_list () in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> check_bool (n ^ " listed") true (contains n listing))
    builtin_names;
  check_bool "knobs listed" true (contains "budget-mib" listing)

let test_parse_specs () =
  (match Planner.parse "echo:budget=0.05" with
  | Ok i ->
    check_string "label" "echo(5%)" (Planner.label i);
    check_bool "knob bound" true (Planner.knob_is_set i "budget")
  | Error e -> Alcotest.fail e);
  (match Planner.parse "dp-bptt:slots=8,budget-mib=2" with
  | Ok i ->
    check_int "slots" 8 (int_of_float (Planner.knob_value i "slots"));
    check_int "budget-mib" 2 (int_of_float (Planner.knob_value i "budget-mib"))
  | Error e -> Alcotest.fail e);
  (* Legacy aliases the pre-registry echoc accepted. *)
  (match Planner.parse "mirror-all" with
  | Ok i -> check_string "alias" "mirror-all-cheap" (Planner.label i)
  | Error e -> Alcotest.fail e);
  (match Planner.parse "checkpoint" with
  | Ok i -> check_string "alias" "checkpoint-sqrt" (Planner.label i)
  | Error e -> Alcotest.fail e);
  let is_error = function Error _ -> true | Ok _ -> false in
  check_bool "unknown name" true (is_error (Planner.parse "no-such"));
  check_bool "unknown knob" true (is_error (Planner.parse "echo:slots=3"));
  check_bool "malformed kv" true (is_error (Planner.parse "echo:budget"));
  check_bool "non-numeric" true (is_error (Planner.parse "echo:budget=lots"))

let test_instance_api () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "instantiate unknown raises" true
    (raises (fun () -> Planner.instantiate "no-such"));
  check_bool "unknown knob raises" true
    (raises (fun () -> Planner.instantiate ~knobs:[ ("slots", 1.0) ] "echo"));
  let i = Planner.instantiate "echo" in
  check_bool "default not set" false (Planner.knob_is_set i "budget");
  check_bool "default value" true (Planner.knob_value i "budget" = 0.10);
  let i = Planner.with_knob i "budget" 0.25 in
  check_bool "with_knob sets" true (Planner.knob_is_set i "budget");
  check_string "with_knob label" "echo(25%)" (Planner.label i);
  check_bool "declares" true
    (Planner.declares (Option.get (Planner.find "dp-bptt")) "slots");
  check_bool "not declares" false
    (Planner.declares (Option.get (Planner.find "stash-all")) "slots");
  check_bool "with_knob unknown raises" true
    (raises (fun () -> Planner.with_knob i "slots" 1.0))

(* ------------------------------------------------------------------ *)
(* dp-bptt *)

let claimed inst g =
  let _, report = Pass.run_instance ~device:dev inst g in
  report.Pass.claimed_saving_bytes

let test_dp_bptt_selects () =
  let g = Lazy.force lm_graph in
  let _, report =
    Pass.run_instance ~device:dev (Planner.instantiate "dp-bptt") g
  in
  check_bool "mirrors something" true (report.Pass.mirrored_nodes > 0);
  check_bool "claims a saving" true (report.Pass.claimed_saving_bytes > 0)

let test_dp_bptt_slots_tradeoff () =
  let g = Lazy.force lm_graph in
  (* One segment recomputes everything recomputable (maximal saving); many
     segments keep a bigger stashed frontier (smaller saving). *)
  let one = claimed (Planner.instantiate ~knobs:[ ("slots", 1.0) ] "dp-bptt") g in
  let many =
    claimed (Planner.instantiate ~knobs:[ ("slots", 16.0) ] "dp-bptt") g
  in
  check_bool "k=1 claims at least as much as k=16" true (one >= many);
  check_bool "k=16 still claims something" true (many >= 0)

let test_dp_bptt_budget_knob () =
  let g = Lazy.force lm_graph in
  (* A tiny budget forces the maximal-saving segmentation; a huge one admits
     the cheapest (most segments, least recomputation). *)
  let tight =
    claimed
      (Planner.instantiate ~knobs:[ ("budget-mib", 0.0001) ] "dp-bptt")
      g
  in
  let loose =
    claimed
      (Planner.instantiate ~knobs:[ ("budget-mib", 10000.0) ] "dp-bptt")
      g
  in
  check_bool "tight budget claims >= loose budget" true (tight >= loose)

(* ------------------------------------------------------------------ *)
(* olla-arena / Arena_solver *)

let test_arena_solver_beats_greedy () =
  List.iter
    (fun g ->
      let greedy = Echo_exec.Assign.assign g in
      let solved = Planner.assigner (Planner.instantiate "olla-arena") g in
      check_bool "solved <= greedy" true
        (Echo_exec.Assign.arena_size solved
        <= Echo_exec.Assign.arena_size greedy);
      check_bool "improvement >= 0" true
        (Echo_exec.Arena_solver.improvement g ~greedy ~solved >= 0.0);
      (* The solved plan must satisfy the planner's own soundness check and
         Echo-verify's independent offset checker. *)
      check_bool "Assign.check clean" false
        (Echo_diag.Report.has_errors (Echo_exec.Assign.check solved));
      check_bool "Echo-verify accepts" false
        (Echo_diag.Report.has_errors
           (Echo_analysis.Verify.lint ~offsets:solved g)))
    [ Lazy.force lm_graph; Lazy.force tiny_nmt_graph ]

let test_arena_solver_deterministic () =
  let g = Lazy.force lm_graph in
  let slots inst = Echo_exec.Assign.slots (Planner.assigner inst g) in
  let a = slots (Planner.instantiate "olla-arena") in
  let b = slots (Planner.instantiate "olla-arena") in
  check_bool "same seed, same plan" true (a = b);
  (* A different seed may find a different plan, but it must stay sound and
     never regress from greedy. *)
  let other =
    Planner.assigner (Planner.instantiate ~knobs:[ ("seed", 7.0) ] "olla-arena") g
  in
  check_bool "other seed <= greedy" true
    (Echo_exec.Assign.arena_size other
    <= Echo_exec.Assign.arena_size (Echo_exec.Assign.assign g))

(* ------------------------------------------------------------------ *)
(* fit_ladder *)

let test_ladder_composition () =
  let labels = List.map Planner.label Autotune.fit_ladder in
  check_string "baseline first" "stash-all" (List.hd labels);
  List.iter
    (fun l -> check_bool (l ^ " on the ladder") true (List.mem l labels))
    [ "checkpoint-sqrt"; "dp-bptt"; "recompute-all" ];
  check_int "one echo rung per escalation budget"
    (List.length Autotune.escalation)
    (List.length
       (List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "echo(")
          labels))

let test_ladder_overhead_monotone () =
  let g = Lazy.force lm_graph in
  let overhead inst =
    Pass.overhead (Autotune.run_one ~device:dev inst g).Autotune.report
  in
  let by_label want =
    overhead
      (List.find (fun i -> Planner.label i = want) Autotune.fit_ladder)
  in
  check_bool "baseline free" true (by_label "stash-all" = 0.0);
  (* Every Echo rung respects its declared budget — that is what makes
     escalation through the rungs cheapest-first. *)
  List.iter
    (fun b ->
      let o =
        overhead (Planner.instantiate ~knobs:[ ("budget", b) ] "echo")
      in
      check_bool
        (Printf.sprintf "echo(%g) overhead %.4f within budget" b o)
        true
        (o <= b +. 1e-9))
    Autotune.escalation;
  (* The tail is ordered by measured overhead. *)
  let ck = by_label "checkpoint-sqrt"
  and dp = by_label "dp-bptt"
  and ra = by_label "recompute-all" in
  check_bool "checkpoint-sqrt <= dp-bptt" true (ck <= dp);
  check_bool "dp-bptt <= recompute-all" true (dp <= ra)

(* ------------------------------------------------------------------ *)
(* Estimator honesty *)

let test_claims_honest () =
  List.iter
    (fun g ->
      let baseline = (Echo_exec.Memplan.plan g).Echo_exec.Memplan.stash_bytes in
      List.iter
        (fun p ->
          let inst = Planner.instantiate p.Planner.name in
          let _, report = Pass.run_instance ~device:dev inst g in
          let measured =
            baseline
            - report.Pass.optimised_mem.Echo_exec.Memplan.stash_bytes
          in
          let err = abs (report.Pass.claimed_saving_bytes - measured) in
          let allowed =
            int_of_float (p.Planner.claim_tolerance *. float_of_int baseline)
          in
          check_bool
            (Printf.sprintf
               "%s claim honest: |%d - %d| = %d <= %.0f%% of %d"
               (Planner.label inst) report.Pass.claimed_saving_bytes measured
               err
               (100.0 *. p.Planner.claim_tolerance)
               baseline)
            true (err <= allowed))
        (Planner.all ()))
    [ Lazy.force lm_graph; Lazy.force tiny_nmt_graph ]

(* ------------------------------------------------------------------ *)
(* Differential: every planner trains bit-identically to stash-all *)

let train_losses ~planner ~runtime ~fuse lm =
  let graph = training_graph lm.Language_model.model in
  let cfg = { Language_model.ptb_default with vocab = 60 } in
  let stream =
    Echo_workloads.Corpus.generate ~seed:5 ~vocab:cfg.Language_model.vocab
      ~length:4_000
  in
  let steps = 4 in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      (Echo_workloads.Corpus.lm_batches stream ~batch:3 ~seq_len:6 ~steps)
  in
  (Echo_train.Loop.train ~graph
     ~params:(Params.bindings lm.Language_model.model.Model.params)
     ~optimizer:
       (Echo_train.Optimizer.create (Echo_train.Optimizer.Sgd { lr = 0.5 }))
     ~clip_norm:5.0 ?planner ~runtime ~fuse ~batches ())
    .Echo_train.Loop.losses

let test_all_planners_differential () =
  let lm = tiny_lm () in
  let golden =
    train_losses ~planner:None ~runtime:Parallel.sequential ~fuse:false lm
  in
  check_int "golden ran every step" 4 (List.length golden);
  let check_config ~runtime ~fuse tag =
    List.iter
      (fun p ->
        let inst = Planner.instantiate p.Planner.name in
        let losses = train_losses ~planner:(Some inst) ~runtime ~fuse lm in
        check_bool
          (Printf.sprintf "%s losses bit-identical to stash-all (%s)"
             (Planner.label inst) tag)
          true
          (List.length losses = List.length golden
          && List.for_all2 (fun a b -> Float.equal a b) golden losses))
      (Planner.all ())
  in
  check_config ~runtime:Parallel.sequential ~fuse:false "seq, unfused";
  check_config ~runtime:Parallel.sequential ~fuse:true "seq, fused";
  List.iter
    (fun domains ->
      let runtime = Parallel.create ~domains () in
      check_config ~runtime ~fuse:false
        (Printf.sprintf "%dd, unfused" domains);
      check_config ~runtime ~fuse:true (Printf.sprintf "%dd, fused" domains);
      Parallel.shutdown runtime)
    [ 2; 4 ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "planners.registry",
      [
        t "builtins registered and listed" test_registry_builtins;
        t "spec parsing" test_parse_specs;
        t "instance knob API" test_instance_api;
      ] );
    ( "planners.dp-bptt",
      [
        t "selects and claims" test_dp_bptt_selects;
        t "slots trade frontier for recompute" test_dp_bptt_slots_tradeoff;
        t "budget knob monotone" test_dp_bptt_budget_knob;
      ] );
    ( "planners.olla-arena",
      [
        t "never regresses from greedy, verifies"
          test_arena_solver_beats_greedy;
        t "deterministic under a seed" test_arena_solver_deterministic;
      ] );
    ( "planners.ladder",
      [
        t "composition" test_ladder_composition;
        t "overhead monotone" test_ladder_overhead_monotone;
      ] );
    ( "planners.claims",
      [ t "claimed saving within declared tolerance" test_claims_honest ] );
    ( "planners.differential",
      [
        t "every planner == stash-all at 1/2/4 domains, fused and unfused"
          test_all_planners_differential;
      ] );
  ]
