(* Tests for the IR: operator shape inference, node construction, graph
   scheduling and validation. *)

open Echo_tensor
open Echo_ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let shape = Alcotest.testable Shape.pp Shape.equal

let infer op ins = Op.infer_shape op ins None

let raises f = try f (); false with Invalid_argument _ -> true

(* Op.infer_shape *)

let test_infer_leaves () =
  Alcotest.check shape "placeholder" [| 2; 3 |]
    (Op.infer_shape Op.Placeholder [] (Some [| 2; 3 |]));
  check_bool "leaf without shape" true (raises (fun () -> ignore (infer Op.Variable [])));
  check_bool "non-leaf with shape" true
    (raises (fun () -> ignore (Op.infer_shape Op.Add [ [| 2 |]; [| 2 |] ] (Some [| 2 |]))))

let test_infer_elementwise () =
  Alcotest.check shape "unary keeps shape" [| 2; 3 |] (infer Op.Sigmoid [ [| 2; 3 |] ]);
  Alcotest.check shape "binary" [| 4 |] (infer Op.Mul [ [| 4 |]; [| 4 |] ]);
  check_bool "binary mismatch" true
    (raises (fun () -> ignore (infer Op.Add [ [| 2 |]; [| 3 |] ])));
  check_bool "wrong arity" true (raises (fun () -> ignore (infer Op.Neg [ [| 2 |]; [| 2 |] ])))

let test_infer_matmul () =
  Alcotest.check shape "nn" [| 2; 5 |]
    (infer (Op.Matmul { trans_a = false; trans_b = false }) [ [| 2; 3 |]; [| 3; 5 |] ]);
  Alcotest.check shape "nt" [| 2; 5 |]
    (infer (Op.Matmul { trans_a = false; trans_b = true }) [ [| 2; 3 |]; [| 5; 3 |] ]);
  Alcotest.check shape "tn" [| 3; 5 |]
    (infer (Op.Matmul { trans_a = true; trans_b = false }) [ [| 2; 3 |]; [| 2; 5 |] ]);
  Alcotest.check shape "tt" [| 3; 5 |]
    (infer (Op.Matmul { trans_a = true; trans_b = true }) [ [| 2; 3 |]; [| 5; 2 |] ]);
  check_bool "inner mismatch" true
    (raises (fun () ->
       ignore (infer (Op.Matmul { trans_a = false; trans_b = false }) [ [| 2; 3 |]; [| 4; 5 |] ])))

let test_infer_shape_ops () =
  Alcotest.check shape "slice" [| 2; 2 |]
    (infer (Op.Slice { axis = 1; lo = 1; hi = 3 }) [ [| 2; 5 |] ]);
  Alcotest.check shape "pad" [| 6; 3 |]
    (infer (Op.PadSlice { axis = 0; lo = 2; full = 6 }) [ [| 2; 3 |] ]);
  check_bool "pad does not fit" true
    (raises (fun () ->
       ignore (infer (Op.PadSlice { axis = 0; lo = 5; full = 6 }) [ [| 2; 3 |] ])));
  Alcotest.check shape "concat" [| 2; 7 |]
    (infer (Op.Concat { axis = 1 }) [ [| 2; 3 |]; [| 2; 4 |] ]);
  check_bool "concat empty" true
    (raises (fun () -> ignore (infer (Op.Concat { axis = 0 }) [])));
  Alcotest.check shape "reshape" [| 6 |] (infer (Op.Reshape [| 6 |]) [ [| 2; 3 |] ]);
  check_bool "reshape bad" true
    (raises (fun () -> ignore (infer (Op.Reshape [| 7 |]) [ [| 2; 3 |] ])));
  Alcotest.check shape "transpose" [| 3; 2 |] (infer Op.Transpose2d [ [| 2; 3 |] ])

let test_infer_reduce () =
  Alcotest.check shape "sum keep" [| 2; 1 |]
    (infer (Op.ReduceSum { axis = 1; keepdims = true }) [ [| 2; 5 |] ]);
  Alcotest.check shape "sum drop" [| 5 |]
    (infer (Op.ReduceSum { axis = 0; keepdims = false }) [ [| 2; 5 |] ]);
  Alcotest.check shape "1-D drops to scalar" Shape.scalar
    (infer (Op.ReduceMean { axis = 0; keepdims = false }) [ [| 4 |] ]);
  Alcotest.check shape "broadcast" [| 2; 5 |]
    (infer (Op.BroadcastAxis { axis = 1; n = 5 }) [ [| 2; 1 |] ]);
  check_bool "broadcast needs dim 1" true
    (raises (fun () -> ignore (infer (Op.BroadcastAxis { axis = 1; n = 5 }) [ [| 2; 3 |] ])))

let test_infer_nn () =
  Alcotest.check shape "xent scalar" Shape.scalar
    (infer Op.CrossEntropy [ [| 4; 10 |]; [| 4 |] ]);
  Alcotest.check shape "xent grad" [| 4; 10 |]
    (infer Op.CrossEntropyGrad [ [| 4; 10 |]; [| 4 |] ]);
  check_bool "xent batch mismatch" true
    (raises (fun () -> ignore (infer Op.CrossEntropy [ [| 4; 10 |]; [| 5 |] ])));
  Alcotest.check shape "embedding" [| 6; 8 |]
    (infer Op.Embedding [ [| 100; 8 |]; [| 6 |] ]);
  Alcotest.check shape "embedding grad" [| 100; 8 |]
    (infer (Op.EmbeddingGrad { vocab = 100 }) [ [| 6 |]; [| 6; 8 |] ]);
  Alcotest.check shape "conv" [| 2; 8; 3; 3 |]
    (infer (Op.Conv2d { stride = 2; pad = 1 }) [ [| 2; 4; 5; 5 |]; [| 8; 4; 3; 3 |] ]);
  check_bool "conv channels" true
    (raises (fun () ->
       ignore (infer (Op.Conv2d { stride = 1; pad = 0 }) [ [| 1; 2; 5; 5 |]; [| 8; 3; 3; 3 |] ])))

let test_op_classification () =
  check_bool "matmul not cheap" true (not (Op.is_cheap (Op.Matmul { trans_a = false; trans_b = false })));
  check_bool "sigmoid cheap" true (Op.is_cheap Op.Sigmoid);
  check_bool "conv not cheap" true (not (Op.is_cheap (Op.Conv2d { stride = 1; pad = 0 })));
  check_bool "placeholder not recomputable" true (not (Op.is_recomputable Op.Placeholder));
  check_bool "variable not recomputable" true (not (Op.is_recomputable Op.Variable));
  check_bool "dropout mask recomputable" true
    (Op.is_recomputable (Op.DropoutMask { p = 0.5; seed = 1 }));
  check_bool "matmul recomputable" true
    (Op.is_recomputable (Op.Matmul { trans_a = false; trans_b = false }));
  check_bool "leaves" true (Op.is_leaf Op.Zeros && not (Op.is_leaf Op.Add))

(* Node *)

let test_node_ids_increase () =
  let a = Node.placeholder [| 2 |] in
  let b = Node.placeholder [| 2 |] in
  check_bool "fresh increasing ids" true (Node.id b > Node.id a)

let test_node_shape_inferred () =
  let a = Node.placeholder [| 2; 3 |] and b = Node.variable [| 4; 3 |] in
  let m = Node.matmul ~trans_b:true a b in
  Alcotest.check shape "inferred" [| 2; 4 |] (Node.shape m)

let test_node_regions () =
  let a = Node.placeholder [| 2 |] in
  check_bool "default forward" true (Node.region a = Node.Forward);
  let b = Node.neg ~region:Node.Backward a in
  check_bool "backward" true (Node.region b = Node.Backward)

let test_node_size_bytes () =
  check_int "fp32 accounting" (4 * 6) (Node.size_bytes (Node.placeholder [| 2; 3 |]))

let test_clone_with_inputs () =
  let a = Node.placeholder [| 2 |] and b = Node.placeholder [| 2 |] in
  let s = Node.add a a in
  let s' = Node.clone_with_inputs ~region:Node.Backward s [ a; b ] in
  check_bool "fresh id" true (Node.id s' <> Node.id s);
  check_bool "same op" true (Node.op s' = Node.op s);
  check_bool "new inputs" true (List.exists (fun i -> Node.equal i b) (Node.inputs s'))

let test_node_hint_defaults () =
  let a = Node.placeholder [| 1 |] in
  Alcotest.(check (float 0.0)) "hint = id" (float_of_int (Node.id a)) (Node.hint a);
  let c = Node.create ~hint:3.5 ~shape:[| 1 |] Op.Zeros [] in
  Alcotest.(check (float 0.0)) "explicit hint" 3.5 (Node.hint c)

(* Graph *)

let chain n =
  let x = Node.placeholder ~name:"x" [| 2 |] in
  let rec extend acc k = if k = 0 then acc else extend (Node.neg acc) (k - 1) in
  (x, extend x n)

let test_graph_schedule_topological () =
  let _, out = chain 20 in
  let g = Graph.create [ out ] in
  Graph.validate g;
  check_int "node count" 21 (Graph.node_count g)

let test_graph_program_order () =
  (* With default hints the schedule is exactly creation order. *)
  let x = Node.placeholder [| 2 |] in
  let a = Node.neg x in
  let b = Node.sq x in
  let c = Node.add a b in
  let g = Graph.create [ c ] in
  Alcotest.(check (list int))
    "creation order"
    [ Node.id x; Node.id a; Node.id b; Node.id c ]
    (List.map Node.id (Graph.nodes g))

let test_graph_hint_overrides_order () =
  let x = Node.placeholder [| 2 |] in
  let a = Node.neg x in
  let b = Node.create ~hint:(Node.hint a -. 0.5) Op.Sq [ x ] in
  let c = Node.add a b in
  let g = Graph.create [ c ] in
  Alcotest.(check (list int))
    "b jumps before a"
    [ Node.id x; Node.id b; Node.id a; Node.id c ]
    (List.map Node.id (Graph.nodes g))

let test_graph_consumers () =
  let x = Node.placeholder [| 2 |] in
  let a = Node.neg x and b = Node.sq x in
  let c = Node.add a b in
  let g = Graph.create [ c ] in
  check_int "x has two consumers" 2 (List.length (Graph.consumers g (Node.id x)));
  check_int "c has none" 0 (List.length (Graph.consumers g (Node.id c)));
  check_bool "is_output" true (Graph.is_output g (Node.id c));
  check_bool "non-output" true (not (Graph.is_output g (Node.id x)))

let test_graph_reachability_only () =
  let x = Node.placeholder [| 2 |] in
  let used = Node.neg x in
  let _dead = Node.sq x in
  let g = Graph.create [ used ] in
  check_int "dead node excluded" 2 (Graph.node_count g)

let test_graph_duplicate_input_edges () =
  let x = Node.placeholder [| 2 |] in
  let m = Node.mul x x in
  let g = Graph.create [ m ] in
  Graph.validate g;
  check_int "consumer appears per slot" 2 (List.length (Graph.consumers g (Node.id x)))

let test_graph_regions_split () =
  let x = Node.placeholder [| 2 |] in
  let f = Node.neg x in
  let b = Node.sq ~region:Node.Backward f in
  let g = Graph.create [ b ] in
  check_int "fwd" 2 (List.length (Graph.forward_nodes g));
  check_int "bwd" 1 (List.length (Graph.backward_nodes g))

let test_graph_total_bytes () =
  let x = Node.placeholder [| 2; 2 |] in
  let y = Node.neg x in
  let g = Graph.create [ y ] in
  check_int "sum of outputs" 32 (Graph.total_output_bytes g)

let test_graph_empty_outputs () =
  check_bool "raises" true (raises (fun () -> ignore (Graph.create [])))

let test_graph_to_dot () =
  let x = Node.placeholder ~name:"input" [| 2 |] in
  let g = Graph.create [ Node.neg x ] in
  let dot = Graph.to_dot g in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "mentions node" true (contains dot "input");
  check_bool "has edges" true (contains dot "->")

(* Random-DAG property: schedules are always topological. *)
let random_dag_gen =
  QCheck.make ~print:(fun seed -> string_of_int seed)
    QCheck.Gen.(int_range 0 100_000)

let build_random_dag seed =
  let rng = Rng.create seed in
  let pool = ref [ Node.placeholder [| 2; 2 |]; Node.variable [| 2; 2 |] ] in
  for _ = 1 to 30 do
    let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
    let n =
      match Rng.int rng 5 with
      | 0 -> Node.add (pick ()) (pick ())
      | 1 -> Node.mul (pick ()) (pick ())
      | 2 -> Node.sigmoid (pick ())
      | 3 -> Node.matmul (pick ()) (pick ())
      | _ -> Node.tanh_ (pick ())
    in
    pool := n :: !pool
  done;
  List.hd !pool

let prop_random_dag_schedules =
  QCheck.Test.make ~name:"random DAG schedules validate" ~count:60 random_dag_gen
    (fun seed ->
      let out = build_random_dag seed in
      let g = Graph.create [ out ] in
      Graph.validate g;
      true)

(* Graph.fingerprint: the canonical structural digest compile caches key
   on. It must be invariant under rebuilds (fresh node ids), commutative
   input order and serialisation — and sensitive to structure, attributes
   and leaf names. *)

let fp_model ~name ~hidden () =
  let x = Node.placeholder ~name:"x" [| 2; 3 |] in
  let w = Node.variable ~name [| hidden; 3 |] in
  let b = Node.variable ~name:"b" [| hidden |] in
  let h = Node.relu (Node.add_bias (Node.matmul ~trans_b:true x w) b) in
  Graph.create [ h ]

let test_fingerprint_stable_across_rebuilds () =
  let a = fp_model ~name:"w" ~hidden:4 () in
  (* Burn some ids so the second build's node ids all differ. *)
  for _ = 1 to 13 do ignore (Node.placeholder [| 1 |]) done;
  let b = fp_model ~name:"w" ~hidden:4 () in
  check_bool "distinct ids" true
    (List.for_all2
       (fun n m -> Node.id n <> Node.id m)
       (Graph.nodes a) (Graph.nodes b));
  Alcotest.(check string)
    "same fingerprint" (Graph.fingerprint a) (Graph.fingerprint b)

let test_fingerprint_commutative_inputs () =
  let p () = Node.placeholder ~name:"p" [| 2 |] in
  let q () = Node.placeholder ~name:"q" [| 2 |] in
  let add_pq =
    let p = p () and q = q () in
    Graph.create [ Node.add p q ]
  in
  let add_qp =
    let p = p () and q = q () in
    Graph.create [ Node.add q p ]
  in
  Alcotest.(check string)
    "a+b = b+a" (Graph.fingerprint add_pq) (Graph.fingerprint add_qp);
  let sub_pq =
    let p = p () and q = q () in
    Graph.create [ Node.sub p q ]
  in
  let sub_qp =
    let p = p () and q = q () in
    Graph.create [ Node.sub q p ]
  in
  check_bool "a-b <> b-a" true
    (Graph.fingerprint sub_pq <> Graph.fingerprint sub_qp)

let test_fingerprint_serial_roundtrip () =
  let g = fp_model ~name:"w" ~hidden:4 () in
  let g' = Serial.of_string (Serial.to_string g) in
  Alcotest.(check string)
    "round-trip preserves fingerprint" (Graph.fingerprint g)
    (Graph.fingerprint g')

let test_fingerprint_distinguishes () =
  let base = fp_model ~name:"w" ~hidden:4 () in
  check_bool "different shape" true
    (Graph.fingerprint base <> Graph.fingerprint (fp_model ~name:"w" ~hidden:5 ()));
  (* Leaf names are part of the digest: a cache hit must guarantee that
     name-based feed resolution finds every input. *)
  check_bool "different leaf name" true
    (Graph.fingerprint base <> Graph.fingerprint (fp_model ~name:"w2" ~hidden:4 ()))

let test_fingerprint_golden () =
  (* Process-independence regression: this digest must never drift across
     runs, processes or toolchains — a drift would silently invalidate
     every persisted cache key. *)
  let x = Node.placeholder ~name:"x" [| 2; 2 |] in
  let g = Graph.create [ Node.relu (Node.add x x) ] in
  Alcotest.(check string)
    "golden digest" "cbc3b90901aa9e0da20792e110e7ba02" (Graph.fingerprint g)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "op.infer",
      [
        t "leaves" test_infer_leaves;
        t "elementwise" test_infer_elementwise;
        t "matmul" test_infer_matmul;
        t "shape ops" test_infer_shape_ops;
        t "reductions" test_infer_reduce;
        t "nn kernels" test_infer_nn;
        t "classification" test_op_classification;
      ] );
    ( "node",
      [
        t "ids increase" test_node_ids_increase;
        t "shape inferred" test_node_shape_inferred;
        t "regions" test_node_regions;
        t "size bytes" test_node_size_bytes;
        t "clone with inputs" test_clone_with_inputs;
        t "hints" test_node_hint_defaults;
      ] );
    ( "graph",
      [
        t "schedule topological" test_graph_schedule_topological;
        t "program order" test_graph_program_order;
        t "hint overrides order" test_graph_hint_overrides_order;
        t "consumers" test_graph_consumers;
        t "reachability only" test_graph_reachability_only;
        t "duplicate input edges" test_graph_duplicate_input_edges;
        t "regions split" test_graph_regions_split;
        t "total bytes" test_graph_total_bytes;
        t "empty outputs" test_graph_empty_outputs;
        t "dot output" test_graph_to_dot;
        QCheck_alcotest.to_alcotest prop_random_dag_schedules;
      ] );
    ( "fingerprint",
      [
        t "stable across rebuilds" test_fingerprint_stable_across_rebuilds;
        t "commutative inputs" test_fingerprint_commutative_inputs;
        t "serial round-trip" test_fingerprint_serial_roundtrip;
        t "distinguishes structure" test_fingerprint_distinguishes;
        t "golden digest" test_fingerprint_golden;
      ] );
  ]
