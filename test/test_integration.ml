(* End-to-end integration: full models differentiated, rewritten by the Echo
   pass, trained on synthetic data — confirming the paper's correctness
   claim (bit-identical training) and the footprint/overhead direction on
   real model graphs. *)

open Echo_tensor
open Echo_ir
open Echo_models
open Echo_core
open Echo_train
open Echo_workloads

let check_bool = Alcotest.(check bool)
let dev = Echo_gpusim.Device.titan_xp

let tiny_lm_cfg =
  {
    Language_model.ptb_default with
    vocab = 80;
    embed = 16;
    hidden = 16;
    layers = 2;
    seq_len = 8;
    batch = 4;
    dropout = 0.2;
  }

let lm_batches lm steps =
  let stream = Corpus.generate ~seed:42 ~vocab:lm.Language_model.cfg.Language_model.vocab ~length:30_000 in
  List.map
    (fun (tokens, labels) ->
      [ (lm.Language_model.token_input, tokens);
        (lm.Language_model.label_input, labels) ])
    (Corpus.lm_batches stream
       ~batch:lm.Language_model.cfg.Language_model.batch
       ~seq_len:lm.Language_model.cfg.Language_model.seq_len ~steps)

let train_losses lm graph steps =
  let optimizer = Optimizer.create (Optimizer.Sgd { lr = 0.5 }) in
  let result =
    Loop.train ~graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer ~clip_norm:5.0 ~batches:(lm_batches lm steps) ()
  in
  result.Loop.losses

let test_lm_trains_identically_under_every_policy () =
  let lm = Language_model.build tiny_lm_cfg in
  let training = Model.training lm.Language_model.model in
  let graph = training.Echo_autodiff.Grad.graph in
  let steps = 8 in
  let base = train_losses lm graph steps in
  List.iter
    (fun policy ->
      let rewritten, _ = Pass.run ~device:dev policy graph in
      let losses = train_losses lm rewritten steps in
      List.iter2
        (fun a b ->
          check_bool (Pass.policy_name policy ^ " loss identical") true (a = b))
        base losses)
    [
      Pass.Mirror_all_cheap;
      Pass.Checkpoint_sqrt;
      Pass.Echo { overhead_budget = 0.1 };
      Pass.Recompute_all;
    ]

let test_lm_learns () =
  let lm = Language_model.build tiny_lm_cfg in
  let training = Model.training lm.Language_model.model in
  let steps = 25 in
  let losses = train_losses lm training.Echo_autodiff.Grad.graph steps in
  let first = List.nth losses 0 and last = List.nth losses (steps - 1) in
  check_bool "perplexity falls" true (Loop.perplexity last < Loop.perplexity first)

let test_lm_whole_model_gradcheck () =
  (* Numerical check of the full LM gradient on a minuscule config. *)
  let cfg =
    {
      tiny_lm_cfg with
      Language_model.vocab = 12;
      embed = 3;
      hidden = 3;
      layers = 1;
      seq_len = 3;
      batch = 2;
      dropout = 0.3;
    }
  in
  let lm = Language_model.build cfg in
  let rng = Rng.create 17 in
  let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 12)) in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  match
    Echo_compiler.Gradcheck.check ~tol:1e-4 ~loss:lm.Language_model.model.Model.loss
      ~feeds
      ~wrt:(Params.variables lm.Language_model.model.Model.params)
      ()
  with
  | Ok _ -> ()
  | Error failures ->
    Alcotest.failf "LM gradcheck failed on %s"
      (String.concat ", " (List.map (fun r -> r.Echo_compiler.Gradcheck.param) failures))

let semantic_check ?(id_bound = 20) model policies =
  let training = Model.training model in
  let graph = training.Echo_autodiff.Grad.graph in
  let rng = Rng.create 3 in
  let feeds =
    List.map
      (fun node ->
        let bound = id_bound in
        match Shape.rank (Node.shape node) with
        | 4 -> (node, Tensor.normal rng (Node.shape node) ~mean:0.0 ~std:1.0)
        | _ ->
          (node, Tensor.init (Node.shape node) (fun _ -> float_of_int (Rng.int rng bound))))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  let baseline = Echo_exec.Interp.eval graph ~feeds in
  List.iter
    (fun policy ->
      let rewritten, _ = Pass.run ~device:dev policy graph in
      let outputs = Echo_exec.Interp.eval rewritten ~feeds in
      check_bool
        (model.Model.name ^ "/" ^ Pass.policy_name policy)
        true
        (List.for_all2 Tensor.equal baseline outputs))
    policies

let quick_policies =
  [ Pass.Checkpoint_sqrt; Pass.Echo { overhead_budget = 0.2 } ]

let test_nmt_semantics_preserved () =
  let nmt =
    Nmt.build
      {
        Nmt.gnmt_like with
        src_vocab = 20;
        tgt_vocab = 20;
        embed = 6;
        hidden = 6;
        enc_layers = 1;
        dec_layers = 1;
        src_len = 3;
        tgt_len = 3;
        batch = 2;
        dropout = 0.1;
      }
  in
  semantic_check nmt.Nmt.model quick_policies

let test_ds2_semantics_preserved () =
  let ds2 =
    Deepspeech.build
      {
        Deepspeech.ds2_like with
        batch = 1;
        time = 12;
        freq = 8;
        conv_channels = 2;
        rnn_hidden = 4;
        rnn_layers = 1;
        classes = 5;
        dropout = 0.0;
      }
  in
  semantic_check ~id_bound:5 ds2.Deepspeech.model quick_policies

let test_transformer_semantics_preserved () =
  let tr =
    Transformer.build
      {
        Transformer.base_like with
        vocab = 20;
        seq_len = 4;
        batch = 2;
        d_model = 8;
        heads = 2;
        d_ff = 12;
        layers = 1;
        dropout = 0.1;
      }
  in
  semantic_check tr.Transformer.model quick_policies

let test_footprint_direction_on_models () =
  (* On every zoo model (at small scale) Echo must not increase the peak and
     checkpointing must cut the stash. *)
  let models =
    [
      (Language_model.build tiny_lm_cfg).Language_model.model;
      (Nmt.build
         {
           Nmt.gnmt_like with
           src_vocab = 30;
           tgt_vocab = 30;
           embed = 8;
           hidden = 8;
           enc_layers = 2;
           dec_layers = 2;
           src_len = 5;
           tgt_len = 5;
           batch = 4;
         })
        .Nmt.model;
    ]
  in
  List.iter
    (fun model ->
      let graph = (Model.training model).Echo_autodiff.Grad.graph in
      let _, echo = Pass.run ~device:dev (Pass.Echo { overhead_budget = 0.2 }) graph in
      check_bool (model.Model.name ^ " echo no regression") true
        (Pass.reduction echo >= 1.0);
      check_bool (model.Model.name ^ " echo overhead bounded") true
        (Pass.overhead echo <= 0.25))
    models

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "integration",
      [
        t "LM trains identically under every policy"
          test_lm_trains_identically_under_every_policy;
        t "LM learns" test_lm_learns;
        t "LM whole-model gradcheck" test_lm_whole_model_gradcheck;
        t "NMT semantics preserved" test_nmt_semantics_preserved;
        t "DS2 semantics preserved" test_ds2_semantics_preserved;
        t "Transformer semantics preserved" test_transformer_semantics_preserved;
        t "footprint direction on models" test_footprint_direction_on_models;
      ] );
  ]
