(* Gradient correctness: every operator's symbolic rule is checked against
   central finite differences, plus composite blocks (LSTM cell, attention,
   layer norm) and structural properties of the generated training graph. *)

open Echo_tensor
open Echo_ir
open Echo_exec
module Gradcheck = Echo_compiler.Gradcheck

let check_bool = Alcotest.(check bool)

let gradcheck ?(eps = 1e-5) ?(tol = 1e-5) ~loss ~feeds ~wrt name =
  match Gradcheck.check ~eps ~tol ~loss ~feeds ~wrt () with
  | Ok _ -> ()
  | Error failures ->
    let worst = List.hd failures in
    Alcotest.failf "%s: gradient mismatch on %s (max rel err %g)" name
      worst.Gradcheck.param worst.Gradcheck.max_rel_err

let rng = Rng.create 20_24

let var name shape = (Node.variable ~name shape, Tensor.uniform rng shape ~lo:(-0.9) ~hi:0.9)

(* Reduce any tensor node to a scalar loss with nontrivial weights, so the
   adjoint reaching the tested op varies per element. *)
let weighted_loss node =
  let shape = Node.shape node in
  let weights = Node.variable ~name:"loss_weights" shape in
  let weights_value =
    Tensor.init shape (fun idx ->
      1.0 +. (0.1 *. float_of_int (Shape.ravel shape idx)))
  in
  let prod = Node.mul node weights in
  let rec collapse n =
    if Shape.rank (Node.shape n) = 0 then n
    else collapse (Node.reduce_sum ~axis:0 ~keepdims:false n)
  in
  (collapse prod, (weights, weights_value))

let unary_case name build =
  Alcotest.test_case name `Quick (fun () ->
    let x, xv = var "x" [| 2; 3 |] in
    let loss, wfeed = weighted_loss (build x) in
    gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] name)

let test_binary name build =
  Alcotest.test_case name `Quick (fun () ->
    let a, av = var "a" [| 2; 3 |] in
    let b, bv0 = var "b" [| 2; 3 |] in
    (* keep divisors away from zero *)
    let bv = Tensor.add_scalar 2.0 (Tensor.relu bv0) in
    let loss, wfeed = weighted_loss (build a b) in
    gradcheck ~loss ~feeds:[ (a, av); (b, bv); wfeed ] ~wrt:[ a; b ] name)

let matmul_case trans_a trans_b =
  let name = Printf.sprintf "matmul %b/%b" trans_a trans_b in
  Alcotest.test_case name `Quick (fun () ->
    let sa = if trans_a then [| 4; 2 |] else [| 2; 4 |] in
    let sb = if trans_b then [| 3; 4 |] else [| 4; 3 |] in
    let a, av = var "a" sa and b, bv = var "b" sb in
    let loss, wfeed = weighted_loss (Node.matmul ~trans_a ~trans_b a b) in
    gradcheck ~loss ~feeds:[ (a, av); (b, bv); wfeed ] ~wrt:[ a; b ] name)

let test_add_bias () =
  let m, mv = var "m" [| 3; 4 |] and b, bv = var "b" [| 4 |] in
  let loss, wfeed = weighted_loss (Node.add_bias m b) in
  gradcheck ~loss ~feeds:[ (m, mv); (b, bv); wfeed ] ~wrt:[ m; b ] "add_bias"

let test_slice_concat () =
  let x, xv = var "x" [| 4; 3 |] in
  let parts =
    [ Node.slice ~axis:0 ~lo:0 ~hi:1 x;
      Node.slice ~axis:0 ~lo:1 ~hi:3 x;
      Node.slice ~axis:0 ~lo:3 ~hi:4 x ]
  in
  let y = Node.concat ~axis:0 (List.rev parts) in
  let loss, wfeed = weighted_loss y in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "slice+concat"

let test_pad_slice_grad () =
  let x, xv = var "x" [| 2; 3 |] in
  let loss, wfeed = weighted_loss (Node.pad_slice ~axis:0 ~lo:1 ~full:5 x) in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "pad_slice"

let test_reshape_transpose () =
  let x, xv = var "x" [| 2; 6 |] in
  let y = Node.transpose2d (Node.reshape [| 4; 3 |] x) in
  let loss, wfeed = weighted_loss y in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "reshape+transpose"

let reduce_case name build =
  Alcotest.test_case name `Quick (fun () ->
    let x, xv = var "x" [| 3; 4 |] in
    let loss, wfeed = weighted_loss (build x) in
    gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] name)

let test_softmax_grad () =
  let x, xv = var "x" [| 3; 5 |] in
  let loss, wfeed = weighted_loss (Node.softmax x) in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "softmax"

let test_log_softmax_grad () =
  let x, xv = var "x" [| 3; 5 |] in
  let loss, wfeed = weighted_loss (Node.log_softmax x) in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "log_softmax"

let test_cross_entropy_grad () =
  let x, xv = var "logits" [| 4; 6 |] in
  let labels = Node.placeholder ~name:"labels" [| 4 |] in
  let labels_v = Tensor.of_list1 [ 0.; 3.; 5.; 2. ] in
  let loss = Node.cross_entropy ~logits:x ~labels in
  gradcheck ~loss ~feeds:[ (x, xv); (labels, labels_v) ] ~wrt:[ x ] "cross_entropy"

let test_scaled_cross_entropy_grad () =
  (* Exercises the ScaleBy path: the loss adjoint reaching CE is not 1. *)
  let x, xv = var "logits" [| 3; 4 |] in
  let labels = Node.placeholder ~name:"labels" [| 3 |] in
  let labels_v = Tensor.of_list1 [ 1.; 0.; 3. ] in
  let ce = Node.cross_entropy ~logits:x ~labels in
  let loss = Node.scale 2.5 (Node.sq ce) in
  gradcheck ~loss ~feeds:[ (x, xv); (labels, labels_v) ] ~wrt:[ x ]
    "scaled cross_entropy"

let test_embedding_grad () =
  let table, tv = var "table" [| 7; 3 |] in
  let ids = Node.placeholder ~name:"ids" [| 5 |] in
  let ids_v = Tensor.of_list1 [ 0.; 6.; 3.; 6.; 1. ] in
  let loss, wfeed = weighted_loss (Node.embedding ~table ~ids) in
  gradcheck ~loss ~feeds:[ (table, tv); (ids, ids_v); wfeed ] ~wrt:[ table ]
    "embedding (with repeated ids)"

let test_conv2d_grad () =
  let input, iv = var "input" [| 2; 2; 5; 5 |] in
  let kernel, kv = var "kernel" [| 3; 2; 3; 3 |] in
  let y = Node.conv2d ~stride:2 ~pad:1 ~input ~kernel in
  let loss, wfeed = weighted_loss y in
  gradcheck ~tol:1e-4 ~loss ~feeds:[ (input, iv); (kernel, kv); wfeed ]
    ~wrt:[ input; kernel ] "conv2d"

let test_dropout_path_grad () =
  let x, xv = var "x" [| 3; 4 |] in
  let mask = Node.dropout_mask ~p:0.4 ~seed:17 [| 3; 4 |] in
  let loss, wfeed = weighted_loss (Node.mul x mask) in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "dropout path"

let test_fan_out_accumulation () =
  (* x used three ways: adjoint accumulation must sum all paths. *)
  let x, xv = var "x" [| 2; 2 |] in
  let y = Node.add (Node.mul x x) (Node.add (Node.sigmoid x) (Node.matmul x x)) in
  let loss, wfeed = weighted_loss y in
  gradcheck ~loss ~feeds:[ (x, xv); wfeed ] ~wrt:[ x ] "fan-out accumulation"

let test_unused_param_zero_grad () =
  let x, xv = var "x" [| 2 |] in
  let unused = Node.variable ~name:"unused" [| 3 |] in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false (Node.sq x) in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ x; unused ] in
  let values =
    Interp.eval_all training.Echo_autodiff.Grad.graph
      ~feeds:[ (x, xv); (unused, Tensor.zeros [| 3 |]) ]
  in
  let _, unused_grad_node =
    List.find (fun (p, _) -> Node.equal p unused) training.Echo_autodiff.Grad.grads
  in
  let g = Hashtbl.find values (Node.id unused_grad_node) in
  check_bool "zeros" true (Tensor.equal g (Tensor.zeros [| 3 |]))

let test_loss_must_be_scalar () =
  let x = Node.variable [| 2 |] in
  check_bool "raises" true
    (try
       ignore (Echo_autodiff.Grad.differentiate ~loss:x ~wrt:[ x ]);
       false
     with Invalid_argument _ -> true)

let test_non_differentiable_raises () =
  let logits = Node.variable [| 2; 3 |] in
  let labels = Node.placeholder [| 2 |] in
  let g = Node.cross_entropy_grad ~logits ~labels in
  let fake_loss = Node.reduce_sum ~axis:0 ~keepdims:false (Node.reduce_sum ~axis:1 ~keepdims:false g) in
  check_bool "raises" true
    (try
       ignore (Echo_autodiff.Grad.differentiate ~loss:fake_loss ~wrt:[ logits ]);
       false
     with Echo_autodiff.Grad.Non_differentiable _ -> true)

let test_backward_region_tagging () =
  let x, _ = var "x" [| 2; 2 |] in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false
      (Node.reduce_sum ~axis:1 ~keepdims:false (Node.sq x))
  in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ x ] in
  let graph = training.Echo_autodiff.Grad.graph in
  List.iter
    (fun (_, g) ->
      check_bool "grad is backward" true (Node.region g = Node.Backward))
    training.Echo_autodiff.Grad.grads;
  (* every forward node created before differentiation keeps its region *)
  check_bool "loss forward" true (Node.region loss = Node.Forward);
  Graph.validate graph

let test_lstm_cell_gradcheck () =
  let open Echo_models in
  let params = Params.create ~seed:5 in
  let w = Recurrent.make_weights params "cell" Recurrent.Lstm ~input_dim:3 ~hidden:4 in
  let x, xv = var "x" [| 2; 3 |] in
  let h0 = Recurrent.zero_state Recurrent.Lstm ~batch:2 ~hidden:4 in
  let s1 = Recurrent.step w Recurrent.Lstm ~hidden:4 ~x h0 in
  let s2 = Recurrent.step w Recurrent.Lstm ~hidden:4 ~x s1 in
  let loss, wfeed = weighted_loss s2.Recurrent.h in
  let feeds = ((x, xv) :: wfeed :: Params.bindings params) in
  gradcheck ~tol:1e-4 ~loss ~feeds ~wrt:(x :: Params.variables params)
    "two-step LSTM cell"

let test_peephole_cell_gradcheck () =
  let open Echo_models in
  let params = Params.create ~seed:15 in
  let w =
    Recurrent.make_weights params "cell" Recurrent.Peephole ~input_dim:3 ~hidden:4
  in
  let x, xv = var "x" [| 2; 3 |] in
  let s0 = Recurrent.zero_state Recurrent.Peephole ~batch:2 ~hidden:4 in
  let s1 = Recurrent.step w Recurrent.Peephole ~hidden:4 ~x s0 in
  let s2 = Recurrent.step w Recurrent.Peephole ~hidden:4 ~x s1 in
  let loss, wfeed = weighted_loss s2.Recurrent.h in
  gradcheck ~tol:1e-4 ~loss ~feeds:((x, xv) :: wfeed :: Params.bindings params)
    ~wrt:(x :: Params.variables params) "two-step peephole LSTM cell"

let test_gru_cell_gradcheck () =
  let open Echo_models in
  let params = Params.create ~seed:6 in
  let w = Recurrent.make_weights params "cell" Recurrent.Gru ~input_dim:3 ~hidden:4 in
  let x, xv = var "x" [| 2; 3 |] in
  let s0 = Recurrent.zero_state Recurrent.Gru ~batch:2 ~hidden:4 in
  let s1 = Recurrent.step w Recurrent.Gru ~hidden:4 ~x s0 in
  let loss, wfeed = weighted_loss s1.Recurrent.h in
  gradcheck ~tol:1e-4 ~loss ~feeds:((x, xv) :: wfeed :: Params.bindings params)
    ~wrt:(x :: Params.variables params) "GRU cell"

let test_layer_norm_gradcheck () =
  let open Echo_models in
  let params = Params.create ~seed:7 in
  let x, xv = var "x" [| 3; 5 |] in
  let y = Layer.layer_norm params "ln" ~dim:5 ~eps:1e-5 x in
  let loss, wfeed = weighted_loss y in
  gradcheck ~tol:1e-4 ~loss ~feeds:((x, xv) :: wfeed :: Params.bindings params)
    ~wrt:(x :: Params.variables params) "layer norm"

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "grad.unary",
      [
        unary_case "neg" Node.neg;
        unary_case "scale" (Node.scale 3.0);
        unary_case "add_scalar" (Node.add_scalar (-1.5));
        unary_case "sigmoid" (fun x -> Node.sigmoid x);
        unary_case "tanh" (fun x -> Node.tanh_ x);
        unary_case "relu" (fun x -> Node.relu (Node.add_scalar 0.1 x));
        unary_case "exp" Node.exp_;
        unary_case "log" (fun x -> Node.log_ (Node.add_scalar 3.0 x));
        unary_case "sqrt" (fun x -> Node.sqrt_ (Node.add_scalar 3.0 x));
        unary_case "sq" Node.sq;
        unary_case "recip" (fun x -> Node.recip (Node.add_scalar 3.0 x));
        unary_case "pow_const" (fun x -> Node.pow_const 3.0 (Node.add_scalar 2.0 x));
      ] );
    ( "grad.binary",
      [
        test_binary "add" Node.add;
        test_binary "sub" Node.sub;
        test_binary "mul" Node.mul;
        test_binary "div" Node.div;
      ] );
    ( "grad.linalg",
      [
        matmul_case false false;
        matmul_case false true;
        matmul_case true false;
        matmul_case true true;
        t "add_bias" test_add_bias;
      ] );
    ( "grad.shape",
      [
        t "slice+concat" test_slice_concat;
        t "pad_slice" test_pad_slice_grad;
        t "reshape+transpose" test_reshape_transpose;
      ] );
    ( "grad.reduce",
      [
        reduce_case "reduce_sum axis0" (Node.reduce_sum ~axis:0 ~keepdims:false);
        reduce_case "reduce_sum keep" (Node.reduce_sum ~axis:1 ~keepdims:true);
        reduce_case "reduce_mean" (Node.reduce_mean ~axis:1 ~keepdims:false);
        reduce_case "broadcast" (fun x ->
          Node.broadcast_axis ~axis:1 ~n:4 (Node.reduce_sum ~axis:1 ~keepdims:true x));
      ] );
    ( "grad.nn",
      [
        t "softmax" test_softmax_grad;
        t "log_softmax" test_log_softmax_grad;
        t "cross_entropy" test_cross_entropy_grad;
        t "scaled cross_entropy" test_scaled_cross_entropy_grad;
        t "embedding" test_embedding_grad;
        t "conv2d" test_conv2d_grad;
        t "dropout path" test_dropout_path_grad;
      ] );
    ( "grad.structure",
      [
        t "fan-out accumulation" test_fan_out_accumulation;
        t "unused param zero grad" test_unused_param_zero_grad;
        t "loss must be scalar" test_loss_must_be_scalar;
        t "non-differentiable raises" test_non_differentiable_raises;
        t "backward region tagging" test_backward_region_tagging;
      ] );
    ( "grad.composite",
      [
        t "LSTM cell" test_lstm_cell_gradcheck;
        t "peephole LSTM cell" test_peephole_cell_gradcheck;
        t "GRU cell" test_gru_cell_gradcheck;
        t "layer norm" test_layer_norm_gradcheck;
      ] );
  ]
