(* Entry point: every suite in one alcotest run. *)

let () =
  Alcotest.run "echo"
    (Test_shape.suite @ Test_tensor.suite @ Test_ir.suite @ Test_autodiff.suite
   @ Test_exec.suite @ Test_gpusim.suite @ Test_core.suite @ Test_models.suite
   @ Test_train.suite @ Test_opt.suite @ Test_extra.suite @ Test_substrate.suite
   @ Test_integration.suite @ Test_compiler.suite @ Test_runtime.suite
   @ Test_analysis.suite @ Test_race.suite @ Test_planner.suite
   @ Test_parallel.suite @ Test_campaign.suite @ Test_serve.suite)
