(* The deterministic multicore kernel runtime and its integration with the
   parallelism-aware fusion cost model.

   Pools in this suite are created with [~oversubscribe:true] and
   [~min_fanout_work:0] so the fan-out + work-stealing path genuinely
   executes even on a single-core machine (the production default caps the
   fan-out at the hardware and gates it on real work, which on a small box
   means fanning out never engages — correct, but not what a differential
   test wants to exercise). *)

open Echo_tensor
open Echo_ir
open Echo_models
module Executor = Echo_compiler.Executor
module Fusion = Echo_opt.Fusion
module A = Echo_core.Autotune

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Run [f] with [var] set to [value]. Restoring to "" on exit is equivalent
   to unset for both ECHO_DOMAINS and ECHO_FUSION (empty means default). *)
let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value saved ~default:""))
    f

(* --- environment-variable parsing: strict, with pointed messages --- *)

let test_env_domains_parsing () =
  with_env "ECHO_DOMAINS" "3" (fun () ->
      check_int "ECHO_DOMAINS=3" 3 (Parallel.env_domains ()));
  with_env "ECHO_DOMAINS" " 2 " (fun () ->
      check_int "whitespace tolerated" 2 (Parallel.env_domains ()));
  with_env "ECHO_DOMAINS" "1" (fun () ->
      check_int "ECHO_DOMAINS=1" 1 (Parallel.env_domains ()));
  with_env "ECHO_DOMAINS" "" (fun () ->
      check_bool "empty falls back to the hardware" true
        (Parallel.env_domains () >= 1));
  List.iter
    (fun garbage ->
      with_env "ECHO_DOMAINS" garbage (fun () ->
          check_bool (Printf.sprintf "ECHO_DOMAINS=%S rejected" garbage) true
            (try
               ignore (Parallel.env_domains ());
               false
             with Invalid_argument msg ->
               contains ~sub:"ECHO_DOMAINS" msg
               && contains ~sub:garbage msg)))
    [ "two"; "0"; "-4"; "4x"; "1.5" ]

let test_env_fusion_parsing () =
  List.iter
    (fun v ->
      with_env "ECHO_FUSION" v (fun () ->
          check_bool (Printf.sprintf "ECHO_FUSION=%S enables" v) true
            (Fuse.env_enabled ())))
    [ ""; "1"; "on"; "true"; "yes"; "ON"; " Yes " ];
  List.iter
    (fun v ->
      with_env "ECHO_FUSION" v (fun () ->
          check_bool (Printf.sprintf "ECHO_FUSION=%S disables" v) false
            (Fuse.env_enabled ())))
    [ "0"; "off"; "false"; "no"; "OFF"; " No " ];
  List.iter
    (fun garbage ->
      with_env "ECHO_FUSION" garbage (fun () ->
          check_bool (Printf.sprintf "ECHO_FUSION=%S rejected" garbage) true
            (try
               ignore (Fuse.env_enabled ());
               false
             with Invalid_argument msg ->
               contains ~sub:"ECHO_FUSION" msg
               && contains ~sub:garbage msg)))
    [ "maybe"; "2"; "enabled"; "-1" ]

let test_create_validation () =
  List.iter
    (fun (label, f) ->
      check_bool label true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      ("domains=0 rejected", fun () -> Parallel.create ~domains:0 ());
      ("domains=-2 rejected", fun () -> Parallel.create ~domains:(-2) ());
      ( "chunks_per_domain=0 rejected",
        fun () -> Parallel.create ~domains:2 ~chunks_per_domain:0 () );
      ( "min_fanout_work=-1 rejected",
        fun () -> Parallel.create ~domains:2 ~min_fanout_work:(-1) () );
    ]

let test_with_config_views () =
  let rt =
    Parallel.with_config ~blocking_threshold:7 ~min_fanout_work:9
      Parallel.sequential
  in
  check_int "view threshold" 7 (Parallel.blocking_threshold rt);
  check_int "view gate" 9 (Parallel.min_fanout_work rt);
  check_int "view still sequential" 1 (Parallel.domains rt);
  check_bool "base handle untouched" true
    (Parallel.blocking_threshold Parallel.sequential <> 7)

(* --- the work-stealing loop: coverage and bitwise determinism --- *)

let prop_parallel_for_coverage =
  QCheck.Test.make ~name:"parallel_for covers each index exactly once"
    ~count:40
    QCheck.(pair (int_range 0 400) (int_range 1 6))
    (fun (n, d) ->
      let pool =
        Parallel.create ~domains:d ~oversubscribe:true ~min_fanout_work:0 ()
      in
      Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
      let hits = Array.make (max n 1) 0 in
      Parallel.parallel_for pool ~work:7 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.for_all (( = ) 1) (Array.sub hits 0 n))

let test_stealing_determinism () =
  let n = 10_000 in
  let compute rt =
    let out = Array.make n 0.0 in
    Parallel.parallel_for rt ~work:16 ~n (fun lo hi ->
        for i = lo to hi - 1 do
          let x = float_of_int i *. 1e-3 in
          out.(i) <- (sin x *. exp (-.x)) +. sqrt (x +. 1.0)
        done);
    out
  in
  let reference = compute Parallel.sequential in
  List.iter
    (fun d ->
      let pool =
        Parallel.create ~domains:d ~oversubscribe:true ~min_fanout_work:0 ()
      in
      Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
      for run = 1 to 5 do
        let got = compute pool in
        let ok = ref true in
        for i = 0 to n - 1 do
          if Int64.bits_of_float got.(i) <> Int64.bits_of_float reference.(i)
          then ok := false
        done;
        check_bool
          (Printf.sprintf "%d-domain stolen run %d bit-identical" d run)
          true !ok
      done)
    [ 2; 4 ]

(* A compiled fused executor on an oversubscribed pool: repeated runs of
   the very same executor (chunks stolen in a different order every time)
   must stay bitwise equal to the sequential unfused reference. *)
let test_executor_repeated_runs_deterministic () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  let model = lm.Language_model.model in
  let g = (Model.training model).Echo_autodiff.Grad.graph in
  let rng = Rng.create 7 in
  let feeds =
    List.map
      (fun node ->
        ( node,
          Tensor.init (Node.shape node) (fun _ ->
              float_of_int (Rng.int rng 40)) ))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  let bits t =
    Array.init (Tensor.numel t) (fun i -> Int64.bits_of_float (Tensor.get1 t i))
  in
  let reference =
    List.map bits
      (Executor.eval (Executor.compile ~runtime:Parallel.sequential g) ~feeds)
  in
  let pool =
    Parallel.create ~domains:4 ~oversubscribe:true ~min_fanout_work:0 ()
  in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let fusion = Fuse.analyse g in
  let exe = Executor.compile ~runtime:pool ~fusion g in
  for run = 1 to 3 do
    check_bool
      (Printf.sprintf "fused 4-domain run %d bit-identical" run)
      true
      (List.for_all2
         (fun expect t -> bits t = expect)
         reference
         (Executor.eval exe ~feeds))
  done

(* --- the profitability valve of the unified cost model --- *)

let test_profitable_valve () =
  let x = Node.placeholder [| 64; 64 |] in
  let y = Node.variable [| 64; 64 |] in
  let g = Graph.create [ Node.tanh_ (Node.sigmoid (Node.add x y)) ] in
  let unrestricted = Fuse.analyse g in
  check_bool "chain fuses unrestricted" true
    (Fuse.group_count unrestricted > 0);
  (* Default host model: fusing strictly saves dispatches and traffic
     without adding work, so every group survives the valve. *)
  let default_cfg = Fusion.of_runtime Parallel.sequential in
  check_int "default model keeps every group"
    (Fuse.group_count unrestricted)
    (Fuse.group_count (Fuse.analyse ~keep:(Fusion.profitable default_cfg) g));
  (* Exaggerated config: 4-way fan-out, a work gate sitting between the
     members' work (8 * 4096 = 32768 scalar ops for the transcendentals)
     and the fused group's sum (69632), and a ruinous fan-out overhead.
     The merged kernel crosses the gate its members stayed under, so the
     model predicts a loss and the valve unfuses the chain. *)
  let cfg =
    {
      default_cfg with
      Fusion.domains = 4;
      min_fanout_work = 50_000;
      fanout_overhead_s = 10.0;
    }
  in
  check_bool "exaggerated model rejects the group" false
    (List.for_all (Fusion.profitable cfg) (Fuse.groups unrestricted));
  check_int "valve unfuses the chain" 0
    (Fuse.group_count (Fuse.analyse ~keep:(Fusion.profitable cfg) g));
  (* host_graph_time prices the plan it would emit: with the valve biting,
     the fused and unfused predictions coincide. *)
  Alcotest.(check (float 1e-12))
    "rejected plan priced as unfused"
    (Fusion.host_graph_time cfg ~fuse:false g)
    (Fusion.host_graph_time cfg ~fuse:true g)

(* --- the joint (planner, fuse, domains, threshold) search --- *)

let test_fit_exec_search () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 30;
        embed = 8;
        hidden = 8;
        layers = 1;
        seq_len = 4;
        batch = 2;
        dropout = 0.0;
      }
  in
  let model = lm.Language_model.model in
  let g = (Model.training model).Echo_autodiff.Grad.graph in
  let device = Echo_gpusim.Device.titan_xp in
  match A.fit_exec ~device g ~budget_bytes:max_int with
  | None -> Alcotest.fail "fit_exec found no combo under an unlimited budget"
  | Some choice ->
    check_bool "prediction positive" true (choice.A.predicted_s > 0.0);
    check_bool "domains candidate" true
      (List.mem choice.A.combo.A.domains A.default_domain_candidates);
    check_bool "threshold candidate" true
      (List.mem choice.A.combo.A.blocking_threshold
         A.default_threshold_candidates);
    (* The budget is honoured: ask for one byte and the search must fail
       (every plan's arena is positive). *)
    check_bool "impossible budget refused" true
      (A.fit_exec ~device g ~budget_bytes:1 = None);
    (* Compiling under the chosen combo reproduces the sequential unfused
       reference bit for bit. *)
    let rng = Rng.create 5 in
    let feeds =
      List.map
        (fun node ->
          ( node,
            Tensor.init (Node.shape node) (fun _ ->
                float_of_int (Rng.int rng 30)) ))
        model.Model.placeholders
      @ Params.bindings model.Model.params
    in
    let g' = choice.A.chosen.A.graph in
    let reference =
      Executor.eval (Executor.compile ~runtime:Parallel.sequential g') ~feeds
    in
    let runtime = A.combo_runtime choice.A.combo in
    Fun.protect ~finally:(fun () -> Parallel.shutdown runtime) @@ fun () ->
    let exe =
      if choice.A.combo.A.fuse then
        Executor.compile ~runtime ~fusion:(Fuse.analyse g') g'
      else Executor.compile ~runtime g'
    in
    check_bool "tuned combo bit-identical" true
      (List.for_all2
         (fun a b ->
           Shape.equal (Tensor.shape a) (Tensor.shape b)
           &&
           let ok = ref true in
           for i = 0 to Tensor.numel a - 1 do
             if
               Int64.bits_of_float (Tensor.get1 a i)
               <> Int64.bits_of_float (Tensor.get1 b i)
             then ok := false
           done;
           !ok)
         reference (Executor.eval exe ~feeds))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "parallel",
      [
        t "ECHO_DOMAINS parsing" test_env_domains_parsing;
        t "ECHO_FUSION parsing" test_env_fusion_parsing;
        t "create validation" test_create_validation;
        t "with_config views" test_with_config_views;
        QCheck_alcotest.to_alcotest prop_parallel_for_coverage;
        t "work stealing deterministic" test_stealing_determinism;
        t "fused executor repeated runs" test_executor_repeated_runs_deterministic;
        t "profitability valve" test_profitable_valve;
        t "fit_exec joint search" test_fit_exec_search;
      ] );
  ]
