(* Unit and property tests for the dense tensor kernels. *)

open Echo_tensor

let t2 = Tensor.of_list2
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

let assert_tensor msg expected actual =
  if not (Tensor.approx_equal ~tol:1e-12 expected actual) then
    Alcotest.failf "%s: expected %s got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* Construction *)

let test_create_validates () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Tensor.create: 3 elements for shape [2x2]") (fun () ->
      ignore (Tensor.create [| 2; 2 |] [| 1.0; 2.0; 3.0 |]))

let test_fill_constructors () =
  check_float "zeros" 0.0 (Tensor.sum (Tensor.zeros [| 3; 3 |]));
  check_float "ones" 9.0 (Tensor.sum (Tensor.ones [| 3; 3 |]));
  check_float "full" 4.5 (Tensor.sum (Tensor.full [| 3 |] 1.5));
  check_float "scalar" 2.5 (Tensor.get1 (Tensor.scalar 2.5) 0)

let test_init_by_index () =
  let t = Tensor.init [| 2; 3 |] (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  assert_tensor "init" (t2 [ [ 0.; 1.; 2. ]; [ 10.; 11.; 12. ] ]) t

let test_of_list2_ragged () =
  check_bool "ragged raises" true
    (try
       ignore (t2 [ [ 1.0 ]; [ 1.0; 2.0 ] ]);
       false
     with Invalid_argument _ -> true)

let test_get_set () =
  let t = Tensor.zeros [| 2; 2 |] in
  Tensor.set t [| 1; 0 |] 5.0;
  check_float "get" 5.0 (Tensor.get t [| 1; 0 |]);
  check_float "get1 linear" 5.0 (Tensor.get1 t 2)

let test_copy_is_deep () =
  let a = Tensor.zeros [| 2 |] in
  let b = Tensor.copy a in
  Tensor.set1 b 0 9.0;
  check_float "original untouched" 0.0 (Tensor.get1 a 0)

(* Elementwise *)

let test_binary_ops () =
  let a = t2 [ [ 1.; 2. ]; [ 3.; 4. ] ] and b = t2 [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  assert_tensor "add" (t2 [ [ 6.; 8. ]; [ 10.; 12. ] ]) (Tensor.add a b);
  assert_tensor "sub" (t2 [ [ -4.; -4. ]; [ -4.; -4. ] ]) (Tensor.sub a b);
  assert_tensor "mul" (t2 [ [ 5.; 12. ]; [ 21.; 32. ] ]) (Tensor.mul a b);
  assert_tensor "div" (t2 [ [ 0.2; 2. /. 6. ]; [ 3. /. 7.; 0.5 ] ]) (Tensor.div a b)

let test_binary_shape_mismatch () =
  check_bool "raises" true
    (try
       ignore (Tensor.add (Tensor.zeros [| 2 |]) (Tensor.zeros [| 3 |]));
       false
     with Invalid_argument _ -> true)

let test_unary_ops () =
  let x = Tensor.of_list1 [ -1.0; 0.0; 2.0 ] in
  assert_tensor "neg" (Tensor.of_list1 [ 1.0; 0.0; -2.0 ]) (Tensor.neg x);
  assert_tensor "relu" (Tensor.of_list1 [ 0.0; 0.0; 2.0 ]) (Tensor.relu x);
  assert_tensor "sq" (Tensor.of_list1 [ 1.0; 0.0; 4.0 ]) (Tensor.sq x);
  assert_tensor "sign" (Tensor.of_list1 [ -1.0; 0.0; 1.0 ]) (Tensor.sign x);
  assert_tensor "scale" (Tensor.of_list1 [ -2.0; 0.0; 4.0 ]) (Tensor.scale 2.0 x);
  assert_tensor "add_scalar" (Tensor.of_list1 [ 0.0; 1.0; 3.0 ]) (Tensor.add_scalar 1.0 x)

let test_sigmoid_tanh () =
  let x = Tensor.of_list1 [ 0.0 ] in
  check_float "sigmoid(0)" 0.5 (Tensor.get1 (Tensor.sigmoid x) 0);
  check_float "tanh(0)" 0.0 (Tensor.get1 (Tensor.tanh_ x) 0);
  let big = Tensor.of_list1 [ 30.0 ] in
  check_bool "sigmoid saturates" true (Tensor.get1 (Tensor.sigmoid big) 0 > 0.999999)

(* Matmul *)

let test_matmul_basic () =
  let a = t2 [ [ 1.; 2. ]; [ 3.; 4. ] ] and b = t2 [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  assert_tensor "ab" (t2 [ [ 19.; 22. ]; [ 43.; 50. ] ]) (Tensor.matmul a b)

let test_matmul_transposes () =
  let a = t2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] (* 2x3 *) in
  let b = t2 [ [ 1.; 0. ]; [ 0.; 1. ]; [ 1.; 1. ] ] (* 3x2 *) in
  let plain = Tensor.matmul a b in
  assert_tensor "trans_a" plain (Tensor.matmul ~trans_a:true (Tensor.transpose2d a) b);
  assert_tensor "trans_b" plain (Tensor.matmul ~trans_b:true a (Tensor.transpose2d b));
  assert_tensor "both" plain
    (Tensor.matmul ~trans_a:true ~trans_b:true (Tensor.transpose2d a)
       (Tensor.transpose2d b))

let test_matmul_identity () =
  let rng = Rng.create 1 in
  let a = Tensor.uniform rng [| 4; 4 |] ~lo:(-1.0) ~hi:1.0 in
  let id = Tensor.init [| 4; 4 |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
  assert_tensor "aI = a" a (Tensor.matmul a id);
  assert_tensor "Ia = a" a (Tensor.matmul id a)

let test_matmul_inner_mismatch () =
  check_bool "raises" true
    (try
       ignore (Tensor.matmul (Tensor.zeros [| 2; 3 |]) (Tensor.zeros [| 2; 3 |]));
       false
     with Invalid_argument _ -> true)

(* Bitwise tensor equality: [Tensor.equal]'s structural compare conflates
   0.0 with -0.0, which is exactly where a kernel that mishandles the
   a(i,l) = 0 skip would hide. *)
let bits_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let ok = ref true in
  for i = 0 to Tensor.numel a - 1 do
    if
      Int64.bits_of_float (Tensor.get1 a i)
      <> Int64.bits_of_float (Tensor.get1 b i)
    then ok := false
  done;
  !ok

(* Independent scalar oracle for the documented matmul semantics: each
   output element accumulates in ascending l, skipping terms whose a-side
   factor is exactly 0.0. Every kernel path must match this bit for bit. *)
let matmul_oracle ~trans_a ~trans_b ~m ~n ~k a b =
  Tensor.init [| m; n |] (fun idx ->
      let i = idx.(0) and j = idx.(1) in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        let x =
          if trans_a then Tensor.get a [| l; i |] else Tensor.get a [| i; l |]
        in
        if x <> 0.0 then
          let bv =
            if trans_b then Tensor.get b [| j; l |] else Tensor.get b [| l; j |]
          in
          acc := !acc +. (x *. bv)
      done;
      !acc)

(* Uniform matrix with ~25% exact zeros so the skip path (and its
   interaction with signed zeros downstream) is actually exercised. *)
let sparse_uniform rng shape =
  let t = Tensor.uniform rng shape ~lo:(-1.0) ~hi:1.0 in
  for i = 0 to Tensor.numel t - 1 do
    if Rng.float rng < 0.25 then Tensor.set1 t i 0.0
  done;
  t

(* Sweep sizes across the blocking threshold, all four transpose variants,
   forced-naive / default / forced-blocked thresholds, and sequential vs a
   2-domain pool. The threshold is per-runtime configuration now, so every
   point is a fresh [with_config] view; the pool is oversubscribed past the
   hardware cap with the work gate open, so the fan-out + work-stealing
   path genuinely runs even on one core. Every combination must be bitwise
   equal to the oracle. [dst] starts as NaN so an unwritten element can
   never pass. *)
let test_matmul_blocked_sweep () =
  let sizes = [ (1, 1, 1); (3, 5, 2); (8, 8, 8); (17, 33, 9); (40, 40, 40); (64, 32, 48) ] in
  let pool =
    Parallel.create ~domains:2 ~oversubscribe:true ~min_fanout_work:0 ()
  in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let rng = Rng.create 11 in
  let default_threshold = Parallel.blocking_threshold Parallel.sequential in
  List.iter
    (fun (m, n, k) ->
      List.iter
        (fun (trans_a, trans_b) ->
          let a = sparse_uniform rng (if trans_a then [| k; m |] else [| m; k |]) in
          let b = sparse_uniform rng (if trans_b then [| n; k |] else [| k; n |]) in
          let expect = matmul_oracle ~trans_a ~trans_b ~m ~n ~k a b in
          List.iter
            (fun threshold ->
              List.iter
                (fun (rt_name, base) ->
                  let runtime =
                    Parallel.with_config ~blocking_threshold:threshold base
                  in
                  let dst = Tensor.full [| m; n |] Float.nan in
                  Tensor.Into.matmul ~runtime ~trans_a ~trans_b a b ~dst;
                  if not (bits_equal expect dst) then
                    Alcotest.failf
                      "matmul %dx%dx%d ta=%b tb=%b threshold=%d runtime=%s \
                       differs from oracle"
                      m n k trans_a trans_b threshold rt_name)
                [ ("seq", Parallel.sequential); ("pool2", pool) ])
            [ 0; default_threshold; max_int ];
          if not (bits_equal expect (Tensor.matmul ~trans_a ~trans_b a b))
          then
            Alcotest.failf
              "allocating matmul %dx%dx%d ta=%b tb=%b differs from oracle"
              m n k trans_a trans_b)
        [ (false, false); (true, false); (false, true); (true, true) ])
    sizes

let test_add_bias () =
  let m = t2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Tensor.of_list1 [ 10.; 20. ] in
  assert_tensor "rows shifted" (t2 [ [ 11.; 22. ]; [ 13.; 24. ] ]) (Tensor.add_bias m b)

let test_outer () =
  let a = Tensor.of_list1 [ 1.; 2. ] and b = Tensor.of_list1 [ 3.; 4.; 5. ] in
  assert_tensor "outer" (t2 [ [ 3.; 4.; 5. ]; [ 6.; 8.; 10. ] ]) (Tensor.outer a b)

(* Shape manipulation *)

let test_reshape () =
  let t = Tensor.of_list1 [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let m = Tensor.reshape t [| 2; 3 |] in
  check_float "row-major layout" 4.0 (Tensor.get m [| 1; 0 |]);
  check_bool "bad reshape raises" true
    (try
       ignore (Tensor.reshape t [| 4; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_transpose2d () =
  let t = t2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  assert_tensor "transpose" (t2 [ [ 1.; 4. ]; [ 2.; 5. ]; [ 3.; 6. ] ]) (Tensor.transpose2d t)

let test_slice_axis0 () =
  let t = t2 [ [ 1.; 2. ]; [ 3.; 4. ]; [ 5.; 6. ] ] in
  assert_tensor "rows 1-2" (t2 [ [ 3.; 4. ]; [ 5.; 6. ] ]) (Tensor.slice ~axis:0 ~lo:1 ~hi:3 t)

let test_slice_axis1 () =
  let t = t2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  assert_tensor "col 1" (t2 [ [ 2. ]; [ 5. ] ]) (Tensor.slice ~axis:1 ~lo:1 ~hi:2 t)

let test_concat_axis0 () =
  let a = t2 [ [ 1.; 2. ] ] and b = t2 [ [ 3.; 4. ]; [ 5.; 6. ] ] in
  assert_tensor "stack" (t2 [ [ 1.; 2. ]; [ 3.; 4. ]; [ 5.; 6. ] ]) (Tensor.concat ~axis:0 [ a; b ])

let test_concat_axis1 () =
  let a = t2 [ [ 1. ]; [ 3. ] ] and b = t2 [ [ 2. ]; [ 4. ] ] in
  assert_tensor "side by side" (t2 [ [ 1.; 2. ]; [ 3.; 4. ] ]) (Tensor.concat ~axis:1 [ a; b ])

let test_pad_slice () =
  let t = t2 [ [ 7.; 8. ] ] in
  assert_tensor "embedded"
    (t2 [ [ 0.; 0. ]; [ 7.; 8. ]; [ 0.; 0. ] ])
    (Tensor.pad_slice ~axis:0 ~lo:1 ~full:3 t)

let test_slice_concat_roundtrip () =
  let rng = Rng.create 2 in
  let t = Tensor.uniform rng [| 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let parts =
    [ Tensor.slice ~axis:1 ~lo:0 ~hi:2 t;
      Tensor.slice ~axis:1 ~lo:2 ~hi:5 t;
      Tensor.slice ~axis:1 ~lo:5 ~hi:6 t ]
  in
  assert_tensor "roundtrip" t (Tensor.concat ~axis:1 parts)

(* Reductions *)

let test_reduce_sum () =
  let t = t2 [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  assert_tensor "axis0" (Tensor.of_list1 [ 5.; 7.; 9. ])
    (Tensor.reduce_sum ~axis:0 ~keepdims:false t);
  assert_tensor "axis1 keep" (t2 [ [ 6. ]; [ 15. ] ])
    (Tensor.reduce_sum ~axis:1 ~keepdims:true t);
  check_float "full sum" 21.0 (Tensor.sum t);
  check_float "mean" 3.5 (Tensor.mean t);
  check_float "max" 6.0 (Tensor.max_elt t)

let test_reduce_mean () =
  let t = t2 [ [ 2.; 4. ]; [ 6.; 8. ] ] in
  assert_tensor "axis1" (Tensor.of_list1 [ 3.; 7. ])
    (Tensor.reduce_mean ~axis:1 ~keepdims:false t)

let test_broadcast_axis () =
  let t = t2 [ [ 1.; 2. ] ] in
  assert_tensor "repeat rows" (t2 [ [ 1.; 2. ]; [ 1.; 2. ]; [ 1.; 2. ] ])
    (Tensor.broadcast_axis ~axis:0 ~n:3 t);
  check_bool "axis dim must be 1" true
    (try
       ignore (Tensor.broadcast_axis ~axis:0 ~n:3 (t2 [ [ 1. ]; [ 2. ] ]));
       false
     with Invalid_argument _ -> true)

let test_frobenius () =
  check_float "3-4-5" 5.0 (Tensor.frobenius (Tensor.of_list1 [ 3.0; 4.0 ]))

(* NN kernels *)

let test_softmax_rows () =
  let t = t2 [ [ 1.; 1.; 1. ]; [ 0.; 100.; 0. ] ] in
  let s = Tensor.softmax t in
  check_float "uniform row" (1.0 /. 3.0) (Tensor.get s [| 0; 0 |]);
  check_bool "peaked row" true (Tensor.get s [| 1; 1 |] > 0.999999);
  check_float "row sums" 1.0 (Tensor.sum (Tensor.slice ~axis:0 ~lo:0 ~hi:1 s))

let test_log_softmax_consistent () =
  let rng = Rng.create 3 in
  let t = Tensor.uniform rng [| 3; 5 |] ~lo:(-4.0) ~hi:4.0 in
  assert_tensor "log softmax = log(softmax)" (Tensor.log_ (Tensor.softmax t))
    (Tensor.log_softmax t)

let test_cross_entropy_manual () =
  let logits = t2 [ [ 0.; 0. ]; [ 0.; 0. ] ] in
  let labels = Tensor.of_list1 [ 0.; 1. ] in
  check_float "uniform logits -> log 2" (log 2.0) (Tensor.cross_entropy ~logits ~labels)

let test_cross_entropy_grad_rows_sum_zero () =
  let rng = Rng.create 4 in
  let logits = Tensor.uniform rng [| 4; 6 |] ~lo:(-2.0) ~hi:2.0 in
  let labels = Tensor.of_list1 [ 0.; 5.; 3.; 2. ] in
  let g = Tensor.cross_entropy_grad ~logits ~labels in
  for r = 0 to 3 do
    check_float "row sums to 0" 0.0 (Tensor.sum (Tensor.slice ~axis:0 ~lo:r ~hi:(r + 1) g))
  done

let test_cross_entropy_label_out_of_range () =
  check_bool "raises" true
    (try
       ignore
         (Tensor.cross_entropy
            ~logits:(Tensor.zeros [| 1; 2 |])
            ~labels:(Tensor.of_list1 [ 5.0 ]));
       false
     with Invalid_argument _ -> true)

let test_dropout_mask () =
  let m = Tensor.dropout_mask ~seed:7 ~p:0.5 [| 1000 |] in
  let m' = Tensor.dropout_mask ~seed:7 ~p:0.5 [| 1000 |] in
  check_bool "deterministic" true (Tensor.equal m m');
  let zeros = ref 0 in
  for i = 0 to 999 do
    let v = Tensor.get1 m i in
    check_bool "0 or 1/(1-p)" true (v = 0.0 || v = 2.0);
    if v = 0.0 then incr zeros
  done;
  check_bool "roughly half dropped" true (!zeros > 400 && !zeros < 600);
  check_bool "p=1 invalid" true
    (try
       ignore (Tensor.dropout_mask ~seed:1 ~p:1.0 [| 2 |]);
       false
     with Invalid_argument _ -> true)

let test_embedding () =
  let table = t2 [ [ 1.; 2. ]; [ 3.; 4. ]; [ 5.; 6. ] ] in
  let ids = Tensor.of_list1 [ 2.; 0. ] in
  assert_tensor "gathered" (t2 [ [ 5.; 6. ]; [ 1.; 2. ] ]) (Tensor.embedding ~table ~ids)

let test_embedding_grad_scatter_adds () =
  let ids = Tensor.of_list1 [ 1.; 1.; 0. ] in
  let grad_out = t2 [ [ 1.; 1. ]; [ 2.; 2. ]; [ 5.; 5. ] ] in
  assert_tensor "repeated ids accumulate"
    (t2 [ [ 5.; 5. ]; [ 3.; 3. ]; [ 0.; 0. ] ])
    (Tensor.embedding_grad ~table_shape:[| 3; 2 |] ~ids ~grad_out)

let test_conv2d_hand () =
  (* 1x1x3x3 input, 1x1x2x2 all-ones kernel, stride 1, no padding. *)
  let input =
    Tensor.create [| 1; 1; 3; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |]
  in
  let kernel = Tensor.ones [| 1; 1; 2; 2 |] in
  let out = Tensor.conv2d ~stride:1 ~pad:0 ~input ~kernel in
  assert_tensor "windows summed"
    (Tensor.create [| 1; 1; 2; 2 |] [| 12.; 16.; 24.; 28. |])
    out

let test_conv2d_stride_pad () =
  let input = Tensor.ones [| 1; 1; 4; 4 |] in
  let kernel = Tensor.ones [| 1; 1; 3; 3 |] in
  let out = Tensor.conv2d ~stride:2 ~pad:1 ~input ~kernel in
  Alcotest.(check (list int))
    "output dims" [ 1; 1; 2; 2 ]
    (Array.to_list (Tensor.shape out));
  (* Corner window covers 2x2 ones. *)
  check_float "corner" 4.0 (Tensor.get out [| 0; 0; 0; 0 |])

let test_conv2d_channel_mismatch () =
  check_bool "raises" true
    (try
       ignore
         (Tensor.conv2d ~stride:1 ~pad:0 ~input:(Tensor.ones [| 1; 2; 3; 3 |])
            ~kernel:(Tensor.ones [| 1; 1; 2; 2 |]));
       false
     with Invalid_argument _ -> true)

let test_equal_and_diff () =
  let a = Tensor.of_list1 [ 1.0; 2.0 ] in
  check_bool "equal" true (Tensor.equal a (Tensor.copy a));
  check_float "max diff" 0.5 (Tensor.max_abs_diff a (Tensor.of_list1 [ 1.5; 2.0 ]));
  check_bool "shape mismatch -> inf" true
    (Tensor.max_abs_diff a (Tensor.zeros [| 3 |]) = infinity)

(* Properties *)

let tensor_pair_gen =
  QCheck.make
    ~print:(fun (a, b) -> Tensor.to_string a ^ " / " ^ Tensor.to_string b)
    QCheck.Gen.(
      let* rows = int_range 1 4 and* cols = int_range 1 4 in
      let* seed = int_range 0 10_000 in
      let rng = Rng.create seed in
      return
        ( Tensor.uniform rng [| rows; cols |] ~lo:(-5.0) ~hi:5.0,
          Tensor.uniform rng [| rows; cols |] ~lo:(-5.0) ~hi:5.0 ))

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:100 tensor_pair_gen (fun (a, b) ->
    Tensor.approx_equal (Tensor.add a b) (Tensor.add b a))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:100 tensor_pair_gen
    (fun (a, _) -> Tensor.equal a (Tensor.transpose2d (Tensor.transpose2d a)))

let prop_softmax_rows_sum_to_one =
  QCheck.Test.make ~name:"softmax rows sum to 1" ~count:100 tensor_pair_gen
    (fun (a, _) ->
      let s = Tensor.softmax a in
      let rows = (Tensor.shape s).(0) in
      let ok = ref true in
      for r = 0 to rows - 1 do
        let row_sum = Tensor.sum (Tensor.slice ~axis:0 ~lo:r ~hi:(r + 1) s) in
        if Float.abs (row_sum -. 1.0) > 1e-9 then ok := false
      done;
      !ok)

let prop_matmul_distributes =
  QCheck.Test.make ~name:"A(B+C) = AB + AC" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = Tensor.uniform rng [| 3; 4 |] ~lo:(-2.0) ~hi:2.0 in
      let b = Tensor.uniform rng [| 4; 2 |] ~lo:(-2.0) ~hi:2.0 in
      let c = Tensor.uniform rng [| 4; 2 |] ~lo:(-2.0) ~hi:2.0 in
      Tensor.approx_equal ~tol:1e-9
        (Tensor.matmul a (Tensor.add b c))
        (Tensor.add (Tensor.matmul a b) (Tensor.matmul a c)))

let prop_pad_slice_adjoint =
  (* <pad(u), v> = <u, slice(v)>: PadSlice and Slice are adjoint maps, the
     property the autodiff rules rely on. *)
  QCheck.Test.make ~name:"pad_slice is adjoint to slice" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let u = Tensor.uniform rng [| 2; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let v = Tensor.uniform rng [| 5; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let lhs = Tensor.sum (Tensor.mul (Tensor.pad_slice ~axis:0 ~lo:1 ~full:5 u) v) in
      let rhs = Tensor.sum (Tensor.mul u (Tensor.slice ~axis:0 ~lo:1 ~hi:3 v)) in
      Float.abs (lhs -. rhs) < 1e-9)

let prop_reduce_sum_total =
  QCheck.Test.make ~name:"reduce_sum preserves total" ~count:100 tensor_pair_gen
    (fun (a, _) ->
      Float.abs (Tensor.sum (Tensor.reduce_sum ~axis:0 ~keepdims:false a) -. Tensor.sum a)
      < 1e-9)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "tensor.construct",
      [
        t "create validates" test_create_validates;
        t "fill constructors" test_fill_constructors;
        t "init by index" test_init_by_index;
        t "of_list2 ragged" test_of_list2_ragged;
        t "get/set" test_get_set;
        t "copy is deep" test_copy_is_deep;
      ] );
    ( "tensor.elementwise",
      [
        t "binary ops" test_binary_ops;
        t "shape mismatch" test_binary_shape_mismatch;
        t "unary ops" test_unary_ops;
        t "sigmoid/tanh" test_sigmoid_tanh;
        QCheck_alcotest.to_alcotest prop_add_commutes;
      ] );
    ( "tensor.linalg",
      [
        t "matmul basic" test_matmul_basic;
        t "matmul transposes" test_matmul_transposes;
        t "matmul identity" test_matmul_identity;
        t "matmul mismatch" test_matmul_inner_mismatch;
        t "matmul blocked/parallel sweep" test_matmul_blocked_sweep;
        t "add_bias" test_add_bias;
        t "outer" test_outer;
        QCheck_alcotest.to_alcotest prop_matmul_distributes;
      ] );
    ( "tensor.shape_ops",
      [
        t "reshape" test_reshape;
        t "transpose2d" test_transpose2d;
        t "slice axis0" test_slice_axis0;
        t "slice axis1" test_slice_axis1;
        t "concat axis0" test_concat_axis0;
        t "concat axis1" test_concat_axis1;
        t "pad_slice" test_pad_slice;
        t "slice/concat roundtrip" test_slice_concat_roundtrip;
        QCheck_alcotest.to_alcotest prop_transpose_involution;
        QCheck_alcotest.to_alcotest prop_pad_slice_adjoint;
      ] );
    ( "tensor.reduce",
      [
        t "reduce_sum" test_reduce_sum;
        t "reduce_mean" test_reduce_mean;
        t "broadcast_axis" test_broadcast_axis;
        t "frobenius" test_frobenius;
        QCheck_alcotest.to_alcotest prop_reduce_sum_total;
      ] );
    ( "tensor.nn",
      [
        t "softmax rows" test_softmax_rows;
        t "log_softmax consistent" test_log_softmax_consistent;
        t "cross entropy manual" test_cross_entropy_manual;
        t "xent grad rows sum 0" test_cross_entropy_grad_rows_sum_zero;
        t "xent label range" test_cross_entropy_label_out_of_range;
        t "dropout mask" test_dropout_mask;
        t "embedding" test_embedding;
        t "embedding grad scatter" test_embedding_grad_scatter_adds;
        t "conv2d hand" test_conv2d_hand;
        t "conv2d stride/pad" test_conv2d_stride_pad;
        t "conv2d channel mismatch" test_conv2d_channel_mismatch;
        t "equality helpers" test_equal_and_diff;
        QCheck_alcotest.to_alcotest prop_softmax_rows_sum_to_one;
      ] );
  ]
