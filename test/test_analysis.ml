(* Echo-verify: the static plan-sanitizer layer.

   Two halves. Negative tests drive the mutation harness: each deliberate
   corruption of an otherwise sound artifact (overlapped slots, a
   retargeted in-place donor, a reseeded clone, a region-crossing fusion
   group, a broken schedule) must make exactly the checker built for it
   fire. Clean-pass tests sweep the model zoo x policy x fusion matrix and
   assert the verifier finds nothing on artifacts the pipeline actually
   produces — the checkers must be sound AND quiet. *)

open Echo_ir
open Echo_models
open Echo_core
module Verify = Echo_analysis.Verify
module Mutate = Echo_analysis.Mutate
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor
module Report = Echo_diag.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dev = Echo_gpusim.Device.titan_xp

let has_error ~check report =
  List.exists
    (fun d -> d.Echo_diag.severity = Echo_diag.Error)
    (Report.with_check check report)

let require name = function
  | Some v -> v
  | None -> Alcotest.failf "%s: the mutation found no corruption site" name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let tiny_lm_cfg =
  {
    Language_model.ptb_default with
    vocab = 80;
    embed = 16;
    hidden = 16;
    layers = 2;
    seq_len = 8;
    batch = 4;
    dropout = 0.2;
  }

let lm_training_graph () =
  let lm = Language_model.build tiny_lm_cfg in
  (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph

let rewritten policy =
  let g, _ = Pass.run ~device:dev policy (lm_training_graph ()) in
  g

(* ---------------- diagnostics plumbing ---------------- *)

let test_report_collects_and_counts () =
  let r = Report.create () in
  Report.errorf r ~check:"a" ~stage:"s" ~nodes:[ 1; 2 ] "first %d" 1;
  Report.warnf r ~check:"b" ~stage:"s" ~nodes:[] "second";
  Report.infof r ~check:"a" ~stage:"s" ~nodes:[ 3 ] "third";
  check_int "errors" 1 (Report.error_count r);
  check_int "warnings" 1 (Report.warning_count r);
  check_int "infos" 1 (Report.info_count r);
  check_bool "has_errors" true (Report.has_errors r);
  check_bool "not clean" false (Report.is_clean r);
  check_int "check filter" 2 (List.length (Report.with_check "a" r));
  (match Report.diags r with
  | [ d1; _; _ ] ->
    check_bool "in order" true (d1.Echo_diag.message = "first 1");
    check_bool "pp mentions check and stage" true
      (contains ~sub:"a@s" (Echo_diag.to_string d1))
  | _ -> Alcotest.fail "expected three diagnostics in order")

let test_check_exn_raises_on_errors () =
  let clean = Report.create () in
  Verify.check_exn clean;
  let dirty = Report.create () in
  Report.errorf dirty ~check:"x" ~stage:"s" ~nodes:[] "boom";
  check_bool "raises" true
    (match Verify.check_exn dirty with
    | () -> false
    | exception Verify.Verify_failed r -> Report.has_errors r)

(* ---------------- satellite ports: Graph.check / Assign.check -------- *)

let test_graph_check_clean_and_validate () =
  let g = lm_training_graph () in
  check_bool "graph check clean" true (Report.is_clean (Graph.check g));
  Graph.validate g

let test_assign_check_collects_all_corruptions () =
  let g = rewritten Pass.Stash_all in
  let a = Echo_exec.Assign.assign g in
  check_bool "sound plan is clean" true
    (Report.is_clean (Echo_exec.Assign.check a));
  Echo_exec.Assign.validate a;
  (* Two independent corruptions -> two diagnostics in one report: the
     collect-all port, where the old validate stopped at the first. *)
  let corrupted =
    require "overlap_slots"
      (Mutate.overlap_slots (require "escape_slot" (Mutate.escape_slot a)))
  in
  let report = Echo_exec.Assign.check corrupted in
  check_bool "collects at least two" true (Report.error_count report >= 2);
  check_bool "validate raises" true
    (match Echo_exec.Assign.validate corrupted with
    | () -> false
    | exception Failure _ -> true)

(* ---------------- negative tests: one per checker ---------------- *)

let test_schedule_checker_fires_on_broken_order () =
  let g = rewritten Pass.Stash_all in
  check_int "sound schedule" 0 (Report.error_count (Verify.check_schedule g));
  let schedule = require "swap_schedule" (Mutate.swap_schedule g) in
  check_bool "fires" true
    (has_error ~check:"schedule" (Verify.check_schedule ~schedule g))

let test_offset_checker_fires_on_overlap_and_escape () =
  let g = rewritten Pass.Stash_all in
  let a = Echo_exec.Assign.assign g in
  check_int "sound offsets" 0 (Report.error_count (Verify.check_offsets g a));
  check_bool "overlap fires" true
    (has_error ~check:"assign"
       (Verify.check_offsets g (require "overlap" (Mutate.overlap_slots a))));
  check_bool "escape fires" true
    (has_error ~check:"assign"
       (Verify.check_offsets g (require "escape" (Mutate.escape_slot a))))

let unfused_binding g =
  let exe = Pipeline.compile_graph ~fuse:false g in
  Executor.buffer_binding (Pipeline.executor exe)

let test_alias_checker_fires_on_shared_live_buffer () =
  let g = rewritten Pass.Stash_all in
  let binding = unfused_binding g in
  check_int "sound binding" 0
    (Report.error_count (Verify.check_binding g binding));
  let corrupted = require "alias_binding" (Mutate.alias_binding g binding) in
  check_bool "fires" true
    (has_error ~check:"alias" (Verify.check_binding g corrupted))

let test_inplace_checker_fires_on_retargeted_donor () =
  let g = rewritten Pass.Stash_all in
  let binding = unfused_binding g in
  let corrupted =
    require "retarget_inplace" (Mutate.retarget_inplace g binding)
  in
  check_bool "fires" true
    (has_error ~check:"inplace" (Verify.check_binding g corrupted))

let test_recompute_checker_fires_on_reseeded_clone () =
  let g = rewritten Pass.Recompute_all in
  check_int "sound clones" 0 (Report.error_count (Verify.check_recompute g));
  let reseeded = require "reseed_clone" (Mutate.reseed_clone g) in
  check_bool "fires" true
    (has_error ~check:"recompute" (Verify.check_recompute reseeded))

let test_recompute_checker_fires_on_late_clone () =
  let g = rewritten Pass.Recompute_all in
  let late = require "bad_clone_hint" (Mutate.bad_clone_hint g) in
  check_bool "fires" true
    (has_error ~check:"recompute" (Verify.check_recompute late))

let test_fusion_checker_fires_on_region_crossing () =
  let g = rewritten Pass.Stash_all in
  check_int "sound plan" 0
    (Report.error_count (Verify.check_fusion g (Fuse.analyse g)));
  let crossing = require "cross_region_group" (Mutate.cross_region_group g) in
  let report = Verify.check_fusion g crossing in
  check_bool "fires" true (has_error ~check:"fusion" report);
  check_bool "names the boundary" true
    (List.exists
       (fun d -> contains ~sub:"forward/backward boundary" d.Echo_diag.message)
       (Report.with_check "fusion" report))

let test_fusion_checker_fires_on_handmade_corruptions () =
  let x = Node.placeholder ~name:"x" [| 4; 4 |] in
  let a = Node.sigmoid x in
  let b = Node.tanh_ a in
  let chain = Graph.create [ b ] in
  let plan = Fuse.analyse chain in
  check_int "one group" 1 (Fuse.group_count plan);
  check_int "sound" 0 (Report.error_count (Verify.check_fusion chain plan));
  (* Externals over budget. *)
  check_bool "over budget fires" true
    (has_error ~check:"fusion"
       (Verify.check_fusion ~max_externals:0 chain plan));
  (* An interior that is also a graph output never materialises. *)
  let leaky = Graph.create [ a; b ] in
  let corrupt =
    Fuse.of_groups [ { Fuse.members = [ a; b ]; root = b; externals = [ x ] } ]
  in
  check_bool "interior output fires" true
    (has_error ~check:"fusion" (Verify.check_fusion leaky corrupt));
  (* A root that is not the chain's last member. *)
  let wrong_root =
    Fuse.of_groups [ { Fuse.members = [ a; b ]; root = a; externals = [ x ] } ]
  in
  check_bool "wrong root fires" true
    (has_error ~check:"fusion" (Verify.check_fusion chain wrong_root))

let test_fallback_checker_counts_and_cross_checks () =
  let g = rewritten Pass.Stash_all in
  (* No conv ops in the LM: silent when counts agree, an error when the
     executor claims fallbacks the graph cannot contain. *)
  check_int "silent" 0
    (Report.error_count (Verify.check_fallbacks ~compiled_count:0 g)
    + Report.info_count (Verify.check_fallbacks ~compiled_count:0 g));
  check_bool "mismatch fires" true
    (has_error ~check:"fallback" (Verify.check_fallbacks ~compiled_count:1 g))

let test_determinism_notes_shared_seeds () =
  let m1 = Node.dropout_mask ~name:"m1" ~p:0.5 ~seed:7 [| 2; 2 |] in
  let m2 = Node.dropout_mask ~name:"m2" ~p:0.5 ~seed:7 [| 2; 2 |] in
  let g = Graph.create [ Node.mul m1 m2 ] in
  let report = Verify.check_determinism g in
  check_int "no errors" 0 (Report.error_count report);
  check_bool "info notes the collision" true (Report.info_count report >= 1)

(* ---------------- clean passes ---------------- *)

let zoo_models () =
  [
    (Language_model.build tiny_lm_cfg).Language_model.model;
    (Nmt.build
       {
         Nmt.gnmt_like with
         src_vocab = 20;
         tgt_vocab = 20;
         embed = 6;
         hidden = 6;
         enc_layers = 1;
         dec_layers = 1;
         src_len = 3;
         tgt_len = 3;
         batch = 2;
         dropout = 0.1;
       })
      .Nmt.model;
    (Deepspeech.build
       {
         Deepspeech.ds2_like with
         batch = 1;
         time = 12;
         freq = 8;
         conv_channels = 2;
         rnn_hidden = 4;
         rnn_layers = 1;
         classes = 5;
         dropout = 0.0;
       })
      .Deepspeech.model;
    (Transformer.build
       {
         Transformer.base_like with
         vocab = 20;
         seq_len = 4;
         batch = 2;
         d_model = 8;
         heads = 2;
         d_ff = 12;
         layers = 1;
         dropout = 0.1;
       })
      .Transformer.model;
  ]

let matrix_policies =
  [
    Pass.Stash_all;
    Pass.Echo { overhead_budget = 0.2 };
    Pass.Checkpoint_sqrt;
    Pass.Recompute_all;
  ]

let test_zoo_matrix_lints_clean () =
  (* Every E1 model x every policy x fusion on/off: the full lint (with the
     offset assignment computed) reports no errors and no warnings on real
     compiled artifacts. DS2's conv fallbacks surface as info, which a
     clean pass allows. *)
  List.iter
    (fun model ->
      let src = Pipeline.of_model model in
      let opt = Pipeline.optimize (Pipeline.differentiate src) in
      List.iter
        (fun policy ->
          let pl =
            Pipeline.plan ~offsets:true
              (Pipeline.rewrite ~device:dev ~policy opt)
          in
          List.iter
            (fun fusion ->
              let exe =
                Pipeline.compile (Pipeline.fuse ~enabled:fusion pl)
              in
              let report = Pipeline.verify (Pipeline.Executable exe) in
              let label =
                Printf.sprintf "%s/%s/fuse=%b" model.Model.name
                  (Pass.policy_name policy) fusion
              in
              check_int (label ^ " errors") 0 (Report.error_count report);
              check_int (label ^ " warnings") 0 (Report.warning_count report))
            [ true; false ])
        matrix_policies)
    (zoo_models ())

let test_every_stage_verifies_clean () =
  let model = (Language_model.build tiny_lm_cfg).Language_model.model in
  let src = Pipeline.of_model model in
  let tr = Pipeline.differentiate src in
  let opt = Pipeline.optimize tr in
  let rw =
    Pipeline.rewrite ~device:dev
      ~policy:(Pass.Echo { overhead_budget = 0.2 })
      opt
  in
  let pl = Pipeline.plan rw in
  let fu = Pipeline.fuse ~enabled:true pl in
  let exe = Pipeline.compile fu in
  List.iter
    (fun (name, stage) ->
      check_int (name ^ " clean") 0
        (Report.error_count (Pipeline.verify stage)))
    [
      ("source", Pipeline.Source src);
      ("training", Pipeline.Training tr);
      ("optimized", Pipeline.Optimized opt);
      ("rewritten", Pipeline.Rewritten rw);
      ("planned", Pipeline.Planned pl);
      ("fused", Pipeline.Fused fu);
      ("executable", Pipeline.Executable exe);
    ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "analysis",
      [
        t "report collects, counts and filters" test_report_collects_and_counts;
        t "check_exn raises on error findings" test_check_exn_raises_on_errors;
        t "Graph.check is clean on real graphs"
          test_graph_check_clean_and_validate;
        t "Assign.check collects every corruption"
          test_assign_check_collects_all_corruptions;
        t "schedule checker fires on broken order"
          test_schedule_checker_fires_on_broken_order;
        t "offset checker fires on overlap and escape"
          test_offset_checker_fires_on_overlap_and_escape;
        t "alias checker fires on shared live buffers"
          test_alias_checker_fires_on_shared_live_buffer;
        t "in-place checker fires on a retargeted donor"
          test_inplace_checker_fires_on_retargeted_donor;
        t "recompute checker fires on a reseeded clone"
          test_recompute_checker_fires_on_reseeded_clone;
        t "recompute checker fires on a late clone"
          test_recompute_checker_fires_on_late_clone;
        t "fusion checker fires on region crossing"
          test_fusion_checker_fires_on_region_crossing;
        t "fusion checker fires on hand-made corruptions"
          test_fusion_checker_fires_on_handmade_corruptions;
        t "fallback checker counts and cross-checks"
          test_fallback_checker_counts_and_cross_checks;
        t "determinism checker notes shared seeds"
          test_determinism_notes_shared_seeds;
        t "zoo x policy x fusion matrix lints clean"
          test_zoo_matrix_lints_clean;
        t "every pipeline stage verifies clean"
          test_every_stage_verifies_clean;
      ] );
  ]
