(* The staged compilation pipeline and the slot-based executor.

   The load-bearing properties: the compiled executor is bitwise identical
   to the reference interpreter (on random DAGs and on real model training
   graphs), its steady-state footprint equals the memory planner's
   prediction, and repeated runs with fresh feeds never leak state from a
   previous step. *)

open Echo_tensor
open Echo_ir
open Echo_models
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor

let check_bool = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Feeds for every placeholder and variable of a graph: positive values so
   random op chains stay finite and NaN-free. *)
let synthetic_feeds ?(scale = 1.0) rng_seed g =
  let rng = Rng.create rng_seed in
  List.filter_map
    (fun node ->
      match Node.op node with
      | Op.Placeholder | Op.Variable ->
        Some
          ( node,
            Tensor.init (Node.shape node) (fun _ ->
                scale *. (0.1 +. (0.9 *. Rng.float rng))) )
      | _ -> None)
    (Graph.nodes g)

let eval_both g ~feeds =
  let exe = Executor.compile g in
  (Echo_exec.Interp.eval g ~feeds, Executor.eval exe ~feeds)

(* Property: on random square-shaped DAGs (including all four matmul
   transpose variants), the executor matches the interpreter bitwise on two
   consecutive runs with different feeds, and its footprint equals the
   planner's arena prediction — with and without in-place transfers. *)
let prop_executor_differential =
  QCheck.Test.make ~name:"executor == interpreter on random DAGs" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let pool = ref [ Node.placeholder [| 4; 4 |]; Node.variable [| 4; 4 |] ] in
      for _ = 1 to 25 do
        let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
        let n =
          match Rng.int rng 10 with
          | 0 -> Node.add (pick ()) (pick ())
          | 1 -> Node.sub (pick ()) (pick ())
          | 2 -> Node.mul (pick ()) (pick ())
          | 3 -> Node.tanh_ (pick ())
          | 4 -> Node.sigmoid (pick ())
          | 5 -> Node.matmul (pick ()) (pick ())
          | 6 -> Node.matmul ~trans_a:true (pick ()) (pick ())
          | 7 -> Node.matmul ~trans_b:true (pick ()) (pick ())
          | 8 -> Node.matmul ~trans_a:true ~trans_b:true (pick ()) (pick ())
          | _ -> Node.transpose2d (pick ())
        in
        pool := n :: !pool
      done;
      let g = Graph.create [ List.hd !pool ] in
      let exe = Executor.compile g in
      let identical_run scale =
        let feeds = synthetic_feeds ~scale seed g in
        let reference = Echo_exec.Interp.eval g ~feeds in
        let compiled = Executor.eval exe ~feeds in
        List.for_all2 Tensor.equal reference compiled
      in
      (* Two runs with different feeds through the SAME executor: a buffer
         holding stale step-1 state would break the second comparison. *)
      identical_run 1.0 && identical_run 0.25
      && Executor.footprint_bytes exe
         = (Echo_exec.Memplan.plan g).Echo_exec.Memplan.arena_bytes
      && Executor.footprint_bytes (Executor.compile ~inplace:false g)
         = (Echo_exec.Memplan.plan ~inplace:false g).Echo_exec.Memplan
             .arena_bytes)

(* Model training graphs: compiled executor vs interpreter, bitwise. *)
let model_differential ?(id_bound = 20) model =
  let training = Model.training model in
  let g = training.Echo_autodiff.Grad.graph in
  let rng = Rng.create 7 in
  let feeds =
    List.map
      (fun node ->
        match Shape.rank (Node.shape node) with
        | 4 -> (node, Tensor.normal rng (Node.shape node) ~mean:0.0 ~std:1.0)
        | _ ->
          (node,
           Tensor.init (Node.shape node) (fun _ ->
               float_of_int (Rng.int rng id_bound))))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  let reference, compiled = eval_both g ~feeds in
  check_bool (model.Model.name ^ " bit-identical") true
    (List.for_all2 Tensor.equal reference compiled);
  let exe = Executor.compile g in
  Alcotest.(check int)
    (model.Model.name ^ " footprint == plan")
    (Echo_exec.Memplan.plan g).Echo_exec.Memplan.arena_bytes
    (Executor.footprint_bytes exe)

let test_lm_differential () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  model_differential lm.Language_model.model

let test_nmt_differential () =
  let nmt =
    Nmt.build
      {
        Nmt.gnmt_like with
        src_vocab = 15;
        tgt_vocab = 15;
        embed = 4;
        hidden = 4;
        enc_layers = 1;
        dec_layers = 1;
        src_len = 3;
        tgt_len = 3;
        batch = 2;
        dropout = 0.1;
      }
  in
  model_differential ~id_bound:15 nmt.Nmt.model

let test_transformer_differential () =
  let tr =
    Transformer.build
      {
        Transformer.base_like with
        vocab = 15;
        seq_len = 4;
        batch = 2;
        d_model = 8;
        heads = 2;
        d_ff = 12;
        layers = 1;
        dropout = 0.1;
      }
  in
  model_differential ~id_bound:15 tr.Transformer.model

(* Convolutions have no Into kernel; the executor falls back to the
   interpreter per node. DS2's training graph exercises that path. *)
let test_conv_fallback_differential () =
  let ds2 =
    Deepspeech.build
      {
        Deepspeech.ds2_like with
        batch = 1;
        time = 12;
        freq = 8;
        conv_channels = 2;
        rnn_hidden = 4;
        rnn_layers = 1;
        classes = 5;
        dropout = 0.0;
      }
  in
  model_differential ~id_bound:5 ds2.Deepspeech.model

(* The whole pipeline, stage by stage, on a real model — the executable's
   outputs must survive the Echo rewrite bit for bit. *)
let test_pipeline_stages_compose () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 30;
        embed = 6;
        hidden = 6;
        layers = 1;
        seq_len = 4;
        batch = 2;
        dropout = 0.2;
      }
  in
  let src = Pipeline.of_model lm.Language_model.model in
  let training = Pipeline.differentiate src in
  let g = training.Pipeline.autodiff.Echo_autodiff.Grad.graph in
  let rng = Rng.create 13 in
  let ids n =
    Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 30))
  in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  let reference = Echo_exec.Interp.eval g ~feeds in
  let exe =
    Pipeline.compile_source
      ~policy:(Echo_core.Pass.Echo { overhead_budget = 0.2 })
      ~optimize:false src
  in
  let compiled = Executor.eval (Pipeline.executor exe) ~feeds in
  check_bool "echo-rewritten executable bit-identical" true
    (List.for_all2 Tensor.equal reference compiled);
  (* The arena-validating reference executor accepts the same plan. *)
  let validated = Pipeline.validated_eval (Pipeline.planned_of exe) ~feeds in
  check_bool "arena exec agrees" true
    (List.for_all2 Tensor.equal reference validated)

(* Kernel runtime differential: the same LM training graph — loss and all
   gradients — must come out bitwise identical from the interpreter, the
   sequential executor, and pools of 1/2/4 domains, under both the naive
   (threshold = max_int) and blocked (threshold = 0) matmul paths. The
   comparison is on raw bits (not [Tensor.equal], whose structural compare
   conflates 0.0 with -0.0), and dropout puts real zeros in the
   activations so the a(i,l) = 0 skip is exercised. *)
let bits_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let ok = ref true in
  for i = 0 to Tensor.numel a - 1 do
    if
      Int64.bits_of_float (Tensor.get1 a i)
      <> Int64.bits_of_float (Tensor.get1 b i)
    then ok := false
  done;
  !ok

let test_runtime_differential () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  let model = lm.Language_model.model in
  let g = (Model.training model).Echo_autodiff.Grad.graph in
  let rng = Rng.create 7 in
  let feeds =
    List.map
      (fun node ->
        ( node,
          Tensor.init (Node.shape node) (fun _ ->
              float_of_int (Rng.int rng 40)) ))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  (* Reference: the interpreter on its default runtime — blocked and naive
     matmuls are bitwise identical by construction, so any threshold gives
     the same reference bits. *)
  let reference = Echo_exec.Interp.eval g ~feeds in
  let check_engine label outputs =
    check_bool label true (List.for_all2 bits_equal reference outputs)
  in
  (* The threshold is per-runtime configuration: compile one executor per
     (threshold, runtime) point. Pools are oversubscribed past the
     hardware cap with the work gate open, so the fan-out path really
     executes even on one core. *)
  List.iter
    (fun threshold ->
      let path = if threshold = 0 then "blocked" else "naive" in
      check_engine
        (Printf.sprintf "%s seq executor" path)
        (Executor.eval
           (Executor.compile
              ~runtime:
                (Parallel.with_config ~blocking_threshold:threshold
                   Parallel.sequential)
              g)
           ~feeds);
      List.iter
        (fun d ->
          let pool =
            Parallel.create ~domains:d ~oversubscribe:true ~min_fanout_work:0
              ~blocking_threshold:threshold ()
          in
          Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
          check_engine
            (Printf.sprintf "%s %d-domain executor" path d)
            (Executor.eval (Executor.compile ~runtime:pool g) ~feeds))
        [ 1; 2; 4 ])
    [ max_int; 0 ]

(* Fused elementwise codegen: the fusion stage must be invisible in the
   results — bit-identical to the unfused executor at every domain count —
   and visible in the instruction stream and the arena. *)

let prop_fused_differential =
  QCheck.Test.make ~name:"fused == unfused on random elementwise DAGs"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let pool = ref [ Node.placeholder [| 4; 4 |]; Node.variable [| 4; 4 |] ] in
      for _ = 1 to 30 do
        let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
        let n =
          match Rng.int rng 13 with
          | 0 -> Node.add (pick ()) (pick ())
          | 1 -> Node.sub (pick ()) (pick ())
          | 2 -> Node.mul (pick ()) (pick ())
          | 3 -> Node.neg (pick ())
          | 4 -> Node.sigmoid (pick ())
          | 5 -> Node.tanh_ (pick ())
          | 6 -> Node.relu (pick ())
          | 7 -> Node.sq (pick ())
          | 8 -> Node.scale 0.5 (pick ())
          | 9 -> Node.add_scalar 0.25 (pick ())
          | 10 -> Node.sqrt_ (Node.sq (pick ()))
          | 11 -> Node.div (pick ()) (Node.add_scalar 2.0 (Node.sq (pick ())))
          | _ -> Node.matmul (pick ()) (pick ())
        in
        pool := n :: !pool
      done;
      let g = Graph.create [ List.hd !pool ] in
      let fusion = Fuse.analyse g in
      let fused = Executor.compile ~fusion g in
      let unfused = Executor.compile g in
      let feeds = synthetic_feeds seed g in
      let a = Executor.eval fused ~feeds in
      let b = Executor.eval unfused ~feeds in
      List.for_all2 bits_equal a b
      && Executor.footprint_bytes fused
         = (Echo_exec.Memplan.plan ~fusion g).Echo_exec.Memplan.arena_bytes
      && Executor.fused_group_count fused = Fuse.group_count fusion
      && Executor.fused_interior_count fused = Fuse.interior_count fusion)

(* Real training graphs — loss and every gradient — fused vs unfused,
   sequential and at 1/2/4 domains, all on raw bits. *)
let fused_model_differential ?(id_bound = 20) model =
  let g = (Model.training model).Echo_autodiff.Grad.graph in
  let rng = Rng.create 11 in
  let feeds =
    List.map
      (fun node ->
        match Shape.rank (Node.shape node) with
        | 4 -> (node, Tensor.normal rng (Node.shape node) ~mean:0.0 ~std:1.0)
        | _ ->
          ( node,
            Tensor.init (Node.shape node) (fun _ ->
                float_of_int (Rng.int rng id_bound)) ))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  let eval exe = Executor.eval (Pipeline.executor exe) ~feeds in
  let reference = eval (Pipeline.compile_graph ~fuse:false g) in
  check_bool (model.Model.name ^ " has fusable chains") true
    (Fuse.group_count (Fuse.analyse g) > 0);
  check_bool (model.Model.name ^ " fused bit-identical") true
    (List.for_all2 bits_equal reference
       (eval (Pipeline.compile_graph ~fuse:true g)));
  List.iter
    (fun d ->
      (* Oversubscribed past the hardware cap with the work gate open, so
         fused instructions genuinely partition rows across the pool even
         on a small machine. *)
      let pool =
        Parallel.create ~domains:d ~oversubscribe:true ~min_fanout_work:0 ()
      in
      Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
      check_bool
        (Printf.sprintf "%s fused %d-domain bit-identical" model.Model.name d)
        true
        (List.for_all2 bits_equal reference
           (eval (Pipeline.compile_graph ~fuse:true ~runtime:pool g))))
    [ 1; 2; 4 ]

let test_fused_lm_differential () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  fused_model_differential lm.Language_model.model

let test_fused_nmt_differential () =
  let nmt =
    Nmt.build
      {
        Nmt.gnmt_like with
        src_vocab = 15;
        tgt_vocab = 15;
        embed = 4;
        hidden = 4;
        enc_layers = 1;
        dec_layers = 1;
        src_len = 3;
        tgt_len = 3;
        batch = 2;
        dropout = 0.1;
      }
  in
  fused_model_differential ~id_bound:15 nmt.Nmt.model

(* Group interiors never see the arena: the fused executor runs one
   instruction for the whole chain, its measured footprint equals the fused
   planner's prediction, and the planner's fused arena is strictly smaller
   than the unfused one once in-place transfers are taken out of the
   picture. *)
let test_fused_interiors_slotless () =
  let x = Node.placeholder [| 256 |] in
  let y = Node.sq (Node.tanh_ (Node.sigmoid (Node.neg x))) in
  let g = Graph.create [ y ] in
  let fusion = Fuse.analyse g in
  Alcotest.(check int) "one group" 1 (Fuse.group_count fusion);
  Alcotest.(check int) "three interiors" 3 (Fuse.interior_count fusion);
  Alcotest.(check int) "interior bytes" (3 * 256 * 4)
    (List.fold_left
       (fun acc g -> acc + Fuse.interior_bytes g)
       0 (Fuse.groups fusion));
  let exe = Executor.compile ~fusion g in
  Alcotest.(check int) "one active instruction" 1
    (Executor.active_instruction_count exe);
  Alcotest.(check int) "measured footprint == fused plan"
    (Echo_exec.Memplan.plan ~fusion g).Echo_exec.Memplan.arena_bytes
    (Executor.footprint_bytes exe);
  let arena ?fusion () =
    (Echo_exec.Memplan.plan ~inplace:false ?fusion g).Echo_exec.Memplan
      .arena_bytes
  in
  check_bool "interiors freed the arena" true (arena ~fusion () < arena ())

(* The cost model and the executor must agree on what got fused: the
   analysis the [Echo_opt.Fusion] stats report is the same plan the
   executor compiled. *)
let test_fusion_stats_match_executor () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  let g =
    (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
  in
  let stats = Echo_opt.Fusion.analyse g in
  let exe = Executor.compile ~fusion:(Fuse.analyse g) g in
  Alcotest.(check int) "group counts agree" stats.Echo_opt.Fusion.groups
    (Executor.fused_group_count exe);
  Alcotest.(check int) "interior counts agree"
    stats.Echo_opt.Fusion.launches_saved
    (Executor.fused_interior_count exe)

(* End to end through the training loop: the whole loss trajectory is
   bit-identical with the fusion stage on and off. *)
let test_fused_loss_trajectory () =
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 8;
        hidden = 8;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.2;
      }
  in
  let model = lm.Language_model.model in
  let graph = (Model.training model).Echo_autodiff.Grad.graph in
  let params = Params.bindings model.Model.params in
  let rng = Rng.create 23 in
  let batches =
    List.init 4 (fun _ ->
        let ids n =
          Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 40))
        in
        [
          (lm.Language_model.token_input, ids lm.Language_model.token_input);
          (lm.Language_model.label_input, ids lm.Language_model.label_input);
        ])
  in
  let run fuse =
    (Echo_train.Loop.train ~graph ~params
       ~optimizer:
         (Echo_train.Optimizer.create (Echo_train.Optimizer.Sgd { lr = 0.5 }))
       ~clip_norm:5.0 ~faults:Echo_runtime.Fault.none ~fuse ~batches ())
      .Echo_train.Loop.losses
  in
  let fused = run true and unfused = run false in
  Alcotest.(check int) "same step count" (List.length unfused)
    (List.length fused);
  List.iter2
    (fun a b ->
      check_bool "loss bits identical" true
        (Int64.bits_of_float a = Int64.bits_of_float b))
    fused unfused

(* Missing feeds are reported all at once, by name, by both engines. *)
let test_missing_feeds_aggregated () =
  let a = Node.placeholder ~name:"tokens" [| 2 |] in
  let b = Node.placeholder ~name:"labels" [| 2 |] in
  let g = Graph.create [ Node.add a b ] in
  let both_named msg = contains ~sub:"tokens" msg && contains ~sub:"labels" msg in
  check_bool "interp lists both" true
    (try
       ignore (Echo_exec.Interp.eval g ~feeds:[]);
       false
     with Echo_exec.Interp.Missing_feed msg -> both_named msg);
  check_bool "executor lists both" true
    (try
       ignore (Executor.eval (Executor.compile g) ~feeds:[]);
       false
     with Echo_exec.Interp.Missing_feed msg -> both_named msg)

(* Loop.train's arity error names both counts. *)
let test_train_arity_message () =
  let v = Node.variable ~name:"w" [| 2 |] in
  let extra = Node.variable ~name:"unused" [| 2 |] in
  let loss =
    Node.reduce_sum ~axis:0 ~keepdims:false (Node.sq v)
  in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ v ] in
  let params =
    [ (v, Tensor.of_list1 [ 1.0; 2.0 ]); (extra, Tensor.of_list1 [ 0.0; 0.0 ]) ]
  in
  check_bool "names both counts" true
    (try
       ignore
         (Echo_train.Loop.train ~graph:training.Echo_autodiff.Grad.graph
            ~params
            ~optimizer:(Echo_train.Optimizer.create (Echo_train.Optimizer.Sgd { lr = 0.1 }))
            ~batches:[ [] ] ());
       false
     with Invalid_argument msg ->
       contains ~sub:"1 gradient output(s)" msg
       && contains ~sub:"2 parameter(s)" msg)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "compiler",
      [
        QCheck_alcotest.to_alcotest prop_executor_differential;
        t "LM training graph differential" test_lm_differential;
        t "NMT training graph differential" test_nmt_differential;
        t "transformer training graph differential" test_transformer_differential;
        t "conv fallback differential" test_conv_fallback_differential;
        t "pipeline stages compose" test_pipeline_stages_compose;
        t "kernel runtime differential" test_runtime_differential;
        t "missing feeds aggregated" test_missing_feeds_aggregated;
        t "train arity message" test_train_arity_message;
      ] );
    ( "compiler.fusion",
      [
        QCheck_alcotest.to_alcotest prop_fused_differential;
        t "LM fused differential" test_fused_lm_differential;
        t "NMT fused differential" test_fused_nmt_differential;
        t "interiors slotless" test_fused_interiors_slotless;
        t "stats match executor" test_fusion_stats_match_executor;
        t "loss trajectory fused == unfused" test_fused_loss_trajectory;
      ] );
  ]
