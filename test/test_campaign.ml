(* Fault-injection campaign tests: the report is a pure function of the
   spec (byte-identical re-run to re-run and at every orchestrator domain
   count), bit-flip injection is planner-independent at the spec level,
   and the classifier lands every configuration in exactly one sane
   bucket. *)

open Echo_tensor
open Echo_models
module Campaign = Echo_campaign.Campaign
module Fault = Echo_runtime.Fault
module Event = Echo_runtime.Event
module Loop = Echo_train.Loop
module Optimizer = Echo_train.Optimizer
module Planner = Echo_core.Planner
module Corpus = Echo_workloads.Corpus

let device = Echo_gpusim.Device.titan_xp

let bits_equal a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.bits_of_float a = Int64.bits_of_float b

let losses_bit_identical a b =
  List.length a = List.length b && List.for_all2 bits_equal a b

(* {1 Differential: spec-level planner independence of bit flips} *)

(* One short faulted LM training run; returns the loss trajectory and the
   target names of every injected fault. *)
let train_with ?(runtime = Parallel.sequential) ~planner ~fuse ~faults () =
  let lm =
    Language_model.build
      {
        Language_model.vocab = 60;
        embed = 12;
        hidden = 12;
        layers = 2;
        seq_len = 6;
        batch = 3;
        dropout = 0.2;
        cell = Recurrent.Lstm;
        seed = 42;
      }
  in
  let steps = 6 in
  let corpus =
    Corpus.generate ~seed:5 ~vocab:60 ~length:(((steps + 2) * 3 * 6) + 1)
  in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      (Corpus.lm_batches corpus ~batch:3 ~seq_len:6 ~steps)
  in
  let targets = ref [] in
  let r =
    Loop.train
      ~graph:(Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
      ~clip_norm:5.0
      ~on_event:(fun e ->
        match e with
        | Event.Fault_injected { target; _ } -> targets := target :: !targets
        | _ -> ())
      ~faults:(Fault.of_specs [ faults ]) ~device ~runtime ~fuse
      ~planner:(Planner.instantiate planner) ~batches ()
  in
  (r.Loop.losses, List.rev !targets)

let campaign_planners = [ "stash-all"; "checkpoint-sqrt"; "dp-bptt"; "echo" ]

(* A parameter flip persists in the parameter vector, which every planner
   shares: the whole faulted trajectory must be bit-identical under every
   planner, fusion setting and domain count, and the flip must name the
   same parameter scalar everywhere. *)
let test_param_flip_planner_independent () =
  let spec =
    { Fault.step = 2; kind = Fault.Flip_param { index = 1009; bit = 52 } }
  in
  let runs =
    List.concat_map
      (fun planner ->
        List.map
          (fun fuse ->
            (planner, fuse, train_with ~planner ~fuse ~faults:spec ()))
          [ false; true ])
      campaign_planners
  in
  let _, _, (ref_losses, ref_targets) = List.hd runs in
  Alcotest.(check (list string))
    "the flip fired and named its target"
    [ "proj.w[289] bit 52" ]
    ref_targets;
  List.iter
    (fun (planner, fuse, (losses, targets)) ->
      let label = Printf.sprintf "%s/%b" planner fuse in
      Alcotest.(check (list string)) (label ^ " same target") ref_targets targets;
      Alcotest.(check bool)
        (label ^ " bit-identical faulted trajectory")
        true
        (losses_bit_identical ref_losses losses))
    runs;
  List.iter
    (fun domains ->
      let pool =
        Parallel.create ~domains ~oversubscribe:true ~min_fanout_work:0 ()
      in
      let losses, targets =
        train_with ~runtime:pool ~planner:"echo" ~fuse:true ~faults:spec ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%d domains: same target" domains)
        ref_targets targets;
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: bit-identical trajectory" domains)
        true
        (losses_bit_identical ref_losses losses))
    [ 2; 4 ]

(* An activation flip lands on the SITEth materialising forward node of
   the original graph — the same dataflow point under every planner, so
   every planner reports the same target and the same corrupted forward
   loss at the faulted step. Trajectories may legitimately diverge
   afterwards (planners differ in whether the backward pass reads the
   corrupted stash or a clean recomputation — exactly what the campaign
   measures), but fusion and domain count must not change anything. *)
let test_act_flip_site_identity () =
  let spec =
    { Fault.step = 2; kind = Fault.Flip_act { site = 7; index = 3; bit = 50 } }
  in
  let runs =
    List.concat_map
      (fun planner ->
        List.map
          (fun fuse ->
            (planner, fuse, train_with ~planner ~fuse ~faults:spec ()))
          [ false; true ])
      campaign_planners
  in
  let _, _, (ref_losses, ref_targets) = List.hd runs in
  Alcotest.(check int) "the flip fired once" 1 (List.length ref_targets);
  let prefix l = List.filteri (fun i _ -> i <= 2) l in
  List.iter
    (fun (planner, fuse, (losses, targets)) ->
      let label = Printf.sprintf "%s/%b" planner fuse in
      Alcotest.(check (list string))
        (label ^ " flips the same dataflow site")
        ref_targets targets;
      Alcotest.(check bool)
        (label ^ " identical trajectory through the faulted step")
        true
        (losses_bit_identical (prefix ref_losses) (prefix losses)))
    runs;
  (* within one planner, fusion and domain count change nothing at all *)
  let base = train_with ~planner:"echo" ~fuse:false ~faults:spec () in
  List.iter
    (fun domains ->
      let pool =
        Parallel.create ~domains ~oversubscribe:true ~min_fanout_work:0 ()
      in
      let losses, targets =
        train_with ~runtime:pool ~planner:"echo" ~fuse:true ~faults:spec ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%d domains: same site" domains)
        (snd base) targets;
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: bit-identical full trajectory" domains)
        true
        (losses_bit_identical (fst base) losses))
    [ 1; 2; 4 ]

(* {1 The campaign orchestrator} *)

let mini = Campaign.default_spec "mini"
let mini_report = lazy (Campaign.run mini)

(* The whole report — summary table and every per-configuration detail
   line — must be byte-identical across repeated runs and at every
   orchestrator domain count. *)
let test_campaign_reproducible () =
  let reference = Lazy.force mini_report in
  let again = Campaign.run mini in
  Alcotest.(check string)
    "summary byte-identical across runs"
    (Campaign.summary reference) (Campaign.summary again);
  Alcotest.(check (list string))
    "detail lines byte-identical across runs"
    (Campaign.detail_lines reference)
    (Campaign.detail_lines again);
  List.iter
    (fun domains ->
      let pool =
        Parallel.create ~domains ~oversubscribe:true ~min_fanout_work:0 ()
      in
      let r = Campaign.run ~pool mini in
      Alcotest.(check string)
        (Printf.sprintf "summary byte-identical at %d domains" domains)
        (Campaign.summary reference) (Campaign.summary r);
      Alcotest.(check (list string))
        (Printf.sprintf "detail lines byte-identical at %d domains" domains)
        (Campaign.detail_lines reference)
        (Campaign.detail_lines r))
    [ 2; 4 ]

let test_campaign_classification () =
  let r = Lazy.force mini_report in
  Alcotest.(check int) "mini sweep size" 60 (List.length r.Campaign.results);
  let count o =
    List.length
      (List.filter (fun res -> res.Campaign.outcome = o) r.Campaign.results)
  in
  Alcotest.(check int)
    "every configuration classified into exactly one bucket"
    (List.length r.Campaign.results)
    (count Campaign.Masked
    + count Campaign.Detected_recovered
    + count Campaign.Silent_data_corruption
    + count Campaign.Crash);
  Alcotest.(check bool) "some faults are masked" true (count Campaign.Masked > 0);
  Alcotest.(check bool)
    "some faults are detected" true
    (count Campaign.Detected_recovered > 0);
  Alcotest.(check bool)
    "some faults corrupt silently" true
    (count Campaign.Silent_data_corruption > 0);
  Alcotest.(check int) "nothing crashes the orchestrator" 0 (count Campaign.Crash);
  (* the Echo-verify cross-check: every plan-corrupting fault on the
     recomputing planners is flagged statically; stash-all plans offer no
     mutation site, so their cells carry no verify column *)
  List.iter
    (fun cell ->
      if cell.Campaign.cell_planner = "stash-all" then
        Alcotest.(check int)
          "stash-all has no plan faults" 0 cell.Campaign.verify_total
      else begin
        Alcotest.(check int)
          (cell.Campaign.cell_planner ^ " plan faults attempted")
          4 cell.Campaign.verify_total;
        Alcotest.(check int)
          (cell.Campaign.cell_planner ^ " plan faults flagged")
          cell.Campaign.verify_total cell.Campaign.verify_caught
      end)
    r.Campaign.cells

let test_parse_spec () =
  (match Campaign.parse_spec "mini" with
  | Ok s ->
    Alcotest.(check string) "preset" "mini" s.Campaign.preset;
    Alcotest.(check int) "default steps" 6 s.Campaign.steps
  | Error e -> Alcotest.fail e);
  (match Campaign.parse_spec "full:steps=3,seed=7,out=r.txt" with
  | Ok s ->
    Alcotest.(check string) "preset" "full" s.Campaign.preset;
    Alcotest.(check int) "steps" 3 s.Campaign.steps;
    Alcotest.(check int) "seed" 7 s.Campaign.seed;
    Alcotest.(check (option string)) "out" (Some "r.txt") s.Campaign.out
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Campaign.parse_spec bad with
      | Ok _ -> Alcotest.fail (bad ^ " should not parse")
      | Error _ -> ())
    [ "maxi"; "mini:steps=0"; "mini:steps=x"; "full:bogus=1"; "full:steps" ]

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "param flip is planner-independent" `Quick
          test_param_flip_planner_independent;
        Alcotest.test_case "act flip hits the same site everywhere" `Quick
          test_act_flip_site_identity;
        Alcotest.test_case "report reproducible across runs and domains" `Quick
          test_campaign_reproducible;
        Alcotest.test_case "classification is total and sane" `Quick
          test_campaign_classification;
        Alcotest.test_case "spec parsing" `Quick test_parse_spec;
      ] );
  ]
