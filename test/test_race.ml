(* Race-verify: the static partition-disjointness analysis and the
   shadow-memory sanitizer.

   Three layers of evidence, mirroring the Echo-verify philosophy:

   - Clean-pass: the model zoo x planner x fusion x domain-count matrix
     compiles to executables the race checker accepts — the analysis must
     be quiet on everything the pipeline actually produces.
   - Negative: each {!Mutate} race corruption (shifted partition
     boundary, shrunk lifetime, aliased offsets, widened fused interior)
     makes exactly the static checker built for it fire, and the
     dynamic sanitizer catches the corruptions that reach a real
     executor.
   - Differential: training under the sanitizer (Cells and Full) is
     bit-identical to plain training at 1/2/4 domains, fused and
     unfused — the checks observe, never perturb. *)

open Echo_ir
open Echo_models
open Echo_tensor
module Race = Echo_analysis.Race
module Sanitize = Echo_analysis.Sanitize
module Mutate = Echo_analysis.Mutate
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor
module Liveness = Echo_exec.Liveness
module Report = Echo_diag.Report
module Loop = Echo_train.Loop
module Optimizer = Echo_train.Optimizer
module Planner = Echo_core.Planner
module Corpus = Echo_workloads.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_error ~check report =
  List.exists
    (fun d -> d.Echo_diag.severity = Echo_diag.Error)
    (Report.with_check check report)

let require name = function
  | Some v -> v
  | None -> Alcotest.failf "%s: the mutation found no corruption site" name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A pool whose fan-out is forced on, so the partitioned code paths (and
   the partition checkers) are exercised even on a single-core CI
   machine. *)
let fanout n =
  Parallel.create ~domains:n ~oversubscribe:true ~min_fanout_work:0 ()

let with_fanout n f =
  let pool = fanout n in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let tiny_cfg =
  {
    Language_model.ptb_default with
    vocab = 40;
    embed = 12;
    hidden = 12;
    layers = 2;
    seq_len = 6;
    batch = 3;
    dropout = 0.2;
  }

let lm_graph () =
  let lm = Language_model.build tiny_cfg in
  (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph

(* ---------------- mode parsing ---------------- *)

let test_mode_parsing () =
  List.iter
    (fun (s, m) ->
      check_bool s true (Sanitize.mode_of_string ~source:"test" s = m))
    [
      ("0", Sanitize.Off); ("off", Sanitize.Off); ("false", Sanitize.Off);
      ("no", Sanitize.Off); ("1", Sanitize.Cells); ("on", Sanitize.Cells);
      ("true", Sanitize.Cells); ("yes", Sanitize.Cells);
      ("cells", Sanitize.Cells); ("2", Sanitize.Full); ("full", Sanitize.Full);
    ];
  (match Sanitize.mode_of_string ~source:"--sanitize" "bogus" with
  | _ -> Alcotest.fail "bogus mode must not parse"
  | exception Invalid_argument msg ->
    check_bool "error names the source" true (contains ~sub:"--sanitize" msg);
    check_bool "error names the value" true (contains ~sub:"bogus" msg));
  check_bool "off is off" false (Sanitize.is_on Sanitize.Off);
  check_bool "full is on" true (Sanitize.is_on Sanitize.Full)

(* The sanitizer mode is baked into the executor's run loop, so it must
   be part of the plan-cache content address. *)
let test_cache_key_covers_sanitize () =
  let g = lm_graph () in
  check_bool "sanitized and plain keys differ" false
    (Pipeline.cache_key ~sanitize:Sanitize.Off g
    = Pipeline.cache_key ~sanitize:Sanitize.Cells g)

(* ---------------- clean-pass matrix ---------------- *)

(* Every executable the pipeline produces — across planners, fusion
   settings and forced fan-out domain counts — must pass the full static
   race check with zero errors. *)
let test_clean_matrix () =
  let graphs = [ ("lstm", lm_graph ()) ] in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun planner ->
          let inst = Planner.instantiate planner in
          List.iter
            (fun fuse ->
              List.iter
                (fun domains ->
                  with_fanout domains (fun runtime ->
                      let exe =
                        Pipeline.compile_graph ~planner:inst ~runtime ~fuse g
                      in
                      let report = Pipeline.race_verify exe in
                      if Report.error_count report > 0 then
                        Alcotest.failf
                          "%s/%s/%s/%dd: race_verify found errors:\n%s" name
                          planner
                          (if fuse then "fused" else "unfused")
                          domains
                          (String.concat "\n"
                             (List.map Echo_diag.to_string
                                (Report.errors report)))))
                [ 1; 2; 4 ])
            [ true; false ])
        [ "stash-all"; "checkpoint-sqrt"; "echo" ])
    graphs

(* ---------------- static negative tests ---------------- *)

let test_partition_checker_fires () =
  let g = lm_graph () in
  with_fanout 2 (fun runtime ->
      check_bool "clean formula passes" false
        (Report.has_errors (Race.check_kernels ~runtime g));
      List.iter
        (fun (label, kind) ->
          let report =
            Race.check_kernels ~chunk_bounds:(Mutate.shift_partition kind)
              ~runtime g
          in
          check_bool (label ^ " flagged") true
            (has_error ~check:"race-partition" report))
        [ ("overlap", `Overlap); ("gap", `Gap) ])

let test_lifetime_checker_fires () =
  let g = lm_graph () in
  let live = Liveness.analyse g in
  let triples l =
    List.map
      (fun itv ->
        (Node.id itv.Liveness.node, itv.Liveness.def_step, itv.Liveness.last_step))
      l
  in
  check_bool "clean intervals pass" false
    (Report.has_errors
       (Race.check_lifetimes ~intervals:(triples (Liveness.intervals live)) g));
  let corrupted = require "shrink_lifetime" (Mutate.shrink_lifetime live) in
  check_bool "shrunk lifetime flagged" true
    (has_error ~check:"race-liveness"
       (Race.check_lifetimes ~intervals:(triples corrupted) g))

let test_alias_offsets_checker_fires () =
  let g = lm_graph () in
  let exe = Pipeline.compile_graph ~fuse:false g in
  let binding = Executor.buffer_binding (Pipeline.executor exe) in
  check_bool "compiled layout passes" false
    (Report.has_errors (Race.check_addresses g binding));
  let layout = require "alias_offsets" (Mutate.alias_offsets g binding) in
  check_bool "aliased bases flagged" true
    (has_error ~check:"race-address" (Race.check_addresses ~layout g binding))

let test_fused_interior_checker_fires () =
  let g = lm_graph () in
  let plan = Fuse.analyse g in
  check_bool "pipeline's own plan passes" false
    (Report.has_errors (Race.check_fused plan));
  let widened = require "widen_fused_interior" (Mutate.widen_fused_interior plan) in
  check_bool "widened interior flagged" true
    (has_error ~check:"race-fused" (Race.check_fused widened))

(* ---------------- dynamic negative tests ---------------- *)

(* The toy convex problem from the training-loop suite: small enough
   that executor-level feeds are a one-liner. *)
let toy_training () =
  let w = Node.variable ~name:"w" [| 4 |] in
  let target = Node.placeholder ~name:"t" [| 4 |] in
  let diff = Node.sub w target in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false (Node.sq diff) in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ w ] in
  let feeds =
    [
      (w, Tensor.of_list1 [ 1.0; -2.0; 0.5; 3.0 ]);
      (target, Tensor.of_list1 [ 3.0; -2.0; 1.0; 0.0 ]);
    ]
  in
  (training.Echo_autodiff.Grad.graph, feeds)

(* A corrupted liveness plan compiled into a real executor: the arena
   recycles the victim's buffer under its still-pending read, and the
   Cells-mode sanitizer must refuse the step. *)
let test_sanitizer_catches_shrunk_lifetime () =
  let g, feeds = toy_training () in
  let live = Liveness.analyse g in
  (* the clean plan runs sanitized without findings *)
  let clean = Executor.compile ~sanitize:Sanitize.Full g in
  ignore (Executor.eval clean ~feeds);
  let corrupted = require "shrink_lifetime" (Mutate.shrink_lifetime live) in
  let exe =
    Executor.compile
      ~liveness:(Liveness.of_intervals ~steps:(Liveness.step_count live) corrupted)
      ~sanitize:Sanitize.Cells g
  in
  match Executor.eval exe ~feeds with
  | _ -> Alcotest.fail "sanitizer accepted a read past the plan's expiry"
  | exception Sanitize.Sanitize_failed report ->
    check_bool "expired read flagged" true
      (has_error ~check:"sanitize-expired" report
      || has_error ~check:"sanitize-stale" report)

(* The sanitizer state machine itself, driven directly: each check name
   fires on the hand-made corruption built for it. *)
let slot ?(dst = None) ?(reads = [||]) ?(expire = max_int) name =
  {
    Sanitize.si_name = name;
    si_dst = dst;
    si_const = false;
    si_reads = reads;
    si_expire = expire;
  }

let test_sanitizer_unit_checks () =
  let buffers () = [ (0, Array.make 8 0.0); (1, Array.make 4 0.0) ] in
  let checks report name =
    check_bool (name ^ " fired") true (has_error ~check:name report)
  in
  (* a partial (out-of-partition) write leaves unstamped cells behind: the
     reader sees uninitialized shadow — the dynamic face of a partition
     gap *)
  let t =
    Sanitize.create Sanitize.Cells
      ~slots:
        [|
          slot ~dst:(Some (0, 8)) "writer";
          slot ~dst:(Some (1, 4)) ~reads:[| (0, 0, 8) |] "reader";
        |]
      ~buffers:(buffers ())
  in
  Sanitize.begin_run t;
  Sanitize.before_instr t 0;
  Sanitize.after_instr t ~written:[ (0, 4) ] 0;
  Sanitize.before_instr t 1;
  Sanitize.after_instr t 1;
  checks (Sanitize.report t) "sanitize-uninit";
  (* an interloper overwrites the producer's buffer before the read — the
     dynamic face of two values aliased onto one offset *)
  let t =
    Sanitize.create Sanitize.Cells
      ~slots:
        [|
          slot ~dst:(Some (0, 8)) "producer";
          slot ~dst:(Some (0, 8)) "interloper";
          slot ~dst:(Some (1, 4)) ~reads:[| (0, 0, 8) |] "reader";
        |]
      ~buffers:(buffers ())
  in
  Sanitize.begin_run t;
  Sanitize.before_instr t 0;
  Sanitize.after_instr t 0;
  Sanitize.before_instr t 1;
  Sanitize.after_instr t 1;
  Sanitize.before_instr t 2;
  Sanitize.after_instr t 2;
  checks (Sanitize.report t) "sanitize-stale";
  (* a read wider than the physical buffer *)
  let t =
    Sanitize.create Sanitize.Cells
      ~slots:
        [|
          slot ~dst:(Some (0, 8)) "writer";
          slot ~dst:(Some (1, 4)) ~reads:[| (0, 0, 16) |] "wide-reader";
        |]
      ~buffers:(buffers ())
  in
  Sanitize.begin_run t;
  Sanitize.before_instr t 0;
  Sanitize.after_instr t 0;
  Sanitize.before_instr t 1;
  checks (Sanitize.report t) "sanitize-oob";
  (* a read past the producer's planned expiry *)
  let t =
    Sanitize.create Sanitize.Cells
      ~slots:
        [|
          slot ~dst:(Some (0, 8)) ~expire:0 "short-lived";
          slot ~dst:(Some (1, 4)) "bystander";
          slot ~dst:(Some (1, 4)) ~reads:[| (0, 0, 8) |] "late-reader";
        |]
      ~buffers:(buffers ())
  in
  Sanitize.begin_run t;
  Sanitize.before_instr t 0;
  Sanitize.after_instr t 0;
  Sanitize.before_instr t 2;
  checks (Sanitize.report t) "sanitize-expired";
  (* Full mode: a write that escapes its destination shows up as a
     foreign diff at the next instruction — the dynamic face of an
     out-of-partition write, and of an injected bit flip *)
  let bufs = buffers () in
  let t =
    Sanitize.create Sanitize.Full
      ~slots:[| slot ~dst:(Some (1, 4)) "a"; slot ~dst:(Some (1, 4)) "b" |]
      ~buffers:bufs
  in
  Sanitize.begin_run t;
  Sanitize.before_instr t 0;
  Sanitize.after_instr t 0;
  (List.assoc 0 bufs).(3) <- 42.0;
  Sanitize.before_instr t 1;
  Sanitize.after_instr t 1;
  checks (Sanitize.report t) "sanitize-foreign";
  match Sanitize.check_exn t with
  | () -> Alcotest.fail "check_exn must raise on findings"
  | exception Sanitize.Sanitize_failed _ -> ()

(* ---------------- differential: sanitized == plain ---------------- *)

let diff_cfg =
  {
    Language_model.ptb_default with
    vocab = 20;
    embed = 8;
    hidden = 8;
    layers = 1;
    seq_len = 4;
    batch = 2;
    dropout = 0.2;
  }

let train_losses ~runtime ~fuse ~sanitize =
  let lm = Language_model.build diff_cfg in
  let training = Model.training lm.Language_model.model in
  let steps = 3 in
  let corpus =
    Corpus.generate ~seed:11 ~vocab:diff_cfg.Language_model.vocab
      ~length:
        (((steps + 2) * diff_cfg.Language_model.batch
         * diff_cfg.Language_model.seq_len)
        + 1)
  in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      (Corpus.lm_batches corpus ~batch:diff_cfg.Language_model.batch
         ~seq_len:diff_cfg.Language_model.seq_len ~steps)
  in
  let r =
    Loop.train ~graph:training.Echo_autodiff.Grad.graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
      ~runtime ~fuse ~sanitize ~batches ()
  in
  List.map Int64.bits_of_float r.Loop.losses

let test_sanitized_training_bit_identical () =
  let reference =
    with_fanout 1 (fun runtime ->
        train_losses ~runtime ~fuse:true ~sanitize:Sanitize.Off)
  in
  check_int "trained" 3 (List.length reference);
  List.iter
    (fun domains ->
      with_fanout domains (fun runtime ->
          List.iter
            (fun fuse ->
              List.iter
                (fun sanitize ->
                  let losses = train_losses ~runtime ~fuse ~sanitize in
                  Alcotest.(check (list int64))
                    (Printf.sprintf "%dd/%s/%s bit-identical" domains
                       (if fuse then "fused" else "unfused")
                       (Sanitize.mode_name sanitize))
                    reference losses)
                [ Sanitize.Off; Sanitize.Cells; Sanitize.Full ])
            [ true; false ]))
    [ 1; 2; 4 ]

(* qcheck transparency: for an arbitrary small LM shape, forced fan-out
   count, fusion setting and sanitize mode, the sanitized executor's
   outputs are bit-identical to the plain executor's on the same
   runtime — the shadow memory observes, never perturbs. *)
let prop_sanitizer_transparent =
  QCheck.Test.make ~name:"sanitized eval bit-identical on arbitrary LM shapes"
    ~count:8
    QCheck.(
      pair
        (quad (int_range 4 12) (int_range 2 5) (int_range 1 2) (int_range 1 3))
        (triple (int_range 0 2) bool (int_range 1 2)))
    (fun ((hidden, seq_len, layers, batch), (dom_idx, fuse, mode_idx)) ->
      let cfg =
        {
          Language_model.ptb_default with
          vocab = 30;
          embed = hidden;
          hidden;
          layers;
          seq_len;
          batch;
          dropout = 0.1;
        }
      in
      let lm = Language_model.build cfg in
      let g =
        (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
      in
      let ids node salt =
        let k = ref salt in
        ( node,
          Tensor.init (Node.shape node) (fun _ ->
              incr k;
              float_of_int (!k mod cfg.Language_model.vocab)) )
      in
      let feeds =
        [ ids lm.Language_model.token_input 1;
          ids lm.Language_model.label_input 2 ]
        @ Params.bindings lm.Language_model.model.Model.params
      in
      let domains = List.nth [ 1; 2; 4 ] dom_idx in
      let mode = List.nth [ Sanitize.Cells; Sanitize.Full ] (mode_idx - 1) in
      let fusion = if fuse then Some (Fuse.analyse g) else None in
      with_fanout domains (fun runtime ->
          let compile sanitize =
            Executor.compile ~runtime ?fusion ~sanitize g
          in
          let reference = Executor.eval (compile Sanitize.Off) ~feeds in
          let sanitized = Executor.eval (compile mode) ~feeds in
          List.for_all2 Tensor.equal reference sanitized))

(* ---------------- the serve lint verb ---------------- *)

let test_serve_lint_verb () =
  let engine = Echo_serve.Engine.create () in
  let r = Echo_serve.Engine.exec engine "lint hidden=8 vocab=20 seq_len=4" in
  check_bool "ok" true (contains ~sub:"ok findings=" r);
  check_bool "no errors on a sound artifact" true (contains ~sub:"errors=0" r);
  check_bool "cold compile" true (contains ~sub:"cached=false" r);
  let again = Echo_serve.Engine.exec engine "lint hidden=8 vocab=20 seq_len=4" in
  check_bool "warm re-check is served from the cache" true
    (contains ~sub:"cached=true" again);
  let bad = Echo_serve.Engine.exec engine "lint hidden=8 bogus=1" in
  check_bool "unknown key rejected" true (contains ~sub:"err" bad);
  check_bool "offender named" true (contains ~sub:"bogus" bad)

let suite =
  [
    ( "race",
      [
        Alcotest.test_case "sanitize mode parsing is strict" `Quick
          test_mode_parsing;
        Alcotest.test_case "cache key covers the sanitize mode" `Quick
          test_cache_key_covers_sanitize;
        Alcotest.test_case "clean matrix: planners x fusion x domains" `Quick
          test_clean_matrix;
        Alcotest.test_case "partition checker fires on shifted bounds" `Quick
          test_partition_checker_fires;
        Alcotest.test_case "lifetime checker fires on shrunk interval" `Quick
          test_lifetime_checker_fires;
        Alcotest.test_case "address checker fires on aliased offsets" `Quick
          test_alias_offsets_checker_fires;
        Alcotest.test_case "fused checker fires on widened interior" `Quick
          test_fused_interior_checker_fires;
        Alcotest.test_case "sanitizer catches a shrunk lifetime at runtime"
          `Quick test_sanitizer_catches_shrunk_lifetime;
        Alcotest.test_case "sanitizer unit checks all fire" `Quick
          test_sanitizer_unit_checks;
        Alcotest.test_case "sanitized training is bit-identical" `Quick
          test_sanitized_training_bit_identical;
        QCheck_alcotest.to_alcotest prop_sanitizer_transparent;
        Alcotest.test_case "serve lint verb" `Quick test_serve_lint_verb;
      ] );
  ]
