(* Graph optimisation passes (CSE, folding, fusion analysis), the simulated
   profiler, and the policy autotuner. *)

open Echo_tensor
open Echo_ir
open Echo_opt
open Echo_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dev = Echo_gpusim.Device.titan_xp

let outputs_equal g1 g2 ~feeds =
  List.for_all2 Tensor.equal (Interp.eval g1 ~feeds) (Interp.eval g2 ~feeds)

(* CSE *)

let test_cse_unifies_duplicates () =
  let x = Node.placeholder [| 4 |] in
  let a = Node.sigmoid x and b = Node.sigmoid x in
  let out = Node.add a b in
  let g = Graph.create [ out ] in
  let g' = Cse.run g in
  check_int "one sigmoid survives" 3 (Graph.node_count g');
  check_int "counted" 1 (Cse.count_redundant g)

let test_cse_respects_distinct_attrs () =
  let x = Node.placeholder [| 4 |] in
  let a = Node.scale 2.0 x and b = Node.scale 3.0 x in
  let g = Graph.create [ Node.add a b ] in
  check_int "no unification" 0 (Cse.count_redundant g)

let test_cse_keeps_placeholders () =
  let a = Node.placeholder [| 2 |] and b = Node.placeholder [| 2 |] in
  let g = Graph.create [ Node.add a b ] in
  check_int "placeholders distinct" 0 (Cse.count_redundant g);
  check_int "three nodes" 3 (Graph.node_count (Cse.run g))

let test_cse_region_barrier () =
  let x = Node.placeholder [| 4 |] in
  let f = Node.sigmoid x in
  let bwd = Node.sigmoid ~region:Node.Backward x in
  let g = Graph.create [ Node.add ~region:Node.Backward f bwd ] in
  (* same op, same input, different region: must not unify *)
  check_int "no cross-region unification" 0 (Cse.count_redundant g)

let test_cse_semantics_preserved () =
  let x = Node.placeholder [| 3; 3 |] in
  let y = Node.tanh_ (Node.matmul x x) in
  let z = Node.tanh_ (Node.matmul x x) in
  let g = Graph.create [ Node.mul y z ] in
  let g' = Cse.run g in
  let rng = Rng.create 1 in
  let feeds = [ (x, Tensor.uniform rng [| 3; 3 |] ~lo:(-1.0) ~hi:1.0) ] in
  check_bool "equal outputs" true (outputs_equal g g' ~feeds);
  check_bool "fewer nodes" true (Graph.node_count g' < Graph.node_count g)

let test_cse_chain_cascade () =
  (* duplicates of duplicates collapse transitively *)
  let x = Node.placeholder [| 2 |] in
  let mk () = Node.sq (Node.neg x) in
  let g = Graph.create [ Node.add (mk ()) (mk ()) ] in
  check_int "collapsed to single chain" 4 (Graph.node_count (Cse.run g))

(* Folding *)

let feeds_for x = [ (x, Tensor.of_list1 [ 1.5; -2.0 ]) ]

let test_fold_identities () =
  let x = Node.placeholder [| 2 |] in
  let y = Node.scale 1.0 (Node.add_scalar 0.0 (Node.pow_const 1.0 x)) in
  let g = Graph.create [ Node.neg y ] in
  let g' = Fold.run g in
  check_int "identities removed" 2 (Graph.node_count g');
  check_bool "semantics" true (outputs_equal g g' ~feeds:(feeds_for x))

let test_fold_zero_propagation () =
  let x = Node.placeholder [| 2 |] in
  let z = Node.mul x (Node.zeros [| 2 |]) in
  let out = Node.add x z in
  let g = Graph.create [ out ] in
  let g' = Fold.run (Fold.run g) in
  (* x * 0 -> zeros; x + zeros -> x *)
  check_bool "semantics" true (outputs_equal g g' ~feeds:(feeds_for x));
  check_int "only the placeholder remains" 1 (Graph.node_count g')

let test_fold_double_negation () =
  let x = Node.placeholder [| 2 |] in
  let g = Graph.create [ Node.sq (Node.neg (Node.neg x)) ] in
  let g' = Fold.run g in
  check_int "neg pair removed" 2 (Graph.node_count g');
  check_bool "semantics" true (outputs_equal g g' ~feeds:(feeds_for x))

let test_fold_scale_fusion () =
  let x = Node.placeholder [| 2 |] in
  let g = Graph.create [ Node.scale 2.0 (Node.scale 3.0 x) ] in
  let g' = Fold.run g in
  check_int "one scale" 2 (Graph.node_count g');
  check_bool "semantics" true (outputs_equal g g' ~feeds:(feeds_for x))

let test_fold_shape_noops () =
  let x = Node.placeholder [| 2; 3 |] in
  let y = Node.reshape [| 2; 3 |] x in
  let z = Node.transpose2d (Node.transpose2d y) in
  let g = Graph.create [ Node.sq z ] in
  let g' = Fold.run (Fold.run g) in
  check_int "noops removed" 2 (Graph.node_count g')

let test_fold_keeps_region () =
  let x = Node.placeholder [| 2 |] in
  let b = Node.scale ~region:Node.Backward 0.0 x in
  let out = Node.sq ~region:Node.Backward b in
  let g = Graph.create [ out ] in
  let g' = Fold.run g in
  List.iter
    (fun n ->
      if Node.op n = Op.Zeros then
        check_bool "replacement stays backward" true (Node.region n = Node.Backward))
    (Graph.nodes g')

(* Pipeline on a real training graph *)

let lm_graph () =
  let open Echo_models in
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 60;
        embed = 12;
        hidden = 12;
        layers = 2;
        seq_len = 6;
        batch = 3;
        dropout = 0.2;
      }
  in
  let training = Model.training lm.Language_model.model in
  let feeds =
    let rng = Rng.create 9 in
    let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 60)) in
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  (training.Echo_autodiff.Grad.graph, feeds)

let test_pipeline_on_training_graph () =
  let g, feeds = lm_graph () in
  let g', stats = Pipeline.run g in
  check_bool "removes something" true (stats.Pipeline.nodes_after < stats.Pipeline.nodes_before);
  check_bool "semantics preserved" true (outputs_equal g g' ~feeds);
  Graph.validate g'

let test_pipeline_composes_with_echo () =
  let g, feeds = lm_graph () in
  let g', _ = Pipeline.run g in
  let rewritten, report =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.1 }) g'
  in
  check_bool "echo after pipeline still sound" true (outputs_equal g' rewritten ~feeds);
  check_bool "no regression" true (Echo_core.Pass.reduction report >= 1.0)

(* Fusion analysis *)

let test_fusion_chain_detected () =
  let x = Node.placeholder [| 64 |] in
  let y = Node.sq (Node.tanh_ (Node.sigmoid (Node.neg x))) in
  let g = Graph.create [ y ] in
  let s = Fusion.analyse g in
  check_int "one group" 1 s.Fusion.groups;
  check_int "four members" 4 s.Fusion.fused_nodes;
  check_int "three launches saved" 3 s.Fusion.launches_saved

let test_fusion_breaks_at_gemm () =
  let x = Node.placeholder [| 8; 8 |] in
  let y = Node.sigmoid (Node.matmul (Node.tanh_ x) x) in
  let g = Graph.create [ y ] in
  let s = Fusion.analyse g in
  (* tanh alone (single, no group) and sigmoid alone: no group of >= 2 *)
  check_int "no groups across gemm" 0 s.Fusion.groups

let test_fusion_breaks_at_fanout () =
  let x = Node.placeholder [| 8 |] in
  let a = Node.sigmoid x in
  let b = Node.sq a and c = Node.neg a in
  let g = Graph.create [ Node.add b c ] in
  (* a has two consumers: b and c cannot join through it... but the Add can
     join its first input chain. Conservative single-consumer rule. *)
  let s = Fusion.analyse g in
  check_bool "limited fusion" true (s.Fusion.fused_nodes <= 3)

let test_fusion_time_saves_launches () =
  let x = Node.placeholder [| 64 |] in
  let y = Node.sq (Node.tanh_ (Node.sigmoid (Node.neg x))) in
  let g = Graph.create [ y ] in
  let t_unfused = Echo_gpusim.Costmodel.graph_time dev g in
  let t_fused = Fusion.fused_graph_time dev g in
  let saved = t_unfused -. t_fused in
  (* The fused group pays one launch instead of four, and its interiors
     never round-trip through memory, so the saving is the three launches
     plus the avoided traffic — never less than the launches alone. *)
  let three_launches = 3.0 *. dev.Echo_gpusim.Device.launch_overhead_s in
  check_bool "saves at least 3 launches" true (saved >= three_launches -. 1e-15);
  check_bool "also saves interior traffic" true (saved > three_launches)

(* Timeline / profiler *)

let test_timeline_events_contiguous () =
  let x = Node.placeholder [| 16 |] in
  let y = Node.sq (Node.sigmoid x) in
  let tl = Echo_gpusim.Timeline.simulate dev (Graph.create [ y ]) in
  let evs = Echo_gpusim.Timeline.events tl in
  check_int "two kernels" 2 (List.length evs);
  let e1 = List.nth evs 0 and e2 = List.nth evs 1 in
  check_bool "back to back" true
    (Float.abs (e2.Echo_gpusim.Timeline.start_s
                -. (e1.Echo_gpusim.Timeline.start_s +. e1.Echo_gpusim.Timeline.duration_s))
    < 1e-15);
  check_bool "total matches" true
    (Float.abs (Echo_gpusim.Timeline.total_s tl
                -. Echo_gpusim.Costmodel.graph_time dev (Graph.create [ y ]))
    < 1e-15)

let test_timeline_summary_shares () =
  let x = Node.placeholder [| 32; 32 |] in
  let y = Node.sigmoid (Node.matmul x x) in
  let tl = Echo_gpusim.Timeline.simulate dev (Graph.create [ y ]) in
  let lines = Echo_gpusim.Timeline.summary tl in
  let total_share = List.fold_left (fun acc l -> acc +. l.Echo_gpusim.Timeline.share) 0.0 lines in
  check_bool "shares sum to 1" true (Float.abs (total_share -. 1.0) < 1e-9);
  check_bool "matmul present" true
    (List.exists (fun l -> l.Echo_gpusim.Timeline.family = "Matmul") lines)

let test_timeline_chrome_trace_json () =
  let x = Node.placeholder [| 4 |] in
  let tl = Echo_gpusim.Timeline.simulate dev (Graph.create [ Node.neg x ]) in
  let json = Echo_gpusim.Timeline.to_chrome_trace tl in
  check_bool "bracketed" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  check_bool "has event" true (String.length json > 10)

let test_timeline_launch_share () =
  let x = Node.placeholder [| 2 |] in
  (* tiny kernels: launch-dominated *)
  let y = Node.sq (Node.neg x) in
  let tl = Echo_gpusim.Timeline.simulate dev (Graph.create [ y ]) in
  check_bool "launch dominated" true (Echo_gpusim.Timeline.launch_share dev tl > 0.9)

(* Autotune *)

let test_autotune_memory_target () =
  let g, _ = lm_graph () in
  let base = (Memplan.plan g).Memplan.live_peak_bytes in
  (* baseline fits a generous target *)
  (match Echo_core.Autotune.for_memory_target ~device:dev g ~target_bytes:(2 * base) with
  | Some o ->
    check_bool "baseline chosen" true (Echo_core.Autotune.label o = "stash-all")
  | None -> Alcotest.fail "generous target must fit");
  (* a slightly tight target forces recomputation *)
  (match Echo_core.Autotune.for_memory_target ~device:dev g ~target_bytes:(base - 1) with
  | Some o ->
    check_bool "fits" true
      (o.Echo_core.Autotune.report.Echo_core.Pass.optimised_mem.Memplan.live_peak_bytes
      < base)
  | None -> check_bool "acceptable if infeasible" true true);
  (* an impossible target *)
  check_bool "impossible target" true
    (Echo_core.Autotune.for_memory_target ~device:dev g ~target_bytes:1 = None)

let test_autotune_best_throughput () =
  let g, _ = lm_graph () in
  let base = (Memplan.plan g).Memplan.live_peak_bytes in
  match
    Echo_core.Autotune.best_throughput ~device:dev g ~budget_bytes:(2 * base)
      ~candidates:
        (List.map Echo_core.Pass.instance_of_policy
           [ Echo_core.Pass.Stash_all; Echo_core.Pass.Checkpoint_sqrt;
             Echo_core.Pass.Echo { overhead_budget = 0.3 } ])
  with
  | Some o ->
    check_bool "fastest fitting = baseline" true
      (Echo_core.Autotune.label o = "stash-all")
  | None -> Alcotest.fail "budget was generous"

(* fit_memory — the fault-tolerant runtime's escalation ladder. Rungs are
   judged by planned *arena* footprint (what the compiled slot executor
   actually allocates) and the first fit wins. The arena itself is not
   monotone along the ladder (recompute clones add buffers on small graphs),
   but first-fit escalation is: a smaller budget never picks an earlier
   rung. *)

let ladder_arenas g =
  List.map
    (fun planner ->
      let o = Echo_core.Autotune.run_one ~device:dev planner g in
      (Echo_core.Autotune.label o, Echo_core.Autotune.fit_footprint o))
    Echo_core.Autotune.fit_ladder

let test_fit_memory_below_floor () =
  let g, _ = lm_graph () in
  let arenas = ladder_arenas g in
  let floor = List.fold_left (fun acc (_, a) -> min acc a) max_int arenas in
  (match Echo_core.Autotune.fit_memory ~device:dev g ~budget_bytes:(floor - 1) with
  | None -> ()
  | Some _ -> Alcotest.fail "below the whole ladder: must be infeasible");
  match Echo_core.Autotune.fit_memory ~device:dev g ~budget_bytes:floor with
  | Some o ->
    check_int "floor budget fits exactly" floor (Echo_core.Autotune.fit_footprint o)
  | None -> Alcotest.fail "the ladder floor itself must fit"

let test_fit_memory_exact_rung () =
  let g, _ = lm_graph () in
  let arenas = ladder_arenas g in
  (* budget pinned exactly to a mid-ladder rung's arena *)
  let _, budget = List.nth arenas 2 (* echo(3%) *) in
  let expected_policy, expected_arena = List.find (fun (_, a) -> a <= budget) arenas in
  match Echo_core.Autotune.fit_memory ~device:dev g ~budget_bytes:budget with
  | None -> Alcotest.fail "a rung fits by construction"
  | Some o ->
    check_bool "first fitting rung chosen" true
      (Echo_core.Autotune.label o = expected_policy);
    check_int "footprint is that rung's arena" expected_arena
      (Echo_core.Autotune.fit_footprint o)

let test_fit_memory_first_fit_monotone () =
  let g, _ = lm_graph () in
  let arenas = ladder_arenas g in
  let floor = List.fold_left (fun acc (_, a) -> min acc a) max_int arenas in
  let top = List.fold_left (fun acc (_, a) -> max acc a) 0 arenas in
  let index label =
    let rec go i = function
      | [] -> Alcotest.fail "policy not on the ladder"
      | p :: _ when Echo_core.Planner.label p = label -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Echo_core.Autotune.fit_ladder
  in
  let budgets =
    List.sort_uniq
      (fun a b -> compare b a)
      ((top + 1) :: floor :: List.map snd arenas)
  in
  let last = ref (-1) in
  List.iter
    (fun budget ->
      match Echo_core.Autotune.fit_memory ~device:dev g ~budget_bytes:budget with
      | None -> Alcotest.fail "budgets at or above the floor must fit"
      | Some o ->
        check_bool "fits its budget" true
          (Echo_core.Autotune.fit_footprint o <= budget);
        let i = index (Echo_core.Autotune.label o) in
        check_bool "escalation is monotone as budgets shrink" true (i >= !last);
        last := i)
    budgets

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "opt.cse",
      [
        t "unifies duplicates" test_cse_unifies_duplicates;
        t "distinct attrs" test_cse_respects_distinct_attrs;
        t "keeps placeholders" test_cse_keeps_placeholders;
        t "region barrier" test_cse_region_barrier;
        t "semantics preserved" test_cse_semantics_preserved;
        t "chain cascade" test_cse_chain_cascade;
      ] );
    ( "opt.fold",
      [
        t "identities" test_fold_identities;
        t "zero propagation" test_fold_zero_propagation;
        t "double negation" test_fold_double_negation;
        t "scale fusion" test_fold_scale_fusion;
        t "shape noops" test_fold_shape_noops;
        t "keeps region" test_fold_keeps_region;
      ] );
    ( "opt.pipeline",
      [
        t "on training graph" test_pipeline_on_training_graph;
        t "composes with echo" test_pipeline_composes_with_echo;
      ] );
    ( "opt.fusion",
      [
        t "chain detected" test_fusion_chain_detected;
        t "breaks at gemm" test_fusion_breaks_at_gemm;
        t "breaks at fan-out" test_fusion_breaks_at_fanout;
        t "time saves launches" test_fusion_time_saves_launches;
      ] );
    ( "timeline",
      [
        t "events contiguous" test_timeline_events_contiguous;
        t "summary shares" test_timeline_summary_shares;
        t "chrome trace json" test_timeline_chrome_trace_json;
        t "launch share" test_timeline_launch_share;
      ] );
    ( "autotune",
      [
        t "memory target" test_autotune_memory_target;
        t "best throughput" test_autotune_best_throughput;
        t "fit_memory below floor" test_fit_memory_below_floor;
        t "fit_memory exact rung" test_fit_memory_exact_rung;
        t "fit_memory first-fit monotone" test_fit_memory_first_fit_monotone;
      ] );
  ]
