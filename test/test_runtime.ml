(* The fault-tolerant training runtime: fault plans, checkpoints, budget
   enforcement, and the Loop recovery paths (OOM re-planning, transient
   retry/skip, NaN guard, kill-and-resume). *)

open Echo_tensor
open Echo_ir
open Echo_runtime
open Echo_train
open Echo_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dev = Echo_gpusim.Device.titan_xp

let bits_equal a b =
  (Float.is_nan a && Float.is_nan b) || Int64.bits_of_float a = Int64.bits_of_float b

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

(* Fault plans *)

let test_fault_parse_and_take () =
  let plan = Fault.parse "oom@3=1048576; transient@5=flaky-link ;nan@7;oom@9=75%" in
  check_bool "nothing at step 1" true (Fault.take plan ~step:1 = None);
  (match Fault.take plan ~step:3 with
  | Some (Fault.Oom { budget_bytes }) -> check_int "bytes" 1_048_576 budget_bytes
  | _ -> Alcotest.fail "expected oom at step 3");
  check_bool "consumed" true (Fault.take plan ~step:3 = None);
  (match Fault.take plan ~step:5 with
  | Some (Fault.Transient why) -> Alcotest.(check string) "reason" "flaky-link" why
  | _ -> Alcotest.fail "expected transient at step 5");
  check_bool "nan" true (Fault.take plan ~step:7 = Some Fault.Nan_poison);
  (match Fault.take plan ~step:9 with
  | Some (Fault.Oom_shrink { fraction }) ->
    check_bool "75%" true (Float.abs (fraction -. 0.75) < 1e-9)
  | _ -> Alcotest.fail "expected relative oom at step 9");
  check_bool "drained" true (Fault.is_empty plan)

let test_fault_same_step_fires_across_retries () =
  let plan =
    Fault.of_specs
      [ { Fault.step = 2; kind = Fault.Transient "first" };
        { Fault.step = 2; kind = Fault.Transient "second" } ]
  in
  check_bool "first" true (Fault.take plan ~step:2 = Some (Fault.Transient "first"));
  check_bool "second" true (Fault.take plan ~step:2 = Some (Fault.Transient "second"));
  check_bool "then clear" true (Fault.take plan ~step:2 = None)

let test_fault_bad_specs () =
  let raises s =
    match Fault.parse s with
    | _ -> false
    | exception Fault.Bad_spec msg ->
      (* the error names the offending entry *)
      contains ~affix:(String.trim s) msg
  in
  List.iter
    (fun s -> check_bool s true (raises s))
    [ "oom@x=5"; "oom@1"; "bogus@1"; "nan@1=3"; "flaky@1"; "oom@1=abc%"; "3";
      "flip@1"; "flip@1=param:5:64"; "flip@1=param:-1:3"; "flip@1=act:1:2";
      "flip@1=act:1:2:3:4"; "flipflaky@1" ]

let test_fault_flaky_deterministic () =
  let draws () =
    let plan = Fault.of_specs ~flaky:(42, 400) [] in
    List.init 64 (fun step -> Fault.take plan ~step <> None)
  in
  let a = draws () and b = draws () in
  check_bool "same verdicts" true (a = b);
  check_bool "fires sometimes" true (List.exists Fun.id a);
  check_bool "passes sometimes" true (List.exists not a);
  (* one draw per step: a retry at the same step sees no second flaky fault *)
  let plan = Fault.of_specs ~flaky:(42, 1000) [] in
  check_bool "first draw fires" true (Fault.take plan ~step:0 <> None);
  check_bool "retry sees none" true (Fault.take plan ~step:0 = None)

let test_fault_to_string_roundtrip () =
  let text = "oom@3=1024;transient@5=why;nan@7" in
  let plan = Fault.parse text in
  check_bool "printable" true (Fault.to_string plan = text);
  Alcotest.(check string) "empty plan" "" (Fault.to_string Fault.none)

let test_fault_flip_parse_and_take () =
  let text = "flip@2=param:100:52;flip@2=act:3:7:62;flipflaky@9=500" in
  check_bool "flip grammar round-trips" true
    (Fault.to_string (Fault.parse text) = text);
  let plan = Fault.parse "flip@2=param:100:52;flip@2=act:3:7:62" in
  check_bool "nothing at step 1" true (Fault.take plan ~step:1 = None);
  check_bool "first flip" true
    (Fault.take plan ~step:2
    = Some (Fault.Flip_param { index = 100; bit = 52 }));
  (* consume-on-retry: a second take at the same step (a retry) draws the
     next armed fault, not the already-consumed one again *)
  check_bool "second flip services the retry" true
    (Fault.take plan ~step:2
    = Some (Fault.Flip_act { site = 3; index = 7; bit = 62 }));
  check_bool "then clear" true (Fault.take plan ~step:2 = None);
  check_bool "drained" true (Fault.is_empty plan)

let test_fault_flipflaky_deterministic () =
  let draws () =
    let plan = Fault.of_specs ~flip_flaky:(7, 600) [] in
    List.init 64 (fun step -> Fault.take plan ~step)
  in
  let a = draws () in
  check_bool "same draws on replay" true (a = draws ());
  check_bool "fires sometimes" true (List.exists (fun d -> d <> None) a);
  check_bool "passes sometimes" true (List.exists (fun d -> d = None) a);
  List.iter
    (function
      | Some (Fault.Flip_param { index; bit }) ->
        check_bool "drawn flip in bounds" true
          (index >= 0 && index < 1_048_576 && bit >= 0 && bit < 64)
      | Some _ -> Alcotest.fail "flipflaky draws parameter flips only"
      | None -> ())
    a;
  (* one draw per (seed, step): a retry at the same step sees no second *)
  let plan = Fault.of_specs ~flip_flaky:(7, 1000) [] in
  check_bool "first draw fires" true (Fault.take plan ~step:0 <> None);
  check_bool "retry sees none" true (Fault.take plan ~step:0 = None)

(* The whole grammar — every kind, every knob — survives a
   parse/to_string round trip, both as text and structurally. *)
let prop_fault_grammar_roundtrip =
  let open QCheck in
  let gen_kind =
    Gen.oneof
      [
        Gen.map
          (fun b -> Fault.Oom { budget_bytes = b })
          (Gen.int_range 1 1_000_000_000);
        Gen.map
          (fun p -> Fault.Oom_shrink { fraction = float_of_int p /. 100.0 })
          (Gen.int_range 1 99);
        Gen.map
          (fun w -> Fault.Transient w)
          (Gen.oneofl [ "injected"; "link-down"; "ecc"; "w0" ]);
        Gen.return Fault.Nan_poison;
        Gen.map2
          (fun index bit -> Fault.Flip_param { index; bit })
          (Gen.int_range 0 1_000_000) (Gen.int_range 0 63);
        Gen.map3
          (fun site index bit -> Fault.Flip_act { site; index; bit })
          (Gen.int_range 0 500) (Gen.int_range 0 100_000) (Gen.int_range 0 63);
      ]
  in
  let gen_plan =
    Gen.map3
      (fun specs flaky flip_flaky -> Fault.of_specs ?flaky ?flip_flaky specs)
      (Gen.list_size (Gen.int_range 0 8)
         (Gen.map2
            (fun step kind -> { Fault.step; kind })
            (Gen.int_range 0 99) gen_kind))
      (Gen.opt (Gen.pair (Gen.int_range 0 999) (Gen.int_range 0 1000)))
      (Gen.opt (Gen.pair (Gen.int_range 0 999) (Gen.int_range 0 1000)))
  in
  QCheck.Test.make ~name:"fault grammar round-trips through parse/to_string"
    ~count:200
    (QCheck.make ~print:Fault.to_string gen_plan)
    (fun plan ->
      let text = Fault.to_string plan in
      let re = Fault.parse text in
      Fault.to_string re = text && Fault.specs re = Fault.specs plan)

(* Events *)

let test_event_to_string () =
  let events =
    [ Event.Budget_hit { step = 3; requested_bytes = 10; budget_bytes = 5 };
      Event.Replan { step = 3; policy = "echo(5%)"; footprint_bytes = 4; budget_bytes = 5 };
      Event.Fault_injected
        {
          step = 4;
          fault = Fault.Flip_param { index = 7; bit = 52 };
          target = "embedding[7] bit 52";
        };
      Event.Retry { step = 4; attempt = 1; fault = Fault.Transient "injected" };
      Event.Skip { step = 4; retries = 2; fault = Fault.Transient "still failing" };
      Event.Nan_guard { step = 5; loss = Float.nan; grad_norm = 1.0 };
      Event.Checkpoint_write { step = 6; path = "x.ckpt" };
      Event.Checkpoint_load { step = 6; path = "x.ckpt" } ]
  in
  List.iter
    (fun e ->
      let s = Event.to_string e in
      check_bool "non-empty" true (String.length s > 0);
      check_bool "names the step" true
        (contains ~affix:"step" (String.lowercase_ascii s)))
    events

(* Checkpoints *)

let sample_checkpoint () =
  {
    Checkpoint.step = 7;
    rng_state = Some 0x1234_5678_9abc_def0L;
    opt_steps = 7;
    losses = [ 4.5; 1.0 /. 3.0; Float.nan; Float.neg_infinity; -0.0 ];
    params =
      [ ("embedding table", Tensor.of_list1 [ 1.5; -2.25; Float.pi ]);
        ("w%escaped",
         Tensor.init [| 2; 2 |] (fun i -> float_of_int ((i.(0) * 2) + i.(1)) /. 7.0)) ];
    slots =
      [ ("velocity", [ (0, Tensor.of_list1 [ 0.125 ]) ]);
        ("second", [ (1, Tensor.of_list1 [ 1e-30; 3.0 ]) ]) ];
  }

let with_temp f =
  let path = Filename.temp_file "echo_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp (fun path ->
      let t = sample_checkpoint () in
      Checkpoint.save ~path t;
      let r = Checkpoint.load path in
      check_int "step" t.Checkpoint.step r.Checkpoint.step;
      check_bool "rng" true (r.Checkpoint.rng_state = t.Checkpoint.rng_state);
      check_int "opt steps" t.Checkpoint.opt_steps r.Checkpoint.opt_steps;
      check_bool "losses bit-exact" true
        (List.for_all2 bits_equal t.Checkpoint.losses r.Checkpoint.losses);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          Alcotest.(check string) "param name" n1 n2;
          check_bool "param tensor" true (Tensor.equal v1 v2))
        t.Checkpoint.params r.Checkpoint.params;
      List.iter2
        (fun (s1, l1) (s2, l2) ->
          Alcotest.(check string) "slot name" s1 s2;
          List.iter2
            (fun (i1, v1) (i2, v2) ->
              check_int "slot index" i1 i2;
              check_bool "slot tensor" true (Tensor.equal v1 v2))
            l1 l2)
        t.Checkpoint.slots r.Checkpoint.slots)

let test_checkpoint_missing_file () =
  check_bool "raises" true
    (try
       ignore (Checkpoint.load "/nonexistent/echo.ckpt");
       false
     with Checkpoint.Corrupt _ -> true)

let corrupt_raises path =
  try
    ignore (Checkpoint.load path);
    false
  with Checkpoint.Corrupt _ -> true

let test_checkpoint_detects_tampering () =
  with_temp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let body = In_channel.with_open_bin path In_channel.input_all in
      (* flip one digit inside the body: the checksum must catch it *)
      let flipped = Bytes.of_string body in
      let i = String.index body '7' in
      Bytes.set flipped i '8';
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc flipped);
      check_bool "bit flip detected" true (corrupt_raises path);
      (* drop the checksum line entirely *)
      let cut = String.rindex body 'c' in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub body 0 cut));
      check_bool "truncation detected" true (corrupt_raises path);
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a checkpoint\n");
      check_bool "garbage detected" true (corrupt_raises path))

(* Corruption paths name their cause, so an operator reading the Corrupt
   payload knows whether the file was cut short, bit-flipped, or
   structurally mangled. *)

let corrupt_message path =
  try
    ignore (Checkpoint.load path);
    None
  with Checkpoint.Corrupt msg -> Some msg

let expect_corrupt ~affix path what =
  match corrupt_message path with
  | Some msg -> check_bool (what ^ ": " ^ msg) true (contains ~affix msg)
  | None -> Alcotest.fail (what ^ " was accepted")

let test_checkpoint_truncated_names_cause () =
  with_temp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let all = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub all 0 (String.length all / 2)));
      expect_corrupt ~affix:"checksum" path "truncated file")

let test_checkpoint_flipped_checksum_byte_names_cause () =
  with_temp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let all = In_channel.with_open_bin path In_channel.input_all in
      (* the file ends "checksum HEX\n": flip one digit of HEX — still
         well-formed hex, so only the verification itself can object *)
      let i = String.rindex all ' ' + 1 in
      let b = Bytes.of_string all in
      Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      expect_corrupt ~affix:"mismatch" path "flipped checksum byte")

(* FNV-1a 64, matching the checkpoint writer: lets the test mangle the
   body and re-seal it, so the structural parser (not the checksum) is
   what must object. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let test_checkpoint_missing_slot_field_names_cause () =
  with_temp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let all = In_channel.with_open_bin path In_channel.input_all in
      let keep l =
        String.trim l <> ""
        && not (String.length l >= 8 && String.sub l 0 8 = "checksum")
      in
      let mangle l =
        if String.length l >= 4 && String.sub l 0 4 = "slot" then
          match String.split_on_char ' ' l with
          | tag :: name :: idx :: _ -> String.concat " " [ tag; name; idx ]
          | _ -> l
        else l
      in
      let body =
        String.concat ""
          (List.map
             (fun l -> mangle l ^ "\n")
             (List.filter keep (String.split_on_char '\n' all)))
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc body;
          Out_channel.output_string oc
            (Printf.sprintf "checksum %Lx\n" (fnv1a body)));
      expect_corrupt ~affix:"unrecognised" path "slot line missing its tensor")

let test_serial_tensor_roundtrip () =
  let t =
    Tensor.init [| 3; 2 |] (fun i ->
        (float_of_int ((i.(0) * 2) + i.(1)) /. 3.0) -. 1.0)
  in
  let r = Serial.tensor_of_string (Serial.tensor_to_string t) in
  check_bool "bit-exact" true (Tensor.equal t r);
  check_bool "shape kept" true (Shape.equal (Tensor.shape t) (Tensor.shape r))

let test_rng_state_roundtrip () =
  let r1 = Rng.create 7 in
  for _ = 1 to 5 do
    ignore (Rng.float r1)
  done;
  let s = Rng.state r1 in
  let r2 = Rng.create 999 in
  Rng.set_state r2 s;
  for _ = 1 to 8 do
    check_bool "same stream" true (bits_equal (Rng.float r1) (Rng.float r2))
  done

(* Budget enforcement *)

let lm_setup ?(steps = 8) () =
  let open Echo_models in
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 60;
        embed = 12;
        hidden = 12;
        layers = 2;
        seq_len = 6;
        batch = 3;
        dropout = 0.2;
      }
  in
  let training = Model.training lm.Language_model.model in
  let graph = training.Echo_autodiff.Grad.graph in
  let params = Params.bindings lm.Language_model.model.Model.params in
  let stream = Corpus.generate ~seed:11 ~vocab:60 ~length:2_000 in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [ (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels) ])
      (Corpus.lm_batches stream ~batch:3 ~seq_len:6 ~steps)
  in
  (graph, params, batches, lm)

let stash_footprint graph =
  Echo_compiler.Executor.footprint_bytes
    (Echo_compiler.Pipeline.executor (Echo_compiler.Pipeline.compile_graph graph))

let test_budget_exceeded_is_typed () =
  let graph, _, _, _ = lm_setup () in
  let footprint = stash_footprint graph in
  (* exactly at the footprint: compiles *)
  ignore (Echo_compiler.Pipeline.compile_graph ~budget_bytes:footprint graph);
  (* one byte short: typed failure carrying both sides of the violation *)
  match Echo_compiler.Pipeline.compile_graph ~budget_bytes:(footprint - 1) graph with
  | _ -> Alcotest.fail "must not fit one byte under its own footprint"
  | exception Echo_compiler.Executor.Budget_exceeded { requested_bytes; budget_bytes } ->
    check_int "allowed" (footprint - 1) budget_bytes;
    check_bool "requested over budget" true (requested_bytes > budget_bytes)

(* Loop recovery *)

let sgd () = Optimizer.create (Optimizer.Sgd { lr = 0.5 })

let adam () =
  Optimizer.create (Optimizer.Adam { lr = 0.05; beta1 = 0.9; beta2 = 0.999; eps = 1e-8 })

let losses_bit_identical a b =
  List.length a = List.length b && List.for_all2 bits_equal a b

(* The acceptance differential: an OOM injected mid-run at a budget some
   Echo rung fits must trigger exactly one re-plan and leave the loss
   trajectory bit-identical to an unfaulted run compiled directly at the
   surviving policy. *)
let test_oom_replan_differential () =
  let graph, params, batches, _ = lm_setup () in
  let budget = stash_footprint graph - 1 in
  let outcome =
    match Echo_core.Autotune.fit_memory ~device:dev graph ~budget_bytes:budget with
    | Some o -> o
    | None -> Alcotest.fail "an escalation rung must fit one byte under stash-all"
  in
  check_bool "survivor is a real rewrite" true
    (Echo_core.Autotune.label outcome <> "stash-all");
  let reference =
    Loop.train ~graph:outcome.Echo_core.Autotune.graph ~params ~optimizer:(sgd ())
      ~clip_norm:5.0 ~faults:Fault.none ~batches ()
  in
  let events = ref [] in
  let faulted =
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~clip_norm:5.0
      ~faults:(Fault.of_specs [ { Fault.step = 3; kind = Fault.Oom { budget_bytes = budget } } ])
      ~on_event:(fun e -> events := e :: !events)
      ~batches ()
  in
  let replans =
    List.filter_map
      (function
        | Event.Replan { policy; footprint_bytes; _ } -> Some (policy, footprint_bytes)
        | _ -> None)
      (List.rev !events)
  in
  check_int "exactly one replan" 1 (List.length replans);
  let policy, footprint_bytes = List.hd replans in
  Alcotest.(check string) "surviving policy"
    (Echo_core.Autotune.label outcome)
    policy;
  check_bool "under budget" true (footprint_bytes <= budget);
  check_bool "budget hit surfaced first" true
    (match List.rev !events with Event.Budget_hit _ :: _ -> true | _ -> false);
  check_bool "losses bit-identical" true
    (losses_bit_identical reference.Loop.losses faulted.Loop.losses);
  List.iter2
    (fun (_, a) (_, b) -> check_bool "params bit-identical" true (Tensor.equal a b))
    reference.Loop.params faulted.Loop.params

let test_oom_infeasible_budget_escapes () =
  let graph, params, batches, _ = lm_setup ~steps:2 () in
  match
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:Fault.none
      ~budget_bytes:4096 ~batches ()
  with
  | _ -> Alcotest.fail "4 KiB cannot hold the model"
  | exception Echo_compiler.Executor.Budget_exceeded { budget_bytes; _ } ->
    check_int "carries the ceiling" 4096 budget_bytes

let test_transient_retry_is_transparent () =
  let graph, params, batches, _ = lm_setup () in
  let clean =
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:Fault.none ~batches ()
  in
  let events = ref [] in
  let faulted =
    Loop.train ~graph ~params ~optimizer:(sgd ())
      ~faults:(Fault.of_specs [ { Fault.step = 2; kind = Fault.Transient "blip" } ])
      ~on_event:(fun e -> events := e :: !events)
      ~batches ()
  in
  let retries = List.filter (function Event.Retry _ -> true | _ -> false) !events in
  let skips = List.filter (function Event.Skip _ -> true | _ -> false) !events in
  check_int "one retry" 1 (List.length retries);
  check_int "no skip" 0 (List.length skips);
  check_bool "retry leaves losses untouched" true
    (losses_bit_identical clean.Loop.losses faulted.Loop.losses)

let test_transient_exhaustion_skips_step () =
  let graph, params, batches, _ = lm_setup () in
  let persistent =
    Fault.of_specs
      (List.init 3 (fun _ -> { Fault.step = 2; kind = Fault.Transient "dead link" }))
  in
  let events = ref [] in
  let result =
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:persistent ~max_retries:2
      ~on_event:(fun e -> events := e :: !events)
      ~batches ()
  in
  let retries = List.filter (function Event.Retry _ -> true | _ -> false) !events in
  check_int "two retries" 2 (List.length retries);
  (match
     List.filter_map
       (function
         | Event.Skip { step; retries; fault } -> Some (step, retries, fault)
         | _ -> None)
       !events
   with
  | [ (step, retries, fault) ] ->
    check_int "skipped step" 2 step;
    check_int "retry count in payload" 2 retries;
    check_bool "fault kind survives, typed" true
      (fault = Fault.Transient "dead link")
  | l -> Alcotest.fail (Printf.sprintf "expected one skip, saw %d" (List.length l)));
  check_int "one loss missing" (List.length batches - 1) (List.length result.Loop.losses)

let test_nan_guard_protects_params () =
  let graph, params, batches, _ = lm_setup () in
  let clean =
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:Fault.none ~batches ()
  in
  let events = ref [] in
  let poisoned =
    Loop.train ~graph ~params ~optimizer:(sgd ())
      ~faults:(Fault.of_specs [ { Fault.step = 2; kind = Fault.Nan_poison } ])
      ~on_event:(fun e -> events := e :: !events)
      ~batches ()
  in
  (match
     List.filter_map
       (function Event.Nan_guard { step; loss; _ } -> Some (step, loss) | _ -> None)
       !events
   with
  | [ (step, loss) ] ->
    check_int "guarded step" 2 step;
    check_bool "loss was non-finite" true (not (Float.is_finite loss))
  | l -> Alcotest.fail (Printf.sprintf "expected one nan guard, saw %d" (List.length l)));
  check_int "loss history complete" (List.length batches) (List.length poisoned.Loop.losses);
  check_bool "nan recorded in history" true (Float.is_nan (List.nth poisoned.Loop.losses 2));
  (* before the poisoned step the runs are identical *)
  check_bool "prefix identical" true
    (bits_equal (List.nth clean.Loop.losses 0) (List.nth poisoned.Loop.losses 0)
    && bits_equal (List.nth clean.Loop.losses 1) (List.nth poisoned.Loop.losses 1));
  (* and the update was skipped, so training continued on finite params *)
  List.iter
    (fun l -> check_bool "later losses finite" true (Float.is_finite l))
    (List.filteri (fun i _ -> i <> 2) poisoned.Loop.losses)

let test_missing_feed_is_named () =
  let graph, params, batches, lm = lm_setup ~steps:2 () in
  let truncated =
    List.map
      (List.filter (fun (node, _) -> node != lm.Echo_models.Language_model.label_input))
      batches
  in
  match Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:Fault.none ~batches:truncated () with
  | _ -> Alcotest.fail "must refuse to run without the label feed"
  | exception Invalid_argument msg ->
    check_bool "names the step" true (contains ~affix:"step 0" msg);
    check_bool "hints at the batch" true (contains ~affix:"batch" msg)

(* Kill-and-resume: a run interrupted after its last checkpoint write and
   resumed in a fresh loop (fresh optimizer, fresh executor) must reproduce
   the uninterrupted run bit-exactly — losses and parameters. Adam, so the
   optimizer slot state and step counter must survive the round-trip too. *)
let test_checkpoint_resume_bit_exact () =
  let graph, params, batches, _ = lm_setup ~steps:9 () in
  with_temp (fun path ->
      let uninterrupted =
        Loop.train ~graph ~params ~optimizer:(adam ()) ~clip_norm:5.0
          ~faults:Fault.none ~batches ()
      in
      (* first life: killed after step 6; the last checkpoint is at step 4 *)
      let first_six = List.filteri (fun i _ -> i < 6) batches in
      ignore
        (Loop.train ~graph ~params ~optimizer:(adam ()) ~clip_norm:5.0
           ~faults:Fault.none
           ~checkpoint:{ Loop.path; every = 4; resume = false }
           ~batches:first_six ());
      check_int "checkpointed at step 4" 4 (Checkpoint.load path).Checkpoint.step;
      (* second life: resume from the checkpoint over the full batch stream *)
      let events = ref [] in
      let resumed =
        Loop.train ~graph ~params ~optimizer:(adam ()) ~clip_norm:5.0
          ~faults:Fault.none
          ~checkpoint:{ Loop.path; every = 4; resume = true }
          ~on_event:(fun e -> events := e :: !events)
          ~batches ()
      in
      check_bool "load event" true
        (List.exists
           (function Event.Checkpoint_load { step = 4; _ } -> true | _ -> false)
           !events);
      check_bool "losses reproduce the uninterrupted run" true
        (losses_bit_identical uninterrupted.Loop.losses resumed.Loop.losses);
      List.iter2
        (fun (_, a) (_, b) -> check_bool "params reproduce" true (Tensor.equal a b))
        uninterrupted.Loop.params resumed.Loop.params)

let test_checkpoint_rejects_wrong_model () =
  let graph, params, batches, _ = lm_setup ~steps:2 () in
  with_temp (fun path ->
      Checkpoint.save ~path
        { Checkpoint.step = 1; rng_state = None; opt_steps = 1; losses = [ 1.0 ];
          params = [ ("stranger", Tensor.of_list1 [ 0.0 ]) ]; slots = [] };
      check_bool "raises" true
        (try
           ignore
             (Loop.train ~graph ~params ~optimizer:(sgd ()) ~faults:Fault.none
                ~checkpoint:{ Loop.path; every = 0; resume = true }
                ~batches ());
           false
         with Invalid_argument _ -> true))

(* Fail fast on a fault plan the run cannot host: the Bad_spec escapes
   before any compilation, naming the offending entry and the valid
   range. *)
let test_flip_fail_fast_validation () =
  let graph, params, batches, _ = lm_setup ~steps:2 () in
  match
    Loop.train ~graph ~params ~optimizer:(sgd ()) ~device:dev
      ~faults:
        (Fault.of_specs
           [
             {
               Fault.step = 0;
               kind = Fault.Flip_act { site = 100_000; index = 0; bit = 1 };
             };
           ])
      ~batches ()
  with
  | _ -> Alcotest.fail "an impossible activation site must be rejected"
  | exception Fault.Bad_spec msg ->
    check_bool ("names the entry: " ^ msg) true
      (contains ~affix:"flip@0=act:100000:0:1" msg);
    check_bool ("names the range: " ^ msg) true
      (contains ~affix:"injection sites" msg)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "runtime.fault",
      [
        t "parse and take" test_fault_parse_and_take;
        t "same step across retries" test_fault_same_step_fires_across_retries;
        t "bad specs" test_fault_bad_specs;
        t "flaky deterministic" test_fault_flaky_deterministic;
        t "to_string roundtrip" test_fault_to_string_roundtrip;
        t "flip parse and take" test_fault_flip_parse_and_take;
        t "flipflaky deterministic" test_fault_flipflaky_deterministic;
        QCheck_alcotest.to_alcotest prop_fault_grammar_roundtrip;
      ] );
    ( "runtime.event", [ t "to_string" test_event_to_string ] );
    ( "runtime.checkpoint",
      [
        t "roundtrip bit-exact" test_checkpoint_roundtrip;
        t "missing file" test_checkpoint_missing_file;
        t "detects tampering" test_checkpoint_detects_tampering;
        t "truncation names its cause" test_checkpoint_truncated_names_cause;
        t "flipped checksum byte names its cause"
          test_checkpoint_flipped_checksum_byte_names_cause;
        t "missing slot field names its cause"
          test_checkpoint_missing_slot_field_names_cause;
        t "serial tensor roundtrip" test_serial_tensor_roundtrip;
        t "rng state roundtrip" test_rng_state_roundtrip;
      ] );
    ( "runtime.budget", [ t "typed budget violation" test_budget_exceeded_is_typed ] );
    ( "runtime.loop",
      [
        t "oom replan differential" test_oom_replan_differential;
        t "infeasible budget escapes" test_oom_infeasible_budget_escapes;
        t "transient retry transparent" test_transient_retry_is_transparent;
        t "transient exhaustion skips" test_transient_exhaustion_skips_step;
        t "nan guard" test_nan_guard_protects_params;
        t "missing feed named" test_missing_feed_is_named;
        t "flip fail-fast validation" test_flip_fail_fast_validation;
        t "kill and resume bit-exact" test_checkpoint_resume_bit_exact;
        t "wrong checkpoint rejected" test_checkpoint_rejects_wrong_model;
      ] );
  ]
