(* echoc: the Echo compiler driver.

   Builds one of the model-zoo training graphs, applies a recomputation
   policy, and reports simulated-GPU footprint and iteration time. Examples:

     dune exec bin/echoc.exe -- --model lm --policy echo --budget 0.1
     dune exec bin/echoc.exe -- --model nmt --batch 128 --all --breakdown
     dune exec bin/echoc.exe -- --model transformer --policy checkpoint

   With --train N it instead drives the fault-tolerant training loop for N
   steps on a synthetic corpus, with optional budget enforcement, fault
   injection and checkpoint/resume:

     dune exec bin/echoc.exe -- --train 20 -H 24 -b 6 -t 10 \
       --checkpoint run.ckpt --checkpoint-every 5
     dune exec bin/echoc.exe -- --train 20 -H 24 -b 6 -t 10 \
       --checkpoint run.ckpt --resume
     dune exec bin/echoc.exe -- --train 20 -H 24 --faults "oom@3=50%" *)

open Cmdliner
open Echo_models
open Echo_core
open Echo_exec
module Pipeline = Echo_compiler.Pipeline

type model_choice = Lm | Peephole_lm | Gru_lm | Rnn_lm | Nmt_model | Ds2 | Transformer_model

let build_graph choice ~batch ~seq_len ~hidden ~layers =
  let lm cell =
    let d = Language_model.ptb_default in
    let cfg =
      {
        d with
        Language_model.cell;
        batch = Option.value batch ~default:d.Language_model.batch;
        seq_len = Option.value seq_len ~default:d.Language_model.seq_len;
        hidden = Option.value hidden ~default:d.Language_model.hidden;
        embed = Option.value hidden ~default:d.Language_model.embed;
        layers = Option.value layers ~default:d.Language_model.layers;
      }
    in
    (Language_model.build cfg).Language_model.model
  in
  let model =
    match choice with
    | Lm -> lm Recurrent.Lstm
    | Peephole_lm -> lm Recurrent.Peephole
    | Gru_lm -> lm Recurrent.Gru
    | Rnn_lm -> lm Recurrent.Vanilla
    | Nmt_model ->
      let d = Nmt.gnmt_like in
      let cfg =
        {
          d with
          Nmt.batch = Option.value batch ~default:d.Nmt.batch;
          src_len = Option.value seq_len ~default:d.Nmt.src_len;
          tgt_len = Option.value seq_len ~default:d.Nmt.tgt_len;
          hidden = Option.value hidden ~default:d.Nmt.hidden;
          embed = Option.value hidden ~default:d.Nmt.embed;
          enc_layers = Option.value layers ~default:d.Nmt.enc_layers;
          dec_layers = Option.value layers ~default:d.Nmt.dec_layers;
        }
      in
      (Nmt.build cfg).Nmt.model
    | Ds2 ->
      let d = Deepspeech.ds2_like in
      let cfg =
        {
          d with
          Deepspeech.batch = Option.value batch ~default:d.Deepspeech.batch;
          time = Option.value seq_len ~default:d.Deepspeech.time;
          rnn_hidden = Option.value hidden ~default:d.Deepspeech.rnn_hidden;
          rnn_layers = Option.value layers ~default:d.Deepspeech.rnn_layers;
        }
      in
      (Deepspeech.build cfg).Deepspeech.model
    | Transformer_model ->
      let d = Transformer.base_like in
      let cfg =
        {
          d with
          Transformer.batch = Option.value batch ~default:d.Transformer.batch;
          seq_len = Option.value seq_len ~default:d.Transformer.seq_len;
          d_model = Option.value hidden ~default:d.Transformer.d_model;
          layers = Option.value layers ~default:d.Transformer.layers;
        }
      in
      (Transformer.build cfg).Transformer.model
  in
  model

(* Resolve the planner the run uses: the --policy flag if given, else the
   ECHO_POLICY environment variable, else [default]. Specs go through the
   registry parser, so `--policy dp-bptt:slots=8` and every future
   registered planner work without touching this driver. *)
let resolve_planner ?flag ~budget default =
  let spec =
    match flag with
    | Some s -> Some s
    | None -> Sys.getenv_opt "ECHO_POLICY"
  in
  let spec = Option.value spec ~default in
  match Echo_core.Planner.parse spec with
  | Error msg -> failwith msg
  | Ok instance -> begin
    (* The legacy --budget flag feeds any planner that declares a [budget]
       knob the spec itself left unbound (spec knobs win). *)
    match budget with
    | Some b
      when Echo_core.Planner.declares instance.Echo_core.Planner.planner
             "budget"
           && not (Echo_core.Planner.knob_is_set instance "budget") ->
      Echo_core.Planner.with_knob instance "budget" b
    | _ -> instance
  end

(* --train: drive the fault-tolerant training loop instead of the
   policy-report path. LM family only (the synthetic corpus is a token
   stream). *)
let train_mode model_choice ~batch ~seq_len ~hidden ~layers ~vocab ~steps
    ~device ~planner
    ~runtime ~budget_bytes ~faults_spec ~checkpoint_path ~checkpoint_every
    ~resume ~no_fuse ~tune_exec ~corpus_file ~sanitize =
  (* Parse the fault plan first: a malformed --faults/ECHO_FAULTS entry is a
     configuration error and must be reported before any model is built or
     compiled, not steps into the run. *)
  let faults =
    try
      match faults_spec with
      | Some s -> Echo_runtime.Fault.parse s
      | None -> Echo_runtime.Fault.of_env ()
    with Echo_runtime.Fault.Bad_spec msg -> failwith msg
  in
  let cell =
    match model_choice with
    | Lm -> Recurrent.Lstm
    | Peephole_lm -> Recurrent.Peephole
    | Gru_lm -> Recurrent.Gru
    | Rnn_lm -> Recurrent.Vanilla
    | Nmt_model | Ds2 | Transformer_model ->
      failwith
        "--train drives the LM family only (lm, peephole-lm, gru-lm, rnn-lm)"
  in
  (* --corpus: a real PTB-style text file replaces the synthetic stream and
     fixes the vocabulary; a conflicting --vocab is a configuration error. *)
  let real_corpus =
    Option.map
      (fun path ->
        let c =
          try Echo_workloads.Corpus.load_text path
          with Invalid_argument msg -> failwith msg
        in
        Format.printf "corpus %s: %d tokens, vocabulary %d@." path
          (Echo_workloads.Corpus.length c)
          (Echo_workloads.Corpus.vocab c);
        c)
      corpus_file
  in
  (match (real_corpus, vocab) with
  | Some _, Some _ ->
    failwith "--vocab conflicts with --corpus (the corpus fixes the vocabulary)"
  | _ -> ());
  let d = Language_model.ptb_default in
  let cfg =
    {
      d with
      Language_model.cell;
      batch = Option.value batch ~default:d.Language_model.batch;
      seq_len = Option.value seq_len ~default:d.Language_model.seq_len;
      hidden = Option.value hidden ~default:d.Language_model.hidden;
      embed = Option.value hidden ~default:d.Language_model.embed;
      layers = Option.value layers ~default:d.Language_model.layers;
      vocab =
        (match real_corpus with
        | Some c -> Echo_workloads.Corpus.vocab c
        | None -> Option.value vocab ~default:d.Language_model.vocab);
    }
  in
  let lm = Language_model.build cfg in
  Format.printf "%a@." Model.describe lm.Language_model.model;
  let training = Model.training lm.Language_model.model in
  let corpus =
    match real_corpus with
    | Some c -> c
    | None ->
      Echo_workloads.Corpus.generate ~seed:5 ~vocab:cfg.Language_model.vocab
        ~length:
          (((steps + 2) * cfg.Language_model.batch * cfg.Language_model.seq_len)
          + 1)
  in
  let batches =
    let raw =
      try
        Echo_workloads.Corpus.lm_batches corpus
          ~batch:cfg.Language_model.batch ~seq_len:cfg.Language_model.seq_len
          ~steps
      with Invalid_argument _ ->
        failwith
          (Printf.sprintf
             "corpus too short: %d token(s) cannot fill %d step(s) of %d x %d \
              — use a longer file or fewer/smaller batches"
             (Echo_workloads.Corpus.length corpus)
             steps cfg.Language_model.batch cfg.Language_model.seq_len)
    in
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      raw
  in
  let checkpoint =
    Option.map
      (fun path -> { Echo_train.Loop.path; every = checkpoint_every; resume })
      checkpoint_path
  in
  (* --tune-exec: joint (planner, fuse, domains, blocking-threshold) search
     over the escalation ladder with the host cost model, replacing the
     hand-picked knobs with the predicted-fastest combination that fits the
     budget. *)
  let runtime, planner, fuse =
    if not tune_exec then
      (runtime, planner, if no_fuse then Some false else None)
    else begin
      let module A = Echo_core.Autotune in
      match
        A.fit_exec ~device training.Echo_autodiff.Grad.graph
          ~budget_bytes:(Option.value budget_bytes ~default:max_int)
      with
      | None ->
        failwith
          "--tune-exec: no plan on the escalation ladder fits --budget-bytes"
      | Some choice ->
        let c = choice.A.combo in
        Format.printf
          "tuned exec: policy=%s fuse=%b domains=%d blocking-threshold=%s \
           (predicted %.3f ms/step, arena %d bytes)@."
          (A.label choice.A.chosen) c.A.fuse c.A.domains
          (if c.A.blocking_threshold = max_int then "off"
           else string_of_int c.A.blocking_threshold)
          (choice.A.predicted_s *. 1e3)
          choice.A.arena_bytes;
        (A.combo_runtime c, Some choice.A.chosen.A.planner, Some c.A.fuse)
    end
  in
  let train () =
    Echo_train.Loop.train ~graph:training.Echo_autodiff.Grad.graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Echo_train.Optimizer.create (Echo_train.Optimizer.Sgd { lr = 0.5 }))
      ~clip_norm:5.0
      ~on_step:(fun s ->
        Format.printf "step %4d  loss %.6f  ppl %.2f  |g| %.4f@."
          s.Echo_train.Loop.step s.Echo_train.Loop.loss
          (Echo_train.Loop.perplexity s.Echo_train.Loop.loss)
          s.Echo_train.Loop.grad_norm)
      ~on_event:(fun e ->
        Format.printf "[recovery] %s@." (Echo_runtime.Event.to_string e))
      ?budget_bytes ~faults ?checkpoint ~device ~runtime ?fuse ?sanitize
      ?planner ~batches ()
  in
  let result =
    try train ()
    with Echo_compiler.Executor.Budget_exceeded { requested_bytes; budget_bytes }
    ->
      failwith
        (Printf.sprintf
           "out of memory: the run needs at least %d bytes but the device \
            allows %d, and no policy on the escalation ladder (up to \
            recompute-all) fits — shrink the model or raise the budget"
           requested_bytes budget_bytes)
  in
  match List.rev result.Echo_train.Loop.losses with
  | final :: _ ->
    Format.printf "trained %d step(s); final loss %.6f (ppl %.2f)@."
      (List.length result.Echo_train.Loop.losses)
      final
      (Echo_train.Loop.perplexity final)
  | [] -> Format.printf "trained 0 steps (all skipped)@."

(* --campaign: run a fault-injection campaign and print the per-(model x
   planner) resilience report. The sweep is scheduled across the same pool
   -j configures; the report itself is domain-count independent. *)
let campaign_mode ~pool spec_text =
  let module Campaign = Echo_campaign.Campaign in
  match Campaign.parse_spec spec_text with
  | Error msg -> failwith msg
  | Ok spec ->
    let report = Campaign.run ~pool spec in
    print_string (Campaign.summary report);
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Campaign.summary report);
        output_string oc "\n";
        List.iter
          (fun line ->
            output_string oc line;
            output_string oc "\n")
          (Campaign.detail_lines report);
        close_out oc;
        Format.printf "wrote %s@." path)
      spec.Campaign.out

(* --lint: run the Echo-verify checkers over every stage artifact of the
   compiled pipeline and print the collected diagnostics. --corrupt seeds
   one deliberate corruption first, demonstrating (and letting scripts
   assert, with --lint-strict's nonzero exit) that the checker for that
   artifact actually fires. *)
let lint_policy ~runtime ~sanitize ~no_fuse ~corrupt label rw =
  let module Verify = Echo_analysis.Verify in
  let module Mutate = Echo_analysis.Mutate in
  let module Race = Echo_analysis.Race in
  let planned = Pipeline.plan ~offsets:true rw in
  let fused =
    if no_fuse then Pipeline.fuse ~enabled:false planned
    else Pipeline.fuse planned
  in
  let exe = Pipeline.compile ~runtime ?sanitize fused in
  let graph = fused.Pipeline.graph in
  let report =
    match corrupt with
    | None ->
      let report = Pipeline.verify (Pipeline.Executable exe) in
      Echo_diag.Report.append ~into:report (Pipeline.race_verify exe);
      report
    | Some kind ->
      let offsets =
        match planned.Pipeline.offsets with
        | Some a -> a
        | None -> assert false
      in
      (* Binding corruptions work on an unfused executor: the mutators
         reason about unfused liveness when picking their site. *)
      let unfused_binding () =
        let exe_u =
          Pipeline.compile ~runtime (Pipeline.fuse ~enabled:false planned)
        in
        Echo_compiler.Executor.buffer_binding (Pipeline.executor exe_u)
      in
      let need what = function
        | Some v -> v
        | None ->
          failwith
            (Printf.sprintf
               "--corrupt %s: this graph offers no site for that corruption \
                (%s)"
               kind what)
      in
      (match kind with
      | "schedule" ->
        let schedule = need "no node with inputs" (Mutate.swap_schedule graph) in
        Verify.lint ~schedule graph
      | "slot-overlap" ->
        let offsets =
          need "no pair of concurrent slots" (Mutate.overlap_slots offsets)
        in
        Verify.lint ~offsets graph
      | "slot-escape" ->
        let offsets = need "no slots at all" (Mutate.escape_slot offsets) in
        Verify.lint ~offsets graph
      | "alias" ->
        let binding =
          need "no two buffers live simultaneously"
            (Mutate.alias_binding graph (unfused_binding ()))
        in
        Verify.lint ~binding graph
      | "inplace-donor" ->
        let binding =
          need "no non-elementwise consumer of a dying input"
            (Mutate.retarget_inplace graph (unfused_binding ()))
        in
        Verify.lint ~binding graph
      | "clone-seed" ->
        let graph =
          need "no DropoutMask recomputation clone (pick a policy that \
                mirrors dropout)"
            (Mutate.reseed_clone graph)
        in
        Verify.lint graph
      | "clone-hint" ->
        let graph =
          need "no recomputation clone (pick a recomputing policy)"
            (Mutate.bad_clone_hint graph)
        in
        Verify.lint graph
      | "fusion-region" ->
        let fusion =
          need "no backward elementwise node reading a same-shape forward one"
            (Mutate.cross_region_group graph)
        in
        Verify.lint ~fusion graph
      | "partition-overlap" | "partition-gap" ->
        (* The corrupted chunk formula is only consulted where the runtime
           actually fans out; force a 2-way oversubscribed fan-out so the
           demonstration fires on any machine, single-core CI included. *)
        let shift =
          if kind = "partition-overlap" then `Overlap else `Gap
        in
        let fanout =
          Echo_tensor.Parallel.create ~domains:2 ~oversubscribe:true
            ~min_fanout_work:0 ()
        in
        let report =
          Race.check_kernels ~chunk_bounds:(Mutate.shift_partition shift)
            ?fusion:fused.Pipeline.fusion
            ~binding:
              (Echo_compiler.Executor.buffer_binding (Pipeline.executor exe))
            ~runtime:fanout graph
        in
        Echo_tensor.Parallel.shutdown fanout;
        report
      | "lifetime" ->
        let fusion = fused.Pipeline.fusion in
        let corrupted =
          need "no buffer read after its definition step"
            (Mutate.shrink_lifetime (Liveness.analyse ?fusion graph))
        in
        let intervals =
          List.map
            (fun itv ->
              ( Echo_ir.Node.id itv.Liveness.node,
                itv.Liveness.def_step,
                itv.Liveness.last_step ))
            corrupted
        in
        Race.check_lifetimes ?fusion ~intervals graph
      | "alias-offsets" ->
        let binding = unfused_binding () in
        let layout =
          need "no two buffers with overlapping live ranges"
            (Mutate.alias_offsets graph binding)
        in
        Race.check_addresses ~layout graph binding
      | "fused-interior" ->
        let plan =
          need "no fusion plan (drop --no-fuse)" fused.Pipeline.fusion
        in
        let widened =
          need "no single-input interior in any fused group"
            (Mutate.widen_fused_interior plan)
        in
        Race.check_fused widened
      | other ->
        failwith
          (Printf.sprintf
             "unknown corruption %S: one of schedule, slot-overlap, \
              slot-escape, alias, inplace-donor, clone-seed, clone-hint, \
              fusion-region, partition-overlap, partition-gap, lifetime, \
              alias-offsets, fused-interior"
             other))
  in
  List.iter
    (fun d -> Format.printf "%a@." Echo_diag.pp d)
    (Echo_diag.Report.diags report);
  Format.printf "lint (%s): %a@." label Echo_diag.Report.pp_summary report;
  Echo_diag.Report.has_errors report

let run model_choice batch seq_len hidden layers policy budget all breakdown
    profile optimize dot_file trace_file save_file load_file device_name
    domains compile train_steps vocab budget_bytes faults_spec checkpoint_path
    checkpoint_every resume no_fuse tune_exec dump_fusion lint lint_strict
    corrupt campaign corpus_file sanitize_spec =
  let device =
    match Echo_gpusim.Device.by_name device_name with
    | Some d -> d
    | None -> failwith (Printf.sprintf "unknown device %S" device_name)
  in
  (* Validate --sanitize before anything is built: a typo must be a loud
     error naming the flag and the value, never a silent fallback. *)
  let sanitize =
    Option.map
      (fun v ->
        try Echo_analysis.Sanitize.mode_of_string ~source:"--sanitize" v
        with Invalid_argument msg -> failwith msg)
      sanitize_spec
  in
  (* The kernel runtime is process-wide: set it here once and every
     subsequent [Pipeline.compile] (with no explicit [?runtime]) uses it. *)
  let runtime =
    match domains with
    | Some d -> Echo_tensor.Parallel.set_default_domains d
    | None -> Echo_tensor.Parallel.default ()
  in
  (* --policy list: print the registry (name, description, knobs) and stop
     before any model building — this is how scripts and the README table
     enumerate what the build supports. *)
  if policy = Some "list" then
    Format.printf "%a@." Echo_core.Planner.pp_list ()
  else match campaign with
  | Some spec_text -> campaign_mode ~pool:runtime spec_text
  | None ->
  (* The user picked a planner explicitly (flag or ECHO_POLICY env); when
     neither is given, --train keeps its historical default (no rewrite)
     and the report path defaults to echo. *)
  let explicit = policy <> None || Sys.getenv_opt "ECHO_POLICY" <> None in
  match train_steps with
  | Some steps ->
    let planner =
      if explicit then Some (resolve_planner ?flag:policy ~budget "echo")
      else None
    in
    train_mode model_choice ~batch ~seq_len ~hidden ~layers ~vocab ~steps
      ~device ~planner ~runtime ~budget_bytes ~faults_spec ~checkpoint_path
      ~checkpoint_every ~resume ~no_fuse ~tune_exec ~corpus_file ~sanitize
  | None ->
  if corpus_file <> None then
    failwith "--corpus only applies to --train (nothing else reads batches)";
  if compile then
    Format.printf "kernel runtime: %d domain(s)@."
      (Echo_tensor.Parallel.domains runtime);
  let model = build_graph model_choice ~batch ~seq_len ~hidden ~layers in
  Format.printf "%a@." Model.describe model;
  (* Stage 1-3 of the compilation pipeline: source -> training -> optimized.
     A serialized graph enters the pipeline after the autodiff stage. *)
  let training =
    match load_file with
    | Some path ->
      let g = Echo_ir.Serial.of_file path in
      Format.printf "loaded %s@." path;
      Pipeline.of_training_graph ~name:path g
    | None -> Pipeline.differentiate (Pipeline.of_model model)
  in
  Format.printf "training graph: %a@." Echo_ir.Graph.pp_stats
    training.Pipeline.autodiff.Echo_autodiff.Grad.graph;
  let optimized = Pipeline.optimize ~enabled:optimize training in
  (match optimized.Pipeline.opt_stats with
  | Some stats -> Format.printf "optimised: %a@." Echo_opt.Pipeline.pp_stats stats
  | None -> ());
  let planners =
    if all then Pass.default_instances
    else [ resolve_planner ?flag:policy ~budget "echo" ]
  in
  let lint = lint || lint_strict || corrupt <> None in
  let lint_failed = ref false in
  List.iter
    (fun inst ->
      (* Stage 4: the recomputation pass, with baseline + optimised
         measurement. *)
      let rw = Pipeline.rewrite ~device ~planner:inst optimized in
      let report = rw.Pipeline.report in
      let rewritten = rw.Pipeline.graph in
      Format.printf "%a@." Pass.pp_report report;
      if dump_fusion then begin
        let fp = Echo_ir.Fuse.analyse rewritten in
        Format.printf "fusion groups (%s):@.%a@."
          (Echo_core.Planner.label inst)
          Echo_ir.Fuse.pp_plan fp
      end;
      if compile then begin
        (* Stage 5-7: plan + fuse + lower to the slot executor on the
           selected kernel runtime, and report what came out. *)
        let planned = Pipeline.plan rw in
        let fused =
          if no_fuse then Pipeline.fuse ~enabled:false planned
          else Pipeline.fuse planned
        in
        let exe = Pipeline.compile ~runtime ?sanitize fused in
        Format.printf "%a@." Pipeline.describe exe
      end;
      if lint then
        if
          lint_policy ~runtime ~sanitize ~no_fuse ~corrupt
            (Echo_core.Planner.label inst)
            rw
        then lint_failed := true;
      if breakdown then
        Format.printf "%a" Footprint.pp_breakdown report.Pass.optimised_mem;
      if profile then begin
        let tl = Echo_gpusim.Timeline.simulate device rewritten in
        Echo_gpusim.Timeline.pp_profile Format.std_formatter tl;
        Format.printf "launch-overhead share: %.1f%%@."
          (100.0 *. Echo_gpusim.Timeline.launch_share device tl)
      end;
      let write path contents =
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Format.printf "wrote %s@." path
      in
      Option.iter (fun path -> write path (Echo_ir.Graph.to_dot rewritten)) dot_file;
      Option.iter (fun path -> Echo_ir.Serial.to_file rewritten path;
                               Format.printf "wrote %s@." path) save_file;
      Option.iter
        (fun path ->
          let tl = Echo_gpusim.Timeline.simulate device rewritten in
          write path (Echo_gpusim.Timeline.to_chrome_trace tl))
        trace_file)
    planners;
  if lint_strict && !lint_failed then exit 1

let model_conv =
  Arg.enum
    [
      ("lm", Lm);
      ("peephole-lm", Peephole_lm);
      ("gru-lm", Gru_lm);
      ("rnn-lm", Rnn_lm);
      ("nmt", Nmt_model);
      ("ds2", Ds2);
      ("transformer", Transformer_model);
    ]

let main_term =
  let model =
    Arg.(value & opt model_conv Lm & info [ "m"; "model" ] ~doc:"Model to compile.")
  in
  let batch = Arg.(value & opt (some int) None & info [ "b"; "batch" ] ~doc:"Batch size.") in
  let seq_len = Arg.(value & opt (some int) None & info [ "t"; "seq-len" ] ~doc:"Sequence length.") in
  let hidden = Arg.(value & opt (some int) None & info [ "H"; "hidden" ] ~doc:"Hidden dimension.") in
  let layers = Arg.(value & opt (some int) None & info [ "l"; "layers" ] ~doc:"Layer count.") in
  let policy =
    Arg.(
      value & opt (some string) None
      & info [ "p"; "policy" ]
          ~doc:
            "Recomputation planner, resolved through the registry: \
             $(b,name) or $(b,name:key=v,key2=v2) (e.g. \
             $(b,echo:budget=0.05), $(b,dp-bptt:slots=8), \
             $(b,olla-arena)). $(b,list) prints every registered planner \
             with its knobs. Defaults to \\$(b,ECHO_POLICY), else \
             $(b,echo).")
  in
  let budget =
    Arg.(
      value & opt (some float) None
      & info [ "budget" ]
          ~doc:
            "Overhead/memory budget passed to any planner that declares a \
             $(b,budget) knob the --policy spec left unbound (legacy \
             shorthand for $(b,--policy echo:budget=...)).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run the default policy comparison set.") in
  let breakdown = Arg.(value & flag & info [ "breakdown" ] ~doc:"Print the per-category breakdown.") in
  let profile = Arg.(value & flag & info [ "profile" ] ~doc:"Print an nvprof-style simulated kernel profile.") in
  let optimize = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the fold+CSE pipeline before the pass.") in
  let dot_file = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"Write the rewritten graph as Graphviz.") in
  let trace_file = Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write a Chrome trace of the simulated timeline.") in
  let save_file = Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Serialize the rewritten training graph to a file.") in
  let load_file = Arg.(value & opt (some string) None & info [ "load" ] ~doc:"Load a serialized training graph instead of building one.") in
  let device = Arg.(value & opt string "titan-xp" & info [ "device" ] ~doc:"titan-xp or v100.") in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "domains" ]
          ~doc:
            "Kernel-runtime domain count (1 = sequential). Defaults to \
             \\$(b,ECHO_DOMAINS), else the machine's recommended count.")
  in
  let compile =
    Arg.(
      value & flag
      & info [ "compile" ]
          ~doc:"Also lower through plan+compile to the slot executor and \
                print the per-stage summary.")
  in
  let train_steps =
    Arg.(
      value & opt (some int) None
      & info [ "train" ]
          ~doc:
            "Train for $(docv) steps on a synthetic corpus through the \
             fault-tolerant loop (LM-family models only)." ~docv:"STEPS")
  in
  let vocab =
    Arg.(
      value & opt (some int) None
      & info [ "vocab" ]
          ~doc:
            "Vocabulary size for --train (small vocabularies shrink the \
             softmax buffers the recomputation ladder cannot help with).")
  in
  let budget_bytes =
    Arg.(
      value & opt (some int) None
      & info [ "budget-bytes" ]
          ~doc:
            "Hard arena ceiling for --train; a violation re-plans through \
             the recomputation escalation ladder.")
  in
  let faults =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ]
          ~doc:
            "Fault-injection plan for --train, e.g. \
             'oom@3=1048576;transient@5;nan@7' (defaults to \
             \\$(b,ECHO_FAULTS)).")
  in
  let checkpoint_path =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~doc:"Checkpoint file for --train.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ]
          ~doc:"Write the checkpoint every $(docv) steps (with --checkpoint)."
          ~docv:"N")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume --train from --checkpoint if it exists; the resumed run \
             reproduces the uninterrupted one exactly.")
  in
  let no_fuse =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Disable the elementwise fusion codegen stage (for --compile and \
             --train). Results are bit-identical either way; only \
             instruction count, arena size and speed change.")
  in
  let tune_exec =
    Arg.(
      value & flag
      & info [ "tune-exec" ]
          ~doc:
            "With --train: pick the (policy, fuse, domains, \
             blocking-threshold) combination jointly — walk the \
             recomputation escalation ladder and price every execution-knob \
             combination that fits --budget-bytes with the host cost model, \
             then train with the predicted-fastest one. Overrides --no-fuse \
             and -j.")
  in
  let dump_fusion =
    Arg.(
      value & flag
      & info [ "dump-fusion" ]
          ~doc:
            "Print the fusion groups of the rewritten graph: members, \
             external inputs, and the interior buffers fusion elides.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the Echo-verify static checkers over every compiled \
             artifact (schedule, recomputation clones, offset assignment, \
             fusion plan, buffer binding, interpreter fallbacks) and print \
             the collected diagnostics.")
  in
  let lint_strict =
    Arg.(
      value & flag
      & info [ "lint-strict" ]
          ~doc:"Like --lint, but exit nonzero when any error-severity \
                finding is reported.")
  in
  let corrupt =
    Arg.(
      value & opt (some string) None
      & info [ "corrupt" ]
          ~doc:
            "With --lint: seed one deliberate corruption before checking — \
             one of schedule, slot-overlap, slot-escape, alias, \
             inplace-donor, clone-seed, clone-hint, fusion-region, \
             partition-overlap, partition-gap, lifetime, alias-offsets, \
             fused-interior. The matching checker must fire; with \
             --lint-strict the exit status proves it."
          ~docv:"KIND")
  in
  let sanitize =
    Arg.(
      value & opt (some string) None
      & info [ "sanitize" ]
          ~doc:
            "Shadow-memory sanitizer mode for every compiled executor: \
             $(b,off), $(b,on) (tag each arena cell with its writer and \
             generation; flag uninitialized, stale and plan-expired reads \
             and out-of-partition writes), or $(b,full) (additionally \
             bit-compare every foreign buffer around each instruction — \
             slowest, catches writes the tags cannot see). Training is \
             bit-identical under every mode. A bad value is rejected up \
             front naming the flag. Defaults to \\$(b,ECHO_SANITIZE)."
          ~docv:"MODE")
  in
  let campaign =
    Arg.(
      value & opt (some string) None
      & info [ "campaign" ]
          ~doc:
            "Run a fault-injection campaign and print the per-(model x \
             planner) resilience report: $(b,mini) (one model, three \
             planners — the runtest configuration), $(b,full) (the whole \
             LM zoo x four planners, 320 configurations), optionally \
             with knobs, e.g. $(b,full:steps=6,seed=1,out=campaign.txt). \
             The sweep schedules across the -j pool; the report is \
             byte-identical at every domain count."
          ~docv:"SPEC")
  in
  let corpus_file =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ]
          ~doc:
            "With --train: read the token stream from a PTB-style text file \
             (one sentence per line, blank-separated words, <eos> appended \
             per line) instead of generating a synthetic corpus. The file \
             fixes the vocabulary."
          ~docv:"FILE")
  in
  Term.(
    const run $ model $ batch $ seq_len $ hidden $ layers $ policy $ budget
    $ all $ breakdown $ profile $ optimize $ dot_file $ trace_file
    $ save_file $ load_file $ device $ domains $ compile $ train_steps
    $ vocab $ budget_bytes $ faults $ checkpoint_path $ checkpoint_every
    $ resume $ no_fuse $ tune_exec $ dump_fusion $ lint $ lint_strict
    $ corrupt $ campaign $ corpus_file $ sanitize)

(* echoc serve: the multi-tenant compile-and-train job server. Flag values
   are validated strictly up front — like the ECHO_DOMAINS parser, a bad
   value is a loud error naming the flag and the value, never a silent
   fallback. *)
let serve_die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("echoc serve: " ^ msg);
      exit 2)
    fmt

let parse_positive ~flag value =
  match int_of_string_opt value with
  | Some n when n > 0 -> n
  | _ -> serve_die "invalid value %S for %s (want a positive integer)" value flag

let parse_socket value =
  if value = "" then serve_die "invalid value \"\" for --socket (want a path)";
  let dir = Filename.dirname value in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    serve_die
      "invalid value %S for --socket (parent directory %S does not exist)"
      value dir;
  if Sys.file_exists value && Sys.is_directory value then
    serve_die "invalid value %S for --socket (it is a directory)" value;
  value

(* "name=MiB,name=MiB": every entry must parse, names must be non-empty and
   unique, budgets positive — one bad entry rejects the whole flag. *)
let parse_tenants value =
  let entries =
    List.map
      (fun entry ->
        match String.index_opt entry '=' with
        | Some i when i > 0 && i < String.length entry - 1 ->
          let name = String.sub entry 0 i in
          let mib = String.sub entry (i + 1) (String.length entry - i - 1) in
          (match int_of_string_opt mib with
          | Some n when n > 0 -> (name, n * 1024 * 1024)
          | _ ->
            serve_die
              "invalid value %S for --tenants: entry %S has a bad budget %S \
               (want a positive MiB count)"
              value entry mib)
        | _ ->
          serve_die
            "invalid value %S for --tenants: entry %S is not NAME=MIB" value
            entry)
      (String.split_on_char ',' value)
  in
  List.iteri
    (fun i (name, _) ->
      if List.mem_assoc name (List.filteri (fun j _ -> j < i) entries) then
        serve_die "invalid value %S for --tenants: duplicate tenant %S" value
          name)
    entries;
  entries

let serve_run socket cache_mib tenants_spec max_batch domains =
  let socket = parse_socket socket in
  let cache_bytes =
    Option.map
      (fun v -> parse_positive ~flag:"--cache-mib" v * 1024 * 1024)
      cache_mib
  in
  let tenants = Option.map parse_tenants tenants_spec in
  let max_batch = parse_positive ~flag:"--max-batch" max_batch in
  let runtime =
    match domains with
    | Some d -> Echo_tensor.Parallel.set_default_domains d
    | None -> Echo_tensor.Parallel.default ()
  in
  let engine =
    Echo_serve.Engine.create ?cache_bytes ?tenants ~max_batch ~runtime ()
  in
  Format.printf "echoc serve: listening on %s (%d domain(s), cache %s, %s)@."
    socket
    (Echo_tensor.Parallel.domains runtime)
    (match cache_bytes with
    | Some b -> Printf.sprintf "%d MiB" (b / 1024 / 1024)
    | None -> "unbounded")
    (match tenants with
    | Some ts ->
      Printf.sprintf "tenants %s"
        (String.concat ","
           (List.map (fun (n, b) -> Printf.sprintf "%s=%dMiB" n (b / 1024 / 1024)) ts))
    | None -> "no tenants");
  Echo_serve.Server.serve ~socket engine;
  Format.printf "echoc serve: shut down@."

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~doc:"Unix socket path to listen on." ~docv:"PATH")
  in
  let cache_mib =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-mib" ]
          ~doc:
            "Byte cap on the content-addressed plan cache, in MiB \
             (least-recently-used compiled artifacts are evicted past it; \
             default unbounded)."
          ~docv:"MIB")
  in
  let tenants =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenants" ]
          ~doc:
            "Per-tenant device-memory budgets, NAME=MIB[,NAME=MIB...]. A \
             request carrying tenant=NAME compiles under that budget and is \
             rejected loudly past it; unknown tenants are errors."
          ~docv:"SPEC")
  in
  let max_batch =
    Arg.(
      value & opt string "8"
      & info [ "max-batch" ]
          ~doc:"Largest stacked same-shape eval batch." ~docv:"N")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ]
          ~doc:
            "Kernel-runtime domain count (1 = sequential). Defaults to \
             \\$(b,ECHO_DOMAINS), else the machine's recommended count.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compile/train/eval requests over a Unix socket, sharing one \
          content-addressed plan cache and batching same-shape eval \
          requests.")
    Term.(const serve_run $ socket $ cache_mib $ tenants $ max_batch $ domains)

let cmd =
  Cmd.group ~default:main_term
    (Cmd.info "echoc" ~doc:"Echo compiler pass driver")
    [ serve_cmd ]

let () = exit (Cmd.eval cmd)
