(* The experiment harness: regenerates every table/figure of the paper's
   evaluation (reconstructed index E1..E22 — see DESIGN.md) on the simulated
   GPU substrate, plus a Bechamel micro-suite over the host kernels.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only E3    # one experiment
     dune exec bench/main.exe -- --quick      # shrunken configs *)

open Echo_tensor
open Echo_ir
open Echo_models
open Echo_core
open Echo_exec
open Echo_train
open Echo_workloads
open Harness

let scale = ref Full

(* --check: smoke-gate mode. Runs the E18 grid (by default alone) and
   exits 1 if any monotonicity/fused-regression invariant is violated. *)
let check_mode = ref false

let zoo () =
  [
    ("lstm-lm", lazy (build_lm ~scale:!scale ()));
    ("nmt-attn", lazy (build_nmt ~scale:!scale ()));
    ("deepspeech2", lazy (build_ds2 ~scale:!scale ()));
    ("transformer", lazy (build_transformer ~scale:!scale ()));
  ]

let graphs : (string, Graph.t * Model.t) Hashtbl.t = Hashtbl.create 8

let graph_of (name, lazy_model) =
  match Hashtbl.find_opt graphs name with
  | Some (g, m) -> (g, m)
  | None ->
    let m = Lazy.force lazy_model in
    let g = training_graph m in
    Hashtbl.replace graphs name (g, m);
    (g, m)

(* E1: model/configuration inventory (paper's workload table). *)
let e1 () =
  heading "E1" "model inventory (workload table)";
  row "%-14s %10s %10s %10s %12s %12s@." "model" "params" "fwd-nodes" "nodes"
    "weights" "stash";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      let r = Memplan.plan graph in
      row "%-14s %10d %10d %10d %12s %12s@." model.Model.name
        (Params.scalar_count model.Model.params)
        (List.length (Graph.forward_nodes graph))
        (Graph.node_count graph)
        (Footprint.human r.Memplan.weight_bytes)
        (Footprint.human r.Memplan.stash_bytes))
    (zoo ())

(* E2: baseline footprint breakdown (feature maps dominate). *)
let e2 () =
  heading "E2" "baseline footprint breakdown at the peak step";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      let r = Memplan.plan graph in
      row "%s (peak %s):@." model.Model.name
        (Footprint.human r.Memplan.live_peak_bytes);
      List.iter
        (fun (cat, bytes) ->
          if bytes > 0 then
            row "  %-18s %10s  (%4.1f%%)@." (Category.to_string cat)
              (Footprint.human bytes)
              (100.0 *. float_of_int bytes /. float_of_int r.Memplan.live_peak_bytes))
        r.Memplan.breakdown;
      if Graph.node_count graph < 10_000 then begin
        let plan = Assign.assign graph in
        Assign.validate plan;
        row "  %-18s %10s  (best-fit offset assignment)@." "static plan"
          (Footprint.human (Assign.total_with_persistent plan graph))
      end)
    (zoo ())

(* E3: headline footprint reduction per policy per model. *)
let e3 () =
  heading "E3" "peak footprint by policy (headline)";
  row "%-14s %-18s %12s %8s %9s@." "model" "policy" "peak" "factor" "overhead";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      List.iter
        (fun (_, report) ->
          row "%-14s %-18s %12s %7.2fx %+8.1f%%@." model.Model.name
            report.Pass.policy
            (Footprint.human report.Pass.optimised_mem.Memplan.live_peak_bytes)
            (Pass.reduction report)
            (100.0 *. Pass.overhead report))
        (policy_reports model.Model.name graph))
    (zoo ())

(* E4: footprint vs batch size (the OOM wall moves right). *)
let e4 () =
  heading "E4" "footprint vs batch size (NMT, stash-all vs Echo 10%)";
  let budget_line = device.Echo_gpusim.Device.memory_bytes in
  row "device memory: %s@." (Footprint.human budget_line);
  row "%-8s %18s %18s %8s@." "batch" "stash-all" "echo(10%)" "factor";
  let batches = match !scale with Full -> [ 16; 32; 64; 128; 256 ] | Quick -> [ 8; 16 ] in
  List.iter
    (fun batch ->
      let model = build_nmt ~scale:!scale ~batch () in
      let graph = training_graph model in
      let base = Memplan.plan graph in
      let sel = Select.echo device graph ~overhead_budget:0.10 in
      let echo_graph = Rewrite.mirror graph ~mirror_ids:sel.Select.mirror_ids in
      let echo = Memplan.plan echo_graph in
      let mark r =
        Printf.sprintf "%s%s"
          (Footprint.human r.Memplan.live_peak_bytes)
          (if r.Memplan.live_peak_bytes > budget_line then " OOM" else "")
      in
      row "%-8d %18s %18s %7.2fx@." batch (mark base) (mark echo)
        (float_of_int base.Memplan.live_peak_bytes
        /. float_of_int echo.Memplan.live_peak_bytes))
    batches

(* E5: simulated iteration-time overhead at equal batch size. *)
let e5 () =
  heading "E5" "iteration time by policy at equal batch size";
  row "%-14s %-18s %10s %10s %9s@." "model" "policy" "fwd (ms)" "bwd (ms)" "overhead";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      List.iter
        (fun (inst, report) ->
          let rewritten, _ = Pass.run_instance ~device inst graph in
          let pt = Echo_gpusim.Costmodel.phase_times device rewritten in
          row "%-14s %-18s %10.2f %10.2f %+8.1f%%@." model.Model.name
            report.Pass.policy
            (ms pt.Echo_gpusim.Costmodel.forward_s)
            (ms pt.Echo_gpusim.Costmodel.backward_s)
            (100.0 *. Pass.overhead report))
        (policy_reports model.Model.name graph))
    (zoo ())

(* E6: max batch under a memory budget and resulting training throughput.
   The paper's end-to-end claim: memory freed by Echo admits larger batches,
   which amortise per-iteration overheads into higher samples/s. *)
let e6 () =
  heading "E6" "max batch and throughput under a memory budget (NMT)";
  let candidates =
    match !scale with
    | Full -> [ 16; 32; 64; 96; 128; 192; 256; 384; 512; 768 ]
    | Quick -> [ 8; 16; 32 ]
  in
  let budgets_gib = match !scale with Full -> [ 1.0; 2.0; 4.0 ] | Quick -> [ 0.02 ] in
  let measure use_echo batch =
    let model = build_nmt ~scale:!scale ~batch () in
    let graph = training_graph model in
    let graph =
      if use_echo then begin
        let sel = Select.echo device graph ~overhead_budget:0.10 in
        Rewrite.mirror graph ~mirror_ids:sel.Select.mirror_ids
      end
      else graph
    in
    let r = Memplan.plan graph in
    (Footprint.total_bytes r ~optimizer:Footprint.Momentum,
     float_of_int batch /. iteration_time graph model)
  in
  let table use_echo = List.map (fun b -> (b, measure use_echo b)) candidates in
  let base_table = table false and echo_table = table true in
  row "%-10s %-12s %10s %16s@." "budget" "executor" "max batch" "samples/s (sim)";
  List.iter
    (fun gib ->
      let budget = int_of_float (gib *. 1024.0 *. 1024.0 *. 1024.0) in
      let best tbl =
        List.fold_left
          (fun acc (b, (bytes, thr)) -> if bytes <= budget then Some (b, thr) else acc)
          None tbl
      in
      let show name best_fit =
        match best_fit with
        | None -> row "%-10.1f %-12s %10s@." gib name "OOM"
        | Some (b, thr) -> row "%-10.1f %-12s %10d %16.1f@." gib name b thr
      in
      show "stash-all" (best base_table);
      show "echo(10%)" (best echo_table);
      (match (best base_table, best echo_table) with
      | Some (_, t0), Some (_, t1) ->
        row "%-10s gain: %.2fx@." "" (t1 /. t0)
      | _ -> ()))
    budgets_gib

(* E7: recomputation statistics. *)
let e7 () =
  heading "E7" "recomputation statistics";
  row "%-14s %-18s %9s %8s %12s %12s %10s@." "model" "policy" "mirrored"
    "clones" "claimed" "stash-left" "extraFLOPs";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      List.iter
        (fun (inst, report) ->
          let rewritten, _ = Pass.run_instance ~device inst graph in
          row "%-14s %-18s %9d %8d %12s %12s %9.1f%%@." model.Model.name
            report.Pass.policy report.Pass.mirrored_nodes report.Pass.clone_nodes
            (Footprint.human report.Pass.claimed_saving_bytes)
            (Footprint.human report.Pass.optimised_mem.Memplan.stash_bytes)
            (100.0 *. Pass.recompute_flops_ratio rewritten ~original:graph))
        (List.filter
           (fun (inst, _) -> Planner.label inst <> "stash-all")
           (policy_reports model.Model.name graph)))
    (List.filteri (fun i _ -> i < 2) (zoo ()))

(* E8: sensitivity of the reduction factor to sequence length and width. *)
let e8 () =
  heading "E8" "sensitivity: LM reduction factor vs T and H (echo 10%)";
  let run cfg_desc model =
    let graph = training_graph model in
    let _, report = Pass.run ~device (Pass.Echo { overhead_budget = 0.10 }) graph in
    row "%-18s peak %12s -> %12s  (%.2fx at %+.1f%%)@." cfg_desc
      (Footprint.human report.Pass.baseline_mem.Memplan.live_peak_bytes)
      (Footprint.human report.Pass.optimised_mem.Memplan.live_peak_bytes)
      (Pass.reduction report)
      (100.0 *. Pass.overhead report)
  in
  let ts = match !scale with Full -> [ 16; 35; 70 ] | Quick -> [ 8; 16 ] in
  List.iter
    (fun t -> run (Printf.sprintf "T=%d" t) (build_lm ~scale:!scale ~seq_len:t ()))
    ts;
  let hs = match !scale with Full -> [ 256; 650; 1024 ] | Quick -> [ 128; 256 ] in
  List.iter
    (fun h -> run (Printf.sprintf "H=%d" h) (build_lm ~scale:!scale ~hidden:h ()))
    hs

(* E9: generality beyond stacked LSTMs. *)
let e9 () =
  heading "E9" "generality: other cell types and architectures (echo 10%)";
  let models =
    [
      ("peephole-lm", build_lm ~scale:!scale ~cell:Recurrent.Peephole ());
      ("gru-lm", build_lm ~scale:!scale ~cell:Recurrent.Gru ());
      ("rnn-lm", build_lm ~scale:!scale ~cell:Recurrent.Vanilla ());
      ("deepspeech2", snd (graph_of (List.nth (zoo ()) 2)));
      ("transformer", snd (graph_of (List.nth (zoo ()) 3)));
    ]
  in
  row "%-14s %12s %12s %8s %9s@." "model" "baseline" "echo" "factor" "overhead";
  List.iter
    (fun (name, model) ->
      let graph = training_graph model in
      let _, report = Pass.run ~device (Pass.Echo { overhead_budget = 0.10 }) graph in
      row "%-14s %12s %12s %7.2fx %+8.1f%%@." name
        (Footprint.human report.Pass.baseline_mem.Memplan.live_peak_bytes)
        (Footprint.human report.Pass.optimised_mem.Memplan.live_peak_bytes)
        (Pass.reduction report)
        (100.0 *. Pass.overhead report))
    models

(* E10: training correctness — bit-identical losses, falling perplexity. *)
let e10 () =
  heading "E10" "training correctness (tiny LM, compiled-executor training)";
  let cfg =
    {
      Language_model.ptb_default with
      vocab = 150;
      embed = 24;
      hidden = 24;
      layers = 2;
      seq_len = 10;
      batch = 6;
      dropout = 0.2;
    }
  in
  let lm = Language_model.build cfg in
  let graph = training_graph lm.Language_model.model in
  let echo_graph, report = Pass.run ~device (Pass.Echo { overhead_budget = 0.10 }) graph in
  let steps = 30 in
  let stream = Corpus.generate ~seed:5 ~vocab:cfg.Language_model.vocab ~length:40_000 in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [ (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels) ])
      (Corpus.lm_batches stream ~batch:cfg.Language_model.batch
         ~seq_len:cfg.Language_model.seq_len ~steps)
  in
  let train g =
    (Loop.train ~graph:g
       ~params:(Params.bindings lm.Language_model.model.Model.params)
       ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
       ~clip_norm:5.0 ~batches ())
      .Loop.losses
  in
  let base = train graph and echo = train echo_graph in
  let max_diff =
    List.fold_left2 (fun acc a b -> Float.max acc (Float.abs (a -. b))) 0.0 base echo
  in
  row "steps=%d  ppl %.1f -> %.1f  (footprint %.2fx)@." steps
    (Loop.perplexity (List.nth base 0))
    (Loop.perplexity (List.nth base (steps - 1)))
    (Pass.reduction report);
  row "max |loss(stash-all) - loss(echo)| over %d steps: %g  [%s]@." steps max_diff
    (if max_diff = 0.0 then "bit-identical" else "MISMATCH")

(* E11: the two estimator ablations. *)
let e11 () =
  heading "E11" "ablations: recompute sharing and transitive accounting";
  let graph, model = graph_of (List.hd (zoo ())) in
  ignore model;
  row "%-22s %8s %9s %14s %14s@." "variant" "factor" "overhead" "claimed" "measured";
  List.iter
    (fun policy ->
      let _, report = Pass.run ~device policy graph in
      let measured =
        report.Pass.baseline_mem.Memplan.stash_bytes
        - report.Pass.optimised_mem.Memplan.stash_bytes
      in
      row "%-22s %7.2fx %+8.1f%% %14s %14s@." report.Pass.policy
        (Pass.reduction report)
        (100.0 *. Pass.overhead report)
        (Footprint.human report.Pass.claimed_saving_bytes)
        (Footprint.human measured))
    [
      Pass.Echo { overhead_budget = 0.05 };
      Pass.Echo_no_sharing { overhead_budget = 0.05 };
      Pass.Echo_no_transitive { overhead_budget = 0.05 };
    ]

(* E12: microbenchmark — cost model vs host kernels (Bechamel). *)
let kernel_cases () =
  let rng = Rng.create 99 in
  let mk shape = Tensor.uniform rng shape ~lo:(-1.0) ~hi:1.0 in
  let gemm m k n =
    let a = mk [| m; k |] and b = mk [| k; n |] in
    (Printf.sprintf "gemm %dx%dx%d" m k n,
     (fun () -> ignore (Tensor.matmul a b)),
     Node.matmul (Node.placeholder [| m; k |]) (Node.placeholder [| k; n |]))
  in
  let elementwise n =
    let x = mk [| n |] in
    (Printf.sprintf "sigmoid %d" n,
     (fun () -> ignore (Tensor.sigmoid x)),
     Node.sigmoid (Node.placeholder [| n |]))
  in
  let softmax rows cols =
    let x = mk [| rows; cols |] in
    (Printf.sprintf "softmax %dx%d" rows cols,
     (fun () -> ignore (Tensor.softmax x)),
     Node.softmax (Node.placeholder [| rows; cols |]))
  in
  [
    gemm 32 256 1024;
    gemm 64 512 512;
    gemm 16 128 256;
    elementwise 65536;
    elementwise 8192;
    softmax 64 4096;
    softmax 16 512;
  ]

let bechamel_measure cases =
  let open Bechamel in
  let tests =
    List.map (fun (name, f, _) -> Test.make ~name (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let cfg =
    Benchmark.cfg ~limit:400 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> acc)
    results []

let e12 () =
  heading "E12" "microbenchmark: cost model vs measured host kernels (Bechamel)";
  let cases = kernel_cases () in
  let measured = bechamel_measure cases in
  row "%-20s %14s %16s@." "kernel" "host ns/run" "model time (us)";
  let pairs =
    List.filter_map
      (fun (name, _, node) ->
        let key = "kernels/" ^ name in
        match List.assoc_opt key measured with
        | Some ns ->
          let predicted = Echo_gpusim.Costmodel.node_time device node in
          row "%-20s %14.0f %16.3f@." name ns (1e6 *. predicted);
          Some (log ns, log predicted)
        | None -> None)
      cases
  in
  if List.length pairs >= 3 then begin
    let xs = List.map fst pairs and ys = List.map snd pairs in
    row "correlation of log(host time) vs log(model time): rho = %.3f@."
      (pearson xs ys)
  end

(* E13: the framework graph-optimisation pipeline (fold + CSE) composed
   with Echo — optimisations real executors run before memory planning. *)
let e13 () =
  heading "E13" "graph optimisation pipeline composed with Echo (LM)";
  let graph, _ = graph_of (List.hd (zoo ())) in
  let optimised, stats = Echo_opt.Pipeline.run graph in
  row "pipeline: %a@." Echo_opt.Pipeline.pp_stats stats;
  row "%-22s %12s %8s %9s@." "variant" "peak" "factor" "overhead";
  let show name g =
    let _, report = Pass.run ~device (Pass.Echo { overhead_budget = 0.10 }) g in
    row "%-22s %12s %7.2fx %+8.1f%%@." name
      (Footprint.human report.Pass.optimised_mem.Memplan.live_peak_bytes)
      (float_of_int (Memplan.plan graph).Memplan.live_peak_bytes
      /. float_of_int report.Pass.optimised_mem.Memplan.live_peak_bytes)
      (100.0 *. Pass.overhead report)
  in
  show "echo on raw graph" graph;
  show "echo after pipeline" optimised

(* E14: kernel-launch anatomy — the nvprof-style profile and how much of
   Echo's recomputation overhead an elementwise-fusing backend would erase. *)
let e14 () =
  heading "E14" "simulated nvprof profile and fusion interaction (LM)";
  let graph, _ = graph_of (List.hd (zoo ())) in
  let tl = Echo_gpusim.Timeline.simulate device graph in
  Echo_gpusim.Timeline.pp_profile Format.std_formatter tl;
  row "launch-overhead share of the iteration: %.1f%%@."
    (100.0 *. Echo_gpusim.Timeline.launch_share device tl);
  let echo_graph, report =
    Pass.run ~device (Pass.Echo { overhead_budget = 0.10 }) graph
  in
  let t0 = Echo_gpusim.Costmodel.graph_time device graph in
  let t1 = Echo_gpusim.Costmodel.graph_time device echo_graph in
  let f0 = Echo_opt.Fusion.fused_graph_time device graph in
  let f1 = Echo_opt.Fusion.fused_graph_time device echo_graph in
  let stats = Echo_opt.Fusion.analyse echo_graph in
  row "fusion groups in the Echo graph: %d (%d launches saved)@."
    stats.Echo_opt.Fusion.groups stats.Echo_opt.Fusion.launches_saved;
  row "recompute overhead unfused: %+.1f%%, with a fusing backend: %+.1f%%@."
    (100.0 *. (t1 -. t0) /. t0)
    (100.0 *. (f1 -. f0) /. f0);
  ignore report

(* E15: per-step execution engines — steps/sec of the reference interpreter
   vs the compiled slot-based executor (with PR 1's naive matmul, with the
   blocked matmul, and with the blocked matmul under Domain pools of
   1/2/4), on a PTB-shaped LM training graph. Every engine's outputs are
   checked bitwise against the interpreter; the numbers land in
   BENCH_E15.json so the perf trajectory is tracked across PRs. *)
let e15 () =
  heading "E15" "execution engines and kernel runtimes (PTB-shape LM)";
  let cfg =
    match !scale with
    | Full ->
      { Language_model.ptb_default with vocab = 2000; embed = 64; hidden = 64;
        layers = 2; seq_len = 35; batch = 16 }
    | Quick ->
      { Language_model.ptb_default with vocab = 300; embed = 32; hidden = 32;
        layers = 2; seq_len = 10; batch = 8 }
  in
  let lm = Language_model.build cfg in
  let graph = training_graph lm.Language_model.model in
  let rng = Rng.create 11 in
  let ids node =
    Tensor.init (Node.shape node) (fun _ ->
      float_of_int (Rng.int rng cfg.Language_model.vocab))
  in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  let module Executor = Echo_compiler.Executor in
  (* Per-runtime blocking thresholds: the naive configuration is simply a
     sequential handle whose threshold never trips — no process-global
     toggles, so the engines could even run concurrently. *)
  let seq_naive =
    Parallel.with_config ~blocking_threshold:max_int Parallel.sequential
  in
  let c0 = wall () in
  let exe_seq = Executor.compile ~runtime:Parallel.sequential graph in
  let compile_s = wall () -. c0 in
  let exe_naive = Executor.compile ~runtime:seq_naive graph in
  (* Reference outputs: the interpreter — blocked and naive matmuls are
     bit-identical by construction, so this is the exact PR 1 numerics. *)
  let interp_outs = Interp.eval graph ~feeds in
  let steps = match !scale with Full -> 10 | Quick -> 3 in
  let steps_per_sec f =
    f () (* warm-up *);
    let t0 = wall () in
    for _ = 1 to steps do f () done;
    float_of_int steps /. Float.max (wall () -. t0) 1e-9
  in
  let check exe =
    List.for_all2 Tensor.equal interp_outs (Executor.eval exe ~feeds)
  in
  let run_exe exe () =
    List.iter (fun (n, t) -> Executor.feed exe n t) feeds;
    Executor.run exe
  in
  row "graph: %d nodes, executor compile %.3f s, footprint %s@."
    (Graph.node_count graph) compile_s
    (Footprint.human (Executor.footprint_bytes exe_seq));
  let all_identical = ref true in
  let json = ref [] in
  let record key sps = json := (key, sps) :: !json in
  let measure label key exe =
    let ok = check exe in
    if not ok then all_identical := false;
    let sps = steps_per_sec (run_exe exe) in
    row "%-34s %8.2f steps/s  (outputs %s)@." label sps
      (if ok then "bit-identical" else "MISMATCH");
    record key sps;
    sps
  in
  let interp_sps =
    steps_per_sec (fun () -> ignore (Interp.eval graph ~feeds))
  in
  row "%-34s %8.2f steps/s@." "reference interpreter" interp_sps;
  record "interp" interp_sps;
  let naive_sps =
    measure "executor (naive matmul, seq)" "executor_naive" exe_naive
  in
  let blocked_sps =
    measure "executor (blocked matmul, seq)" "executor_blocked" exe_seq
  in
  List.iter
    (fun domains ->
      let runtime = Parallel.create ~domains () in
      let exe = Executor.compile ~runtime graph in
      ignore
        (measure
           (Printf.sprintf "executor (blocked, %d domain%s)" domains
              (if domains = 1 then "" else "s"))
           (Printf.sprintf "executor_parallel_%dd" domains)
           exe);
      Parallel.shutdown runtime)
    [ 1; 2; 4 ];
  row "blocked vs PR1-naive executor: %.2fx; executor vs interp: %.2fx@."
    (blocked_sps /. naive_sps) (blocked_sps /. interp_sps);
  row "all engines bit-identical to the interpreter: %b@." !all_identical;
  record "blocked_over_naive" (blocked_sps /. naive_sps);
  record "identical" (if !all_identical then 1.0 else 0.0);
  record_json "E15" (List.rev !json)

(* E16: matmul kernel micro-bench — GFLOP/s by size for the naive loops,
   the cache-blocked/packed kernel, and the blocked kernel on a 2-domain
   pool; plus the four transpose variants at the headline size. Each
   configuration is checked bitwise against the naive kernel first. *)
let e16 () =
  heading "E16" "matmul kernel GFLOP/s (naive vs blocked vs parallel)";
  let module I = Tensor.Into in
  (* Per-runtime thresholds: one handle per matmul configuration instead of
     toggling a process-global. *)
  let rt_naive =
    Parallel.with_config ~blocking_threshold:max_int Parallel.sequential
  in
  let rt_blocked =
    Parallel.with_config ~blocking_threshold:0 Parallel.sequential
  in
  let rng = Rng.create 77 in
  let pool2 =
    Parallel.create ~domains:2 ~blocking_threshold:0 ()
  in
  let json = ref [] in
  let gflops ~m ~n ~k ~reps f =
    f () (* warm-up *);
    let t0 = wall () in
    for _ = 1 to reps do f () done;
    2.0 *. float_of_int (m * n * k) *. float_of_int reps
    /. Float.max (wall () -. t0) 1e-9 /. 1e9
  in
  let bench_size size =
    let m = size and n = size and k = size in
    let a = Tensor.uniform rng [| m; k |] ~lo:(-1.0) ~hi:1.0 in
    let b = Tensor.uniform rng [| k; n |] ~lo:(-1.0) ~hi:1.0 in
    let dst = Tensor.zeros [| m; n |] in
    let reference = Tensor.zeros [| m; n |] in
    I.matmul ~runtime:rt_naive a b ~dst:reference;
    I.matmul ~runtime:rt_blocked a b ~dst;
    let ok = Tensor.equal reference dst in
    let reps =
      match !scale with
      | Full -> max 1 (50_000_000 / (m * n * k))
      | Quick -> max 1 (10_000_000 / (m * n * k))
    in
    let naive =
      gflops ~m ~n ~k ~reps (fun () -> I.matmul ~runtime:rt_naive a b ~dst)
    in
    let blocked =
      gflops ~m ~n ~k ~reps (fun () -> I.matmul ~runtime:rt_blocked a b ~dst)
    in
    let parallel2 =
      gflops ~m ~n ~k ~reps (fun () -> I.matmul ~runtime:pool2 a b ~dst)
    in
    row
      "%4dx%4dx%4d  naive %6.2f  blocked %6.2f (%4.2fx)  2-domain %6.2f \
       GFLOP/s  (%s)@."
      m n k naive blocked (blocked /. naive) parallel2
      (if ok then "bit-identical" else "MISMATCH");
    json :=
      (Printf.sprintf "naive_%d" size, naive)
      :: (Printf.sprintf "blocked_%d" size, blocked)
      :: (Printf.sprintf "parallel2_%d" size, parallel2)
      :: (Printf.sprintf "identical_%d" size, if ok then 1.0 else 0.0)
      :: !json
  in
  let sizes = match !scale with Full -> [ 64; 128; 256 ] | Quick -> [ 32; 64; 128 ] in
  List.iter bench_size sizes;
  (* Transpose variants at one size: the packed path must win on all four. *)
  let tsize = match !scale with Full -> 256 | Quick -> 64 in
  let a = Tensor.uniform rng [| tsize; tsize |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng [| tsize; tsize |] ~lo:(-1.0) ~hi:1.0 in
  let dst = Tensor.zeros [| tsize; tsize |] in
  let reference = Tensor.zeros [| tsize; tsize |] in
  List.iter
    (fun (label, trans_a, trans_b) ->
      I.matmul ~runtime:rt_naive ~trans_a ~trans_b a b ~dst:reference;
      let reps =
        (match !scale with Full -> 20_000_000 | Quick -> 4_000_000)
        / (tsize * tsize * tsize)
        |> max 1
      in
      let naive =
        gflops ~m:tsize ~n:tsize ~k:tsize ~reps (fun () ->
          I.matmul ~runtime:rt_naive ~trans_a ~trans_b a b ~dst)
      in
      I.matmul ~runtime:rt_blocked ~trans_a ~trans_b a b ~dst;
      let ok = Tensor.equal reference dst in
      let blocked =
        gflops ~m:tsize ~n:tsize ~k:tsize ~reps (fun () ->
          I.matmul ~runtime:rt_blocked ~trans_a ~trans_b a b ~dst)
      in
      row "%dd %-8s naive %6.2f  blocked %6.2f GFLOP/s (%4.2fx, %s)@." tsize
        label naive blocked (blocked /. naive)
        (if ok then "bit-identical" else "MISMATCH");
      json :=
        (Printf.sprintf "%s_naive_%d" label tsize, naive)
        :: (Printf.sprintf "%s_blocked_%d" label tsize, blocked)
        :: !json)
    [ ("nn", false, false); ("tn", true, false); ("nt", false, true);
      ("tt", true, true) ];
  Parallel.shutdown pool2;
  record_json "E16" (List.rev !json)

(* E17: fault-tolerant training under a shrinking memory budget — a
   simulated OOM fires at step 2 with the device ceiling set to a falling
   fraction of the stash-all arena; the loop re-plans through the
   escalation ladder and finishes the run. Losses must stay bit-identical
   to the unfaulted run (every policy computes the same math); the table
   reports the surviving policy and the wall-clock recovery overhead. *)
let e17 () =
  heading "E17" "fault-tolerant training under shrinking memory budget";
  let cfg =
    {
      Language_model.ptb_default with
      vocab = 150;
      embed = 24;
      hidden = 24;
      layers = 2;
      seq_len = 10;
      batch = 6;
      dropout = 0.2;
    }
  in
  let lm = Language_model.build cfg in
  let graph = training_graph lm.Language_model.model in
  let steps = 8 in
  let stream = Corpus.generate ~seed:5 ~vocab:cfg.Language_model.vocab ~length:40_000 in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [ (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels) ])
      (Corpus.lm_batches stream ~batch:cfg.Language_model.batch
         ~seq_len:cfg.Language_model.seq_len ~steps)
  in
  let train ?faults ?on_event () =
    Loop.train ~graph
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
      ~clip_norm:5.0 ?faults ?on_event ~batches ()
  in
  let t0 = wall () in
  let clean = train () in
  let t_clean = Float.max (wall () -. t0) 1e-9 in
  let baseline_arena =
    Echo_compiler.Executor.footprint_bytes
      (Echo_compiler.Pipeline.executor (Echo_compiler.Pipeline.compile_graph graph))
  in
  row "baseline arena %s; %d steps, OOM injected at step 2@."
    (Footprint.human baseline_arena) steps;
  row "%-8s %10s  %-18s %14s %10s@." "budget" "bytes" "survivor" "max|dloss|"
    "time";
  let json = ref [] in
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int baseline_arena) in
      let survivor = ref "stash-all (fits)" in
      let faults =
        Echo_runtime.Fault.of_specs
          [ { Echo_runtime.Fault.step = 2;
              kind = Echo_runtime.Fault.Oom { budget_bytes = budget } } ]
      in
      let on_event = function
        | Echo_runtime.Event.Replan { policy; _ } -> survivor := policy
        | _ -> ()
      in
      (match
         let t1 = wall () in
         let r = train ~faults ~on_event () in
         (r, Float.max (wall () -. t1) 1e-9)
       with
      | r, dt ->
        let max_diff =
          List.fold_left2
            (fun acc a b -> Float.max acc (Float.abs (a -. b)))
            0.0 clean.Loop.losses r.Loop.losses
        in
        row "%-8s %10d  %-18s %14g %9.2fx@."
          (Printf.sprintf "%.1f%%" (100.0 *. frac))
          budget !survivor max_diff (dt /. t_clean);
        json :=
          (Printf.sprintf "overhead_%.0f" (1000.0 *. frac), dt /. t_clean)
          :: (Printf.sprintf "survived_%.0f" (1000.0 *. frac), 1.0)
          :: !json
      | exception Echo_compiler.Executor.Budget_exceeded _ ->
        row "%-8s %10d  %-18s %14s %10s@."
          (Printf.sprintf "%.1f%%" (100.0 *. frac))
          budget "none (hard OOM)" "-" "-";
        json :=
          (Printf.sprintf "survived_%.0f" (1000.0 *. frac), 0.0) :: !json))
    [ 1.02; 0.98; 0.92; 0.87; 0.855; 0.84 ];
  record_json "E17" (List.rev !json)

(* E18: the parallelism × fusion wall-clock grid — ms/step for every
   (fuse ∈ {off,on}) × (domains ∈ {1,2,4}) point across LM (the E15
   configuration), NMT and DS2 training graphs, plus the structural
   numbers (groups, interiors, instruction counts, arenas) and the
   simulated-GPU launch savings. Every executor on the grid is checked
   bitwise against the sequential unfused reference before timing.
   ms/step is the minimum over interleaved rounds, so a scheduler hiccup
   in one round cannot brand a configuration slow. Two invariants are
   asserted per model and recorded in BENCH_E18.json ([--check] turns a
   violation into exit 1):
   - monotone: wall-clock never rises as domains grow 1 -> 2 -> 4
     (the work gate + hardware cap mean fan-out only engages when it
     pays, so extra domains can only help or leave the code path
     unchanged);
   - fused_ok: fused is never slower than unfused beyond noise at any
     domain count. *)
let e18_violations = ref []

let e18 () =
  heading "E18" "parallelism-aware fusion grid (fuse x domains, ms/step)";
  let module Executor = Echo_compiler.Executor in
  let json = ref [] in
  let record key v = json := (key, v) :: !json in
  let bench tag ~id_bound model =
    let graph = training_graph model in
    let rng = Rng.create 11 in
    let feeds =
      List.map
        (fun node ->
          match Shape.rank (Node.shape node) with
          | 4 -> (node, Tensor.normal rng (Node.shape node) ~mean:0.0 ~std:1.0)
          | _ ->
            ( node,
              Tensor.init (Node.shape node) (fun _ ->
                  float_of_int (Rng.int rng id_bound)) ))
        model.Model.placeholders
      @ Params.bindings model.Model.params
    in
    let fusion = Fuse.analyse graph in
    (* One executor per grid point. d = 1 is the sequential runtime;
       larger counts run on Domain pools (hardware-capped, so on a small
       machine the extra configurations execute the very same sequential
       code — the grid then proves fan-out is never *engaged* at a loss
       rather than measuring a speedup). *)
    let domain_counts = [ 1; 2; 4 ] in
    (* Independently compiled replicas per point: the minimum across
       replicas cancels allocation-placement luck (executors running the
       same instructions can differ by up to ~10% purely from where their
       arenas landed in the heap). *)
    let replicas = 3 in
    let grid =
      List.map
        (fun d ->
          let runtime =
            if d = 1 then Parallel.sequential else Parallel.create ~domains:d ()
          in
          ( d,
            runtime,
            List.init replicas (fun _ -> Executor.compile ~runtime graph),
            List.init replicas (fun _ -> Executor.compile ~runtime ~fusion graph)
          ))
        domain_counts
    in
    let unfused_seq, fused_seq =
      match grid with
      | (_, _, off :: _, on :: _) :: _ -> (off, on)
      | _ -> assert false
    in
    let reference = Executor.eval unfused_seq ~feeds in
    let identical =
      List.for_all
        (fun (_, _, offs, ons) ->
          List.for_all
            (fun exe ->
              List.for_all2 Tensor.equal reference (Executor.eval exe ~feeds))
            (offs @ ons))
        grid
    in
    row
      "%-5s %4d nodes, %3d groups fusing %3d interiors; instrs %4d -> %4d, \
       arena %s -> %s (outputs %s)@."
      tag (Graph.node_count graph) (Fuse.group_count fusion)
      (Fuse.interior_count fusion)
      (Executor.active_instruction_count unfused_seq)
      (Executor.active_instruction_count fused_seq)
      (Footprint.human (Executor.footprint_bytes unfused_seq))
      (Footprint.human (Executor.footprint_bytes fused_seq))
      (if identical then "bit-identical" else "MISMATCH");
    record (tag ^ "_groups") (float_of_int (Fuse.group_count fusion));
    record (tag ^ "_interiors") (float_of_int (Fuse.interior_count fusion));
    record
      (tag ^ "_instrs_off")
      (float_of_int (Executor.active_instruction_count unfused_seq));
    record
      (tag ^ "_instrs_on")
      (float_of_int (Executor.active_instruction_count fused_seq));
    record
      (tag ^ "_arena_off")
      (float_of_int (Executor.footprint_bytes unfused_seq));
    record
      (tag ^ "_arena_on")
      (float_of_int (Executor.footprint_bytes fused_seq));
    record (tag ^ "_identical") (if identical then 1.0 else 0.0);
    (* The pool-less arena shows the elision itself (with the exact-size
       pool and in-place transfers on, chains already recycle to ~one
       buffer, so the default arena is equal rather than smaller); the
       simulated device time shows the launch savings that motivate fusion
       on a real GPU, where every interior also costs a kernel launch and a
       memory round-trip. *)
    let noinplace fusion =
      (Memplan.plan ~inplace:false ?fusion graph).Memplan.arena_bytes
    in
    let arena_off = noinplace None and arena_on = noinplace (Some fusion) in
    let sim_off = Echo_gpusim.Costmodel.graph_time device graph in
    let sim_on = Echo_opt.Fusion.fused_graph_time device graph in
    row
      "%-5s pool-less arena %s -> %s (-%.1f%%); simulated device %.2f -> \
       %.2f ms/iter (%.2fx)@."
      tag
      (Footprint.human arena_off)
      (Footprint.human arena_on)
      (100.0 *. float_of_int (arena_off - arena_on) /. float_of_int arena_off)
      (ms sim_off) (ms sim_on) (sim_off /. sim_on);
    record (tag ^ "_arena_noinplace_off") (float_of_int arena_off);
    record (tag ^ "_arena_noinplace_on") (float_of_int arena_on);
    record (tag ^ "_sim_ms_off") (ms sim_off);
    record (tag ^ "_sim_ms_on") (ms sim_on);
    record (tag ^ "_sim_speedup") (sim_off /. sim_on);
    (* Interleaved measurement: every grid point timed once per round,
       minimum ms/step kept across rounds. Step counts are calibrated
       per point so every measurement window is wide enough to dwarf
       timer granularity and scheduler noise — on a loaded 1-core box a
       sub-millisecond window scatters by tens of percent, which would
       drown the very invariants the grid asserts. *)
    let rounds, window_ms =
      match !scale with Full -> (10, 100.0) | Quick -> (20, 20.0)
    in
    let run_steps exe steps =
      let run () =
        List.iter (fun (n, t) -> Executor.feed exe n t) feeds;
        Executor.run exe
      in
      let t0 = wall () in
      for _ = 1 to steps do run () done;
      1000.0 *. (wall () -. t0) /. float_of_int steps
    in
    let calibrate exe =
      ignore (run_steps exe 1) (* warm-up *);
      let once = run_steps exe 1 in
      max 1 (min 2_000 (int_of_float (ceil (window_ms /. Float.max once 1e-6))))
    in
    (* Compact before timing anything: compilation and the bit-identity
       sweep leave the heap ragged, and where an arena happens to sit can
       swing a point by ~10% — compaction gives every executor the same
       fresh, dense placement. *)
    Gc.compact ();
    let calibrated =
      List.map
        (fun (d, _, offs, ons) ->
          (d, offs, calibrate (List.hd offs), ons, calibrate (List.hd ons)))
        grid
    in
    let samples = Hashtbl.create 16 in
    let add key ms =
      Hashtbl.replace samples key
        (ms :: (try Hashtbl.find samples key with Not_found -> []))
    in
    for round = 1 to rounds do
      (* Alternate traversal direction so no grid point always pays the
         same neighbourhood effects (GC phase, cache state). *)
      let pts = if round land 1 = 0 then List.rev calibrated else calibrated in
      List.iter
        (fun (d, offs, off_steps, ons, on_steps) ->
          let min_of exes steps =
            List.fold_left
              (fun acc exe -> Float.min acc (run_steps exe steps))
              infinity exes
          in
          add (d, false) (min_of offs off_steps);
          add (d, true) (min_of ons on_steps))
        pts
    done;
    (* All of a round's samples land within a fraction of a second of each
       other, but a busy machine drifts by tens of percent across the
       whole run — so compare points {e within} rounds: normalize each
       round by its own (d=1, unfused) sample, take the median ratio over
       rounds (robust to bursts hitting single rounds), and report it on
       the best reference time. Every key collects exactly one sample per
       round, so index [i] of every list is the same round. *)
    let refs = Array.of_list (Hashtbl.find samples (1, false)) in
    let base = Array.fold_left Float.min infinity refs in
    let ms_of d fuse =
      let xs = Array.of_list (Hashtbl.find samples (d, fuse)) in
      let ratios = Array.init (Array.length xs) (fun i -> xs.(i) /. refs.(i)) in
      Array.sort compare ratios;
      ratios.(Array.length ratios / 2) *. base
    in
    List.iter
      (fun (d, _, _, _) ->
        let off_ms = ms_of d false and on_ms = ms_of d true in
        row "%-5s d=%d  unfused %9.3f  fused %9.3f ms/step  (%.2fx)@." tag d
          off_ms on_ms (off_ms /. on_ms);
        record (Printf.sprintf "%s_d%d_off_ms" tag d) off_ms;
        record (Printf.sprintf "%s_d%d_on_ms" tag d) on_ms)
      grid;
    (* Invariants. Paired per-round ratios cancel machine drift, but each
       executor keeps one heap placement for the whole run, and identical
       instruction streams have been measured up to ~10% apart here from
       placement alone — so allow 10% noise. A genuine regression (fan-out
       engaged at a loss, or a fused kernel slower than its members) costs
       a constant factor and clears this easily. *)
    let tol = 1.10 in
    let monotone = ref true and fused_ok = ref true in
    let ds = List.map (fun (d, _, _, _) -> d) grid in
    List.iter
      (fun fuse ->
        ignore
          (List.fold_left
             (fun prev d ->
               let ms = ms_of d fuse in
               (match prev with
               | Some (pd, pms) when ms > pms *. tol ->
                 monotone := false;
                 e18_violations :=
                   Printf.sprintf
                     "%s %s: %.3f ms/step at %d domains > %.3f at %d" tag
                     (if fuse then "fused" else "unfused")
                     ms d pms pd
                   :: !e18_violations
               | _ -> ());
               Some (d, ms))
             None ds))
      [ false; true ];
    List.iter
      (fun d ->
        let off_ms = ms_of d false and on_ms = ms_of d true in
        if on_ms > off_ms *. tol then begin
          fused_ok := false;
          e18_violations :=
            Printf.sprintf "%s: fused %.3f ms/step > unfused %.3f at %d domains"
              tag on_ms off_ms d
            :: !e18_violations
        end)
      ds;
    row "%-5s monotone over domains: %b; fused never slower: %b@." tag
      !monotone !fused_ok;
    record (tag ^ "_monotone") (if !monotone then 1.0 else 0.0);
    record (tag ^ "_fused_ok") (if !fused_ok then 1.0 else 0.0);
    List.iter
      (fun (d, runtime, _, _) -> if d > 1 then Parallel.shutdown runtime)
      grid;
    ms_of 1 false /. ms_of 1 true
  in
  let lm_cfg =
    match !scale with
    | Full ->
      { Language_model.ptb_default with vocab = 2000; embed = 64; hidden = 64;
        layers = 2; seq_len = 35; batch = 16 }
    | Quick ->
      { Language_model.ptb_default with vocab = 300; embed = 32; hidden = 32;
        layers = 2; seq_len = 10; batch = 8 }
  in
  let nmt_cfg =
    match !scale with
    | Full ->
      { Nmt.gnmt_like with src_vocab = 1000; tgt_vocab = 1000; embed = 48;
        hidden = 48; enc_layers = 2; dec_layers = 2; src_len = 12;
        tgt_len = 12; batch = 8 }
    | Quick ->
      { Nmt.gnmt_like with src_vocab = 200; tgt_vocab = 200; embed = 16;
        hidden = 16; enc_layers = 1; dec_layers = 1; src_len = 6; tgt_len = 6;
        batch = 4 }
  in
  let ds2_cfg =
    match !scale with
    | Full ->
      { Deepspeech.ds2_like with Deepspeech.batch = 2; time = 24;
        rnn_hidden = 48; rnn_layers = 2; classes = 20 }
    | Quick ->
      { Deepspeech.ds2_like with Deepspeech.batch = 1; time = 12; freq = 8;
        conv_channels = 2; rnn_hidden = 16; rnn_layers = 1; classes = 10 }
  in
  let lm_speedup =
    bench "lm" ~id_bound:(min 20 lm_cfg.Language_model.vocab)
      (Language_model.build lm_cfg).Language_model.model
  in
  ignore
    (bench "nmt"
       ~id_bound:(min 20 (min nmt_cfg.Nmt.src_vocab nmt_cfg.Nmt.tgt_vocab))
       (Nmt.build nmt_cfg).Nmt.model);
  ignore
    (bench "ds2"
       ~id_bound:(min 20 ds2_cfg.Deepspeech.classes)
       (Deepspeech.build ds2_cfg).Deepspeech.model);
  row "LM sequential fused speedup: %.2fx@." lm_speedup;
  record_json ~path:"BENCH_E18.json" "E18" (List.rev !json)

(* E19: the footprint-vs-overhead frontier of every planner in the
   registry, over the model zoo. For each (model, planner) point: rewrite
   through the registry and record live-peak footprint, reduction factor
   and simulated time overhead. On graphs small enough for the
   quadratic-ish static planners, also run the planner's own offset
   assigner, prove the plan with Echo-verify's offset checker, and compare
   the olla-arena solver's arena against the greedy best-fit plan it must
   never regress from. Numbers land in BENCH_E19.json so the frontier is
   tracked across PRs. *)
let e19 () =
  heading "E19" "planner frontier over the zoo (every registered planner)";
  let module Pipeline = Echo_compiler.Pipeline in
  let json = ref [] in
  let record key v = json := (key, v) :: !json in
  row "%-14s %-18s %12s %8s %9s %12s %7s@." "model" "planner" "peak" "factor"
    "overhead" "static" "verify";
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      let name = model.Model.name in
      let optimized =
        Pipeline.optimize ~enabled:false (Pipeline.of_training_graph ~name graph)
      in
      (* The static-plan leg (offset assignment + verification) is
         quadratic-ish in the schedule; skip it on the big full-scale
         graphs, as E2 does — the quick configs cover every model. *)
      let small = Graph.node_count graph < 10_000 in
      if not small then
        row "%-14s static-plan legs skipped (%d nodes)@." name
          (Graph.node_count graph);
      List.iter
        (fun planner ->
          let inst = Planner.instantiate planner.Planner.name in
          let label = Planner.label inst in
          let rw = Pipeline.rewrite ~device ~planner:inst optimized in
          let report = rw.Pipeline.report in
          let key k = Printf.sprintf "%s/%s/%s" name label k in
          let peak = report.Pass.optimised_mem.Memplan.live_peak_bytes in
          record (key "peak_bytes") (float_of_int peak);
          record (key "factor") (Pass.reduction report);
          record (key "overhead") (Pass.overhead report);
          let static, verified =
            if not small then ("-", "-")
            else begin
              let offsets = Planner.assigner inst rw.Pipeline.graph in
              let lint =
                Echo_analysis.Verify.lint ~offsets rw.Pipeline.graph
              in
              let ok = not (Echo_diag.Report.has_errors lint) in
              record (key "static_arena") (float_of_int (Assign.arena_size offsets));
              record (key "verified") (if ok then 1.0 else 0.0);
              if Planner.label inst = "olla-arena" then begin
                let greedy = Assign.assign rw.Pipeline.graph in
                let saving =
                  Arena_solver.improvement rw.Pipeline.graph ~greedy
                    ~solved:offsets
                in
                record (key "le_greedy")
                  (if Assign.arena_size offsets <= Assign.arena_size greedy
                   then 1.0 else 0.0);
                record (key "saving_vs_greedy") saving;
                row "%-14s %-18s solver vs greedy arena: %s vs %s (%.2f%% saved)@."
                  name label
                  (Footprint.human (Assign.arena_size offsets))
                  (Footprint.human (Assign.arena_size greedy))
                  (100.0 *. saving)
              end;
              (Footprint.human (Assign.arena_size offsets),
               if ok then "ok" else "FAIL")
            end
          in
          row "%-14s %-18s %12s %7.2fx %+8.1f%% %12s %7s@." name label
            (Footprint.human peak) (Pass.reduction report)
            (100.0 *. Pass.overhead report)
            static verified)
        (Planner.all ()))
    (zoo ());
  record_json ~path:"BENCH_E19.json" "E19" (List.rev !json)

(* E20: fault-injection campaign over the LM zoo — the resilience report.
   Full scale sweeps every zoo model x every campaign planner, fused and
   unfused, through the ten-fault menu (320 configurations); --quick runs
   the mini preset (one model, three planners, 60 configurations). The
   whole report is a pure function of the spec seed, so BENCH_E20.json is
   bit-reproducible run to run and at every domain count. *)
let e20 () =
  heading "E20" "fault-injection campaign: per-(model x planner) resilience";
  let module Campaign = Echo_campaign.Campaign in
  let spec =
    Campaign.default_spec (match !scale with Full -> "full" | Quick -> "mini")
  in
  let report = Campaign.run spec in
  print_string (Campaign.summary report);
  record_json ~path:"BENCH_E20.json" "E20" (Campaign.json_fields report)

(* E21: the serve stack — cold vs cache-hit compile latency over the
   engine's model zoo, and same-shape eval batching throughput, both
   driven through the production [Engine] code path (protocol parse,
   cache-key computation, plan-cache lookup — exactly what a socket
   client pays minus the socket). Two claims are measured and recorded
   in BENCH_E21.json:
   - a cache hit answers a compile request >= 10x faster than the cold
     compile it short-circuits, for every model the engine serves;
   - a stacked batch-of-8 eval drain clears >= 2x the serial request
     throughput, with every loss bit-identical to serial execution at
     1, 2 and 4 domains. *)
let e21 () =
  heading "E21" "serve: plan-cache hit latency and same-shape eval batching";
  let module Engine = Echo_serve.Engine in
  let json = ref [] in
  let record key v = json := (key, v) :: !json in
  let hidden, seq_len, batch, vocab =
    match !scale with Full -> (64, 35, 16, 2000) | Quick -> (32, 10, 8, 300)
  in
  row "%-14s %12s %12s %10s@." "model" "cold (ms)" "warm (ms)" "speedup";
  let all_fast = ref true in
  List.iter
    (fun model ->
      let engine = Engine.create () in
      let req =
        Printf.sprintf "compile model=%s hidden=%d seq_len=%d batch=%d vocab=%d"
          model hidden seq_len batch vocab
      in
      let t0 = wall () in
      let first = Engine.exec engine req in
      let cold = wall () -. t0 in
      if String.length first < 2 || String.sub first 0 2 <> "ok" then
        failwith ("E21: cold compile failed: " ^ first);
      (* Warm latency: best of [reps] hits — the steady-state answer time
         of a compile request served from the cache. *)
      let reps = 20 in
      let warm = ref infinity in
      for _ = 1 to reps do
        let t1 = wall () in
        ignore (Engine.exec engine req);
        warm := Float.min !warm (wall () -. t1)
      done;
      let speedup = cold /. Float.max !warm 1e-9 in
      if speedup < 10.0 then all_fast := false;
      row "%-14s %12.3f %12.3f %9.1fx@." model (ms cold) (ms !warm) speedup;
      record (model ^ "_cold_ms") (ms cold);
      record (model ^ "_warm_ms") (ms !warm);
      record (model ^ "_speedup") speedup)
    [ "lm"; "peephole-lm"; "gru-lm"; "rnn-lm" ];
  row "cache hit >= 10x faster than cold everywhere: %b@." !all_fast;
  record "hit_10x" (if !all_fast then 1.0 else 0.0);
  (* Same-shape eval batching: one drain of 8 identical-shape requests
     against the same requests answered one at a time, on fresh engines
     per domain count. The last round's answers are compared bitwise. *)
  let rng = Rng.create 3 in
  let eval_lines =
    List.init 8 (fun _ ->
        let toks =
          List.init (seq_len + 1) (fun _ -> string_of_int (Rng.int rng vocab))
        in
        Printf.sprintf "eval hidden=%d vocab=%d tokens=%s" hidden vocab
          (String.concat "," toks))
  in
  let loss_of resp =
    Scanf.sscanf resp "ok loss=%h batched=%d" (fun l k -> (l, k))
  in
  let identical_everywhere = ref true in
  List.iter
    (fun domains ->
      let runtime = Parallel.create ~domains () in
      let batched_engine = Engine.create ~runtime () in
      let serial_engine = Engine.create ~runtime () in
      (* Warm-up: the first drains compile the batch-8 and batch-1 plans,
         so the timed rounds measure execution, not compilation. *)
      ignore (Engine.exec_all batched_engine eval_lines);
      List.iter (fun l -> ignore (Engine.exec serial_engine l)) eval_lines;
      let rounds = match !scale with Full -> 20 | Quick -> 5 in
      let t0 = wall () in
      for _ = 1 to rounds do
        ignore (Engine.exec_all batched_engine eval_lines)
      done;
      let batched_t = Float.max (wall () -. t0) 1e-9 in
      let t1 = wall () in
      for _ = 1 to rounds do
        List.iter (fun l -> ignore (Engine.exec serial_engine l)) eval_lines
      done;
      let serial_t = Float.max (wall () -. t1) 1e-9 in
      let n = float_of_int (rounds * List.length eval_lines) in
      let b_rps = n /. batched_t and s_rps = n /. serial_t in
      let batched = Engine.exec_all batched_engine eval_lines in
      let serial = List.map (Engine.exec serial_engine) eval_lines in
      let identical =
        List.for_all2
          (fun b s ->
            let bl, bk = loss_of b and sl, _ = loss_of s in
            bk = List.length eval_lines
            && Int64.equal (Int64.bits_of_float bl) (Int64.bits_of_float sl))
          batched serial
      in
      if not identical then identical_everywhere := false;
      row "eval d=%d  serial %8.1f req/s  batched %8.1f req/s  (%.2fx, %s)@."
        domains s_rps b_rps (b_rps /. s_rps)
        (if identical then "bit-identical" else "MISMATCH");
      record (Printf.sprintf "eval_serial_rps_d%d" domains) s_rps;
      record (Printf.sprintf "eval_batched_rps_d%d" domains) b_rps;
      record (Printf.sprintf "eval_speedup_d%d" domains) (b_rps /. s_rps);
      record
        (Printf.sprintf "eval_identical_d%d" domains)
        (if identical then 1.0 else 0.0);
      Parallel.shutdown runtime)
    [ 1; 2; 4 ];
  row "batched bit-identical to serial at every domain count: %b@."
    !identical_everywhere;
  record "batched_identical" (if !identical_everywhere then 1.0 else 0.0);
  record_json ~path:"BENCH_E21.json" "E21" (List.rev !json)

(* E22: the race-verify layer — what certifying a plan costs and what
   running sanitized costs. Two tables are measured and recorded in
   BENCH_E22.json:
   - static gate: every zoo model x campaign planner x fusion setting is
     compiled (on a forced 2-domain fan-out pool, so the partition proofs
     actually see parts > 1) and pushed through [Pipeline.race_verify];
     the worst-case check time per model is the latency a self-certifying
     compile pays. [--check] turns any error finding into exit 1 — the
     clean-matrix gate of the race-verify work;
   - sanitizer overhead: LM training-step wall-clock plain vs Cells-mode
     vs Full-mode shadow memory at 1/2/4 domains, with every sanitized
     executor's outputs checked bitwise against the plain sequential
     reference (the sanitizer observes, never perturbs). The model is kept
     deliberately small: Full mode diffs every non-destination buffer at
     every instruction, so its cost scales with instrs x arena cells and
     a production-size model would measure patience, not overhead. *)
let e22_violations = ref []

let e22 () =
  heading "E22" "race-verify: static-check time and sanitizer overhead";
  let module Executor = Echo_compiler.Executor in
  let module Pipeline = Echo_compiler.Pipeline in
  let module Sanitize = Echo_analysis.Sanitize in
  let module Report = Echo_diag.Report in
  let json = ref [] in
  let record key v = json := (key, v) :: !json in
  let planners =
    match !scale with
    | Full -> [ "stash-all"; "checkpoint-sqrt"; "dp-bptt"; "echo" ]
    | Quick -> [ "stash-all"; "checkpoint-sqrt"; "echo" ]
  in
  (* Oversubscribed 2-domain pool with the work gate open: fan-out (and
     therefore row partitioning) engages even on a 1-core CI box. *)
  let fanout =
    Parallel.create ~domains:2 ~oversubscribe:true ~min_fanout_work:0 ()
  in
  row "%-14s %8s %9s %11s@." "model" "configs" "findings" "check (ms)";
  let clean = ref true in
  List.iter
    (fun entry ->
      let graph, model = graph_of entry in
      let tag = model.Model.name in
      let configs = ref 0 and findings = ref 0 and worst = ref 0.0 in
      List.iter
        (fun planner ->
          let inst = Planner.instantiate planner in
          List.iter
            (fun fuse ->
              incr configs;
              let exe =
                Pipeline.compile_graph ~planner:inst ~runtime:fanout ~fuse
                  graph
              in
              let t0 = wall () in
              let report = Pipeline.race_verify exe in
              worst := Float.max !worst (wall () -. t0);
              let errs = Report.error_count report in
              findings := !findings + errs;
              if errs > 0 then begin
                clean := false;
                e22_violations :=
                  Printf.sprintf "%s/%s/%s: %d race finding(s)" tag planner
                    (if fuse then "fused" else "unfused")
                    errs
                  :: !e22_violations
              end)
            [ false; true ])
        planners;
      row "%-14s %8d %9d %11.2f@." tag !configs !findings (ms !worst);
      record (tag ^ "_configs") (float_of_int !configs);
      record (tag ^ "_findings") (float_of_int !findings);
      record (tag ^ "_check_ms") (ms !worst))
    (zoo ());
  Parallel.shutdown fanout;
  row "static race check clean everywhere: %b@." !clean;
  record "static_clean" (if !clean then 1.0 else 0.0);
  (* Sanitizer overhead grid. *)
  let lm_cfg =
    match !scale with
    | Full ->
      { Language_model.ptb_default with vocab = 120; embed = 24; hidden = 24;
        layers = 2; seq_len = 8; batch = 4 }
    | Quick ->
      { Language_model.ptb_default with vocab = 80; embed = 16; hidden = 16;
        layers = 1; seq_len = 6; batch = 2 }
  in
  let model = (Language_model.build lm_cfg).Language_model.model in
  let graph = training_graph model in
  let rng = Rng.create 11 in
  let feeds =
    List.map
      (fun node ->
        match Shape.rank (Node.shape node) with
        | 4 -> (node, Tensor.normal rng (Node.shape node) ~mean:0.0 ~std:1.0)
        | _ ->
          ( node,
            Tensor.init (Node.shape node) (fun _ ->
                float_of_int (Rng.int rng (min 20 lm_cfg.Language_model.vocab)))
          ))
      model.Model.placeholders
    @ Params.bindings model.Model.params
  in
  let fusion = Fuse.analyse graph in
  let steps, rounds = match !scale with Full -> (5, 3) | Quick -> (3, 2) in
  let reference =
    Executor.eval (Executor.compile ~fusion graph) ~feeds
  in
  row "%-4s %10s %10s %10s %9s %9s %14s@." "" "plain" "cells" "full"
    "cells-x" "full-x" "outputs";
  let identical_everywhere = ref true in
  List.iter
    (fun d ->
      let runtime =
        if d = 1 then Parallel.sequential else Parallel.create ~domains:d ()
      in
      let time_and_check mode =
        let exe = Executor.compile ~runtime ~fusion ~sanitize:mode graph in
        let same =
          List.for_all2 Tensor.equal reference (Executor.eval exe ~feeds)
        in
        let step () =
          List.iter (fun (n, t) -> Executor.feed exe n t) feeds;
          Executor.run exe
        in
        step () (* warm-up *);
        let best = ref infinity in
        for _ = 1 to rounds do
          let t0 = wall () in
          for _ = 1 to steps do step () done;
          best :=
            Float.min !best
              (1000.0 *. (wall () -. t0) /. float_of_int steps)
        done;
        (!best, same)
      in
      let plain, plain_same = time_and_check Sanitize.Off in
      let cells, cells_same = time_and_check Sanitize.Cells in
      let full, full_same = time_and_check Sanitize.Full in
      let identical = plain_same && cells_same && full_same in
      if not identical then identical_everywhere := false;
      row "d=%-2d %10.3f %10.3f %10.3f %8.2fx %8.2fx %14s@." d plain cells
        full (cells /. plain) (full /. plain)
        (if identical then "bit-identical" else "MISMATCH");
      record (Printf.sprintf "lm_d%d_plain_ms" d) plain;
      record (Printf.sprintf "lm_d%d_cells_ms" d) cells;
      record (Printf.sprintf "lm_d%d_full_ms" d) full;
      record (Printf.sprintf "lm_d%d_cells_overhead" d) (cells /. plain);
      record (Printf.sprintf "lm_d%d_full_overhead" d) (full /. plain);
      record
        (Printf.sprintf "lm_d%d_identical" d)
        (if identical then 1.0 else 0.0);
      if d > 1 then Parallel.shutdown runtime)
    [ 1; 2; 4 ];
  if not !identical_everywhere then begin
    e22_violations :=
      "sanitized LM outputs diverged from the plain sequential reference"
      :: !e22_violations
  end;
  row "sanitized runs bit-identical to plain everywhere: %b@."
    !identical_everywhere;
  record "sanitize_identical" (if !identical_everywhere then 1.0 else 0.0);
  record_json ~path:"BENCH_E22.json" "E22" (List.rev !json)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21); ("E22", e22);
  ]

let () =
  let only = ref None in
  let args =
    [
      ( "--only",
        Arg.String (fun s -> only := Some s),
        "Run selected experiments (e.g. E3 or E15,E16)" );
      ("--quick", Arg.Unit (fun () -> scale := Quick), "Shrunken configurations");
      ( "--check",
        Arg.Unit (fun () -> check_mode := true),
        "Smoke gate: run the E18 grid and the E22 race-verify matrix \
         (unless --only narrows it) and exit 1 if fused wall-clock \
         regresses, parallelism is non-monotone, any (zoo x planner x \
         fusion) config has a static race finding, or a sanitized run \
         diverges" );
    ]
  in
  Arg.parse args (fun _ -> ()) "echo experiment harness";
  if !check_mode && !only = None then only := Some "E18,E22";
  let selected =
    match !only with
    | None -> experiments
    | Some ids ->
      let wanted =
        List.filter
          (fun s -> s <> "")
          (List.map String.trim
             (String.split_on_char ',' (String.lowercase_ascii ids)))
      in
      (* Reject any unknown id, not just an all-unknown list: a typo in
         --only E3,E77 must error, not silently run a subset. *)
      let known (name, _) = List.mem (String.lowercase_ascii name) wanted in
      let unknown =
        List.filter
          (fun w ->
            not
              (List.exists
                 (fun (name, _) -> String.lowercase_ascii name = w)
                 experiments))
          wanted
      in
      if unknown <> [] || wanted = [] then begin
        Format.printf "unknown experiment%s %s; available: %s@."
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " unknown)
          (String.concat ", " (List.map fst experiments));
        exit 1
      end;
      List.filter known experiments
  in
  let t0 = Sys.time () in
  List.iter (fun (_, f) -> f ()) selected;
  json_flush ();
  Format.printf "@.done in %.1f s (cpu)@." (Sys.time () -. t0);
  if !check_mode then begin
    (* Only render verdicts for gates that actually ran: --only E22 --check
       must not print a vacuous "E18 check: OK". *)
    let ran name = List.exists (fun (n, _) -> n = name) selected in
    let render name violations =
      if not (ran name) then true
      else if !violations = [] then begin
        Format.printf "%s check: OK@." name;
        true
      end
      else begin
        Format.printf "%s check FAILED:@." name;
        List.iter (fun m -> Format.printf "  %s@." m) (List.rev !violations);
        false
      end
    in
    let ok18 = render "E18" e18_violations in
    let ok22 = render "E22" e22_violations in
    if not (ok18 && ok22) then exit 1
  end
