(* Shared infrastructure for the experiment harness: model builders, policy
   runners and table formatting. Every experiment in main.ml prints the rows
   of the corresponding table/figure of the paper's evaluation (see
   DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured). *)

open Echo_models
open Echo_core
open Echo_exec
module Pipeline = Echo_compiler.Pipeline

let device = Echo_gpusim.Device.titan_xp

(* Configurations under study. [quick] shrinks them for smoke runs. *)
type scale = Full | Quick

let lm_cfg ?(scale = Full) ?batch ?seq_len ?hidden () =
  let d = Language_model.ptb_default in
  let d = match scale with Full -> d | Quick -> { d with Language_model.vocab = 2000; seq_len = 12; batch = 16; hidden = 256; embed = 256 } in
  let hidden_v = Option.value hidden ~default:d.Language_model.hidden in
  {
    d with
    Language_model.batch = Option.value batch ~default:d.Language_model.batch;
    seq_len = Option.value seq_len ~default:d.Language_model.seq_len;
    hidden = hidden_v;
    embed = hidden_v;
  }

let nmt_cfg ?(scale = Full) ?batch () =
  let d = Nmt.gnmt_like in
  let d =
    match scale with
    | Full -> d
    | Quick ->
      { d with Nmt.src_vocab = 4000; tgt_vocab = 4000; hidden = 128; embed = 128;
        enc_layers = 2; dec_layers = 2; src_len = 10; tgt_len = 10; batch = 16 }
  in
  { d with Nmt.batch = Option.value batch ~default:d.Nmt.batch }

let ds2_cfg ?(scale = Full) () =
  match scale with
  | Full -> Deepspeech.ds2_like
  | Quick ->
    { Deepspeech.ds2_like with Deepspeech.time = 32; rnn_hidden = 128; rnn_layers = 2; batch = 4 }

let transformer_cfg ?(scale = Full) () =
  match scale with
  | Full -> Transformer.base_like
  | Quick ->
    { Transformer.base_like with Transformer.vocab = 4000; seq_len = 16; batch = 2;
      d_model = 128; d_ff = 256; layers = 2 }

let build_lm ?scale ?batch ?seq_len ?hidden ?(cell = Recurrent.Lstm) () =
  let cfg = { (lm_cfg ?scale ?batch ?seq_len ?hidden ()) with Language_model.cell } in
  (Language_model.build cfg).Language_model.model

let build_nmt ?scale ?batch () = (Nmt.build (nmt_cfg ?scale ?batch ())).Nmt.model
let build_ds2 ?scale () = (Deepspeech.build (ds2_cfg ?scale ())).Deepspeech.model

let build_transformer ?scale () =
  (Transformer.build (transformer_cfg ?scale ())).Transformer.model

(* Every experiment's graph comes out of the staged compilation pipeline
   (source -> training), so the harness and the production consumers agree
   on how graphs are built. *)
let training_graph model =
  (Pipeline.differentiate (Pipeline.of_model model))
    .Pipeline.autodiff.Echo_autodiff.Grad.graph

(* Policy comparison set used by the headline experiments — resolved
   through the planner registry, like every other consumer. *)
let policies =
  [
    Planner.instantiate "stash-all";
    Planner.instantiate "mirror-all-cheap";
    Planner.instantiate "checkpoint-sqrt";
    Planner.instantiate ~knobs:[ ("budget", 0.03) ] "echo";
    Planner.instantiate ~knobs:[ ("budget", 0.10) ] "echo";
    Planner.instantiate ~knobs:[ ("budget", 0.30) ] "echo";
  ]

(* Memoised policy reports per named graph so E2/E3/E5/E7 share work. *)
let report_cache : (string, (Planner.instance * Pass.report) list) Hashtbl.t =
  Hashtbl.create 8

let policy_reports name graph =
  match Hashtbl.find_opt report_cache name with
  | Some rs -> rs
  | None ->
    let optimized =
      Pipeline.optimize ~enabled:false (Pipeline.of_training_graph ~name graph)
    in
    let rs =
      List.map
        (fun inst ->
          (inst, (Pipeline.rewrite ~device ~planner:inst optimized).Pipeline.report))
        policies
    in
    Hashtbl.replace report_cache name rs;
    rs

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)
let ms s = 1000.0 *. s

let heading id title =
  Format.printf "@.==== %s: %s ====@." id title

let row fmt = Format.printf fmt

(* Wall-clock timing for the perf experiments. [Sys.time] counts CPU time
   summed over domains, which hides (or actively penalises) multicore
   speedups. *)
let wall () = Unix.gettimeofday ()

(* Machine-readable results so the perf trajectory can be compared across
   PRs: E15/E16/E17 land in BENCH_E15.json (the default path), E18 in
   BENCH_E18.json. Sections accumulate in run order, keyed by output file,
   and [json_flush] writes each file once at process exit; a file is only
   written when one of its experiments ran. *)
let json_fragments : (string * string * (string * float) list) list ref =
  ref []

let record_json ?(path = "BENCH_E15.json") section fields =
  json_fragments := !json_fragments @ [ (path, section, fields) ]

let json_flush () =
  let paths =
    List.fold_left
      (fun acc (p, _, _) -> if List.mem p acc then acc else acc @ [ p ])
      [] !json_fragments
  in
  List.iter
    (fun path ->
      let sections =
        List.filter_map
          (fun (p, s, f) -> if p = path then Some (s, f) else None)
          !json_fragments
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (section, fields) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "  %S: {\n" section);
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string buf ",\n";
              Buffer.add_string buf (Printf.sprintf "    %S: %.6g" k v))
            fields;
          Buffer.add_string buf "\n  }")
        sections;
      Buffer.add_string buf "\n}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path)
    paths

(* Pearson correlation. *)
let pearson xs ys =
  let n = float_of_int (List.length xs) in
  let mean l = List.fold_left ( +. ) 0.0 l /. n in
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let var l m = List.fold_left (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 l in
  cov /. sqrt (var xs mx *. var ys my)

let iteration_time ?(optimizer = Footprint.Momentum) graph model =
  let params = model.Model.params in
  Echo_gpusim.Costmodel.graph_time device graph
  +. Echo_gpusim.Costmodel.optimizer_update_time device
       ~weight_bytes:(Params.total_bytes params)
       ~param_count:(Params.count params)
       ~state_tensors:(Footprint.state_multiplier optimizer)
