(** Planner autotuning: pick a recomputation plan for an external constraint
    rather than a fixed overhead budget.

    This is the runtime-tool direction the original authors describe —
    selecting the best executor configuration automatically from measured
    (here: simulated) footprint and time, instead of asking the user to
    hand-pick flags. Every candidate is a {!Planner.instance} resolved
    through the registry, so newly registered planners join the search
    space without touching this module. *)

open Echo_ir
open Echo_gpusim

type outcome = {
  planner : Planner.instance;
  graph : Graph.t;  (** rewritten training graph *)
  report : Pass.report;
}

val label : outcome -> string
(** {!Planner.label} of the outcome's planner instance. *)

val run_one : device:Device.t -> Planner.instance -> Graph.t -> outcome
(** One rung: {!Pass.run_instance} wrapped into an outcome. *)

val escalation : float list
(** The Echo overhead-budget ladder:
    [0.01; 0.03; 0.05; 0.10; 0.20; 0.30; 0.50; 1.0]. *)

val fit_ladder : Planner.instance list
(** The full escalation ladder the fault-tolerant runtime re-plans through,
    cheapest (in recompute overhead) first: [stash-all], then [echo] at each
    rung of {!escalation}, then the segment recomputers [checkpoint-sqrt]
    and [dp-bptt], then [recompute-all]. The monotonicity of measured
    recompute overhead along this tail is enforced by the planner test
    suite. *)

val fit_memory :
  device:Device.t -> ?fuse:bool -> Graph.t -> budget_bytes:int -> outcome option
(** First rung of {!fit_ladder} whose planned {e arena} footprint
    ([Memplan.report.arena_bytes] — exactly what the compiled slot executor
    allocates, see [Echo_compiler.Executor.footprint_bytes]) fits
    [budget_bytes]. [None] when even [recompute-all] does not fit. This is
    what [Echo_train.Loop] uses to recover from [Budget_exceeded].

    [fuse] must match the fusion setting the accepted graph will later be
    compiled with (default: the [ECHO_FUSION] environment setting, like
    [Echo_compiler.Pipeline.fuse]): when on, fitting is judged on the fused
    arena ([Memplan.plan ~fusion]), which is what the fused executor
    allocates. *)

val fit_footprint : ?fuse:bool -> outcome -> int
(** The arena footprint {!fit_memory} judged the outcome by. *)

val for_memory_target :
  device:Device.t -> Graph.t -> target_bytes:int -> outcome option
(** Cheapest Echo plan (by simulated overhead) whose measured peak footprint
    fits [target_bytes]: escalates the overhead budget through
    {1%%, 3%%, 5%%, 10%%, 20%%, 30%%, 50%%, 100%%} and stops at the first
    budget that fits. [None] when even the most aggressive plan does not. *)

val best_throughput :
  device:Device.t ->
  Graph.t ->
  budget_bytes:int ->
  candidates:Planner.instance list ->
  outcome option
(** Among [candidates] whose plan fits [budget_bytes], the one with the
    smallest simulated iteration time. [None] if none fits. *)

(** {1 Joint execution-knob search} *)

type exec_combo = {
  fuse : bool;
  domains : int;  (** as requested — the runtime caps it at the hardware *)
  blocking_threshold : int;
}
(** One point of the execution grid: fusion on/off, pool size, matmul
    blocking threshold. *)

type exec_choice = {
  chosen : outcome;  (** the accepted recomputation plan *)
  combo : exec_combo;
  predicted_s : float;
      (** host-model wall-clock of one pass under [combo]
          ({!Echo_opt.Fusion.host_graph_time}) *)
  arena_bytes : int;  (** the arena the choice was admitted under *)
}

val default_domain_candidates : int list
(** [[1; 2; 4]]. *)

val default_threshold_candidates : int list
(** [[0; default; max_int]] — always-blocked, the default threshold, and
    never-blocked. *)

val combo_runtime : exec_combo -> Echo_tensor.Parallel.t
(** A fresh runtime handle realising the combo's domain count and blocking
    threshold, for passing to [Executor.compile ?runtime]. *)

val fit_exec :
  device:Device.t ->
  ?domain_candidates:int list ->
  ?threshold_candidates:int list ->
  Graph.t ->
  budget_bytes:int ->
  exec_choice option
(** Walk {!fit_ladder} cheapest-recompute-first; at every rung whose arena
    (fused or unfused, each its own grid point) fits [budget_bytes], price
    the whole (fuse, domains, threshold) grid with the host cost model —
    the same fan-out gate and blocking switch the runtime applies, at the
    hardware-capped effective fan-out — and return the globally fastest
    combination. Ties keep the earliest (cheapest-recompute, smallest
    domain count) point, so the choice never asks for parallelism the
    machine cannot deliver. [None] when no rung fits the budget. *)
