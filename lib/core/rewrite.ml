open Echo_ir

let clone_suffix = "~r"

let validate_mirror_ids graph mirror_ids =
  Ids.Set.iter
    (fun id ->
      if not (Graph.mem graph id) then
        invalid_arg (Printf.sprintf "Rewrite.mirror: id %d not in graph" id);
      let n = Graph.find graph id in
      if Node.region n <> Node.Forward then
        invalid_arg
          (Printf.sprintf "Rewrite.mirror: node %d is not a forward node" id);
      if not (Op.is_recomputable (Node.op n)) then
        invalid_arg
          (Printf.sprintf "Rewrite.mirror: %s (#%d) is not recomputable"
             (Op.to_string (Node.op n)) id))
    mirror_ids

(* Mirrored nodes whose clone must actually be materialised: those read by a
   backward node directly, or (transitively) by another needed clone. For
   each we also derive the scheduling hint — just below the earliest
   consumer's hint — so the clone executes just-in-time inside the backward
   pass. Processing in reverse schedule order guarantees consumers are
   settled first. *)
let needed_clones graph mirror_ids =
  let needed : (int, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun n ->
      let id = Node.id n in
      if Ids.Set.mem id mirror_ids then begin
        let earliest =
          List.fold_left
            (fun acc c ->
              if Node.region c = Node.Backward then Float.min acc (Node.hint c)
              else
                match Hashtbl.find_opt needed (Node.id c) with
                | Some h when Ids.Set.mem (Node.id c) mirror_ids ->
                  Float.min acc h
                | Some _ | None -> acc)
            infinity
            (Graph.consumers graph id)
        in
        if earliest < infinity then
          Hashtbl.replace needed id (earliest -. 1e-3)
      end)
    (List.rev (Graph.nodes graph));
  needed

let mirror ?(share = true) graph ~mirror_ids =
  validate_mirror_ids graph mirror_ids;
  let shared_clones : (int, Node.t) Hashtbl.t = Hashtbl.create 256 in
  if share then begin
    let needed = needed_clones graph mirror_ids in
    (* Schedule order guarantees a mirrored node's mirrored inputs are cloned
       before it. *)
    List.iter
      (fun n ->
        let id = Node.id n in
        match Hashtbl.find_opt needed id with
        | None -> ()
        | Some hint ->
          let inputs =
            List.map
              (fun u ->
                match Hashtbl.find_opt shared_clones (Node.id u) with
                | Some c -> c
                | None -> u)
              (Node.inputs n)
          in
          let clone =
            Node.clone_with_inputs ~region:Node.Backward ~hint
              ~name:(Node.name n ^ clone_suffix) n inputs
          in
          Hashtbl.replace shared_clones id clone)
      (Graph.forward_nodes graph)
  end;
  (* Per-consumer clone chains for the no-sharing ablation. *)
  let private_chain ~hint =
    let memo : (int, Node.t) Hashtbl.t = Hashtbl.create 16 in
    let rec build n =
      match Hashtbl.find_opt memo (Node.id n) with
      | Some c -> c
      | None ->
        let inputs =
          List.map
            (fun u -> if Ids.Set.mem (Node.id u) mirror_ids then build u else u)
            (Node.inputs n)
        in
        let clone =
          Node.clone_with_inputs ~region:Node.Backward ~hint
            ~name:(Node.name n ^ clone_suffix) n inputs
        in
        Hashtbl.replace memo (Node.id n) clone;
        clone
    in
    build
  in
  (* Rebuild the backward region bottom-up with substituted inputs. *)
  let rebuilt : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let resolve u =
    match Hashtbl.find_opt rebuilt (Node.id u) with Some r -> r | None -> u
  in
  List.iter
    (fun n ->
      if Node.region n = Node.Backward then begin
        let chain =
          if share then None
          else Some (private_chain ~hint:(Node.hint n -. 1e-3))
        in
        let changed = ref false in
        let inputs =
          List.map
            (fun u ->
              if Ids.Set.mem (Node.id u) mirror_ids then begin
                changed := true;
                match chain with
                | None -> Hashtbl.find shared_clones (Node.id u)
                | Some build -> build u
              end
              else begin
                let r = resolve u in
                if not (Node.equal r u) then changed := true;
                r
              end)
            (Node.inputs n)
        in
        if !changed then
          Hashtbl.replace rebuilt (Node.id n) (Node.clone_with_inputs n inputs)
      end)
    (Graph.nodes graph);
  Graph.create (List.map resolve (Graph.outputs graph))

let is_clone n =
  let name = Node.name n in
  let slen = String.length clone_suffix in
  String.length name >= slen
  && String.sub name (String.length name - slen) slen = clone_suffix

let base_name n =
  let name = Node.name n in
  if is_clone n then String.sub name 0 (String.length name - String.length clone_suffix)
  else name

let clone_count graph = List.length (List.filter is_clone (Graph.nodes graph))
