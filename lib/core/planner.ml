open Echo_ir
open Echo_gpusim
open Echo_exec

type knob = { key : string; doc : string; default : float }
type knobs = (string * float) list
type outcome = { selection : Select.selection; share : bool }

type t = {
  name : string;
  description : string;
  knob_spec : knob list;
  claim_tolerance : float;
  label : knobs -> string;
  plan : knobs:knobs -> device:Device.t -> Graph.t -> outcome;
  offsets : (knobs:knobs -> Graph.t -> Assign.t) option;
}

type instance = { planner : t; knobs : knobs }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registration_order : string list ref = ref []

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Printf.sprintf "Planner.register: duplicate name %S" p.name);
  Hashtbl.replace registry p.name p;
  registration_order := p.name :: !registration_order

let all () = List.rev_map (Hashtbl.find registry) !registration_order
let find name = Hashtbl.find_opt registry name

(* Names the pre-registry [echoc] accepted. *)
let aliases = [ ("mirror-all", "mirror-all-cheap"); ("checkpoint", "checkpoint-sqrt") ]

let resolve_name name =
  match List.assoc_opt name aliases with Some n -> n | None -> name

let declares p key = List.exists (fun k -> k.key = key) p.knob_spec

let spec_default p key =
  match List.find_opt (fun k -> k.key = key) p.knob_spec with
  | Some k -> k.default
  | None ->
    invalid_arg
      (Printf.sprintf "planner %S declares no knob %S (has: %s)" p.name key
         (String.concat ", " (List.map (fun k -> k.key) p.knob_spec)))

let check_knobs p knobs =
  List.iter (fun (key, _) -> ignore (spec_default p key)) knobs

let instantiate ?(knobs = []) name =
  match find (resolve_name name) with
  | None -> invalid_arg (Printf.sprintf "Planner.instantiate: unknown planner %S" name)
  | Some p ->
    check_knobs p knobs;
    { planner = p; knobs }

let label i = i.planner.label i.knobs

let knob_value i key =
  match List.assoc_opt key i.knobs with
  | Some v -> v
  | None -> spec_default i.planner key

let knob_is_set i key = List.mem_assoc key i.knobs

let with_knob i key v =
  ignore (spec_default i.planner key);
  { i with knobs = (key, v) :: List.remove_assoc key i.knobs }

let plan i ~device graph = i.planner.plan ~knobs:i.knobs ~device graph

let assigner i graph =
  match i.planner.offsets with
  | None -> Assign.assign graph
  | Some f -> f ~knobs:i.knobs graph

let parse spec =
  let name, args =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  let name = resolve_name (String.trim name) in
  match find name with
  | None ->
    Error
      (Printf.sprintf "unknown planner %S (use `--policy list` to see them)"
         name)
  | Some p ->
    let parse_kv acc kv =
      match acc with
      | Error _ -> acc
      | Ok knobs -> begin
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "malformed knob %S (expected key=value)" kv)
        | Some i ->
          let key = String.trim (String.sub kv 0 i) in
          let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
          if not (declares p key) then
            Error
              (Printf.sprintf "planner %S has no knob %S (has: %s)" p.name key
                 (String.concat ", " (List.map (fun k -> k.key) p.knob_spec)))
          else begin
            match float_of_string_opt v with
            | Some f -> Ok ((key, f) :: knobs)
            | None -> Error (Printf.sprintf "knob %s: %S is not a number" key v)
          end
      end
    in
    let parts =
      List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' args)
    in
    Result.map
      (fun knobs -> { planner = p; knobs = List.rev knobs })
      (List.fold_left parse_kv (Ok []) parts)

let pp_list fmt () =
  Format.fprintf fmt "@[<v>registered planners:@,";
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-17s %s@," p.name p.description;
      List.iter
        (fun k ->
          Format.fprintf fmt "  %17s   %s=%g  %s@," "" k.key k.default k.doc)
        p.knob_spec)
    (all ());
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Builtin planners                                                    *)

let value spec knobs key =
  match List.assoc_opt key knobs with
  | Some v -> v
  | None -> (List.find (fun k -> k.key = key) spec).default

let knobless name description ?(claim_tolerance = 0.5) ?offsets plan_fn =
  {
    name;
    description;
    knob_spec = [];
    claim_tolerance;
    label = (fun _ -> name);
    plan = plan_fn;
    offsets;
  }

(* Echo measures its own plans with the memory planner: the pass tries a
   descending ladder of overhead budgets and ships the plan with the lowest
   measured peak (recomputation clones that outlive the peak can cost more
   memory than the stash they free — a failure mode the selection
   estimators cannot see, but the planner can). Falls back to a no-op when
   nothing beats the baseline. *)
let echo_ladder ~cheap_only ~device graph budget =
  let baseline_peak = (Memplan.plan graph).Memplan.live_peak_bytes in
  let budgets = [ budget; budget /. 2.0; budget /. 4.0; budget /. 8.0 ] in
  let measure b =
    let selection = Select.echo ~cheap_only device graph ~overhead_budget:b in
    if Ids.Set.is_empty selection.Select.mirror_ids then
      (selection, baseline_peak)
    else begin
      let graph' =
        Rewrite.mirror ~share:true graph ~mirror_ids:selection.Select.mirror_ids
      in
      (selection, (Memplan.plan graph').Memplan.live_peak_bytes)
    end
  in
  List.fold_left
    (fun ((_, best_peak) as best) b ->
      if b < 0.002 then best
      else begin
        let selection, peak = measure b in
        if peak < best_peak then (selection, peak) else best
      end)
    (Select.empty, baseline_peak) budgets
  |> fst

let budget_knob =
  {
    key = "budget";
    doc = "recomputation-time budget, as a fraction of the iteration time";
    default = 0.10;
  }

let echo_family name description ~claim_tolerance plan_fn =
  {
    name;
    description;
    knob_spec = [ budget_knob ];
    claim_tolerance;
    label =
      (fun knobs ->
        Printf.sprintf "%s(%.0f%%)" name
          (100.0 *. value [ budget_knob ] knobs "budget"));
    plan = plan_fn;
    offsets = None;
  }

(* ------------------------------------------------------------------ *)
(* dp-bptt: Gruslys et al.-style segment checkpointing by dynamic
   programming over the stash bytes of the forward schedule.

   For a segment count [k], the optimal (bottleneck-minimal) partition of
   the forward schedule into k contiguous segments is found by binary
   search on the per-segment stash limit with a greedy feasibility scan —
   exact for this min-max partition problem, and the one-level collapse of
   Gruslys' multi-level DP (shared recomputation clones mean every node is
   recomputed at most once here, so deeper recursion buys nothing). Segment
   interiors are recomputed during backward; the inter-segment frontier
   stays stashed. With [budget-mib] set, the planner sweeps k and keeps the
   cheapest partition (largest k) whose frontier + largest-segment bytes
   fit the budget — the "DP over memory budget" entry point. *)

let dp_bptt_spec =
  [
    {
      key = "slots";
      doc = "checkpoint segment count (0 = auto: ceil sqrt of stashed maps)";
      default = 0.0;
    };
    {
      key = "budget-mib";
      doc =
        "stash budget in MiB: pick the cheapest segmentation whose \
         frontier+segment estimate fits (0 = off, use `slots`)";
      default = 0.0;
    };
  ]

let dp_bptt_plan ~knobs ~device graph =
  let stash = Stash.analyse graph in
  let fwd = Array.of_list (Graph.forward_nodes graph) in
  let n = Array.length fwd in
  if n = 0 then { selection = Select.empty; share = true }
  else begin
    let stashed_size node =
      if Stash.is_stashed stash (Node.id node) then Node.size_bytes node else 0
    in
    let w0 = Array.map stashed_size fwd in
    let total0 = Array.fold_left ( + ) 0 w0 in
    let stashed_count =
      Array.fold_left (fun a wi -> if wi > 0 then a + 1 else a) 0 w0
    in
    (* Nothing stashed: balance segment node counts instead so the planner
       still degrades to plain segment recomputation. *)
    let w = if total0 = 0 then Array.make n 1 else w0 in
    let total = Array.fold_left ( + ) 0 w in
    let maxw = Array.fold_left max 1 w in
    let segments_needed limit =
      let segs = ref 1 and cur = ref 0 in
      Array.iter
        (fun wi ->
          if !cur + wi > limit && !cur > 0 then begin
            incr segs;
            cur := wi
          end
          else cur := !cur + wi)
        w;
      !segs
    in
    let min_limit k =
      let lo = ref maxw and hi = ref total in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if segments_needed mid <= k then hi := mid else lo := mid + 1
      done;
      !lo
    in
    (* Partition under the limit; mirror recomputable segment interiors. *)
    let evaluate k =
      let limit = min_limit (max 1 k) in
      let seg_of = Hashtbl.create 1024 in
      let seg = ref 0 and cur = ref 0 in
      Array.iteri
        (fun i node ->
          let wi = w.(i) in
          if !cur + wi > limit && !cur > 0 then begin
            incr seg;
            cur := 0
          end;
          cur := !cur + wi;
          Hashtbl.replace seg_of (Node.id node) !seg)
        fwd;
      let crosses_segment node =
        let s = Hashtbl.find seg_of (Node.id node) in
        List.exists
          (fun c ->
            Node.region c = Node.Forward
            && Hashtbl.mem seg_of (Node.id c)
            && Hashtbl.find seg_of (Node.id c) > s)
          (Graph.consumers graph (Node.id node))
      in
      let mirrored =
        List.filter
          (fun node ->
            Op.is_recomputable (Node.op node)
            && (not (Graph.is_output graph (Node.id node)))
            && not (crosses_segment node))
          (Array.to_list fwd)
      in
      let claimed =
        List.fold_left (fun acc node -> acc + stashed_size node) 0 mirrored
      in
      (limit, mirrored, claimed)
    in
    let auto_k =
      let base = if stashed_count > 0 then stashed_count else n in
      max 1 (int_of_float (ceil (sqrt (float_of_int base))))
    in
    let budget_mib = value dp_bptt_spec knobs "budget-mib" in
    let k =
      if budget_mib > 0.0 then begin
        let budget_bytes =
          int_of_float (budget_mib *. 1024.0 *. 1024.0)
        in
        (* More segments keep a bigger frontier but recompute less: take the
           largest k whose estimated stash peak fits, k=1 (maximal saving)
           when none does. *)
        let candidates =
          List.sort_uniq compare
            (List.filter
               (fun k -> k >= 1 && k <= max 1 stashed_count)
               [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64; auto_k ])
        in
        let fits k =
          let limit, _, claimed = evaluate k in
          total0 - claimed + limit <= budget_bytes
        in
        List.fold_left (fun best k -> if fits k then k else best) 1 candidates
      end
      else begin
        let slots = int_of_float (value dp_bptt_spec knobs "slots") in
        if slots > 0 then slots else auto_k
      end
    in
    let _, mirrored, claimed = evaluate k in
    {
      selection = Select.selection_of device mirrored ~claimed_saving:claimed;
      share = true;
    }
  end

(* ------------------------------------------------------------------ *)
(* Registrations. These run at module initialisation: every consumer of
   the registry links against this module, so the builtins are always
   present before any lookup. *)

let () =
  register
    (knobless "stash-all" "keep every feature map (the framework baseline)"
       ~claim_tolerance:0.01 (fun ~knobs:_ ~device:_ _graph ->
         { selection = Select.empty; share = true }));
  register
    (knobless "mirror-all-cheap"
       "legacy heuristic: mirror every cheap stashed map, no cost-benefit"
       ~claim_tolerance:2.0 (fun ~knobs:_ ~device:_ graph ->
         { selection = Select.mirror_all_cheap graph; share = true }));
  register
    (knobless "checkpoint-sqrt"
       "Chen et al. sqrt(n) segment checkpointing of the forward schedule"
       ~claim_tolerance:1.0 (fun ~knobs:_ ~device graph ->
         { selection = Select.checkpoint_sqrt device graph; share = true }));
  register
    {
      name = "dp-bptt";
      description =
        "Gruslys-style DP: bottleneck-optimal byte-balanced segments, \
         optionally fit to a memory budget";
      knob_spec = dp_bptt_spec;
      claim_tolerance = 1.0;
      label = (fun _ -> "dp-bptt");
      plan = dp_bptt_plan;
      offsets = None;
    };
  register
    (echo_family "echo"
       "the paper's cost-benefit selection under a measured-peak ladder"
       ~claim_tolerance:0.6
       (fun ~knobs ~device graph ->
         let budget = value [ budget_knob ] knobs "budget" in
         {
           selection = echo_ladder ~cheap_only:false ~device graph budget;
           share = true;
         }));
  register
    (echo_family "echo-cheap"
       "Echo restricted to cheap (elementwise) recomputation chains"
       ~claim_tolerance:0.6
       (fun ~knobs ~device graph ->
         let budget = value [ budget_knob ] knobs "budget" in
         {
           selection = echo_ladder ~cheap_only:true ~device graph budget;
           share = true;
         }));
  register
    (echo_family "echo-noshare"
       "ablation: recomputation clones are not shared among consumers"
       ~claim_tolerance:0.6
       (fun ~knobs ~device graph ->
         let budget = value [ budget_knob ] knobs "budget" in
         {
           selection = Select.echo device graph ~overhead_budget:budget;
           share = false;
         }));
  register
    (echo_family "echo-notrans"
       "ablation: naive estimator, no transitive-stashing accounting"
       ~claim_tolerance:2.0
       (fun ~knobs ~device graph ->
         let budget = value [ budget_knob ] knobs "budget" in
         {
           selection =
             Select.echo ~transitive:false device graph ~overhead_budget:budget;
           share = true;
         }));
  register
    (knobless "recompute-all"
       "recompute every recomputable map: stash lower bound, time upper bound"
       ~claim_tolerance:1.0 (fun ~knobs:_ ~device graph ->
         { selection = Select.recompute_all device graph; share = true }));
  let olla_spec =
    [
      {
        key = "iters";
        doc = "annealing steps per restart (auto-scaled down on big graphs)";
        default = float_of_int Arena_solver.default.Arena_solver.iters;
      };
      {
        key = "restarts";
        doc = "independent annealing restarts";
        default = float_of_int Arena_solver.default.Arena_solver.restarts;
      };
      {
        key = "seed";
        doc = "RNG seed: same seed, same plan";
        default = float_of_int Arena_solver.default.Arena_solver.seed;
      };
    ]
  in
  register
    {
      name = "olla-arena";
      description =
        "stash-all semantics + OLLA-style annealed lifetime/offset solver \
         for the static arena";
      knob_spec = olla_spec;
      claim_tolerance = 0.01;
      label = (fun _ -> "olla-arena");
      plan =
        (fun ~knobs:_ ~device:_ _graph -> { selection = Select.empty; share = true });
      offsets =
        Some
          (fun ~knobs graph ->
            let config =
              {
                Arena_solver.iters = int_of_float (value olla_spec knobs "iters");
                restarts = int_of_float (value olla_spec knobs "restarts");
                seed = int_of_float (value olla_spec knobs "seed");
              }
            in
            Arena_solver.solve ~config graph);
    }
