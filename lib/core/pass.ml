open Echo_ir
open Echo_gpusim
open Echo_exec

type policy =
  | Stash_all
  | Mirror_all_cheap
  | Checkpoint_sqrt
  | Echo of { overhead_budget : float }
  | Echo_cheap_only of { overhead_budget : float }
  | Echo_no_sharing of { overhead_budget : float }
  | Echo_no_transitive of { overhead_budget : float }
  | Recompute_all

(* The variant is a thin compatibility veneer over the registry: every
   policy resolves to a registered planner instance, and [run] goes through
   the same [run_instance] code path every other consumer uses. *)
let instance_of_policy policy =
  let echo name b = Planner.instantiate ~knobs:[ ("budget", b) ] name in
  match policy with
  | Stash_all -> Planner.instantiate "stash-all"
  | Mirror_all_cheap -> Planner.instantiate "mirror-all-cheap"
  | Checkpoint_sqrt -> Planner.instantiate "checkpoint-sqrt"
  | Echo { overhead_budget } -> echo "echo" overhead_budget
  | Echo_cheap_only { overhead_budget } -> echo "echo-cheap" overhead_budget
  | Echo_no_sharing { overhead_budget } -> echo "echo-noshare" overhead_budget
  | Echo_no_transitive { overhead_budget } ->
    echo "echo-notrans" overhead_budget
  | Recompute_all -> Planner.instantiate "recompute-all"

let policy_name policy = Planner.label (instance_of_policy policy)

let default_policies =
  [
    Stash_all;
    Mirror_all_cheap;
    Checkpoint_sqrt;
    Echo { overhead_budget = 0.03 };
    Echo { overhead_budget = 0.30 };
    Recompute_all;
  ]

let default_instances = List.map instance_of_policy default_policies

type report = {
  policy : string;
  mirrored_nodes : int;
  clone_nodes : int;
  claimed_saving_bytes : int;
  claimed_cost_s : float;
  baseline_mem : Memplan.report;
  optimised_mem : Memplan.report;
  baseline_time_s : float;
  optimised_time_s : float;
}

let run_selected ~share graph selection =
  if Ids.Set.is_empty selection.Select.mirror_ids then graph
  else Rewrite.mirror ~share graph ~mirror_ids:selection.Select.mirror_ids

let run_instance ~device instance graph =
  let baseline_mem = Memplan.plan graph in
  let { Planner.selection; share } = Planner.plan instance ~device graph in
  let optimised = run_selected ~share graph selection in
  let report =
    {
      policy = Planner.label instance;
      mirrored_nodes = Ids.Set.cardinal selection.Select.mirror_ids;
      clone_nodes = Rewrite.clone_count optimised;
      claimed_saving_bytes = selection.Select.claimed_saving_bytes;
      claimed_cost_s = selection.Select.claimed_cost_s;
      baseline_mem;
      optimised_mem = Memplan.plan optimised;
      baseline_time_s = Costmodel.graph_time device graph;
      optimised_time_s = Costmodel.graph_time device optimised;
    }
  in
  (optimised, report)

let run ~device policy graph = run_instance ~device (instance_of_policy policy) graph

let reduction r =
  float_of_int r.baseline_mem.Memplan.live_peak_bytes
  /. float_of_int r.optimised_mem.Memplan.live_peak_bytes

let overhead r = (r.optimised_time_s -. r.baseline_time_s) /. r.baseline_time_s

let graph_flops graph =
  List.fold_left (fun acc n -> acc +. Costmodel.node_flops n) 0.0 (Graph.nodes graph)

let recompute_flops_ratio rewritten ~original =
  let f0 = graph_flops original in
  (graph_flops rewritten -. f0) /. f0

let pp_report fmt r =
  Format.fprintf fmt
    "%-18s mirrored=%-5d clones=%-5d footprint %s -> %s (%.2fx) time %.2f ms -> \
     %.2f ms (%+.1f%%)"
    r.policy r.mirrored_nodes r.clone_nodes
    (Footprint.human r.baseline_mem.Memplan.live_peak_bytes)
    (Footprint.human r.optimised_mem.Memplan.live_peak_bytes)
    (reduction r)
    (1000.0 *. r.baseline_time_s)
    (1000.0 *. r.optimised_time_s)
    (100.0 *. overhead r)
