(** The pluggable recomputation-planner architecture.

    A planner is a named strategy that, given a device and a training graph,
    produces a {!Select.selection} (which forward nodes to mirror into the
    backward pass) plus, optionally, its own static offset assigner for the
    {!Echo_exec.Assign} arena. Planners self-describe: each carries a knob
    list (name, doc, default) so drivers like [echoc --policy list] and the
    README policy table are generated from the registry instead of being
    maintained by hand.

    Everything downstream — [Pass], [Autotune], [Pipeline.rewrite],
    [Loop.train], [echoc], the benches — resolves planners through this
    registry. Adding a policy means registering one value here; no variant
    to extend, no per-layer plumbing.

    The registry ships with:
    - [stash-all], [mirror-all-cheap], [checkpoint-sqrt], [echo] (knob
      [budget]), [echo-cheap], [echo-noshare], [echo-notrans],
      [recompute-all] — the former [Pass.policy] variants;
    - [dp-bptt] — Gruslys et al.-style balanced-byte segment checkpointing
      with an optional memory budget (knobs [slots], [budget-mib]);
    - [olla-arena] — stash-all semantics with the OLLA-style annealed
      lifetime+offset arena solver ({!Echo_exec.Arena_solver}) as its
      static-plan assigner (knobs [iters], [restarts], [seed]). *)

open Echo_ir
open Echo_gpusim

type knob = {
  key : string;
  doc : string;
  default : float;  (** every knob is a float; integer knobs truncate *)
}

type knobs = (string * float) list
(** Overrides for a planner's declared knobs, by key. *)

type outcome = {
  selection : Select.selection;
  share : bool;  (** share recomputation clones among backward consumers *)
}

type t = {
  name : string;
  description : string;
  knob_spec : knob list;
  claim_tolerance : float;
      (** stated bound for the estimator-honesty contract: the selection's
          [claimed_saving_bytes] must be within this fraction of the
          baseline stash bytes from the measured arena saving. Ablations
          with deliberately naive estimators declare large tolerances. *)
  label : knobs -> string;
      (** instance display name, e.g. ["echo(10%)"]; equals [name] for
          knobless planners *)
  plan : knobs:knobs -> device:Device.t -> Graph.t -> outcome;
  offsets : (knobs:knobs -> Graph.t -> Echo_exec.Assign.t) option;
      (** static arena assigner; [None] means the greedy best-fit
          {!Echo_exec.Assign.assign} *)
}

type instance = { planner : t; knobs : knobs }
(** A planner with its knob overrides bound. Compare instances by
    {!label} — the record holds closures, so structural equality raises. *)

(** {1 Registry} *)

val register : t -> unit
(** @raise Invalid_argument on a duplicate name. *)

val all : unit -> t list
(** Every registered planner, in registration order (builtins first). *)

val find : string -> t option
(** Lookup by exact name (aliases not applied — see {!parse}). *)

val instantiate : ?knobs:knobs -> string -> instance
(** Resolve a registered planner by name (aliases applied) and bind knob
    overrides. @raise Invalid_argument on an unknown name or knob key. *)

val parse : string -> (instance, string) result
(** Parse a command-line spec: [name] or [name:key=v,key2=v2], e.g.
    ["echo:budget=0.05"] or ["dp-bptt:slots=8"]. Legacy aliases
    ([mirror-all], [checkpoint]) resolve to their registered names. *)

(** {1 Instances} *)

val label : instance -> string
val knob_value : instance -> string -> float
(** Bound override if present, else the declared default.
    @raise Invalid_argument for a key the planner does not declare. *)

val knob_is_set : instance -> string -> bool
(** True when the instance binds an override for the key. *)

val declares : t -> string -> bool
val with_knob : instance -> string -> float -> instance
(** Bind (or override) one knob. @raise Invalid_argument on an undeclared
    key. *)

val plan : instance -> device:Device.t -> Graph.t -> outcome
val assigner : instance -> Graph.t -> Echo_exec.Assign.t
(** The instance's static offset assigner ({!Echo_exec.Assign.assign}
    unless the planner overrides it). *)

val pp_list : Format.formatter -> unit -> unit
(** The [--policy list] rendering: every registered planner with its
    description and knob defaults. *)
