(** The Echo compiler pass: planner selection + rewrite + measurement.

    [run_instance] takes a training graph (forward + backward, as produced
    by [Echo_autodiff.Grad.differentiate]), applies a recomputation planner
    resolved through the {!Planner} registry, and measures both the baseline
    and the rewritten graph with the memory planner and the simulated-GPU
    cost model. Every reported number is measured on the actual graphs — the
    selection estimators can be wrong (see the ablations) without
    compromising the report.

    The [policy] variant survives as a thin compatibility veneer: each
    constructor resolves to a registered planner ({!instance_of_policy}),
    and [run] delegates to [run_instance] — there is exactly one code
    path. New policies are added by registering a planner, not by extending
    the variant. *)

open Echo_ir
open Echo_gpusim

type policy =
  | Stash_all  (** the framework baseline: keep every feature map *)
  | Mirror_all_cheap  (** legacy heuristic, no cost-benefit analysis *)
  | Checkpoint_sqrt  (** Chen et al. √n segment checkpointing *)
  | Echo of { overhead_budget : float }  (** the paper's policy *)
  | Echo_cheap_only of { overhead_budget : float }
      (** Echo without the second (expensive-closure) pass *)
  | Echo_no_sharing of { overhead_budget : float }
      (** ablation: clones are not shared among backward consumers *)
  | Echo_no_transitive of { overhead_budget : float }
      (** ablation: estimator ignores transitive stashing *)
  | Recompute_all  (** memory lower bound / time upper bound *)

val instance_of_policy : policy -> Planner.instance
(** The registered planner a legacy constructor resolves to ([Echo { b }]
    becomes ["echo"] with knob [budget = b], and so on). *)

val policy_name : policy -> string

val default_policies : policy list
(** The comparison set used across benchmarks: stash-all, mirror-all-cheap,
    √n checkpointing, Echo (3% and 30% budgets), recompute-all. *)

val default_instances : Planner.instance list
(** {!default_policies} resolved through the registry. *)

type report = {
  policy : string;
  mirrored_nodes : int;  (** selected forward nodes *)
  clone_nodes : int;  (** recomputation clones materialised *)
  claimed_saving_bytes : int;
  claimed_cost_s : float;
  baseline_mem : Echo_exec.Memplan.report;
  optimised_mem : Echo_exec.Memplan.report;
  baseline_time_s : float;
  optimised_time_s : float;
}

val run_instance :
  device:Device.t -> Planner.instance -> Graph.t -> Graph.t * report
(** Returns the rewritten graph and the measurement report. A planner whose
    selection is empty (e.g. [stash-all], [olla-arena]) returns the input
    graph unchanged. *)

val run : device:Device.t -> policy -> Graph.t -> Graph.t * report
(** [run_instance] on {!instance_of_policy}. *)

val reduction : report -> float
(** Baseline/optimised peak-footprint ratio (>1 is better), on the
    static-planner ([live_peak]) metric — MXNet plans buffer offsets
    offline, so its device footprint tracks the live peak rather than a
    caching allocator's arena. *)

val overhead : report -> float
(** (optimised - baseline) / baseline simulated iteration time. *)

val recompute_flops_ratio : Graph.t -> original:Graph.t -> float
(** Extra FLOPs of the rewritten graph relative to the original. *)

val pp_report : Format.formatter -> report -> unit
