open Echo_ir
open Echo_gpusim

type selection = {
  mirror_ids : Ids.Set.t;
  claimed_saving_bytes : int;
  claimed_cost_s : float;
}

(* A candidate's recomputation plan. [chain] is recomputed (cost, once);
   [forced] stays live into the backward pass (memory penalty); [min_root]
   is the earliest forward-schedule position the plan transitively depends
   on through other mirrored nodes — the chain-locality measure. *)
type plan = { chain : Ids.Set.t; forced : Ids.Set.t; min_root : int }

let set_bytes graph ids =
  Ids.Set.fold (fun id acc -> acc + Node.size_bytes (Graph.find graph id)) ids 0

let set_time device graph ids =
  Ids.Set.fold
    (fun id acc -> acc +. Costmodel.node_time device (Graph.find graph id))
    ids 0.0

(* Selection state threaded through the greedy passes. *)
type state = {
  graph : Graph.t;
  device : Device.t;
  stash : Stash.t;
  position : (int, int) Hashtbl.t;  (* forward node id -> schedule position *)
  root_pos : (int, int) Hashtbl.t;  (* mirrored id -> its plan's min_root *)
  mutable mirrored : Ids.Set.t;
  mutable forced : Ids.Set.t;
  mutable spent : float;
  mutable saved : int;
  budget : float;
  max_span : int;
}

let make_state device graph ~overhead_budget ~max_chain_span =
  let stash = Stash.analyse graph in
  let position = Hashtbl.create 1024 in
  List.iteri
    (fun i n -> Hashtbl.replace position (Node.id n) i)
    (Graph.nodes graph);
  let fwd_count = List.length (Graph.forward_nodes graph) in
  let max_span =
    match max_chain_span with Some s -> s | None -> max 64 (fwd_count / 8)
  in
  {
    graph;
    device;
    stash;
    position;
    root_pos = Hashtbl.create 256;
    mirrored = Ids.Set.empty;
    forced = Ids.Set.empty;
    spent = 0.0;
    saved = 0;
    budget = overhead_budget *. Costmodel.graph_time device graph;
    max_span;
  }

let pos st n = Hashtbl.find st.position (Node.id n)

(* Is this value available to backward-region readers without any new cost?
   Parameters and inputs are persistent; stashed originals and already
   forced nodes are alive anyway; mirrored nodes are reachable via their
   clone. *)
let available st u =
  Stash.is_persistent_input u
  || Stash.is_stashed st.stash (Node.id u)
  || Ids.Set.mem (Node.id u) st.forced
  || Ids.Set.mem (Node.id u) st.mirrored

let empty_plan = { chain = Ids.Set.empty; forced = Ids.Set.empty; min_root = max_int }

let merge a b =
  {
    chain = Ids.Set.union a.chain b.chain;
    forced = Ids.Set.union a.forced b.forced;
    min_root = min a.min_root b.min_root;
  }

(* The cut decision: recomputing [u] requires its non-available ancestors;
   when force-stashing [u] itself costs fewer bytes than the frontier its
   recomputation would force, cut the chain at [u]. Memoised per candidate
   so diamonds are counted once. *)
let build_plan st ~allow_expensive candidate =
  let memo : (int, plan) Hashtbl.t = Hashtbl.create 16 in
  let rec eval u =
    match Hashtbl.find_opt memo (Node.id u) with
    | Some p -> p
    | None ->
      let p = eval_uncached u in
      Hashtbl.replace memo (Node.id u) p;
      p
  and eval_uncached u =
    (* Contribution of one input edge to [u]'s recomputation plan. *)
    let input_plan v =
      if Ids.Set.mem (Node.id v) st.mirrored then
        { empty_plan with min_root = Hashtbl.find st.root_pos (Node.id v) }
      else if available st v then empty_plan
      else eval v
    in
    let recomputable =
      Op.is_recomputable (Node.op u)
      && (allow_expensive || Op.is_cheap (Node.op u))
    in
    if not recomputable then
      { chain = Ids.Set.empty; forced = Ids.Set.singleton (Node.id u); min_root = pos st u }
    else begin
      let sub = List.fold_left (fun acc v -> merge acc (input_plan v)) empty_plan (Node.inputs u) in
      let forced_new = Ids.Set.diff sub.forced st.forced in
      if
        (not (Ids.Set.is_empty forced_new))
        && Node.size_bytes u <= set_bytes st.graph forced_new
      then
        (* Cheaper to keep [u] itself alive than its frontier. *)
        { chain = Ids.Set.empty; forced = Ids.Set.singleton (Node.id u); min_root = pos st u }
      else
        {
          chain = Ids.Set.add (Node.id u) sub.chain;
          forced = sub.forced;
          min_root = min (pos st u) sub.min_root;
        }
    end
  in
  (* The candidate itself is never cut — the whole point is to recompute it. *)
  let sub =
    List.fold_left
      (fun acc v ->
        merge acc
          (if Ids.Set.mem (Node.id v) st.mirrored then
             { empty_plan with min_root = Hashtbl.find st.root_pos (Node.id v) }
           else if available st v then empty_plan
           else eval v))
      empty_plan (Node.inputs candidate)
  in
  {
    chain = Ids.Set.add (Node.id candidate) sub.chain;
    forced = sub.forced;
    min_root = min (pos st candidate) sub.min_root;
  }

type verdict = Accepted | Rejected_gain | Rejected_budget | Rejected_span

let try_accept st ~allow_expensive candidate =
  if Ids.Set.mem (Node.id candidate) st.mirrored then Accepted
  else begin
    let plan = build_plan st ~allow_expensive candidate in
    let new_forced = Ids.Set.diff plan.forced st.forced in
    let gain = Node.size_bytes candidate - set_bytes st.graph new_forced in
    let cost = set_time st.device st.graph plan.chain in
    if gain <= 0 then Rejected_gain
    else if pos st candidate - plan.min_root > st.max_span then Rejected_span
    else if st.spent +. cost > st.budget then Rejected_budget
    else begin
      st.mirrored <- Ids.Set.union st.mirrored plan.chain;
      st.forced <- Ids.Set.union st.forced plan.forced;
      Ids.Set.iter
        (fun id -> Hashtbl.replace st.root_pos id plan.min_root)
        plan.chain;
      st.spent <- st.spent +. cost;
      st.saved <- st.saved + gain;
      Accepted
    end
  end

(* The ablation estimator: no transitive accounting at all — each stashed
   node is assumed recomputable in isolation at its own kernel cost with its
   full size as the gain. The rewrite stays sound; the planner will expose
   the claimed-vs-actual gap. *)
let try_accept_naive st candidate =
  if not (Ids.Set.mem (Node.id candidate) st.mirrored) then begin
    let cost = Costmodel.node_time st.device candidate in
    if st.spent +. cost <= st.budget then begin
      st.mirrored <- Ids.Set.add (Node.id candidate) st.mirrored;
      Hashtbl.replace st.root_pos (Node.id candidate) (pos st candidate);
      st.spent <- st.spent +. cost;
      st.saved <- st.saved + Node.size_bytes candidate
    end
  end

let candidates_of st =
  List.filter
    (fun n ->
      Op.is_recomputable (Node.op n)
      && not (Graph.is_output st.graph (Node.id n)))
    (Stash.stashed_nodes st.stash)

let echo ?(cheap_only = false) ?(transitive = true) ?max_chain_span device graph
    ~overhead_budget =
  if overhead_budget < 0.0 then invalid_arg "Select.echo: negative budget";
  let st = make_state device graph ~overhead_budget ~max_chain_span in
  let candidates = candidates_of st in
  let allow_expensive = not cheap_only in
  if transitive then begin
    (* Greedy by density (bytes saved per second of recomputation), with
       plans re-derived at acceptance time — accepting one candidate makes
       its chain available to later ones, so a few sweeps converge. *)
    let density c =
      let plan = build_plan st ~allow_expensive c in
      let new_forced = Ids.Set.diff plan.forced st.forced in
      let gain = Node.size_bytes c - set_bytes st.graph new_forced in
      let cost = set_time st.device st.graph plan.chain in
      if gain > 0 && cost > 0.0 then Some (float_of_int gain /. cost) else None
    in
    let max_sweeps = 8 in
    let rec sweep round =
      if round < max_sweeps then begin
        let remaining =
          List.filter
            (fun c -> not (Ids.Set.mem (Node.id c) st.mirrored))
            candidates
        in
        let scored =
          List.filter_map
            (fun c -> Option.map (fun d -> (c, d)) (density c))
            remaining
        in
        let sorted =
          List.sort (fun (_, a) (_, b) -> Float.compare b a) scored
        in
        let progress = ref false in
        List.iter
          (fun (c, _) ->
            match try_accept st ~allow_expensive c with
            | Accepted -> progress := true
            | Rejected_gain | Rejected_budget | Rejected_span -> ())
          sorted;
        if !progress then sweep (round + 1)
      end
    in
    sweep 0
  end
  else List.iter (try_accept_naive st) candidates;
  {
    mirror_ids = st.mirrored;
    claimed_saving_bytes = st.saved;
    claimed_cost_s = st.spent;
  }

let mirror_all_cheap graph =
  let stash = Stash.analyse graph in
  let chosen =
    List.filter
      (fun n ->
        Op.is_cheap (Node.op n)
        && Op.is_recomputable (Node.op n)
        && not (Graph.is_output graph (Node.id n)))
      (Stash.stashed_nodes stash)
  in
  {
    mirror_ids =
      List.fold_left (fun s n -> Ids.Set.add (Node.id n) s) Ids.Set.empty chosen;
    claimed_saving_bytes =
      List.fold_left (fun acc n -> acc + Node.size_bytes n) 0 chosen;
    claimed_cost_s = 0.0;
  }

let empty =
  { mirror_ids = Ids.Set.empty; claimed_saving_bytes = 0; claimed_cost_s = 0.0 }

let selection_of device nodes ~claimed_saving =
  {
    mirror_ids =
      List.fold_left (fun s n -> Ids.Set.add (Node.id n) s) Ids.Set.empty nodes;
    claimed_saving_bytes = claimed_saving;
    claimed_cost_s =
      List.fold_left (fun acc n -> acc +. Costmodel.node_time device n) 0.0 nodes;
  }

(* Chen et al. (2016): split the forward schedule into ~sqrt(n) segments;
   keep the inter-segment frontier (values read by a later segment or by the
   loss) and recompute everything inside a segment during backward. *)
let checkpoint_sqrt device graph =
  let stash = Stash.analyse graph in
  let fwd = Graph.forward_nodes graph in
  let n = List.length fwd in
  if n = 0 then selection_of device [] ~claimed_saving:0
  else begin
    let segments = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
    let seg_len = max 1 ((n + segments - 1) / segments) in
    let seg_of = Hashtbl.create 1024 in
    List.iteri (fun i node -> Hashtbl.replace seg_of (Node.id node) (i / seg_len)) fwd;
    let crosses_segment node =
      let s = Hashtbl.find seg_of (Node.id node) in
      List.exists
        (fun c ->
          Node.region c = Node.Forward
          && Hashtbl.mem seg_of (Node.id c)
          && Hashtbl.find seg_of (Node.id c) > s)
        (Graph.consumers graph (Node.id node))
    in
    let mirrored =
      List.filter
        (fun node ->
          Op.is_recomputable (Node.op node)
          && (not (Graph.is_output graph (Node.id node)))
          && not (crosses_segment node))
        fwd
    in
    let claimed =
      List.fold_left
        (fun acc node ->
          if Stash.is_stashed stash (Node.id node) then acc + Node.size_bytes node
          else acc)
        0 mirrored
    in
    selection_of device mirrored ~claimed_saving:claimed
  end

let recompute_all device graph =
  let stash = Stash.analyse graph in
  let nodes =
    List.filter
      (fun n ->
        Op.is_recomputable (Node.op n) && not (Graph.is_output graph (Node.id n)))
      (Graph.forward_nodes graph)
  in
  selection_of device nodes ~claimed_saving:(Stash.bytes stash)
