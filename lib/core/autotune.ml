open Echo_exec

type outcome = {
  planner : Planner.instance;
  graph : Echo_ir.Graph.t;
  report : Pass.report;
}

let escalation = [ 0.01; 0.03; 0.05; 0.10; 0.20; 0.30; 0.50; 1.0 ]

let run_one ~device planner graph =
  let rewritten, report = Pass.run_instance ~device planner graph in
  { planner; graph = rewritten; report }

let label o = Planner.label o.planner
let echo_rung b = Planner.instantiate ~knobs:[ ("budget", b) ] "echo"

let for_memory_target ~device graph ~target_bytes =
  let fits outcome =
    outcome.report.Pass.optimised_mem.Memplan.live_peak_bytes <= target_bytes
  in
  let rec escalate = function
    | [] -> None
    | budget :: rest ->
      let outcome = run_one ~device (echo_rung budget) graph in
      if fits outcome then Some outcome else escalate rest
  in
  (* The baseline may already fit. *)
  let baseline = run_one ~device (Planner.instantiate "stash-all") graph in
  if fits baseline then Some baseline else escalate escalation

(* Cheapest-overhead-first. The registry's segment planners slot in between
   the Echo rungs and recompute-all: √n checkpointing recomputes each
   segment once from a count-balanced frontier, dp-bptt's byte-balanced
   segments trade a smaller frontier for more recomputation, and
   recompute-all is the overhead ceiling — test_planner's monotonicity
   test measures the actual simulated overhead of every rung and holds
   this tail order honest. *)
let fit_ladder =
  Planner.instantiate "stash-all"
  :: List.map echo_rung escalation
  @ [
      Planner.instantiate "checkpoint-sqrt";
      Planner.instantiate "dp-bptt";
      Planner.instantiate "recompute-all";
    ]

let fit_footprint ?fuse outcome =
  let fuse =
    match fuse with Some f -> f | None -> Echo_ir.Fuse.env_enabled ()
  in
  if fuse then
    let g = outcome.graph in
    (Memplan.plan ~fusion:(Echo_ir.Fuse.analyse g) g).Memplan.arena_bytes
  else outcome.report.Pass.optimised_mem.Memplan.arena_bytes

(* Unlike [for_memory_target], fitting here is judged on [arena_bytes] — the
   exact footprint of the compiled slot executor
   ([Executor.footprint_bytes]) — so a plan accepted under a budget is
   guaranteed to also compile under that budget. [fuse] must match the
   fusion setting of that later compile: the fused planner skips group
   interiors but extends external lifetimes, so the two arenas differ in
   both directions. *)
let fit_memory ~device ?fuse graph ~budget_bytes =
  let rec escalate = function
    | [] -> None
    | planner :: rest ->
      let outcome = run_one ~device planner graph in
      if fit_footprint ?fuse outcome <= budget_bytes then Some outcome
      else escalate rest
  in
  escalate fit_ladder

(* {1 Joint (fuse, domains, blocking-threshold) search}

   [fit_memory] fixes the execution knobs and escalates only the
   recomputation plan; this search instead walks the same ladder and, at
   every rung that fits the budget, prices the full execution-knob grid
   with the host cost model ([Echo_opt.Fusion]) — the model that applies
   the same fan-out gate, hardware cap and blocking threshold the runtime
   applies. The result is the fastest *combination*, not the best value of
   each knob independently: a rung whose fused arena fits may lose to an
   earlier rung that only fits unfused, and a domain count that helps the
   unfused schedule may hurt the fused one.

   The grid is priced at the *effective* fan-out (capped at the hardware,
   exactly as the runtime will cap it), so on a small machine every domain
   candidate predicts the same time and the smallest wins the tie — the
   returned combo never asks for parallelism the machine cannot give. *)

type exec_combo = { fuse : bool; domains : int; blocking_threshold : int }

type exec_choice = {
  chosen : outcome;
  combo : exec_combo;
  predicted_s : float;
  arena_bytes : int;
}

let default_domain_candidates = [ 1; 2; 4 ]

let default_threshold_candidates =
  [ 0; Echo_tensor.Parallel.blocking_threshold Echo_tensor.Parallel.sequential; max_int ]

let combo_runtime c =
  Echo_tensor.Parallel.create ~domains:c.domains
    ~blocking_threshold:c.blocking_threshold ()

let fit_exec ~device ?(domain_candidates = default_domain_candidates)
    ?(threshold_candidates = default_threshold_candidates) graph ~budget_bytes
    =
  let hw = Echo_tensor.Parallel.hardware_parallelism () in
  let consider best outcome ~fuse ~arena =
    List.fold_left
      (fun best domains ->
        List.fold_left
          (fun best threshold ->
            let cfg =
              {
                Echo_opt.Fusion.host_config with
                Echo_opt.Fusion.domains = min domains hw;
                blocking_threshold = threshold;
              }
            in
            let predicted_s =
              Echo_opt.Fusion.host_graph_time cfg ~fuse outcome.graph
            in
            match best with
            | Some b when b.predicted_s <= predicted_s -> best
            | Some _ | None ->
              Some
                {
                  chosen = outcome;
                  combo = { fuse; domains; blocking_threshold = threshold };
                  predicted_s;
                  arena_bytes = arena;
                })
          best threshold_candidates)
      best domain_candidates
  in
  List.fold_left
    (fun best planner ->
      let outcome = run_one ~device planner graph in
      List.fold_left
        (fun best fuse ->
          let arena = fit_footprint ~fuse outcome in
          if arena > budget_bytes then best
          else consider best outcome ~fuse ~arena)
        best [ false; true ])
    None fit_ladder

let best_throughput ~device graph ~budget_bytes ~candidates =
  List.fold_left
    (fun best planner ->
      let outcome = run_one ~device planner graph in
      if outcome.report.Pass.optimised_mem.Memplan.live_peak_bytes > budget_bytes
      then best
      else begin
        match best with
        | Some b
          when b.report.Pass.optimised_time_s
               <= outcome.report.Pass.optimised_time_s ->
          best
        | Some _ | None -> Some outcome
      end)
    None candidates
