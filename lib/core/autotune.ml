open Echo_exec

type outcome = { policy : Pass.policy; graph : Echo_ir.Graph.t; report : Pass.report }

let escalation = [ 0.01; 0.03; 0.05; 0.10; 0.20; 0.30; 0.50; 1.0 ]

let run_one ~device policy graph =
  let rewritten, report = Pass.run ~device policy graph in
  { policy; graph = rewritten; report }

let for_memory_target ~device graph ~target_bytes =
  let fits outcome =
    outcome.report.Pass.optimised_mem.Memplan.live_peak_bytes <= target_bytes
  in
  let rec escalate = function
    | [] -> None
    | budget :: rest ->
      let outcome = run_one ~device (Pass.Echo { overhead_budget = budget }) graph in
      if fits outcome then Some outcome else escalate rest
  in
  (* The baseline may already fit. *)
  let baseline = run_one ~device Pass.Stash_all graph in
  if fits baseline then Some baseline else escalate escalation

let fit_ladder =
  Pass.Stash_all
  :: List.map (fun b -> Pass.Echo { overhead_budget = b }) escalation
  @ [ Pass.Checkpoint_sqrt; Pass.Recompute_all ]

let fit_footprint ?fuse outcome =
  let fuse =
    match fuse with Some f -> f | None -> Echo_ir.Fuse.env_enabled ()
  in
  if fuse then
    let g = outcome.graph in
    (Memplan.plan ~fusion:(Echo_ir.Fuse.analyse g) g).Memplan.arena_bytes
  else outcome.report.Pass.optimised_mem.Memplan.arena_bytes

(* Unlike [for_memory_target], fitting here is judged on [arena_bytes] — the
   exact footprint of the compiled slot executor
   ([Executor.footprint_bytes]) — so a plan accepted under a budget is
   guaranteed to also compile under that budget. [fuse] must match the
   fusion setting of that later compile: the fused planner skips group
   interiors but extends external lifetimes, so the two arenas differ in
   both directions. *)
let fit_memory ~device ?fuse graph ~budget_bytes =
  let rec escalate = function
    | [] -> None
    | policy :: rest ->
      let outcome = run_one ~device policy graph in
      if fit_footprint ?fuse outcome <= budget_bytes then Some outcome
      else escalate rest
  in
  escalate fit_ladder

let best_throughput ~device graph ~budget_bytes ~candidates =
  List.fold_left
    (fun best policy ->
      let outcome = run_one ~device policy graph in
      if outcome.report.Pass.optimised_mem.Memplan.live_peak_bytes > budget_bytes
      then best
      else begin
        match best with
        | Some b
          when b.report.Pass.optimised_time_s
               <= outcome.report.Pass.optimised_time_s ->
          best
        | Some _ | None -> Some outcome
      end)
    None candidates
