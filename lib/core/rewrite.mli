(** The mirror rewrite: materialise a recomputation plan as a graph
    transformation.

    Given a training graph and a set of forward node ids to {e mirror}, every
    backward reference to a mirrored node is redirected to a fresh clone
    living in the backward region. The original buffer then dies at its last
    forward consumer, and the memory planner observes the saving; the clone
    executes just-in-time before its first backward consumer.

    Clone inputs follow the plan recursively: a mirrored input is replaced by
    {e its} clone, a non-mirrored input keeps pointing at the original node —
    which the planner therefore keeps alive into the backward pass (the
    "transitive stashing" cost the Echo estimator must account for).

    With [share = true] (the Echo behaviour, default) each mirrored node is
    cloned exactly once and all backward consumers share the recomputed
    value. With [share = false] every backward consumer re-triggers the full
    recomputation chain — the naive scheme the paper's overhead analysis
    warns against; exposed for the ablation experiment. *)

open Echo_ir

val mirror : ?share:bool -> Graph.t -> mirror_ids:Ids.Set.t -> Graph.t
(** @raise Invalid_argument if [mirror_ids] contains a node that is not a
    recomputable forward member of the graph. Semantics are preserved
    exactly: evaluating the result under the same feeds yields bitwise
    identical outputs. *)

val is_clone : Node.t -> bool
(** Is this node a recomputation clone (named with the ["~r"] suffix
    convention used by [mirror])? *)

val base_name : Node.t -> string
(** The node's name with the clone suffix stripped, if present — the name of
    the forward original a clone mirrors. *)

val clone_count : Graph.t -> int
(** Number of recomputation clones in a rewritten graph (nodes named with
    the ["~r"] suffix convention used by [mirror]). *)
