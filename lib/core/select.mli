(** Recomputation-plan selection: the Echo cost-benefit analysis and the
    baseline policies it is compared against.

    For each stashed feature map, Echo builds a {e recomputation plan} by
    walking the candidate's ancestors until values that are available to the
    backward pass anyway (parameters, inputs, other stashed maps, previously
    mirrored nodes). Three mechanisms make the plan honest:

    - {e cut decisions}: when force-stashing an intermediate costs fewer
      bytes than the frontier its recomputation would pin, the chain is cut
      there (the "transitive stashing" estimator of the paper);
    - {e shared recomputation}: chain costs are counted once — clones are
      shared among all backward consumers (the paper's recompute-count
      estimator), and chains may read previously mirrored values through
      their clones at no extra cost;
    - {e chain locality}: a plan whose transitive roots are further than
      [max_chain_span] forward-schedule positions away is rejected, which
      plants periodic stash "fences" in recurrent chains and bounds how much
      recomputed state can be live at once during the backward pass.

    Candidates are accepted greedily while the accumulated recomputation
    time stays within [overhead_budget] (a fraction of the baseline
    iteration time): first cheap (elementwise-only) plans in schedule order,
    then expensive plans by bytes-saved-per-second. *)

open Echo_ir
open Echo_gpusim

type selection = {
  mirror_ids : Ids.Set.t;
  claimed_saving_bytes : int;  (** what the estimator believes it saves *)
  claimed_cost_s : float;  (** estimated recomputation time per iteration *)
}

val echo :
  ?cheap_only:bool ->
  ?transitive:bool ->
  ?max_chain_span:int ->
  Device.t ->
  Graph.t ->
  overhead_budget:float ->
  selection
(** The Echo policy. [cheap_only] disables the second (expensive) pass;
    [transitive:false] replaces the estimator with the naive
    per-node-in-isolation one (the E11 ablation — selection quality
    degrades but the rewrite stays sound). [max_chain_span] defaults to
    [max 64 (forward_nodes / 8)]. *)

val mirror_all_cheap : Graph.t -> selection
(** Legacy framework heuristic: mirror every stashed node whose operator is
    cheap, with no cost-benefit analysis at all. *)

val checkpoint_sqrt : Echo_gpusim.Device.t -> Graph.t -> selection
(** Chen et al. (2016) √n checkpointing: split the forward schedule into
    ~√n segments, keep each segment's outgoing frontier, recompute segment
    interiors during backward. *)

val recompute_all : Echo_gpusim.Device.t -> Graph.t -> selection
(** Recompute every recomputable forward node from the model inputs: the
    stash lower bound (and time upper bound). *)

val selection_of : Device.t -> Node.t list -> claimed_saving:int -> selection
(** Build a selection from an explicit mirror set, with the recomputation
    cost estimated as the sum of the nodes' kernel times — the helper every
    segment-style planner ({!checkpoint_sqrt}, the registry's [dp-bptt])
    shares. *)

val empty : selection
(** The no-op selection ([Stash_all]'s plan). *)
