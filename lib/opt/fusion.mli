(** Elementwise-fusion statistics for the cost model.

    Chains of cheap elementwise operators that real compilers (XLA, TVM)
    fuse into single kernels are identified as {e fusion groups} by
    {!Echo_ir.Fuse} — the same analysis the memory planner and the compiled
    executor consume, so these statistics describe exactly what the fused
    backend runs (the test suite asserts the counts match the executor's).
    The IR itself stays one-op-per-node; fusion is a property of the
    compiled instruction stream, not a graph rewrite. *)

open Echo_ir
open Echo_gpusim

type stats = {
  groups : int;  (** fusion groups with at least 2 members *)
  fused_nodes : int;  (** elementwise nodes inside those groups *)
  launches_saved : int;  (** kernel launches the fused executor avoids *)
}

val elementwise : Node.t -> bool
(** Re-export of {!Echo_ir.Fuse.elementwise}. *)

val member_of : Graph.t -> Node.t -> Node.t option
(** Re-export of {!Echo_ir.Fuse.member_of}. *)

val analyse : Graph.t -> stats

val fused_graph_time : Device.t -> Graph.t -> float
(** Simulated iteration time with every fusion group launched once: a group
    costs one launch plus a single roofline pass whose compute is the sum of
    the members' flops and whose traffic counts each external input and the
    root output exactly once — interiors move no bytes, matching the fused
    kernel. Unfused nodes keep their {!Costmodel.node_time}. *)

(** {1 Host (Domain-pool) cost model}

    Prices the machine the compiled executor actually runs on — the
    multicore kernel runtime ({!Echo_tensor.Parallel}) — using the same
    fan-out gate, hardware cap and blocking threshold the runtime itself
    applies, so the fusion decision and the execution schedule are one
    system. This is the model behind [Fuse.analyse ~keep:(profitable cfg)]
    and [Echo_core.Autotune]'s joint (fuse, domains, blocking-threshold)
    search. *)

type exec_config = {
  domains : int;
      (** effective fan-out — already capped at the hardware, like
          {!Echo_tensor.Parallel.effective_fanout} *)
  min_fanout_work : int;  (** the runtime's fan-out work gate *)
  blocking_threshold : int;  (** the runtime's matmul blocking threshold *)
  fanout_overhead_s : float;  (** wakeup/join latency of one fan-out *)
  scalar_rate : float;  (** weighted scalar ops/s of one domain *)
  mem_rate : float;  (** bytes/s of the shared memory system *)
  dispatch_s : float;  (** per-instruction interpreter overhead *)
  blocked_speedup : float;  (** flat gain of the packed/blocked matmul *)
}

val host_config : exec_config
(** Single-domain defaults, sharing the gate and threshold values of
    {!Echo_tensor.Parallel.sequential}. *)

val of_runtime : Echo_tensor.Parallel.t -> exec_config
(** {!host_config} specialised to a runtime handle: its effective fan-out,
    fan-out gate and blocking threshold. *)

val node_time : exec_config -> Node.t -> float
(** One instruction on the host: dispatch, plus fan-out overhead iff the
    node's flops clear the gate with more than one domain, plus the
    rooflined max of compute (scaled by the fan-out, and by
    [blocked_speedup] for a matmul over the threshold) and memory traffic
    (never scaled — the domains share one bus). *)

val host_group_time : exec_config -> Fuse.group -> float
(** A fused group: one dispatch, members' flops summed, bytes counted once
    over externals and root — with the fan-out gate applied to the merged
    kernel's total work, which is the decision {!Tensor.Into.fused} takes
    at run time. *)

val unfused_group_time : exec_config -> Fuse.group -> float
(** The same members priced as separate instructions. *)

val profitable : exec_config -> Fuse.group -> bool
(** [host_group_time <= unfused_group_time] — the [~keep] predicate for
    {!Echo_ir.Fuse.analyse}. Fusing never adds scalar work, so this only
    rejects groups whose merged fan-out decision costs more than the saved
    dispatches and interior traffic. *)

val host_graph_time : exec_config -> ?fuse:bool -> Graph.t -> float
(** Predicted host wall-clock of one pass over the schedule. With
    [fuse = true] (default) the graph is priced under
    [Fuse.analyse ~keep:(profitable cfg)] — the plan the compiler would
    emit for this config; with [fuse = false], every node separately. *)
