(** Elementwise-fusion statistics for the cost model.

    Chains of cheap elementwise operators that real compilers (XLA, TVM)
    fuse into single kernels are identified as {e fusion groups} by
    {!Echo_ir.Fuse} — the same analysis the memory planner and the compiled
    executor consume, so these statistics describe exactly what the fused
    backend runs (the test suite asserts the counts match the executor's).
    The IR itself stays one-op-per-node; fusion is a property of the
    compiled instruction stream, not a graph rewrite. *)

open Echo_ir
open Echo_gpusim

type stats = {
  groups : int;  (** fusion groups with at least 2 members *)
  fused_nodes : int;  (** elementwise nodes inside those groups *)
  launches_saved : int;  (** kernel launches the fused executor avoids *)
}

val elementwise : Node.t -> bool
(** Re-export of {!Echo_ir.Fuse.elementwise}. *)

val member_of : Graph.t -> Node.t -> Node.t option
(** Re-export of {!Echo_ir.Fuse.member_of}. *)

val analyse : Graph.t -> stats

val fused_graph_time : Device.t -> Graph.t -> float
(** Simulated iteration time with every fusion group launched once: a group
    costs one launch plus a single roofline pass whose compute is the sum of
    the members' flops and whose traffic counts each external input and the
    root output exactly once — interiors move no bytes, matching the fused
    kernel. Unfused nodes keep their {!Costmodel.node_time}. *)
