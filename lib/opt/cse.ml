open Echo_ir

(* Structural key: operator (with attributes), exact input identities, and
   region. [Op.to_string] includes every attribute, so it is a faithful
   fingerprint of the operator.

   These keys embed raw [Node.id]s, which come off a process-local counter:
   they are only meaningful within one [rebuild] walk and MUST NOT feed
   anything content-addressed (compile caches key on the canonical
   [Graph.fingerprint] instead, which renames nodes to schedule
   positions). *)
let key op inputs region =
  ( Op.to_string op,
    List.map Node.id inputs,
    match region with Node.Forward -> 0 | Node.Backward -> 1 )

let can_unify op =
  match op with
  | Op.Placeholder | Op.Variable -> false  (* distinct external values *)
  | _ -> Op.is_pure op

let rebuild graph =
  let repr : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let seen : (string * int list * int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let removed = ref 0 in
  let resolve n =
    match Hashtbl.find_opt repr (Node.id n) with Some r -> r | None -> n
  in
  List.iter
    (fun n ->
      let inputs = List.map resolve (Node.inputs n) in
      let changed =
        List.exists2 (fun a b -> not (Node.equal a b)) (Node.inputs n) inputs
      in
      let node = if changed then Node.clone_with_inputs n inputs else n in
      let final =
        if can_unify (Node.op n) then begin
          let k = key (Node.op node) inputs (Node.region node) in
          match Hashtbl.find_opt seen k with
          | Some existing ->
            incr removed;
            existing
          | None ->
            Hashtbl.replace seen k node;
            node
        end
        else node
      in
      if not (Node.equal final n) then Hashtbl.replace repr (Node.id n) final)
    (Graph.nodes graph);
  (Graph.create (List.map resolve (Graph.outputs graph)), !removed)

let run graph = fst (rebuild graph)
let count_redundant graph = snd (rebuild graph)
