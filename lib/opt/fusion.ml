open Echo_tensor
open Echo_ir
open Echo_gpusim

type stats = { groups : int; fused_nodes : int; launches_saved : int }

(* The grouping itself lives in [Echo_ir.Fuse] — one analysis shared with
   the memory planner and the compiled executor, so these statistics
   describe exactly what the fused backend runs. *)
let elementwise = Fuse.elementwise
let member_of = Fuse.member_of

let analyse graph =
  let p = Fuse.analyse graph in
  let fused_nodes =
    List.fold_left (fun a g -> a + List.length g.Fuse.members) 0 (Fuse.groups p)
  in
  {
    groups = Fuse.group_count p;
    fused_nodes;
    launches_saved = Fuse.interior_count p;
  }

(* A fused group costs one launch and one roofline pass: compute is the sum
   of the members' flops (every scalar op still executes), but bytes are
   counted once — the external inputs are read once and only the root is
   written, which is precisely what [Tensor.Into.fused] does. *)
let group_time device g =
  let flops =
    List.fold_left (fun a m -> a +. Costmodel.node_flops m) 0.0 g.Fuse.members
  in
  let numels =
    List.fold_left
      (fun a e -> a + Shape.numel (Node.shape e))
      (Shape.numel (Node.shape g.Fuse.root))
      g.Fuse.externals
  in
  let bytes = 4.0 *. float_of_int numels in
  device.Device.launch_overhead_s
  +. Float.max (flops /. device.Device.peak_flops) (bytes /. device.Device.bandwidth)

let fused_graph_time device graph =
  let p = Fuse.analyse graph in
  List.fold_left
    (fun acc node ->
      if Fuse.is_interior p (Node.id node) then acc
      else
        match Fuse.group_of_root p (Node.id node) with
        | Some g -> acc +. group_time device g
        | None -> acc +. Costmodel.node_time device node)
    0.0 (Graph.nodes graph)

(* {1 Host (Domain-pool) cost model}

   The simulator above prices the GPU the paper targets; this second model
   prices the machine the compiled executor actually runs on — the
   multicore kernel runtime in [Echo_tensor.Parallel] — and is
   deliberately structured like that runtime:

   - a kernel fans out only when its total scalar work clears the
     runtime's [min_fanout_work] gate and more than one domain is
     effectively available; fanning out costs a fixed wakeup/join latency
     ([fanout_overhead_s]);
   - compute scales with the effective fan-out, but the memory term does
     not (the domains share one memory bus);
   - a matmul whose [m*n*k] clears the handle's blocking threshold runs
     the packed/register-blocked kernel, modelled as a flat
     [blocked_speedup] on its flops.

   Because the model applies the same gate the runtime applies, a fused
   chain is priced with the fan-out decision the fused kernel will
   actually take — which is exactly what the old purely-GPU model got
   wrong when a fused chain crossed the gate its members stayed under. *)

type exec_config = {
  domains : int;  (** effective fan-out, already hardware-capped *)
  min_fanout_work : int;
  blocking_threshold : int;
  fanout_overhead_s : float;
  scalar_rate : float;  (** weighted scalar ops/s of one domain *)
  mem_rate : float;  (** bytes/s of the shared memory system *)
  dispatch_s : float;  (** per-instruction interpreter overhead *)
  blocked_speedup : float;
}

let host_config =
  {
    domains = 1;
    min_fanout_work = Parallel.min_fanout_work Parallel.sequential;
    blocking_threshold = Parallel.blocking_threshold Parallel.sequential;
    fanout_overhead_s = 30e-6;
    scalar_rate = 1e9;
    mem_rate = 8e9;
    dispatch_s = 0.2e-6;
    blocked_speedup = 2.0;
  }

let of_runtime rt =
  {
    host_config with
    domains = Parallel.effective_fanout rt;
    min_fanout_work = Parallel.min_fanout_work rt;
    blocking_threshold = Parallel.blocking_threshold rt;
  }

(* One kernel launch under [cfg]: [work] weighted scalar ops, [bytes] of
   traffic, [speedup] on the compute term (blocked matmul). Mirrors
   [Parallel.parallel_for]'s gate exactly. *)
let kernel_time cfg ~work ~bytes ~speedup =
  let fans = cfg.domains > 1 && work >= float_of_int cfg.min_fanout_work in
  let fan = if fans then float_of_int cfg.domains else 1.0 in
  let overhead = if fans then cfg.fanout_overhead_s else 0.0 in
  cfg.dispatch_s +. overhead
  +. Float.max (work /. (cfg.scalar_rate *. speedup *. fan)) (bytes /. cfg.mem_rate)

let node_time cfg node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> 0.0
  | op ->
    let work = Costmodel.node_flops node in
    let bytes = Costmodel.node_bytes node in
    let speedup =
      match op with
      | Op.Matmul _ when work /. 2.0 >= float_of_int cfg.blocking_threshold ->
        cfg.blocked_speedup
      | _ -> 1.0
    in
    kernel_time cfg ~work ~bytes ~speedup

(* One dispatch, compute summed over the members, bytes counted once over
   the externals and the root — the same accounting as the GPU
   [group_time], priced on the host. *)
let host_group_time cfg g =
  let work =
    List.fold_left (fun a m -> a +. Costmodel.node_flops m) 0.0 g.Fuse.members
  in
  let numels =
    List.fold_left
      (fun a e -> a + Shape.numel (Node.shape e))
      (Shape.numel (Node.shape g.Fuse.root))
      g.Fuse.externals
  in
  kernel_time cfg ~work ~bytes:(4.0 *. float_of_int numels) ~speedup:1.0

let unfused_group_time cfg g =
  List.fold_left (fun a m -> a +. node_time cfg m) 0.0 g.Fuse.members

(* The valve [Fuse.analyse ~keep] plugs into. Fusing never adds scalar
   work, so a group only loses when the merged kernel's fan-out decision
   costs more than the dispatches and interior traffic it saves — e.g. a
   chain of tiny members that each stayed under the gate but together
   cross it on a machine where the fan-out overhead dwarfs the compute. *)
let profitable cfg g = host_group_time cfg g <= unfused_group_time cfg g

let host_graph_time cfg ?(fuse = true) graph =
  if not fuse then
    List.fold_left
      (fun acc node -> acc +. node_time cfg node)
      0.0 (Graph.nodes graph)
  else begin
    (* Price the plan the compiler would actually emit under this config:
       unprofitable groups are unfused both here and there. *)
    let p = Fuse.analyse ~keep:(profitable cfg) graph in
    List.fold_left
      (fun acc node ->
        if Fuse.is_interior p (Node.id node) then acc
        else
          match Fuse.group_of_root p (Node.id node) with
          | Some g -> acc +. host_group_time cfg g
          | None -> acc +. node_time cfg node)
      0.0 (Graph.nodes graph)
  end
