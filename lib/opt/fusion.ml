open Echo_tensor
open Echo_ir
open Echo_gpusim

type stats = { groups : int; fused_nodes : int; launches_saved : int }

(* The grouping itself lives in [Echo_ir.Fuse] — one analysis shared with
   the memory planner and the compiled executor, so these statistics
   describe exactly what the fused backend runs. *)
let elementwise = Fuse.elementwise
let member_of = Fuse.member_of

let analyse graph =
  let p = Fuse.analyse graph in
  let fused_nodes =
    List.fold_left (fun a g -> a + List.length g.Fuse.members) 0 (Fuse.groups p)
  in
  {
    groups = Fuse.group_count p;
    fused_nodes;
    launches_saved = Fuse.interior_count p;
  }

(* A fused group costs one launch and one roofline pass: compute is the sum
   of the members' flops (every scalar op still executes), but bytes are
   counted once — the external inputs are read once and only the root is
   written, which is precisely what [Tensor.Into.fused] does. *)
let group_time device g =
  let flops =
    List.fold_left (fun a m -> a +. Costmodel.node_flops m) 0.0 g.Fuse.members
  in
  let numels =
    List.fold_left
      (fun a e -> a + Shape.numel (Node.shape e))
      (Shape.numel (Node.shape g.Fuse.root))
      g.Fuse.externals
  in
  let bytes = 4.0 *. float_of_int numels in
  device.Device.launch_overhead_s
  +. Float.max (flops /. device.Device.peak_flops) (bytes /. device.Device.bandwidth)

let fused_graph_time device graph =
  let p = Fuse.analyse graph in
  List.fold_left
    (fun acc node ->
      if Fuse.is_interior p (Node.id node) then acc
      else
        match Fuse.group_of_root p (Node.id node) with
        | Some g -> acc +. group_time device g
        | None -> acc +. Costmodel.node_time device node)
    0.0 (Graph.nodes graph)
