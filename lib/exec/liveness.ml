open Echo_ir

type interval = { node : Node.t; def_step : int; last_step : int }

type t = {
  by_id : (int, interval) Hashtbl.t;
  ordered : interval list;
  deaths : (int, Node.t list) Hashtbl.t;  (* step -> buffers dying there *)
  steps : int;
}

let is_persistent node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> true
  | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _ | Op.Neg | Op.Scale _
  | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh | Op.Relu | Op.Exp
  | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add | Op.Sub | Op.Mul
  | Op.Div | Op.Matmul _ | Op.AddBias | Op.ScaleBy | Op.Slice _ | Op.PadSlice _
  | Op.Concat _ | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _
  | Op.ReduceMean _ | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax
  | Op.CrossEntropy | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

let analyse ?fusion graph =
  let schedule = Graph.nodes graph in
  let position = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace position (Node.id n) i) schedule;
  (* Under fusion, a group member's reads happen when the group's root
     instruction runs, so every buffer a member consumes must stay live to
     the root's step (the fused kernel reads it there); and interiors never
     materialize, so they get no interval at all. *)
  let read_pos c =
    match fusion with
    | Some f -> Hashtbl.find position (Node.id (Fuse.reader f c))
    | None -> Hashtbl.find position (Node.id c)
  in
  let interior node =
    match fusion with
    | Some f -> Fuse.is_interior f (Node.id node)
    | None -> false
  in
  let by_id = Hashtbl.create 1024 in
  let deaths = Hashtbl.create 1024 in
  let ordered = ref [] in
  List.iteri
    (fun i node ->
      if (not (is_persistent node)) && not (interior node) then begin
        let last =
          if Graph.is_output graph (Node.id node) then max_int
          else
            List.fold_left
              (fun acc c -> max acc (read_pos c))
              i
              (Graph.consumers graph (Node.id node))
        in
        let itv = { node; def_step = i; last_step = last } in
        Hashtbl.replace by_id (Node.id node) itv;
        ordered := itv :: !ordered;
        if last <> max_int then begin
          let cur = try Hashtbl.find deaths last with Not_found -> [] in
          Hashtbl.replace deaths last (node :: cur)
        end
      end)
    schedule;
  { by_id; ordered = List.rev !ordered; deaths; steps = List.length schedule }

(* Rebuild an analysis from explicit intervals. The executor frees and
   recycles buffers off whatever [t] it is handed, so this is the injection
   point for the race-verify mutation harness: a corrupted interval list
   becomes a real executor whose pool reuse genuinely clobbers live data. *)
let of_intervals ~steps intervals =
  let by_id = Hashtbl.create (2 * List.length intervals) in
  let deaths = Hashtbl.create (2 * List.length intervals) in
  List.iter
    (fun itv ->
      Hashtbl.replace by_id (Node.id itv.node) itv;
      if itv.last_step <> max_int then begin
        let cur = try Hashtbl.find deaths itv.last_step with Not_found -> [] in
        Hashtbl.replace deaths itv.last_step (itv.node :: cur)
      end)
    intervals;
  { by_id; ordered = intervals; deaths; steps }

let intervals t = t.ordered
let interval t id = Hashtbl.find t.by_id id
let step_count t = t.steps
let dying_at t step = try Hashtbl.find t.deaths step with Not_found -> []

let crosses_into_backward _t graph id =
  let node = Graph.find graph id in
  Node.region node = Node.Forward
  && List.exists
       (fun c -> Node.region c = Node.Backward)
       (Graph.consumers graph id)

let stash_bytes t graph =
  List.fold_left
    (fun acc itv ->
      if crosses_into_backward t graph (Node.id itv.node) then
        acc + Node.size_bytes itv.node
      else acc)
    0 t.ordered
