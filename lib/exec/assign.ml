open Echo_ir

type slot = {
  node_id : int;
  offset : int;
  size : int;
  def_step : int;
  last_step : int;
}

type t = { slots : slot list; arena : int }

(* Free holes as a sorted (offset, size) list; adjacent holes merge. *)
module Holes = struct
  let rec insert holes (off, size) =
    match holes with
    | [] -> [ (off, size) ]
    | (o, s) :: rest ->
      if off + size = o then (off, size + s) :: rest
      else if o + s = off then insert rest (o, size + s)
      else if off < o then (off, size) :: holes
      else (o, s) :: insert rest (off, size)

  (* Best fit: smallest hole that accommodates [size]. *)
  let take holes size =
    let best =
      List.fold_left
        (fun acc (o, s) ->
          if s >= size then begin
            match acc with
            | Some (_, bs) when bs <= s -> acc
            | Some _ | None -> Some (o, s)
          end
          else acc)
        None holes
    in
    match best with
    | None -> None
    | Some (o, s) ->
      let holes = List.filter (fun (o', _) -> o' <> o) holes in
      let holes = if s > size then insert holes (o + size, s - size) else holes in
      Some (o, holes)
end

let assign graph =
  let liveness = Liveness.analyse graph in
  let holes = ref [] in
  let top = ref 0 in
  let slots = ref [] in
  let by_id : (int, slot) Hashtbl.t = Hashtbl.create 1024 in
  List.iteri
    (fun step node ->
      if not (Liveness.is_persistent node) then begin
        let size = Node.size_bytes node in
        let itv = Liveness.interval liveness (Node.id node) in
        let offset =
          match Holes.take !holes size with
          | Some (off, rest) ->
            holes := rest;
            off
          | None ->
            let off = !top in
            top := !top + size;
            off
        in
        let slot =
          {
            node_id = Node.id node;
            offset;
            size;
            def_step = step;
            last_step = itv.Liveness.last_step;
          }
        in
        slots := slot :: !slots;
        Hashtbl.replace by_id (Node.id node) slot;
        (* Return buffers whose last read is this step. *)
        List.iter
          (fun dying ->
            match Hashtbl.find_opt by_id (Node.id dying) with
            | Some s -> holes := Holes.insert !holes (s.offset, s.size)
            | None -> ())
          (Liveness.dying_at liveness step)
      end)
    (Graph.nodes graph);
  { slots = List.rev !slots; arena = !top }

let arena_size t = t.arena
let slots t = t.slots

(* Reconstruct an assignment from raw slots. The mutation harness uses this
   to seed deliberate corruptions; [check] treats the result like any other
   plan. *)
let of_slots ~arena slots = { slots; arena }

let total_with_persistent t graph =
  let persistent, max_ws =
    List.fold_left
      (fun (p, w) n ->
        let p =
          match Node.op n with
          | Op.Variable | Op.Placeholder -> p + Node.size_bytes n
          | _ -> p
        in
        (p, max w (Workspace.bytes n)))
      (0, 0) (Graph.nodes graph)
  in
  t.arena + persistent + max_ws

(* Soundness of the static plan, collect-all: arena-escape and address
   overlap of live-overlapping slots each become one diagnostic. *)
let check t =
  let report = Echo_diag.Report.create () in
  let err ~nodes fmt =
    Echo_diag.Report.errorf report ~check:"assign" ~stage:"assign" ~nodes fmt
  in
  let overlaps a b =
    a.offset < b.offset + b.size && b.offset < a.offset + a.size
  in
  let concurrent a b = a.def_step <= b.last_step && b.def_step <= a.last_step in
  let arr = Array.of_list t.slots in
  Array.iteri
    (fun i a ->
      if a.offset < 0 || a.offset + a.size > t.arena then
        err ~nodes:[ a.node_id ]
          "slot of node #%d ([%d, %d)) escapes the %d-byte arena" a.node_id
          a.offset (a.offset + a.size) t.arena;
      for j = i + 1 to Array.length arr - 1 do
        let b = arr.(j) in
        if concurrent a b && overlaps a b then
          err
            ~nodes:[ a.node_id; b.node_id ]
            "slots of nodes #%d ([%d, %d), steps %d..%d) and #%d ([%d, %d), \
             steps %d..%d) are live simultaneously and overlap in address \
             space"
            a.node_id a.offset (a.offset + a.size) a.def_step a.last_step
            b.node_id b.offset (b.offset + b.size) b.def_step b.last_step
      done)
    arr;
  report

let validate t =
  match Echo_diag.Report.errors (check t) with
  | [] -> ()
  | first :: _ ->
    failwith (Printf.sprintf "Assign.validate: %s" first.Echo_diag.message)
