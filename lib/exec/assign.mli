(** Static buffer-offset assignment — the artifact MXNet's memory planner
    actually produces.

    Given the schedule and the liveness intervals, assign every transient
    buffer a byte offset in one contiguous device arena such that buffers
    with overlapping lifetimes never overlap in address space. Best-fit over
    a free-hole list with merging of adjacent holes; the resulting arena
    size is the {e static plan} footprint — it sits between the
    ideal-allocator live peak and the exact-size-reuse pool of
    {!Memplan}. *)

open Echo_ir

type slot = {
  node_id : int;
  offset : int;  (** byte offset in the transient arena *)
  size : int;
  def_step : int;
  last_step : int;  (** [max_int] for graph outputs *)
}

type t

val assign : Graph.t -> t

val of_slots : arena:int -> slot list -> t
(** Reconstruct an assignment from raw slots. Exists for the mutation
    harness (corrupt a plan, then prove {!check} catches it) and for
    deserialised plans; no validation happens here. *)

val arena_size : t -> int
(** Bytes of the transient arena (persistent weights/inputs are outside). *)

val slots : t -> slot list
(** In schedule (definition) order. *)

val total_with_persistent : t -> Graph.t -> int
(** Arena plus weights, inputs and the maximum kernel workspace — directly
    comparable to {!Memplan}'s metrics. *)

val check : t -> Echo_diag.Report.t
(** The planner's soundness condition, collect-all: one error-severity
    diagnostic (check ["assign"]) per pair of live-overlapping slots that
    overlap in address space and per slot escaping the arena; a sound plan
    yields an empty report. *)

val validate : t -> unit
(** Raising wrapper over {!check} for callers that want the first error
    only. @raise Failure on violation. *)
