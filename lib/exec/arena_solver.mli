(** OLLA-style static arena optimisation (Steiner et al.): jointly search
    over slot placement orders, assigning each buffer the lowest
    non-conflicting byte offset, to shrink the transient arena below what
    the one-shot best-fit planner of {!Assign} produces.

    The search is simulated annealing over placement orders, seeded with a
    handful of deterministic heuristics (size-descending, duration-
    descending, area-descending, schedule order). Placement itself is exact:
    for a given order the returned offsets never overlap for buffers whose
    lifetimes intersect, so every candidate is sound by construction and the
    final plan still passes {!Assign.check} / Echo-verify's offset checker.

    [solve] never regresses: it returns the greedy {!Assign.assign} plan
    whenever no explored order beats it, so the solved arena is always [<=]
    the greedy arena. *)

open Echo_ir

type config = {
  iters : int;  (** annealing steps per restart (auto-scaled down on big graphs) *)
  restarts : int;  (** independent annealing runs *)
  seed : int;  (** deterministic RNG seed — same seed, same plan *)
}

val default : config

val solve : ?config:config -> Graph.t -> Assign.t
(** Optimised static plan for the graph's transient buffers. The result is
    validated internally ({!Assign.validate}) before being returned. *)

val improvement : Graph.t -> greedy:Assign.t -> solved:Assign.t -> float
(** Fractional arena saving of [solved] over [greedy] (0 when equal). *)
