(** Buffer liveness over a graph's schedule.

    A node's output buffer is born at its schedule position and dies right
    after its last consumer executes; graph outputs live to the end of the
    iteration. Persistent nodes ([Variable], [Placeholder]) are allocated
    outside the transient arena and are never part of the intervals here. *)

open Echo_ir

type interval = {
  node : Node.t;
  def_step : int;  (** schedule index at which the buffer is produced *)
  last_step : int;  (** schedule index of the last read; [max_int] = end *)
}

type t

val analyse : ?fusion:Fuse.plan -> Graph.t -> t
(** With [?fusion], fused interiors get no interval (they never
    materialize), and every buffer a group member reads stays live to the
    group root's step — that is where the fused kernel actually reads it. *)

val of_intervals : steps:int -> interval list -> t
(** An analysis rebuilt from explicit intervals (death table re-derived
    from the [last_step]s). [Executor.compile ?liveness] frees buffers off
    whatever analysis it is handed, so this is how the race-verify mutation
    harness turns a corrupted interval list into a real executor whose
    early frees the dynamic sanitizer must catch. *)

val intervals : t -> interval list
(** One interval per non-persistent node, in schedule order. *)

val interval : t -> int -> interval
(** By node id. @raise Not_found for persistent nodes or foreign ids. *)

val step_count : t -> int

val dying_at : t -> int -> Node.t list
(** Buffers whose last read is the given step (and which may therefore be
    freed once that step completes). Outputs never appear. *)

val is_persistent : Node.t -> bool
(** [Variable] and [Placeholder] nodes. *)

val crosses_into_backward : t -> Graph.t -> int -> bool
(** True when the (forward) node with this id has at least one backward
    consumer — i.e. its buffer is a stashed feature map. *)

val stash_bytes : t -> Graph.t -> int
(** Total bytes of forward feature maps with a backward consumer: the
    quantity Echo exists to shrink. *)
