(** Reference interpreter: executes a graph on host tensors.

    Deterministic by construction — all stochastic operators are seeded — so
    evaluating the same graph twice, or evaluating a semantically equivalent
    rewrite (e.g. after the Echo recomputation pass), yields bitwise
    identical outputs. *)

open Echo_tensor
open Echo_ir

type feeds = (Node.t * Tensor.t) list
(** Values for every [Placeholder] and [Variable] reachable in the graph. *)

exception Missing_feed of string
(** Raised when placeholders or variables have no feed; the payload names
    {e every} missing node (comma-separated), not just the first. *)

val eval_node : Op.t -> Shape.t -> Tensor.t list -> Tensor.t
(** Execute one operator on materialised inputs. [Placeholder]/[Variable]
    are rejected (they have no semantics without a feed). Exposed for
    op-level unit tests. *)

val eval : Graph.t -> feeds:feeds -> Tensor.t list
(** Evaluate and return the graph outputs, in output order.
    @raise Missing_feed naming the offending node. *)

val eval_all : Graph.t -> feeds:feeds -> (int, Tensor.t) Hashtbl.t
(** Evaluate and keep every node's value, keyed by node id (tests and
    debugging; memory-hungry on purpose). *)

val eval_scalar : Graph.t -> feeds:feeds -> float
(** Convenience: evaluate a graph whose single output is a scalar. *)
