(** Liveness-based memory planning and footprint measurement.

    Models the two allocator disciplines that matter for reproducing
    GPU-footprint numbers:

    - the {e live peak}: the best any allocator could do — the maximum over
      schedule steps of the bytes simultaneously live (persistent buffers +
      transient buffers + the executing kernel's workspace);
    - the {e arena size}: what an MXNet-style exact-size-reuse pool actually
      reserves — freed buffers are recycled only for identically-sized
      requests, so the arena grows monotonically and its final size is the
      device footprint an external observer (nvidia-smi) reports.

    Benchmarks report the arena size as "the footprint"; the live peak is the
    ideal-allocator reference. *)

open Echo_ir

type report = {
  arena_bytes : int;  (** persistent + transient pool + max workspace *)
  live_peak_bytes : int;  (** ideal-allocator peak, same inclusions *)
  peak_step : int;  (** schedule index at which the live peak occurs *)
  weight_bytes : int;
  input_bytes : int;
  stash_bytes : int;  (** forward feature maps consumed by backward nodes *)
  max_workspace_bytes : int;
  breakdown : (Category.t * int) list;
      (** live bytes per category at the live-peak step (all categories
          present, zeros included) *)
  node_count : int;
  step_of_backward_start : int option;
      (** first schedule index executing a backward-region node *)
}

val inplace_capable : Node.t -> bool
(** True for operators allowed to write their result into a dying input's
    buffer of the same size (elementwise families plus the fused
    softmax/softmax-xent kernels). Shared with [Echo_compiler.Executor] so
    the executor's buffer discipline is the planner's by construction. *)

val plan : ?reuse:bool -> ?inplace:bool -> ?fusion:Fuse.plan -> Graph.t -> report
(** [reuse] (default [true]) enables the exact-size pool; with [~reuse:false]
    every transient allocation is fresh, so [arena_bytes] degenerates to the
    sum of all transient buffers — the "no memory planning" strawman.
    [inplace] (default [true]) lets same-shape elementwise operators write
    into a dying input's buffer (MXNet's in-place optimisation) — gradient
    accumulation chains then cost one buffer instead of one per step.
    [fusion] plans for the fused executor: group interiors get no buffer,
    external inputs of a group stay live to the root's step, and a root's
    in-place candidates are the group's externals. The resulting
    [arena_bytes] equals the fused executor's measured footprint, exactly as
    in the unfused case. *)

val reduction_factor : baseline:report -> report -> float
(** Ratio of arena footprints (baseline / optimised). *)

val pp : Format.formatter -> report -> unit
