open Echo_tensor

type config = { iters : int; restarts : int; seed : int }

let default = { iters = 400; restarts = 4; seed = 0x0a11a }

(* Placement is the inner loop: for each slot, in the candidate order, scan
   the already-placed slots whose lifetimes intersect and take the lowest
   offset gap that fits. Exact (no two live-overlapping slots can end up
   overlapping) and order-sensitive — the search is over orders only. *)

type item = { idx : int; size : int; def : int; last : int }

let concurrent a b = a.def <= b.last && b.def <= a.last

let place items order offs =
  (* [placed] holds indices into [items] in placement order. *)
  let n = Array.length order in
  let placed = Array.make n 0 in
  let arena = ref 0 in
  for p = 0 to n - 1 do
    let i = order.(p) in
    let it = items.(i) in
    (* Conflicting placed intervals, as (offset, size) pairs. *)
    let conflicts = ref [] in
    for q = 0 to p - 1 do
      let j = placed.(q) in
      if concurrent it items.(j) then
        conflicts := (offs.(j), items.(j).size) :: !conflicts
    done;
    let sorted =
      List.sort (fun (a, _) (b, _) -> compare a b) !conflicts
    in
    let rec scan cur = function
      | [] -> cur
      | (o, sz) :: rest ->
        if o >= cur + it.size then cur else scan (max cur (o + sz)) rest
    in
    let off = scan 0 sorted in
    offs.(i) <- off;
    arena := max !arena (off + it.size);
    placed.(p) <- i
  done;
  !arena

let swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

(* Deterministic seed orders. Durations are clamped (outputs carry
   [last_step = max_int]) so the area key stays finite. *)
let seed_orders items n_steps =
  let n = Array.length items in
  let order_by key =
    let o = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare (key items.(b)) (key items.(a)) in
        if c <> 0 then c else compare items.(a).def items.(b).def)
      o;
    o
  in
  let dur it = min it.last n_steps - it.def + 1 in
  [
    order_by (fun it -> (it.size, 0));
    order_by (fun it -> (dur it, it.size));
    order_by (fun it -> (it.size * dur it, it.size));
    Array.init n (fun i -> i) (* schedule order, lowest-offset placement *);
  ]

let solve ?(config = default) graph =
  let greedy = Assign.assign graph in
  let slots = Array.of_list (Assign.slots greedy) in
  let n = Array.length slots in
  if n <= 2 then greedy
  else begin
    let items =
      Array.mapi
        (fun i s ->
          {
            idx = i;
            size = s.Assign.size;
            def = s.Assign.def_step;
            last = s.Assign.last_step;
          })
        slots
    in
    let n_steps =
      Array.fold_left (fun acc it -> max acc it.def) 0 items + 1
    in
    (* Each placement pass is O(n^2); bound the total pairwise work so the
       solver stays tractable on the full-size zoo graphs while the small
       test graphs get the full annealing budget. *)
    let iters =
      max 8 (min config.iters (60_000_000 / max 1 (n * n)))
    in
    let offs = Array.make n 0 in
    let best_offs = Array.make n 0 in
    let best = ref max_int in
    let best_order = ref [||] in
    let consider order =
      let a = place items order offs in
      if a < !best then begin
        best := a;
        best_order := Array.copy order;
        Array.blit offs 0 best_offs 0 n
      end;
      a
    in
    List.iter (fun o -> ignore (consider o)) (seed_orders items n_steps);
    let rng = Rng.create config.seed in
    let temp0 = 0.02 *. float_of_int !best in
    for _restart = 1 to config.restarts do
      let order = Array.copy !best_order in
      (* Perturb the restart's starting point so the runs diverge. *)
      for _ = 1 to n / 8 do
        swap order (Rng.int rng n) (Rng.int rng n)
      done;
      let cur = ref (consider order) in
      for it = 0 to iters - 1 do
        let i = Rng.int rng n and j = Rng.int rng n in
        if i <> j then begin
          swap order i j;
          let a = consider order in
          let temp =
            temp0 *. (1.0 -. (float_of_int it /. float_of_int iters))
          in
          let accept =
            a <= !cur
            || Rng.float rng
               < exp (-.float_of_int (a - !cur) /. (temp +. 1e-9))
          in
          if accept then cur := a else swap order i j
        end
      done
    done;
    if !best >= Assign.arena_size greedy then greedy
    else begin
      let out =
        Array.mapi
          (fun i s -> { s with Assign.offset = best_offs.(i) })
          slots
      in
      Array.sort (fun a b -> compare a.Assign.def_step b.Assign.def_step) out;
      let t = Assign.of_slots ~arena:!best (Array.to_list out) in
      Assign.validate t;
      t
    end
  end

let improvement _graph ~greedy ~solved =
  let g = Assign.arena_size greedy and s = Assign.arena_size solved in
  if g <= 0 then 0.0 else float_of_int (g - s) /. float_of_int g
