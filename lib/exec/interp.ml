open Echo_tensor
open Echo_ir

type feeds = (Node.t * Tensor.t) list

exception Missing_feed of string

let eval_node op out_shape inputs =
  let one () = match inputs with [ x ] -> x | _ -> invalid_arg "arity" in
  let two () = match inputs with [ x; y ] -> (x, y) | _ -> invalid_arg "arity" in
  match op with
  | Op.Placeholder | Op.Variable ->
    invalid_arg "Interp.eval_node: inputs have no semantics without a feed"
  | Op.Zeros -> Tensor.zeros out_shape
  | Op.ConstFill v -> Tensor.full out_shape v
  | Op.DropoutMask { p; seed } -> Tensor.dropout_mask ~seed ~p out_shape
  | Op.Neg -> Tensor.neg (one ())
  | Op.Scale k -> Tensor.scale k (one ())
  | Op.AddScalar k -> Tensor.add_scalar k (one ())
  | Op.PowConst p -> Tensor.pow_const p (one ())
  | Op.Sigmoid -> Tensor.sigmoid (one ())
  | Op.Tanh -> Tensor.tanh_ (one ())
  | Op.Relu -> Tensor.relu (one ())
  | Op.Exp -> Tensor.exp_ (one ())
  | Op.Log -> Tensor.log_ (one ())
  | Op.Sqrt -> Tensor.sqrt_ (one ())
  | Op.Sq -> Tensor.sq (one ())
  | Op.Recip -> Tensor.recip (one ())
  | Op.Sign -> Tensor.sign (one ())
  | Op.Add ->
    let x, y = two () in
    Tensor.add x y
  | Op.Sub ->
    let x, y = two () in
    Tensor.sub x y
  | Op.Mul ->
    let x, y = two () in
    Tensor.mul x y
  | Op.Div ->
    let x, y = two () in
    Tensor.div x y
  | Op.Matmul { trans_a; trans_b } ->
    let x, y = two () in
    Tensor.matmul ~trans_a ~trans_b x y
  | Op.AddBias ->
    let m, bias = two () in
    Tensor.add_bias m bias
  | Op.ScaleBy ->
    let x, s = two () in
    Tensor.scale (Tensor.get1 s 0) x
  | Op.Slice { axis; lo; hi } -> Tensor.slice ~axis ~lo ~hi (one ())
  | Op.PadSlice { axis; lo; full } -> Tensor.pad_slice ~axis ~lo ~full (one ())
  | Op.Concat { axis } -> Tensor.concat ~axis inputs
  | Op.Reshape s -> Tensor.reshape (one ()) s
  | Op.Transpose2d -> Tensor.transpose2d (one ())
  | Op.ReduceSum { axis; keepdims } -> Tensor.reduce_sum ~axis ~keepdims (one ())
  | Op.ReduceMean { axis; keepdims } -> Tensor.reduce_mean ~axis ~keepdims (one ())
  | Op.BroadcastAxis { axis; n } -> Tensor.broadcast_axis ~axis ~n (one ())
  | Op.Softmax -> Tensor.softmax (one ())
  | Op.LogSoftmax -> Tensor.log_softmax (one ())
  | Op.CrossEntropy ->
    let logits, labels = two () in
    Tensor.scalar (Tensor.cross_entropy ~logits ~labels)
  | Op.CrossEntropyGrad ->
    let logits, labels = two () in
    Tensor.cross_entropy_grad ~logits ~labels
  | Op.Embedding ->
    let table, ids = two () in
    Tensor.embedding ~table ~ids
  | Op.EmbeddingGrad { vocab = _ } ->
    let ids, grad_out = two () in
    Tensor.embedding_grad ~table_shape:out_shape ~ids ~grad_out
  | Op.Conv2d { stride; pad } ->
    let input, kernel = two () in
    Tensor.conv2d ~stride ~pad ~input ~kernel
  | Op.Conv2dGradInput { stride; pad; input_shape } ->
    let kernel, grad_out = two () in
    Tensor.conv2d_grad_input ~stride ~pad ~input_shape ~kernel ~grad_out
  | Op.Conv2dGradKernel { stride; pad; kernel_shape } ->
    let input, grad_out = two () in
    Tensor.conv2d_grad_kernel ~stride ~pad ~input ~kernel_shape ~grad_out

let eval_all graph ~feeds =
  let values : (int, Tensor.t) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (node, tensor) ->
      if not (Shape.equal (Node.shape node) (Tensor.shape tensor)) then
        invalid_arg
          (Printf.sprintf "Interp.eval: feed for %s has shape %s, node has %s"
             (Node.name node)
             (Shape.to_string (Tensor.shape tensor))
             (Shape.to_string (Node.shape node)));
      Hashtbl.replace values (Node.id node) tensor)
    feeds;
  (* Collect every unfed input before evaluating anything, so a model with
     several placeholders is debuggable in one shot. *)
  let missing =
    List.filter_map
      (fun node ->
        match Node.op node with
        | (Op.Placeholder | Op.Variable)
          when not (Hashtbl.mem values (Node.id node)) ->
          Some (Printf.sprintf "%s (#%d)" (Node.name node) (Node.id node))
        | _ -> None)
      (Graph.nodes graph)
  in
  if missing <> [] then raise (Missing_feed (String.concat ", " missing));
  List.iter
    (fun node ->
      if not (Hashtbl.mem values (Node.id node)) then begin
        match Node.op node with
        | Op.Placeholder | Op.Variable ->
          raise
            (Missing_feed
               (Printf.sprintf "%s (#%d)" (Node.name node) (Node.id node)))
        | op ->
          let inputs =
            List.map (fun i -> Hashtbl.find values (Node.id i)) (Node.inputs node)
          in
          Hashtbl.replace values (Node.id node)
            (eval_node op (Node.shape node) inputs)
      end)
    (Graph.nodes graph);
  values

let eval graph ~feeds =
  let values = eval_all graph ~feeds in
  List.map (fun o -> Hashtbl.find values (Node.id o)) (Graph.outputs graph)

let eval_scalar graph ~feeds =
  match eval graph ~feeds with
  | [ t ] when Shape.rank (Tensor.shape t) = 0 -> Tensor.get1 t 0
  | [ _ ] -> invalid_arg "Interp.eval_scalar: output is not a scalar"
  | _ -> invalid_arg "Interp.eval_scalar: graph has multiple outputs"
