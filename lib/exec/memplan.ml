open Echo_ir

type report = {
  arena_bytes : int;
  live_peak_bytes : int;
  peak_step : int;
  weight_bytes : int;
  input_bytes : int;
  stash_bytes : int;
  max_workspace_bytes : int;
  breakdown : (Category.t * int) list;
  node_count : int;
  step_of_backward_start : int option;
}

(* Elementwise operators may write their result into a dying input's buffer
   of the same size (MXNet's in-place optimisation). *)
let inplace_capable node =
  match Node.op node with
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.AddBias | Op.ScaleBy ->
    true
  | Op.Softmax | Op.LogSoftmax | Op.CrossEntropyGrad ->
    (* fused softmax/softmax-xent kernels overwrite their input *)
    true
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Matmul _ | Op.Slice _ | Op.PadSlice _ | Op.Concat _ | Op.Reshape _
  | Op.Transpose2d | Op.ReduceSum _ | Op.ReduceMean _ | Op.BroadcastAxis _
  | Op.CrossEntropy | Op.Embedding | Op.EmbeddingGrad _ | Op.Conv2d _
  | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

let plan ?(reuse = true) ?(inplace = true) ?fusion graph =
  let liveness = Liveness.analyse ?fusion graph in
  let schedule = Graph.nodes graph in
  (* Fused interiors never materialize: no allocation, no liveness, and the
     in-place candidates of a group root are the group's external inputs —
     the buffers its fused instruction actually reads. *)
  let interior node =
    match fusion with
    | Some f -> Fuse.is_interior f (Node.id node)
    | None -> false
  in
  let inplace_inputs node =
    match fusion with
    | Some f -> Fuse.inplace_candidates f node
    | None -> Node.inputs node
  in
  let weight_bytes = ref 0 and input_bytes = ref 0 in
  List.iter
    (fun n ->
      match Node.op n with
      | Op.Variable -> weight_bytes := !weight_bytes + Node.size_bytes n
      | Op.Placeholder -> input_bytes := !input_bytes + Node.size_bytes n
      | _ -> ())
    schedule;
  let persistent = !weight_bytes + !input_bytes in
  (* Exact-size free pool: size -> number of free buffers. *)
  let pool : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pool_take size =
    match Hashtbl.find_opt pool size with
    | Some n when n > 0 ->
      Hashtbl.replace pool size (n - 1);
      true
    | Some _ | None -> false
  in
  let pool_put size =
    Hashtbl.replace pool size (1 + try Hashtbl.find pool size with Not_found -> 0)
  in
  let category = Hashtbl.create 1024 in
  let cat_of n =
    match Hashtbl.find_opt category (Node.id n) with
    | Some c -> c
    | None ->
      let c = Category.of_node graph n in
      Hashtbl.replace category (Node.id n) c;
      c
  in
  let arena = ref 0 in
  let live = ref 0 in
  let live_by_cat = Array.make Category.count 0 in
  live_by_cat.(Category.index Category.Weights) <- !weight_bytes;
  live_by_cat.(Category.index Category.Inputs) <- !input_bytes;
  let live_peak = ref persistent and peak_step = ref 0 in
  let peak_breakdown = ref (Array.copy live_by_cat) in
  let peak_ws = ref 0 in
  let max_ws = ref 0 in
  let bwd_start = ref None in
  (* Inputs whose buffer was handed over to an in-place consumer: they must
     not be freed again when their death step is processed. *)
  let transferred : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let try_inplace step node liveness =
    inplace_capable node
    &&
    let size = Node.size_bytes node in
    let eligible input =
      (not (Liveness.is_persistent input))
      && Node.size_bytes input = size
      && (not (Hashtbl.mem transferred (Node.id input)))
      && (not (Graph.is_output graph (Node.id input)))
      &&
      match Liveness.interval liveness (Node.id input) with
      | itv -> itv.Liveness.last_step = step
      | exception Not_found -> false
    in
    match List.find_opt eligible (inplace_inputs node) with
    | None -> false
    | Some input ->
      Hashtbl.replace transferred (Node.id input) ();
      let from_cat = Category.index (cat_of input) in
      let to_cat = Category.index (cat_of node) in
      live_by_cat.(from_cat) <- live_by_cat.(from_cat) - size;
      live_by_cat.(to_cat) <- live_by_cat.(to_cat) + size;
      true
  in
  List.iteri
    (fun step node ->
      if !bwd_start = None && Node.region node = Node.Backward then
        bwd_start := Some step;
      if (not (Liveness.is_persistent node)) && not (interior node) then begin
        if not (inplace && try_inplace step node liveness) then begin
          let size = Node.size_bytes node in
          if not (reuse && pool_take size) then arena := !arena + size;
          live := !live + size;
          let ci = Category.index (cat_of node) in
          live_by_cat.(ci) <- live_by_cat.(ci) + size
        end
      end;
      let ws = Workspace.bytes node in
      if ws > !max_ws then max_ws := ws;
      let candidate = persistent + !live + ws in
      if candidate > !live_peak then begin
        live_peak := candidate;
        peak_step := step;
        peak_breakdown := Array.copy live_by_cat;
        peak_ws := ws
      end;
      List.iter
        (fun dying ->
          if not (Hashtbl.mem transferred (Node.id dying)) then begin
            let size = Node.size_bytes dying in
            live := !live - size;
            let ci = Category.index (cat_of dying) in
            live_by_cat.(ci) <- live_by_cat.(ci) - size;
            pool_put size
          end)
        (Liveness.dying_at liveness step))
    schedule;
  let breakdown_arr = !peak_breakdown in
  breakdown_arr.(Category.index Category.Workspace) <- !peak_ws;
  let breakdown =
    List.map (fun c -> (c, breakdown_arr.(Category.index c))) Category.all
  in
  {
    arena_bytes = persistent + !arena + !max_ws;
    live_peak_bytes = !live_peak;
    peak_step = !peak_step;
    weight_bytes = !weight_bytes;
    input_bytes = !input_bytes;
    stash_bytes = Liveness.stash_bytes liveness graph;
    max_workspace_bytes = !max_ws;
    breakdown;
    node_count = List.length schedule;
    step_of_backward_start = !bwd_start;
  }

let reduction_factor ~baseline optimised =
  float_of_int baseline.arena_bytes /. float_of_int optimised.arena_bytes

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let pp fmt r =
  Format.fprintf fmt
    "arena=%.1f MiB live_peak=%.1f MiB (step %d/%d) weights=%.1f MiB stash=%.1f \
     MiB ws=%.1f MiB"
    (mib r.arena_bytes) (mib r.live_peak_bytes) r.peak_step r.node_count
    (mib r.weight_bytes) (mib r.stash_bytes) (mib r.max_workspace_bytes)
