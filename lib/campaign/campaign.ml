open Echo_tensor
open Echo_ir
open Echo_models
module Fault = Echo_runtime.Fault
module Event = Echo_runtime.Event
module Loop = Echo_train.Loop
module Optimizer = Echo_train.Optimizer
module Planner = Echo_core.Planner
module Pass = Echo_core.Pass
module Mutate = Echo_analysis.Mutate
module Verify = Echo_analysis.Verify
module Sanitize = Echo_analysis.Sanitize
module Race = Echo_analysis.Race
module Pipeline = Echo_compiler.Pipeline
module Corpus = Echo_workloads.Corpus

let device = Echo_gpusim.Device.titan_xp

type outcome = Masked | Detected_recovered | Silent_data_corruption | Crash

let outcome_to_string = function
  | Masked -> "masked"
  | Detected_recovered -> "detected"
  | Silent_data_corruption -> "sdc"
  | Crash -> "crash"

type plan_mutation = Reseed_clone | Bad_clone_hint

type fault =
  | Runtime_fault of Fault.spec
  | Plan_fault of plan_mutation

let fault_to_string = function
  | Runtime_fault { Fault.step; kind } -> Fault.kind_to_string step kind
  | Plan_fault Reseed_clone -> "plan:clone-seed"
  | Plan_fault Bad_clone_hint -> "plan:clone-hint"

type config = { model : string; planner : string; fuse : bool; fault : fault }

type result = {
  config : config;
  outcome : outcome;
  verify_caught : bool option;
  race_caught : bool option;
}

type cell = {
  cell_model : string;
  cell_planner : string;
  masked : int;
  detected : int;
  sdc : int;
  crash : int;
  verify_caught : int;
  verify_total : int;
  race_caught : int;
  race_total : int;
}

type spec = { preset : string; steps : int; seed : int; out : string option }
type report = { spec : spec; results : result list; cells : cell list }

(* {1 Sweep space} *)

let zoo =
  [
    ("lstm-lm", Recurrent.Lstm);
    ("gru-lm", Recurrent.Gru);
    ("rnn-lm", Recurrent.Vanilla);
    ("peephole-lm", Recurrent.Peephole);
  ]

let models_of_preset = function
  | "mini" -> [ "lstm-lm" ]
  | _ -> List.map fst zoo

let planners_of_preset = function
  | "mini" -> [ "stash-all"; "checkpoint-sqrt"; "echo" ]
  | _ -> [ "stash-all"; "checkpoint-sqrt"; "dp-bptt"; "echo" ]

(* {1 Spec parsing} *)

let default_spec preset =
  match preset with
  | "mini" | "full" -> { preset; steps = 6; seed = 0; out = None }
  | p -> invalid_arg (Printf.sprintf "Campaign.default_spec: unknown preset %S" p)

let parse_spec text =
  let text = String.trim text in
  let name, args =
    match String.index_opt text ':' with
    | None -> (text, "")
    | Some i ->
      ( String.sub text 0 i,
        String.sub text (i + 1) (String.length text - i - 1) )
  in
  match name with
  | "mini" | "full" ->
    let base = default_spec name in
    let step kv acc =
      match acc with
      | Error _ as e -> e
      | Ok spec -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "campaign spec: %S is not key=value" kv)
        | Some eq ->
          let key = String.trim (String.sub kv 0 eq) in
          let v = String.trim (String.sub kv (eq + 1) (String.length kv - eq - 1)) in
          let int_v () =
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok n
            | _ -> Error (Printf.sprintf "campaign spec: %s=%S is not a non-negative integer" key v)
          in
          (match key with
          | "steps" -> (
            match int_v () with
            | Ok n when n > 0 -> Ok { spec with steps = n }
            | Ok _ -> Error "campaign spec: steps must be positive"
            | Error _ as e -> e)
          | "seed" -> Result.map (fun n -> { spec with seed = n }) (int_v ())
          | "out" -> Ok { spec with out = Some v }
          | _ -> Error (Printf.sprintf "campaign spec: unknown key %S (steps, seed, out)" key)))
    in
    List.fold_left
      (fun acc kv -> step kv acc)
      (Ok base)
      (List.filter
         (fun s -> String.trim s <> "")
         (String.split_on_char ',' args))
  | other ->
    Error
      (Printf.sprintf
         "campaign spec %S: unknown preset %S (mini or full, optionally \
          :steps=N,seed=N,out=PATH)"
         text other)

(* {1 One training run}

   Everything a run touches — model, corpus, graph, executor — is built
   fresh inside the call and seeded only by (spec, config), so runs are
   independent of scheduling order and safe to execute concurrently from
   pool domains. The inner kernel runtime is always sequential: the
   parallelism budget belongs to the orchestrator, and [parallel_for] must
   not nest. *)

let build_lm ~seed model =
  let cell =
    match List.assoc_opt model zoo with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Campaign: unknown model %S" model)
  in
  Language_model.build
    {
      Language_model.vocab = 60;
      embed = 12;
      hidden = 12;
      layers = 2;
      seq_len = 6;
      batch = 3;
      dropout = 0.2;
      cell;
      seed = 42 + seed;
    }

(* Batches plus the flattened parameter index of one embedding scalar the
   corpus never reads (a "dead memory" injection target: flipping it must
   be masked). The token stream is deterministic, so which rows are dead is
   a pure function of (seed, steps). *)
let data_for lm ~steps ~seed =
  let cfg = lm.Language_model.cfg in
  let corpus =
    Corpus.generate ~seed:(5 + seed) ~vocab:cfg.Language_model.vocab
      ~length:
        (((steps + 2) * cfg.Language_model.batch * cfg.Language_model.seq_len)
        + 1)
  in
  let pairs =
    Corpus.lm_batches corpus ~batch:cfg.Language_model.batch
      ~seq_len:cfg.Language_model.seq_len ~steps
  in
  let used = Array.make cfg.Language_model.vocab false in
  List.iter
    (fun (tokens, _) ->
      Array.iter
        (fun v -> used.(int_of_float v) <- true)
        (Tensor.to_array tokens))
    pairs;
  let dead_token =
    let rec scan i =
      if i >= Array.length used then None
      else if not used.(i) then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let dead_index =
    Option.bind dead_token (fun tok ->
        (* offset of the embedding table in the flattened parameter vector *)
        let rec locate off = function
          | [] -> None
          | (node, v) :: rest ->
            if Node.name node = "embed" then
              Some (off + (tok * cfg.Language_model.embed)
                    + (cfg.Language_model.embed / 2))
            else locate (off + Tensor.numel v) rest
        in
        locate 0 (Params.bindings lm.Language_model.model.Model.params))
  in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      pairs
  in
  (batches, dead_index)

(* The same site filter [Loop.train] uses: materialising non-elementwise
   forward nodes of the original training graph, in schedule order. *)
let act_site_count graph =
  List.length
    (List.filter
       (fun n ->
         (not (Fuse.elementwise n))
         &&
         match Node.op n with
         | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _
         | Op.DropoutMask _ ->
           false
         | _ -> true)
       (Graph.forward_nodes graph))

let train_once ~spec ~model ~fuse ~planner ~faults ~graph ~lm ?sanitize
    ~on_event () =
  let batches, _ = data_for lm ~steps:spec.steps ~seed:spec.seed in
  Loop.train ~graph
    ~params:(Params.bindings lm.Language_model.model.Model.params)
    ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.5 }))
    ~clip_norm:5.0 ~on_event ~faults ~device ~runtime:Parallel.sequential
    ~fuse ?sanitize ?planner ~batches ()
  |> fun r ->
  ignore model;
  r.Loop.losses

(* {1 Classification} *)

let bits_equal a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.bits_of_float a = Int64.bits_of_float b

let final = function [] -> None | losses -> Some (List.nth losses (List.length losses - 1))

let last_finite losses =
  List.fold_left
    (fun acc l -> if Float.is_finite l then Some l else acc)
    None losses

(* Total and mutually exclusive: exception -> Crash (Verify refusal ->
   Detected_recovered) is decided by the caller; here the run completed.
   Detection fired: converged back within tolerance -> Detected_recovered,
   else the detector did not protect the run -> corruption. Nothing fired:
   bit-identical final loss -> Masked, else silent corruption. *)
let classify ~golden ~events losses =
  let detected = List.exists Event.is_detection events in
  let g_final = final golden in
  if detected then
    match (last_finite losses, g_final) with
    | Some l, Some g when Float.abs (l -. g) <= 0.1 *. Float.max 1.0 (Float.abs g)
      ->
      Detected_recovered
    | _ -> Silent_data_corruption
  else
    match (final losses, g_final) with
    | Some l, Some g
      when List.length losses = List.length golden && bits_equal l g ->
      Masked
    | None, None -> Masked
    | _ -> Silent_data_corruption

(* {1 Golden runs} *)

type golden = {
  g_losses : float list;
  g_sites : int;
  g_dead : int option;
  g_reseed : bool;  (** the rewritten graph offers a clone-reseed site *)
  g_hint : bool;  (** ... a clone-hint site *)
}

let golden_for ~spec ~model ~planner ~fuse =
  let lm = build_lm ~seed:spec.seed model in
  let graph =
    (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
  in
  let inst = Planner.instantiate planner in
  let rw, _ = Pass.run_instance ~device inst graph in
  let _, dead = data_for lm ~steps:spec.steps ~seed:spec.seed in
  let losses =
    train_once ~spec ~model ~fuse ~planner:(Some inst) ~faults:Fault.none
      ~graph ~lm ~on_event:ignore ()
  in
  {
    g_losses = losses;
    g_sites = act_site_count graph;
    g_dead = dead;
    g_reseed = Mutate.reseed_clone rw <> None;
    g_hint = Mutate.bad_clone_hint rw <> None;
  }

(* {1 Fault menu}

   Ten faults per (model, planner, fusion) cell, spanning the upset
   taxonomy: parameter flips at mantissa/exponent/dead-memory bits,
   activation flips at two sites and magnitudes, an op-level transient, a
   NaN poisoning, and the two plan corruptions (with deterministic
   runtime-fault substitutes on planners whose plans offer no mutation
   site, so every cell sees the same number of configurations). *)
let menu ~spec (g : golden) =
  let site k = k mod max 1 g.g_sites in
  let rt step kind = Runtime_fault { Fault.step; kind } in
  let dead_flip =
    match g.g_dead with
    | Some index -> rt 2 (Fault.Flip_param { index; bit = 52 })
    (* no dead row this seed: schedule the upset past the last executed
       step — an injection outside the run's window, masked by design *)
    | None -> rt spec.steps (Fault.Flip_param { index = 0; bit = 52 })
  in
  [
    rt 2 (Fault.Flip_param { index = 1009 + spec.seed; bit = 1 });
    rt 3 (Fault.Flip_param { index = 2003 + spec.seed; bit = 52 });
    rt 1 (Fault.Flip_param { index = 7; bit = 62 });
    dead_flip;
    rt 2 (Fault.Flip_act { site = site 5; index = 11; bit = 50 });
    rt 1 (Fault.Flip_act { site = site 13; index = 0; bit = 62 });
    rt 2 (Fault.Transient "campaign");
    rt 3 Fault.Nan_poison;
    (if g.g_reseed then Plan_fault Reseed_clone
     else rt 4 (Fault.Flip_act { site = site 3; index = 3; bit = 61 }));
    (if g.g_hint then Plan_fault Bad_clone_hint
     else rt 4 (Fault.Flip_param { index = 123 + spec.seed; bit = 8 }));
  ]

(* {1 Execution} *)

(* The dynamic cross-check: replay a flip fault under the Full-mode
   shadow-memory sanitizer ({!Echo_analysis.Sanitize}) and record whether
   it trips. An activation flip lands in the executor arena mid-run and
   surfaces as a foreign write at the next instruction; a parameter flip
   mutates persistent state outside the arena the sanitizer shadows and is
   (correctly) invisible to it. The probe is a fresh run, independent of
   the classified one, so detection never perturbs the outcome taxonomy;
   it stops at the first step that can observe the flip. *)
let sanitizer_probe ~spec ~c s =
  let probe_spec = { spec with steps = min spec.steps (s.Fault.step + 2) } in
  try
    let lm = build_lm ~seed:spec.seed c.model in
    let graph =
      (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
    in
    let inst = Planner.instantiate c.planner in
    ignore
      (train_once ~spec:probe_spec ~model:c.model ~fuse:c.fuse
         ~planner:(Some inst) ~faults:(Fault.of_specs [ s ]) ~graph ~lm
         ~sanitize:Sanitize.Full ~on_event:ignore ());
    Some false
  with
  | Sanitize.Sanitize_failed _ -> Some true
  | _ -> None

(* The static cross-check for plan faults: compile the corrupted graph
   off the verify gate and ask {!Pipeline.race_verify} directly. Clone
   corruptions are semantic (wrong seed, wrong hint), not races — the
   column documents that the race layer is orthogonal to them while
   {!Verify.lint} (the verify column) catches them. Under [ECHO_VERIFY=1]
   the compile itself may be refused; the race verdict is then read off
   the refusal report's race-check findings. *)
let race_static ~fuse graph =
  let race_checks =
    [
      "race-partition"; "race-sharing"; "race-alias"; "race-fused";
      "race-liveness"; "race-address";
    ]
  in
  try
    let exe = Pipeline.compile_graph ~runtime:Parallel.sequential ~fuse graph in
    Some (Echo_diag.Report.has_errors (Pipeline.race_verify exe))
  with
  | Verify.Verify_failed report ->
    Some
      (List.exists
         (fun check ->
           List.exists
             (fun d -> d.Echo_diag.severity = Echo_diag.Error)
             (Echo_diag.Report.with_check check report))
         race_checks)
  | _ -> None

let run_config ~spec ~golden c =
  let events = ref [] in
  let on_event e = events := e :: !events in
  let verify_caught = ref None in
  let race_caught = ref None in
  let outcome =
    match
      let lm = build_lm ~seed:spec.seed c.model in
      let graph =
        (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph
      in
      let inst = Planner.instantiate c.planner in
      match c.fault with
      | Runtime_fault s ->
        (match s.Fault.kind with
        | Fault.Flip_param _ | Fault.Flip_act _ ->
          race_caught := sanitizer_probe ~spec ~c s
        | _ -> ());
        train_once ~spec ~model:c.model ~fuse:c.fuse ~planner:(Some inst)
          ~faults:(Fault.of_specs [ s ]) ~graph ~lm ~on_event ()
      | Plan_fault m ->
        let rw, _ = Pass.run_instance ~device inst graph in
        let mutated =
          match
            (match m with
            | Reseed_clone -> Mutate.reseed_clone rw
            | Bad_clone_hint -> Mutate.bad_clone_hint rw)
          with
          | Some g -> g
          | None ->
            failwith "campaign: plan mutation lost its site between phases"
        in
        (* The cross-check column: would the static sanitizer have refused
           this artifact? Checked directly, independent of ECHO_VERIFY. *)
        verify_caught :=
          Some (Echo_diag.Report.has_errors (Verify.lint mutated));
        race_caught := race_static ~fuse:c.fuse mutated;
        train_once ~spec ~model:c.model ~fuse:c.fuse ~planner:None
          ~faults:Fault.none ~graph:mutated ~lm ~on_event ()
    with
    | losses -> classify ~golden:golden.g_losses ~events:!events losses
    | exception Verify.Verify_failed _ ->
      (* ECHO_VERIFY=1 self-certification refused the corrupted compile:
         the fault was detected before a single step ran. *)
      Detected_recovered
    | exception _ -> Crash
  in
  { config = c; outcome; verify_caught = !verify_caught;
    race_caught = !race_caught }

(* Fan [f 0 .. f (n-1)] out across the pool. Each task writes only its own
   result slot, so work stealing cannot perturb the report. The huge work
   hint defeats the small-loop gate: these are whole training runs, not
   kernel rows. *)
let parallel_each pool n f =
  if n > 0 then
    Parallel.parallel_for pool ~work:(1 lsl 30) ~n (fun lo hi ->
        for i = lo to hi - 1 do
          f i
        done)

let run ?pool spec =
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let models = models_of_preset spec.preset in
  let planners = planners_of_preset spec.preset in
  let combos =
    List.concat_map
      (fun model ->
        List.concat_map
          (fun planner ->
            [ (model, planner, false); (model, planner, true) ])
          planners)
      models
  in
  let combos = Array.of_list combos in
  let goldens = Array.make (Array.length combos) None in
  parallel_each pool (Array.length combos) (fun i ->
      let model, planner, fuse = combos.(i) in
      goldens.(i) <-
        Some
          (try Ok (golden_for ~spec ~model ~planner ~fuse)
           with e -> Error (Printexc.to_string e)));
  let golden_of i =
    match goldens.(i) with
    | Some (Ok g) -> g
    | Some (Error msg) ->
      let model, planner, fuse = combos.(i) in
      failwith
        (Printf.sprintf "campaign golden run %s/%s/%s failed: %s" model
           planner
           (if fuse then "fused" else "unfused")
           msg)
    | None -> assert false
  in
  let configs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i (model, planner, fuse) ->
              List.map
                (fun fault -> ((model, planner, fuse, fault), i))
                (menu ~spec (golden_of i)))
            (Array.to_list combos)))
  in
  let results = Array.make (Array.length configs) None in
  parallel_each pool (Array.length configs) (fun i ->
      let (model, planner, fuse, fault), gi = configs.(i) in
      results.(i) <-
        Some
          (run_config ~spec ~golden:(golden_of gi)
             { model; planner; fuse; fault }));
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         results)
  in
  let cells =
    List.concat_map
      (fun model ->
        List.map
          (fun planner ->
            List.fold_left
              (fun cell r ->
                if r.config.model <> model || r.config.planner <> planner then
                  cell
                else
                  let cell =
                    match r.outcome with
                    | Masked -> { cell with masked = cell.masked + 1 }
                    | Detected_recovered ->
                      { cell with detected = cell.detected + 1 }
                    | Silent_data_corruption -> { cell with sdc = cell.sdc + 1 }
                    | Crash -> { cell with crash = cell.crash + 1 }
                  in
                  let cell =
                    match r.verify_caught with
                    | None -> (
                      match r.config.fault with
                      | Plan_fault _ ->
                        (* the compile was refused before the direct lint
                           ran: ECHO_VERIFY counts as a static catch *)
                        {
                          cell with
                          verify_total = cell.verify_total + 1;
                          verify_caught =
                            (cell.verify_caught
                            + if r.outcome = Detected_recovered then 1 else 0);
                        }
                      | Runtime_fault _ -> cell)
                    | Some caught ->
                      {
                        cell with
                        verify_total = cell.verify_total + 1;
                        verify_caught =
                          (cell.verify_caught + if caught then 1 else 0);
                      }
                  in
                  match r.race_caught with
                  | None -> cell
                  | Some caught ->
                    {
                      cell with
                      race_total = cell.race_total + 1;
                      race_caught =
                        (cell.race_caught + if caught then 1 else 0);
                    })
              {
                cell_model = model;
                cell_planner = planner;
                masked = 0;
                detected = 0;
                sdc = 0;
                crash = 0;
                verify_caught = 0;
                verify_total = 0;
                race_caught = 0;
                race_total = 0;
              }
              results)
          planners)
      models
  in
  { spec; results; cells }

(* {1 Rendering} *)

let summary r =
  let b = Buffer.create 2048 in
  let models = models_of_preset r.spec.preset in
  let planners = planners_of_preset r.spec.preset in
  Printf.bprintf b
    "campaign %s: %d configurations, %d model(s) x %d planner(s), \
     fused+unfused, steps=%d, seed=%d\n"
    r.spec.preset
    (List.length r.results)
    (List.length models) (List.length planners) r.spec.steps r.spec.seed;
  Printf.bprintf b "%-14s %-16s %7s %9s %5s %6s %8s %8s\n" "model" "planner"
    "masked" "detected" "sdc" "crash" "verify" "race";
  List.iter
    (fun c ->
      Printf.bprintf b "%-14s %-16s %7d %9d %5d %6d %8s %8s\n" c.cell_model
        c.cell_planner c.masked c.detected c.sdc c.crash
        (if c.verify_total = 0 then "-"
         else Printf.sprintf "%d/%d" c.verify_caught c.verify_total)
        (if c.race_total = 0 then "-"
         else Printf.sprintf "%d/%d" c.race_caught c.race_total))
    r.cells;
  let tm, td, ts, tc, vc, vt, rc, rt =
    List.fold_left
      (fun (m, d, s, c, vc, vt, rc, rt) cell ->
        ( m + cell.masked,
          d + cell.detected,
          s + cell.sdc,
          c + cell.crash,
          vc + cell.verify_caught,
          vt + cell.verify_total,
          rc + cell.race_caught,
          rt + cell.race_total ))
      (0, 0, 0, 0, 0, 0, 0, 0) r.cells
  in
  Printf.bprintf b "%-14s %-16s %7d %9d %5d %6d %8s %8s\n" "total" "" tm td ts
    tc
    (if vt = 0 then "-" else Printf.sprintf "%d/%d" vc vt)
    (if rt = 0 then "-" else Printf.sprintf "%d/%d" rc rt);
  Printf.bprintf b
    "echo-verify flagged %d of %d plan-corrupting faults statically\n" vc vt;
  Printf.bprintf b
    "race/sanitizer cross-check flagged %d of %d memory-upsetting faults\n" rc
    rt;
  Buffer.contents b

let detail_lines r =
  List.map
    (fun res ->
      Printf.sprintf "%s/%s/%s %s -> %s%s" res.config.model res.config.planner
        (if res.config.fuse then "fused" else "unfused")
        (fault_to_string res.config.fault)
        (outcome_to_string res.outcome)
        (match res.verify_caught with
        | None -> ""
        | Some true -> " [verify:caught]"
        | Some false -> " [verify:missed]")
        ^
        match res.race_caught with
        | None -> ""
        | Some true -> " [race:caught]"
        | Some false -> " [race:missed]")
    r.results

let json_fields r =
  let cell_fields c =
    let key k = Printf.sprintf "%s/%s/%s" c.cell_model c.cell_planner k in
    [
      (key "masked", float_of_int c.masked);
      (key "detected", float_of_int c.detected);
      (key "sdc", float_of_int c.sdc);
      (key "crash", float_of_int c.crash);
      (key "verify_caught", float_of_int c.verify_caught);
      (key "verify_total", float_of_int c.verify_total);
      (key "race_caught", float_of_int c.race_caught);
      (key "race_total", float_of_int c.race_total);
    ]
  in
  let tm, td, ts, tc, vc, vt, rc, rt =
    List.fold_left
      (fun (m, d, s, c, vcaught, vtotal, rcaught, rtotal) cell ->
        ( m + cell.masked,
          d + cell.detected,
          s + cell.sdc,
          c + cell.crash,
          vcaught + cell.verify_caught,
          vtotal + cell.verify_total,
          rcaught + cell.race_caught,
          rtotal + cell.race_total ))
      (0, 0, 0, 0, 0, 0, 0, 0) r.cells
  in
  List.concat_map cell_fields r.cells
  @ [
      ("total/configs", float_of_int (List.length r.results));
      ("total/masked", float_of_int tm);
      ("total/detected", float_of_int td);
      ("total/sdc", float_of_int ts);
      ("total/crash", float_of_int tc);
      ("total/verify_caught", float_of_int vc);
      ("total/verify_total", float_of_int vt);
      ("total/race_caught", float_of_int rc);
      ("total/race_total", float_of_int rt);
    ]
