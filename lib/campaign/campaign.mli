(** Fault-injection campaigns: the gpuFI-4-style resilience-measurement
    instrument over the deterministic fault runtime.

    A campaign enumerates a sweep of injection configurations — fault kind
    × injection site × step × model × planner × fusion — executes each as
    an independent short training run scheduled across the
    {!Echo_tensor.Parallel} domain pool, compares it against a cached
    golden (unfaulted) run of the same (model, planner, fusion)
    configuration, and classifies every outcome into exactly one of four
    buckets:

    - {!Masked} — the run completed, nothing fired, and the final loss is
      bit-identical to golden: the upset never reached the training
      trajectory.
    - {!Detected_recovered} — a detector fired (retry, skip, NaN guard,
      budget hit/replan, or Echo-verify refusing the compile under
      [ECHO_VERIFY=1]) and the final loss converged back to within
      tolerance of golden.
    - {!Silent_data_corruption} — the run completed but its trajectory
      diverged from golden and either nothing fired, or a detector fired
      without protecting the run (detected-but-diverged counts as
      corruption: the signal existed but the outcome is still wrong).
    - {!Crash} — the run raised.

    Every ingredient is deterministic — fault plans, model seeds, corpus,
    kernels — and each configuration runs on a {e sequential} inner kernel
    runtime with all shared state confined to its own run, so the
    resulting report is byte-identical across repeated runs and at every
    orchestrator domain count.

    Plan-corrupting faults (clone reseed / clone hint mutations from
    {!Echo_analysis.Mutate}) additionally record whether the Echo-verify
    static sanitizer flags the corrupted artifact — the report's
    cross-check column tying the campaign back to translation
    validation.

    A second cross-check column ties the campaign to the race-verify
    layer: every bit-flip fault is replayed under the Full-mode
    shadow-memory sanitizer ({!Echo_analysis.Sanitize}) and every plan
    fault is checked by the static race analysis
    ({!Echo_compiler.Pipeline.race_verify}). The column measures the
    layer's real coverage boundary — activation flips surface as foreign
    writes in the shadowed arena, while parameter flips live outside it
    and clone corruptions are semantic rather than racy, so both are
    (correctly) missed. *)

type outcome = Masked | Detected_recovered | Silent_data_corruption | Crash

val outcome_to_string : outcome -> string
(** ["masked"], ["detected"], ["sdc"], ["crash"]. *)

type plan_mutation =
  | Reseed_clone
      (** a recomputation clone's DropoutMask seed diverges from its
          original ({!Echo_analysis.Mutate.reseed_clone}) — recomputed
          gradients silently differ unless caught *)
  | Bad_clone_hint
      (** a clone's scheduling hint is pushed past its earliest consumer
          ({!Echo_analysis.Mutate.bad_clone_hint}) — execution-neutral, but
          the plan no longer proves just-in-time recomputation *)

type fault =
  | Runtime_fault of Echo_runtime.Fault.spec
      (** injected through the training loop's deterministic fault plan *)
  | Plan_fault of plan_mutation
      (** the compiled plan artifact itself is corrupted before training *)

val fault_to_string : fault -> string

type config = {
  model : string;  (** model-zoo id, e.g. ["lstm-lm"] *)
  planner : string;  (** {!Echo_core.Planner} registry name *)
  fuse : bool;
  fault : fault;
}

type result = {
  config : config;
  outcome : outcome;
  verify_caught : bool option;
      (** [Some true] iff this is a plan fault and {!Echo_analysis.Verify}
          reported an error on the corrupted artifact; [None] for runtime
          faults (there is no static artifact to check) *)
  race_caught : bool option;
      (** the race-verify cross-check: for a bit-flip fault, [Some true]
          iff a Full-mode sanitizer replay raised
          {!Echo_analysis.Sanitize.Sanitize_failed}; for a plan fault,
          iff the static race analysis reported an error on the corrupted
          artifact; [None] for transient/NaN faults (no memory upset to
          observe) or when the probe itself crashed *)
}

type cell = {
  cell_model : string;
  cell_planner : string;
  masked : int;
  detected : int;
  sdc : int;
  crash : int;
  verify_caught : int;  (** plan faults the sanitizer flagged *)
  verify_total : int;  (** plan faults attempted in this cell *)
  race_caught : int;
      (** faults the race checker or shadow-memory sanitizer flagged *)
  race_total : int;  (** faults the race/sanitizer cross-check probed *)
}
(** One row of the resilience report: the outcome histogram of every
    configuration sharing (model, planner), fused and unfused merged. *)

type spec = {
  preset : string;  (** ["mini"] or ["full"] *)
  steps : int;  (** training steps per configuration *)
  seed : int;  (** perturbs model init and flip indices *)
  out : string option;  (** report file for [echoc --campaign] *)
}

type report = {
  spec : spec;
  results : result list;  (** every configuration, in enumeration order *)
  cells : cell list;  (** model-major, planner-minor *)
}

val parse_spec : string -> (spec, string) Stdlib.result
(** Parse a campaign spec: [PRESET] or [PRESET:key=v,...] where PRESET is
    [mini] (one model × three planners — the runtest configuration) or
    [full] (the whole LM zoo × four planners, ≥ 200 configurations) and
    keys are [steps], [seed] and [out]. *)

val default_spec : string -> spec
(** The named preset with default knobs. @raise Invalid_argument on an
    unknown preset. *)

val run : ?pool:Echo_tensor.Parallel.t -> spec -> report
(** Execute the campaign: golden runs first, then every faulted
    configuration, both phases scheduled across [pool] (default
    {!Echo_tensor.Parallel.default}). Every configuration is classified —
    a run that raises classifies as {!Crash}; nothing escapes. The report
    is a pure function of [spec]: independent of [pool]'s domain count,
    of scheduling order, and of earlier campaigns in the same process. *)

val summary : report -> string
(** The per-(model × planner) resilience table plus totals, as a
    deterministic multi-line string — what [echoc --campaign] prints and
    the reproducibility test compares byte-for-byte. *)

val detail_lines : report -> string list
(** One line per configuration (fault, outcome, verify and race/sanitizer
    verdicts), in enumeration order — the report file's appendix. *)

val json_fields : report -> (string * float) list
(** The BENCH_E20 payload: per-cell histogram counts
    ([MODEL/PLANNER/OUTCOME]), per-cell verify counters, and campaign
    totals, in deterministic order. *)
