open Echo_tensor
open Echo_ir

type config = {
  batch : int;
  time : int;
  freq : int;
  conv_channels : int;
  rnn_hidden : int;
  rnn_layers : int;
  bidirectional : bool;
  classes : int;
  dropout : float;
  seed : int;
}

let ds2_like =
  {
    batch = 16;
    time = 400;
    freq = 64;
    conv_channels = 32;
    rnn_hidden = 800;
    rnn_layers = 5;
    bidirectional = true;
    classes = 29;
    dropout = 0.1;
    seed = 11;
  }

type t = {
  model : Model.t;
  spectrogram : Node.t;
  label_input : Node.t;
  out_frames : int;
  cfg : config;
}

let conv_block params name ~in_channels ~out_channels ~stride ~pad x =
  let kernel =
    Params.normal params (name ^ ".kernel") ~std:0.05
      [| out_channels; in_channels; 5; 5 |]
  in
  Node.relu ~name:(name ^ ".relu") (Node.conv2d ~stride ~pad ~input:x ~kernel)

(* One recurrent sweep; [reverse] runs right-to-left over the slices. *)
let sweep params name cfg ~input_dim ~reverse xs =
  let rnn_cfg =
    {
      Recurrent.kind = Recurrent.Lstm;
      input_dim;
      hidden = cfg.rnn_hidden;
      layers = 1;
      dropout = cfg.dropout;
      (* Stable across processes and stdlib versions (unlike Hashtbl.hash),
         so the derived parameter stream — and any cache key downstream of
         it — never shifts under a toolchain bump. *)
      seed = cfg.seed + (Rng.fnv1a name mod 100_000);
    }
  in
  let xs = if reverse then List.rev xs else xs in
  let outs = Recurrent.unroll params name rnn_cfg ~batch:cfg.batch ~xs in
  if reverse then List.rev outs else outs

let build cfg =
  let params = Params.create ~seed:cfg.seed in
  let spectrogram =
    Node.placeholder ~name:"spectrogram" [| cfg.batch; 1; cfg.time; cfg.freq |]
  in
  let c1 =
    conv_block params "conv1" ~in_channels:1 ~out_channels:cfg.conv_channels
      ~stride:2 ~pad:2 spectrogram
  in
  let c2 =
    conv_block params "conv2" ~in_channels:cfg.conv_channels
      ~out_channels:cfg.conv_channels ~stride:2 ~pad:2 c1
  in
  let out_frames = Shape.dim (Node.shape c2) 2 in
  let freq' = Shape.dim (Node.shape c2) 3 in
  let feat_dim = cfg.conv_channels * freq' in
  (* Each time frame becomes a [B x (C * F')] activation. Row-major layout
     of [B; C; 1; F'] flattens to exactly that matrix. *)
  let frames =
    List.init out_frames (fun t ->
      Node.reshape [| cfg.batch; feat_dim |]
        (Node.slice ~axis:2 ~lo:t ~hi:(t + 1) c2))
  in
  let run_layer l xs ~input_dim =
    if cfg.bidirectional then begin
      let fwd =
        sweep params (Printf.sprintf "birnn%d.f" l) cfg ~input_dim ~reverse:false xs
      in
      let bwd =
        sweep params (Printf.sprintf "birnn%d.b" l) cfg ~input_dim ~reverse:true xs
      in
      List.map2 (fun f bk -> Node.concat ~axis:1 [ f; bk ]) fwd bwd
    end
    else sweep params (Printf.sprintf "rnn%d" l) cfg ~input_dim ~reverse:false xs
  in
  let rec stack l xs ~input_dim =
    if l >= cfg.rnn_layers then xs
    else begin
      let outs = run_layer l xs ~input_dim in
      let width = if cfg.bidirectional then 2 * cfg.rnn_hidden else cfg.rnn_hidden in
      stack (l + 1) outs ~input_dim:width
    end
  in
  let tops = stack 0 frames ~input_dim:feat_dim in
  let top_dim = if cfg.bidirectional then 2 * cfg.rnn_hidden else cfg.rnn_hidden in
  let w_out = Params.xavier params "classify.w" [| cfg.classes; top_dim |] in
  let b_out = Params.zeros params "classify.b" [| cfg.classes |] in
  let label_input =
    Node.placeholder ~name:"align" [| out_frames * cfg.batch |]
  in
  let flat = Node.concat ~name:"tops" ~axis:0 tops in
  let logits =
    Node.add_bias ~name:"logits" (Node.matmul ~trans_b:true flat w_out) b_out
  in
  let loss = Node.cross_entropy ~logits ~labels:label_input in
  {
    model =
      {
        Model.name = (if cfg.bidirectional then "deepspeech2" else "deepspeech2-uni");
        params;
        placeholders = [ spectrogram; label_input ];
        loss;
      };
    spectrogram;
    label_input;
    out_frames;
    cfg;
  }
