(** Numerical gradient checking against the symbolic backward pass.

    Both sides run through the compiled executor: the training graph is
    compiled once for the analytic gradients, and the loss graph is compiled
    once per parameter for the central finite differences — each perturbation
    is then a single zero-allocation executor sweep instead of a fresh
    interpreter walk. *)

open Echo_tensor
open Echo_ir
open Echo_exec

type result = {
  param : string;
  max_abs_err : float;  (** max |analytic - numeric| over elements *)
  max_rel_err : float;  (** relative to max(1, |numeric|) per element *)
}

val numeric_grad :
  loss:Node.t -> feeds:Interp.feeds -> wrt:Node.t -> eps:float -> Tensor.t
(** Central finite differences of the loss w.r.t. one fed tensor. *)

val check :
  ?eps:float ->
  ?tol:float ->
  loss:Node.t ->
  feeds:Interp.feeds ->
  wrt:Node.t list ->
  unit ->
  (result list, result list) Stdlib.result
(** Differentiate [loss] symbolically, evaluate both gradients under [feeds],
    and compare. [Ok] when every parameter's [max_rel_err <= tol]
    (default [tol = 1e-5], [eps = 1e-5]); [Error] carries the offenders. *)
