open Echo_ir

type source = {
  name : string;
  loss : Node.t;
  params : Node.t list;
  placeholders : Node.t list;
}

let source ?(name = "anonymous") ?(placeholders = []) ~loss ~params () =
  { name; loss; params; placeholders }

let of_model (m : Echo_models.Model.t) =
  {
    name = m.Echo_models.Model.name;
    loss = m.Echo_models.Model.loss;
    params = Echo_models.Params.variables m.Echo_models.Model.params;
    placeholders = m.Echo_models.Model.placeholders;
  }

let forward_graph s = Graph.create [ s.loss ]

type training = { source : source; autodiff : Echo_autodiff.Grad.training }

let differentiate s =
  {
    source = s;
    autodiff = Echo_autodiff.Grad.differentiate ~loss:s.loss ~wrt:s.params;
  }

type optimized = {
  training : training;
  graph : Graph.t;
  opt_stats : Echo_opt.Pipeline.stats option;
}

let optimize ?(enabled = true) (t : training) =
  if enabled then begin
    let graph, stats = Echo_opt.Pipeline.run t.autodiff.Echo_autodiff.Grad.graph in
    { training = t; graph; opt_stats = Some stats }
  end
  else
    { training = t; graph = t.autodiff.Echo_autodiff.Grad.graph; opt_stats = None }

let of_training_graph ?(name = "pre-built") graph =
  let outputs = Graph.outputs graph in
  let loss =
    match outputs with
    | loss :: _ -> loss
    | [] -> invalid_arg "Pipeline.of_training_graph: graph has no outputs"
  in
  let src = { name; loss; params = []; placeholders = [] } in
  { source = src; autodiff = { Echo_autodiff.Grad.loss; grads = []; graph } }

type rewritten = {
  optimized : optimized;
  graph : Graph.t;
  planner : Echo_core.Planner.instance;
  report : Echo_core.Pass.report;
}

let rewrite ?(device = Echo_gpusim.Device.titan_xp) ?policy ?planner
    (opt : optimized) =
  let planner =
    match (planner, policy) with
    | Some i, _ -> i
    | None, Some p -> Echo_core.Pass.instance_of_policy p
    | None, None -> Echo_core.Planner.instantiate "stash-all"
  in
  let graph, report = Echo_core.Pass.run_instance ~device planner opt.graph in
  { optimized = opt; graph; planner; report }

type planned = {
  rewritten : rewritten;
  graph : Graph.t;
  liveness : Echo_exec.Liveness.t;
  memplan : Echo_exec.Memplan.report;
  offsets : Echo_exec.Assign.t option;
}

let plan ?(offsets = false) (rw : rewritten) =
  {
    rewritten = rw;
    graph = rw.graph;
    liveness = Echo_exec.Liveness.analyse rw.graph;
    (* The rewrite stage already measured the rewritten graph; reuse it
       rather than planning a third time. *)
    memplan = rw.report.Echo_core.Pass.optimised_mem;
    offsets =
      (* The planner owns the static offset assigner: greedy best-fit
         unless it overrides it (the OLLA-style arena solver does). *)
      (if offsets then Some (Echo_core.Planner.assigner rw.planner rw.graph)
       else None);
  }

type fused = {
  planned : planned;
  graph : Graph.t;
  fusion : Fuse.plan option;
  fused_memplan : Echo_exec.Memplan.report;
}

let fuse ?enabled ?runtime (pl : planned) =
  let enabled =
    match enabled with Some e -> e | None -> Fuse.env_enabled ()
  in
  if enabled then begin
    (* When the target runtime is known, drop groups the parallel-aware
       host cost model predicts to lose wall-clock under that runtime's
       fan-out gate and domain count (a dropped group's members compile as
       ordinary instructions). Under the default configuration fusing is
       never predicted to lose — the merged kernel's fan-out gain always
       covers its fan-out overhead at the default gate — so this valve
       only bites on handles with unusual configurations. *)
    let keep =
      match runtime with
      | None -> fun _ -> true
      | Some rt -> Echo_opt.Fusion.profitable (Echo_opt.Fusion.of_runtime rt)
    in
    let f = Fuse.analyse ~keep pl.graph in
    {
      planned = pl;
      graph = pl.graph;
      fusion = Some f;
      fused_memplan = Echo_exec.Memplan.plan ~fusion:f pl.graph;
    }
  end
  else
    (* Stage disabled: the fused plan is the unfused plan. *)
    { planned = pl; graph = pl.graph; fusion = None; fused_memplan = pl.memplan }

(* Alias so shorthands can take a [?fuse] flag without shadowing the stage. *)
let fuse_stage = fuse

type executable = { fused : fused; executor : Executor.t }

(* The verification layer: every stage re-proven by the independent
   checkers of Echo_analysis.Verify. Later stages verify everything the
   earlier ones do plus their own artifact; the planned stage computes the
   offset assignment itself when the caller skipped it, so a [verify] is
   never weaker than the stage allows. *)
type stage =
  | Source of source
  | Training of training
  | Optimized of optimized
  | Rewritten of rewritten
  | Planned of planned
  | Fused of fused
  | Executable of executable

let verify stage =
  match stage with
  | Source s -> Echo_analysis.Verify.lint (forward_graph s)
  | Training t -> Echo_analysis.Verify.lint t.autodiff.Echo_autodiff.Grad.graph
  | Optimized o -> Echo_analysis.Verify.lint o.graph
  | Rewritten r -> Echo_analysis.Verify.lint r.graph
  | Planned pl ->
    let offsets =
      match pl.offsets with
      | Some a -> a
      | None -> Echo_core.Planner.assigner pl.rewritten.planner pl.graph
    in
    Echo_analysis.Verify.lint ~offsets pl.graph
  | Fused f ->
    Echo_analysis.Verify.lint ?fusion:f.fusion
      ?offsets:f.planned.offsets f.graph
  | Executable e ->
    let f = e.fused in
    Echo_analysis.Verify.lint ?fusion:f.fusion ?offsets:f.planned.offsets
      ~binding:(Executor.buffer_binding e.executor)
      ~fallback_count:(Executor.interp_fallback_count e.executor)
      f.graph

(* The race checker over a compiled executable: every artifact the
   executor actually carries — its runtime, fusion plan, buffer binding
   and the liveness intervals it frees against — handed to
   [Race.check]. *)
let race_verify e =
  let f = e.fused in
  let executor = e.executor in
  let intervals =
    List.map
      (fun itv ->
        Echo_exec.Liveness.
          (Node.id itv.node, itv.def_step, itv.last_step))
      (Echo_exec.Liveness.intervals
         (Echo_exec.Liveness.analyse ?fusion:f.fusion f.graph))
  in
  Echo_analysis.Race.check ?fusion:f.fusion ~intervals
    ~binding:(Executor.buffer_binding executor)
    ~runtime:(Executor.runtime executor) f.graph

let compile ?budget_bytes ?runtime ?sanitize (f : fused) =
  let e =
    {
      fused = f;
      executor =
        Executor.compile ?budget_bytes ?runtime ?fusion:f.fusion ?sanitize
          f.graph;
    }
  in
  (* ECHO_VERIFY=1: every compile self-certifies; error findings abort.
     The race checker runs alongside the classic verifiers, so every
     verified compile is also proven partition-disjoint. *)
  if Echo_analysis.Verify.env_enabled () then begin
    Echo_analysis.Verify.check_exn (verify (Executable e));
    Echo_analysis.Verify.check_exn (race_verify e)
  end;
  e

let executor e = e.executor
let planned_of e = e.fused.planned

(* The content-addressed compile cache hook. The pipeline stays policy-free
   about storage: a cache is just one function that either serves [key]
   from its table or runs [compile] and remembers the result. A served hit
   skips the entire pipeline — rewrite, planning, fusion, executor lowering
   AND the ECHO_VERIFY self-certification, whose verdict is a pure function
   of the artifact and was already rendered when the entry was built. *)
type cache = {
  fetch : key:string -> compile:(unit -> executable) -> executable;
}

(* Everything that decides what [compile_graph] produces, digested into one
   stable key: the canonical graph fingerprint (never raw node ids), the
   planner instance label (name + bound knobs), the effective fusion
   setting, the runtime's domain count and blocking threshold (both baked
   into compiled instructions), and the budget ceiling the artifact was
   proven under. *)
let cache_key ?planner ?runtime ?fuse ?budget_bytes ?sanitize graph =
  let planner_label =
    match planner with
    | Some i -> Echo_core.Planner.label i
    | None -> "stash-all"
  in
  let fuse =
    match fuse with Some f -> f | None -> Fuse.env_enabled ()
  in
  let rt =
    match runtime with Some r -> r | None -> Echo_tensor.Parallel.default ()
  in
  let sanitize =
    match sanitize with
    | Some m -> m
    | None -> Echo_analysis.Sanitize.env_mode ()
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            Graph.fingerprint graph;
            planner_label;
            string_of_bool fuse;
            string_of_int (Echo_tensor.Parallel.domains rt);
            string_of_int (Echo_tensor.Parallel.blocking_threshold rt);
            (match budget_bytes with
            | None -> "unbounded"
            | Some b -> string_of_int b);
            (* The sanitizer is baked into the compiled run loop, so a
               sanitized and a plain executable must never share a cache
               entry. *)
            Echo_analysis.Sanitize.mode_name sanitize;
          ]))

let compile_graph ?budget_bytes ?policy ?planner ?runtime ?fuse ?sanitize
    ?cache graph =
  let planner =
    match (planner, policy) with
    | Some i, _ -> Some i
    | None, Some p -> Some (Echo_core.Pass.instance_of_policy p)
    | None, None -> None
  in
  let build () =
    of_training_graph graph
    |> optimize ~enabled:false |> rewrite ?planner |> plan
    |> fuse_stage ?enabled:fuse ?runtime
    |> compile ?budget_bytes ?runtime ?sanitize
  in
  match cache with
  | None -> build ()
  | Some c ->
    c.fetch
      ~key:(cache_key ?planner ?runtime ?fuse ?budget_bytes ?sanitize graph)
      ~compile:build

let compile_source ?device ?optimize:(opt_enabled = true) ?policy ?planner
    ?budget_bytes ?runtime ?fuse ?sanitize src =
  let opt = optimize ~enabled:opt_enabled (differentiate src) in
  compile ?budget_bytes ?runtime ?sanitize
    (fuse_stage ?enabled:fuse ?runtime
       (plan (rewrite ?device ?policy ?planner opt)))

let validated_eval (pl : planned) ~feeds = Echo_exec.Arena_exec.eval pl.graph ~feeds

let describe fmt e =
  let pl = e.fused.planned in
  let rw = pl.rewritten in
  let opt = rw.optimized in
  let src = opt.training.source in
  Format.fprintf fmt "@[<v>pipeline %s:@," src.name;
  Format.fprintf fmt "  training graph: %d nodes@,"
    (List.length (Graph.nodes opt.training.autodiff.Echo_autodiff.Grad.graph));
  (match opt.opt_stats with
  | Some s ->
    Format.fprintf fmt "  optimized: %a@," Echo_opt.Pipeline.pp_stats s
  | None -> Format.fprintf fmt "  optimized: (pass skipped)@,");
  Format.fprintf fmt "  rewritten: policy=%s clones=%d@,"
    (Echo_core.Planner.label rw.planner)
    rw.report.Echo_core.Pass.clone_nodes;
  Format.fprintf fmt "  planned: %a@," Echo_exec.Memplan.pp pl.memplan;
  (match pl.offsets with
  | Some a ->
    Format.fprintf fmt "  offsets: arena=%d bytes (%d slots)@,"
      (Echo_exec.Assign.arena_size a)
      (List.length (Echo_exec.Assign.slots a))
  | None -> ());
  (match e.fused.fusion with
  | Some f ->
    Format.fprintf fmt
      "  fused: %d groups, %d interiors elided, arena %.1f -> %.1f MiB@,"
      (Fuse.group_count f) (Fuse.interior_count f)
      (float_of_int pl.memplan.Echo_exec.Memplan.arena_bytes /. (1024. *. 1024.))
      (float_of_int e.fused.fused_memplan.Echo_exec.Memplan.arena_bytes
      /. (1024. *. 1024.))
  | None -> Format.fprintf fmt "  fused: (stage disabled)@,");
  Format.fprintf fmt
    "  executable: %d instructions (%d active), footprint %.1f MiB@]"
    (Executor.instruction_count e.executor)
    (Executor.active_instruction_count e.executor)
    (float_of_int (Executor.footprint_bytes e.executor) /. (1024. *. 1024.))
