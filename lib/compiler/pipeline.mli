(** The staged compilation pipeline.

    Every consumer of the system — the training loop, the [echoc] driver,
    the benchmarks and the examples — lowers a model through the same
    explicit stages, each an inspectable, cacheable value:

    {v
      source      --differentiate-->  training     (autodiff: loss + grads)
      training    --optimize------->  optimized    (fold + CSE)
      optimized   --rewrite-------->  rewritten    (the Echo pass)
      rewritten   --plan----------->  planned      (liveness + memplan + assign)
      planned     --fuse----------->  fused        (elementwise chain groups)
      fused       --compile-------->  executable   (slot-based executor)
    v}

    The stages compose with [|>]:
    {[
      let exe =
        Pipeline.of_model model |> Pipeline.differentiate
        |> Pipeline.optimize
        |> Pipeline.rewrite
             ~planner:(Echo_core.Planner.instantiate ~knobs:[ ("budget", 0.03) ] "echo")
        |> Pipeline.plan |> Pipeline.fuse |> Pipeline.compile
      in
      let outputs = Executor.eval (Pipeline.executor exe) ~feeds
    ]} *)

open Echo_ir

(** {1 Source stage} *)

type source = {
  name : string;
  loss : Node.t;  (** scalar forward loss *)
  params : Node.t list;  (** variables to differentiate with respect to *)
  placeholders : Node.t list;
}

val source :
  ?name:string ->
  ?placeholders:Node.t list ->
  loss:Node.t ->
  params:Node.t list ->
  unit ->
  source

val of_model : Echo_models.Model.t -> source
val forward_graph : source -> Graph.t

(** {1 Training stage} *)

type training = { source : source; autodiff : Echo_autodiff.Grad.training }

val differentiate : source -> training
(** Extend the forward graph with the symbolic backward pass; graph outputs
    are the loss followed by every parameter gradient. *)

val of_training_graph : ?name:string -> Graph.t -> training
(** Enter the pipeline with an already-built training graph (deserialised
    with [Serial], or produced outside the model zoo), skipping the autodiff
    stage. Its parameter list is unknown, so [autodiff.grads] is empty. *)

(** {1 Optimized stage} *)

type optimized = {
  training : training;
  graph : Graph.t;
  opt_stats : Echo_opt.Pipeline.stats option;
      (** [None] when the pass was skipped ([~enabled:false] or a pre-built
          graph entered the pipeline). *)
}

val optimize : ?enabled:bool -> training -> optimized
(** Constant folding + CSE (default [enabled = true]). *)

(** {1 Rewritten stage} *)

type rewritten = {
  optimized : optimized;
  graph : Graph.t;
  planner : Echo_core.Planner.instance;
      (** the registry planner the stage ran — downstream stages resolve
          planner-owned artifacts (e.g. the static offset assigner)
          through it *)
  report : Echo_core.Pass.report;
      (** baseline + optimised footprint/time measurements *)
}

val rewrite :
  ?device:Echo_gpusim.Device.t ->
  ?policy:Echo_core.Pass.policy ->
  ?planner:Echo_core.Planner.instance ->
  optimized ->
  rewritten
(** Apply a recomputation planner resolved through the
    {!Echo_core.Planner} registry. [planner] wins over the legacy [policy]
    constructor when both are given; the default is ["stash-all"] (the
    framework baseline) on {!Echo_gpusim.Device.titan_xp}. *)

(** {1 Planned stage} *)

type planned = {
  rewritten : rewritten;
  graph : Graph.t;
  liveness : Echo_exec.Liveness.t;
  memplan : Echo_exec.Memplan.report;
  offsets : Echo_exec.Assign.t option;
      (** static byte-offset assignment; request with [plan ~offsets:true] *)
}

val plan : ?offsets:bool -> rewritten -> planned
(** Liveness analysis + memory plan. [offsets] (default [false]) also runs
    the planner's static offset assigner ({!Echo_core.Planner.assigner} —
    greedy best-fit unless the planner overrides it, as [olla-arena] does),
    which is quadratic-ish and only needed when the arena layout itself is
    inspected. *)

val validated_eval : planned -> feeds:Echo_exec.Interp.feeds -> Echo_tensor.Tensor.t list
(** Evaluate the planned graph through the liveness-validating
    {!Echo_exec.Arena_exec} — certifies that the plan's death steps are
    sound. @raise Echo_exec.Arena_exec.Freed_too_early on a planner bug. *)

(** {1 Fused stage} *)

type fused = {
  planned : planned;
  graph : Graph.t;
  fusion : Fuse.plan option;
      (** [None] when the stage is disabled — nothing fuses *)
  fused_memplan : Echo_exec.Memplan.report;
      (** the plan the executor's footprint will match: planned under the
          fusion plan when enabled, identical to [planned.memplan] when
          disabled *)
}

val fuse : ?enabled:bool -> ?runtime:Echo_tensor.Parallel.t -> planned -> fused
(** Group maximal single-consumer elementwise chains ({!Echo_ir.Fuse}) and
    re-plan memory for the fused instruction stream — interiors get no
    buffer, so the fused arena is never larger than the unfused one.
    [enabled] defaults to {!Echo_ir.Fuse.env_enabled} ([ECHO_FUSION],
    on unless set to [0]/[off]/[false]/[no]).

    When [runtime] is given, each discovered group is additionally vetted
    by the parallel-aware host cost model
    ({!Echo_opt.Fusion.profitable} under {!Echo_opt.Fusion.of_runtime}):
    a chain predicted to lose wall-clock under that runtime's fan-out
    configuration compiles unfused. Under default runtime configurations
    the model never rejects a group (fusing strictly saves dispatches and
    traffic without adding work), so passing the runtime is always safe. *)

(** {1 Executable stage} *)

type executable = { fused : fused; executor : Executor.t }

val compile :
  ?budget_bytes:int ->
  ?runtime:Echo_tensor.Parallel.t ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  fused ->
  executable
(** Lower to the slot executor. [runtime] selects the kernel runtime the
    executor's instructions partition work over (default
    [Parallel.default ()], sized by [ECHO_DOMAINS]); this is the single
    place the training loop, [echoc], bench and examples pick multicore
    execution.

    [budget_bytes] is passed through to {!Executor.compile}: compilation
    aborts with {!Executor.Budget_exceeded} if the arena would cross it.

    [sanitize] (default [ECHO_SANITIZE] via
    {!Echo_analysis.Sanitize.env_mode}) compiles the shadow-memory
    sanitizer into the executor's run loop — see {!Executor.compile}. *)

val executor : executable -> Executor.t

val planned_of : executable -> planned
(** The planned stage the executable was compiled from. *)

(** {1 Verification}

    The Echo-verify layer: the independent static checkers of
    {!Echo_analysis.Verify} run over whatever stage value you hold. *)

type stage =
  | Source of source
  | Training of training
  | Optimized of optimized
  | Rewritten of rewritten
  | Planned of planned
  | Fused of fused
  | Executable of executable

val verify : stage -> Echo_diag.Report.t
(** Re-prove the artifacts the given stage carries: graph/schedule shape
    and topology, determinism, recomputation-clone fidelity at every stage;
    plus the offset assignment at [Planned] (computed on the spot if the
    stage skipped it), the fusion plan at [Fused], and the compiled buffer
    binding and interpreter-fallback count at [Executable]. Returns the
    collected report; a sound artifact has no error findings.

    {!compile} runs this automatically under [ECHO_VERIFY=1]
    ({!Echo_analysis.Verify.env_enabled}) and raises
    {!Echo_analysis.Verify.Verify_failed} on errors. *)

val race_verify : executable -> Echo_diag.Report.t
(** The static race / partition-disjointness analysis
    ({!Echo_analysis.Race.check}) over everything the compiled executable
    carries: its kernel runtime (chunk coverage and disjointness of every
    fanned-out instruction, in-place alias legality, false-sharing lint),
    its fusion plan (sweep extents), its liveness intervals (no buffer
    recycled under a pending read) and its buffer binding (no two
    address-overlapping live values). A sound executable has no error
    findings at any domain count. Also runs automatically — alongside
    {!verify} — inside {!compile} under [ECHO_VERIFY=1]. *)

(** {1 Compile cache}

    The content-addressed plan-cache hook. The pipeline stays policy-free
    about storage and eviction: a cache is one function that either serves
    [key] from its table or runs [compile] once and remembers the result.
    [Echo_serve.Plan_cache] implements it with an LRU under a byte cap and
    single-flight compilation. *)

type cache = {
  fetch : key:string -> compile:(unit -> executable) -> executable;
}

val cache_key :
  ?planner:Echo_core.Planner.instance ->
  ?runtime:Echo_tensor.Parallel.t ->
  ?fuse:bool ->
  ?budget_bytes:int ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  Graph.t ->
  string
(** The stable content address of what {!compile_graph} would produce:
    digest of the canonical {!Echo_ir.Graph.fingerprint} (never raw node
    ids), the planner instance label (name + knobs), the effective fusion
    setting, the runtime's domain count and blocking threshold, the
    budget ceiling, and the sanitizer mode (baked into the run loop, so a
    sanitized and a plain executable never share an entry). Stable across
    processes; two graphs with equal fingerprints compiled under equal
    knobs share one key. *)

(** {1 Shorthands} *)

val compile_graph :
  ?budget_bytes:int ->
  ?policy:Echo_core.Pass.policy ->
  ?planner:Echo_core.Planner.instance ->
  ?runtime:Echo_tensor.Parallel.t ->
  ?fuse:bool ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  ?cache:cache ->
  Graph.t ->
  executable
(** [of_training_graph |> optimize ~enabled:false |> rewrite ?policy ?planner
    |> plan |> fuse |> compile]: compile an existing training graph (default
    planner ["stash-all"], i.e. as-is; [fuse] defaults to the [ECHO_FUSION]
    environment setting). This is what [Loop.train] uses, both on the
    initial compile and when re-planning under a shrunk [budget_bytes].

    With [cache], the stages above only run on a miss: a hit for
    {!cache_key} serves the previously compiled executable and skips the
    entire pipeline, including the [ECHO_VERIFY=1] self-certification
    (the verdict is a pure function of the artifact and was rendered when
    the entry was built). Feed the served executor by name
    ({!Executor.feed_named}) — its node ids belong to the build that
    populated the entry. *)

val compile_source :
  ?device:Echo_gpusim.Device.t ->
  ?optimize:bool ->
  ?policy:Echo_core.Pass.policy ->
  ?planner:Echo_core.Planner.instance ->
  ?budget_bytes:int ->
  ?runtime:Echo_tensor.Parallel.t ->
  ?fuse:bool ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  source ->
  executable
(** The whole pipeline in one call. *)

val describe : Format.formatter -> executable -> unit
(** Per-stage summary: node counts, opt stats, policy, plan, footprint. *)
