open Echo_tensor
open Echo_ir

type result = { param : string; max_abs_err : float; max_rel_err : float }

let numeric_grad ~loss ~feeds ~wrt ~eps =
  let base =
    match List.assq_opt wrt feeds with
    | Some t -> t
    | None -> invalid_arg "Gradcheck.numeric_grad: wrt node is not fed"
  in
  (* Compile the loss graph once; every perturbation is then one executor
     sweep. The scratch feed is aliased into the executor, so mutating it in
     place between runs re-feeds the perturbed parameter for free. *)
  let exe = Executor.compile (Graph.create [ loss ]) in
  let scratch = Tensor.copy base in
  List.iter
    (fun (n, v) -> Executor.feed exe n (if n == wrt then scratch else v))
    feeds;
  let loss_at delta i =
    Tensor.set1 scratch i (Tensor.get1 base i +. delta);
    Executor.run exe;
    let v = Tensor.get1 (Executor.outputs exe).(0) 0 in
    Tensor.set1 scratch i (Tensor.get1 base i);
    v
  in
  let grad = Tensor.zeros (Tensor.shape base) in
  for i = 0 to Tensor.numel base - 1 do
    let up = loss_at eps i and down = loss_at (-.eps) i in
    Tensor.set1 grad i ((up -. down) /. (2.0 *. eps))
  done;
  grad

let compare_grads ~param ~analytic ~numeric =
  let max_abs = ref 0.0 and max_rel = ref 0.0 in
  for i = 0 to Tensor.numel numeric - 1 do
    let a = Tensor.get1 analytic i and n = Tensor.get1 numeric i in
    let abs_err = Float.abs (a -. n) in
    let rel_err = abs_err /. Float.max 1.0 (Float.abs n) in
    if abs_err > !max_abs then max_abs := abs_err;
    if rel_err > !max_rel then max_rel := rel_err
  done;
  { param; max_abs_err = !max_abs; max_rel_err = !max_rel }

let check ?(eps = 1e-5) ?(tol = 1e-5) ~loss ~feeds ~wrt () =
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt in
  let exe = Executor.compile training.Echo_autodiff.Grad.graph in
  let outputs = Array.of_list (Executor.eval exe ~feeds) in
  (* Graph outputs are the loss followed by every gradient in [wrt] order;
     copy the analytic gradients out of the executor's buffers before the
     finite-difference executors run. *)
  let results =
    List.mapi
      (fun k (param, _grad_node) ->
        let analytic = Tensor.copy outputs.(k + 1) in
        let numeric = numeric_grad ~loss ~feeds ~wrt:param ~eps in
        compare_grads ~param:(Node.name param) ~analytic ~numeric)
      training.Echo_autodiff.Grad.grads
  in
  let failures = List.filter (fun r -> r.max_rel_err > tol) results in
  if failures = [] then Ok results else Error failures
