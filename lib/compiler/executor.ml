open Echo_tensor
open Echo_ir
open Echo_exec
module Sanitize = Echo_analysis.Sanitize

(* A physical transient buffer. [writers] counts the instructions that write
   into it across the whole schedule: a constant node owning a single-writer
   buffer can be materialised once at compile time and skipped at run time.
   [bid] is a compile-time identity handed to the static verifier so it can
   prove that nodes sharing a physical buffer never overlap in lifetime. *)
type buf = { arr : float array; mutable writers : int; mutable bid : int }

type t = {
  graph : Graph.t;
  runtime : Parallel.t;
  nodes : Node.t array;  (** the frozen schedule; slot = index *)
  instrs : (unit -> unit) array;
  values : Tensor.t array;
  slot_of_id : (int, int) Hashtbl.t;
  persistent : (Node.t * int) array;  (** (node, slot), schedule order *)
  is_persistent_slot : bool array;
  fed : bool array;  (** indexed by slot; meaningful for persistent slots *)
  mutable all_fed : bool;
  output_slots : int array;
  outs : Tensor.t array;
  transient_bytes : int;
  persistent_bytes : int;
  max_workspace_bytes : int;
  fused_groups : int;
  fused_interiors : int;
  binding : (Node.t * int) list;
      (** (node, physical buffer id) for every materialising transient slot *)
  fallback_count : int;  (** instructions that evaluate through Interp *)
  materialising : bool array;
      (** by slot: the slot owns a value at run time (transient buffer or
          fed persistent tensor) — fused interiors don't *)
  mutable pending_flips : (int * int * int) list;
      (** (slot, index, bit) single-event upsets to apply during the next
          {!run}, right after the slot's instruction writes; cleared after
          that run *)
  sanitize : Sanitize.t option;
      (** shadow-memory sanitizer driven around every instruction of every
          {!run}; [None] when compiled with the sanitizer off *)
}

exception Budget_exceeded of { requested_bytes : int; budget_bytes : int }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { requested_bytes; budget_bytes } ->
      Some
        (Printf.sprintf
           "Executor.Budget_exceeded { requested_bytes = %d; budget_bytes = \
            %d }"
           requested_bytes budget_bytes)
    | _ -> None)

let nop () = ()

let compile ?(inplace = true) ?budget_bytes ?runtime ?fusion ?liveness
    ?sanitize graph =
  let runtime =
    match runtime with Some r -> r | None -> Parallel.default ()
  in
  (* [?liveness] overrides the plan the executor frees and recycles
     buffers against — the race-verify mutation harness injects corrupted
     intervals here ([Liveness.of_intervals]) to prove the sanitizer
     catches the resulting stale reads on a real executor. *)
  let liveness =
    match liveness with Some l -> l | None -> Liveness.analyse ?fusion graph
  in
  let sanitize_mode =
    match sanitize with Some m -> m | None -> Sanitize.env_mode ()
  in
  (* Fused interiors get no buffer, no tensor and no instruction; a group
     root compiles to one fused instruction over the group's external
     inputs. Both follow the same [Fuse.plan] the planner used, so the
     measured footprint still equals [Memplan.plan ?fusion]'s arena. *)
  let interior node =
    match fusion with
    | Some f -> Fuse.is_interior f (Node.id node)
    | None -> false
  in
  let group_of_root node =
    match fusion with
    | Some f -> Fuse.group_of_root f (Node.id node)
    | None -> None
  in
  let inplace_inputs node =
    match fusion with
    | Some f -> Fuse.inplace_candidates f node
    | None -> Node.inputs node
  in
  let nodes = Array.of_list (Graph.nodes graph) in
  let n = Array.length nodes in
  let slot_of_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i node -> Hashtbl.replace slot_of_id (Node.id node) i) nodes;
  let values = Array.make n (Tensor.scalar 0.0) in
  let is_persistent_slot = Array.make n false in
  let persistent = ref [] in
  let persistent_bytes = ref 0 in
  let max_ws = ref 0 in
  (* Buffer assignment mirrors [Memplan.plan ~reuse:true] exactly — same
     exact-size pool, same in-place eligibility and input order — so the
     executor's footprint IS the planner's arena prediction. *)
  let pool : (int, buf list ref) Hashtbl.t = Hashtbl.create 64 in
  let pool_take numel =
    match Hashtbl.find_opt pool numel with
    | Some ({ contents = b :: rest } as l) ->
      l := rest;
      Some b
    | Some { contents = [] } | None -> None
  in
  let pool_put numel b =
    match Hashtbl.find_opt pool numel with
    | Some l -> l := b :: !l
    | None -> Hashtbl.replace pool numel (ref [ b ])
  in
  let transient_bytes = ref 0 in
  (* Budget enforcement happens here, during allocation, so the raise
     carries the running arena total at the moment it first crosses the
     ceiling — a simulated device OOM, not a post-hoc check. *)
  let check_budget () =
    match budget_bytes with
    | Some budget ->
      let total = !persistent_bytes + !transient_bytes + !max_ws in
      if total > budget then
        raise (Budget_exceeded { requested_bytes = total; budget_bytes = budget })
    | None -> ()
  in
  let buf_of_slot : buf option array = Array.make n None in
  let transferred : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let inplace_buf step node =
    if not (inplace && Memplan.inplace_capable node) then None
    else begin
      let size = Node.size_bytes node in
      let eligible input =
        (not (Liveness.is_persistent input))
        && Node.size_bytes input = size
        && (not (Hashtbl.mem transferred (Node.id input)))
        && (not (Graph.is_output graph (Node.id input)))
        &&
        match Liveness.interval liveness (Node.id input) with
        | itv -> itv.Liveness.last_step = step
        | exception Not_found -> false
      in
      match List.find_opt eligible (inplace_inputs node) with
      | None -> None
      | Some input ->
        Hashtbl.replace transferred (Node.id input) ();
        buf_of_slot.(Hashtbl.find slot_of_id (Node.id input))
    end
  in
  (* Phase 1: assign every slot a physical buffer (recycling dying buffers
     like the planner) and wrap it in its output tensor once. *)
  Array.iteri
    (fun step node ->
      let ws = Workspace.bytes node in
      if ws > !max_ws then max_ws := ws;
      (match Node.op node with
      | Op.Placeholder | Op.Variable ->
        is_persistent_slot.(step) <- true;
        persistent := (node, step) :: !persistent;
        persistent_bytes := !persistent_bytes + Node.size_bytes node
      | _ when interior node ->
        (* Lives in registers inside the group root's fused kernel:
           [values.(step)] is never read and no instruction is emitted. *)
        ()
      | _ ->
        let numel = Shape.numel (Node.shape node) in
        let b =
          match inplace_buf step node with
          | Some b -> b
          | None -> (
            match pool_take numel with
            | Some b -> b
            | None ->
              transient_bytes := !transient_bytes + Node.size_bytes node;
              { arr = Array.make numel 0.0; writers = 0; bid = -1 })
        in
        b.writers <- b.writers + 1;
        buf_of_slot.(step) <- Some b;
        values.(step) <- Tensor.create (Node.shape node) b.arr);
      check_budget ();
      List.iter
        (fun dying ->
          if not (Hashtbl.mem transferred (Node.id dying)) then begin
            let slot = Hashtbl.find slot_of_id (Node.id dying) in
            match buf_of_slot.(slot) with
            | Some b -> pool_put (Array.length b.arr) b
            | None -> ()
          end)
        (Liveness.dying_at liveness step))
    nodes;
  (* Phase 2: compile each node to one closure over its input slots and its
     fixed destination tensor. Runs after phase 1 so writer counts are
     final. *)
  let instrs = Array.make n nop in
  let build node dst buf =
    let slots =
      Array.of_list
        (List.map
           (fun i -> Hashtbl.find slot_of_id (Node.id i))
           (Node.inputs node))
    in
    let x () = values.(Array.unsafe_get slots 0) in
    let y () = values.(Array.unsafe_get slots 1) in
    let module I = Tensor.Into in
    match Node.op node with
    | Op.Placeholder | Op.Variable -> assert false
    | Op.Zeros ->
      if buf.writers = 1 then begin
        I.fill ~dst 0.0;
        nop
      end
      else fun () -> I.fill ~dst 0.0
    | Op.ConstFill v ->
      if buf.writers = 1 then begin
        I.fill ~dst v;
        nop
      end
      else fun () -> I.fill ~dst v
    | Op.DropoutMask { p; seed } ->
      let mask = Tensor.dropout_mask ~seed ~p (Node.shape node) in
      if buf.writers = 1 then begin
        I.blit ~src:mask ~dst;
        nop
      end
      else fun () -> I.blit ~src:mask ~dst
    | Op.Neg -> fun () -> I.neg ~runtime (x ()) ~dst
    | Op.Scale k -> fun () -> I.scale ~runtime k (x ()) ~dst
    | Op.AddScalar k -> fun () -> I.add_scalar ~runtime k (x ()) ~dst
    | Op.PowConst p -> fun () -> I.pow_const ~runtime p (x ()) ~dst
    | Op.Sigmoid -> fun () -> I.sigmoid ~runtime (x ()) ~dst
    | Op.Tanh -> fun () -> I.tanh_ ~runtime (x ()) ~dst
    | Op.Relu -> fun () -> I.relu ~runtime (x ()) ~dst
    | Op.Exp -> fun () -> I.exp_ ~runtime (x ()) ~dst
    | Op.Log -> fun () -> I.log_ ~runtime (x ()) ~dst
    | Op.Sqrt -> fun () -> I.sqrt_ ~runtime (x ()) ~dst
    | Op.Sq -> fun () -> I.sq ~runtime (x ()) ~dst
    | Op.Recip -> fun () -> I.recip ~runtime (x ()) ~dst
    | Op.Sign -> fun () -> I.sign ~runtime (x ()) ~dst
    | Op.Add -> fun () -> I.add ~runtime (x ()) (y ()) ~dst
    | Op.Sub -> fun () -> I.sub ~runtime (x ()) (y ()) ~dst
    | Op.Mul -> fun () -> I.mul ~runtime (x ()) (y ()) ~dst
    | Op.Div -> fun () -> I.div ~runtime (x ()) (y ()) ~dst
    | Op.Matmul { trans_a; trans_b } ->
      fun () -> I.matmul ~runtime ~trans_a ~trans_b (x ()) (y ()) ~dst
    | Op.AddBias -> fun () -> I.add_bias ~runtime (x ()) (y ()) ~dst
    | Op.ScaleBy -> fun () -> I.scale_by ~runtime (x ()) (y ()) ~dst
    | Op.Slice { axis; lo; hi } -> fun () -> I.slice ~axis ~lo ~hi (x ()) ~dst
    | Op.PadSlice { axis; lo; full } ->
      fun () -> I.pad_slice ~axis ~lo ~full (x ()) ~dst
    | Op.Concat { axis } ->
      fun () ->
        I.concat ~axis
          (Array.to_list (Array.map (fun s -> values.(s)) slots))
          ~dst
    | Op.Reshape _ -> fun () -> I.blit ~src:(x ()) ~dst
    | Op.Transpose2d -> fun () -> I.transpose2d ~runtime (x ()) ~dst
    | Op.ReduceSum { axis; keepdims } ->
      fun () -> I.reduce_sum ~runtime ~axis ~keepdims (x ()) ~dst
    | Op.ReduceMean { axis; keepdims } ->
      fun () -> I.reduce_mean ~runtime ~axis ~keepdims (x ()) ~dst
    | Op.BroadcastAxis { axis; n } ->
      fun () -> I.broadcast_axis ~axis ~n (x ()) ~dst
    | Op.Softmax -> fun () -> I.softmax ~runtime (x ()) ~dst
    | Op.LogSoftmax -> fun () -> I.log_softmax ~runtime (x ()) ~dst
    | Op.CrossEntropy ->
      fun () -> I.cross_entropy ~logits:(x ()) ~labels:(y ()) ~dst
    | Op.CrossEntropyGrad ->
      fun () -> I.cross_entropy_grad ~runtime ~logits:(x ()) ~labels:(y ()) ~dst ()
    | Op.Embedding ->
      fun () -> I.embedding ~runtime ~table:(x ()) ~ids:(y ()) ~dst ()
    | Op.EmbeddingGrad _ ->
      fun () -> I.embedding_grad ~runtime ~ids:(x ()) ~grad_out:(y ()) ~dst ()
    | (Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _) as op ->
      (* Convolutions have no destination-passing kernel yet: evaluate via
         the reference interpreter and copy into the assigned buffer, so the
         memory discipline stays uniform. *)
      let out_shape = Node.shape node in
      fun () ->
        let ins =
          Array.to_list (Array.map (fun s -> values.(s)) slots)
        in
        I.blit ~src:(Interp.eval_node op out_shape ins) ~dst
  in
  (* One instruction per fused group: per output element the whole chain
     folds in a register, reading only the group's external inputs and
     writing only the root's buffer. The steps are built from the same named
     scalar kernels the unfused instructions use ([Tensor.f_*]), so the
     fused instruction is bit-identical to running the members one at a
     time. Operand tensors are re-fetched from [values] on every run because
     persistent slots rebind on feed. *)
  let build_fused g dst =
    let externals = Array.of_list g.Fuse.externals in
    let opslots =
      Array.map (fun e -> Hashtbl.find slot_of_id (Node.id e)) externals
    in
    let next_ext = ref 0 in
    let take () =
      let j = !next_ext in
      incr next_ext;
      j
    in
    (* Externals appear in evaluation order: the head's first input is the
       seed (operand 0); each binary member's second input is the next
       index. *)
    let step_of ~is_head member =
      if is_head then ignore (take ());
      match Node.op member with
      | Op.Neg -> Tensor.f_neg
      | Op.Scale k -> Tensor.f_scale k
      | Op.AddScalar k -> Tensor.f_add_scalar k
      | Op.PowConst p -> Tensor.f_pow_const p
      | Op.Sigmoid -> Tensor.f_sigmoid
      | Op.Tanh -> Tensor.f_tanh
      | Op.Relu -> Tensor.f_relu
      | Op.Exp -> Tensor.f_exp
      | Op.Log -> Tensor.f_log
      | Op.Sqrt -> Tensor.f_sqrt
      | Op.Sq -> Tensor.f_sq
      | Op.Recip -> Tensor.f_recip
      | Op.Sign -> Tensor.f_sign
      | Op.Add -> Tensor.f_add (take ())
      | Op.Sub -> Tensor.f_sub (take ())
      | Op.Mul -> Tensor.f_mul (take ())
      | Op.Div -> Tensor.f_div (take ())
      | Op.ScaleBy -> Tensor.f_scale_by (take ())
      | _ -> assert false (* [Fuse.elementwise] members only *)
    in
    let steps =
      match g.Fuse.members with
      | [] -> assert false
      | head :: rest ->
        let h = step_of ~is_head:true head in
        let r =
          List.rev
            (List.fold_left
               (fun acc m -> step_of ~is_head:false m :: acc)
               [] rest)
        in
        Array.of_list (h :: r)
    in
    assert (!next_ext = Array.length externals);
    let operands = Array.make (Array.length opslots) (Tensor.scalar 0.0) in
    fun () ->
      for i = 0 to Array.length opslots - 1 do
        Array.unsafe_set operands i values.(Array.unsafe_get opslots i)
      done;
      Tensor.Into.fused ~runtime steps operands ~dst
  in
  Array.iteri
    (fun step node ->
      match buf_of_slot.(step) with
      | Some b -> (
        match group_of_root node with
        | Some g -> instrs.(step) <- build_fused g values.(step)
        | None -> instrs.(step) <- build node values.(step) b)
      | None -> ())
    nodes;
  let output_slots =
    Array.of_list
      (List.map
         (fun o -> Hashtbl.find slot_of_id (Node.id o))
         (Graph.outputs graph))
  in
  let persistent = Array.of_list (List.rev !persistent) in
  (* Number the physical buffers in first-use order and record which buffer
     each materialising slot ended up in — the artifact the alias sanitizer
     re-derives lifetimes against. *)
  let next_bid = ref 0 in
  let binding = ref [] in
  Array.iteri
    (fun step node ->
      match buf_of_slot.(step) with
      | None -> ()
      | Some b ->
        if b.bid < 0 then begin
          b.bid <- !next_bid;
          incr next_bid
        end;
        binding := (node, b.bid) :: !binding)
    nodes;
  let fallback_count =
    Array.fold_left
      (fun acc node ->
        match Node.op node with
        | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ -> acc + 1
        | _ -> acc)
      0 nodes
  in
  (* Describe the schedule to the shadow-memory sanitizer: what each slot
     writes (bid + extent), which arena cells it reads and from which
     producer, and how long the plan keeps its value alive. Built after
     bid numbering so the descriptions use the same buffer identities the
     static checkers see. *)
  let sanitizer =
    if not (Sanitize.is_on sanitize_mode) then None
    else begin
      let buffers = Hashtbl.create 64 in
      Array.iter
        (fun b ->
          match b with
          | Some b when not (Hashtbl.mem buffers b.bid) ->
            Hashtbl.replace buffers b.bid b.arr
          | _ -> ())
        buf_of_slot;
      let tracked_inputs node =
        match group_of_root node with
        | Some g -> g.Fuse.externals
        | None -> Node.inputs node
      in
      let slots =
        Array.mapi
          (fun step node ->
            let si_name =
              Printf.sprintf "%s %s" (Op.to_string (Node.op node))
                (Node.name node)
            in
            let si_dst =
              match buf_of_slot.(step) with
              | Some b -> Some (b.bid, Shape.numel (Node.shape node))
              | None -> None
            in
            let si_const =
              match (buf_of_slot.(step), Node.op node) with
              | Some b, (Op.Zeros | Op.ConstFill _ | Op.DropoutMask _) ->
                b.writers = 1
              | _ -> false
            in
            let si_reads =
              if si_dst = None then [||]
              else
                Array.of_list
                  (List.filter_map
                     (fun input ->
                       match Hashtbl.find_opt slot_of_id (Node.id input) with
                       | None -> None
                       | Some s -> (
                         match buf_of_slot.(s) with
                         | Some b ->
                           Some (s, b.bid, Shape.numel (Node.shape input))
                         | None -> None))
                     (tracked_inputs node))
            in
            let si_expire =
              match Liveness.interval liveness (Node.id node) with
              | itv -> itv.Liveness.last_step
              | exception Not_found -> max_int
            in
            { Sanitize.si_name; si_dst; si_const; si_reads; si_expire })
          nodes
      in
      Some
        (Sanitize.create sanitize_mode ~slots
           ~buffers:
             (Hashtbl.fold (fun bid arr acc -> (bid, arr) :: acc) buffers []))
    end
  in
  {
    graph;
    runtime;
    nodes;
    instrs;
    values;
    slot_of_id;
    persistent;
    is_persistent_slot;
    fed = Array.make n false;
    all_fed = Array.length persistent = 0;
    output_slots;
    outs = Array.make (Array.length output_slots) (Tensor.scalar 0.0);
    transient_bytes = !transient_bytes;
    persistent_bytes = !persistent_bytes;
    max_workspace_bytes = !max_ws;
    fused_groups =
      (match fusion with Some f -> Fuse.group_count f | None -> 0);
    fused_interiors =
      (match fusion with Some f -> Fuse.interior_count f | None -> 0);
    binding = List.rev !binding;
    fallback_count;
    materialising =
      Array.init n (fun s ->
          is_persistent_slot.(s) || buf_of_slot.(s) <> None);
    pending_flips = [];
    sanitize = sanitizer;
  }

let graph e = e.graph
let runtime e = e.runtime
let instruction_count e = Array.length e.instrs
let fused_group_count e = e.fused_groups
let fused_interior_count e = e.fused_interiors

let active_instruction_count e =
  Array.fold_left (fun acc f -> if f == nop then acc else acc + 1) 0 e.instrs

let footprint_bytes e =
  e.persistent_bytes + e.transient_bytes + e.max_workspace_bytes

let transient_bytes e = e.transient_bytes
let persistent_bytes e = e.persistent_bytes
let buffer_binding e = e.binding
let interp_fallback_count e = e.fallback_count
let sanitize_mode e = match e.sanitize with None -> Sanitize.Off | Some s -> Sanitize.mode s
let sanitize_report e = Option.map Sanitize.report e.sanitize

let slot_opt e node = Hashtbl.find_opt e.slot_of_id (Node.id node)

let slot e node =
  match slot_opt e node with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Executor.slot: node %s (#%d) is not in the graph"
         (Node.name node) (Node.id node))

let materialises e node =
  match slot_opt e node with
  | Some s -> e.materialising.(s)
  | None -> false

let schedule_flip e ~slot ~index ~bit =
  if slot < 0 || slot >= Array.length e.nodes then
    invalid_arg
      (Printf.sprintf "Executor.schedule_flip: slot %d outside 0..%d" slot
         (Array.length e.nodes - 1));
  if not e.materialising.(slot) then
    invalid_arg
      (Printf.sprintf
         "Executor.schedule_flip: slot %d (%s) does not materialise — fused \
          interiors own no buffer to upset"
         slot
         (Node.name e.nodes.(slot)));
  if index < 0 || bit < 0 || bit > 63 then
    invalid_arg "Executor.schedule_flip: index must be >= 0 and bit in 0..63";
  e.pending_flips <- e.pending_flips @ [ (slot, index, bit) ]

let set_input e s tensor =
  if s < 0 || s >= Array.length e.nodes || not e.is_persistent_slot.(s) then
    invalid_arg "Executor.set_input: not an input slot";
  let node = e.nodes.(s) in
  if not (Shape.equal (Node.shape node) (Tensor.shape tensor)) then
    invalid_arg
      (Printf.sprintf "Executor.feed: feed for %s has shape %s, node has %s"
         (Node.name node)
         (Shape.to_string (Tensor.shape tensor))
         (Shape.to_string (Node.shape node)));
  e.values.(s) <- tensor;
  e.fed.(s) <- true

let feed e node tensor =
  match slot_opt e node with
  | Some s -> set_input e s tensor
  | None -> () (* feeds for nodes outside the graph are legal, like Interp *)

(* Name-based input resolution: the bridge that lets a cached executable
   serve a structurally identical graph from a different build (fresh node
   ids). Canonical fingerprints include leaf names, so a fingerprint match
   guarantees this resolution exists. *)
let input_slot_by_name e name =
  let hits =
    Array.fold_left
      (fun acc (node, s) -> if Node.name node = name then s :: acc else acc)
      [] e.persistent
  in
  match hits with
  | [ s ] -> Some s
  | [] -> None
  | _ ->
    invalid_arg
      (Printf.sprintf
         "Executor.input_slot_by_name: %d inputs are named %S — name-based \
          feeding needs unique input names"
         (List.length hits) name)

let feed_named e name tensor =
  match input_slot_by_name e name with
  | Some s -> set_input e s tensor
  | None ->
    invalid_arg
      (Printf.sprintf "Executor.feed_named: no input named %S in this graph"
         name)

let input_names e =
  Array.to_list (Array.map (fun (node, _) -> Node.name node) e.persistent)

let run e =
  if not e.all_fed then begin
    let missing =
      Array.fold_right
        (fun (node, s) acc ->
          if e.fed.(s) then acc
          else
            Printf.sprintf "%s (#%d)" (Node.name node) (Node.id node) :: acc)
        e.persistent []
    in
    if missing <> [] then
      raise (Interp.Missing_feed (String.concat ", " missing));
    e.all_fed <- true
  end;
  let instrs = e.instrs in
  (* The hot loop stays untouched when no upset is scheduled; a pending
     flip switches one run onto a path that corrupts the slot's value the
     instant its kernel has written it — before any consumer reads — so
     the flip lands at the same dataflow point under every planner, fusion
     setting and domain count. *)
  (match e.sanitize with
  | Some san ->
    (* Sanitized path: shadow checks bracket every instruction. A pending
       flip is applied after [after_instr] stamps and snapshots the slot's
       destination, so [Full] mode sees the corruption as a foreign write
       at the next instruction — exactly how a real upset would surface. *)
    Sanitize.begin_run san;
    let flips = e.pending_flips in
    for i = 0 to Array.length instrs - 1 do
      Sanitize.before_instr san i;
      (Array.unsafe_get instrs i) ();
      Sanitize.after_instr san i;
      List.iter
        (fun (s, index, bit) ->
          if s = i then Tensor.flip_bit e.values.(i) ~index ~bit)
        flips
    done;
    e.pending_flips <- [];
    Sanitize.check_exn san
  | None -> (
    match e.pending_flips with
    | [] ->
      for i = 0 to Array.length instrs - 1 do
        (Array.unsafe_get instrs i) ()
      done
    | flips ->
      for i = 0 to Array.length instrs - 1 do
        (Array.unsafe_get instrs i) ();
        List.iter
          (fun (s, index, bit) ->
            if s = i then Tensor.flip_bit e.values.(i) ~index ~bit)
          flips
      done;
      e.pending_flips <- []));
  let os = e.output_slots in
  for i = 0 to Array.length os - 1 do
    e.outs.(i) <- e.values.(os.(i))
  done

let outputs e = e.outs

let eval e ~feeds =
  List.iter (fun (node, t) -> feed e node t) feeds;
  run e;
  Array.to_list e.outs
