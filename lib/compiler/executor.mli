(** The compiled slot-based executor.

    [compile] lowers a planned graph once into a flat instruction array:
    the schedule is frozen, every node gets a dense integer {e slot}
    (its schedule index), input lookups are precompiled slot reads, and
    every transient node is bound at compile time to a physical buffer
    recycled under exactly the discipline of {!Echo_exec.Memplan.plan}
    (exact-size pool + in-place transfer into dying same-size inputs).
    Running a step is then a single array sweep with {e zero} tensor
    allocation — buffers are reused across nodes within a step and across
    training steps, which is the "compile once, train many steps" execution
    model the Echo paper assumes.

    Numerics are bit-identical to the reference interpreter {!Echo_exec.Interp}
    by construction: both execute the same scalar kernels in the same
    accumulation order (see {!Echo_tensor.Tensor.Into}), and the property is
    enforced by differential tests.

    Aliasing contract: tensors returned by {!outputs}/{!eval} alias the
    executor's internal buffers. They are valid until the next {!run} on the
    same executor; copy them ({!Echo_tensor.Tensor.copy}) to retain values
    across steps. Feed tensors are aliased, not copied — mutating a fed
    tensor between runs is a legitimate way to update an input in place. *)

open Echo_tensor
open Echo_ir

type t

exception Budget_exceeded of { requested_bytes : int; budget_bytes : int }
(** Raised by {!compile} when buffer allocation crosses [budget_bytes]: the
    simulated device ran out of memory. [requested_bytes] is the arena total
    (persistent + transient pool + max workspace) at the moment it first
    exceeded the ceiling, so it is a lower bound on the full footprint. The
    fault-tolerant training loop ([Echo_train.Loop]) catches this and
    re-plans through the recomputation escalation ladder. *)

val compile :
  ?inplace:bool ->
  ?budget_bytes:int ->
  ?runtime:Parallel.t ->
  ?fusion:Fuse.plan ->
  ?liveness:Echo_exec.Liveness.t ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  Graph.t ->
  t
(** Compile the graph's schedule into instructions and bind buffers.
    [inplace] (default [true]) mirrors the planner's in-place optimisation;
    disable it to match [Memplan.plan ~inplace:false].

    [budget_bytes] is a hard ceiling on the device-accounted arena: buffer
    allocation that crosses it aborts compilation with {!Budget_exceeded}.
    An executor compiled under a budget always satisfies
    [footprint_bytes <= budget_bytes].

    [runtime] (default {!Echo_tensor.Parallel.default}, i.e. sized by the
    [ECHO_DOMAINS] environment variable) is baked into every compiled
    instruction: heavy kernels partition their output rows across its
    domains. Results are bit-identical at every domain count — see
    {!Echo_tensor.Parallel}.

    [fusion] (default absent: nothing fuses) compiles each group of the
    given {!Echo_ir.Fuse.plan} into a single fused instruction — one pass
    over the root's buffer with the chain folding in registers, via
    {!Echo_tensor.Tensor.Into.fused}. Interiors get no buffer, no tensor
    and no instruction, so [footprint_bytes] equals
    [(Memplan.plan ~fusion graph).arena_bytes], and results stay
    bit-identical to the unfused executor (same scalar kernels, same
    partitioning).

    [liveness] (default: [Liveness.analyse ?fusion graph]) is the plan
    the executor frees and recycles buffers against. Overriding it is the
    race-verify mutation harness's injection point: a corrupted interval
    list ({!Echo_exec.Liveness.of_intervals}) becomes a real executor
    whose early frees the shadow-memory sanitizer must catch.

    [sanitize] (default {!Echo_analysis.Sanitize.env_mode}, i.e. the
    [ECHO_SANITIZE] environment variable) brackets every instruction of
    every {!run} with shadow-memory checks — see
    {!Echo_analysis.Sanitize}. The sanitizer changes no kernel, schedule
    or buffer content, so sanitized runs stay bit-identical; {!run}
    raises [Sanitize_failed] at the end of any step with findings. *)

(** {1 Running} *)

val slot : t -> Node.t -> int
(** Dense slot (schedule index) of a node.
    @raise Invalid_argument for nodes outside the graph. *)

val set_input : t -> int -> Tensor.t -> unit
(** Bind a feed tensor (by slot) for a [Placeholder]/[Variable]. The tensor
    is aliased, not copied.
    @raise Invalid_argument on a non-input slot or a shape mismatch. *)

val feed : t -> Node.t -> Tensor.t -> unit
(** [set_input] by node. Feeds for nodes not present in the graph are
    silently ignored, matching {!Echo_exec.Interp.eval}'s tolerance of
    superfluous feeds. *)

val input_slot_by_name : t -> string -> int option
(** Slot of the unique [Placeholder]/[Variable] with this name, if any.
    Name-based resolution lets a cached executable serve a structurally
    identical graph from a different build, whose node ids differ; the
    canonical {!Echo_ir.Graph.fingerprint} includes leaf names, so a
    fingerprint match guarantees resolution succeeds.
    @raise Invalid_argument when several inputs share the name. *)

val feed_named : t -> string -> Tensor.t -> unit
(** [set_input] through {!input_slot_by_name}.
    @raise Invalid_argument when the name is absent or ambiguous. *)

val input_names : t -> string list
(** Names of every feedable input ([Placeholder]/[Variable]). *)

val run : t -> unit
(** Execute one step over the frozen schedule.
    @raise Echo_exec.Interp.Missing_feed naming every unfed input. *)

(** {1 Fault injection} *)

val materialises : t -> Node.t -> bool
(** The node owns a run-time value in this executor — a transient buffer or
    a fed persistent tensor. False for fused interiors (register-resident,
    nothing to upset) and nodes outside the graph. *)

val schedule_flip : t -> slot:int -> index:int -> bit:int -> unit
(** Arm one single-event upset for the {e next} {!run}: immediately after
    [slot]'s instruction executes, bit [bit] of scalar [index mod numel] of
    its value flips ({!Echo_tensor.Tensor.flip_bit}) — before any consumer
    reads it, so the corruption enters the dataflow at exactly that point
    regardless of planner, fusion or domain count. All armed flips are
    cleared after that run; when none are pending the execution path is
    byte-for-byte the unfaulted one.
    @raise Invalid_argument on an out-of-range slot, a slot that does not
    {!materialises}, a negative index, or a bit outside 0..63. *)

val outputs : t -> Tensor.t array
(** Output values of the last {!run}, in graph-output order. See the
    aliasing contract above. *)

val eval : t -> feeds:Echo_exec.Interp.feeds -> Tensor.t list
(** Drop-in for {!Echo_exec.Interp.eval}: feed, run, return outputs. *)

(** {1 Introspection} *)

val graph : t -> Graph.t

val runtime : t -> Parallel.t
(** The kernel runtime baked in at compile time. *)

val instruction_count : t -> int
(** Length of the instruction array — one entry per schedule slot, including
    nops (buried constants, fused interiors). *)

val active_instruction_count : t -> int
(** Instructions that actually execute at run time. Fusion lowers this: a
    group of [k] members costs one instruction instead of [k]; compile-time
    buried constants don't count either. *)

val fused_group_count : t -> int
(** Number of fused groups compiled; [0] without [?fusion]. Matches
    [Echo_opt.Fusion.stats] on the same graph by construction (both derive
    from {!Echo_ir.Fuse.analyse}). *)

val fused_interior_count : t -> int
(** Chain members that were folded into a fused instruction and got no
    buffer, tensor or instruction of their own. *)

val footprint_bytes : t -> int
(** Device-accounted (4 bytes/element) footprint of the compiled artifact:
    persistent + transient pool + max workspace. Equal to
    [(Memplan.plan graph).arena_bytes] by construction — the differential
    test suite asserts this. *)

val transient_bytes : t -> int
val persistent_bytes : t -> int

val buffer_binding : t -> (Node.t * int) list
(** The compile-time buffer binding: [(node, physical buffer id)] for every
    transient slot that materialises (fused interiors and buried constants
    are absent), in schedule order. Two nodes share a physical buffer iff
    they carry the same id — the verification layer
    ({!Echo_analysis.Verify}) re-derives liveness from scratch and proves no
    two overlapping-live nodes share one. *)

val interp_fallback_count : t -> int
(** Number of compiled instructions that evaluate through the reference
    interpreter instead of a native compiled kernel (currently the conv2d
    family). Surfaced by [echoc --lint] as an info diagnostic. *)

val sanitize_mode : t -> Echo_analysis.Sanitize.mode
(** The shadow-memory sanitizer mode this executor was compiled with. *)

val sanitize_report : t -> Echo_diag.Report.t option
(** The sanitizer's findings so far ([None] when compiled with it off).
    {!run} raises [Echo_analysis.Sanitize.Sanitize_failed] as soon as a
    step finishes with error findings, but the report remains readable
    here afterwards. *)
