(** The socket-free request engine behind [echoc serve].

    One engine owns the {!Plan_cache}, the tenant budget table and the
    batching policy; the socket server ({!Server}) is a thin transport over
    {!exec_all}, so tests and benchmarks drive the exact production code
    path without a socket.

    {2 Protocol}

    One request per line: a verb followed by [key=value] tokens, answered
    by exactly one [ok ...] or [err <reason>] line. Unknown verbs, unknown
    keys and malformed values are rejected loudly, naming the offender.

    - [ping] → [ok pong]
    - [stats] → [ok hits=H misses=M evictions=E entries=N bytes=B]
    - [shutdown] → [ok bye] (the transport owns actually stopping)
    - [compile <spec> [tenant=T]] → [ok key=K cached=B footprint=N] —
      compile the spec's training graph through the plan cache;
      [cached=true] is a hit that skipped the whole pipeline.
    - [train <spec> [steps=N] [lr=F] [corpus-seed=N] [tenant=T]] →
      [ok steps=N losses=h1,h2,...] — run {!Echo_train.Loop.train} over a
      synthetic Zipf-Markov corpus, compiling through the plan cache;
      losses are hex floats ([%h]) so clients can compare bit-exactly.
    - [eval <spec> tokens=i,j,k,... [tenant=T]] →
      [ok loss=%h batched=K] — score a single token sequence (mean
      next-token NLL over the [len-1] transitions) under the spec's
      deterministic initial parameters, with dropout forced off.
    - [lint <spec> [tenant=T]] →
      [ok findings=N errors=E warnings=W cached=B] followed by one line
      per finding ([[severity] check\@stage [ids]: message]) — run the
      full Echo-verify layer ({!Echo_compiler.Pipeline.verify} at the
      executable stage plus the static race checker
      {!Echo_compiler.Pipeline.race_verify}) over the spec's compiled
      artifact. Compilation goes through the plan cache, so linting a
      warm spec re-checks the cached executable without recompiling. A
      sound artifact answers with [errors=0] and only info-level lines
      (e.g. the false-sharing lint). This is the only multi-line [ok]
      response in the protocol.

    The model [<spec>] keys (all optional):
    [model] (lm|gru-lm|rnn-lm|peephole-lm, default lm), [hidden] (32),
    [embed] (= hidden), [layers] (1), [seq_len] (8), [batch] (4),
    [vocab] (50), [seed] (42), [dropout] (0). [eval] derives [seq_len]
    from the token count and ignores [batch]/[dropout].

    {2 Batching}

    {!exec_all} coalesces the [eval] requests of one drain into stacked
    executor steps: requests whose specs agree on everything but the batch
    dimension are grouped, interleaved round-robin across tenants (so no
    tenant monopolises a batch), chunked at [max_batch], and executed as
    one forward pass at batch [k] — request [j]'s step-[t] row is
    time-major row [t*k + j]. Every op on the logits path is
    row-independent and the kernels are bit-identical at every partition,
    so batched losses are {e bit-identical} to serial ones; the serve test
    suite asserts this at 1/2/4 domains.

    {2 Tenants}

    [tenants] maps tenant names to device-memory budgets. A request
    carrying [tenant=T] compiles under that budget (it is part of the
    cache key); crossing it answers [err budget exceeded ...] via
    {!Echo_compiler.Executor.Budget_exceeded}. A batched group compiles
    under the minimum budget of its members and falls back to per-request
    execution (each under its own budget) if the stacked batch does not
    fit. Naming an unknown tenant is an error; omitting [tenant] means
    unbudgeted. *)

type t

val create :
  ?cache_bytes:int ->
  ?tenants:(string * int) list ->
  ?max_batch:int ->
  ?runtime:Echo_tensor.Parallel.t ->
  unit ->
  t
(** [cache_bytes] caps the plan cache ({!Plan_cache.create}); [tenants]
    maps names to budget bytes; [max_batch] (default 8) caps the stacked
    eval batch; [runtime] is the kernel runtime every compile uses
    (default: sized by [ECHO_DOMAINS]).
    @raise Invalid_argument on a non-positive [cache_bytes]/[max_batch]
    or a duplicate/empty tenant name. *)

val cache : t -> Plan_cache.t

val exec : t -> string -> string
(** Answer one request line ([exec_all] with a singleton drain). *)

val exec_all : t -> string list -> string list
(** Answer one drain of request lines, in order. Non-[eval] requests are
    answered independently; [eval] requests are batched as described
    above. The response list has exactly one line per request line. *)
