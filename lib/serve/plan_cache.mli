(** The content-addressed compile cache behind [echoc serve].

    Entries are whole {!Echo_compiler.Pipeline.executable}s keyed by
    {!Echo_compiler.Pipeline.cache_key} — a pure function of the canonical
    graph fingerprint and every compile knob — so two requests for the same
    model shape under the same planner/fusion/runtime/budget share one
    compiled artifact, and a hit skips the entire pipeline including the
    [ECHO_VERIFY=1] self-certification.

    Storage policy:
    - {b LRU under a byte cap.} Entries are charged their executor's
      {!Echo_compiler.Executor.footprint_bytes}; when an insert pushes the
      total over [cap_bytes], least-recently-used entries are evicted until
      it fits again. An entry that alone exceeds the cap is compiled,
      served, and not retained.
    - {b Single-flight.} Concurrent fetches of one missing key run exactly
      one compile: the first caller compiles, the rest block on a condition
      variable and are served the finished entry. A compile that raises
      releases the key so a waiter can retry.

    All operations are safe to call from multiple domains. *)

type t

val create : ?cap_bytes:int -> unit -> t
(** [cap_bytes] caps the summed footprint of retained entries (absent:
    unbounded). @raise Invalid_argument if [cap_bytes <= 0]. *)

val fetch :
  t ->
  key:string ->
  compile:(unit -> Echo_compiler.Pipeline.executable) ->
  Echo_compiler.Pipeline.executable * bool
(** Serve [key] from the table ([..., true]) or run [compile] once and
    remember the result ([..., false]). [compile] must not recurse into
    the same cache with the same key (single-flight would deadlock) —
    pass a plain [Pipeline.compile_graph] call, not a cached one.
    Exceptions from [compile] propagate to the caller after the key is
    released. *)

val hook : t -> Echo_compiler.Pipeline.cache
(** The cache as a {!Echo_compiler.Pipeline.cache}, for
    [Pipeline.compile_graph ?cache] and [Loop.train ?cache]. *)

type stats = {
  hits : int;
  misses : int;  (** fetches that ran [compile] (or tried to) *)
  evictions : int;
  entries : int;  (** currently retained *)
  bytes : int;  (** summed footprint of retained entries *)
}

val stats : t -> stats
