module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor

type entry = {
  exe : Pipeline.executable;
  bytes : int;
  mutable last_use : int;  (** logical clock of the most recent fetch *)
}

type t = {
  lock : Mutex.t;
  filled : Condition.t;
      (** broadcast whenever an in-flight key resolves (insert or failure) *)
  cap_bytes : int option;
  table : (string, entry) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  mutable clock : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let create ?cap_bytes () =
  (match cap_bytes with
  | Some c when c <= 0 ->
    invalid_arg
      (Printf.sprintf "Plan_cache.create: cap_bytes must be positive, got %d" c)
  | _ -> ());
  {
    lock = Mutex.create ();
    filled = Condition.create ();
    cap_bytes;
    table = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    clock = 0;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Caller holds [t.lock]. Evict the least-recently-used entry; ties cannot
   happen (the clock is strictly increasing). *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, e') when e'.last_use <= e.last_use -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, e) ->
    Hashtbl.remove t.table key;
    t.bytes <- t.bytes - e.bytes;
    t.evictions <- t.evictions + 1

let fetch t ~key ~compile =
  Mutex.lock t.lock;
  let rec resolve () =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.clock <- t.clock + 1;
      e.last_use <- t.clock;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      (e.exe, true)
    | None when Hashtbl.mem t.inflight key ->
      (* Another fetch is compiling this key; wait for it and re-check —
         the entry may also have been evicted between broadcast and wake,
         in which case this caller becomes the next compiler. *)
      Condition.wait t.filled t.lock;
      resolve ()
    | None ->
      Hashtbl.replace t.inflight key ();
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      let exe =
        try compile ()
        with ex ->
          Mutex.lock t.lock;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.filled;
          Mutex.unlock t.lock;
          raise ex
      in
      let bytes = Executor.footprint_bytes (Pipeline.executor exe) in
      Mutex.lock t.lock;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table key { exe; bytes; last_use = t.clock };
      t.bytes <- t.bytes + bytes;
      (match t.cap_bytes with
      | Some cap ->
        (* The fresh entry carries the highest clock, so it is evicted
           last — and evicted too when it alone exceeds the cap. *)
        while t.bytes > cap && Hashtbl.length t.table > 0 do
          evict_lru t
        done
      | None -> ());
      Hashtbl.remove t.inflight key;
      Condition.broadcast t.filled;
      Mutex.unlock t.lock;
      (exe, false)
  in
  resolve ()

let hook t = { Pipeline.fetch = (fun ~key ~compile -> fst (fetch t ~key ~compile)) }

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
      bytes = t.bytes;
    }
  in
  Mutex.unlock t.lock;
  s
