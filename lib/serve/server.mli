(** The Unix-socket transport for {!Engine}.

    Single-threaded [select] loop: every readable client is drained first,
    then the accumulated complete request lines are answered in one
    {!Engine.exec_all} — that drain is the batching window in which
    same-shape [eval] requests (pipelined on one connection or arriving
    together on several) coalesce into stacked executor steps. Responses
    are written back in request order, one line each.

    [serve] blocks until a client sends [shutdown]: the pending drain is
    answered (the shutdown itself with [ok bye]), every connection is
    closed, the socket file is removed, and [serve] returns. *)

val serve : socket:string -> Engine.t -> unit
(** Listen on Unix socket [socket] (an existing socket file is replaced)
    and answer requests until [shutdown].
    @raise Unix.Unix_error when the socket cannot be bound (e.g. the
    parent directory is missing). *)
