(* One connection's receive state: bytes accumulate in [pending] until a
   '\n' completes a request line. *)
type client = { fd : Unix.file_descr; pending : Buffer.t }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Split the completed lines off the front of [buf], leaving the partial
   tail in place. Trailing '\r' (telnet-style clients) is stripped. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        let line = String.sub s !start (i - !start) in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1)
          else line
        in
        lines := line :: !lines;
        start := i + 1
      end)
    s;
  Buffer.clear buf;
  Buffer.add_substring buf s !start (String.length s - !start);
  List.rev !lines

let is_shutdown line = String.trim line = "shutdown"

let serve ~socket engine =
  if Sys.file_exists socket then Unix.unlink socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let close_client c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let chunk = Bytes.create 4096 in
  let stop = ref false in
  while not !stop do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    let readable, _, _ = Unix.select fds [] [] (-1.0) in
    (* Drain every readable connection before answering anything: requests
       that arrive together batch together. *)
    let requests = ref [] in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          let conn, _ = Unix.accept listen_fd in
          Hashtbl.replace clients conn { fd = conn; pending = Buffer.create 256 }
        end
        else begin
          let c = Hashtbl.find clients fd in
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> close_client c
          | n ->
            Buffer.add_subbytes c.pending chunk 0 n;
            List.iter
              (fun line -> requests := (c, line) :: !requests)
              (drain_lines c.pending)
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            close_client c
        end)
      readable;
    let requests = List.rev !requests in
    if requests <> [] then begin
      let responses = Engine.exec_all engine (List.map snd requests) in
      List.iter2
        (fun (c, _) resp ->
          if Hashtbl.mem clients c.fd then begin
            try write_all c.fd (resp ^ "\n")
            with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
              close_client c
          end)
        requests responses;
      if List.exists (fun (_, line) -> is_shutdown line) requests then
        stop := true
    end
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists socket then Unix.unlink socket
