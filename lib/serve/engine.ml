open Echo_tensor
open Echo_ir
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor
module Language_model = Echo_models.Language_model
module Recurrent = Echo_models.Recurrent
module Params = Echo_models.Params
module Model = Echo_models.Model
module Loop = Echo_train.Loop
module Optimizer = Echo_train.Optimizer
module Corpus = Echo_workloads.Corpus

(* A malformed request. Never escapes [exec_all]: it renders as one
   [err <reason>] response line. *)
exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

type t = {
  cache : Plan_cache.t;
  tenants : (string * int) list;  (** name -> budget bytes *)
  max_batch : int;
  runtime : Parallel.t option;
  keys : (Language_model.config * int option, string) Hashtbl.t;
      (** Memoised [Pipeline.cache_key] per (spec, budget): the training
          graph is a pure function of the spec, so once a spec's key is
          known a cache hit answers without rebuilding the model — the
          dominant cost of a warm [compile] request. In-process only, so
          structural hashing is fine here (no run-to-run stability
          requirement, unlike {!Echo_ir.Graph.fingerprint}). *)
}

let create ?cache_bytes ?(tenants = []) ?(max_batch = 8) ?runtime () =
  if max_batch <= 0 then
    invalid_arg
      (Printf.sprintf "Engine.create: max_batch must be positive, got %d"
         max_batch);
  List.iteri
    (fun i (name, bytes) ->
      if name = "" then invalid_arg "Engine.create: empty tenant name";
      if bytes <= 0 then
        invalid_arg
          (Printf.sprintf
             "Engine.create: tenant %S budget must be positive, got %d" name
             bytes);
      if List.mem_assoc name (List.filteri (fun j _ -> j < i) tenants) then
        invalid_arg
          (Printf.sprintf "Engine.create: duplicate tenant %S" name))
    tenants;
  {
    cache = Plan_cache.create ?cap_bytes:cache_bytes ();
    tenants;
    max_batch;
    runtime;
    keys = Hashtbl.create 16;
  }

let cache t = t.cache

(* {2 Request parsing} *)

let kvs_of toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when i > 0 ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | _ ->
        reject "malformed token %S — requests are VERB key=value ..." tok)
    toks

let check_keys ~verb ~allowed kvs =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        reject "unknown key %S for %s (allowed: %s)" k verb
          (String.concat ", " allowed))
    kvs;
  List.iteri
    (fun i (k, _) ->
      if List.mem_assoc k (List.filteri (fun j _ -> j < i) kvs) then
        reject "duplicate key %S for %s" k verb)
    kvs

let int_field kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ -> reject "bad value for %s: %S (want a positive integer)" key v)

let float_field kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> default
  | Some v -> (
    match float_of_string_opt v with
    | Some f when Float.is_finite f && f > 0.0 -> f
    | _ -> reject "bad value for %s: %S (want a positive number)" key v)

let spec_keys =
  [
    "model"; "hidden"; "embed"; "layers"; "seq_len"; "batch"; "vocab"; "seed";
    "dropout"; "tenant";
  ]

let cell_of name =
  match name with
  | "lm" -> Recurrent.Lstm
  | "peephole-lm" -> Recurrent.Peephole
  | "gru-lm" -> Recurrent.Gru
  | "rnn-lm" -> Recurrent.Vanilla
  | _ -> reject "unknown model %S (lm|peephole-lm|gru-lm|rnn-lm)" name

let spec_of kvs =
  let cell = cell_of (Option.value ~default:"lm" (List.assoc_opt "model" kvs)) in
  let hidden = int_field kvs "hidden" ~default:32 in
  let vocab = int_field kvs "vocab" ~default:50 in
  if vocab < 2 then reject "bad value for vocab: %d (want >= 2)" vocab;
  let dropout =
    match List.assoc_opt "dropout" kvs with
    | None -> 0.0
    | Some v -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p < 1.0 -> p
      | _ -> reject "bad value for dropout: %S (want 0 <= p < 1)" v)
  in
  {
    Language_model.vocab;
    embed = int_field kvs "embed" ~default:hidden;
    hidden;
    layers = int_field kvs "layers" ~default:1;
    seq_len = int_field kvs "seq_len" ~default:8;
    batch = int_field kvs "batch" ~default:4;
    dropout;
    cell;
    seed = int_field kvs "seed" ~default:42;
  }

let budget_of t kvs =
  match List.assoc_opt "tenant" kvs with
  | None -> None
  | Some name -> (
    match List.assoc_opt name t.tenants with
    | Some bytes -> Some (name, bytes)
    | None ->
      reject "unknown tenant %S (known: %s)" name
        (if t.tenants = [] then "none"
         else String.concat ", " (List.map fst t.tenants)))

(* {2 Verbs} *)

let training_graph lm =
  (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph

(* The cache key for a spec, building the training graph only when the
   (spec, budget) pair has never been keyed on this engine. *)
let key_of t cfg budget_bytes =
  match Hashtbl.find_opt t.keys (cfg, budget_bytes) with
  | Some key -> key
  | None ->
    let graph = training_graph (Language_model.build cfg) in
    let key = Pipeline.cache_key ?runtime:t.runtime ?budget_bytes graph in
    Hashtbl.replace t.keys (cfg, budget_bytes) key;
    key

let do_compile t kvs =
  check_keys ~verb:"compile" ~allowed:spec_keys kvs;
  let cfg = spec_of kvs in
  let budget_bytes = Option.map snd (budget_of t kvs) in
  let key = key_of t cfg budget_bytes in
  let exe, hit =
    Plan_cache.fetch t.cache ~key ~compile:(fun () ->
        (* The graph is rebuilt here rather than threaded from [key_of]:
           on a plan-cache hit no build happens at all, which is the
           latency the warm path is measured on. *)
        Pipeline.compile_graph ?budget_bytes ?runtime:t.runtime
          (training_graph (Language_model.build cfg)))
  in
  Printf.sprintf "ok key=%s cached=%b footprint=%d" key hit
    (Executor.footprint_bytes (Pipeline.executor exe))

let do_train t kvs =
  check_keys ~verb:"train"
    ~allowed:(("steps" :: "lr" :: "corpus-seed" :: spec_keys))
    kvs;
  let cfg = spec_of kvs in
  let budget_bytes = Option.map snd (budget_of t kvs) in
  let steps = int_field kvs "steps" ~default:4 in
  let lr = float_field kvs "lr" ~default:0.5 in
  let corpus_seed = int_field kvs "corpus-seed" ~default:5 in
  let lm = Language_model.build cfg in
  let corpus =
    Corpus.generate ~seed:corpus_seed ~vocab:cfg.Language_model.vocab
      ~length:
        (((steps + 2) * cfg.Language_model.batch * cfg.Language_model.seq_len)
        + 1)
  in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [
          (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels);
        ])
      (Corpus.lm_batches corpus ~batch:cfg.Language_model.batch
         ~seq_len:cfg.Language_model.seq_len ~steps)
  in
  let result =
    Loop.train
      ~graph:(training_graph lm)
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr }))
      ?budget_bytes ?runtime:t.runtime
      ~cache:(Plan_cache.hook t.cache)
      ~batches ()
  in
  Printf.sprintf "ok steps=%d losses=%s"
    (List.length result.Loop.losses)
    (String.concat "," (List.map (Printf.sprintf "%h") result.Loop.losses))

(* Lint: run the full Echo-verify layer (classic checkers + the static
   race/partition-disjointness analysis) over the spec's compiled
   executable and render every finding as one line. The compile itself
   goes through the plan cache, so linting a warm spec re-checks the
   cached artifact without recompiling. *)
let do_lint t kvs =
  check_keys ~verb:"lint" ~allowed:spec_keys kvs;
  let cfg = spec_of kvs in
  let budget_bytes = Option.map snd (budget_of t kvs) in
  let key = key_of t cfg budget_bytes in
  let exe, hit =
    Plan_cache.fetch t.cache ~key ~compile:(fun () ->
        Pipeline.compile_graph ?budget_bytes ?runtime:t.runtime
          (training_graph (Language_model.build cfg)))
  in
  let report = Echo_diag.Report.create () in
  Echo_diag.Report.append ~into:report
    (Pipeline.verify (Pipeline.Executable exe));
  Echo_diag.Report.append ~into:report (Pipeline.race_verify exe);
  let diags = Echo_diag.Report.diags report in
  String.concat "\n"
    (Printf.sprintf "ok findings=%d errors=%d warnings=%d cached=%b"
       (List.length diags)
       (Echo_diag.Report.error_count report)
       (Echo_diag.Report.warning_count report)
       hit
    :: List.map Echo_diag.to_string diags)

let do_stats t =
  let s = Plan_cache.stats t.cache in
  Printf.sprintf "ok hits=%d misses=%d evictions=%d entries=%d bytes=%d"
    s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.evictions
    s.Plan_cache.entries s.Plan_cache.bytes

(* {2 Eval batching} *)

type eval_req = {
  idx : int;  (** position in the drain, for response routing *)
  cfg : Language_model.config;  (** canonical: batch = 1, dropout = 0 *)
  tokens : int array;  (** length [cfg.seq_len + 1] *)
  tenant : (string * int) option;
}

let parse_eval t ~idx kvs =
  check_keys ~verb:"eval" ~allowed:("tokens" :: spec_keys) kvs;
  let cfg = spec_of kvs in
  let tenant = budget_of t kvs in
  let tokens =
    match List.assoc_opt "tokens" kvs with
    | None -> reject "eval needs tokens=i,j,k,... (comma-separated ids)"
    | Some s ->
      Array.of_list
        (List.map
           (fun v ->
             match int_of_string_opt v with
             | Some n when n >= 0 && n < cfg.Language_model.vocab -> n
             | _ ->
               reject "bad token %S (want an id in 0..%d)" v
                 (cfg.Language_model.vocab - 1))
           (String.split_on_char ',' s))
  in
  if Array.length tokens < 2 then
    reject "eval needs at least 2 tokens (context and next token)";
  {
    idx;
    cfg =
      {
        cfg with
        Language_model.seq_len = Array.length tokens - 1;
        batch = 1;
        dropout = 0.0;
      };
    tokens;
    tenant;
  }

(* Two requests batch together iff their canonical configs agree — same
   structure, same parameters, same sequence length. *)
let group_key r =
  let c = r.cfg in
  Printf.sprintf "%s/%d/%d/%d/%d/%d/%d"
    (Recurrent.kind_to_string c.Language_model.cell)
    c.Language_model.hidden c.Language_model.embed c.Language_model.layers
    c.Language_model.vocab c.Language_model.seed c.Language_model.seq_len

(* Fairness: interleave the group's members round-robin across tenants, in
   first-appearance order, so a tenant flooding the queue cannot push the
   others' requests out of the early (and earliest-answered) chunks. *)
let round_robin reqs =
  let order = ref [] in
  let queues : (string, eval_req Queue.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      let name = match r.tenant with Some (n, _) -> n | None -> "" in
      let q =
        match Hashtbl.find_opt queues name with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace queues name q;
          order := name :: !order;
          q
      in
      Queue.add r q)
    reqs;
  let order = List.rev !order in
  let out = ref [] in
  let drained = ref false in
  while not !drained do
    drained := true;
    List.iter
      (fun name ->
        let q = Hashtbl.find queues name in
        if not (Queue.is_empty q) then begin
          out := Queue.pop q :: !out;
          drained := false
        end)
      order
  done;
  List.rev !out

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let head, rest = take n [] l in
    head :: chunk n rest

(* One stacked executor step over [reqs] (all same canonical config):
   request [j]'s step-[t] ids live in time-major row [t*k + j]. Every op
   between the token ids and the logits is row-independent and the kernels
   are bit-identical under partitioning, so each row's logits — and the
   host-side NLL folded over them in ascending-[t] order — are bit-identical
   to a [k = 1] run of the same request. *)
let eval_stacked t reqs =
  let k = List.length reqs in
  let r0 = List.hd reqs in
  let t_len = r0.cfg.Language_model.seq_len in
  let cfg = { r0.cfg with Language_model.batch = k } in
  let lm = Language_model.build cfg in
  let fwd = Graph.create [ lm.Language_model.logits ] in
  let budget_bytes =
    List.fold_left
      (fun acc r ->
        match (r.tenant, acc) with
        | None, acc -> acc
        | Some (_, b), None -> Some b
        | Some (_, b), Some a -> Some (min a b))
      None reqs
  in
  let key = Pipeline.cache_key ?runtime:t.runtime ?budget_bytes fwd in
  let exe, _ =
    Plan_cache.fetch t.cache ~key ~compile:(fun () ->
        Pipeline.compile_graph ?budget_bytes ?runtime:t.runtime fwd)
  in
  let e = Pipeline.executor exe in
  let toks = Array.of_list (List.map (fun r -> r.tokens) reqs) in
  let ids =
    Tensor.init
      [| t_len * k |]
      (fun idx ->
        let row = idx.(0) in
        float_of_int toks.(row mod k).(row / k))
  in
  (* Cache-hit executors belong to whichever build populated the entry, so
     all feeds resolve by name; "labels" is absent from the logits-only
     graph and params the graph buried are skipped, like [Executor.feed]
     does for foreign nodes. *)
  let feed name tensor =
    match Executor.input_slot_by_name e name with
    | Some s -> Executor.set_input e s tensor
    | None -> ()
  in
  feed "tokens" ids;
  List.iter
    (fun (node, v) -> feed (Node.name node) v)
    (Params.bindings lm.Language_model.model.Model.params);
  Executor.run e;
  let logits = (Executor.outputs e).(0) in
  List.mapi
    (fun j r ->
      let acc = ref 0.0 in
      for step = 0 to t_len - 1 do
        let row =
          Tensor.slice ~axis:0 ~lo:((step * k) + j) ~hi:((step * k) + j + 1)
            logits
        in
        let lp = Tensor.log_softmax row in
        acc := !acc -. Tensor.get lp [| 0; r.tokens.(step + 1) |]
      done;
      ( r.idx,
        Printf.sprintf "ok loss=%h batched=%d" (!acc /. float_of_int t_len) k ))
    reqs

let budget_err ~requested_bytes ~budget_bytes =
  Printf.sprintf "err budget exceeded: requested=%d budget=%d" requested_bytes
    budget_bytes

let rec eval_chunk t reqs =
  match eval_stacked t reqs with
  | results -> results
  | exception Executor.Budget_exceeded { requested_bytes; budget_bytes }
    when List.length reqs = 1 ->
    [ ((List.hd reqs).idx, budget_err ~requested_bytes ~budget_bytes) ]
  | exception Executor.Budget_exceeded _ ->
    (* The stacked batch crossed the tightest member budget; fall back to
       per-request execution, each under its own budget. *)
    List.concat_map (fun r -> eval_chunk t [ r ]) reqs

(* {2 Dispatch} *)

let immediate t verb kvs =
  match verb with
  | "ping" ->
    check_keys ~verb:"ping" ~allowed:[] kvs;
    "ok pong"
  | "shutdown" ->
    check_keys ~verb:"shutdown" ~allowed:[] kvs;
    "ok bye"
  | "stats" ->
    check_keys ~verb:"stats" ~allowed:[] kvs;
    do_stats t
  | "compile" -> do_compile t kvs
  | "train" -> do_train t kvs
  | "lint" -> do_lint t kvs
  | _ ->
    reject "unknown verb %S (ping|stats|compile|train|lint|eval|shutdown)" verb

let exec_all t lines =
  let n = List.length lines in
  let responses = Array.make n "" in
  let evals = ref [] in
  List.iteri
    (fun idx line ->
      let toks =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      in
      match toks with
      | [] -> responses.(idx) <- "err empty request"
      | verb :: rest -> (
        try
          let kvs = kvs_of rest in
          if verb = "eval" then evals := parse_eval t ~idx kvs :: !evals
          else responses.(idx) <- immediate t verb kvs
        with
        | Reject msg -> responses.(idx) <- "err " ^ msg
        | Executor.Budget_exceeded { requested_bytes; budget_bytes } ->
          responses.(idx) <- budget_err ~requested_bytes ~budget_bytes))
    lines;
  (* Coalesce the drain's eval requests: same-shape groups, round-robin
     across tenants, chunks of at most [max_batch] per stacked step. *)
  let evals = List.rev !evals in
  let group_order = ref [] in
  let groups : (string, eval_req list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      let key = group_key r in
      match Hashtbl.find_opt groups key with
      | Some rs -> Hashtbl.replace groups key (r :: rs)
      | None ->
        Hashtbl.replace groups key [ r ];
        group_order := key :: !group_order)
    evals;
  List.iter
    (fun key ->
      let members = round_robin (List.rev (Hashtbl.find groups key)) in
      List.iter
        (fun reqs ->
          List.iter
            (fun (idx, resp) -> responses.(idx) <- resp)
            (eval_chunk t reqs))
        (chunk t.max_batch members))
    (List.rev !group_order);
  Array.to_list responses

let exec t line =
  match exec_all t [ line ] with
  | [ resp ] -> resp
  | _ -> assert false
