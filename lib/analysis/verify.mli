(** Echo-verify: independent static sanitizers over compiled artifacts.

    Every stage of the pipeline produces an inspectable artifact — a
    schedule, a rewritten graph, an offset assignment, a fusion plan, a
    compiled buffer binding. The checkers here re-prove the safety
    conditions those artifacts rely on {e from scratch}: liveness intervals
    are re-derived from the graph (not read back from {!Echo_exec.Liveness}),
    and the elementwise / in-place-capable operator sets are duplicated
    rather than imported, so a bug in the planner and a bug in the checker
    must coincide for a violation to slip through (translation validation,
    not self-certification).

    Each checker returns a collecting {!Echo_diag.Report}; a sound artifact
    yields a report with no errors. The checkers deliberately do {e not}
    re-prove what holds by construction — see DESIGN.md ("Verification
    layer") for the trust boundary of each one. *)

open Echo_ir

exception Verify_failed of Echo_diag.Report.t
(** Raised by {!check_exn} (and by the pipeline under [ECHO_VERIFY=1]) when
    a report contains error-severity findings. *)

val check_exn : Echo_diag.Report.t -> unit
(** @raise Verify_failed if the report has at least one error. *)

val env_enabled : unit -> bool
(** [ECHO_VERIFY=1|on|true|yes] turns on in-pipeline verification (the
    checkers run inside [Pipeline.compile] and raise {!Verify_failed} on
    error findings); unset or anything else leaves it off. *)

(** {1 Checkers}

    Each takes the graph plus the artifact it certifies and returns its own
    report; {!lint} composes them. *)

val check_schedule : ?schedule:Node.t list -> Graph.t -> Echo_diag.Report.t
(** Check ["schedule"]: the execution order is a topological order of the
    dataflow edges (no node before an input, no duplicate slots, every
    output present, node count matches the graph), and every node's recorded
    shape re-infers identically through {!Echo_ir.Op.infer_shape}.
    [schedule] (default [Graph.nodes]) lets the mutation harness present a
    corrupted order. *)

val check_determinism : Graph.t -> Echo_diag.Report.t
(** Check ["determinism"]: every operator is pure (replay-deterministic —
    stochastic ops must carry their seed in the op, as [DropoutMask] does),
    with an info-severity note when two unrelated same-shape masks share a
    seed (correlated dropout is legal but rarely intended). *)

val check_recompute : Graph.t -> Echo_diag.Report.t
(** Check ["recompute"]: every recomputation clone ([mirror]'s ["~r"]
    convention) lives in the backward region, matches its forward original
    operator-for-operator (including the [DropoutMask] seed) and
    shape-for-shape, reads inputs that correspond to the original's (the
    input itself, or that input's clone), and carries a scheduling hint no
    later than its earliest consumer's — recomputation stays
    just-in-time. *)

val check_fusion : ?max_externals:int -> Graph.t -> Fuse.plan -> Echo_diag.Report.t
(** Check ["fusion"]: every group is a single-consumer chain of elementwise,
    same-shape, same-region graph members (no forward/backward crossing);
    no interior is a graph output or consumed outside the group; the root is
    the last member; the recorded externals are exactly what the fused
    kernel reads and number at most [max_externals] (default
    {!Echo_ir.Fuse.default_max_externals}); no node belongs to two
    groups. *)

val check_offsets : Graph.t -> Echo_exec.Assign.t -> Echo_diag.Report.t
(** Check ["assign"]: re-derives every slot's live interval from the graph
    (ignoring the interval the slot itself records, which is separately
    checked against the derivation), then proves no two live-overlapping
    slots overlap in address space and no slot escapes the arena; every
    non-persistent node has exactly one slot. *)

val check_binding :
  ?fusion:Fuse.plan -> Graph.t -> (Node.t * int) list -> Echo_diag.Report.t
(** Checks ["alias"] and ["inplace"] over a compiled executor's buffer
    binding ({!val:Echo_compiler.Executor.buffer_binding}-shaped data).
    Re-derives live intervals from scratch — under [fusion], a group
    member's reads extend to the group root's step and interiors must not
    appear in the binding at all — and proves that two nodes bound to the
    same physical buffer never overlap in liveness. Back-to-back handover
    (the taker defined exactly at the donor's last read) is legal only as an
    in-place transfer: the taker's operator can write in place, the donor is
    among the buffers the taker's instruction actually reads (group
    externals for a fused root), sizes match, and the donor is not a graph
    output. Also proves the binding covers every materialising node exactly
    once. *)

val check_fallbacks : ?compiled_count:int -> Graph.t -> Echo_diag.Report.t
(** Check ["fallback"]: info-severity count of operators the compiled
    executor evaluates through the reference interpreter (the conv2d
    family). When [compiled_count] (from
    {!val:Echo_compiler.Executor.interp_fallback_count}) is given and
    disagrees with the graph-derived count, that is an error — the compiled
    artifact diverged from its graph. *)

(** {1 Composition} *)

val lint :
  ?schedule:Node.t list ->
  ?fusion:Fuse.plan ->
  ?offsets:Echo_exec.Assign.t ->
  ?binding:(Node.t * int) list ->
  ?fallback_count:int ->
  ?max_externals:int ->
  Graph.t ->
  Echo_diag.Report.t
(** Run every checker applicable to the artifacts provided and collect all
    findings into one report: {!check_schedule}, {!check_determinism},
    {!check_recompute} and {!check_fallbacks} always; {!check_fusion} when
    [fusion] is given; {!check_offsets} when [offsets] is given;
    {!check_binding} when [binding] is given. *)
