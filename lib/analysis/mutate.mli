(** Mutation harness: seed one deliberate, realistic corruption into an
    otherwise sound artifact so the test suite can prove each {!Verify}
    checker actually fires. Every mutator returns [None] when the artifact
    offers no site for its corruption (no clone to reseed, no slot pair to
    overlap), so tests can assert presence explicitly instead of silently
    passing on an empty mutation. *)

open Echo_ir

val swap_schedule : Graph.t -> Node.t list option
(** A schedule with one node hoisted in front of its inputs — breaks
    topological order for {!Verify.check_schedule}'s [?schedule]. *)

val overlap_slots : Echo_exec.Assign.t -> Echo_exec.Assign.t option
(** Force two simultaneously-live slots onto the same byte offset —
    {!Verify.check_offsets} must report the address overlap. *)

val escape_slot : Echo_exec.Assign.t -> Echo_exec.Assign.t option
(** Push one slot's offset past the arena end — {!Verify.check_offsets}
    must report the escape. *)

val alias_binding :
  Graph.t -> (Node.t * int) list -> (Node.t * int) list option
(** Rebind a node onto the physical buffer of another node that is still
    live at its definition — {!Verify.check_binding} must report the
    alias. *)

val retarget_inplace :
  Graph.t -> (Node.t * int) list -> (Node.t * int) list option
(** Hand a dying input's buffer to a consumer whose operator cannot write
    in place — a corrupted in-place transfer {!Verify.check_binding} must
    reject. *)

val reseed_clone : Graph.t -> Graph.t option
(** Rebuild the graph with one recomputation clone's [DropoutMask] seed
    changed: the clone now recomputes a {e different} mask than was used in
    the forward pass — {!Verify.check_recompute} must report the operator
    divergence. *)

val bad_clone_hint : Graph.t -> Graph.t option
(** Rebuild the graph with one clone's scheduling hint pushed past its
    earliest consumer's — recomputation is no longer just-in-time and
    {!Verify.check_recompute} must say so. *)

val cross_region_group : Graph.t -> Fuse.plan option
(** A hand-indexed fusion plan whose single group chains a forward producer
    into a backward consumer — {!Verify.check_fusion} must report the
    region crossing. *)

(** {1 Race-verify corruptions}

    Each targets exactly one {!Race} / {!Sanitize} checker; the harness
    proves every one fires both statically (through [Race]'s
    [?chunk_bounds] / [?intervals] / [?layout] injection points) and
    dynamically (through [Executor.compile ?liveness] or a directly
    driven {!Sanitize}). *)

val shift_partition : [ `Overlap | `Gap ] -> int -> int -> int -> int * int
(** A corrupted chunk formula with every interior boundary shifted one
    row: adjacent chunks either both write the boundary row or neither
    does — {!Race.check_kernels}'s [?chunk_bounds] must report the
    overlap / gap. *)

val shrink_lifetime :
  Echo_exec.Liveness.t -> Echo_exec.Liveness.interval list option
(** Expire one read-after-def buffer at its definition step, so the pool
    may recycle it under the pending read — {!Race.check_lifetimes} must
    report the stale read, and an executor compiled over
    [Liveness.of_intervals] of the same corruption must trip the
    sanitizer. *)

val alias_offsets : Graph.t -> (Node.t * int) list -> (int * int) list option
(** A corrupted arena layout placing one buffer's base on top of another
    whose tenant is live across the victim's definition —
    {!Race.check_addresses}'s [?layout] must report the overlapping live
    buffers. *)

val widen_fused_interior : Fuse.plan -> Fuse.plan option
(** Swap one single-input interior of a fused group for a clone one row
    wider than the root's sweep — {!Race.check_fused} must report the
    extent mismatch. *)
