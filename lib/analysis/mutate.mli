(** Mutation harness: seed one deliberate, realistic corruption into an
    otherwise sound artifact so the test suite can prove each {!Verify}
    checker actually fires. Every mutator returns [None] when the artifact
    offers no site for its corruption (no clone to reseed, no slot pair to
    overlap), so tests can assert presence explicitly instead of silently
    passing on an empty mutation. *)

open Echo_ir

val swap_schedule : Graph.t -> Node.t list option
(** A schedule with one node hoisted in front of its inputs — breaks
    topological order for {!Verify.check_schedule}'s [?schedule]. *)

val overlap_slots : Echo_exec.Assign.t -> Echo_exec.Assign.t option
(** Force two simultaneously-live slots onto the same byte offset —
    {!Verify.check_offsets} must report the address overlap. *)

val escape_slot : Echo_exec.Assign.t -> Echo_exec.Assign.t option
(** Push one slot's offset past the arena end — {!Verify.check_offsets}
    must report the escape. *)

val alias_binding :
  Graph.t -> (Node.t * int) list -> (Node.t * int) list option
(** Rebind a node onto the physical buffer of another node that is still
    live at its definition — {!Verify.check_binding} must report the
    alias. *)

val retarget_inplace :
  Graph.t -> (Node.t * int) list -> (Node.t * int) list option
(** Hand a dying input's buffer to a consumer whose operator cannot write
    in place — a corrupted in-place transfer {!Verify.check_binding} must
    reject. *)

val reseed_clone : Graph.t -> Graph.t option
(** Rebuild the graph with one recomputation clone's [DropoutMask] seed
    changed: the clone now recomputes a {e different} mask than was used in
    the forward pass — {!Verify.check_recompute} must report the operator
    divergence. *)

val bad_clone_hint : Graph.t -> Graph.t option
(** Rebuild the graph with one clone's scheduling hint pushed past its
    earliest consumer's — recomputation is no longer just-in-time and
    {!Verify.check_recompute} must say so. *)

val cross_region_group : Graph.t -> Fuse.plan option
(** A hand-indexed fusion plan whose single group chains a forward producer
    into a backward consumer — {!Verify.check_fusion} must report the
    region crossing. *)
