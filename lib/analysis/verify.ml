open Echo_ir
module Assign = Echo_exec.Assign
module Report = Echo_diag.Report

exception Verify_failed of Echo_diag.Report.t

let check_exn report = if Report.has_errors report then raise (Verify_failed report)

let env_enabled () =
  match Sys.getenv_opt "ECHO_VERIFY" with
  | Some ("1" | "on" | "true" | "yes") -> true
  | Some _ | None -> false

(* The operator classifications below deliberately duplicate
   Liveness.is_persistent, Fuse.elementwise and Memplan.inplace_capable
   instead of calling them: the checkers certify those modules' output, so
   sharing their predicates would make every check a tautology. A new
   operator must be classified here too — the exhaustive matches make the
   compiler insist. *)

let persistent_op op =
  match op with
  | Op.Placeholder | Op.Variable -> true
  | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _ | Op.Neg | Op.Scale _
  | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh | Op.Relu | Op.Exp
  | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add | Op.Sub | Op.Mul
  | Op.Div | Op.Matmul _ | Op.AddBias | Op.ScaleBy | Op.Slice _ | Op.PadSlice _
  | Op.Concat _ | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _
  | Op.ReduceMean _ | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax
  | Op.CrossEntropy | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

let elementwise_op op =
  match op with
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.ScaleBy ->
    true
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Matmul _ | Op.AddBias | Op.Slice _ | Op.PadSlice _ | Op.Concat _
  | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _ | Op.ReduceMean _
  | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax | Op.CrossEntropy
  | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _ | Op.Conv2d _
  | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

let inplace_capable_op op =
  match op with
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.AddBias | Op.ScaleBy | Op.Softmax
  | Op.LogSoftmax | Op.CrossEntropyGrad ->
    true
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Matmul _ | Op.Slice _ | Op.PadSlice _ | Op.Concat _ | Op.Reshape _
  | Op.Transpose2d | Op.ReduceSum _ | Op.ReduceMean _ | Op.BroadcastAxis _
  | Op.CrossEntropy | Op.Embedding | Op.EmbeddingGrad _ | Op.Conv2d _
  | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

let fallback_op op =
  match op with
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ -> true
  | _ -> false

let describe n =
  Printf.sprintf "%s %s (#%d)" (Op.to_string (Node.op n)) (Node.name n)
    (Node.id n)

let positions graph =
  let tbl = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace tbl (Node.id n) i) (Graph.nodes graph);
  tbl

(* Fusion structure re-derived from the raw group list (not from the plan's
   own index tables): member id -> group root, and the set of interiors. *)
let fusion_index fusion =
  let roots = Hashtbl.create 64 and interiors = Hashtbl.create 64 in
  let externals_of_root = Hashtbl.create 64 in
  (match fusion with
  | None -> ()
  | Some f ->
    List.iter
      (fun g ->
        Hashtbl.replace externals_of_root (Node.id g.Fuse.root) g.Fuse.externals;
        List.iter
          (fun m ->
            Hashtbl.replace roots (Node.id m) g.Fuse.root;
            if Node.id m <> Node.id g.Fuse.root then
              Hashtbl.replace interiors (Node.id m) ())
          g.Fuse.members)
      (Fuse.groups f));
  (roots, interiors, externals_of_root)

(* Last step at which [node]'s buffer is read, re-derived from consumer
   edges: [max_int] for graph outputs (they survive the step), and under
   fusion a group member's reads happen at its root's instruction. *)
let derive_last graph pos roots node def =
  if Graph.is_output graph (Node.id node) then max_int
  else
    List.fold_left
      (fun acc c ->
        let reader =
          match Hashtbl.find_opt roots (Node.id c) with
          | Some root -> root
          | None -> c
        in
        match Hashtbl.find_opt pos (Node.id reader) with
        | Some p -> max acc p
        | None -> acc)
      def
      (Graph.consumers graph (Node.id node))

(* -------------------------------------------------------------------- *)

let check_schedule ?schedule graph =
  let schedule = match schedule with Some s -> s | None -> Graph.nodes graph in
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"schedule" ~stage:"graph" ~nodes fmt
  in
  let count = List.length schedule in
  if count <> Graph.node_count graph then
    err ~nodes:[]
      "schedule has %d slot(s) but the graph has %d node(s)" count
      (Graph.node_count graph);
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen (Node.id n) then
        err ~nodes:[ Node.id n ] "duplicate slot: %s is scheduled twice"
          (describe n);
      List.iter
        (fun i ->
          if not (Hashtbl.mem seen (Node.id i)) then
            err
              ~nodes:[ Node.id n; Node.id i ]
              "%s is scheduled before its input %s" (describe n) (describe i))
        (Node.inputs n);
      Hashtbl.add seen (Node.id n) ())
    schedule;
  List.iter
    (fun o ->
      if not (Hashtbl.mem seen (Node.id o)) then
        err ~nodes:[ Node.id o ] "output %s is missing from the schedule"
          (describe o))
    (Graph.outputs graph);
  (* Shape re-inference: the recorded shape of every node must fall out of
     its operator and input shapes again. *)
  List.iter
    (fun n ->
      let explicit =
        match Node.op n with
        | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _
        | Op.DropoutMask _ ->
          Some (Node.shape n)
        | _ -> None
      in
      match
        Op.infer_shape (Node.op n)
          (List.map Node.shape (Node.inputs n))
          explicit
      with
      | inferred ->
        if not (Echo_tensor.Shape.equal inferred (Node.shape n)) then
          err ~nodes:[ Node.id n ]
            "%s records shape %s but shape inference yields %s" (describe n)
            (Echo_tensor.Shape.to_string (Node.shape n))
            (Echo_tensor.Shape.to_string inferred)
      | exception e ->
        err ~nodes:[ Node.id n ] "shape inference failed on %s: %s" (describe n)
          (Printexc.to_string e))
    schedule;
  report

let check_determinism graph =
  let report = Report.create () in
  List.iter
    (fun n ->
      if not (Op.is_pure (Node.op n)) then
        Report.errorf report ~check:"determinism" ~stage:"graph"
          ~nodes:[ Node.id n ]
          "%s is not pure: re-execution (recomputation, checkpoint replay) \
           is not bit-deterministic"
          (describe n))
    (Graph.nodes graph);
  (* Unrelated same-shape masks sharing a seed draw identical dropout
     patterns. A clone legitimately shares its original's seed (that is the
     whole point of seeded recomputation), so base-name pairs are exempt. *)
  let by_seed : (int, Node.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      match Node.op n with
      | Op.DropoutMask { seed; _ } ->
        let cur = try Hashtbl.find by_seed seed with Not_found -> [] in
        Hashtbl.replace by_seed seed (n :: cur)
      | _ -> ())
    (Graph.nodes graph);
  Hashtbl.iter
    (fun seed nodes ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              if
                Echo_core.Rewrite.base_name a <> Echo_core.Rewrite.base_name b
                && Echo_tensor.Shape.equal (Node.shape a) (Node.shape b)
              then
                Report.infof report ~check:"determinism" ~stage:"graph"
                  ~nodes:[ Node.id a; Node.id b ]
                  "unrelated DropoutMask nodes %s and %s share seed %d: their \
                   masks are identical"
                  (describe a) (describe b) seed)
            rest;
          pairs rest
      in
      pairs nodes)
    by_seed;
  report

let check_recompute graph =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"recompute" ~stage:"rewritten" ~nodes fmt
  in
  (* Forward originals by name; clones answer to base_name. *)
  let originals : (string, Node.t list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun n ->
      if not (Echo_core.Rewrite.is_clone n) then begin
        let cur = try Hashtbl.find originals (Node.name n) with Not_found -> [] in
        Hashtbl.replace originals (Node.name n) (n :: cur)
      end)
    (Graph.forward_nodes graph);
  List.iter
    (fun clone ->
      if Echo_core.Rewrite.is_clone clone then begin
        let id = Node.id clone in
        if Node.region clone <> Node.Backward then
          err ~nodes:[ id ]
            "recomputation clone %s lives in the forward region: it would \
             execute (and be stashed) alongside its original"
            (describe clone);
        (* Just-in-time: the clone's hint must not place it later than its
           earliest consumer wants it. Equality is legal (the no-sharing
           ablation gives a whole private chain one hint). *)
        (match Graph.consumers graph id with
        | [] -> ()
        | consumers ->
          let earliest =
            List.fold_left (fun acc c -> Float.min acc (Node.hint c)) infinity
              consumers
          in
          if Node.hint clone > earliest then
            err ~nodes:[ id ]
              "clone %s carries hint %g, later than its earliest consumer's \
               %g: recomputation is not just-in-time"
              (describe clone) (Node.hint clone) earliest);
        match
          Hashtbl.find_opt originals (Echo_core.Rewrite.base_name clone)
        with
        | None | Some [] ->
          Report.warnf report ~check:"recompute" ~stage:"rewritten"
            ~nodes:[ id ]
            "clone %s has no forward original named %s in the graph"
            (describe clone)
            (Echo_core.Rewrite.base_name clone)
        | Some candidates ->
          (* The clone must recompute the same value: same operator
             (including any DropoutMask seed), same shape, and inputs that
             are the original's inputs or their clones. Names repeat across
             unrolled timesteps (every LSTM step has a "tanh_c"), so the
             clone's original is whichever same-named forward node its
             inputs correspond to. *)
          let input_corresponds uc uo =
            Node.equal uc uo
            || Echo_core.Rewrite.is_clone uc
               && Echo_core.Rewrite.base_name uc = Node.name uo
          in
          let corresponds o =
            List.length (Node.inputs clone) = List.length (Node.inputs o)
            && List.for_all2 input_corresponds (Node.inputs clone)
                 (Node.inputs o)
          in
          let same_op =
            List.filter (fun o -> Node.op clone = Node.op o) candidates
          in
          (match same_op with
          | [] ->
            let orig = List.hd candidates in
            err ~nodes:[ id; Node.id orig ]
              "clone %s diverges from its original %s: op %s vs %s — \
               recomputation would produce a different value"
              (describe clone) (describe orig)
              (Op.to_string (Node.op clone))
              (Op.to_string (Node.op orig))
          | _ -> (
            match List.find_opt corresponds same_op with
            | Some orig ->
              if
                not
                  (Echo_tensor.Shape.equal (Node.shape clone)
                     (Node.shape orig))
              then
                err ~nodes:[ id; Node.id orig ]
                  "clone %s has shape %s but its original %s has shape %s"
                  (describe clone)
                  (Echo_tensor.Shape.to_string (Node.shape clone))
                  (describe orig)
                  (Echo_tensor.Shape.to_string (Node.shape orig))
            | None ->
              let orig = List.hd same_op in
              if
                List.length (Node.inputs clone)
                <> List.length (Node.inputs orig)
              then
                err ~nodes:[ id; Node.id orig ]
                  "clone %s reads %d input(s) where its original %s reads %d"
                  (describe clone)
                  (List.length (Node.inputs clone))
                  (describe orig)
                  (List.length (Node.inputs orig))
              else
                List.iter2
                  (fun uc uo ->
                    if not (input_corresponds uc uo) then
                      err
                        ~nodes:[ id; Node.id uc ]
                        "clone %s reads %s where its original reads %s — \
                         the recomputed value is not the original's"
                        (describe clone) (describe uc) (describe uo))
                  (Node.inputs clone) (Node.inputs orig)))
      end)
    (Graph.nodes graph);
  report

let check_fusion ?(max_externals = Fuse.default_max_externals) graph plan =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"fusion" ~stage:"fused" ~nodes fmt
  in
  let membership : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun g ->
      let members = g.Fuse.members in
      let root = g.Fuse.root in
      let ids = List.map Node.id members in
      (match members with
      | [] | [ _ ] ->
        err ~nodes:ids "fusion group has %d member(s); a group is a chain of \
                        at least two"
          (List.length members)
      | _ -> ());
      List.iter
        (fun m ->
          if Hashtbl.mem membership (Node.id m) then
            err ~nodes:[ Node.id m ]
              "%s belongs to two fusion groups: its buffer binding is \
               ambiguous"
              (describe m)
          else Hashtbl.replace membership (Node.id m) ();
          if not (Graph.mem graph (Node.id m)) then
            err ~nodes:[ Node.id m ] "fused member %s is not in the graph"
              (describe m);
          if not (elementwise_op (Node.op m)) then
            err ~nodes:[ Node.id m ]
              "%s is fused but %s is not an elementwise operator: it cannot \
               fold in registers"
              (describe m)
              (Op.to_string (Node.op m)))
        members;
      (match List.rev members with
      | actual_last :: _ when Node.id actual_last <> Node.id root ->
        err
          ~nodes:[ Node.id root; Node.id actual_last ]
          "group root %s is not the last chain member %s" (describe root)
          (describe actual_last)
      | _ -> ());
      (* Chain structure, shapes, regions, and interior containment. *)
      let rec walk = function
        | prev :: (m :: _ as rest) ->
          (match Node.inputs m with
          | first :: _ when Node.equal first prev -> ()
          | _ ->
            err
              ~nodes:[ Node.id m; Node.id prev ]
              "%s does not chain on %s as its first input: the fused kernel \
               would fold the wrong producer"
              (describe m) (describe prev));
          if not (Echo_tensor.Shape.equal (Node.shape m) (Node.shape prev))
          then
            err
              ~nodes:[ Node.id m; Node.id prev ]
              "fused members %s and %s differ in shape: one register sweep \
               cannot cover both"
              (describe m) (describe prev);
          if Node.region m <> Node.region prev then
            err
              ~nodes:[ Node.id m; Node.id prev ]
              "fusion group crosses the forward/backward boundary between %s \
               and %s: fusing would recompute across the region split the \
               planner accounts for"
              (describe prev) (describe m);
          (* [prev] is an interior here: it must feed only [m], and must
             not be a graph output (outputs materialise). *)
          if Graph.is_output graph (Node.id prev) then
            err ~nodes:[ Node.id prev ]
              "fused interior %s is a graph output but never materialises"
              (describe prev);
          (match Graph.consumers graph (Node.id prev) with
          | [ c ] when Node.equal c m -> ()
          | consumers ->
            err ~nodes:(Node.id prev :: List.map Node.id consumers)
              "fused interior %s has %d consumer(s); it must feed exactly \
               its chain successor %s, since its value exists only in the \
               fused kernel's registers"
              (describe prev) (List.length consumers) (describe m));
          walk rest
        | [] | [ _ ] -> ()
      in
      walk members;
      (* Externals: what the fused kernel actually reads is the head's
         inputs plus every later member's non-chain inputs. *)
      (match members with
      | head :: _ ->
        let expected =
          List.concat_map
            (fun m ->
              if Node.equal m head then Node.inputs m
              else match Node.inputs m with [] -> [] | _ :: rest -> rest)
            members
        in
        let ids_of l = List.map Node.id l in
        if ids_of expected <> ids_of g.Fuse.externals then
          err ~nodes:ids
            "group rooted at %s records externals [%s] but its members read \
             [%s]: liveness extension would miss a buffer the kernel reads"
            (describe root)
            (String.concat ", "
               (List.map string_of_int (ids_of g.Fuse.externals)))
            (String.concat ", " (List.map string_of_int (ids_of expected)));
        if List.length g.Fuse.externals > max_externals then
          err ~nodes:ids
            "group rooted at %s reads %d external buffer(s), over the budget \
             of %d: fusing would pin them all live until the root and grow \
             the arena"
            (describe root)
            (List.length g.Fuse.externals)
            max_externals
      | [] -> ()))
    (Fuse.groups plan);
  report

let check_offsets graph offsets =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"assign" ~stage:"planned" ~nodes fmt
  in
  let pos = positions graph in
  let no_roots = Hashtbl.create 0 in
  let arena = Assign.arena_size offsets in
  let slots = Assign.slots offsets in
  (* Coverage: one slot per non-persistent node, no strays. *)
  let slot_of : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let id = s.Assign.node_id in
      if Hashtbl.mem slot_of id then
        err ~nodes:[ id ] "node #%d has two slots in the assignment" id
      else Hashtbl.replace slot_of id ())
    slots;
  List.iter
    (fun n ->
      if persistent_op (Node.op n) then begin
        if Hashtbl.mem slot_of (Node.id n) then
          err ~nodes:[ Node.id n ]
            "persistent %s has a slot in the transient arena" (describe n)
      end
      else if not (Hashtbl.mem slot_of (Node.id n)) then
        err ~nodes:[ Node.id n ] "transient %s has no slot in the assignment"
          (describe n))
    (Graph.nodes graph);
  (* Re-derive every interval; distrust the recorded steps. *)
  let derived =
    List.filter_map
      (fun s ->
        let id = s.Assign.node_id in
        match Hashtbl.find_opt pos id with
        | None ->
          err ~nodes:[ id ] "slot of node #%d, which is not in the graph" id;
          None
        | Some def ->
          let node = Graph.find graph id in
          let last = derive_last graph pos no_roots node def in
          if s.Assign.def_step <> def || s.Assign.last_step <> last then
            err ~nodes:[ id ]
              "slot of %s records steps %d..%d but the schedule implies \
               %d..%d"
              (describe node) s.Assign.def_step s.Assign.last_step def last;
          if s.Assign.offset < 0 || s.Assign.offset + s.Assign.size > arena
          then
            err ~nodes:[ id ]
              "slot of %s ([%d, %d)) escapes the %d-byte arena" (describe node)
              s.Assign.offset
              (s.Assign.offset + s.Assign.size)
              arena;
          Some (s, def, last))
      slots
  in
  let arr = Array.of_list derived in
  Array.sort (fun (_, d1, _) (_, d2, _) -> compare d1 d2) arr;
  (* Sorted by definition step, a bounded forward scan sees every
     concurrent pair: once [def] passes [a]'s last read, no later slot can
     overlap [a] in time. *)
  Array.iteri
    (fun i (a, _, a_last) ->
      let j = ref (i + 1) in
      let continue = ref true in
      while !continue && !j < Array.length arr do
        let b, b_def, _ = arr.(!j) in
        if b_def > a_last then continue := false
        else if
          a.Assign.offset < b.Assign.offset + b.Assign.size
          && b.Assign.offset < a.Assign.offset + a.Assign.size
        then
          err
            ~nodes:[ a.Assign.node_id; b.Assign.node_id ]
            "slots of node #%d ([%d, %d)) and node #%d ([%d, %d)) are live \
             simultaneously and overlap in address space"
            a.Assign.node_id a.Assign.offset
            (a.Assign.offset + a.Assign.size)
            b.Assign.node_id b.Assign.offset
            (b.Assign.offset + b.Assign.size);
        incr j
      done)
    arr;
  report

let check_binding ?fusion graph binding =
  let report = Report.create () in
  let err ~check ~nodes fmt =
    Report.errorf report ~check ~stage:"executable" ~nodes fmt
  in
  let pos = positions graph in
  let roots, interiors, externals_of_root = fusion_index fusion in
  (* Coverage: every materialising node bound exactly once. *)
  let bound = Hashtbl.create 1024 in
  List.iter
    (fun (n, bid) ->
      if Hashtbl.mem bound (Node.id n) then
        err ~check:"alias" ~nodes:[ Node.id n ]
          "%s is bound to two physical buffers" (describe n)
      else Hashtbl.replace bound (Node.id n) bid)
    binding;
  List.iter
    (fun n ->
      if
        (not (persistent_op (Node.op n)))
        && (not (Hashtbl.mem interiors (Node.id n)))
        && not (Hashtbl.mem bound (Node.id n))
      then
        err ~check:"alias" ~nodes:[ Node.id n ]
          "%s materialises but has no physical buffer in the compiled binding"
          (describe n))
    (Graph.nodes graph);
  (* Re-derive intervals and group by physical buffer. *)
  let by_bid : (int, (Node.t * int * int) list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (n, bid) ->
      if persistent_op (Node.op n) then
        err ~check:"alias" ~nodes:[ Node.id n ]
          "persistent %s is bound to transient buffer %d: its value would be \
           overwritten by buffer reuse"
          (describe n) bid
      else if Hashtbl.mem interiors (Node.id n) then
        err ~check:"alias" ~nodes:[ Node.id n ]
          "fused interior %s materialises buffer %d but lives only in the \
           fused kernel's registers"
          (describe n) bid
      else
        match Hashtbl.find_opt pos (Node.id n) with
        | None ->
          err ~check:"alias" ~nodes:[ Node.id n ]
            "bound node %s is not in the graph" (describe n)
        | Some def ->
          let last = derive_last graph pos roots n def in
          let cur = try Hashtbl.find by_bid bid with Not_found -> [] in
          Hashtbl.replace by_bid bid ((n, def, last) :: cur))
    binding;
  Hashtbl.iter
    (fun bid entries ->
      let arr = Array.of_list entries in
      Array.sort (fun (_, d1, _) (_, d2, _) -> compare d1 d2) arr;
      if Array.length arr > 1 then begin
        (* Scan in definition order keeping the live holder (the entry whose
           re-derived last read reaches furthest). A later definition before
           the holder's last read is an aliasing violation; a definition
           exactly at it is a buffer handover and must be a legal in-place
           transfer; past it, plain pool reuse. *)
        let holder = ref arr.(0) in
        for k = 1 to Array.length arr - 1 do
          let (hn, h_def, h_last) = !holder in
          let ((n, n_def, n_last) as entry) = arr.(k) in
          if Node.size_bytes n <> Node.size_bytes hn then
            err ~check:"alias"
              ~nodes:[ Node.id hn; Node.id n ]
              "%s and %s share physical buffer %d but differ in size (%d vs \
               %d bytes)"
              (describe hn) (describe n) bid (Node.size_bytes hn)
              (Node.size_bytes n);
          if n_def < h_last then
            err ~check:"alias"
              ~nodes:[ Node.id hn; Node.id n ]
              "%s (steps %d..%s) and %s (defined at step %d) are live \
               simultaneously but share physical buffer %d"
              (describe hn) h_def
              (if h_last = max_int then "end" else string_of_int h_last)
              (describe n) n_def bid
          else if n_def = h_last then begin
            (* Handover: the taker's instruction overwrites the donor's
               buffer in the very step of the donor's last read. *)
            if not (inplace_capable_op (Node.op n)) then
              err ~check:"inplace"
                ~nodes:[ Node.id n; Node.id hn ]
                "%s takes over the buffer of %s in place, but %s cannot \
                 write in place (it reads its inputs non-elementwise)"
                (describe n) (describe hn)
                (Op.to_string (Node.op n));
            let candidates =
              match Hashtbl.find_opt externals_of_root (Node.id n) with
              | Some externals -> externals
              | None -> Node.inputs n
            in
            if
              not
                (List.exists (fun c -> Node.id c = Node.id hn) candidates)
            then
              err ~check:"inplace"
                ~nodes:[ Node.id n; Node.id hn ]
                "%s writes in place over %s, which is not among the buffers \
                 its instruction reads — the donor's last read is elsewhere \
                 and would observe the overwrite"
                (describe n) (describe hn);
            if Graph.is_output graph (Node.id hn) then
              err ~check:"inplace"
                ~nodes:[ Node.id n; Node.id hn ]
                "in-place donor %s is a graph output: its value must survive \
                 the step"
                (describe hn)
          end;
          if n_last > h_last then holder := entry
        done
      end)
    by_bid;
  report

let check_fallbacks ?compiled_count graph =
  let report = Report.create () in
  let fallback_nodes =
    List.filter (fun n -> fallback_op (Node.op n)) (Graph.nodes graph)
  in
  let derived = List.length fallback_nodes in
  (match compiled_count with
  | Some c when c <> derived ->
    Report.errorf report ~check:"fallback" ~stage:"executable"
      ~nodes:(List.map Node.id fallback_nodes)
      "the compiled executor reports %d interpreter-fallback instruction(s) \
       but the graph has %d conv-family node(s)"
      c derived
  | Some _ | None -> ());
  if derived > 0 then
    Report.infof report ~check:"fallback" ~stage:"executable"
      ~nodes:(List.map Node.id fallback_nodes)
      "%d instruction(s) evaluate through the reference interpreter (conv2d \
       family has no compiled kernel yet)"
      derived;
  report

let lint ?schedule ?fusion ?offsets ?binding ?fallback_count ?max_externals
    graph =
  let report = Report.create () in
  let add r = Report.append r ~into:report in
  add (check_schedule ?schedule graph);
  add (check_determinism graph);
  add (check_recompute graph);
  (match fusion with
  | Some f -> add (check_fusion ?max_externals graph f)
  | None -> ());
  (match offsets with
  | Some a -> add (check_offsets graph a)
  | None -> ());
  (match binding with
  | Some b -> add (check_binding ?fusion graph b)
  | None -> ());
  add (check_fallbacks ?compiled_count:fallback_count graph);
  report
