(* Race-verify: static partition-disjointness analysis for the parallel
   executor.

   The compiled executor fans every heavy kernel out over
   [Parallel.parallel_for]: output rows (or the flat element range) are
   split into contiguous chunks that worker domains claim dynamically. The
   runtime is race-free only by construction — nothing else proves that
   the chunks actually tile the output, that no chunk reads what another
   chunk writes, or that the arena's in-place aliases stay legal under
   that partitioning. These checkers prove exactly that, per instruction,
   from scratch.

   Like Verify, every predicate here deliberately DUPLICATES the runtime
   instead of importing it: the chunk formula, the fan-out gate, the
   per-operator access patterns and work weights are all re-stated
   locally, so a kernel bug and a checker bug must coincide for a race to
   slip through. A new operator must be classified here too — the
   exhaustive matches make the compiler insist. *)

open Echo_ir
module Report = Echo_diag.Report
module Parallel = Echo_tensor.Parallel
module Shape = Echo_tensor.Shape

let describe n =
  Printf.sprintf "%s %s (#%d)" (Op.to_string (Node.op n)) (Node.name n)
    (Node.id n)

let positions graph =
  let tbl = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace tbl (Node.id n) i) (Graph.nodes graph);
  tbl

(* Member id -> group root, and the interior set, re-derived from the raw
   group list. *)
let fusion_index fusion =
  let roots = Hashtbl.create 64 and interiors = Hashtbl.create 64 in
  (match fusion with
  | None -> ()
  | Some f ->
    List.iter
      (fun g ->
        List.iter
          (fun m ->
            Hashtbl.replace roots (Node.id m) g.Fuse.root;
            if Node.id m <> Node.id g.Fuse.root then
              Hashtbl.replace interiors (Node.id m) ())
          g.Fuse.members)
      (Fuse.groups f));
  (roots, interiors)

let derive_last graph pos roots node def =
  if Graph.is_output graph (Node.id node) then max_int
  else
    List.fold_left
      (fun acc c ->
        let reader =
          match Hashtbl.find_opt roots (Node.id c) with
          | Some root -> root
          | None -> c
        in
        match Hashtbl.find_opt pos (Node.id reader) with
        | Some p -> max acc p
        | None -> acc)
      def
      (Graph.consumers graph (Node.id node))

(* ------------------------------------------------------------------ *)
(* The per-operator access model: what each compiled kernel's chunks
   write and read, re-stated from [Tensor.Into].                       *)
(* ------------------------------------------------------------------ *)

type access = {
  rows : int;  (** the index range handed to [parallel_for] *)
  stride : int;  (** dst elements owned per index *)
  work : int;  (** per-index scalar work, mirroring the kernels' hints *)
  may_alias : Node.t list;
      (** inputs the kernel reads chunk-aligned (or wholly before the
          fan-out): sharing the destination buffer is race-free *)
  no_alias : Node.t list;
      (** inputs the kernel gathers across chunk boundaries: a read from
          these overlaps another domain's write if they share the
          destination buffer *)
  fans_out : bool;  (** the kernel consults [parallel_for] at all *)
}

let sequential_access node reads =
  {
    rows = Shape.numel (Node.shape node);
    stride = 1;
    work = 1;
    may_alias = [];
    no_alias = reads;
    fans_out = false;
  }

(* Per-element scalar work of an elementwise operator, matching
   [Tensor.fused_step_work]. *)
let elementwise_work op =
  match op with
  | Op.PowConst _ | Op.Sigmoid | Op.Tanh | Op.Exp | Op.Log | Op.Sqrt -> 8
  | _ -> 1

let last_dim shape =
  let r = Shape.rank shape in
  if r = 0 then 1 else shape.(r - 1)

let access_of node =
  let shape = Node.shape node in
  let numel = Shape.numel shape in
  let inputs = Node.inputs node in
  match Node.op node with
  | Op.Placeholder | Op.Variable -> sequential_access node []
  (* Compile-time or sequential writers: [fill]/[blit]-family kernels run
     on the calling domain, so there is no intra-instruction concurrency
     to prove. *)
  | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _ | Op.Slice _ | Op.PadSlice _
  | Op.Concat _ | Op.Reshape _ | Op.BroadcastAxis _ | Op.CrossEntropy
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    sequential_access node inputs
  (* Flat-element partition, element-aligned reads: chunk [lo, hi) reads
     exactly elements [lo, hi) of each operand before writing them. *)
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid
  | Op.Tanh | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip
  | Op.Sign | Op.Add | Op.Sub | Op.Mul | Op.Div ->
    {
      rows = numel;
      stride = 1;
      work = elementwise_work (Node.op node);
      may_alias = inputs;
      no_alias = [];
      fans_out = true;
    }
  (* The [1]-shaped multiplier is captured before the fan-out, so even it
     may share the destination buffer. *)
  | Op.ScaleBy ->
    {
      rows = numel;
      stride = 1;
      work = 1;
      may_alias = inputs;
      no_alias = [];
      fans_out = true;
    }
  | Op.Matmul { trans_a; trans_b = _ } ->
    let m = shape.(0) and n = shape.(1) in
    let k =
      match inputs with
      | a :: _ ->
        let sa = Node.shape a in
        if trans_a then sa.(0) else sa.(1)
      | [] -> 1
    in
    {
      rows = m;
      stride = n;
      work = 2 * k * n;
      may_alias = [];
      no_alias = inputs;
      fans_out = true;
    }
  | Op.AddBias ->
    let r = shape.(0) and c = shape.(1) in
    let matrix, bias =
      match inputs with
      | [ m; b ] -> ([ m ], [ b ])
      | _ -> ([], inputs)
    in
    {
      rows = r;
      stride = c;
      work = c;
      may_alias = matrix;
      no_alias = bias;
      fans_out = true;
    }
  | Op.Softmax | Op.LogSoftmax ->
    let cols = last_dim shape in
    {
      rows = numel / max 1 cols;
      stride = cols;
      work = 10 * cols;
      may_alias = inputs;
      no_alias = [];
      fans_out = true;
    }
  | Op.CrossEntropyGrad ->
    let b = shape.(0) and v = last_dim shape in
    let logits, labels =
      match inputs with
      | [ l; lab ] -> ([ l ], [ lab ])
      | _ -> ([], inputs)
    in
    {
      rows = b;
      stride = v;
      work = 10 * v;
      may_alias = logits;
      no_alias = labels;
      fans_out = true;
    }
  | Op.ReduceSum { axis; _ } | Op.ReduceMean { axis; _ } ->
    let src_shape =
      match inputs with x :: _ -> Node.shape x | [] -> shape
    in
    let outer = ref 1 and inner = ref 1 in
    Array.iteri
      (fun i d ->
        if i < axis then outer := !outer * d
        else if i > axis then inner := !inner * d)
      src_shape;
    let d = if axis < Array.length src_shape then src_shape.(axis) else 1 in
    {
      rows = !outer;
      stride = !inner;
      work = d * !inner;
      may_alias = [];
      no_alias = inputs;
      fans_out = true;
    }
  | Op.Transpose2d ->
    let n = shape.(0) and m = shape.(1) in
    {
      rows = n;
      stride = m;
      work = m;
      may_alias = [];
      no_alias = inputs;
      fans_out = true;
    }
  | Op.Embedding ->
    let b = shape.(0) and d = last_dim shape in
    {
      rows = b;
      stride = d;
      work = d;
      may_alias = [];
      no_alias = inputs;
      fans_out = true;
    }
  | Op.EmbeddingGrad _ ->
    let v = shape.(0) and d = last_dim shape in
    let b =
      match inputs with ids :: _ -> Shape.numel (Node.shape ids) | [] -> 1
    in
    {
      rows = v;
      stride = d;
      work = b + (b * d / max 1 v);
      may_alias = [];
      no_alias = inputs;
      fans_out = true;
    }

(* A fused group root compiles to one step-outer sweep over the root's
   flat element range; every external is read element-aligned (the [1]-
   shaped ScaleBy multiplier wholly before any write), so all externals
   may alias the destination. *)
let fused_access g =
  let root = g.Fuse.root in
  let work =
    List.fold_left (fun acc m -> acc + elementwise_work (Node.op m)) 0
      g.Fuse.members
  in
  {
    rows = Shape.numel (Node.shape root);
    stride = 1;
    work;
    may_alias = g.Fuse.externals;
    no_alias = [];
    fans_out = true;
  }

(* ------------------------------------------------------------------ *)
(* Partition re-derivation: the runtime's fan-out decision, re-stated. *)
(* ------------------------------------------------------------------ *)

(* The default chunk formula, duplicated from [Parallel.chunk_bounds]. *)
let chunk_bounds n parts i = (i * n / parts, (i + 1) * n / parts)

(* How many chunks [parallel_for] splits [rows] indices of [work] weight
   into under [runtime] — the same gate, quantum and caps the runtime
   applies, re-stated. [1] means the kernel runs sequentially. *)
let derive_parts runtime ~rows ~work =
  let fan = Parallel.effective_fanout runtime in
  let gate = Parallel.min_fanout_work runtime in
  let total = rows * max 1 work in
  if fan <= 1 || total < gate || rows <= 0 then 1
  else begin
    let quantum = max 1 (gate / 4) in
    let parts = min (fan * Parallel.chunks_per_domain runtime) (max 1 (total / quantum)) in
    let parts = min parts rows in
    if parts <= 1 then 1 else parts
  end

(* ------------------------------------------------------------------ *)
(* Checkers                                                            *)
(* ------------------------------------------------------------------ *)

let cache_line_bytes = 64
let float_bytes = 8

let check_kernels ?chunk_bounds:(bounds = chunk_bounds) ?fusion ?binding
    ~runtime graph =
  let report = Report.create () in
  let err ~check ~nodes fmt =
    Report.errorf report ~check ~stage:"executable" ~nodes fmt
  in
  let _, interiors = fusion_index fusion in
  let group_of_root =
    match fusion with
    | Some f -> fun node -> Fuse.group_of_root f (Node.id node)
    | None -> fun _ -> None
  in
  let bid_of = Hashtbl.create 256 in
  (match binding with
  | Some b -> List.iter (fun (n, bid) -> Hashtbl.replace bid_of (Node.id n) bid) b
  | None -> ());
  let partitioned = ref 0 in
  let unaligned_boundaries = ref 0 in
  let unaligned_instrs = ref 0 in
  List.iter
    (fun node ->
      match Node.op node with
      | Op.Placeholder | Op.Variable -> ()
      | _ when Hashtbl.mem interiors (Node.id node) -> ()
      | _ ->
        let a =
          match group_of_root node with
          | Some g -> fused_access g
          | None -> access_of node
        in
        let parts =
          if a.fans_out then derive_parts runtime ~rows:a.rows ~work:a.work
          else 1
        in
        if parts > 1 then begin
          incr partitioned;
          (* Coverage and pairwise disjointness: the chunks must tile
             [0, rows) exactly. Monotone, gap-free, overlap-free bounds
             prove every pair of concurrent writes disjoint. *)
          let prev_hi = ref 0 in
          let instr_unaligned = ref 0 in
          for i = 0 to parts - 1 do
            let lo, hi = bounds a.rows parts i in
            if hi < lo then
              err ~check:"race-partition" ~nodes:[ Node.id node ]
                "chunk %d of %s spans [%d, %d): negative extent" i
                (describe node) lo hi;
            if lo < !prev_hi then
              err ~check:"race-partition" ~nodes:[ Node.id node ]
                "chunks %d and %d of %s both write rows [%d, %d): concurrent \
                 domains write the same destination cells"
                (i - 1) i (describe node) lo !prev_hi
            else if lo > !prev_hi then
              err ~check:"race-partition" ~nodes:[ Node.id node ]
                "rows [%d, %d) of %s are written by no chunk: the kernel \
                 would leave stale data in its destination"
                !prev_hi lo (describe node);
            if
              i > 0
              && lo * a.stride * float_bytes mod cache_line_bytes <> 0
            then incr instr_unaligned;
            prev_hi := max !prev_hi hi
          done;
          if !prev_hi <> a.rows then
            err ~check:"race-partition" ~nodes:[ Node.id node ]
              "rows [%d, %d) of %s are written by no chunk: the kernel would \
               leave stale data in its destination"
              !prev_hi a.rows (describe node);
          if !instr_unaligned > 0 then begin
            unaligned_boundaries := !unaligned_boundaries + !instr_unaligned;
            incr unaligned_instrs
          end;
          (* In-place alias legality under the partition: an input the
             kernel gathers across chunk boundaries must not share the
             destination's physical buffer — chunk [i]'s read of it would
             overlap chunk [j]'s concurrent write. *)
          match Hashtbl.find_opt bid_of (Node.id node) with
          | None -> ()
          | Some dst_bid ->
            List.iter
              (fun input ->
                match Hashtbl.find_opt bid_of (Node.id input) with
                | Some b when b = dst_bid ->
                  err ~check:"race-alias"
                    ~nodes:[ Node.id node; Node.id input ]
                    "%s gathers %s across chunk boundaries while writing the \
                     same physical buffer %d: the read overlaps a concurrent \
                     domain's write"
                    (describe node) (describe input) dst_bid
                | Some _ | None -> ())
              a.no_alias
        end)
    (Graph.nodes graph);
  if !unaligned_boundaries > 0 then
    Report.infof report ~check:"race-sharing" ~stage:"executable" ~nodes:[]
      "%d chunk boundary(ies) across %d of %d partitioned instruction(s) \
       fall inside a %d-byte cache line: adjacent domains write the same \
       line (false sharing, a throughput hazard, not a correctness one)"
      !unaligned_boundaries !unaligned_instrs !partitioned cache_line_bytes;
  report

let check_fused plan =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"race-fused" ~stage:"executable" ~nodes fmt
  in
  List.iter
    (fun g ->
      let root = g.Fuse.root in
      let sweep = Shape.numel (Node.shape root) in
      List.iter
        (fun m ->
          let n = Shape.numel (Node.shape m) in
          if n <> sweep then
            err
              ~nodes:[ Node.id root; Node.id m ]
              "fused group rooted at %s sweeps %d element(s) but member %s \
               spans %d: member-at-a-time semantics would write outside the \
               step-outer partition"
              (describe root) sweep (describe m) n)
        g.Fuse.members;
      List.iter
        (fun e ->
          let n = Shape.numel (Node.shape e) in
          if n <> sweep && n <> 1 then
            err
              ~nodes:[ Node.id root; Node.id e ]
              "fused group rooted at %s sweeps %d element(s) but external %s \
               spans %d: chunks would read outside their partition of the \
               operand"
              (describe root) sweep (describe e) n)
        g.Fuse.externals)
    (Fuse.groups plan);
  report

let check_lifetimes ?fusion ~intervals graph =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"race-liveness" ~stage:"executable" ~nodes fmt
  in
  let pos = positions graph in
  let roots, interiors = fusion_index fusion in
  let claimed = Hashtbl.create 1024 in
  List.iter
    (fun (id, def, last) ->
      if Hashtbl.mem claimed id then
        err ~nodes:[ id ] "node #%d has two liveness intervals in the plan" id
      else Hashtbl.replace claimed id ();
      match Hashtbl.find_opt pos id with
      | None ->
        err ~nodes:[ id ]
          "the plan carries a liveness interval for node #%d, which is not \
           in the graph"
          id
      | Some derived_def ->
        let node = Graph.find graph id in
        let derived_last = derive_last graph pos roots node derived_def in
        if def <> derived_def then
          err ~nodes:[ id ]
            "the plan defines %s at step %d but it is scheduled at step %d"
            (describe node) def derived_def;
        if last < derived_last then
          err ~nodes:[ id ]
            "the plan expires %s at step %s but a consumer reads it at step \
             %s: its buffer can be recycled under the pending read (stale- \
             read race)"
            (describe node)
            (if last = max_int then "end" else string_of_int last)
            (if derived_last = max_int then "end"
             else string_of_int derived_last)
        else if last > derived_last then
          err ~nodes:[ id ]
            "the plan keeps %s live to step %s but its last consumer reads \
             at step %s: the claimed read does not exist"
            (describe node)
            (if last = max_int then "end" else string_of_int last)
            (if derived_last = max_int then "end"
             else string_of_int derived_last))
    intervals;
  (* Coverage: a node the plan forgot has no interval at all — the
     executor would free its buffer immediately. *)
  List.iter
    (fun n ->
      let id = Node.id n in
      let persistent =
        match Node.op n with
        | Op.Placeholder | Op.Variable -> true
        | _ -> false
      in
      if
        (not persistent)
        && (not (Hashtbl.mem interiors id))
        && not (Hashtbl.mem claimed id)
      then
        err ~nodes:[ id ]
          "%s has no liveness interval in the plan: the executor has no \
           basis to keep its buffer alive"
          (describe n))
    (Graph.nodes graph);
  report

(* The synthetic address layout: physical buffers laid end to end in bid
   order. The layout is only a coordinate system — with the real executor
   every bid is a distinct allocation, so distinct bids are disjoint by
   construction and the default layout reflects that. A [?layout] override
   (the mutation harness's "alias two live offsets") places two buffers on
   overlapping addresses, which this checker must refuse whenever both
   hold live values. *)
let default_layout binding =
  let size_of = Hashtbl.create 64 in
  List.iter
    (fun (n, bid) ->
      let sz = Shape.numel (Node.shape n) in
      let cur = try Hashtbl.find size_of bid with Not_found -> 0 in
      if sz > cur then Hashtbl.replace size_of bid sz)
    binding;
  let bids = List.sort_uniq compare (List.map snd binding) in
  let base = ref 0 in
  List.map
    (fun bid ->
      let b = !base in
      base := !base + (try Hashtbl.find size_of bid with Not_found -> 0);
      (bid, b))
    bids

let check_addresses ?fusion ?layout graph binding =
  let report = Report.create () in
  let err ~nodes fmt =
    Report.errorf report ~check:"race-address" ~stage:"executable" ~nodes fmt
  in
  let pos = positions graph in
  let roots, _ = fusion_index fusion in
  let layout = match layout with Some l -> l | None -> default_layout binding in
  let base_of = Hashtbl.create 64 in
  List.iter (fun (bid, base) -> Hashtbl.replace base_of bid base) layout;
  let entries =
    List.filter_map
      (fun (n, bid) ->
        match Hashtbl.find_opt pos (Node.id n) with
        | None ->
          err ~nodes:[ Node.id n ] "bound node %s is not in the graph"
            (describe n);
          None
        | Some def ->
          let last = derive_last graph pos roots n def in
          let base =
            match Hashtbl.find_opt base_of bid with
            | Some b -> b
            | None ->
              err ~nodes:[ Node.id n ]
                "buffer %d of %s has no base address in the layout" bid
                (describe n);
              0
          in
          Some (n, bid, base, Shape.numel (Node.shape n), def, last))
      binding
  in
  let arr = Array.of_list entries in
  (* Sort by base address; only address-overlapping pairs can race, and
     they are adjacent in this order. *)
  Array.sort
    (fun (_, _, b1, _, _, _) (_, _, b2, _, _, _) -> compare b1 b2)
    arr;
  let n_entries = Array.length arr in
  for i = 0 to n_entries - 1 do
    let n1, bid1, base1, sz1, def1, last1 = arr.(i) in
    let j = ref (i + 1) in
    let continue = ref true in
    while !continue && !j < n_entries do
      let n2, bid2, base2, sz2, def2, last2 = arr.(!j) in
      if base2 >= base1 + sz1 then continue := false
      else begin
        (* Address ranges overlap. Writing one while the other still has
           a pending read is a race — except the sanctioned same-buffer
           handover, where the overwriting instruction IS the last
           reader (in-place, legality proven by the binding checker). *)
        let races (wn, w_def) (vn, v_def, v_last, v_bid) w_bid =
          (not (Node.equal wn vn))
          && v_def < w_def
          && (if w_bid = v_bid then v_last > w_def else v_last >= w_def)
        in
        if races (n2, def2) (n1, def1, last1, bid1) bid2 then
          err
            ~nodes:[ Node.id n2; Node.id n1 ]
            "writing %s (step %d) overwrites elements [%d, %d) of buffer %d \
             while %s (buffer %d, live to step %s) still has a pending \
             read: overlapping live buffers"
            (describe n2) def2 (max base1 base2)
            (min (base1 + sz1) (base2 + sz2))
            bid2 (describe n1) bid1
            (if last1 = max_int then "end" else string_of_int last1);
        if races (n1, def1) (n2, def2, last2, bid2) bid1 then
          err
            ~nodes:[ Node.id n1; Node.id n2 ]
            "writing %s (step %d) overwrites elements [%d, %d) of buffer %d \
             while %s (buffer %d, live to step %s) still has a pending \
             read: overlapping live buffers"
            (describe n1) def1 (max base1 base2)
            (min (base1 + sz1) (base2 + sz2))
            bid1 (describe n2) bid2
            (if last2 = max_int then "end" else string_of_int last2)
      end;
      incr j
    done
  done;
  report

let check ?chunk_bounds ?layout ?intervals ?fusion ?binding ~runtime graph =
  let report = Report.create () in
  let add r = Report.append r ~into:report in
  add (check_kernels ?chunk_bounds ?fusion ?binding ~runtime graph);
  (match fusion with Some f -> add (check_fused f) | None -> ());
  (match intervals with
  | Some iv -> add (check_lifetimes ?fusion ~intervals:iv graph)
  | None -> ());
  (match binding with
  | Some b -> add (check_addresses ?fusion ?layout graph b)
  | None -> ());
  report
