(** Structured diagnostics shared by every validator and static checker.

    A diagnostic carries the severity, the name of the check that produced
    it, the pipeline stage it inspected, the implicated node ids and a human
    explanation. A {!Report} collects every finding instead of stopping at
    the first, so a single lint run over a corrupted artifact surfaces all
    of its violations at once. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type t = {
  severity : severity;
  check : string;  (** checker name: ["alias"], ["fusion"], ["graph"], ... *)
  stage : string;  (** pipeline stage the inspected artifact came from *)
  nodes : int list;  (** implicated node ids, most relevant first *)
  message : string;  (** human explanation of the violated invariant *)
}

val make :
  severity -> check:string -> stage:string -> nodes:int list -> string -> t

val pp : Format.formatter -> t -> unit
(** One line: [[severity] check\@stage nodes [ids]: message]. *)

val to_string : t -> string

(** A mutable collector of diagnostics. *)
module Report : sig
  type diag := t
  type t

  val create : unit -> t
  val add : t -> diag -> unit

  val addf :
    t ->
    severity ->
    check:string ->
    stage:string ->
    nodes:int list ->
    ('a, unit, string, unit) format4 ->
    'a
  (** Printf-style [add]. *)

  val errorf :
    t ->
    check:string ->
    stage:string ->
    nodes:int list ->
    ('a, unit, string, unit) format4 ->
    'a

  val warnf :
    t ->
    check:string ->
    stage:string ->
    nodes:int list ->
    ('a, unit, string, unit) format4 ->
    'a

  val infof :
    t ->
    check:string ->
    stage:string ->
    nodes:int list ->
    ('a, unit, string, unit) format4 ->
    'a

  val diags : t -> diag list
  (** In the order they were added. *)

  val error_count : t -> int
  val warning_count : t -> int
  val info_count : t -> int

  val has_errors : t -> bool
  (** At least one [Error]-severity finding. *)

  val is_clean : t -> bool
  (** No errors and no warnings ([Info] findings are allowed). *)

  val errors : t -> diag list

  val with_check : string -> t -> diag list
  (** Findings produced by the named check, in order. *)

  val append : into:t -> t -> unit
  (** Append every diagnostic of the second report into [into]. *)

  val pp : Format.formatter -> t -> unit
  val pp_summary : Format.formatter -> t -> unit
end
