(* Structured diagnostics: the one currency every validator and static
   checker in the system trades in. A diagnostic names the check that
   produced it, the pipeline stage it inspected, the implicated node ids and
   a human explanation; a [Report] collects all of them instead of stopping
   at the first, so one lint run shows every violation of a corrupted
   artifact at once. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type t = {
  severity : severity;
  check : string;
  stage : string;
  nodes : int list;
  message : string;
}

let make severity ~check ~stage ~nodes message =
  { severity; check; stage; nodes; message }

let pp fmt d =
  let nodes =
    match d.nodes with
    | [] -> ""
    | ids ->
      Printf.sprintf " nodes [%s]"
        (String.concat "," (List.map string_of_int ids))
  in
  Format.fprintf fmt "[%s] %s@@%s%s: %s"
    (severity_name d.severity)
    d.check d.stage nodes d.message

let to_string d = Format.asprintf "%a" pp d

module Report = struct
  type diag = t
  type t = { mutable rev_diags : diag list }

  let create () = { rev_diags = [] }
  let add r d = r.rev_diags <- d :: r.rev_diags

  let addf r severity ~check ~stage ~nodes fmt =
    Printf.ksprintf (fun m -> add r (make severity ~check ~stage ~nodes m)) fmt

  let errorf r ~check ~stage ~nodes fmt = addf r Error ~check ~stage ~nodes fmt
  let warnf r ~check ~stage ~nodes fmt = addf r Warning ~check ~stage ~nodes fmt
  let infof r ~check ~stage ~nodes fmt = addf r Info ~check ~stage ~nodes fmt
  let diags r = List.rev r.rev_diags

  let count severity r =
    List.length (List.filter (fun d -> d.severity = severity) r.rev_diags)

  let error_count = count Error
  let warning_count = count Warning
  let info_count = count Info
  let has_errors r = List.exists (fun d -> d.severity = Error) r.rev_diags
  let is_clean r = not (List.exists (fun d -> d.severity <> Info) r.rev_diags)

  let errors r =
    List.rev (List.filter (fun d -> d.severity = Error) r.rev_diags)

  let with_check name r =
    List.rev (List.filter (fun d -> d.check = name) r.rev_diags)

  let append ~into r = into.rev_diags <- r.rev_diags @ into.rev_diags

  let pp_summary fmt r =
    Format.fprintf fmt "%d error(s), %d warning(s), %d info"
      (error_count r) (warning_count r) (info_count r)

  let pp fmt r =
    match diags r with
    | [] -> Format.fprintf fmt "clean (no diagnostics)"
    | ds ->
      List.iter (fun d -> Format.fprintf fmt "%a@," pp d) ds;
      pp_summary fmt r
end
