(** Static race / partition-disjointness analysis for the parallel
    executor.

    The compiled executor fans heavy kernels out over
    [Parallel.parallel_for]; these checkers prove, per instruction, that
    the fan-out cannot race: the chunks tile the destination exactly
    (pairwise-disjoint writes), no gathered read can overlap a concurrent
    write through an in-place alias, fused sweeps stay inside every
    member's and external's extent, the liveness plan never recycles a
    buffer under a pending read, and no two address-overlapping buffers
    are ever simultaneously live.

    Every predicate here deliberately {e duplicates} the runtime — the
    chunk formula, the fan-out gate, the per-operator access patterns —
    instead of importing it, so the checks are translation validation,
    not tautology (same philosophy as {!Verify}). The [?chunk_bounds],
    [?intervals] and [?layout] overrides are how {!Mutate}'s corrupted
    artifacts are injected to prove each checker actually fires. *)

open Echo_ir
module Report = Echo_diag.Report

(** {1 The access model} *)

type access = {
  rows : int;  (** the index range handed to [parallel_for] *)
  stride : int;  (** dst elements owned per index *)
  work : int;  (** per-index scalar work, mirroring the kernels' hints *)
  may_alias : Node.t list;
      (** inputs the kernel reads chunk-aligned (or wholly before the
          fan-out): sharing the destination buffer is race-free *)
  no_alias : Node.t list;
      (** inputs the kernel gathers across chunk boundaries: a read from
          these races a concurrent domain's write if they share the
          destination buffer *)
  fans_out : bool;  (** the kernel consults [parallel_for] at all *)
}

val access_of : Node.t -> access
(** The re-derived footprint of the node's compiled (unfused) kernel. *)

val fused_access : Fuse.group -> access
(** The footprint of a fused group's single step-outer sweep. *)

val derive_parts : Echo_tensor.Parallel.t -> rows:int -> work:int -> int
(** How many chunks [parallel_for] splits [rows] indices of [work] weight
    into under the runtime — the gate, quantum and caps re-stated.
    [1] means sequential. *)

val chunk_bounds : int -> int -> int -> int * int
(** [chunk_bounds n parts i] — the runtime's partition formula,
    re-stated. *)

(** {1 Checkers}

    Each returns a report with every finding; composable via
    {!Report.append}. Check names: ["race-partition"] (coverage /
    disjointness), ["race-sharing"] (false-sharing lint, [Info]),
    ["race-alias"] (in-place alias vs gathered read), ["race-fused"]
    (sweep extent vs member/external extents), ["race-liveness"] (plan
    intervals vs re-derived last reads), ["race-address"] (overlapping
    live buffers in the arena layout). *)

val check_kernels :
  ?chunk_bounds:(int -> int -> int -> int * int) ->
  ?fusion:Fuse.plan ->
  ?binding:(Node.t * int) list ->
  runtime:Echo_tensor.Parallel.t ->
  Graph.t ->
  Report.t
(** Per fanned-out instruction: the chunks returned by [?chunk_bounds]
    (default: the re-stated runtime formula) must tile [0, rows) exactly
    — monotone, gap-free, overlap-free — and no [no_alias] input may
    share the destination's physical buffer. Also emits one [Info]
    summarising chunk boundaries that fall inside a 64-byte cache line
    (false sharing). *)

val check_fused : Fuse.plan -> Report.t
(** Every member of a group must span exactly the root's sweep, and every
    external must span the sweep or be a single cell (the [ScaleBy]
    multiplier, read wholly before the fan-out). *)

val check_lifetimes :
  ?fusion:Fuse.plan -> intervals:(int * int * int) list -> Graph.t -> Report.t
(** The plan's [(node_id, def_step, last_step)] triples against
    re-derived positions and last reads: an early expiry is a stale-read
    race (the pool recycles the buffer under a pending read), a late one
    a phantom read, and every non-persistent, non-interior node must have
    exactly one interval. *)

val check_addresses :
  ?fusion:Fuse.plan ->
  ?layout:(int * int) list ->
  Graph.t ->
  (Node.t * int) list ->
  Report.t
(** Walk the schedule over a concrete address layout ([(bid, base)] in
    elements; default lays the buffers end to end) and flag any write
    that lands on bytes still live for another value — the sanctioned
    same-buffer in-place handover (overwriter {e is} the last reader)
    excepted. *)

val check :
  ?chunk_bounds:(int -> int -> int -> int * int) ->
  ?layout:(int * int) list ->
  ?intervals:(int * int * int) list ->
  ?fusion:Fuse.plan ->
  ?binding:(Node.t * int) list ->
  runtime:Echo_tensor.Parallel.t ->
  Graph.t ->
  Report.t
(** All of the above, gated on which artifacts are supplied:
    {!check_kernels} always, {!check_fused} with [?fusion],
    {!check_lifetimes} with [?intervals], {!check_addresses} with
    [?binding]. [Pipeline.race_verify] calls this with every artifact of
    a compiled executable. *)
