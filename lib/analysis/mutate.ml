open Echo_ir
module Assign = Echo_exec.Assign

(* Schedule positions and re-derived last-read steps (unfused), the same
   quantities Verify re-derives; the mutators use them to find a site where
   the corruption actually violates the property under test. *)
let positions graph =
  let tbl = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace tbl (Node.id n) i) (Graph.nodes graph);
  tbl

let last_read graph pos node def =
  if Graph.is_output graph (Node.id node) then max_int
  else
    List.fold_left
      (fun acc c ->
        match Hashtbl.find_opt pos (Node.id c) with
        | Some p -> max acc p
        | None -> acc)
      def
      (Graph.consumers graph (Node.id node))

let swap_schedule graph =
  let schedule = Graph.nodes graph in
  match List.find_opt (fun n -> Node.inputs n <> []) schedule with
  | None -> None
  | Some n ->
    Some (n :: List.filter (fun m -> not (Node.equal m n)) schedule)

let overlap_slots assignment =
  let slots = Array.of_list (Assign.slots assignment) in
  let concurrent a b =
    a.Assign.def_step <= b.Assign.last_step
    && b.Assign.def_step <= a.Assign.last_step
  in
  let found = ref None in
  Array.iteri
    (fun i a ->
      if !found = None then
        for j = i + 1 to Array.length slots - 1 do
          let b = slots.(j) in
          if
            !found = None && concurrent a b
            && not
                 (a.Assign.offset < b.Assign.offset + b.Assign.size
                 && b.Assign.offset < a.Assign.offset + a.Assign.size)
          then found := Some (a, b)
        done)
    slots;
  match !found with
  | None -> None
  | Some (a, b) ->
    let slots =
      List.map
        (fun s ->
          if s.Assign.node_id = b.Assign.node_id then
            { s with Assign.offset = a.Assign.offset }
          else s)
        (Assign.slots assignment)
    in
    Some (Assign.of_slots ~arena:(Assign.arena_size assignment) slots)

let escape_slot assignment =
  match Assign.slots assignment with
  | [] -> None
  | first :: rest ->
    let arena = Assign.arena_size assignment in
    Some
      (Assign.of_slots ~arena ({ first with Assign.offset = arena } :: rest))

let alias_binding graph binding =
  let pos = positions graph in
  let bid_of = Hashtbl.create 256 in
  List.iter (fun (n, bid) -> Hashtbl.replace bid_of (Node.id n) bid) binding;
  (* A victim defined strictly inside a donor's live range, on a different
     physical buffer: rebinding it aliases two simultaneously-live values. *)
  let site =
    List.find_opt
      (fun (donor, dbid) ->
        let d_def = Hashtbl.find pos (Node.id donor) in
        let d_last = last_read graph pos donor d_def in
        List.exists
          (fun (victim, vbid) ->
            vbid <> dbid
            &&
            let v_def = Hashtbl.find pos (Node.id victim) in
            v_def > d_def && v_def < d_last)
          binding)
      binding
  in
  match site with
  | None -> None
  | Some (donor, dbid) ->
    let d_def = Hashtbl.find pos (Node.id donor) in
    let d_last = last_read graph pos donor d_def in
    let victim, _ =
      List.find
        (fun (victim, vbid) ->
          vbid <> dbid
          &&
          let v_def = Hashtbl.find pos (Node.id victim) in
          v_def > d_def && v_def < d_last)
        binding
    in
    Some
      (List.map
         (fun (n, bid) ->
           if Node.equal n victim then (n, dbid) else (n, bid))
         binding)

let retarget_inplace graph binding =
  let pos = positions graph in
  let in_binding = Hashtbl.create 256 in
  List.iter (fun (n, bid) -> Hashtbl.replace in_binding (Node.id n) bid) binding;
  (* A consumer whose operator cannot write in place, reading an input that
     dies exactly at its step: handing it the input's buffer is precisely
     the corrupted transfer the in-place checker exists to reject. *)
  let site =
    List.find_opt
      (fun (taker, _) ->
        (not (Echo_exec.Memplan.inplace_capable taker))
        && List.exists
             (fun input ->
               Hashtbl.mem in_binding (Node.id input)
               &&
               let i_def = Hashtbl.find pos (Node.id input) in
               last_read graph pos input i_def
               = Hashtbl.find pos (Node.id taker))
             (Node.inputs taker))
      binding
  in
  match site with
  | None -> None
  | Some (taker, _) ->
    let donor =
      List.find
        (fun input ->
          Hashtbl.mem in_binding (Node.id input)
          &&
          let i_def = Hashtbl.find pos (Node.id input) in
          last_read graph pos input i_def = Hashtbl.find pos (Node.id taker))
        (Node.inputs taker)
    in
    let donor_bid = Hashtbl.find in_binding (Node.id donor) in
    Some
      (List.map
         (fun (n, bid) -> if Node.equal n taker then (n, donor_bid) else (n, bid))
         binding)

(* Rebuild the graph with [replace] applied to matching nodes and every
   transitive consumer re-cloned onto the fresh inputs. *)
let rebuild graph ~replace =
  let rebuilt : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let resolve u =
    match Hashtbl.find_opt rebuilt (Node.id u) with Some r -> r | None -> u
  in
  List.iter
    (fun n ->
      match replace n with
      | Some fresh -> Hashtbl.replace rebuilt (Node.id n) fresh
      | None ->
        let inputs = List.map resolve (Node.inputs n) in
        if
          not (List.for_all2 (fun a b -> Node.equal a b) (Node.inputs n) inputs)
        then Hashtbl.replace rebuilt (Node.id n) (Node.clone_with_inputs n inputs))
    (Graph.nodes graph);
  Graph.create (List.map resolve (Graph.outputs graph))

let reseed_clone graph =
  let target =
    List.find_opt
      (fun n ->
        Echo_core.Rewrite.is_clone n
        && match Node.op n with Op.DropoutMask _ -> true | _ -> false)
      (Graph.nodes graph)
  in
  match target with
  | None -> None
  | Some t ->
    let p, seed =
      match Node.op t with
      | Op.DropoutMask { p; seed } -> (p, seed)
      | _ -> assert false
    in
    let fresh =
      Node.create ~name:(Node.name t) ~region:(Node.region t)
        ~shape:(Node.shape t) ~hint:(Node.hint t)
        (Op.DropoutMask { p; seed = seed + 1 })
        []
    in
    Some
      (rebuild graph ~replace:(fun n ->
           if Node.equal n t then Some fresh else None))

let bad_clone_hint graph =
  let target =
    List.find_opt
      (fun n ->
        Echo_core.Rewrite.is_clone n && Graph.consumers graph (Node.id n) <> [])
      (Graph.nodes graph)
  in
  match target with
  | None -> None
  | Some t ->
    let earliest =
      List.fold_left
        (fun acc c -> Float.min acc (Node.hint c))
        infinity
        (Graph.consumers graph (Node.id t))
    in
    let fresh =
      Node.clone_with_inputs ~hint:(earliest +. 1.0) t (Node.inputs t)
    in
    Some
      (rebuild graph ~replace:(fun n ->
           if Node.equal n t then Some fresh else None))

(* ------------------------------------------------------------------ *)
(* Race-verify corruptions: each targets exactly one of the Race /
   Sanitize checkers, and the harness proves it fires both statically
   (through Race's [?chunk_bounds]/[?intervals]/[?layout] injection
   points) and dynamically (through [Executor.compile ?liveness] or a
   directly-driven [Sanitize]).                                        *)
(* ------------------------------------------------------------------ *)

(* A corrupted chunk formula: every interior boundary is shifted one row,
   so adjacent chunks either both write the boundary row ([`Overlap]) or
   neither does ([`Gap]). Plugs into [Race.check_kernels ?chunk_bounds]. *)
let shift_partition kind n parts i =
  let lo = i * n / parts and hi = (i + 1) * n / parts in
  if i = 0 then (lo, hi)
  else
    match kind with
    | `Overlap -> (max 0 (lo - 1), hi)
    | `Gap -> (min hi (lo + 1), hi)

(* Expire one read-after-def buffer at its definition step: the pool may
   recycle it under the pending read. The corrupted intervals go to
   [Race.check_lifetimes ?intervals] statically and, through
   [Liveness.of_intervals] and [Executor.compile ?liveness], to a real
   executor whose sanitizer must catch the stale read dynamically. *)
let shrink_lifetime liveness =
  let module L = Echo_exec.Liveness in
  let its = L.intervals liveness in
  match
    List.find_opt
      (fun itv ->
        itv.L.last_step <> max_int && itv.L.last_step > itv.L.def_step)
      its
  with
  | None -> None
  | Some victim ->
    Some
      (List.map
         (fun itv ->
           if Node.equal itv.L.node victim.L.node then
             { itv with L.last_step = itv.L.def_step }
           else itv)
         its)

(* A corrupted arena layout: place one buffer on top of another whose
   tenant is live across the victim's definition, so two simultaneously
   live values share addresses. Plugs into [Race.check_addresses
   ?layout]. *)
let alias_offsets graph binding =
  let pos = positions graph in
  let overlap_pair =
    List.find_map
      (fun (donor, dbid) ->
        let d_def = Hashtbl.find pos (Node.id donor) in
        let d_last = last_read graph pos donor d_def in
        List.find_map
          (fun (victim, vbid) ->
            if vbid = dbid then None
            else
              let v_def = Hashtbl.find pos (Node.id victim) in
              if v_def > d_def && v_def < d_last then Some (dbid, vbid)
              else None)
          binding)
      binding
  in
  match overlap_pair with
  | None -> None
  | Some (dbid, vbid) ->
    (* The honest end-to-end layout, with the victim's base rebased onto
       the donor's. *)
    let size_of = Hashtbl.create 64 in
    List.iter
      (fun (n, bid) ->
        let sz = Echo_tensor.Shape.numel (Node.shape n) in
        let cur = try Hashtbl.find size_of bid with Not_found -> 0 in
        if sz > cur then Hashtbl.replace size_of bid sz)
      binding;
    let bids = List.sort_uniq compare (List.map snd binding) in
    let base = ref 0 in
    let layout =
      List.map
        (fun bid ->
          let b = !base in
          base := !base + (try Hashtbl.find size_of bid with Not_found -> 0);
          (bid, b))
        bids
    in
    let donor_base = List.assoc dbid layout in
    Some
      (List.map
         (fun (bid, b) -> if bid = vbid then (bid, donor_base) else (bid, b))
         layout)

(* Swap one single-input interior of a fused group for a clone one row
   wider than the root's sweep: the member-at-a-time semantics the fused
   kernel replaces would write outside the partition. Plugs into
   [Race.check_fused]. *)
let widen_fused_interior plan =
  let widen shape =
    if Echo_tensor.Shape.rank shape = 0 then [| 2 |]
    else begin
      let c = Array.copy shape in
      c.(0) <- c.(0) + 1;
      c
    end
  in
  let try_group g =
    let root = g.Fuse.root in
    match
      List.find_opt
        (fun m -> (not (Node.equal m root)) && List.length (Node.inputs m) = 1)
        g.Fuse.members
    with
    | None -> None
    | Some m ->
      let wide_leaf =
        Node.create
          ~name:(Node.name m ^ "/widened")
          ~region:(Node.region m)
          ~shape:(widen (Node.shape m))
          Op.Placeholder []
      in
      let fresh = Node.clone_with_inputs m [ wide_leaf ] in
      Some
        {
          g with
          Fuse.members =
            List.map
              (fun x -> if Node.equal x m then fresh else x)
              g.Fuse.members;
        }
  in
  let rec first = function
    | [] -> None
    | g :: rest -> (
      match try_group g with Some g' -> Some g' | None -> first rest)
  in
  match first (Fuse.groups plan) with
  | None -> None
  | Some g' -> Some (Fuse.of_groups [ g' ])

let cross_region_group graph =
  let site =
    List.find_opt
      (fun m ->
        Node.region m = Node.Backward
        && Fuse.elementwise m
        && List.exists
             (fun a ->
               Node.region a = Node.Forward
               && Fuse.elementwise a
               && Echo_tensor.Shape.equal (Node.shape a) (Node.shape m))
             (Node.inputs m))
      (Graph.nodes graph)
  in
  match site with
  | None -> None
  | Some m ->
    let a =
      List.find
        (fun a ->
          Node.region a = Node.Forward
          && Fuse.elementwise a
          && Echo_tensor.Shape.equal (Node.shape a) (Node.shape m))
        (Node.inputs m)
    in
    let externals =
      Node.inputs a
      @ List.filter (fun i -> not (Node.equal i a)) (Node.inputs m)
    in
    Some (Fuse.of_groups [ { Fuse.members = [ a; m ]; root = m; externals } ])
