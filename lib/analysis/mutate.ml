open Echo_ir
module Assign = Echo_exec.Assign

(* Schedule positions and re-derived last-read steps (unfused), the same
   quantities Verify re-derives; the mutators use them to find a site where
   the corruption actually violates the property under test. *)
let positions graph =
  let tbl = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace tbl (Node.id n) i) (Graph.nodes graph);
  tbl

let last_read graph pos node def =
  if Graph.is_output graph (Node.id node) then max_int
  else
    List.fold_left
      (fun acc c ->
        match Hashtbl.find_opt pos (Node.id c) with
        | Some p -> max acc p
        | None -> acc)
      def
      (Graph.consumers graph (Node.id node))

let swap_schedule graph =
  let schedule = Graph.nodes graph in
  match List.find_opt (fun n -> Node.inputs n <> []) schedule with
  | None -> None
  | Some n ->
    Some (n :: List.filter (fun m -> not (Node.equal m n)) schedule)

let overlap_slots assignment =
  let slots = Array.of_list (Assign.slots assignment) in
  let concurrent a b =
    a.Assign.def_step <= b.Assign.last_step
    && b.Assign.def_step <= a.Assign.last_step
  in
  let found = ref None in
  Array.iteri
    (fun i a ->
      if !found = None then
        for j = i + 1 to Array.length slots - 1 do
          let b = slots.(j) in
          if
            !found = None && concurrent a b
            && not
                 (a.Assign.offset < b.Assign.offset + b.Assign.size
                 && b.Assign.offset < a.Assign.offset + a.Assign.size)
          then found := Some (a, b)
        done)
    slots;
  match !found with
  | None -> None
  | Some (a, b) ->
    let slots =
      List.map
        (fun s ->
          if s.Assign.node_id = b.Assign.node_id then
            { s with Assign.offset = a.Assign.offset }
          else s)
        (Assign.slots assignment)
    in
    Some (Assign.of_slots ~arena:(Assign.arena_size assignment) slots)

let escape_slot assignment =
  match Assign.slots assignment with
  | [] -> None
  | first :: rest ->
    let arena = Assign.arena_size assignment in
    Some
      (Assign.of_slots ~arena ({ first with Assign.offset = arena } :: rest))

let alias_binding graph binding =
  let pos = positions graph in
  let bid_of = Hashtbl.create 256 in
  List.iter (fun (n, bid) -> Hashtbl.replace bid_of (Node.id n) bid) binding;
  (* A victim defined strictly inside a donor's live range, on a different
     physical buffer: rebinding it aliases two simultaneously-live values. *)
  let site =
    List.find_opt
      (fun (donor, dbid) ->
        let d_def = Hashtbl.find pos (Node.id donor) in
        let d_last = last_read graph pos donor d_def in
        List.exists
          (fun (victim, vbid) ->
            vbid <> dbid
            &&
            let v_def = Hashtbl.find pos (Node.id victim) in
            v_def > d_def && v_def < d_last)
          binding)
      binding
  in
  match site with
  | None -> None
  | Some (donor, dbid) ->
    let d_def = Hashtbl.find pos (Node.id donor) in
    let d_last = last_read graph pos donor d_def in
    let victim, _ =
      List.find
        (fun (victim, vbid) ->
          vbid <> dbid
          &&
          let v_def = Hashtbl.find pos (Node.id victim) in
          v_def > d_def && v_def < d_last)
        binding
    in
    Some
      (List.map
         (fun (n, bid) ->
           if Node.equal n victim then (n, dbid) else (n, bid))
         binding)

let retarget_inplace graph binding =
  let pos = positions graph in
  let in_binding = Hashtbl.create 256 in
  List.iter (fun (n, bid) -> Hashtbl.replace in_binding (Node.id n) bid) binding;
  (* A consumer whose operator cannot write in place, reading an input that
     dies exactly at its step: handing it the input's buffer is precisely
     the corrupted transfer the in-place checker exists to reject. *)
  let site =
    List.find_opt
      (fun (taker, _) ->
        (not (Echo_exec.Memplan.inplace_capable taker))
        && List.exists
             (fun input ->
               Hashtbl.mem in_binding (Node.id input)
               &&
               let i_def = Hashtbl.find pos (Node.id input) in
               last_read graph pos input i_def
               = Hashtbl.find pos (Node.id taker))
             (Node.inputs taker))
      binding
  in
  match site with
  | None -> None
  | Some (taker, _) ->
    let donor =
      List.find
        (fun input ->
          Hashtbl.mem in_binding (Node.id input)
          &&
          let i_def = Hashtbl.find pos (Node.id input) in
          last_read graph pos input i_def = Hashtbl.find pos (Node.id taker))
        (Node.inputs taker)
    in
    let donor_bid = Hashtbl.find in_binding (Node.id donor) in
    Some
      (List.map
         (fun (n, bid) -> if Node.equal n taker then (n, donor_bid) else (n, bid))
         binding)

(* Rebuild the graph with [replace] applied to matching nodes and every
   transitive consumer re-cloned onto the fresh inputs. *)
let rebuild graph ~replace =
  let rebuilt : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let resolve u =
    match Hashtbl.find_opt rebuilt (Node.id u) with Some r -> r | None -> u
  in
  List.iter
    (fun n ->
      match replace n with
      | Some fresh -> Hashtbl.replace rebuilt (Node.id n) fresh
      | None ->
        let inputs = List.map resolve (Node.inputs n) in
        if
          not (List.for_all2 (fun a b -> Node.equal a b) (Node.inputs n) inputs)
        then Hashtbl.replace rebuilt (Node.id n) (Node.clone_with_inputs n inputs))
    (Graph.nodes graph);
  Graph.create (List.map resolve (Graph.outputs graph))

let reseed_clone graph =
  let target =
    List.find_opt
      (fun n ->
        Echo_core.Rewrite.is_clone n
        && match Node.op n with Op.DropoutMask _ -> true | _ -> false)
      (Graph.nodes graph)
  in
  match target with
  | None -> None
  | Some t ->
    let p, seed =
      match Node.op t with
      | Op.DropoutMask { p; seed } -> (p, seed)
      | _ -> assert false
    in
    let fresh =
      Node.create ~name:(Node.name t) ~region:(Node.region t)
        ~shape:(Node.shape t) ~hint:(Node.hint t)
        (Op.DropoutMask { p; seed = seed + 1 })
        []
    in
    Some
      (rebuild graph ~replace:(fun n ->
           if Node.equal n t then Some fresh else None))

let bad_clone_hint graph =
  let target =
    List.find_opt
      (fun n ->
        Echo_core.Rewrite.is_clone n && Graph.consumers graph (Node.id n) <> [])
      (Graph.nodes graph)
  in
  match target with
  | None -> None
  | Some t ->
    let earliest =
      List.fold_left
        (fun acc c -> Float.min acc (Node.hint c))
        infinity
        (Graph.consumers graph (Node.id t))
    in
    let fresh =
      Node.clone_with_inputs ~hint:(earliest +. 1.0) t (Node.inputs t)
    in
    Some
      (rebuild graph ~replace:(fun n ->
           if Node.equal n t then Some fresh else None))

let cross_region_group graph =
  let site =
    List.find_opt
      (fun m ->
        Node.region m = Node.Backward
        && Fuse.elementwise m
        && List.exists
             (fun a ->
               Node.region a = Node.Forward
               && Fuse.elementwise a
               && Echo_tensor.Shape.equal (Node.shape a) (Node.shape m))
             (Node.inputs m))
      (Graph.nodes graph)
  in
  match site with
  | None -> None
  | Some m ->
    let a =
      List.find
        (fun a ->
          Node.region a = Node.Forward
          && Fuse.elementwise a
          && Echo_tensor.Shape.equal (Node.shape a) (Node.shape m))
        (Node.inputs m)
    in
    let externals =
      Node.inputs a
      @ List.filter (fun i -> not (Node.equal i a)) (Node.inputs m)
    in
    Some (Fuse.of_groups [ { Fuse.members = [ a; m ]; root = m; externals } ])
