(** Shadow-memory sanitizer for the compiled executor.

    Tags every arena cell with (writing slot, generation) and checks, at
    each instruction, that every read sees the producer the graph
    promised, written in the current run, within its planned lifetime.
    [Full] mode additionally snapshots all buffers and diffs the
    untouched ones after each instruction, catching writes that escape
    their partition and fault-injected flips in transient buffers.

    Enabled per-executor via [Executor.compile ?sanitize], defaulting to
    {!env_mode} ([ECHO_SANITIZE]); [echoc --sanitize MODE] sets it from
    the command line. The checks change no kernel, no schedule and no
    buffer contents, so a sanitized run is bit-identical to a plain one
    (enforced by the differential suite). *)

module Report = Echo_diag.Report

exception Sanitize_failed of Report.t
(** Raised by {!check_exn}. Findings use checks ["sanitize-oob"],
    ["sanitize-uninit"], ["sanitize-stale"], ["sanitize-gen"],
    ["sanitize-expired"] and ["sanitize-foreign"], stage ["runtime"]. *)

type mode =
  | Off
  | Cells  (** shadow-cell read checks *)
  | Full  (** [Cells] plus out-of-partition write detection (slow) *)

val mode_name : mode -> string
val is_on : mode -> bool

val mode_of_string : source:string -> string -> mode
(** [0|off|false|no], [1|on|true|yes|cells], [2|full].
    @raise Invalid_argument on anything else, naming [source] and the
    offending value — a typo must not silently pick a default. *)

val env_mode : unit -> mode
(** [ECHO_SANITIZE] via {!mode_of_string}; unset or empty is [Off]. *)

(** {1 Executor protocol}

    The executor describes its schedule once ({!create}) and then drives
    {!begin_run} / {!before_instr} / {!after_instr} around every
    instruction. The module holds only plain arrays so the analysis
    library does not depend on the compiler. *)

type slot_info = {
  si_name : string;  (** node description for diagnostics *)
  si_dst : (int * int) option;  (** (bid, numel) written; [None] = no-op *)
  si_const : bool;
      (** compile-time constant: pre-stamped, valid across runs *)
  si_reads : (int * int * int) array;
      (** (producer slot, bid, numel) per tracked (arena) input *)
  si_expire : int;
      (** plan's last read step for this slot's value; [max_int] = run end *)
}

type t

val create : mode -> slots:slot_info array -> buffers:(int * float array) list -> t
(** [buffers] maps each physical buffer id to its storage (held by
    reference: [Full] snapshots read through it). *)

val mode : t -> mode
val begin_run : t -> unit

val before_instr : t -> int -> unit
(** Check every tracked read of the given schedule slot. *)

val after_instr : t -> ?written:(int * int) list -> int -> unit
(** Stamp the slot's destination cells ([written] ranges in destination
    element indices, default the whole destination); in [Full] mode first
    diff all other buffers against their snapshots. *)

val report : t -> Report.t
(** All findings so far (deduplicated per kind and slot pair). *)

val check_exn : t -> unit
(** @raise Sanitize_failed if any finding is an error. *)
