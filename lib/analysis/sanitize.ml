(* Shadow-memory sanitizer for the compiled executor.

   Every arena cell gets a shadow tag: which instruction (schedule slot)
   last wrote it, and in which run (generation). Before an instruction
   runs, the tags of every cell it reads are checked against the plan:
   the cell must have been written, by the producer the graph says feeds
   this instruction, in the current run, and the producer's buffer must
   still be within its planned lifetime. After the instruction runs, its
   destination cells are stamped. [Full] mode additionally snapshots
   every buffer and diffs the untouched ones after each instruction, so
   a write that escapes its partition (or a fault-injected bit flip in a
   transient buffer) is caught at the next step.

   The module is deliberately executor-agnostic — it is driven by
   [Executor] through [begin_run]/[before_instr]/[after_instr] but holds
   only plain arrays, so the analysis library does not depend on the
   compiler. *)

module Report = Echo_diag.Report

exception Sanitize_failed of Report.t

type mode = Off | Cells | Full

let mode_name = function Off -> "off" | Cells -> "cells" | Full -> "full"
let is_on = function Off -> false | Cells | Full -> true

(* Strict parsing: a misspelt setting must not silently pick a default.
   [source] names the flag or variable for the error message. *)
let mode_of_string ~source s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "off" | "false" | "no" -> Off
  | "1" | "on" | "true" | "yes" | "cells" -> Cells
  | "2" | "full" -> Full
  | _ ->
    invalid_arg
      (Printf.sprintf
         "%s=%S: expected 0|off, 1|on|cells (shadow-cell checks) or 2|full \
          (plus out-of-partition write detection)"
         source s)

let env_mode () =
  match Sys.getenv_opt "ECHO_SANITIZE" with
  | None | Some "" -> Off
  | Some s -> mode_of_string ~source:"ECHO_SANITIZE" s

(* What one schedule slot does, from the executor's point of view. *)
type slot_info = {
  si_name : string;  (** node description for diagnostics *)
  si_dst : (int * int) option;  (** (bid, numel) written; [None] = no-op *)
  si_const : bool;
      (** single-writer constant materialised at compile time: its cells
          are pre-stamped and survive across runs *)
  si_reads : (int * int * int) array;
      (** (producer slot, bid, numel) per tracked (arena) input *)
  si_expire : int;
      (** the plan's last read step for the value this slot produces;
          [max_int] = live to the end of the run *)
}

(* The generation stamped on compile-time constants: valid in every run. *)
let gen_const = max_int

type shadow = {
  storage : float array;
  writer : int array;  (* -1 = never written *)
  gen : int array;
  mutable snapshot : float array;  (* [Full] only; [||] otherwise *)
}

type t = {
  mode : mode;
  slots : slot_info array;
  shadows : (int, shadow) Hashtbl.t;  (* bid -> shadow *)
  mutable cur_gen : int;
  report : Report.t;
  seen : (string, unit) Hashtbl.t;  (* finding dedup *)
}

let report t = t.report
let mode t = t.mode

let finding t ~check ~nodes key fmt =
  if Hashtbl.mem t.seen key then
    Printf.ikfprintf (fun _ -> ()) () fmt
  else begin
    Hashtbl.replace t.seen key ();
    Report.errorf t.report ~check ~stage:"runtime" ~nodes fmt
  end

let stamp t ~slot ~bid ranges =
  match Hashtbl.find_opt t.shadows bid with
  | None -> ()
  | Some sh ->
    let n = Array.length sh.writer in
    List.iter
      (fun (lo, hi) ->
        let lo = max 0 lo and hi = min hi n in
        for i = lo to hi - 1 do
          sh.writer.(i) <- slot;
          sh.gen.(i) <- t.cur_gen
        done)
      ranges

let create mode ~slots ~buffers =
  let shadows = Hashtbl.create (2 * List.length buffers) in
  List.iter
    (fun (bid, storage) ->
      let n = Array.length storage in
      Hashtbl.replace shadows bid
        {
          storage;
          writer = Array.make n (-1);
          gen = Array.make n 0;
          snapshot = (if mode = Full then Array.copy storage else [||]);
        })
    buffers;
  let t =
    {
      mode;
      slots;
      shadows;
      cur_gen = 0;
      report = Report.create ();
      seen = Hashtbl.create 64;
    }
  in
  (* Compile-time constants were written once, before any run: stamp them
     now with the cross-run generation so reading them never trips the
     staleness checks. *)
  Array.iteri
    (fun slot info ->
      if info.si_const then
        match info.si_dst with
        | Some (bid, numel) -> (
          match Hashtbl.find_opt t.shadows bid with
          | None -> ()
          | Some sh ->
            let n = min numel (Array.length sh.writer) in
            for i = 0 to n - 1 do
              sh.writer.(i) <- slot;
              sh.gen.(i) <- gen_const
            done)
        | None -> ())
    slots;
  t

let begin_run t =
  t.cur_gen <- t.cur_gen + 1;
  (* Parameters move between runs (the optimizer steps them outside the
     schedule), so [Full] mode re-baselines every snapshot. *)
  if t.mode = Full then
    Hashtbl.iter
      (fun _ sh ->
        Array.blit sh.storage 0 sh.snapshot 0 (Array.length sh.storage))
      t.shadows

(* Check every tracked read of [slot]: the cells must carry the expected
   producer's stamp from the current run, and the producer's planned
   lifetime must reach this step. *)
let before_instr t slot =
  let info = t.slots.(slot) in
  Array.iter
    (fun (producer, bid, numel) ->
      let pinfo = t.slots.(producer) in
      if slot > pinfo.si_expire then
        finding t ~check:"sanitize-expired" ~nodes:[]
          (Printf.sprintf "expired:%d:%d" slot producer)
          "%s (step %d) reads %s, whose buffer the plan expired at step %d: \
           stale read past the planned lifetime"
          info.si_name slot pinfo.si_name pinfo.si_expire;
      match Hashtbl.find_opt t.shadows bid with
      | None -> ()
      | Some sh ->
        let cells = Array.length sh.writer in
        if numel > cells then
          finding t ~check:"sanitize-oob" ~nodes:[]
            (Printf.sprintf "oob:%d:%d" slot producer)
            "%s (step %d) reads %d cell(s) of %s from buffer %d, which \
             holds only %d: out-of-bounds read"
            info.si_name slot numel pinfo.si_name bid cells
        else begin
          let stop = ref false in
          let i = ref 0 in
          while (not !stop) && !i < numel do
            let w = sh.writer.(!i) and g = sh.gen.(!i) in
            if w = -1 then begin
              finding t ~check:"sanitize-uninit" ~nodes:[]
                (Printf.sprintf "uninit:%d:%d" slot producer)
                "%s (step %d) reads cell %d of %s (buffer %d) before \
                 anything ever wrote it"
                info.si_name slot !i pinfo.si_name bid;
              stop := true
            end
            else if w <> producer then begin
              finding t ~check:"sanitize-stale" ~nodes:[]
                (Printf.sprintf "stale:%d:%d:%d" slot producer w)
                "%s (step %d) expects cell %d of buffer %d to hold %s \
                 (step %d) but it was last written by %s (step %d): the \
                 buffer was recycled under a pending read"
                info.si_name slot !i bid pinfo.si_name producer
                t.slots.(w).si_name w;
              stop := true
            end
            else if g <> t.cur_gen && g <> gen_const then begin
              finding t ~check:"sanitize-gen" ~nodes:[]
                (Printf.sprintf "gen:%d:%d" slot producer)
                "%s (step %d) reads cell %d of %s (buffer %d) written in a \
                 previous run: the producer never wrote it this run"
                info.si_name slot !i pinfo.si_name bid;
              stop := true
            end
            else incr i
          done
        end)
    info.si_reads

(* Diff every buffer the instruction did NOT declare as its destination
   against its snapshot: any changed cell is a write that escaped its
   partition (or a fault-injected flip). *)
let diff_foreign t slot dst_bid =
  let info = t.slots.(slot) in
  Hashtbl.iter
    (fun bid sh ->
      if bid <> dst_bid then begin
        let n = Array.length sh.storage in
        let i = ref 0 and hit = ref false in
        while (not !hit) && !i < n do
          (* Bit-level compare: NaN must equal itself here. *)
          if
            Int64.bits_of_float sh.storage.(!i)
            <> Int64.bits_of_float sh.snapshot.(!i)
          then begin
            hit := true;
            finding t ~check:"sanitize-foreign" ~nodes:[]
              (Printf.sprintf "foreign:%d:%d" slot bid)
              "cell %d of buffer %d changed while %s (step %d) was writing \
               buffer %s: out-of-partition write"
              !i bid info.si_name slot
              (match info.si_dst with
              | Some (b, _) -> string_of_int b
              | None -> "<none>");
            (* Re-baseline so one escaped write is reported once, not at
               every subsequent step. *)
            Array.blit sh.storage 0 sh.snapshot 0 n
          end;
          incr i
        done
      end)
    t.shadows

let after_instr t ?written slot =
  let info = t.slots.(slot) in
  match info.si_dst with
  | None -> ()
  | Some (bid, numel) ->
    if t.mode = Full then begin
      diff_foreign t slot bid;
      match Hashtbl.find_opt t.shadows bid with
      | Some sh ->
        Array.blit sh.storage 0 sh.snapshot 0 (Array.length sh.storage)
      | None -> ()
    end;
    let ranges = match written with Some r -> r | None -> [ (0, numel) ] in
    stamp t ~slot ~bid ranges

let check_exn t = if Report.has_errors t.report then raise (Sanitize_failed t.report)
