open Echo_tensor

type kind =
  | Oom of { budget_bytes : int }
  | Oom_shrink of { fraction : float }
  | Transient of string
  | Nan_poison
  | Flip_param of { index : int; bit : int }
  | Flip_act of { site : int; index : int; bit : int }

type spec = { step : int; kind : kind }

type t = {
  mutable specs : spec list;  (* unfired, in plan order *)
  flaky : (int * int) option;  (* seed, permille *)
  mutable flaky_done : int;  (* last step a flaky draw was consumed for *)
  flip_flaky : (int * int) option;  (* seed, permille *)
  mutable flip_flaky_done : int;
}

exception Transient_failure of string
exception Bad_spec of string

let grammar =
  "expected semicolon-separated entries: oom@STEP=BYTES | oom@STEP=PCT% | \
   transient@STEP[=WHY] | nan@STEP | flip@STEP=param:INDEX:BIT | \
   flip@STEP=act:SITE:INDEX:BIT | flaky@SEED=PERMILLE | \
   flipflaky@SEED=PERMILLE (BIT in 0..63, INDEX/SITE/STEP non-negative)"

let bad entry = raise (Bad_spec (Printf.sprintf "ECHO_FAULTS entry %S: %s" entry grammar))

let none =
  { specs = []; flaky = None; flaky_done = -1;
    flip_flaky = None; flip_flaky_done = -1 }

(* Every flip is bounds-checked at construction, so a malformed plan is
   rejected before any training run starts — never mid-train. *)
let check_kind entry = function
  | Flip_param { index; bit } ->
    if index < 0 || bit < 0 || bit > 63 then bad entry
  | Flip_act { site; index; bit } ->
    if site < 0 || index < 0 || bit < 0 || bit > 63 then bad entry
  | Oom _ | Oom_shrink _ | Transient _ | Nan_poison -> ()

let of_specs ?flaky ?flip_flaky specs =
  List.iter
    (fun s ->
      check_kind "of_specs" s.kind;
      if s.step < 0 then bad "of_specs")
    specs;
  { specs; flaky; flaky_done = -1; flip_flaky; flip_flaky_done = -1 }

let parse_int entry s =
  match int_of_string_opt (String.trim s) with Some n -> n | None -> bad entry

let parse_entry entry =
  match String.index_opt entry '@' with
  | None -> bad entry
  | Some at ->
    let kind_s = String.sub entry 0 at in
    let rest = String.sub entry (at + 1) (String.length entry - at - 1) in
    let step_s, arg =
      match String.index_opt rest '=' with
      | None -> (rest, None)
      | Some eq ->
        ( String.sub rest 0 eq,
          Some (String.sub rest (eq + 1) (String.length rest - eq - 1)) )
    in
    let step = parse_int entry step_s in
    let spec kind =
      check_kind entry kind;
      if step < 0 then bad entry;
      `Spec { step; kind }
    in
    (match (String.lowercase_ascii (String.trim kind_s), arg) with
    | "oom", Some a when String.length a > 0 && a.[String.length a - 1] = '%' ->
      let pct = parse_int entry (String.sub a 0 (String.length a - 1)) in
      spec (Oom_shrink { fraction = float_of_int pct /. 100.0 })
    | "oom", Some a -> spec (Oom { budget_bytes = parse_int entry a })
    | "oom", None -> bad entry
    | "transient", reason ->
      spec (Transient (Option.value reason ~default:"injected"))
    | "nan", None -> spec Nan_poison
    | "flip", Some a -> (
      match String.split_on_char ':' a with
      | [ "param"; index; bit ] ->
        spec (Flip_param { index = parse_int entry index; bit = parse_int entry bit })
      | [ "act"; site; index; bit ] ->
        spec
          (Flip_act
             {
               site = parse_int entry site;
               index = parse_int entry index;
               bit = parse_int entry bit;
             })
      | _ -> bad entry)
    | "flaky", Some permille -> `Flaky (step, parse_int entry permille)
    | "flipflaky", Some permille -> `Flip_flaky (step, parse_int entry permille)
    | _ -> bad entry)

let parse text =
  let entries =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ';' text)
  in
  List.fold_left
    (fun plan entry ->
      match parse_entry (String.trim entry) with
      | `Spec s -> { plan with specs = plan.specs @ [ s ] }
      | `Flaky f -> { plan with flaky = Some f }
      | `Flip_flaky f -> { plan with flip_flaky = Some f })
    none entries

let of_env () =
  match Sys.getenv_opt "ECHO_FAULTS" with
  | None -> none
  | Some s when String.trim s = "" -> none
  | Some s -> parse s

let is_empty t = t.specs = [] && t.flaky = None && t.flip_flaky = None
let specs t = t.specs

(* One draw per (seed, step), independent of call order: the generator is
   seeded from both, so retries and replans observe the same verdict. *)
let flaky_fires seed permille step =
  Rng.float (Rng.create ((seed * 1_000_003) + step)) < float_of_int permille /. 1000.0

(* The flip-flaky source draws from its own stream (distinct multiplier, so
   a plan arming both sources with one seed still gets independent draws);
   when it fires, the same stream deterministically picks which parameter
   scalar and which bit to upset. *)
let flip_flaky_draw seed permille step =
  let rng = Rng.create ((seed * 2_000_029) + step) in
  if Rng.float rng >= float_of_int permille /. 1000.0 then None
  else
    let index = Rng.int rng 1_048_576 in
    let bit = Rng.int rng 64 in
    Some (Flip_param { index; bit })

let take t ~step =
  let rec split acc = function
    | [] -> None
    | s :: rest when s.step = step ->
      t.specs <- List.rev_append acc rest;
      Some s.kind
    | s :: rest -> split (s :: acc) rest
  in
  match split [] t.specs with
  | Some _ as fired -> fired
  | None -> (
    let flaky =
      match t.flaky with
      | Some (seed, permille) when t.flaky_done <> step ->
        t.flaky_done <- step;
        if flaky_fires seed permille step then Some (Transient "flaky") else None
      | Some _ | None -> None
    in
    match flaky with
    | Some _ as fired -> fired
    | None -> (
      match t.flip_flaky with
      | Some (seed, permille) when t.flip_flaky_done <> step ->
        t.flip_flaky_done <- step;
        flip_flaky_draw seed permille step
      | Some _ | None -> None))

let kind_to_string step = function
  | Oom { budget_bytes } -> Printf.sprintf "oom@%d=%d" step budget_bytes
  | Oom_shrink { fraction } ->
    Printf.sprintf "oom@%d=%.0f%%" step (100.0 *. fraction)
  | Transient reason -> Printf.sprintf "transient@%d=%s" step reason
  | Nan_poison -> Printf.sprintf "nan@%d" step
  | Flip_param { index; bit } -> Printf.sprintf "flip@%d=param:%d:%d" step index bit
  | Flip_act { site; index; bit } ->
    Printf.sprintf "flip@%d=act:%d:%d:%d" step site index bit

let to_string t =
  String.concat ";"
    (List.map (fun s -> kind_to_string s.step s.kind) t.specs
    @ (match t.flaky with
      | Some (seed, permille) -> [ Printf.sprintf "flaky@%d=%d" seed permille ]
      | None -> [])
    @
    match t.flip_flaky with
    | Some (seed, permille) -> [ Printf.sprintf "flipflaky@%d=%d" seed permille ]
    | None -> [])
