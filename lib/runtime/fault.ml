open Echo_tensor

type kind =
  | Oom of { budget_bytes : int }
  | Oom_shrink of { fraction : float }
  | Transient of string
  | Nan_poison

type spec = { step : int; kind : kind }

type t = {
  mutable specs : spec list;  (* unfired, in plan order *)
  flaky : (int * int) option;  (* seed, permille *)
  mutable flaky_done : int;  (* last step a flaky draw was consumed for *)
}

exception Transient_failure of string
exception Bad_spec of string

let grammar =
  "expected semicolon-separated entries: oom@STEP=BYTES | oom@STEP=PCT% | \
   transient@STEP[=WHY] | nan@STEP | flaky@SEED=PERMILLE"

let bad entry = raise (Bad_spec (Printf.sprintf "ECHO_FAULTS entry %S: %s" entry grammar))

let none = { specs = []; flaky = None; flaky_done = -1 }
let of_specs ?flaky specs = { specs; flaky; flaky_done = -1 }

let parse_int entry s =
  match int_of_string_opt (String.trim s) with Some n -> n | None -> bad entry

let parse_entry entry =
  match String.index_opt entry '@' with
  | None -> bad entry
  | Some at ->
    let kind_s = String.sub entry 0 at in
    let rest = String.sub entry (at + 1) (String.length entry - at - 1) in
    let step_s, arg =
      match String.index_opt rest '=' with
      | None -> (rest, None)
      | Some eq ->
        ( String.sub rest 0 eq,
          Some (String.sub rest (eq + 1) (String.length rest - eq - 1)) )
    in
    let step = parse_int entry step_s in
    (match (String.lowercase_ascii (String.trim kind_s), arg) with
    | "oom", Some a when String.length a > 0 && a.[String.length a - 1] = '%' ->
      let pct = parse_int entry (String.sub a 0 (String.length a - 1)) in
      `Spec { step; kind = Oom_shrink { fraction = float_of_int pct /. 100.0 } }
    | "oom", Some a -> `Spec { step; kind = Oom { budget_bytes = parse_int entry a } }
    | "oom", None -> bad entry
    | "transient", reason ->
      `Spec { step; kind = Transient (Option.value reason ~default:"injected") }
    | "nan", None -> `Spec { step; kind = Nan_poison }
    | "flaky", Some permille -> `Flaky (step, parse_int entry permille)
    | _ -> bad entry)

let parse text =
  let entries =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ';' text)
  in
  List.fold_left
    (fun plan entry ->
      match parse_entry (String.trim entry) with
      | `Spec s -> { plan with specs = plan.specs @ [ s ] }
      | `Flaky f -> { plan with flaky = Some f })
    none entries

let of_env () =
  match Sys.getenv_opt "ECHO_FAULTS" with
  | None -> none
  | Some s when String.trim s = "" -> none
  | Some s -> parse s

let is_empty t = t.specs = [] && t.flaky = None

(* One draw per (seed, step), independent of call order: the generator is
   seeded from both, so retries and replans observe the same verdict. *)
let flaky_fires seed permille step =
  Rng.float (Rng.create ((seed * 1_000_003) + step)) < float_of_int permille /. 1000.0

let take t ~step =
  let rec split acc = function
    | [] -> None
    | s :: rest when s.step = step ->
      t.specs <- List.rev_append acc rest;
      Some s.kind
    | s :: rest -> split (s :: acc) rest
  in
  match split [] t.specs with
  | Some _ as fired -> fired
  | None -> (
    match t.flaky with
    | Some (seed, permille) when t.flaky_done <> step ->
      t.flaky_done <- step;
      if flaky_fires seed permille step then Some (Transient "flaky") else None
    | Some _ | None -> None)

let kind_to_string step = function
  | Oom { budget_bytes } -> Printf.sprintf "oom@%d=%d" step budget_bytes
  | Oom_shrink { fraction } ->
    Printf.sprintf "oom@%d=%.0f%%" step (100.0 *. fraction)
  | Transient reason -> Printf.sprintf "transient@%d=%s" step reason
  | Nan_poison -> Printf.sprintf "nan@%d" step

let to_string t =
  String.concat ";"
    (List.map (fun s -> kind_to_string s.step s.kind) t.specs
    @ match t.flaky with
      | Some (seed, permille) -> [ Printf.sprintf "flaky@%d=%d" seed permille ]
      | None -> [])
