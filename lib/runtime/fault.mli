(** Deterministic fault injection for the training runtime.

    A fault plan is a set of scheduled faults (fire at an exact step) plus an
    optional seeded "flaky" source that fires pseudo-random transient
    failures — deterministically: the draw at step [s] is a pure function of
    [(seed, s)], so two runs with the same plan observe the same faults.

    Plans come from the [ECHO_FAULTS] environment variable or are built
    programmatically with {!of_specs}. The grammar is semicolon-separated
    entries:

    {v
      oom@STEP=BYTES        simulated OOM: device budget shrinks to BYTES
      oom@STEP=PCT%         ... to PCT% of the current executor footprint
      transient@STEP        transient kernel failure (bounded retry)
      transient@STEP=WHY    ... with a reason string
      nan@STEP              poison the step's loss with a NaN
      flaky@SEED=PERMILLE   seeded random transients: at each step a
                            deterministic draw from SEED fires a transient
                            with probability PERMILLE/1000
    v}

    e.g. [ECHO_FAULTS="oom@3=1048576;transient@5;nan@7"]. *)

type kind =
  | Oom of { budget_bytes : int }
      (** The simulated device shrank to [budget_bytes]; execution above the
          ceiling must raise [Echo_compiler.Executor.Budget_exceeded]. *)
  | Oom_shrink of { fraction : float }
      (** Relative variant: ceiling = [fraction] of the current footprint
          (always fires a budget violation for [fraction < 1]). *)
  | Transient of string  (** transient kernel failure; retry is expected *)
  | Nan_poison  (** the step's loss reads as NaN *)

type spec = { step : int; kind : kind }

type t

exception Transient_failure of string
(** The simulated kernel failure a [Transient] fault raises. *)

exception Bad_spec of string
(** Raised by {!parse} / {!of_env} on a malformed entry; the payload names
    the offending entry and the accepted grammar. *)

val none : t
(** The empty plan (never fires). *)

val of_specs : ?flaky:int * int -> spec list -> t
(** Programmatic plan. [flaky] is [(seed, permille)]. Each spec fires at
    most once; multiple specs may share a step (they fire on successive
    {!take} calls, e.g. across retries). *)

val parse : string -> t
(** Parse the [ECHO_FAULTS] grammar. @raise Bad_spec on malformed input. *)

val of_env : unit -> t
(** Plan from [ECHO_FAULTS] ([none] when unset or empty).
    @raise Bad_spec on malformed input. *)

val is_empty : t -> bool
(** No scheduled faults remain and no flaky source is armed. *)

val take : t -> step:int -> kind option
(** The fault to fire at [step], if any: the earliest-added unfired spec
    scheduled for [step], else one deterministic flaky draw per step. Each
    call consumes what it returns, so a retry of the same step sees the
    next scheduled fault or none. *)

val to_string : t -> string
(** Remaining plan, in {!parse} syntax (diagnostics). *)
