(** Deterministic fault injection for the training runtime.

    A fault plan is a set of scheduled faults (fire at an exact step) plus
    optional seeded "flaky"/"flipflaky" sources that fire pseudo-random
    faults — deterministically: the draw at step [s] is a pure function of
    [(seed, s)], so two runs with the same plan observe the same faults.

    Plans come from the [ECHO_FAULTS] environment variable or are built
    programmatically with {!of_specs}. The grammar is semicolon-separated
    entries:

    {v
      oom@STEP=BYTES            simulated OOM: device budget shrinks to BYTES
      oom@STEP=PCT%             ... to PCT% of the current executor footprint
      transient@STEP            transient kernel failure (bounded retry)
      transient@STEP=WHY        ... with a reason string
      nan@STEP                  poison the step's loss with a NaN
      flip@STEP=param:INDEX:BIT flip bit BIT (0..63) of parameter scalar
                                INDEX (flattened across all parameter
                                tensors in declaration order, mod total) —
                                persists: the corrupted value trains on
      flip@STEP=act:SITE:INDEX:BIT
                                flip bit BIT of scalar INDEX (mod numel) of
                                activation site SITE, immediately after the
                                site's kernel writes it during STEP's
                                forward/backward sweep. Sites index the
                                deterministic list of materialising forward
                                nodes of the original training graph
                                ({!Echo_train.Loop} resolves them), so the
                                same spec hits the same tensor under every
                                planner, fusion setting and domain count
      flaky@SEED=PERMILLE       seeded random transients: at each step a
                                deterministic draw from SEED fires a
                                transient with probability PERMILLE/1000
      flipflaky@SEED=PERMILLE   seeded random parameter bit-flips: at each
                                step a deterministic draw from SEED fires a
                                [Flip_param] (site and bit drawn from the
                                same stream) with probability PERMILLE/1000
    v}

    e.g. [ECHO_FAULTS="oom@3=1048576;flip@5=param:1009:52;nan@7"].

    Malformed plans fail fast: {!parse}/{!of_specs} bounds-check every entry
    (BIT in 0..63, non-negative STEP/INDEX/SITE) and raise {!Bad_spec}
    naming the offending entry before any training run starts. *)

type kind =
  | Oom of { budget_bytes : int }
      (** The simulated device shrank to [budget_bytes]; execution above the
          ceiling must raise [Echo_compiler.Executor.Budget_exceeded]. *)
  | Oom_shrink of { fraction : float }
      (** Relative variant: ceiling = [fraction] of the current footprint
          (always fires a budget violation for [fraction < 1]). *)
  | Transient of string  (** transient kernel failure; retry is expected *)
  | Nan_poison  (** the step's loss reads as NaN *)
  | Flip_param of { index : int; bit : int }
      (** Single-event upset in parameter memory: bit [bit] of flattened
          parameter scalar [index mod total] flips and stays flipped. *)
  | Flip_act of { site : int; index : int; bit : int }
      (** Single-event upset in activation memory: bit [bit] of scalar
          [index mod numel] of forward site [site] flips right after the
          site's kernel executes, for one step. *)

type spec = { step : int; kind : kind }

type t

exception Transient_failure of string
(** The simulated kernel failure a [Transient] fault raises. *)

exception Bad_spec of string
(** Raised by {!parse} / {!of_env} / {!of_specs} on a malformed or
    out-of-bounds entry; the payload names the offending entry and the
    accepted grammar. *)

val none : t
(** The empty plan (never fires). *)

val of_specs : ?flaky:int * int -> ?flip_flaky:int * int -> spec list -> t
(** Programmatic plan. [flaky] and [flip_flaky] are [(seed, permille)].
    Each spec fires at most once; multiple specs may share a step (they
    fire on successive {!take} calls, e.g. across retries).
    @raise Bad_spec on an out-of-bounds flip or a negative step. *)

val parse : string -> t
(** Parse the [ECHO_FAULTS] grammar. @raise Bad_spec on malformed input. *)

val of_env : unit -> t
(** Plan from [ECHO_FAULTS] ([none] when unset or empty).
    @raise Bad_spec on malformed input. *)

val is_empty : t -> bool
(** No scheduled faults remain and no flaky/flipflaky source is armed. *)

val specs : t -> spec list
(** The scheduled faults not yet consumed, in plan order — non-destructive,
    for upfront validation (e.g. {!Echo_train.Loop} checks every [Flip_act]
    site exists before compiling). *)

val take : t -> step:int -> kind option
(** The fault to fire at [step], if any: the earliest-added unfired spec
    scheduled for [step], else one deterministic flaky draw per step, else
    one deterministic flipflaky draw per step. Each call consumes what it
    returns, so a retry of the same step sees the next scheduled fault or
    none. *)

val kind_to_string : int -> kind -> string
(** [kind_to_string step kind] renders one fault in {!parse} syntax
    (e.g. ["flip@3=param:1009:52"]). *)

val to_string : t -> string
(** Remaining plan, in {!parse} syntax (diagnostics). *)
