open Echo_tensor
module Serial = Echo_ir.Serial

type t = {
  step : int;
  rng_state : int64 option;
  opt_steps : int;
  losses : float list;
  params : (string * Tensor.t) list;
  slots : (string * (int * Tensor.t) list) list;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let header = "echo-checkpoint v1"

(* FNV-1a 64. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let body ckpt =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" header;
  line "step %d" ckpt.step;
  line "opt-steps %d" ckpt.opt_steps;
  (match ckpt.rng_state with
  | Some s -> line "rng %Lx" s
  | None -> ());
  List.iter (fun l -> line "loss %h" l) ckpt.losses;
  List.iter
    (fun (name, t) ->
      line "param %s %s" (Serial.escape name) (Serial.tensor_to_string t))
    ckpt.params;
  List.iter
    (fun (slot, entries) ->
      List.iter
        (fun (idx, t) ->
          line "slot %s %d %s" (Serial.escape slot) idx
            (Serial.tensor_to_string t))
        entries)
    ckpt.slots;
  Buffer.contents buf

let save ~path ckpt =
  let b = body ckpt in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc b;
  Printf.fprintf oc "checksum %Lx\n" (checksum b);
  close_out oc;
  Sys.rename tmp path

let parse_int line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> corrupt "bad integer %S in line %S" s line

let parse_float line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> corrupt "bad float %S in line %S" s line

let tensor line s =
  try Serial.tensor_of_string s
  with Serial.Parse_error why -> corrupt "bad tensor in line %S: %s" line why

let load path =
  let text =
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      contents
    with Sys_error why -> corrupt "cannot read %s: %s" path why
  in
  (* Split off and verify the trailing checksum line first. *)
  let verified =
    let trimmed =
      if String.length text > 0 && text.[String.length text - 1] = '\n' then
        String.sub text 0 (String.length text - 1)
      else text
    in
    match String.rindex_opt trimmed '\n' with
    | None -> corrupt "%s: missing checksum line" path
    | Some nl ->
      let last = String.sub trimmed (nl + 1) (String.length trimmed - nl - 1) in
      let rest = String.sub trimmed 0 (nl + 1) in
      (match String.split_on_char ' ' last with
      | [ "checksum"; hex ] ->
        let expect =
          try Int64.of_string ("0x" ^ hex)
          with _ -> corrupt "%s: bad checksum %S" path hex
        in
        if checksum rest <> expect then
          corrupt "%s: checksum mismatch (file corrupt or truncated)" path;
        rest
      | _ -> corrupt "%s: missing checksum line" path)
  in
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' verified)
  in
  match lines with
  | first :: rest when String.trim first = header ->
    let step = ref None
    and opt_steps = ref 0
    and rng_state = ref None
    and losses = ref []
    and params = ref []
    and slots : (string, (int * Tensor.t) list ref) Hashtbl.t =
      Hashtbl.create 4
    and slot_order = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "step"; n ] -> step := Some (parse_int line n)
        | [ "opt-steps"; n ] -> opt_steps := parse_int line n
        | [ "rng"; hex ] -> (
          try rng_state := Some (Int64.of_string ("0x" ^ hex))
          with _ -> corrupt "bad rng state in line %S" line)
        | [ "loss"; v ] -> losses := parse_float line v :: !losses
        | [ "param"; name; t ] ->
          params := (Serial.unescape name, tensor line t) :: !params
        | [ "slot"; slot; idx; t ] ->
          let slot = Serial.unescape slot in
          let entries =
            match Hashtbl.find_opt slots slot with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add slots slot r;
              slot_order := slot :: !slot_order;
              r
          in
          entries := (parse_int line idx, tensor line t) :: !entries
        | _ -> corrupt "unrecognised checkpoint line %S" line)
      rest;
    (match !step with
    | None -> corrupt "%s: missing step line" path
    | Some step ->
      {
        step;
        rng_state = !rng_state;
        opt_steps = !opt_steps;
        losses = List.rev !losses;
        params = List.rev !params;
        slots =
          List.rev_map
            (fun slot -> (slot, List.rev !(Hashtbl.find slots slot)))
            !slot_order;
      })
  | first :: _ -> corrupt "%s: bad header %S" path first
  | [] -> corrupt "%s: empty checkpoint" path
