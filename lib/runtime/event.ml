type t =
  | Budget_hit of { step : int; requested_bytes : int; budget_bytes : int }
  | Replan of {
      step : int;
      policy : string;
      footprint_bytes : int;
      budget_bytes : int;
    }
  | Retry of { step : int; attempt : int; reason : string }
  | Skip of { step : int; reason : string }
  | Nan_guard of { step : int; loss : float; grad_norm : float }
  | Checkpoint_write of { step : int; path : string }
  | Checkpoint_load of { step : int; path : string }

let to_string = function
  | Budget_hit { step; requested_bytes; budget_bytes } ->
    Printf.sprintf "step %d: budget hit (%d bytes needed, %d allowed)" step
      requested_bytes budget_bytes
  | Replan { step; policy; footprint_bytes; budget_bytes } ->
    Printf.sprintf "step %d: replanned to %s (%d bytes under a %d-byte budget)"
      step policy footprint_bytes budget_bytes
  | Retry { step; attempt; reason } ->
    Printf.sprintf "step %d: retry %d after transient failure (%s)" step attempt
      reason
  | Skip { step; reason } -> Printf.sprintf "step %d: skipped (%s)" step reason
  | Nan_guard { step; loss; grad_norm } ->
    Printf.sprintf "step %d: non-finite guard (loss %g, grad norm %g); update \
                    skipped"
      step loss grad_norm
  | Checkpoint_write { step; path } ->
    Printf.sprintf "step %d: checkpoint written to %s" step path
  | Checkpoint_load { step; path } ->
    Printf.sprintf "step %d: resumed from checkpoint %s" step path

let pp fmt e = Format.pp_print_string fmt (to_string e)
