type t =
  | Budget_hit of { step : int; requested_bytes : int; budget_bytes : int }
  | Replan of {
      step : int;
      policy : string;
      footprint_bytes : int;
      budget_bytes : int;
    }
  | Fault_injected of { step : int; fault : Fault.kind; target : string }
  | Retry of { step : int; attempt : int; fault : Fault.kind }
  | Skip of { step : int; retries : int; fault : Fault.kind }
  | Nan_guard of { step : int; loss : float; grad_norm : float }
  | Checkpoint_write of { step : int; path : string }
  | Checkpoint_load of { step : int; path : string }

let fault_reason = function
  | Fault.Transient why -> why
  | k -> Fault.kind_to_string 0 k

let to_string = function
  | Budget_hit { step; requested_bytes; budget_bytes } ->
    Printf.sprintf "step %d: budget hit (%d bytes needed, %d allowed)" step
      requested_bytes budget_bytes
  | Replan { step; policy; footprint_bytes; budget_bytes } ->
    Printf.sprintf "step %d: replanned to %s (%d bytes under a %d-byte budget)"
      step policy footprint_bytes budget_bytes
  | Fault_injected { step; fault; target } ->
    Printf.sprintf "step %d: injected %s into %s" step
      (Fault.kind_to_string step fault)
      target
  | Retry { step; attempt; fault } ->
    Printf.sprintf "step %d: retry %d after transient failure (%s)" step attempt
      (fault_reason fault)
  | Skip { step; retries; fault } ->
    Printf.sprintf "step %d: skipped (%s still failing after %d retries)" step
      (fault_reason fault) retries
  | Nan_guard { step; loss; grad_norm } ->
    Printf.sprintf "step %d: non-finite guard (loss %g, grad norm %g); update \
                    skipped"
      step loss grad_norm
  | Checkpoint_write { step; path } ->
    Printf.sprintf "step %d: checkpoint written to %s" step path
  | Checkpoint_load { step; path } ->
    Printf.sprintf "step %d: resumed from checkpoint %s" step path

let pp fmt e = Format.pp_print_string fmt (to_string e)

let is_detection = function
  | Budget_hit _ | Replan _ | Retry _ | Skip _ | Nan_guard _ -> true
  | Fault_injected _ | Checkpoint_write _ | Checkpoint_load _ -> false
