(** Atomic, checksummed training checkpoints.

    A checkpoint captures everything [Echo_train.Loop.train] needs to resume
    a run so that the resumed process reproduces the uninterrupted run
    bit-exactly: the step counter, the RNG state, the full loss history so
    far, the parameter tensors, and the optimizer's slot tensors (velocity /
    second-moment, keyed positionally by parameter index so they survive
    crossing a process boundary where node ids differ).

    The on-disk format is line-oriented text built on [Echo_ir.Serial]'s
    bit-exact tensor encoding, ending in an FNV-1a 64 checksum line. Writes
    go to a temporary file in the same directory followed by [Sys.rename],
    so a crash mid-write never leaves a truncated checkpoint under the
    target path. *)

type t = {
  step : int;  (** number of completed training steps *)
  rng_state : int64 option;  (** data-pipeline RNG, if the loop owns one *)
  opt_steps : int;  (** optimizer's own step counter (Adam bias correction) *)
  losses : float list;  (** recorded losses, oldest first *)
  params : (string * Echo_tensor.Tensor.t) list;
      (** parameter values, in the loop's parameter order *)
  slots : (string * (int * Echo_tensor.Tensor.t) list) list;
      (** optimizer state: [(slot_name, [(param_index, tensor); ...])] *)
}

exception Corrupt of string
(** Raised by {!load} on a missing file, bad header, malformed line, or
    checksum mismatch; the payload says which. *)

val save : path:string -> t -> unit
(** Atomically write [t] to [path] (via [path ^ ".tmp"] + rename). *)

val load : string -> t
(** @raise Corrupt if the file is unreadable, malformed or fails its
    checksum. *)
