(** Recovery observability: every action the fault-tolerant training runtime
    takes — re-planning after a budget violation, retrying a transient
    kernel failure, skipping a poisoned step, writing or loading a
    checkpoint — is surfaced as one of these events through the
    [?on_event] callback of [Echo_train.Loop.train]. *)

type t =
  | Budget_hit of { step : int; requested_bytes : int; budget_bytes : int }
      (** Execution needed [requested_bytes] but the (possibly
          fault-shrunk) device budget allows only [budget_bytes]. *)
  | Replan of {
      step : int;
      policy : string;  (** surviving policy, [Echo_core.Pass.policy_name] *)
      footprint_bytes : int;  (** footprint of the re-compiled executor *)
      budget_bytes : int;
    }
      (** The runtime escalated through the recomputation ladder and
          re-compiled at the cheapest policy that fits. *)
  | Retry of { step : int; attempt : int; reason : string }
      (** A transient kernel failure; the step is being re-executed. *)
  | Skip of { step : int; reason : string }
      (** Retries exhausted; the step was dropped (no parameter update,
          no recorded loss). *)
  | Nan_guard of { step : int; loss : float; grad_norm : float }
      (** Non-finite loss or gradient norm; the update was skipped. *)
  | Checkpoint_write of { step : int; path : string }
  | Checkpoint_load of { step : int; path : string }

val to_string : t -> string
val pp : Format.formatter -> t -> unit
