(** Recovery observability: every action the fault-tolerant training runtime
    takes — re-planning after a budget violation, retrying a transient
    kernel failure, skipping a poisoned step, writing or loading a
    checkpoint — is surfaced as one of these events through the
    [?on_event] callback of [Echo_train.Loop.train].

    Payloads are structured (typed {!Fault.kind}, retry counts) so
    consumers — the campaign classifier in [Echo_campaign.Campaign], log
    shippers, dashboards — never parse strings. *)

type t =
  | Budget_hit of { step : int; requested_bytes : int; budget_bytes : int }
      (** Execution needed [requested_bytes] but the (possibly
          fault-shrunk) device budget allows only [budget_bytes]. *)
  | Replan of {
      step : int;
      policy : string;  (** surviving policy, [Echo_core.Pass.policy_name] *)
      footprint_bytes : int;  (** footprint of the re-compiled executor *)
      budget_bytes : int;
    }
      (** The runtime escalated through the recomputation ladder and
          re-compiled at the cheapest policy that fits. *)
  | Fault_injected of { step : int; fault : Fault.kind; target : string }
      (** A scheduled bit-flip was applied. [target] names the tensor hit
          (parameter name or activation-site node name) — the differential
          suite uses it to prove the same spec hits the same site under
          every planner and domain count. Observability only: classifiers
          must not count it as a {e detection}, see {!is_detection}. *)
  | Retry of { step : int; attempt : int; fault : Fault.kind }
      (** A transient kernel failure; the step is being re-executed.
          [attempt] counts from 1. *)
  | Skip of { step : int; retries : int; fault : Fault.kind }
      (** Retries exhausted after [retries] re-executions; the step was
          dropped (no parameter update, no recorded loss). [fault] is the
          failure that was still firing. *)
  | Nan_guard of { step : int; loss : float; grad_norm : float }
      (** Non-finite loss or gradient norm; the update was skipped. *)
  | Checkpoint_write of { step : int; path : string }
  | Checkpoint_load of { step : int; path : string }

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_detection : t -> bool
(** True for events that mean the runtime {e noticed and reacted to} a
    fault (budget hit, replan, retry, skip, NaN guard) — the signal the
    campaign classifier separates [Detected_recovered] from silent
    corruption with. False for pure observability ([Fault_injected]) and
    checkpoint traffic. *)
