(** Graph serialization: a stable, line-oriented text format so compiled
    (and rewritten) training graphs can be saved, diffed and reloaded by
    tools. Round-tripping preserves structure, names, regions and scheduling
    hints — a reloaded graph schedules, plans and evaluates identically
    (node ids are reassigned; everything order-relevant is written in
    schedule order so tie-breaking is stable). *)

exception Parse_error of string
(** Carries the offending line and reason. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val to_file : Graph.t -> string -> unit
val of_file : string -> Graph.t

(** {1 Shared encoding helpers}

    Used by the checkpoint format in [Echo_runtime]; exposed so every
    on-disk artifact escapes strings and encodes tensors the same way. *)

val escape : string -> string
(** Percent-escape spaces, ['%'] and newlines so a string fits in one
    space-separated token. *)

val unescape : string -> string
(** Inverse of {!escape}. @raise Parse_error on a malformed escape. *)

val tensor_to_string : Echo_tensor.Tensor.t -> string
(** One token, [SHAPE:v0,v1,...], with [%h] hex floats — round-trips are
    bit-exact. *)

val tensor_of_string : string -> Echo_tensor.Tensor.t
(** @raise Parse_error on malformed input. *)
