(** Elementwise-fusion grouping.

    Maximal single-consumer chains of same-shape, same-region elementwise
    nodes are identified as {e fusion groups}. A group evaluates as one
    kernel: per output element the chain is folded in registers, only the
    last member (the {e root}) writes a buffer, and every other member (an
    {e interior}) never materializes.

    This module is the single source of truth for what fuses. The cost
    model ({!Echo_opt.Fusion}), the planner ({!Echo_exec.Memplan} /
    {!Echo_exec.Liveness}) and the compiled executor all consume the same
    {!plan}, so the predicted arena, the simulated launch count and the
    compiled instruction stream agree by construction.

    The grouping rule ([member_of]): a node joins its first input's group
    iff both are elementwise with equal shapes, both live in the same
    region (a recomputed backward clone of a chain therefore fuses again,
    inside the backward region), the producer has exactly one consumer, and
    the producer is not a graph output (outputs must materialize). *)

type group = {
  members : Node.t list;  (** chain order, head first; length >= 2 *)
  root : Node.t;  (** last member — the only one that gets a buffer *)
  externals : Node.t list;
      (** inputs read from outside the group, in evaluation order: the
          head's inputs, then each later member's non-chain inputs. May
          contain duplicates when one node feeds several members. *)
}

type plan

val elementwise : Node.t -> bool
val member_of : Graph.t -> Node.t -> Node.t option
(** The producer whose group [node] joins, if any. *)

val default_max_externals : int
(** Default external budget per group ([2]: the seed plus one more
    operand — admits unary chains of any length and single-binary-step
    patterns while keeping the fused arena no larger than the unfused
    one). *)

val of_groups : group list -> plan
(** Index a raw group list into a plan, with no legality checking —
    [analyse] ends here, and the mutation harness enters here directly with
    deliberately illegal groups to prove {!Echo_analysis.Verify} rejects
    them. *)

val analyse : ?max_externals:int -> ?keep:(group -> bool) -> Graph.t -> plan
(** Identify fusion groups. Maximal chains are split so no group reads more
    than [max_externals] external buffers: every external stays live until
    the group's root executes, so an unbounded group (a long gradient
    accumulation, say) would pin all its summands simultaneously and grow
    the arena fusion is meant to shrink. A split point materializes the
    previous segment's root, which the next segment reads as its first
    external.

    [keep] (default: keep everything) filters the discovered groups: a
    rejected group's members compile as ordinary separate instructions.
    This is the hook the parallel-aware cost model
    ([Echo_opt.Fusion.profitable]) plugs into when a chain is predicted to
    lose wall-clock under the target runtime configuration. *)

val groups : plan -> group list
(** Groups in schedule order of their heads. *)

val group_count : plan -> int
val is_interior : plan -> int -> bool
val interior_count : plan -> int
val group_of_root : plan -> int -> group option

val reader : plan -> Node.t -> Node.t
(** The node at whose schedule position the given consumer's reads actually
    happen: the root of its group for a member, itself otherwise. Liveness
    extends every buffer a group reads to the root's step through this. *)

val inplace_candidates : plan -> Node.t -> Node.t list
(** Inputs the node's compiled instruction actually reads: the group's
    externals for a root, [Node.inputs] otherwise. In-place transfer picks
    its dying same-size donor from this list. *)

val interior_bytes : group -> int
(** Bytes of arena the group's interiors no longer need. *)

val env_enabled : unit -> bool
(** [ECHO_FUSION=0|off|false|no] disables the fusion stage's default;
    [1|on|true|yes], the empty string or an unset variable enables it.
    @raise Invalid_argument on any other value — a typo must not silently
    pick a default. *)

val pp_group : Format.formatter -> group -> unit
val pp_plan : Format.formatter -> plan -> unit
