(* Elementwise-fusion grouping: the single source of truth shared by the
   cost model (Echo_opt.Fusion), the memory planner (Echo_exec.Memplan /
   Liveness) and the compiled executor (Echo_compiler.Executor). All three
   must agree on what fuses — the planner's predicted arena and the
   executor's measured footprint are asserted equal by the test suite, and
   the cost model's launch accounting must describe what actually runs. *)

open Echo_tensor

type group = {
  members : Node.t list;
  root : Node.t;
  externals : Node.t list;
}

type plan = {
  groups : group list;
  root_of : (int, Node.t) Hashtbl.t;
  interior_tbl : (int, unit) Hashtbl.t;
  by_root : (int, group) Hashtbl.t;
}

let elementwise node =
  match Node.op node with
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.ScaleBy ->
    true
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Matmul _ | Op.AddBias | Op.Slice _ | Op.PadSlice _ | Op.Concat _
  | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _ | Op.ReduceMean _
  | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax | Op.CrossEntropy
  | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _ | Op.Conv2d _
  | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

(* A node joins its producer's (first input's) group when both are
   elementwise and same-shaped, live in the same region, the producer is
   consumed only by this node, and the producer is not a graph output (an
   output must materialize, so it can never be a register-resident
   interior). Single-consumer chains keep the analysis conservative: fusing
   them introduces no recomputation, and the only liveness change is that a
   group's external inputs are read at the root's step instead of at each
   member's. *)
let member_of graph node =
  if not (elementwise node) then None
  else begin
    match Node.inputs node with
    | [] -> None
    | producer :: _ ->
      if
        elementwise producer
        && Shape.equal (Node.shape producer) (Node.shape node)
        && Node.region producer = Node.region node
        && (not (Graph.is_output graph (Node.id producer)))
        && List.length (Graph.consumers graph (Node.id producer)) = 1
      then Some producer
      else None
  end

(* Two externals per group — the seed plus one more operand — admits every
   unary chain (any length: unary members add no externals) and the
   one-binary-step patterns LSTM cells are made of, while keeping the fused
   arena exactly equal to the unfused one on real training graphs. Budgets
   of 3+ fuse gradient-accumulation chains whose summands then stay live
   simultaneously, growing the arena several percent for little extra
   launch saving. *)
let default_max_externals = 2

(* Index a raw group list into a plan. [analyse] ends here; the mutation
   harness also enters here directly, with deliberately illegal groups, to
   prove the verifier rejects them. *)
let of_groups groups =
  let root_of = Hashtbl.create 256 in
  let interior_tbl = Hashtbl.create 256 in
  let by_root = Hashtbl.create 64 in
  List.iter
    (fun g ->
      Hashtbl.replace by_root (Node.id g.root) g;
      List.iter
        (fun m ->
          Hashtbl.replace root_of (Node.id m) g.root;
          if Node.id m <> Node.id g.root then
            Hashtbl.replace interior_tbl (Node.id m) ())
        g.members)
    groups;
  { groups; root_of; interior_tbl; by_root }

let analyse ?(max_externals = default_max_externals) ?(keep = fun _ -> true)
    graph =
  let schedule = Graph.nodes graph in
  (* producer id -> the member that absorbs it *)
  let succ : (int, Node.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun node ->
      match member_of graph node with
      | Some producer -> Hashtbl.replace succ (Node.id producer) node
      | None -> ())
    schedule;
  (* Split a maximal chain so no segment reads more than [max_externals]
     buffers. Fusing holds every external live until the root executes, so
     an unbounded group — a gradient-accumulation chain, say — would pin
     all its summands simultaneously and grow the very arena it is meant to
     shrink. A split point materializes the previous segment's root, which
     the next segment then reads as its first external. *)
  let split_chain members =
    let cost ~is_head m =
      if is_head then List.length (Node.inputs m)
      else max 0 (List.length (Node.inputs m) - 1)
    in
    let rec cut acc current n_ext = function
      | [] -> List.rev (List.rev current :: acc)
      | m :: rest ->
        let c = cost ~is_head:(current = []) m in
        if current <> [] && n_ext + c > max_externals then
          cut (List.rev current :: acc) [ m ] (cost ~is_head:true m) rest
        else cut acc (m :: current) (n_ext + c) rest
    in
    cut [] [] 0 members
  in
  let group_of_segment segment =
    match segment with
    | [] | [ _ ] -> None (* a segment of one node just compiles normally *)
    | head :: _ ->
      let root = List.nth segment (List.length segment - 1) in
      (* External inputs in evaluation order: the head reads all of its
         inputs; every later member chains on its first input and reads
         the rest from outside the group. *)
      let externals =
        List.concat_map
          (fun m ->
            if Node.id m = Node.id head then Node.inputs m
            else match Node.inputs m with [] -> [] | _ :: rest -> rest)
          segment
      in
      Some { members = segment; root; externals }
  in
  let groups =
    List.concat_map
      (fun head ->
        (* A head starts a chain (someone absorbs it) but is not itself
           absorbed into an earlier producer. *)
        if Hashtbl.mem succ (Node.id head) && member_of graph head = None
        then begin
          let rec walk acc node =
            match Hashtbl.find_opt succ (Node.id node) with
            | Some next -> walk (next :: acc) next
            | None -> List.rev acc
          in
          List.filter_map group_of_segment (split_chain (walk [ head ] head))
        end
        else [])
      schedule
  in
  (* [keep] is the cost-model valve: a dropped group's members simply
     compile as separate instructions, which is always semantically
     correct (fusion is an identity on values). *)
  of_groups (List.filter keep groups)

let groups p = p.groups
let group_count p = List.length p.groups
let is_interior p id = Hashtbl.mem p.interior_tbl id
let interior_count p = Hashtbl.length p.interior_tbl
let group_of_root p id = Hashtbl.find_opt p.by_root id

let reader p node =
  match Hashtbl.find_opt p.root_of (Node.id node) with
  | Some root -> root
  | None -> node

(* What the root's compiled instruction actually reads: the group's external
   inputs. The planner's in-place transfer and the executor's buffer
   binding both pick candidates from this list, in this order, so their
   decisions cannot diverge. *)
let inplace_candidates p node =
  match group_of_root p (Node.id node) with
  | Some g -> g.externals
  | None -> Node.inputs node

let interior_bytes g =
  List.fold_left
    (fun acc m -> if Node.id m <> Node.id g.root then acc + Node.size_bytes m else acc)
    0 g.members

(* ECHO_FUSION=0|off|false|no disables the codegen stage process-wide (the
   runtest rules use it to keep the unfused path green); 1|on|true|yes or
   an unset variable leaves it on. Anything else is rejected loudly — a
   misspelt ECHO_FUSION=fale silently enabling fusion would be
   indistinguishable from the setting having worked. *)
let env_enabled () =
  match Sys.getenv_opt "ECHO_FUSION" with
  | None | Some "" -> true
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "0" | "off" | "false" | "no" -> false
    | "1" | "on" | "true" | "yes" -> true
    | _ ->
      invalid_arg
        (Printf.sprintf
           "ECHO_FUSION=%S: expected one of 1|on|true|yes (enable) or \
            0|off|false|no (disable)"
           s))

let pp_group fmt g =
  let member_names =
    String.concat " -> "
      (List.map (fun m -> Printf.sprintf "%s#%d" (Node.name m) (Node.id m)) g.members)
  in
  let ext_names =
    String.concat ", "
      (List.map (fun e -> Printf.sprintf "%s#%d" (Node.name e) (Node.id e)) g.externals)
  in
  Format.fprintf fmt "@[<v 2>group (%d members, %d bytes of interiors elided):@,%s@,externals: %s@]"
    (List.length g.members) (interior_bytes g) member_names ext_names

let pp_plan fmt p =
  let total_members =
    List.fold_left (fun a g -> a + List.length g.members) 0 p.groups
  in
  Format.fprintf fmt
    "@[<v>%d fusion group(s), %d member(s), %d interior(s) elided, %d bytes saved@,"
    (group_count p) total_members (interior_count p)
    (List.fold_left (fun a g -> a + interior_bytes g) 0 p.groups);
  List.iter (fun g -> Format.fprintf fmt "%a@," pp_group g) p.groups;
  Format.fprintf fmt "@]"
