open Echo_tensor

type region = Forward | Backward

type t = {
  id : int;
  name : string;
  op : Op.t;
  inputs : t list;
  shape : Shape.t;
  region : region;
  hint : float;  (* scheduling priority; defaults to creation order *)
}

(* Atomic so independent graphs may be built from different domains at once
   (the campaign orchestrator does): each builder sees strictly increasing
   ids, and everything downstream (schedules, hints, liveness) depends only
   on the *relative* order of ids within one graph, which interleaving
   preserves. *)
let counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add counter 1
let reset_id_counter_for_tests () = Atomic.set counter 0

let create ?name ?(region = Forward) ?shape ?hint op inputs =
  let input_shapes = List.map (fun n -> n.shape) inputs in
  let out_shape = Op.infer_shape op input_shapes shape in
  let id = fresh_id () in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "n%d" id
  in
  let hint = match hint with Some h -> h | None -> float_of_int id in
  { id; name; op; inputs; shape = out_shape; region; hint }

let clone_with_inputs ?region ?name ?hint node inputs =
  let region = Option.value region ~default:node.region in
  let name = Option.value name ~default:node.name in
  let hint = Option.value hint ~default:node.hint in
  let shape =
    match Op.arity node.op with Some 0 -> Some node.shape | Some _ | None -> None
  in
  create ~name ~region ?shape ~hint node.op inputs

let id n = n.id
let hint n = n.hint
let shape n = n.shape
let op n = n.op
let inputs n = n.inputs
let region n = n.region
let name n = n.name
let size_bytes n = 4 * Shape.numel n.shape
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

(* Construction DSL *)

let placeholder ?name shape = create ?name ~shape Op.Placeholder []
let variable ?name shape = create ?name ~shape Op.Variable []
let zeros ?name ?region shape = create ?name ?region ~shape Op.Zeros []
let const_fill ?name ?region v shape = create ?name ?region ~shape (Op.ConstFill v) []

let dropout_mask ?name ~p ~seed shape =
  create ?name ~shape (Op.DropoutMask { p; seed }) []

let binop op ?region a b = create ?region op [ a; b ]
let unop op ?region a = create ?region op [ a ]
let add ?region a b = binop Op.Add ?region a b
let sub ?region a b = binop Op.Sub ?region a b
let mul ?region a b = binop Op.Mul ?region a b
let div ?region a b = binop Op.Div ?region a b
let neg ?region a = unop Op.Neg ?region a
let scale ?region k a = unop (Op.Scale k) ?region a
let add_scalar ?region k a = unop (Op.AddScalar k) ?region a
let pow_const ?region p a = unop (Op.PowConst p) ?region a
let sigmoid ?name ?region a = create ?name ?region Op.Sigmoid [ a ]
let tanh_ ?name ?region a = create ?name ?region Op.Tanh [ a ]
let relu ?name ?region a = create ?name ?region Op.Relu [ a ]
let exp_ ?region a = unop Op.Exp ?region a
let log_ ?region a = unop Op.Log ?region a
let sqrt_ ?region a = unop Op.Sqrt ?region a
let sq ?region a = unop Op.Sq ?region a
let recip ?region a = unop Op.Recip ?region a
let sign ?region a = unop Op.Sign ?region a

let matmul ?name ?region ?(trans_a = false) ?(trans_b = false) a b =
  create ?name ?region (Op.Matmul { trans_a; trans_b }) [ a; b ]

let add_bias ?name ?region m b = create ?name ?region Op.AddBias [ m; b ]
let scale_by ?region x s = create ?region Op.ScaleBy [ x; s ]

let slice ?name ?region ~axis ~lo ~hi a =
  create ?name ?region (Op.Slice { axis; lo; hi }) [ a ]

let pad_slice ?region ~axis ~lo ~full a =
  create ?region (Op.PadSlice { axis; lo; full }) [ a ]

let concat ?name ?region ~axis xs = create ?name ?region (Op.Concat { axis }) xs
let reshape ?region s a = create ?region (Op.Reshape s) [ a ]
let transpose2d ?region a = create ?region Op.Transpose2d [ a ]

let reduce_sum ?region ~axis ~keepdims a =
  create ?region (Op.ReduceSum { axis; keepdims }) [ a ]

let reduce_mean ?region ~axis ~keepdims a =
  create ?region (Op.ReduceMean { axis; keepdims }) [ a ]

let broadcast_axis ?region ~axis ~n a =
  create ?region (Op.BroadcastAxis { axis; n }) [ a ]

let softmax ?name ?region a = create ?name ?region Op.Softmax [ a ]
let log_softmax ?name ?region a = create ?name ?region Op.LogSoftmax [ a ]

let cross_entropy ~logits ~labels = create Op.CrossEntropy [ logits; labels ]

let cross_entropy_grad ~logits ~labels =
  create ~region:Backward Op.CrossEntropyGrad [ logits; labels ]

let embedding ~table ~ids = create Op.Embedding [ table; ids ]

let embedding_grad ~vocab ~ids ~grad_out =
  create ~region:Backward (Op.EmbeddingGrad { vocab }) [ ids; grad_out ]

let conv2d ~stride ~pad ~input ~kernel =
  create (Op.Conv2d { stride; pad }) [ input; kernel ]

let pp fmt n =
  Format.fprintf fmt "#%d %s %s %s %s" n.id n.name (Op.to_string n.op)
    (Shape.to_string n.shape)
    (match n.region with Forward -> "fwd" | Backward -> "bwd")
