type t = {
  outputs : Node.t list;
  schedule : Node.t list;  (* all reachable nodes, deterministic topo order *)
  by_id : (int, Node.t) Hashtbl.t;
  consumers : (int, Node.t list) Hashtbl.t;  (* reverse edges, in schedule order *)
  output_ids : Ids.Set.t;
}

(* Collect every node reachable from the outputs (iterative: unrolled
   graphs far exceed the stack limit). *)
let reachable outputs =
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  let stack = ref (List.map (fun n -> `Visit n) outputs) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | `Done n :: rest ->
      stack := rest;
      acc := n :: !acc;
      loop ()
    | `Visit n :: rest ->
      if Hashtbl.mem seen (Node.id n) then begin
        stack := rest;
        loop ()
      end
      else begin
        Hashtbl.add seen (Node.id n) ();
        stack := List.map (fun i -> `Visit i) (Node.inputs n) @ (`Done n :: rest);
        loop ()
      end
  in
  loop ();
  List.rev !acc

(* Program-order schedule: Kahn's algorithm picking the ready node with the
   smallest (hint, id). Hints default to creation ids, so an unmodified
   training graph executes exactly in the order the model and the autodiff
   engine emitted it — per-step gradient aggregation interleaves with the
   gradient chain instead of piling up at the end. Graph rewrites assign
   recomputation clones a hint just below their first consumer's, so clones
   run just-in-time inside the backward pass. *)
module Ready = Stdlib.Set.Make (struct
  type t = float * int (* hint, id *)

  let compare = Stdlib.compare
end)

let hint_schedule members =
  let pending = Hashtbl.create 1024 in
  let consumers_of = Hashtbl.create 1024 in
  let by_id = Hashtbl.create 1024 in
  List.iter
    (fun n ->
      Hashtbl.replace by_id (Node.id n) n;
      Hashtbl.replace pending (Node.id n) (List.length (Node.inputs n));
      List.iter
        (fun i ->
          let cur = try Hashtbl.find consumers_of (Node.id i) with Not_found -> [] in
          Hashtbl.replace consumers_of (Node.id i) (n :: cur))
        (Node.inputs n))
    members;
  let ready = ref Ready.empty in
  List.iter
    (fun n ->
      if Node.inputs n = [] then
        ready := Ready.add (Node.hint n, Node.id n) !ready)
    members;
  let out = ref [] in
  let placed = ref 0 in
  while not (Ready.is_empty !ready) do
    let ((_, id) as key) = Ready.min_elt !ready in
    ready := Ready.remove key !ready;
    let n = Hashtbl.find by_id id in
    out := n :: !out;
    incr placed;
    List.iter
      (fun c ->
        let d = Hashtbl.find pending (Node.id c) - 1 in
        Hashtbl.replace pending (Node.id c) d;
        if d = 0 then ready := Ready.add (Node.hint c, Node.id c) !ready)
      (try Hashtbl.find consumers_of id with Not_found -> [])
  done;
  if !placed <> List.length members then failwith "Graph: cycle detected";
  List.rev !out

let create outputs =
  if outputs = [] then invalid_arg "Graph.create: empty output list";
  let members = reachable outputs in
  let schedule = hint_schedule members in
  let by_id = Hashtbl.create (List.length schedule) in
  List.iter (fun n -> Hashtbl.replace by_id (Node.id n) n) schedule;
  let consumers = Hashtbl.create (List.length schedule) in
  (* Build reverse edges in schedule order so consumer lists are stable. *)
  List.iter
    (fun n ->
      List.iter
        (fun i ->
          let cur = try Hashtbl.find consumers (Node.id i) with Not_found -> [] in
          Hashtbl.replace consumers (Node.id i) (n :: cur))
        (Node.inputs n))
    schedule;
  Hashtbl.iter (fun k v -> Hashtbl.replace consumers k (List.rev v)) consumers;
  let output_ids =
    List.fold_left (fun s n -> Ids.Set.add (Node.id n) s) Ids.Set.empty outputs
  in
  { outputs; schedule; by_id; consumers; output_ids }

let outputs g = g.outputs
let nodes g = g.schedule
let node_count g = List.length g.schedule
let mem g id = Hashtbl.mem g.by_id id
let find g id = Hashtbl.find g.by_id id
let consumers g id = try Hashtbl.find g.consumers id with Not_found -> []
let is_output g id = Ids.Set.mem id g.output_ids

let forward_nodes g =
  List.filter (fun n -> Node.region n = Node.Forward) g.schedule

let backward_nodes g =
  List.filter (fun n -> Node.region n = Node.Backward) g.schedule

(* Structural validation, collect-all: every violation becomes one
   diagnostic instead of the walk stopping at the first. *)
let check g =
  let report = Echo_diag.Report.create () in
  let err ~nodes fmt =
    Echo_diag.Report.errorf report ~check:"graph" ~stage:"graph" ~nodes fmt
  in
  let describe n =
    Printf.sprintf "%s %s (#%d)" (Op.to_string (Node.op n)) (Node.name n)
      (Node.id n)
  in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen (Node.id n) then
        err ~nodes:[ Node.id n ] "duplicate id: %s appears twice in the schedule"
          (describe n);
      List.iter
        (fun i ->
          if not (Hashtbl.mem seen (Node.id i)) then
            err
              ~nodes:[ Node.id n; Node.id i ]
              "%s is scheduled before its input %s" (describe n) (describe i))
        (Node.inputs n);
      Hashtbl.add seen (Node.id n) ())
    g.schedule;
  List.iter
    (fun o ->
      if not (Hashtbl.mem seen (Node.id o)) then
        err ~nodes:[ Node.id o ] "output %s is not in the schedule" (describe o))
    g.outputs;
  report

let validate g =
  match Echo_diag.Report.errors (check g) with
  | [] -> ()
  | first :: _ ->
    failwith (Printf.sprintf "Graph.validate: %s" first.Echo_diag.message)

let total_output_bytes g =
  List.fold_left (fun acc n -> acc + Node.size_bytes n) 0 g.schedule

(* Canonical structural digest. Raw node ids are process-local (a global
   atomic counter), so they must never feed anything content-addressed; the
   fingerprint instead renames every node to its schedule position — a pure
   function of the graph's structure and relative hint order, identical for
   every fresh build of the same model in any process. Per node it hashes
   the operator (with all attributes), output shape, region and canonical
   input ids; inputs of commutative operators are sorted so [a + b] and
   [b + a] fingerprint alike. Leaf names are included: feedable inputs
   (placeholders/variables) are resolved by name when a cached executable
   serves a structurally identical graph from a different build, so two
   graphs may only share a fingerprint when that resolution works.
   Interior names are cosmetic and excluded. *)
let fingerprint g =
  let canon = Hashtbl.create (List.length g.schedule) in
  List.iteri (fun i n -> Hashtbl.replace canon (Node.id n) i) g.schedule;
  let buf = Buffer.create 4096 in
  List.iter
    (fun n ->
      let ins =
        List.map (fun i -> Hashtbl.find canon (Node.id i)) (Node.inputs n)
      in
      let ins =
        (* Only ops whose value is invariant under input permutation. *)
        match Node.op n with
        | Op.Add | Op.Mul -> List.sort Int.compare ins
        | _ -> ins
      in
      Buffer.add_string buf (Op.to_string (Node.op n));
      Buffer.add_char buf '|';
      Buffer.add_string buf (Echo_tensor.Shape.to_string (Node.shape n));
      Buffer.add_char buf '|';
      Buffer.add_string buf
        (match Node.region n with Node.Forward -> "f" | Node.Backward -> "b");
      if Op.is_leaf (Node.op n) then begin
        Buffer.add_char buf '|';
        Buffer.add_string buf (Node.name n)
      end;
      List.iter
        (fun i ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int i))
        ins;
      Buffer.add_char buf '\n')
    g.schedule;
  Buffer.add_string buf "outputs";
  List.iter
    (fun o ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (Hashtbl.find canon (Node.id o))))
    g.outputs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_stats fmt g =
  let fwd = List.length (forward_nodes g) and bwd = List.length (backward_nodes g) in
  Format.fprintf fmt "nodes=%d (fwd=%d bwd=%d) outputs=%d total_bytes=%d"
    (node_count g) fwd bwd (List.length g.outputs) (total_output_bytes g)

let to_dot g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph G {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      let color = match Node.region n with Node.Forward -> "lightblue" | Node.Backward -> "lightsalmon" in
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"%s\\n%s %s\", style=filled, fillcolor=%s];\n"
           (Node.id n) (Node.name n)
           (Op.to_string (Node.op n))
           (Echo_tensor.Shape.to_string (Node.shape n))
           color);
      List.iter
        (fun i ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" (Node.id i) (Node.id n)))
        (Node.inputs n))
    g.schedule;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
