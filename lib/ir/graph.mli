(** Dataflow graphs.

    A graph is its list of output nodes; everything reachable from them
    through input edges belongs to the graph. Scheduling is deterministic:
    Kahn's algorithm breaking ties by smallest node id, which reproduces
    program (creation) order — forward nodes first, backward nodes next, and
    recomputation clones as late as their consumers allow. *)

type t

val create : Node.t list -> t
(** @raise Invalid_argument on an empty output list. *)

val outputs : t -> Node.t list

val nodes : t -> Node.t list
(** All reachable nodes in schedule order (see above). Computed once and
    cached. *)

val node_count : t -> int

val mem : t -> int -> bool
(** Is the node with this id part of the graph? *)

val find : t -> int -> Node.t
(** @raise Not_found if absent. *)

val consumers : t -> int -> Node.t list
(** Nodes of the graph that take the given node as an input. A consumer that
    uses the node for several of its input slots appears once per slot. *)

val is_output : t -> int -> bool

val forward_nodes : t -> Node.t list
val backward_nodes : t -> Node.t list

val check : t -> Echo_diag.Report.t
(** Internal consistency check, collect-all: every input of a member is a
    member, ids are unique, schedule order is topological. Each violation is
    one error-severity diagnostic (check ["graph"]) naming node ids and op
    names; a consistent graph yields an empty report. *)

val validate : t -> unit
(** Raising wrapper over {!check} for callers that want the first error
    only. @raise Failure on violation. *)

val total_output_bytes : t -> int
(** Sum of every member node's output size (an upper bound on transient
    footprint, before liveness or reuse). *)

val fingerprint : t -> string
(** Canonical structural digest (32 hex chars): operators with attributes,
    shapes, regions, leaf names, canonical (schedule-position) input edges
    and output list — never raw node ids, which are process-local. Two
    independent builds of the same model, in the same or different
    processes, fingerprint identically; inputs of commutative operators are
    sorted, so the digest is order-independent where that is legal. This is
    the only node-graph hash that may feed content-addressed cache keys
    ({!Echo_compiler.Pipeline.cache_key}); the ad-hoc keys inside
    [Echo_opt.Cse] embed raw ids and must not. *)

val pp_stats : Format.formatter -> t -> unit
val to_dot : t -> string
(** Graphviz rendering for debugging (small graphs only). *)
