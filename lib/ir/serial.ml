open Echo_tensor

exception Parse_error of string

let fail line reason = raise (Parse_error (Printf.sprintf "%s: %s" reason line))

(* Percent-escape the characters that would break the line format. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string buf "%20"
      | '%' -> Buffer.add_string buf "%25"
      | '\n' -> Buffer.add_string buf "%0A"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      if s.[i] = '%' && i + 2 < n then begin
        (match String.sub s (i + 1) 2 with
        | "20" -> Buffer.add_char buf ' '
        | "25" -> Buffer.add_char buf '%'
        | "0A" -> Buffer.add_char buf '\n'
        | other -> fail s ("bad escape %" ^ other));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

let shape_to_string s =
  if Array.length s = 0 then "scalar"
  else String.concat "x" (Array.to_list (Array.map string_of_int s))

let shape_of_string line s =
  if s = "scalar" then Shape.scalar
  else begin
    match
      Array.of_list (List.map int_of_string (String.split_on_char 'x' s))
    with
    | shape ->
      Shape.validate shape;
      shape
    | exception _ -> fail line ("bad shape " ^ s)
  end

let bool_to_string b = if b then "1" else "0"

(* Operator <-> token list. The first token is the opcode; the rest are
   key=value pairs in a fixed order per opcode. *)
let op_tokens op =
  let shape s = shape_to_string s in
  match (op : Op.t) with
  | Op.Placeholder -> [ "placeholder" ]
  | Op.Variable -> [ "variable" ]
  | Op.Zeros -> [ "zeros" ]
  | Op.ConstFill v -> [ "constfill"; string_of_float v ]
  | Op.DropoutMask { p; seed } ->
    [ "dropoutmask"; string_of_float p; string_of_int seed ]
  | Op.Neg -> [ "neg" ]
  | Op.Scale k -> [ "scale"; string_of_float k ]
  | Op.AddScalar k -> [ "addscalar"; string_of_float k ]
  | Op.PowConst p -> [ "powconst"; string_of_float p ]
  | Op.Sigmoid -> [ "sigmoid" ]
  | Op.Tanh -> [ "tanh" ]
  | Op.Relu -> [ "relu" ]
  | Op.Exp -> [ "exp" ]
  | Op.Log -> [ "log" ]
  | Op.Sqrt -> [ "sqrt" ]
  | Op.Sq -> [ "sq" ]
  | Op.Recip -> [ "recip" ]
  | Op.Sign -> [ "sign" ]
  | Op.Add -> [ "add" ]
  | Op.Sub -> [ "sub" ]
  | Op.Mul -> [ "mul" ]
  | Op.Div -> [ "div" ]
  | Op.Matmul { trans_a; trans_b } ->
    [ "matmul"; bool_to_string trans_a; bool_to_string trans_b ]
  | Op.AddBias -> [ "addbias" ]
  | Op.ScaleBy -> [ "scaleby" ]
  | Op.Slice { axis; lo; hi } ->
    [ "slice"; string_of_int axis; string_of_int lo; string_of_int hi ]
  | Op.PadSlice { axis; lo; full } ->
    [ "padslice"; string_of_int axis; string_of_int lo; string_of_int full ]
  | Op.Concat { axis } -> [ "concat"; string_of_int axis ]
  | Op.Reshape s -> [ "reshape"; shape s ]
  | Op.Transpose2d -> [ "transpose2d" ]
  | Op.ReduceSum { axis; keepdims } ->
    [ "reducesum"; string_of_int axis; bool_to_string keepdims ]
  | Op.ReduceMean { axis; keepdims } ->
    [ "reducemean"; string_of_int axis; bool_to_string keepdims ]
  | Op.BroadcastAxis { axis; n } ->
    [ "broadcastaxis"; string_of_int axis; string_of_int n ]
  | Op.Softmax -> [ "softmax" ]
  | Op.LogSoftmax -> [ "logsoftmax" ]
  | Op.CrossEntropy -> [ "crossentropy" ]
  | Op.CrossEntropyGrad -> [ "crossentropygrad" ]
  | Op.Embedding -> [ "embedding" ]
  | Op.EmbeddingGrad { vocab } -> [ "embeddinggrad"; string_of_int vocab ]
  | Op.Conv2d { stride; pad } ->
    [ "conv2d"; string_of_int stride; string_of_int pad ]
  | Op.Conv2dGradInput { stride; pad; input_shape } ->
    [ "conv2dgradinput"; string_of_int stride; string_of_int pad; shape input_shape ]
  | Op.Conv2dGradKernel { stride; pad; kernel_shape } ->
    [ "conv2dgradkernel"; string_of_int stride; string_of_int pad; shape kernel_shape ]

let op_of_tokens line tokens =
  let f s = try float_of_string s with _ -> fail line ("bad float " ^ s) in
  let i s = try int_of_string s with _ -> fail line ("bad int " ^ s) in
  let b s =
    match s with "1" -> true | "0" -> false | _ -> fail line ("bad bool " ^ s)
  in
  match tokens with
  | [ "placeholder" ] -> Op.Placeholder
  | [ "variable" ] -> Op.Variable
  | [ "zeros" ] -> Op.Zeros
  | [ "constfill"; v ] -> Op.ConstFill (f v)
  | [ "dropoutmask"; p; seed ] -> Op.DropoutMask { p = f p; seed = i seed }
  | [ "neg" ] -> Op.Neg
  | [ "scale"; k ] -> Op.Scale (f k)
  | [ "addscalar"; k ] -> Op.AddScalar (f k)
  | [ "powconst"; p ] -> Op.PowConst (f p)
  | [ "sigmoid" ] -> Op.Sigmoid
  | [ "tanh" ] -> Op.Tanh
  | [ "relu" ] -> Op.Relu
  | [ "exp" ] -> Op.Exp
  | [ "log" ] -> Op.Log
  | [ "sqrt" ] -> Op.Sqrt
  | [ "sq" ] -> Op.Sq
  | [ "recip" ] -> Op.Recip
  | [ "sign" ] -> Op.Sign
  | [ "add" ] -> Op.Add
  | [ "sub" ] -> Op.Sub
  | [ "mul" ] -> Op.Mul
  | [ "div" ] -> Op.Div
  | [ "matmul"; ta; tb ] -> Op.Matmul { trans_a = b ta; trans_b = b tb }
  | [ "addbias" ] -> Op.AddBias
  | [ "scaleby" ] -> Op.ScaleBy
  | [ "slice"; axis; lo; hi ] -> Op.Slice { axis = i axis; lo = i lo; hi = i hi }
  | [ "padslice"; axis; lo; full ] ->
    Op.PadSlice { axis = i axis; lo = i lo; full = i full }
  | [ "concat"; axis ] -> Op.Concat { axis = i axis }
  | [ "reshape"; s ] -> Op.Reshape (shape_of_string line s)
  | [ "transpose2d" ] -> Op.Transpose2d
  | [ "reducesum"; axis; keep ] -> Op.ReduceSum { axis = i axis; keepdims = b keep }
  | [ "reducemean"; axis; keep ] ->
    Op.ReduceMean { axis = i axis; keepdims = b keep }
  | [ "broadcastaxis"; axis; n ] -> Op.BroadcastAxis { axis = i axis; n = i n }
  | [ "softmax" ] -> Op.Softmax
  | [ "logsoftmax" ] -> Op.LogSoftmax
  | [ "crossentropy" ] -> Op.CrossEntropy
  | [ "crossentropygrad" ] -> Op.CrossEntropyGrad
  | [ "embedding" ] -> Op.Embedding
  | [ "embeddinggrad"; vocab ] -> Op.EmbeddingGrad { vocab = i vocab }
  | [ "conv2d"; stride; pad ] -> Op.Conv2d { stride = i stride; pad = i pad }
  | [ "conv2dgradinput"; stride; pad; s ] ->
    Op.Conv2dGradInput
      { stride = i stride; pad = i pad; input_shape = shape_of_string line s }
  | [ "conv2dgradkernel"; stride; pad; s ] ->
    Op.Conv2dGradKernel
      { stride = i stride; pad = i pad; kernel_shape = shape_of_string line s }
  | _ -> fail line "unknown operator"

(* Tensor <-> single token: SHAPE:V0,V1,... with %h floats so round-trips
   are bit-exact. Used by the checkpoint format in [Echo_runtime]. *)
let tensor_to_string t =
  let values =
    Array.to_list (Array.map (Printf.sprintf "%h") (Tensor.to_array t))
  in
  shape_to_string (Tensor.shape t) ^ ":" ^ String.concat "," values

let tensor_of_string s =
  match String.index_opt s ':' with
  | None -> fail s "missing ':' in tensor"
  | Some colon ->
    let shape = shape_of_string s (String.sub s 0 colon) in
    let body = String.sub s (colon + 1) (String.length s - colon - 1) in
    let values =
      if body = "" then [||]
      else
        Array.of_list
          (List.map
             (fun v ->
               try float_of_string v with _ -> fail s ("bad float " ^ v))
             (String.split_on_char ',' body))
    in
    if Array.length values <> Shape.numel shape then
      fail s "tensor element count does not match shape";
    Tensor.create shape values

let header = "echo-graph v1"

let to_string graph =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s %s %h %s %s ; %s\n" (Node.id n)
           (escape (Node.name n))
           (match Node.region n with Node.Forward -> "fwd" | Node.Backward -> "bwd")
           (Node.hint n)
           (shape_to_string (Node.shape n))
           (String.concat " " (op_tokens (Node.op n)))
           (String.concat " " (List.map (fun i -> string_of_int (Node.id i)) (Node.inputs n)))))
    (Graph.nodes graph);
  Buffer.add_string buf
    ("outputs "
    ^ String.concat " " (List.map (fun o -> string_of_int (Node.id o)) (Graph.outputs graph))
    ^ "\n");
  Buffer.contents buf

let of_string text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> raise (Parse_error "empty input")
  | first :: rest when String.trim first = header ->
    let table : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
    let outputs = ref None in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | "outputs" :: ids ->
          outputs :=
            Some
              (List.map
                 (fun s ->
                   match Hashtbl.find_opt table (int_of_string s) with
                   | Some n -> n
                   | None -> fail line ("unknown output id " ^ s))
                 ids)
        | "node" :: id :: name :: region :: hint :: shape :: rest -> (
          let id = try int_of_string id with _ -> fail line "bad id" in
          let region =
            match region with
            | "fwd" -> Node.Forward
            | "bwd" -> Node.Backward
            | other -> fail line ("bad region " ^ other)
          in
          let hint = try float_of_string hint with _ -> fail line "bad hint" in
          (* rest = op tokens ; inputs *)
          match
            let rec split acc = function
              | ";" :: tl -> (List.rev acc, tl)
              | tok :: tl -> split (tok :: acc) tl
              | [] -> fail line "missing ';'"
            in
            split [] rest
          with
          | op_tokens_list, input_ids ->
            let op = op_of_tokens line op_tokens_list in
            let inputs =
              List.map
                (fun s ->
                  match Hashtbl.find_opt table (int_of_string s) with
                  | Some n -> n
                  | None -> fail line ("unknown input id " ^ s))
                (List.filter (fun s -> s <> "") input_ids)
            in
            let shape_v = shape_of_string line shape in
            let explicit = if Op.is_leaf op then Some shape_v else None in
            let node =
              Node.create ~name:(unescape name) ~region ~hint ?shape:explicit op
                inputs
            in
            if not (Shape.equal (Node.shape node) shape_v) then
              fail line "shape mismatch after reconstruction";
            Hashtbl.replace table id node)
        | _ -> fail line "unrecognised line")
      rest;
    (match !outputs with
    | Some os -> Graph.create os
    | None -> raise (Parse_error "missing outputs line"))
  | first :: _ -> fail first "bad header"

let to_file graph path =
  let oc = open_out path in
  output_string oc (to_string graph);
  close_out oc

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  of_string contents
