(** Synthetic corpora (DESIGN.md substitution for PTB / WikiText-2 / WMT /
    LibriSpeech).

    Token streams follow a Zipfian unigram law with first-order Markov
    structure, so a language model genuinely has something to learn —
    training-quality experiments need the loss to fall, not to match a real
    dataset's perplexity. Footprint/time experiments only need shapes. *)

open Echo_tensor

type t

val generate : seed:int -> vocab:int -> length:int -> t
(** A Zipf-Markov token stream. *)

val load_text : string -> t
(** A real corpus, PTB-style: one sentence per line, words separated by
    blanks, each line closed with an ["<eos>"] token (id 0). Word ids are
    assigned in order of first appearance, so the dictionary — and every
    batch stream derived from it — is a pure function of the file
    contents. Feed the result to {!lm_batches} exactly like a synthetic
    stream ([echoc --train --corpus FILE] does).
    @raise Invalid_argument when the file cannot be read or contains no
    words. *)

val vocab : t -> int
val length : t -> int
val token : t -> int -> int

val vocab_words : t -> string array
(** The dictionary of a {!load_text} stream, id-indexed (["<eos>"] first);
    empty for synthetic streams. *)

val lm_batches :
  t -> batch:int -> seq_len:int -> steps:int -> (Tensor.t * Tensor.t) list
(** Mini-batches for the language model: (tokens, labels) pairs, each
    [(seq_len * batch)] time-major, labels shifted by one position.
    Consecutive steps advance through the stream (truncated BPTT style).
    @raise Invalid_argument if the stream is too short. *)

val pair_batches :
  src:t ->
  tgt:t ->
  batch:int ->
  src_len:int ->
  tgt_len:int ->
  steps:int ->
  (Tensor.t * Tensor.t * Tensor.t) list
(** Synthetic parallel corpus for NMT: (src, tgt_in, labels). *)

val spectrogram_batches :
  seed:int ->
  batch:int ->
  time:int ->
  freq:int ->
  classes:int ->
  frames:int ->
  steps:int ->
  (Tensor.t * Tensor.t) list
(** Synthetic filterbank utterances and frame alignments for DeepSpeech2:
    (spectrogram [B x 1 x time x freq], alignment [(frames*batch)]). *)
