open Echo_tensor

type t = {
  tokens : int array;
  vocab : int;
  words : string array;  (** id -> word; empty for synthetic streams *)
}

(* Zipf sampling via inverse-CDF over 1/rank weights, with a first-order
   Markov twist: with probability 0.3 the next token is a deterministic
   function of the current one, which gives an LSTM something to learn. *)
let generate ~seed ~vocab ~length =
  if vocab < 2 then invalid_arg "Corpus.generate: vocab < 2";
  let rng = Rng.create seed in
  let weights = Array.init vocab (fun r -> 1.0 /. float_of_int (r + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make vocab 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  let sample () =
    let u = Rng.float rng in
    let rec find lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then find (mid + 1) hi else find lo mid
      end
    in
    find 0 (vocab - 1)
  in
  let tokens = Array.make length 0 in
  for i = 1 to length - 1 do
    tokens.(i) <-
      (if Rng.float rng < 0.3 then ((tokens.(i - 1) * 7) + 3) mod vocab
       else sample ())
  done;
  { tokens; vocab; words = [||] }

(* PTB-style ingest: the file is a word stream, one sentence per line, words
   blank-separated; every line is closed with the "<eos>" token (id 0), and
   word ids are assigned in order of first appearance — the dictionary is a
   pure function of the file contents, so two processes loading the same
   file build bit-identical batch streams. *)
let load_text path =
  let ic =
    try open_in path
    with Sys_error msg -> invalid_arg ("Corpus.load_text: " ^ msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let dict : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      Hashtbl.replace dict "<eos>" 0;
      let words = ref [ "<eos>" ] in
      let next = ref 1 in
      let toks = ref [] in
      let id_of w =
        match Hashtbl.find_opt dict w with
        | Some i -> i
        | None ->
          let i = !next in
          Hashtbl.replace dict w i;
          words := w :: !words;
          incr next;
          i
      in
      (try
         while true do
           let line = input_line ic in
           List.iter
             (fun w -> if w <> "" then toks := id_of w :: !toks)
             (String.split_on_char ' '
                (String.map (fun c -> if c = '\t' then ' ' else c) line));
           toks := 0 :: !toks
         done
       with End_of_file -> ());
      if !next < 2 then
        invalid_arg
          (Printf.sprintf
             "Corpus.load_text: %s contains no words — a text corpus needs \
              at least one non-blank line"
             path);
      {
        tokens = Array.of_list (List.rev !toks);
        vocab = !next;
        words = Array.of_list (List.rev !words);
      })

let vocab t = t.vocab
let length t = Array.length t.tokens
let token t i = t.tokens.(i)
let vocab_words t = t.words

(* Time-major layout: row (t*B + b) holds stream position for sequence b at
   step t. Sequence b reads a distinct stripe of the stream. *)
let lm_batches t ~batch ~seq_len ~steps =
  let stripe = (length t - 1) / batch in
  if stripe < seq_len * steps then invalid_arg "Corpus.lm_batches: stream too short";
  List.init steps (fun s ->
    let base = s * seq_len in
    let at tt b = t.tokens.((b * stripe) + base + tt) in
    let tokens =
      Tensor.init [| seq_len * batch |] (fun idx ->
        let row = idx.(0) in
        float_of_int (at (row / batch) (row mod batch)))
    in
    let labels =
      Tensor.init [| seq_len * batch |] (fun idx ->
        let row = idx.(0) in
        float_of_int (at ((row / batch) + 1) (row mod batch)))
    in
    (tokens, labels))

let ids_of stream ~batch ~len ~step =
  let stripe = (length stream - 1) / batch in
  if stripe < 1 then invalid_arg "Corpus: stream too short";
  Tensor.init [| len * batch |] (fun idx ->
    let row = idx.(0) in
    let t = row / batch and b = row mod batch in
    let pos = (b * stripe) + (((step * len) + t) mod stripe) in
    float_of_int (token stream pos))

let pair_batches ~src ~tgt ~batch ~src_len ~tgt_len ~steps =
  List.init steps (fun s ->
    let src_ids = ids_of src ~batch ~len:src_len ~step:s in
    let tgt_in = ids_of tgt ~batch ~len:tgt_len ~step:s in
    let labels = ids_of tgt ~batch ~len:tgt_len ~step:(s + 1) in
    (src_ids, tgt_in, labels))

let spectrogram_batches ~seed ~batch ~time ~freq ~classes ~frames ~steps =
  let rng = Rng.create seed in
  List.init steps (fun _ ->
    let spec =
      Tensor.init [| batch; 1; time; freq |] (fun idx ->
        (* A noisy harmonic ridge so convolution has structure to find. *)
        let t = float_of_int idx.(2) and f = float_of_int idx.(3) in
        (0.5 *. sin ((t /. 7.0) +. (f /. 3.0))) +. (0.1 *. Rng.normal rng))
    in
    let align =
      Tensor.init [| frames * batch |] (fun _ -> float_of_int (Rng.int rng classes))
    in
    (spec, align))
