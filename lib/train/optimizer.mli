(** First-order optimizers over (parameter, gradient) tensor pairs.

    State is keyed by parameter node id and updated functionally on the host;
    the simulated-GPU footprint of the state is accounted analytically by
    [Echo_exec.Footprint]. *)

open Echo_tensor
open Echo_ir

type t

type spec =
  | Sgd of { lr : float }
  | Momentum of { lr : float; momentum : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

val create : spec -> t

val footprint_kind : t -> Echo_exec.Footprint.optimizer

val step : t -> params:(Node.t * Tensor.t) list -> grads:(Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** One update; returns the new parameter values in [params] order.
    [grads] must cover every parameter (match by node id).
    @raise Invalid_argument on a missing gradient. *)

val step_arrays :
  t -> param_nodes:Node.t array -> params:Tensor.t array -> grads:Tensor.t array
  -> Tensor.t array
(** Array variant used by the compiled training loop: [grads.(i)] is the
    gradient of [param_nodes.(i)] (positional pairing, no id lookup). Shares
    the update rule — and the optimizer state — with {!step}.
    @raise Invalid_argument naming the three lengths on a mismatch. *)

val clip_by_global_norm : max_norm:float -> (Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** Standard RNN-training gradient clipping. *)

val clip_by_global_norm_arrays : max_norm:float -> Tensor.t array -> Tensor.t array
(** {!clip_by_global_norm} over a positional gradient array. *)
