(** First-order optimizers over (parameter, gradient) tensor pairs.

    State is keyed by parameter node id and updated functionally on the host;
    the simulated-GPU footprint of the state is accounted analytically by
    [Echo_exec.Footprint]. *)

open Echo_tensor
open Echo_ir

type t

type spec =
  | Sgd of { lr : float }
  | Momentum of { lr : float; momentum : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

val create : spec -> t

val footprint_kind : t -> Echo_exec.Footprint.optimizer

val step : t -> params:(Node.t * Tensor.t) list -> grads:(Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** One update; returns the new parameter values in [params] order.
    [grads] must cover every parameter (match by node id).
    @raise Invalid_argument on a missing gradient. *)

val step_arrays :
  t -> param_nodes:Node.t array -> params:Tensor.t array -> grads:Tensor.t array
  -> Tensor.t array
(** Array variant used by the compiled training loop: [grads.(i)] is the
    gradient of [param_nodes.(i)] (positional pairing, no id lookup). Shares
    the update rule — and the optimizer state — with {!step}.
    @raise Invalid_argument naming the three lengths on a mismatch. *)

(** {1 Checkpointing} *)

type snapshot = {
  steps : int;  (** the optimizer's step counter (Adam bias correction) *)
  velocity : (int * Tensor.t) list;
      (** momentum / Adam first moment, keyed by parameter index *)
  second : (int * Tensor.t) list;  (** Adam second moment, same keying *)
}
(** Optimizer state detached from process-local node ids: slot tensors are
    deep-copied and keyed by position in [param_nodes], so a snapshot
    serialised by [Echo_runtime.Checkpoint] restores exactly in a fresh
    process whose rebuilt graph has different ids. *)

val snapshot : t -> param_nodes:Node.t array -> snapshot
(** Capture current state. Parameters with no slot yet (e.g. before the
    first step, or plain SGD) are simply absent from the lists. *)

val restore : t -> param_nodes:Node.t array -> snapshot -> unit
(** Replace [t]'s entire state with [snapshot], re-keying by [param_nodes].
    Subsequent updates are bit-identical to an optimizer that never paused.
    @raise Invalid_argument if a snapshot index is out of range. *)

val clip_by_global_norm : max_norm:float -> (Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** Standard RNN-training gradient clipping. *)

val clip_by_global_norm_arrays : max_norm:float -> Tensor.t array -> Tensor.t array
(** {!clip_by_global_norm} over a positional gradient array. *)
