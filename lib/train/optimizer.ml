open Echo_tensor
open Echo_ir

type spec =
  | Sgd of { lr : float }
  | Momentum of { lr : float; momentum : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

type t = {
  spec : spec;
  velocity : (int, Tensor.t) Hashtbl.t;  (* momentum / Adam first moment *)
  second : (int, Tensor.t) Hashtbl.t;  (* Adam second moment *)
  mutable steps : int;
}

let create spec = { spec; velocity = Hashtbl.create 16; second = Hashtbl.create 16; steps = 0 }

let footprint_kind t =
  match t.spec with
  | Sgd _ -> Echo_exec.Footprint.Sgd
  | Momentum _ -> Echo_exec.Footprint.Momentum
  | Adam _ -> Echo_exec.Footprint.Adam

let state tbl node shape =
  match Hashtbl.find_opt tbl (Node.id node) with
  | Some t -> t
  | None ->
    let t = Tensor.zeros shape in
    Hashtbl.replace tbl (Node.id node) t;
    t

(* The single update rule both entry points share: one parameter, one
   gradient, state already bumped to the current step count. *)
let update t node value g =
  match t.spec with
  | Sgd { lr } -> Tensor.sub value (Tensor.scale lr g)
  | Momentum { lr; momentum } ->
    let v = state t.velocity node (Tensor.shape value) in
    let v' = Tensor.add (Tensor.scale momentum v) g in
    Hashtbl.replace t.velocity (Node.id node) v';
    Tensor.sub value (Tensor.scale lr v')
  | Adam { lr; beta1; beta2; eps } ->
    let m = state t.velocity node (Tensor.shape value) in
    let v = state t.second node (Tensor.shape value) in
    let m' = Tensor.add (Tensor.scale beta1 m) (Tensor.scale (1.0 -. beta1) g) in
    let v' =
      Tensor.add (Tensor.scale beta2 v) (Tensor.scale (1.0 -. beta2) (Tensor.sq g))
    in
    Hashtbl.replace t.velocity (Node.id node) m';
    Hashtbl.replace t.second (Node.id node) v';
    let steps = float_of_int t.steps in
    let m_hat = Tensor.scale (1.0 /. (1.0 -. Float.pow beta1 steps)) m' in
    let v_hat = Tensor.scale (1.0 /. (1.0 -. Float.pow beta2 steps)) v' in
    Tensor.sub value
      (Tensor.div (Tensor.scale lr m_hat) (Tensor.add_scalar eps (Tensor.sqrt_ v_hat)))

let step t ~params ~grads =
  t.steps <- t.steps + 1;
  let grad_of node =
    match
      List.find_opt (fun (p, _) -> Node.id p = Node.id node) grads
    with
    | Some (_, g) -> g
    | None ->
      invalid_arg
        (Printf.sprintf "Optimizer.step: no gradient for %s" (Node.name node))
  in
  List.map (fun (node, value) -> (node, update t node value (grad_of node))) params

let step_arrays t ~param_nodes ~params ~grads =
  let n = Array.length param_nodes in
  if Array.length params <> n || Array.length grads <> n then
    invalid_arg
      (Printf.sprintf
         "Optimizer.step_arrays: %d parameter nodes, %d values, %d gradients"
         n (Array.length params) (Array.length grads));
  t.steps <- t.steps + 1;
  Array.mapi (fun i value -> update t param_nodes.(i) value grads.(i)) params

type snapshot = {
  steps : int;
  velocity : (int * Tensor.t) list;
  second : (int * Tensor.t) list;
}

(* State is keyed by node id in memory, but node ids are process-local:
   snapshots key by parameter *index* so a checkpoint written in one process
   restores correctly in another. *)
let snapshot (t : t) ~param_nodes =
  let collect tbl =
    let entries = ref [] in
    Array.iteri
      (fun i node ->
        match Hashtbl.find_opt tbl (Node.id node) with
        | Some tensor -> entries := (i, Tensor.copy tensor) :: !entries
        | None -> ())
      param_nodes;
    List.rev !entries
  in
  { steps = t.steps; velocity = collect t.velocity; second = collect t.second }

let restore (t : t) ~param_nodes snap =
  let n = Array.length param_nodes in
  let fill tbl entries =
    Hashtbl.reset tbl;
    List.iter
      (fun (i, tensor) ->
        if i < 0 || i >= n then
          invalid_arg
            (Printf.sprintf
               "Optimizer.restore: slot index %d out of range (%d parameters)"
               i n);
        Hashtbl.replace tbl (Node.id param_nodes.(i)) (Tensor.copy tensor))
      entries
  in
  t.steps <- snap.steps;
  fill t.velocity snap.velocity;
  fill t.second snap.second

let clip_by_global_norm ~max_norm grads =
  let total_sq =
    List.fold_left
      (fun acc (_, g) ->
        let n = Tensor.frobenius g in
        acc +. (n *. n))
      0.0 grads
  in
  let norm = sqrt total_sq in
  if norm <= max_norm then grads
  else begin
    let k = max_norm /. norm in
    List.map (fun (p, g) -> (p, Tensor.scale k g)) grads
  end

let clip_by_global_norm_arrays ~max_norm grads =
  let total_sq =
    Array.fold_left
      (fun acc g ->
        let n = Tensor.frobenius g in
        acc +. (n *. n))
      0.0 grads
  in
  let norm = sqrt total_sq in
  if norm <= max_norm then grads
  else begin
    let k = max_norm /. norm in
    Array.map (fun g -> Tensor.scale k g) grads
  end
