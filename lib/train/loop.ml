open Echo_tensor
open Echo_ir
module Executor = Echo_compiler.Executor

type batch = (Node.t * Tensor.t) list
type step_stats = { step : int; loss : float; grad_norm : float }
type result = { losses : float list; params : (Node.t * Tensor.t) list }

let global_norm grads =
  sqrt
    (Array.fold_left
       (fun acc g ->
         let n = Tensor.frobenius g in
         acc +. (n *. n))
       0.0 grads)

let train ~graph ~params ~optimizer ?clip_norm ?on_step ?runtime ~batches () =
  (* Compile once; every step is then a slot-indexed executor sweep — no
     per-step scheduling, no hashtable, no feed-list append. *)
  let exe =
    Echo_compiler.Pipeline.executor
      (Echo_compiler.Pipeline.compile_graph ?runtime graph)
  in
  let param_nodes = Array.of_list (List.map fst params) in
  let n_params = Array.length param_nodes in
  let param_values = ref (Array.of_list (List.map snd params)) in
  (* Parameters the loss does not depend on may be absent from the graph
     (their Zeros gradient node carries no reference to them); [feed]
     ignores those, as the interpreter's feed list did. *)
  let n_outputs = Array.length (Executor.outputs exe) in
  if n_outputs = 0 then invalid_arg "Loop.train: graph has no outputs";
  if n_outputs - 1 <> n_params then
    invalid_arg
      (Printf.sprintf
         "Loop.train: graph yields %d gradient output(s) for %d parameter(s)"
         (n_outputs - 1) n_params);
  let step = ref 0 in
  let losses = ref [] in
  List.iter
    (fun batch ->
      List.iter (fun (node, tensor) -> Executor.feed exe node tensor) batch;
      let values = !param_values in
      for i = 0 to n_params - 1 do
        Executor.feed exe param_nodes.(i) values.(i)
      done;
      Executor.run exe;
      let outs = Executor.outputs exe in
      let loss = Tensor.get1 outs.(0) 0 in
      let grads = Array.sub outs 1 n_params in
      let grads =
        match clip_norm with
        | None -> grads
        | Some max_norm -> Optimizer.clip_by_global_norm_arrays ~max_norm grads
      in
      (match on_step with
      | Some f -> f { step = !step; loss; grad_norm = global_norm grads }
      | None -> ());
      param_values :=
        Optimizer.step_arrays optimizer ~param_nodes ~params:values ~grads;
      losses := loss :: !losses;
      incr step)
    batches;
  {
    losses = List.rev !losses;
    params = List.combine (Array.to_list param_nodes) (Array.to_list !param_values);
  }

let perplexity loss = exp loss
