open Echo_tensor
open Echo_ir
module Executor = Echo_compiler.Executor
module Pipeline = Echo_compiler.Pipeline
module Fault = Echo_runtime.Fault
module Event = Echo_runtime.Event
module Checkpoint = Echo_runtime.Checkpoint

type batch = (Node.t * Tensor.t) list
type step_stats = { step : int; loss : float; grad_norm : float }
type result = { losses : float list; params : (Node.t * Tensor.t) list }
type checkpoint_spec = { path : string; every : int; resume : bool }

let global_norm grads =
  sqrt
    (Array.fold_left
       (fun acc g ->
         let n = Tensor.frobenius g in
         acc +. (n *. n))
       0.0 grads)

let missing_feed_error ~step names =
  invalid_arg
    (Printf.sprintf
       "Loop.train: step %d has no feed for %s — the batch must supply a \
        tensor for every placeholder the graph reads; check the batch \
        construction (and that ids/labels entries were not dropped)"
       step names)

(* Activation-site predicate: materialising, non-elementwise, not an input
   or compile-time constant. Shared between the fault-plan validation (over
   the original graph) and the arming path (over the executor's own graph,
   which under a plan-cache hit is a different build of the same
   structure). *)
let is_act_site n =
  (not (Fuse.elementwise n))
  &&
  match Node.op n with
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _
  | Op.DropoutMask _ ->
    false
  | _ -> true

(* Feed by node when the executor was compiled from this very build, by name
   when it was served from a plan cache — a cached executor's nodes belong
   to whichever build populated the entry, so ids differ but leaf names
   (part of the cache key's fingerprint) are guaranteed to resolve. Inputs
   absent from the graph are ignored either way, matching [Executor.feed]. *)
let feed_compat e node tensor =
  if Graph.mem (Executor.graph e) (Node.id node) then
    Executor.feed e node tensor
  else
    match Executor.input_slot_by_name e (Node.name node) with
    | Some s -> Executor.set_input e s tensor
    | None -> ()

let train ~graph ~params ~optimizer ?clip_norm ?on_step ?on_event ?budget_bytes
    ?(faults = Fault.of_env ()) ?checkpoint
    ?(device = Echo_gpusim.Device.titan_xp) ?(max_retries = 2) ?rng ?runtime
    ?fuse ?sanitize ?planner ?cache ~batches () =
  let emit = match on_event with Some f -> f | None -> fun _ -> () in
  let param_nodes = Array.of_list (List.map fst params) in
  let n_params = Array.length param_nodes in
  let param_values = ref (Array.of_list (List.map snd params)) in
  (* Activation bit-flip sites: the materialising forward nodes of the
     *original* graph, in deterministic schedule order. Elementwise nodes
     are excluded (a fusion plan may bury them in registers) and so are
     inputs and compile-time constants (their single-writer buffers are
     materialised once, so a flip would persist across steps) — what
     remains is guaranteed a fresh arena write every step under every
     planner, fusion setting and domain count, which is what makes a
     [flip@STEP=act:...] spec planner-independent. *)
  let act_sites =
    Array.of_list (List.filter is_act_site (Graph.forward_nodes graph))
  in
  (* Fail fast: a fault plan naming a site or parameter this run does not
     have is a malformed plan, reported before any compilation — not a
     crash mid-train. *)
  List.iter
    (fun { Fault.step; kind } ->
      match kind with
      | Fault.Flip_act { site; _ } when site >= Array.length act_sites ->
        raise
          (Fault.Bad_spec
             (Printf.sprintf
                "ECHO_FAULTS entry %S: activation site %d out of range — \
                 this graph has %d injection sites (0..%d)"
                (Fault.kind_to_string step kind)
                site
                (Array.length act_sites)
                (Array.length act_sites - 1)))
      | Fault.Flip_param _ when n_params = 0 ->
        raise
          (Fault.Bad_spec
             (Printf.sprintf
                "ECHO_FAULTS entry %S: this run has no parameters to flip"
                (Fault.kind_to_string step kind)))
      | _ -> ())
    (Fault.specs faults);
  (* A parameter flip indexes the flattened concatenation of all parameter
     tensors in declaration order (mod the total), persists across steps,
     and copies the hit tensor first so callers sharing the initial values
     (e.g. campaign golden runs) never observe the corruption. *)
  let apply_param_flip ~index ~bit =
    let values = !param_values in
    let total = Array.fold_left (fun acc v -> acc + Tensor.numel v) 0 values in
    let i = index mod total in
    let rec locate k off =
      let n = Tensor.numel values.(k) in
      if i < off + n then (k, i - off) else locate (k + 1) (off + n)
    in
    let k, local = locate 0 0 in
    let v = Tensor.copy values.(k) in
    Tensor.flip_bit v ~index:local ~bit;
    values.(k) <- v;
    Printf.sprintf "%s[%d] bit %d" (Node.name param_nodes.(k)) local bit
  in
  (* The device budget is mutable: a simulated OOM fault shrinks it mid-run
     and the loop re-plans the *original* graph through the escalation
     ladder, so recompute clones never stack on top of earlier rewrites. *)
  let budget = ref budget_bytes in
  (* A planner resolved through the registry rewrites the original graph
     once, up front; OOM recovery still re-plans the *original* graph so
     recompute clones never stack on top of the planner's rewrite. *)
  let current_graph =
    ref
      (match planner with
      | None -> graph
      | Some i -> fst (Echo_core.Pass.run_instance ~device i graph))
  in
  let compile_current () =
    Pipeline.executor
      (Pipeline.compile_graph ?budget_bytes:!budget ?runtime ?fuse ?sanitize
         ?cache !current_graph)
  in
  let replan ~step ~requested_bytes ~allowed =
    emit (Event.Budget_hit { step; requested_bytes; budget_bytes = allowed });
    match
      Echo_core.Autotune.fit_memory ~device ?fuse graph ~budget_bytes:allowed
    with
    | None ->
      raise
        (Executor.Budget_exceeded { requested_bytes; budget_bytes = allowed })
    | Some outcome ->
      current_graph := outcome.Echo_core.Autotune.graph;
      let e = compile_current () in
      emit
        (Event.Replan
           {
             step;
             policy = Echo_core.Autotune.label outcome;
             footprint_bytes = Executor.footprint_bytes e;
             budget_bytes = allowed;
           });
      e
  in
  let compile_recovering ~step () =
    try compile_current ()
    with Executor.Budget_exceeded { requested_bytes; budget_bytes = allowed } ->
      replan ~step ~requested_bytes ~allowed
  in
  (* Compile once; every step is then a slot-indexed executor sweep — no
     per-step scheduling, no hashtable, no feed-list append. Re-compilation
     only happens on recovery. *)
  let exe = ref (compile_recovering ~step:0 ()) in
  (* Parameters the loss does not depend on may be absent from the graph
     (their Zeros gradient node carries no reference to them); [feed]
     ignores those, as the interpreter's feed list did. *)
  let n_outputs = Array.length (Executor.outputs !exe) in
  if n_outputs = 0 then invalid_arg "Loop.train: graph has no outputs";
  if n_outputs - 1 <> n_params then
    invalid_arg
      (Printf.sprintf
         "Loop.train: graph yields %d gradient output(s) for %d parameter(s)"
         (n_outputs - 1) n_params);
  let step = ref 0 in
  let losses = ref [] in
  let write_checkpoint path =
    let snap = Optimizer.snapshot optimizer ~param_nodes in
    Checkpoint.save ~path
      {
        Checkpoint.step = !step;
        rng_state = Option.map Rng.state rng;
        opt_steps = snap.Optimizer.steps;
        losses = List.rev !losses;
        params =
          Array.to_list
            (Array.map2
               (fun node v -> (Node.name node, v))
               param_nodes !param_values);
        slots =
          [
            ("velocity", snap.Optimizer.velocity);
            ("second", snap.Optimizer.second);
          ];
      };
    emit (Event.Checkpoint_write { step = !step; path })
  in
  let batches =
    match checkpoint with
    | Some { path; resume = true; _ } when Sys.file_exists path ->
      let ckpt = Checkpoint.load path in
      let n_saved = List.length ckpt.Checkpoint.params in
      if n_saved <> n_params then
        invalid_arg
          (Printf.sprintf
             "Loop.train: checkpoint %s holds %d parameter(s), the model has \
              %d"
             path n_saved n_params);
      List.iteri
        (fun i (name, tensor) ->
          let node = param_nodes.(i) in
          if name <> Node.name node then
            invalid_arg
              (Printf.sprintf
                 "Loop.train: checkpoint %s parameter %d is %S, the model's \
                  is %S — wrong checkpoint for this model?"
                 path i name (Node.name node));
          !param_values.(i) <- tensor)
        ckpt.Checkpoint.params;
      Optimizer.restore optimizer ~param_nodes
        {
          Optimizer.steps = ckpt.Checkpoint.opt_steps;
          velocity =
            Option.value ~default:[]
              (List.assoc_opt "velocity" ckpt.Checkpoint.slots);
          second =
            Option.value ~default:[]
              (List.assoc_opt "second" ckpt.Checkpoint.slots);
        };
      (match (rng, ckpt.Checkpoint.rng_state) with
      | Some r, Some s -> Rng.set_state r s
      | _ -> ());
      losses := List.rev ckpt.Checkpoint.losses;
      step := ckpt.Checkpoint.step;
      emit (Event.Checkpoint_load { step = ckpt.Checkpoint.step; path });
      (* The caller regenerates the full deterministic batch stream; skip
         the prefix the interrupted run already consumed. *)
      let rec drop n l =
        if n <= 0 then l
        else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
      in
      drop ckpt.Checkpoint.step batches
    | _ -> batches
  in
  let run_batch batch =
    (* One execution attempt: consult the fault plan, feed, run, read. A
       retry re-enters here, so a second fault scheduled at the same step
       fires on the retry. *)
    let run_once () =
      let poisoned = ref false in
      (match Fault.take faults ~step:!step with
      | Some (Fault.Oom { budget_bytes = b }) ->
        budget := Some b;
        exe := compile_recovering ~step:!step ()
      | Some (Fault.Oom_shrink { fraction }) ->
        let b =
          max 1
            (int_of_float
               (fraction *. float_of_int (Executor.footprint_bytes !exe)))
        in
        budget := Some b;
        exe := compile_recovering ~step:!step ()
      | Some (Fault.Transient why) -> raise (Fault.Transient_failure why)
      | Some Fault.Nan_poison -> poisoned := true
      | Some (Fault.Flip_param { index; bit } as fault) ->
        let target = apply_param_flip ~index ~bit in
        emit (Event.Fault_injected { step = !step; fault; target })
      | Some (Fault.Flip_act { site; index; bit } as fault) ->
        let e = !exe in
        (* Resolve the site inside the executor's own graph: under a plan-
           cache hit the executor's nodes are a different build's, but the
           SITEth materialising non-elementwise forward node is the same
           operation in every build of the structure, so the flip lands at
           the same dataflow point. *)
        let node =
          List.nth
            (List.filter is_act_site (Graph.forward_nodes (Executor.graph e)))
            site
        in
        Executor.schedule_flip e ~slot:(Executor.slot e node) ~index ~bit;
        (* Describe the site by its dataflow identity (ordinal, op, shape)
           rather than [Node.name]: fresh builds of the same model assign
           fresh ids, but the SITEth materialising forward node is the same
           operation in every one of them — so this string is comparable
           across planners, fusion settings and independently built runs. *)
        let target =
          Printf.sprintf "act site %d: %s %s" site
            (Op.to_string (Node.op node))
            (Shape.to_string (Node.shape node))
        in
        emit (Event.Fault_injected { step = !step; fault; target })
      | None -> ());
      let e = !exe in
      List.iter (fun (node, tensor) -> feed_compat e node tensor) batch;
      let values = !param_values in
      for i = 0 to n_params - 1 do
        feed_compat e param_nodes.(i) values.(i)
      done;
      (try Executor.run e
       with Echo_exec.Interp.Missing_feed names ->
         missing_feed_error ~step:!step names);
      let outs = Executor.outputs e in
      let loss = if !poisoned then Float.nan else Tensor.get1 outs.(0) 0 in
      (loss, Array.sub outs 1 n_params)
    in
    let rec attempt retries =
      match run_once () with
      | outcome -> `Ran outcome
      | exception Fault.Transient_failure why ->
        if retries < max_retries then begin
          emit
            (Event.Retry
               {
                 step = !step;
                 attempt = retries + 1;
                 fault = Fault.Transient why;
               });
          attempt (retries + 1)
        end
        else begin
          emit
            (Event.Skip
               { step = !step; retries; fault = Fault.Transient why });
          `Skipped
        end
    in
    (match attempt 0 with
    | `Skipped -> () (* batch consumed; no loss recorded, no update *)
    | `Ran (loss, grads) ->
      let grads =
        match clip_norm with
        | None -> grads
        | Some max_norm -> Optimizer.clip_by_global_norm_arrays ~max_norm grads
      in
      let grad_norm = global_norm grads in
      if not (Float.is_finite loss && Float.is_finite grad_norm) then begin
        (* Keep the loss visible in the history, but protect the parameters
           from a poisoned update. *)
        emit (Event.Nan_guard { step = !step; loss; grad_norm });
        losses := loss :: !losses
      end
      else begin
        (match on_step with
        | Some f -> f { step = !step; loss; grad_norm }
        | None -> ());
        param_values :=
          Optimizer.step_arrays optimizer ~param_nodes ~params:!param_values
            ~grads;
        losses := loss :: !losses
      end);
    incr step;
    match checkpoint with
    | Some { path; every; _ } when every > 0 && !step mod every = 0 ->
      write_checkpoint path
    | _ -> ()
  in
  List.iter run_batch batches;
  {
    losses = List.rev !losses;
    params =
      List.combine (Array.to_list param_nodes) (Array.to_list !param_values);
  }

let perplexity loss = exp loss
