(** The fault-tolerant training loop: compiles the training graph once
    through [Echo_compiler.Pipeline] and drives the slot-based executor over
    it, one mini-batch per step — parameters live in arrays and are fed by
    slot, so the steady-state step does no scheduling and no tensor
    allocation inside the graph.

    The loop is graph-agnostic: give it any graph whose outputs are the loss
    followed by the gradients in parameter order — the stash-all baseline
    and every Echo/checkpoint rewrite of it train identically (and, being
    deterministic, bit-identically when the rewrite preserves semantics).

    {2 Recovery}

    The loop survives the failures a long training run actually meets:

    - {b OOM / budget violations.} [budget_bytes] (static, or shrunk mid-run
      by an injected {!Echo_runtime.Fault} OOM) is a hard arena ceiling.
      When compilation crosses it, the loop re-plans the {e original} graph
      through {!Echo_core.Autotune.fit_memory}'s escalation ladder
      (stash-all → Echo at rising overhead budgets → √n checkpointing →
      recompute-all), re-compiles once at the cheapest surviving policy, and
      continues the same run. Because every policy computes the same math,
      losses stay bit-identical to an unfaulted run at that policy. If even
      recompute-all does not fit, {!Echo_compiler.Executor.Budget_exceeded}
      escapes to the caller.
    - {b Transient failures.} A step that raises
      {!Echo_runtime.Fault.Transient_failure} is retried up to [max_retries]
      times (default 2), then skipped: the batch is consumed but no loss is
      recorded and no update applied.
    - {b Non-finite steps.} A NaN/Inf loss or gradient norm records the loss
      but skips the parameter update.
    - {b Bit flips.} A [flip@STEP=param:...] fault upsets one bit of one
      parameter scalar (flattened across all parameter tensors, mod total)
      at the start of the faulted step; the corruption persists and trains
      on. A [flip@STEP=act:SITE:...] fault arms
      {!Echo_compiler.Executor.schedule_flip} on activation site [SITE] —
      the [SITE]th materialising non-elementwise forward node of the
      original graph in schedule order — so the flip lands at the same
      dataflow point under every planner, fusion setting and domain count.
      Neither is a detected failure by itself: whether the NaN guard or
      nothing at all fires afterwards is exactly what the fault-injection
      campaigns ({!Echo_campaign.Campaign}) measure.

    Fault plans are validated before the initial compile: an activation
    site or parameter flip the graph cannot host raises
    {!Echo_runtime.Fault.Bad_spec} naming the offending entry up front,
    never mid-train.

    Every recovery action is surfaced through [on_event] with structured
    payloads ({!Echo_runtime.Event}). *)

open Echo_tensor
open Echo_ir

type batch = (Node.t * Tensor.t) list
(** Placeholder feeds for one step. *)

type step_stats = { step : int; loss : float; grad_norm : float }

type result = {
  losses : float list;
      (** per-step training loss, in step order (skipped steps absent) *)
  params : (Node.t * Tensor.t) list;  (** final parameter values *)
}

type checkpoint_spec = {
  path : string;  (** checkpoint file ({!Echo_runtime.Checkpoint} format) *)
  every : int;  (** write every [every] consumed batches ([<= 0] disables) *)
  resume : bool;
      (** when [path] exists, restore params, optimizer state, RNG state,
          loss history and step counter from it, skip the already-consumed
          prefix of [batches], and continue — reproducing the uninterrupted
          run bit-exactly *)
}

val train :
  graph:Graph.t ->
  params:(Node.t * Tensor.t) list ->
  optimizer:Optimizer.t ->
  ?clip_norm:float ->
  ?on_step:(step_stats -> unit) ->
  ?on_event:(Echo_runtime.Event.t -> unit) ->
  ?budget_bytes:int ->
  ?faults:Echo_runtime.Fault.t ->
  ?checkpoint:checkpoint_spec ->
  ?device:Echo_gpusim.Device.t ->
  ?max_retries:int ->
  ?rng:Rng.t ->
  ?runtime:Parallel.t ->
  ?fuse:bool ->
  ?sanitize:Echo_analysis.Sanitize.mode ->
  ?planner:Echo_core.Planner.instance ->
  ?cache:Echo_compiler.Pipeline.cache ->
  batches:batch list ->
  unit ->
  result
(** [graph]'s outputs must be [loss :: grads] aligned with [params]. Applies
    optional global-norm clipping before each update. [runtime] selects the
    multicore kernel runtime for the compiled executor (default: sized by
    [ECHO_DOMAINS]; training results are bit-identical either way). [fuse]
    enables the elementwise fusion stage (default: the [ECHO_FUSION]
    environment setting); losses are bit-identical fused or not.
    [sanitize] compiles the shadow-memory sanitizer into every executor
    the loop builds (default: the [ECHO_SANITIZE] environment setting);
    sanitized training is bit-identical to plain — the race suite asserts
    this at every domain count — and a step whose sanitizer finds errors
    raises {!Echo_analysis.Sanitize.Sanitize_failed}. [planner]
    is a recomputation planner resolved through the
    {!Echo_core.Planner} registry ([echoc --policy]); it rewrites the
    original graph once before the initial compile — every registered
    planner trains bit-identically to the stash-all baseline.

    [cache] is a content-addressed compile cache
    ({!Echo_compiler.Pipeline.cache}): the initial compile (and any
    recovery recompile) is served from it on a key hit, skipping the whole
    pipeline. Cached executors may come from a different build of the same
    structure, so the loop feeds them by input {e name} and re-derives
    activation flip sites from the executor's own graph; training results
    are bit-identical cached or cold — the serve test suite asserts this at
    every domain count.

    [budget_bytes] caps the executor arena (see {e Recovery} above);
    [device] is the simulated device the escalation ladder re-plans
    against. [faults] is a deterministic fault-injection plan; when omitted
    the loop builds one from the [ECHO_FAULTS] environment variable
    ({!Echo_runtime.Fault.of_env} — {!Echo_runtime.Fault.none} when unset),
    which is how the chaos test rule injects faults into the whole train
    suite. [rng] is the data-pipeline generator whose state is
    checkpointed and restored, so resumed runs draw the same stream.

    @raise Invalid_argument on output/parameter arity mismatch, a missing
    placeholder feed (named, with a hint), or a checkpoint that does not
    match the model.
    @raise Echo_compiler.Executor.Budget_exceeded when no policy on the
    escalation ladder fits the budget.
    @raise Echo_runtime.Checkpoint.Corrupt when resuming from a damaged
    checkpoint file. *)

val perplexity : float -> float
(** [exp loss], the language-modelling quality metric. *)
