(** The training loop: compiles the training graph once through
    [Echo_compiler.Pipeline] and drives the slot-based executor over it,
    one mini-batch per step — parameters live in arrays and are fed by
    slot, so the steady-state step does no scheduling and no tensor
    allocation inside the graph.

    The loop is graph-agnostic: give it any graph whose outputs are the loss
    followed by the gradients in parameter order — the stash-all baseline
    and every Echo/checkpoint rewrite of it train identically (and, being
    deterministic, bit-identically when the rewrite preserves semantics). *)

open Echo_tensor
open Echo_ir

type batch = (Node.t * Tensor.t) list
(** Placeholder feeds for one step. *)

type step_stats = { step : int; loss : float; grad_norm : float }

type result = {
  losses : float list;  (** per-step training loss, in step order *)
  params : (Node.t * Tensor.t) list;  (** final parameter values *)
}

val train :
  graph:Graph.t ->
  params:(Node.t * Tensor.t) list ->
  optimizer:Optimizer.t ->
  ?clip_norm:float ->
  ?on_step:(step_stats -> unit) ->
  ?runtime:Parallel.t ->
  batches:batch list ->
  unit ->
  result
(** [graph]'s outputs must be [loss :: grads] aligned with [params]. Applies
    optional global-norm clipping before each update. [runtime] selects the
    multicore kernel runtime for the compiled executor (default: sized by
    [ECHO_DOMAINS]; training results are bit-identical either way). *)

val perplexity : float -> float
(** [exp loss], the language-modelling quality metric. *)
