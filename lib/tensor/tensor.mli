(** Dense row-major float tensors.

    The host representation is [float array] (double precision, which keeps
    numerical gradient checking accurate); the simulated GPU footprint model
    in [echo_exec] accounts tensors at 4 bytes/element, i.e. fp32 on device.

    All operations allocate fresh result tensors; nothing aliases unless the
    documentation says so. Shape errors raise [Invalid_argument]. *)

type t

(** {1 Construction} *)

val create : Shape.t -> float array -> t
(** @raise Invalid_argument if the data length differs from [Shape.numel]. *)

val zeros : Shape.t -> t
val ones : Shape.t -> t
val full : Shape.t -> float -> t
val scalar : float -> t

val init : Shape.t -> (int array -> float) -> t
(** [init s f] fills by multi-index. *)

val of_list1 : float list -> t
(** 1-D tensor from a list. *)

val of_list2 : float list list -> t
(** 2-D tensor from rows. @raise Invalid_argument on ragged input. *)

val uniform : Rng.t -> Shape.t -> lo:float -> hi:float -> t
val normal : Rng.t -> Shape.t -> mean:float -> std:float -> t

val xavier : Rng.t -> Shape.t -> t
(** Glorot-uniform initialisation for a 2-D weight [ [|fan_out; fan_in|] ]. *)

(** {1 Access} *)

val shape : t -> Shape.t
val numel : t -> int
val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get1 : t -> int -> float
(** Linear (row-major) element access. *)

val set1 : t -> int -> float -> unit
val to_array : t -> float array
(** A fresh copy of the underlying buffer. *)

val copy : t -> t

val flip_bit : t -> index:int -> bit:int -> unit
(** Flip one bit of the IEEE-754 representation of element
    [index mod numel t], in place — the single-event-upset primitive the
    fault-injection campaigns build on. [bit] 0 is the lowest mantissa bit,
    63 the sign. Deterministic: the same (index, bit) on the same tensor
    always produces the same value.
    @raise Invalid_argument on an empty tensor, a negative [index], or a
    [bit] outside 0..63. *)

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** @raise Invalid_argument on shape mismatch. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val sigmoid : t -> t
val tanh_ : t -> t
val relu : t -> t
val exp_ : t -> t
val log_ : t -> t
val sqrt_ : t -> t
val sq : t -> t
val pow_const : float -> t -> t
val recip : t -> t
val sign : t -> t

(** {1 Fused elementwise chains}

    A chain folds one scalar accumulator per output element: seeded from
    element [i] of operand 0, transformed by each step in order (a zip step
    additionally reads element [i] of the operand it indexes), and stored
    once at the end — interior values stay in registers. The constructors
    below reuse the exact scalar kernels of the corresponding {!Into}
    operations, so a fused chain is bit-identical to running its members
    unfused. *)

type fused_step

val f_neg : fused_step
val f_scale : float -> fused_step
val f_add_scalar : float -> fused_step
val f_pow_const : float -> fused_step
val f_sigmoid : fused_step
val f_tanh : fused_step
val f_relu : fused_step
val f_exp : fused_step
val f_log : fused_step
val f_sqrt : fused_step
val f_sq : fused_step
val f_recip : fused_step
val f_sign : fused_step

val f_add : int -> fused_step
(** [f_add j]: accumulator [+.] element [i] of operand [j]. Likewise below;
    operand indices refer to the array passed to {!Into.fused}. *)

val f_sub : int -> fused_step
val f_mul : int -> fused_step
val f_div : int -> fused_step

val f_scale_by : int -> fused_step
(** Multiply by the scalar tensor at operand [j] (its element 0, read once
    per kernel launch, exactly like {!Into.scale_by}). *)

(** {1 Linear algebra} *)

val matmul : ?trans_a:bool -> ?trans_b:bool -> t -> t -> t
(** 2-D GEMM; transposes are logical (no materialisation).
    @raise Invalid_argument if operands are not 2-D or inner dims differ. *)

val add_bias : t -> t -> t
(** [add_bias m b] adds 1-D [b] to every row of 2-D [m]. *)

val outer : t -> t -> t
(** Outer product of two 1-D tensors. *)

(** {1 Shape manipulation} *)

val reshape : t -> Shape.t -> t
(** Shares no storage with the argument. @raise Invalid_argument if element
    counts differ. *)

val transpose2d : t -> t
val slice : axis:int -> lo:int -> hi:int -> t -> t
val concat : axis:int -> t list -> t
(** @raise Invalid_argument on an empty list or mismatched off-axis dims. *)

val pad_slice : axis:int -> lo:int -> full:int -> t -> t
(** Inverse of {!slice} for gradients: embed [t] into a zero tensor whose
    [axis] dimension is [full], starting at offset [lo]. *)

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_elt : t -> float
val reduce_sum : axis:int -> keepdims:bool -> t -> t
val reduce_mean : axis:int -> keepdims:bool -> t -> t
val broadcast_axis : axis:int -> n:int -> t -> t
(** Repeat a size-1 axis [n] times (gradient of [reduce_* ~keepdims:true]).
    @raise Invalid_argument if [dim t axis <> 1]. *)

val frobenius : t -> float

(** {1 Neural-network kernels} *)

val softmax : t -> t
(** Softmax over the last axis, numerically stabilised. *)

val log_softmax : t -> t

val cross_entropy : logits:t -> labels:t -> float
(** Mean negative log-likelihood. [logits] is [B x V]; [labels] is a length-B
    tensor of class indices stored as floats. *)

val cross_entropy_grad : logits:t -> labels:t -> t
(** d(mean NLL)/d(logits) = (softmax - onehot) / B. *)

val dropout_mask : seed:int -> p:float -> Shape.t -> t
(** Inverted-dropout mask: each element is [0] with probability [p], else
    [1/(1-p)]. Deterministic in [seed]. *)

val embedding : table:t -> ids:t -> t
(** [table] is [V x D]; [ids] is length-B; result is [B x D]. *)

val embedding_grad : table_shape:Shape.t -> ids:t -> grad_out:t -> t
(** Scatter-add of [grad_out] rows into a zero [V x D] table. *)

val conv2d : stride:int -> pad:int -> input:t -> kernel:t -> t
(** [input]: [B x Cin x H x W]; [kernel]: [Cout x Cin x Kh x Kw]. Naive
    direct convolution. *)

val conv2d_grad_input : stride:int -> pad:int -> input_shape:Shape.t -> kernel:t -> grad_out:t -> t
val conv2d_grad_kernel : stride:int -> pad:int -> input:t -> kernel_shape:Shape.t -> grad_out:t -> t

(** {1 Destination-passing kernels}

    Allocation-free variants used by the compiled executor
    ([Echo_compiler.Executor]). Each writes its result into [~dst], a
    preallocated tensor of exactly the result shape, and computes values
    bit-identical to the allocating operation of the same name: both share
    the same scalar kernels and the same accumulation order. Unless noted
    otherwise, [dst] may alias an input of the same element count — every
    kernel reads each cell before overwriting it — which is what the
    executor's in-place buffer transfer relies on.

    Heavy kernels take a [?runtime] ({!Parallel.t}, default
    {!Parallel.sequential}) and partition their output — rows for matrix
    kernels, the flat index range for elementwise ones — across the
    runtime's domains, passing {!Parallel.parallel_for} a work hint
    (scalar ops per index) so small kernels stay on the calling domain.
    Each output element is computed by exactly one domain in the
    sequential per-element accumulation order, so results stay
    bit-identical at every domain count and under the runtime's
    deterministic work-stealing schedule. The runtime handle also carries
    the matmul blocking threshold ({!Parallel.blocking_threshold}) — there
    is no process-global kernel configuration. *)
module Into : sig
  val fill : dst:t -> float -> unit

  val blit : src:t -> dst:t -> unit
  (** Raw element copy; shapes may differ as long as element counts match
      (this is the compiled [Reshape]). *)

  val neg : ?runtime:Parallel.t -> t -> dst:t -> unit
  val scale : ?runtime:Parallel.t -> float -> t -> dst:t -> unit
  val add_scalar : ?runtime:Parallel.t -> float -> t -> dst:t -> unit
  val pow_const : ?runtime:Parallel.t -> float -> t -> dst:t -> unit
  val sigmoid : ?runtime:Parallel.t -> t -> dst:t -> unit
  val tanh_ : ?runtime:Parallel.t -> t -> dst:t -> unit
  val relu : ?runtime:Parallel.t -> t -> dst:t -> unit
  val exp_ : ?runtime:Parallel.t -> t -> dst:t -> unit
  val log_ : ?runtime:Parallel.t -> t -> dst:t -> unit
  val sqrt_ : ?runtime:Parallel.t -> t -> dst:t -> unit
  val sq : ?runtime:Parallel.t -> t -> dst:t -> unit
  val recip : ?runtime:Parallel.t -> t -> dst:t -> unit
  val sign : ?runtime:Parallel.t -> t -> dst:t -> unit
  val add : ?runtime:Parallel.t -> t -> t -> dst:t -> unit
  val sub : ?runtime:Parallel.t -> t -> t -> dst:t -> unit
  val mul : ?runtime:Parallel.t -> t -> t -> dst:t -> unit
  val div : ?runtime:Parallel.t -> t -> t -> dst:t -> unit

  val scale_by : ?runtime:Parallel.t -> t -> t -> dst:t -> unit
  (** [scale_by x s ~dst] scales [x] by the scalar tensor [s]. *)

  val fused : ?runtime:Parallel.t -> fused_step array -> t array -> dst:t -> unit
  (** [fused steps operands ~dst] evaluates a fused elementwise chain in one
      pass: per element the accumulator is seeded from [operands.(0)], each
      step applies in order, and only the final value is written to [dst].
      [dst] may alias any operand (element [i] of every operand is read
      before element [i] of [dst] is written). Partitioned with the same
      flat-index chunking as the unfused elementwise kernels, so results are
      bit-identical at every domain count and to the unfused chain.
      @raise Invalid_argument if a zip operand's shape differs from the
      seed's. *)

  val matmul :
    ?runtime:Parallel.t -> ?trans_a:bool -> ?trans_b:bool -> t -> t -> dst:t -> unit
  (** [dst] must not alias an operand (a GEMM cannot run in place).

      Products of at least [Parallel.blocking_threshold runtime]
      multiply-adds take a cache-blocked path: a logically transposed
      operand is packed into a contiguous scratch once per call and the
      inner loops are register-blocked over the output rows. The
      accumulation order per output element (ascending inner index,
      skipping zero [a] elements) is the same on both paths, so the switch
      never changes results. The threshold rides on the runtime handle
      ([Parallel.create ~blocking_threshold] /
      [Parallel.with_config]), so concurrent executors with different
      settings cannot race. *)

  val add_bias : ?runtime:Parallel.t -> t -> t -> dst:t -> unit
  val slice : axis:int -> lo:int -> hi:int -> t -> dst:t -> unit
  val pad_slice : axis:int -> lo:int -> full:int -> t -> dst:t -> unit
  val concat : axis:int -> t list -> dst:t -> unit

  val transpose2d : ?runtime:Parallel.t -> t -> dst:t -> unit
  (** [dst] must not alias the input. *)

  val reduce_sum : ?runtime:Parallel.t -> axis:int -> keepdims:bool -> t -> dst:t -> unit
  val reduce_mean : ?runtime:Parallel.t -> axis:int -> keepdims:bool -> t -> dst:t -> unit
  val broadcast_axis : axis:int -> n:int -> t -> dst:t -> unit
  val softmax : ?runtime:Parallel.t -> t -> dst:t -> unit
  val log_softmax : ?runtime:Parallel.t -> t -> dst:t -> unit

  val cross_entropy : logits:t -> labels:t -> dst:t -> unit
  (** [dst] must be a scalar tensor; receives the mean NLL. *)

  val cross_entropy_grad :
    ?runtime:Parallel.t -> logits:t -> labels:t -> dst:t -> unit -> unit

  val embedding : ?runtime:Parallel.t -> table:t -> ids:t -> dst:t -> unit -> unit

  val embedding_grad :
    ?runtime:Parallel.t -> ids:t -> grad_out:t -> dst:t -> unit -> unit
  (** The table shape is taken from [dst]. Parallelised over destination
      table rows (ids repeat), never over input rows. The trailing [unit]
      anchors the optional [?runtime] (no positional operand exists). *)
end

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Exact (bitwise float) equality of shape and contents. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Max-absolute-difference comparison; default [tol = 1e-9]. *)

val max_abs_diff : t -> t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
