(** Deterministic multicore kernel runtime.

    A runtime is either fully sequential or a persistent pool of OCaml 5
    [Domain]s blocking on a condition variable; {!parallel_for} fans a loop
    body out over disjoint contiguous index ranges and joins before
    returning, so kernels keep their sequential memory discipline (no
    allocation, no retained closures) across calls.

    {b Determinism contract.} [parallel_for] covers [0, n) with disjoint
    chunks, each executed by exactly one domain. A kernel that computes
    every output element entirely within one chunk, in the same per-element
    accumulation order as its sequential loop, therefore produces results
    {e bit-identical} to the sequential kernel at every domain count — the
    property the compiler's differential suite enforces (see
    {!Tensor.Into}). *)

type t
(** A kernel runtime. *)

val sequential : t
(** Runs every {!parallel_for} inline on the calling domain. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains - 1] worker domains; the
    calling domain is the remaining participant of every [parallel_for].
    [domains = 1] spawns nothing and behaves like {!sequential}. When
    [domains] is omitted, {!env_domains} decides. Every pool is registered
    with [at_exit] for shutdown, so leaking one cannot hang process exit.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Total participating domains ([1] for {!sequential}). *)

val shutdown : t -> unit
(** Stop and join the pool's workers (idempotent, no-op on a sequential
    runtime). A shut-down pool must not be used again. *)

val env_domains : unit -> int
(** The domain count selected by the [ECHO_DOMAINS] environment variable
    ([1] = fully sequential); defaults to [Domain.recommended_domain_count]
    when the variable is unset or unparsable. *)

val default : unit -> t
(** The process-wide runtime, created on first use with {!env_domains}
    domains. This is what [Executor.compile] uses when no [?runtime] is
    passed. *)

val set_default_domains : int -> t
(** Replace the process-wide runtime with a fresh one of the given size
    (shutting the previous pool down) and return it. For drivers and
    benchmarks that override [ECHO_DOMAINS] programmatically. *)

val parallel_for : t -> ?grain:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~grain ~n body] covers [0, n) with disjoint
    [body lo hi] chunk calls. At most one chunk per domain, and no more
    than [n / grain] chunks (default [grain = 1]), so workloads smaller
    than one grain run inline on the calling domain with no
    synchronisation. [body] must only write locations owned by its own
    chunk, and must not recursively invoke [parallel_for] on the same
    runtime. An exception raised by any chunk is re-raised on the caller
    after every chunk has finished. *)
