(** Deterministic multicore kernel runtime.

    A runtime is either fully sequential or a persistent pool of OCaml 5
    [Domain]s blocking on a condition variable; {!parallel_for} fans a loop
    body out over disjoint contiguous index ranges and joins before
    returning, so kernels keep their sequential memory discipline (no
    allocation, no retained closures) across calls.

    {b Determinism contract.} [parallel_for] covers [0, n) with disjoint
    chunks; chunk [c] always spans [(c*n/parts, (c+1)*n/parts)], a pure
    function of [(n, parts)], and [parts] is itself a pure function of the
    loop size, the work hint, and the handle's configuration. Domains
    claim chunks dynamically from a shared atomic counter (work stealing),
    but since every output element belongs to exactly one chunk and each
    chunk runs the same per-element accumulation order as the sequential
    loop, results are {e bit-identical} to the sequential kernel at every
    domain count and across repeated runs — the property the compiler's
    differential suite enforces (see {!Tensor.Into}).

    {b Configuration.} Every handle carries its execution parameters —
    matmul blocking threshold, fan-out work gate, steal granularity,
    oversubscription — so two executors compiled with different settings
    can run concurrently in one process without racing on global state. *)

type t
(** A kernel runtime handle: a sequential or pooled execution engine plus
    its execution configuration. *)

val sequential : t
(** Runs every {!parallel_for} inline on the calling domain, with the
    default configuration. *)

val create :
  ?domains:int ->
  ?oversubscribe:bool ->
  ?blocking_threshold:int ->
  ?min_fanout_work:int ->
  ?chunks_per_domain:int ->
  unit ->
  t
(** [create ~domains ()] spawns a pool of [domains - 1] worker domains; the
    calling domain is the remaining participant of every [parallel_for].
    [domains = 1] spawns nothing and behaves like {!sequential}. When
    [domains] is omitted, {!env_domains} decides. Every pool is registered
    with [at_exit] for shutdown, so leaking one cannot hang process exit.

    - [oversubscribe] (default [false]): when [false], the pool is sized
      at [min domains (hardware_parallelism ())] and no worker beyond
      that is ever spawned — oversubscribing cores is a large
      constant-factor loss, and even a {e parked} surplus domain taxes
      every minor collection in the process (a stop-the-world handshake
      across all live domains). [true] spawns the full requested pool
      regardless (used by the differential tests to force the pool path
      on small machines).
    - [blocking_threshold] (default [32768]): minimum [m*n*k] at which
      [Tensor.Into.matmul] switches from the naive loops to the
      cache-blocked kernel.
    - [min_fanout_work] (default [2^18]): minimum total scalar work
      ([n * work]) below which [parallel_for] runs inline — the fan-out
      wakeup/join latency is tens of microseconds, so small kernels are
      strictly faster sequential.
    - [chunks_per_domain] (default [4]): target number of stealable chunks
      per fanned-out domain, bounding straggler imbalance on ragged rows.

    @raise Invalid_argument if [domains < 1], [chunks_per_domain < 1] or
    [min_fanout_work < 0]. *)

val with_config :
  ?oversubscribe:bool ->
  ?blocking_threshold:int ->
  ?min_fanout_work:int ->
  ?chunks_per_domain:int ->
  t ->
  t
(** A new handle sharing the same workers (or sequential engine) with some
    configuration fields replaced. Cheap; this is how one process holds
    executors compiled under different blocking thresholds over a single
    pool. *)

val domains : t -> int
(** Total participating domains ([1] for {!sequential}). *)

val effective_fanout : t -> int
(** The number of domains a kernel may actually spread across:
    [min (domains t) (hardware_parallelism ())], or [domains t] when the
    handle oversubscribes. [1] for {!sequential}. *)

val hardware_parallelism : unit -> int
(** [Domain.recommended_domain_count] observed once at startup, clamped to
    at least 1. *)

val blocking_threshold : t -> int
(** The handle's matmul blocking threshold. *)

val min_fanout_work : t -> int
(** The handle's fan-out work gate. *)

val chunks_per_domain : t -> int
(** The handle's target number of stealable chunks per fanned-out domain.
    Together with {!effective_fanout} and {!min_fanout_work}, this fully
    determines the partition [parallel_for] uses for a given [(n, work)] —
    what the static race checker re-derives. *)

val oversubscribed : t -> bool
(** Whether the handle may spread across more domains than the hardware
    has ({!effective_fanout} already accounts for this). *)

val shutdown : t -> unit
(** Stop and join the pool's workers (idempotent, no-op on a sequential
    runtime). A shut-down pool must not be used again. *)

val env_domains : unit -> int
(** The domain count selected by the [ECHO_DOMAINS] environment variable
    ([1] = fully sequential); defaults to [Domain.recommended_domain_count]
    when the variable is unset or empty.
    @raise Invalid_argument when the variable is set to anything but a
    positive integer — a misspelt setting must not silently fall back. *)

val default : unit -> t
(** The process-wide runtime, created on first use with {!env_domains}
    domains. This is what [Executor.compile] uses when no [?runtime] is
    passed. *)

val set_default_domains : int -> t
(** Replace the process-wide runtime with a fresh one of the given size
    (shutting the previous pool down) and return it. For drivers and
    benchmarks that override [ECHO_DOMAINS] programmatically. *)

val parallel_for : t -> ?work:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~work ~n body] covers [0, n) with disjoint
    [body lo hi] chunk calls. [work] (default [1]) estimates the scalar
    operations per index; the loop fans out only when [n * work] reaches
    the handle's [min_fanout_work] gate and the effective fan-out exceeds
    one, and then splits into at most [effective_fanout t *
    chunks_per_domain] chunks (never more than [n], never finer than a
    quarter-gate of work each) that the participating domains claim
    dynamically. [body] must only write locations owned by its own chunk,
    and must not recursively invoke [parallel_for] on the same runtime.
    Concurrent [parallel_for] calls on the same pool from different
    domains are not allowed (kernel calls are barriers; executors
    sequence them). An exception raised by any chunk is re-raised on the
    caller after every chunk has finished. *)
