(* SplitMix64: tiny, fast, and good enough statistical quality for
   initialization and dropout masks. State advances by the golden-gamma
   constant; outputs are a bijective mix of the state. *)

type t = { mutable state : int64; mutable cached_normal : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; cached_normal = None }

let copy t = { state = t.state; cached_normal = t.cached_normal }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t; cached_normal = None }

let state t = t.state

let set_state t s =
  t.state <- s;
  (* A cached Box-Muller sample belongs to the stream position it was drawn
     at; keeping it across a state reset would desynchronise [normal]. *)
  t.cached_normal <- None

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits: OCaml's native int is 63-bit signed, so a 63-bit value
     would wrap negative. *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let normal t =
  match t.cached_normal with
  | Some v ->
    t.cached_normal <- None;
    v
  | None ->
    let rec nonzero () =
      let u = float t in
      if u > 0.0 then u else nonzero ()
    in
    let u1 = nonzero () and u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached_normal <- Some (r *. sin theta);
    r *. cos theta

(* FNV-1a over the bytes of a string, folded to a non-negative OCaml int.
   [Hashtbl.hash] is only specified per stdlib version, so anything that
   must be stable across processes and toolchains (model seeds derived from
   layer names, content-addressed keys) hashes through this instead. *)
let fnv1a s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)
