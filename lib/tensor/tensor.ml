type t = { shape : Shape.t; data : float array }

(* {1 Construction} *)

let create shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.create: %d elements for shape %s"
         (Array.length data) (Shape.to_string shape));
  { shape; data }

let full shape v = create shape (Array.make (Shape.numel shape) v)
let zeros shape = full shape 0.0
let ones shape = full shape 1.0
let scalar v = create Shape.scalar [| v |]

let init shape f =
  let n = Shape.numel shape in
  let data = Array.init n (fun off -> f (Shape.unravel shape off)) in
  create shape data

let of_list1 xs = create [| List.length xs |] (Array.of_list xs)

let of_list2 rows =
  match rows with
  | [] -> invalid_arg "Tensor.of_list2: empty"
  | first :: _ ->
    let m = List.length rows and n = List.length first in
    List.iter
      (fun r -> if List.length r <> n then invalid_arg "Tensor.of_list2: ragged rows")
      rows;
    create [| m; n |] (Array.of_list (List.concat rows))

let uniform rng shape ~lo ~hi =
  create shape (Array.init (Shape.numel shape) (fun _ -> Rng.uniform rng ~lo ~hi))

let normal rng shape ~mean ~std =
  create shape (Array.init (Shape.numel shape) (fun _ -> mean +. (std *. Rng.normal rng)))

let xavier rng shape =
  if Shape.rank shape <> 2 then invalid_arg "Tensor.xavier: expects a 2-D shape";
  let fan_out = shape.(0) and fan_in = shape.(1) in
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  uniform rng shape ~lo:(-.bound) ~hi:bound

(* {1 Access} *)

let shape t = t.shape
let numel t = Array.length t.data
let get t idx = t.data.(Shape.ravel t.shape idx)
let set t idx v = t.data.(Shape.ravel t.shape idx) <- v
let get1 t i = t.data.(i)
let set1 t i v = t.data.(i) <- v
let to_array t = Array.copy t.data
let copy t = { shape = t.shape; data = Array.copy t.data }

let flip_bit t ~index ~bit =
  if bit < 0 || bit > 63 then
    invalid_arg (Printf.sprintf "Tensor.flip_bit: bit %d outside 0..63" bit);
  let n = Array.length t.data in
  if n = 0 then invalid_arg "Tensor.flip_bit: empty tensor";
  if index < 0 then invalid_arg "Tensor.flip_bit: negative index";
  let i = index mod n in
  t.data.(i) <-
    Int64.float_of_bits
      (Int64.logxor (Int64.bits_of_float t.data.(i)) (Int64.shift_left 1L bit))

(* {1 Elementwise} *)

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg
      (Printf.sprintf "Tensor.map2: shape mismatch %s vs %s"
         (Shape.to_string a.shape) (Shape.to_string b.shape));
  { shape = a.shape; data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

(* Scalar kernels are named so the allocating operations and the
   destination-passing [Into] variants share the exact same arithmetic —
   bit-identity between the two code paths holds by construction. *)
let k_neg x = -.x
let k_sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let k_relu x = if x > 0.0 then x else 0.0
let k_sq x = x *. x
let k_recip x = 1.0 /. x
let k_sign x = if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0

(* The allocating elementwise wrappers ([add], [sigmoid], ...) are defined
   after [Into]: each allocates [dst] and delegates to the corresponding
   [Into] kernel, so there is exactly one loop body per op. *)

(* {1 Fused elementwise chains}

   A fused chain folds one scalar accumulator per output element through a
   sequence of steps: the accumulator is seeded from element [i] of
   [operands.(0)], each step transforms it (optionally reading element [i]
   of another operand), and only the final value is stored. Interior values
   of the chain live in registers — they are never materialized. The steps
   are built from the {e same named scalar kernels} the [Into] kernels use,
   so a fused chain is bit-identical to running its members one at a
   time. *)

(* A closed opcode variant rather than a chain of closures: the kernel's
   inner loop dispatches each step with a match the compiler turns into a
   jump table, and every op body (the same named scalar kernels the [Into]
   kernels use) is applied directly — composed closures would cost two
   indirect calls and a float boxing per step per element, losing to the
   separate unfused passes they replace. Binary steps carry the index of
   the operand they read. *)
type fused_step =
  | F_neg
  | F_scale of float
  | F_add_scalar of float
  | F_pow_const of float
  | F_sigmoid
  | F_tanh
  | F_relu
  | F_exp
  | F_log
  | F_sqrt
  | F_sq
  | F_recip
  | F_sign
  | F_add of int
  | F_sub of int
  | F_mul of int
  | F_div of int
  | F_scale_by of int

let f_neg = F_neg
let f_scale k = F_scale k
let f_add_scalar k = F_add_scalar k
let f_pow_const p = F_pow_const p
let f_sigmoid = F_sigmoid
let f_tanh = F_tanh
let f_relu = F_relu
let f_exp = F_exp
let f_log = F_log
let f_sqrt = F_sqrt
let f_sq = F_sq
let f_recip = F_recip
let f_sign = F_sign
let f_add j = F_add j
let f_sub j = F_sub j
let f_mul j = F_mul j
let f_div j = F_div j
let f_scale_by j = F_scale_by j

let fused_step_operand = function
  | F_add j | F_sub j | F_mul j | F_div j | F_scale_by j -> Some j
  | F_neg | F_scale _ | F_add_scalar _ | F_pow_const _ | F_sigmoid | F_tanh
  | F_relu | F_exp | F_log | F_sqrt | F_sq | F_recip | F_sign ->
    None

(* Scalar work estimate per element, in units of one float op. Matches the
   transcendental weight of the simulator's cost model
   ([Echo_gpusim.Costmodel.transcendental]); the runtime's fan-out gate and
   the host-side fusion cost model both consume it, so the gate the
   executor applies and the gate the planner predicts are the same. *)
let fused_step_work = function
  | F_pow_const _ | F_sigmoid | F_tanh | F_exp | F_log | F_sqrt -> 8
  | F_neg | F_scale _ | F_add_scalar _ | F_relu | F_sq | F_recip | F_sign
  | F_add _ | F_sub _ | F_mul _ | F_div _ | F_scale_by _ ->
    1

(* {1 Linear algebra} *)

(* [matmul] is defined after [Into]: there is exactly one matmul
   implementation ([Into.matmul]); the allocating version allocates [dst]
   and delegates, so the two code paths cannot diverge. *)

let add_bias m b =
  if Shape.rank m.shape <> 2 || Shape.rank b.shape <> 1 then
    invalid_arg "Tensor.add_bias: expects 2-D matrix and 1-D bias";
  let rows = m.shape.(0) and cols = m.shape.(1) in
  if b.shape.(0) <> cols then invalid_arg "Tensor.add_bias: bias length mismatch";
  let out = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.((i * cols) + j) <- m.data.((i * cols) + j) +. b.data.(j)
    done
  done;
  create m.shape out

let outer a b =
  if Shape.rank a.shape <> 1 || Shape.rank b.shape <> 1 then
    invalid_arg "Tensor.outer: expects 1-D operands";
  let m = a.shape.(0) and n = b.shape.(0) in
  let ad = a.data and bd = b.data in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    let ai = Array.unsafe_get ad i in
    let row = i * n in
    for j = 0 to n - 1 do
      Array.unsafe_set out (row + j) (ai *. Array.unsafe_get bd j)
    done
  done;
  create [| m; n |] out

(* {1 Shape manipulation} *)

let reshape t shape =
  if Shape.numel shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %s -> %s" (Shape.to_string t.shape)
         (Shape.to_string shape));
  { shape; data = Array.copy t.data }

(* [transpose2d] is defined after [Into] and delegates to
   [Into.transpose2d], like [matmul]. *)

(* Iterate over the cartesian product of [outer] positions before [axis],
   the axis range, and [inner] positions after it. Row-major layout means a
   tensor decomposes as outer * axis_dim * inner contiguous blocks. *)
let axis_blocks shape axis =
  let outer = ref 1 and inner = ref 1 in
  Array.iteri
    (fun i d -> if i < axis then outer := !outer * d else if i > axis then inner := !inner * d)
    shape;
  (!outer, !inner)

let slice ~axis ~lo ~hi t =
  let out_shape = Shape.slice_result ~axis ~lo ~hi t.shape in
  let d = t.shape.(axis) in
  let outer, inner = axis_blocks t.shape axis in
  let width = hi - lo in
  let out = Array.make (outer * width * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to width - 1 do
      Array.blit t.data
        (((o * d) + lo + a) * inner)
        out
        (((o * width) + a) * inner)
        inner
    done
  done;
  create out_shape out

let concat ~axis ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat: empty list"
  | first :: rest ->
    let out_shape =
      List.fold_left (fun acc t -> Shape.concat_result ~axis acc t.shape) first.shape rest
    in
    let outer, inner = axis_blocks first.shape axis in
    let total = out_shape.(axis) in
    let out = Array.make (Shape.numel out_shape) 0.0 in
    let offset = ref 0 in
    List.iter
      (fun t ->
        let d = t.shape.(axis) in
        for o = 0 to outer - 1 do
          Array.blit t.data
            (o * d * inner)
            out
            (((o * total) + !offset) * inner)
            (d * inner)
        done;
        offset := !offset + d)
      ts;
    create out_shape out

let pad_slice ~axis ~lo ~full t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.pad_slice: bad axis";
  let d = t.shape.(axis) in
  if lo < 0 || lo + d > full then invalid_arg "Tensor.pad_slice: slice does not fit";
  let out_shape = Array.mapi (fun i k -> if i = axis then full else k) t.shape in
  let outer, inner = axis_blocks t.shape axis in
  let out = Array.make (Shape.numel out_shape) 0.0 in
  for o = 0 to outer - 1 do
    Array.blit t.data (o * d * inner) out (((o * full) + lo) * inner) (d * inner)
  done;
  create out_shape out

(* {1 Reductions} *)

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_elt t = Array.fold_left Float.max neg_infinity t.data

let reduce_shape ~axis ~keepdims shape =
  if keepdims then Array.mapi (fun i d -> if i = axis then 1 else d) shape
  else begin
    match Array.length shape with
    | 1 -> Shape.scalar
    | n ->
      let out = Array.make (n - 1) 0 in
      let j = ref 0 in
      Array.iteri
        (fun i d ->
          if i <> axis then begin
            out.(!j) <- d;
            incr j
          end)
        shape;
      out
  end

let reduce_sum ~axis ~keepdims t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.reduce_sum: bad axis";
  let d = t.shape.(axis) in
  let outer, inner = axis_blocks t.shape axis in
  let out = Array.make (outer * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to d - 1 do
      let src = ((o * d) + a) * inner in
      let dst = o * inner in
      for k = 0 to inner - 1 do
        out.(dst + k) <- out.(dst + k) +. t.data.(src + k)
      done
    done
  done;
  create (reduce_shape ~axis ~keepdims t.shape) out

(* [reduce_mean] is defined after [Into] (it delegates to
   [Into.reduce_mean]). *)

let broadcast_axis ~axis ~n t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.broadcast_axis: bad axis";
  if t.shape.(axis) <> 1 then invalid_arg "Tensor.broadcast_axis: axis dim must be 1";
  let outer, inner = axis_blocks t.shape axis in
  let out_shape = Array.mapi (fun i d -> if i = axis then n else d) t.shape in
  let out = Array.make (outer * n * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to n - 1 do
      Array.blit t.data (o * inner) out (((o * n) + a) * inner) inner
    done
  done;
  create out_shape out

let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

(* {1 Neural-network kernels} *)

(* Softmax over the last axis, shared by softmax / log_softmax / xent. *)
let rows_of t =
  let r = Shape.rank t.shape in
  if r = 0 then invalid_arg "Tensor: scalar has no softmax axis";
  let cols = t.shape.(r - 1) in
  (numel t / cols, cols)

let softmax t =
  let rows, cols = rows_of t in
  let out = Array.make (numel t) 0.0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      if t.data.(base + j) > !m then m := t.data.(base + j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (t.data.(base + j) -. !m) in
      out.(base + j) <- e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      out.(base + j) <- out.(base + j) /. !z
    done
  done;
  create t.shape out

let log_softmax t =
  let rows, cols = rows_of t in
  let out = Array.make (numel t) 0.0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      if t.data.(base + j) > !m then m := t.data.(base + j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      z := !z +. exp (t.data.(base + j) -. !m)
    done;
    let lz = !m +. log !z in
    for j = 0 to cols - 1 do
      out.(base + j) <- t.data.(base + j) -. lz
    done
  done;
  create t.shape out

let check_labels ~logits ~labels =
  if Shape.rank (shape logits) <> 2 then invalid_arg "cross_entropy: logits must be 2-D";
  if Shape.rank (shape labels) <> 1 then invalid_arg "cross_entropy: labels must be 1-D";
  let b = (shape logits).(0) in
  if (shape labels).(0) <> b then invalid_arg "cross_entropy: batch mismatch";
  b

let cross_entropy ~logits ~labels =
  let b = check_labels ~logits ~labels in
  let v = (shape logits).(1) in
  let lsm = log_softmax logits in
  let acc = ref 0.0 in
  for i = 0 to b - 1 do
    let cls = int_of_float labels.data.(i) in
    if cls < 0 || cls >= v then invalid_arg "cross_entropy: label out of range";
    acc := !acc -. lsm.data.((i * v) + cls)
  done;
  !acc /. float_of_int b

let cross_entropy_grad ~logits ~labels =
  let b = check_labels ~logits ~labels in
  let v = (shape logits).(1) in
  let sm = softmax logits in
  let out = to_array sm in
  let inv_b = 1.0 /. float_of_int b in
  for i = 0 to b - 1 do
    let cls = int_of_float labels.data.(i) in
    out.((i * v) + cls) <- out.((i * v) + cls) -. 1.0
  done;
  for i = 0 to Array.length out - 1 do
    out.(i) <- out.(i) *. inv_b
  done;
  create (shape logits) out

let dropout_mask ~seed ~p shape =
  if p < 0.0 || p >= 1.0 then invalid_arg "Tensor.dropout_mask: p must be in [0,1)";
  let rng = Rng.create seed in
  let keep = 1.0 /. (1.0 -. p) in
  create shape
    (Array.init (Shape.numel shape) (fun _ -> if Rng.float rng < p then 0.0 else keep))

let embedding ~table ~ids =
  if Shape.rank (shape table) <> 2 then invalid_arg "Tensor.embedding: table must be 2-D";
  if Shape.rank (shape ids) <> 1 then invalid_arg "Tensor.embedding: ids must be 1-D";
  let v = (shape table).(0) and d = (shape table).(1) in
  let b = (shape ids).(0) in
  let out = Array.make (b * d) 0.0 in
  for i = 0 to b - 1 do
    let id = int_of_float ids.data.(i) in
    if id < 0 || id >= v then invalid_arg "Tensor.embedding: id out of range";
    Array.blit table.data (id * d) out (i * d) d
  done;
  create [| b; d |] out

let embedding_grad ~table_shape ~ids ~grad_out =
  if Shape.rank table_shape <> 2 then invalid_arg "Tensor.embedding_grad: table must be 2-D";
  let d = table_shape.(1) in
  let b = (shape ids).(0) in
  if not (Shape.equal (shape grad_out) [| b; d |]) then
    invalid_arg "Tensor.embedding_grad: grad_out shape mismatch";
  let out = Array.make (Shape.numel table_shape) 0.0 in
  for i = 0 to b - 1 do
    let id = int_of_float ids.data.(i) in
    for j = 0 to d - 1 do
      out.((id * d) + j) <- out.((id * d) + j) +. grad_out.data.((i * d) + j)
    done
  done;
  create table_shape out

(* {1 Convolution (naive direct)} *)

let conv_out_dim ~stride ~pad ~k dim = ((dim + (2 * pad) - k) / stride) + 1

let conv2d ~stride ~pad ~input ~kernel =
  if Shape.rank (shape input) <> 4 || Shape.rank (shape kernel) <> 4 then
    invalid_arg "Tensor.conv2d: expects 4-D input and kernel";
  let b = (shape input).(0) and cin = (shape input).(1) in
  let h = (shape input).(2) and w = (shape input).(3) in
  let cout = (shape kernel).(0) and cin' = (shape kernel).(1) in
  let kh = (shape kernel).(2) and kw = (shape kernel).(3) in
  if cin <> cin' then invalid_arg "Tensor.conv2d: channel mismatch";
  let oh = conv_out_dim ~stride ~pad ~k:kh h and ow = conv_out_dim ~stride ~pad ~k:kw w in
  if oh < 1 || ow < 1 then invalid_arg "Tensor.conv2d: output collapses to zero";
  let out = zeros [| b; cout; oh; ow |] in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = ref 0.0 in
          for ci = 0 to cin - 1 do
            for ky = 0 to kh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy >= 0 && iy < h then
                for kx = 0 to kw - 1 do
                  let ix = (ox * stride) + kx - pad in
                  if ix >= 0 && ix < w then
                    acc :=
                      !acc
                      +. get input [| n; ci; iy; ix |] *. get kernel [| co; ci; ky; kx |]
                done
            done
          done;
          set out [| n; co; oy; ox |] !acc
        done
      done
    done
  done;
  out

let conv2d_grad_input ~stride ~pad ~input_shape ~kernel ~grad_out =
  let b = input_shape.(0) and cin = input_shape.(1) in
  let h = input_shape.(2) and w = input_shape.(3) in
  let cout = (shape kernel).(0) in
  let kh = (shape kernel).(2) and kw = (shape kernel).(3) in
  let oh = (shape grad_out).(2) and ow = (shape grad_out).(3) in
  let out = zeros input_shape in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let g = get grad_out [| n; co; oy; ox |] in
          if g <> 0.0 then
            for ci = 0 to cin - 1 do
              for ky = 0 to kh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then
                  for kx = 0 to kw - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      set out [| n; ci; iy; ix |]
                        (get out [| n; ci; iy; ix |]
                        +. (g *. get kernel [| co; ci; ky; kx |]))
                  done
              done
            done
        done
      done
    done
  done;
  out

let conv2d_grad_kernel ~stride ~pad ~input ~kernel_shape ~grad_out =
  let b = (shape input).(0) and cin = (shape input).(1) in
  let h = (shape input).(2) and w = (shape input).(3) in
  let cout = kernel_shape.(0) in
  let kh = kernel_shape.(2) and kw = kernel_shape.(3) in
  let oh = (shape grad_out).(2) and ow = (shape grad_out).(3) in
  let out = zeros kernel_shape in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let g = get grad_out [| n; co; oy; ox |] in
          if g <> 0.0 then
            for ci = 0 to cin - 1 do
              for ky = 0 to kh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then
                  for kx = 0 to kw - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      set out [| co; ci; ky; kx |]
                        (get out [| co; ci; ky; kx |]
                        +. (g *. get input [| n; ci; iy; ix |]))
                  done
              done
            done
        done
      done
    done
  done;
  out

(* {1 Multicore kernel runtime support}

   Heavy kernels below take a [?runtime] and fan their output rows (or the
   flat index range) out over [Parallel.parallel_for], passing a [~work]
   hint (scalar ops per index) so the runtime's fan-out gate can weigh the
   kernel honestly. Every output element is written by exactly one domain,
   in the same per-element accumulation order as the sequential loop, so
   results are bit-identical at every domain count — including under the
   work-stealing schedule, whose chunk boundaries are a pure function of
   the loop size and the handle's configuration. *)

(* Cache-blocked, packed GEMM. Below the runtime's blocking threshold
   ([Parallel.blocking_threshold]) multiply-adds the original unblocked
   loops run unchanged (packing would dominate). Above it, a logically
   transposed A operand is packed into a contiguous row-major scratch once
   per call and the inner loops are register-blocked 8 output rows at a
   time; the trans_b-only case instead uses dot-product tiling over
   contiguous rows of both operands (see [dot_rows_nt]). In every path the
   accumulation order of each output element stays ascending-[l] with the
   a(i,l) = 0 skip, so blocked, unblocked, sequential and parallel
   variants all produce identical bits. *)

(* Pack scratch, grown monotonically and reused across calls. Packing
   always happens on the calling domain before the parallel region, so the
   scratch is keyed per domain ([Domain.DLS]): two executors driven from
   different domains — e.g. concurrent compiles under different blocking
   thresholds — each pack into their own buffer and cannot race. *)
let pack_scratch_a : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let pack_scratch_b : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

(* Running-value scratch for the fused elementwise kernel (one chunk's
   width per domain). *)
let fused_scratch : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let pack_scratch key numel =
  let cell = Domain.DLS.get key in
  if Array.length !cell < numel then cell := Array.make numel 0.0;
  !cell

(* [src] is a row-major [rows x cols] matrix; writes its transpose
   ([cols x rows], row-major) into [dst]. *)
let pack_transpose src ~rows ~cols dst =
  for r = 0 to rows - 1 do
    let base = r * cols in
    for c = 0 to cols - 1 do
      Array.unsafe_set dst ((c * rows) + r) (Array.unsafe_get src (base + c))
    done
  done

(* out[lo..hi) rows of the m x n product += A * B with A packed m x k and B
   packed k x n. Output rows are register-blocked by 8 (one load of each B
   element feeds eight accumulator rows) and the j loop is tiled so the
   active output rows and B row segment stay L1-resident. Rows whose a(i,l)
   is zero fall back to per-row conditional loops to preserve the
   sequential skip exactly: every output element still accumulates in
   ascending l, so blocking never changes bits. *)
let gemm_jb = 256

(* One row's contribution for the mixed-zero fallback and remainder rows:
   out[r+jlo..r+jhi) += x * bd[brow+jlo..brow+jhi). *)
let gemm_row1 bd out ~brow ~jlo ~jhi x r =
  if x <> 0.0 then
    for j = jlo to jhi - 1 do
      Array.unsafe_set out (r + j)
        (Array.unsafe_get out (r + j) +. (x *. Array.unsafe_get bd (brow + j)))
    done

let gemm_rows ad bd out ~k ~n ~lo ~hi =
  let i = ref lo in
  while !i + 8 <= hi do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k and a2 = (i0 + 2) * k in
    let a3 = (i0 + 3) * k and a4 = (i0 + 4) * k and a5 = (i0 + 5) * k in
    let a6 = (i0 + 6) * k and a7 = (i0 + 7) * k in
    let r0 = i0 * n and r1 = (i0 + 1) * n and r2 = (i0 + 2) * n in
    let r3 = (i0 + 3) * n and r4 = (i0 + 4) * n and r5 = (i0 + 5) * n in
    let r6 = (i0 + 6) * n and r7 = (i0 + 7) * n in
    let jj = ref 0 in
    while !jj < n do
      let jlo = !jj in
      let jhi = min n (jlo + gemm_jb) in
      for l = 0 to k - 1 do
        let x0 = Array.unsafe_get ad (a0 + l) in
        let x1 = Array.unsafe_get ad (a1 + l) in
        let x2 = Array.unsafe_get ad (a2 + l) in
        let x3 = Array.unsafe_get ad (a3 + l) in
        let x4 = Array.unsafe_get ad (a4 + l) in
        let x5 = Array.unsafe_get ad (a5 + l) in
        let x6 = Array.unsafe_get ad (a6 + l) in
        let x7 = Array.unsafe_get ad (a7 + l) in
        let brow = l * n in
        if
          x0 <> 0.0 && x1 <> 0.0 && x2 <> 0.0 && x3 <> 0.0 && x4 <> 0.0
          && x5 <> 0.0 && x6 <> 0.0 && x7 <> 0.0
        then
          for j = jlo to jhi - 1 do
            let bv = Array.unsafe_get bd (brow + j) in
            Array.unsafe_set out (r0 + j)
              (Array.unsafe_get out (r0 + j) +. (x0 *. bv));
            Array.unsafe_set out (r1 + j)
              (Array.unsafe_get out (r1 + j) +. (x1 *. bv));
            Array.unsafe_set out (r2 + j)
              (Array.unsafe_get out (r2 + j) +. (x2 *. bv));
            Array.unsafe_set out (r3 + j)
              (Array.unsafe_get out (r3 + j) +. (x3 *. bv));
            Array.unsafe_set out (r4 + j)
              (Array.unsafe_get out (r4 + j) +. (x4 *. bv));
            Array.unsafe_set out (r5 + j)
              (Array.unsafe_get out (r5 + j) +. (x5 *. bv));
            Array.unsafe_set out (r6 + j)
              (Array.unsafe_get out (r6 + j) +. (x6 *. bv));
            Array.unsafe_set out (r7 + j)
              (Array.unsafe_get out (r7 + j) +. (x7 *. bv))
          done
        else begin
          gemm_row1 bd out ~brow ~jlo ~jhi x0 r0;
          gemm_row1 bd out ~brow ~jlo ~jhi x1 r1;
          gemm_row1 bd out ~brow ~jlo ~jhi x2 r2;
          gemm_row1 bd out ~brow ~jlo ~jhi x3 r3;
          gemm_row1 bd out ~brow ~jlo ~jhi x4 r4;
          gemm_row1 bd out ~brow ~jlo ~jhi x5 r5;
          gemm_row1 bd out ~brow ~jlo ~jhi x6 r6;
          gemm_row1 bd out ~brow ~jlo ~jhi x7 r7
        end
      done;
      jj := jhi
    done;
    i := i0 + 8
  done;
  while !i < hi do
    let i0 = !i in
    let arow = i0 * k and r = i0 * n in
    for l = 0 to k - 1 do
      let x = Array.unsafe_get ad (arow + l) in
      if x <> 0.0 then begin
        let brow = l * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (r + j)
            (Array.unsafe_get out (r + j)
            +. (x *. Array.unsafe_get bd (brow + j)))
        done
      end
    done;
    i := i0 + 1
  done

(* trans_b (and not trans_a): out[i,j] is the dot product of contiguous A
   row i and contiguous B row j, so no packing is needed — B^T is never
   materialised. 4x4 output tiles accumulate in an unboxed float scratch;
   each element is still its own ascending-l chain with the a(i,l) = 0
   skip, so bits match the unblocked loops exactly. Every covered output
   element is overwritten, so callers skip the zero-fill. *)
let dot_rows_nt ad bd out ~k ~n ~lo ~hi =
  let acc = Array.make 16 0.0 in
  let i = ref lo in
  while !i + 4 <= hi do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k in
    let a2 = (i0 + 2) * k and a3 = (i0 + 3) * k in
    let j = ref 0 in
    while !j + 4 <= n do
      let j0 = !j in
      let b0 = j0 * k and b1 = (j0 + 1) * k in
      let b2 = (j0 + 2) * k and b3 = (j0 + 3) * k in
      Array.fill acc 0 16 0.0;
      for l = 0 to k - 1 do
        let bv0 = Array.unsafe_get bd (b0 + l) in
        let bv1 = Array.unsafe_get bd (b1 + l) in
        let bv2 = Array.unsafe_get bd (b2 + l) in
        let bv3 = Array.unsafe_get bd (b3 + l) in
        let x0 = Array.unsafe_get ad (a0 + l) in
        if x0 <> 0.0 then begin
          Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. (x0 *. bv0));
          Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. (x0 *. bv1));
          Array.unsafe_set acc 2 (Array.unsafe_get acc 2 +. (x0 *. bv2));
          Array.unsafe_set acc 3 (Array.unsafe_get acc 3 +. (x0 *. bv3))
        end;
        let x1 = Array.unsafe_get ad (a1 + l) in
        if x1 <> 0.0 then begin
          Array.unsafe_set acc 4 (Array.unsafe_get acc 4 +. (x1 *. bv0));
          Array.unsafe_set acc 5 (Array.unsafe_get acc 5 +. (x1 *. bv1));
          Array.unsafe_set acc 6 (Array.unsafe_get acc 6 +. (x1 *. bv2));
          Array.unsafe_set acc 7 (Array.unsafe_get acc 7 +. (x1 *. bv3))
        end;
        let x2 = Array.unsafe_get ad (a2 + l) in
        if x2 <> 0.0 then begin
          Array.unsafe_set acc 8 (Array.unsafe_get acc 8 +. (x2 *. bv0));
          Array.unsafe_set acc 9 (Array.unsafe_get acc 9 +. (x2 *. bv1));
          Array.unsafe_set acc 10 (Array.unsafe_get acc 10 +. (x2 *. bv2));
          Array.unsafe_set acc 11 (Array.unsafe_get acc 11 +. (x2 *. bv3))
        end;
        let x3 = Array.unsafe_get ad (a3 + l) in
        if x3 <> 0.0 then begin
          Array.unsafe_set acc 12 (Array.unsafe_get acc 12 +. (x3 *. bv0));
          Array.unsafe_set acc 13 (Array.unsafe_get acc 13 +. (x3 *. bv1));
          Array.unsafe_set acc 14 (Array.unsafe_get acc 14 +. (x3 *. bv2));
          Array.unsafe_set acc 15 (Array.unsafe_get acc 15 +. (x3 *. bv3))
        end
      done;
      for di = 0 to 3 do
        let r = ((i0 + di) * n) + j0 and s = 4 * di in
        Array.unsafe_set out r (Array.unsafe_get acc s);
        Array.unsafe_set out (r + 1) (Array.unsafe_get acc (s + 1));
        Array.unsafe_set out (r + 2) (Array.unsafe_get acc (s + 2));
        Array.unsafe_set out (r + 3) (Array.unsafe_get acc (s + 3))
      done;
      j := j0 + 4
    done;
    while !j < n do
      let j0 = !j in
      let bb = j0 * k in
      Array.fill acc 0 4 0.0;
      for l = 0 to k - 1 do
        let bv = Array.unsafe_get bd (bb + l) in
        let x0 = Array.unsafe_get ad (a0 + l) in
        if x0 <> 0.0 then
          Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. (x0 *. bv));
        let x1 = Array.unsafe_get ad (a1 + l) in
        if x1 <> 0.0 then
          Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. (x1 *. bv));
        let x2 = Array.unsafe_get ad (a2 + l) in
        if x2 <> 0.0 then
          Array.unsafe_set acc 2 (Array.unsafe_get acc 2 +. (x2 *. bv));
        let x3 = Array.unsafe_get ad (a3 + l) in
        if x3 <> 0.0 then
          Array.unsafe_set acc 3 (Array.unsafe_get acc 3 +. (x3 *. bv))
      done;
      Array.unsafe_set out ((i0 * n) + j0) (Array.unsafe_get acc 0);
      Array.unsafe_set out (((i0 + 1) * n) + j0) (Array.unsafe_get acc 1);
      Array.unsafe_set out (((i0 + 2) * n) + j0) (Array.unsafe_get acc 2);
      Array.unsafe_set out (((i0 + 3) * n) + j0) (Array.unsafe_get acc 3);
      j := j0 + 1
    done;
    i := i0 + 4
  done;
  while !i < hi do
    let i0 = !i in
    let arow = i0 * k and row = i0 * n in
    let j = ref 0 in
    while !j + 4 <= n do
      let j0 = !j in
      let b0 = j0 * k and b1 = (j0 + 1) * k in
      let b2 = (j0 + 2) * k and b3 = (j0 + 3) * k in
      Array.fill acc 0 4 0.0;
      for l = 0 to k - 1 do
        let x = Array.unsafe_get ad (arow + l) in
        if x <> 0.0 then begin
          Array.unsafe_set acc 0
            (Array.unsafe_get acc 0 +. (x *. Array.unsafe_get bd (b0 + l)));
          Array.unsafe_set acc 1
            (Array.unsafe_get acc 1 +. (x *. Array.unsafe_get bd (b1 + l)));
          Array.unsafe_set acc 2
            (Array.unsafe_get acc 2 +. (x *. Array.unsafe_get bd (b2 + l)));
          Array.unsafe_set acc 3
            (Array.unsafe_get acc 3 +. (x *. Array.unsafe_get bd (b3 + l)))
        end
      done;
      Array.unsafe_set out (row + j0) (Array.unsafe_get acc 0);
      Array.unsafe_set out (row + j0 + 1) (Array.unsafe_get acc 1);
      Array.unsafe_set out (row + j0 + 2) (Array.unsafe_get acc 2);
      Array.unsafe_set out (row + j0 + 3) (Array.unsafe_get acc 3);
      j := j0 + 4
    done;
    while !j < n do
      let j0 = !j in
      let bb = j0 * k in
      Array.unsafe_set acc 0 0.0;
      for l = 0 to k - 1 do
        let x = Array.unsafe_get ad (arow + l) in
        if x <> 0.0 then
          Array.unsafe_set acc 0
            (Array.unsafe_get acc 0 +. (x *. Array.unsafe_get bd (bb + l)))
      done;
      Array.unsafe_set out (row + j0) (Array.unsafe_get acc 0);
      j := j0 + 1
    done;
    i := i0 + 1
  done

(* {1 Dispatch-once elementwise loops}

   One concrete stride-1 loop per opcode, selected once per chunk. The hot
   loops carry no closure call and no float boxing: each arm reads and
   writes unboxed floats through [Array.unsafe_get]/[unsafe_set] on plain
   [float array]s (already an unboxed flat double buffer in OCaml), which
   is what lets flambda keep the accumulator in a register and the
   back-end vectorise the simple arms. *)

(* [apply1 step s d lo hi]: d.(i) <- step s.(i) on [lo, hi). Binary
   opcodes never reach here (the [Into] unary wrappers only build unary
   steps). *)
let apply1 step s d lo hi =
  match step with
  | F_neg ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_neg (Array.unsafe_get s i))
    done
  | F_scale c ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (c *. Array.unsafe_get s i)
    done
  | F_add_scalar c ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (c +. Array.unsafe_get s i)
    done
  | F_pow_const p ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (Float.pow (Array.unsafe_get s i) p)
    done
  | F_sigmoid ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_sigmoid (Array.unsafe_get s i))
    done
  | F_tanh ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (tanh (Array.unsafe_get s i))
    done
  | F_relu ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_relu (Array.unsafe_get s i))
    done
  | F_exp ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (exp (Array.unsafe_get s i))
    done
  | F_log ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (log (Array.unsafe_get s i))
    done
  | F_sqrt ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (sqrt (Array.unsafe_get s i))
    done
  | F_sq ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_sq (Array.unsafe_get s i))
    done
  | F_recip ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_recip (Array.unsafe_get s i))
    done
  | F_sign ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (k_sign (Array.unsafe_get s i))
    done
  | F_add _ | F_sub _ | F_mul _ | F_div _ | F_scale_by _ ->
    invalid_arg "Tensor.apply1: binary step"

(* [apply2 step x y d lo hi]: d.(i) <- x.(i) `step` y.(i) on [lo, hi).
   The step's operand index is ignored — [y] is passed explicitly. *)
let apply2 step x y d lo hi =
  match step with
  | F_add _ ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (Array.unsafe_get x i +. Array.unsafe_get y i)
    done
  | F_sub _ ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (Array.unsafe_get x i -. Array.unsafe_get y i)
    done
  | F_mul _ ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (Array.unsafe_get x i *. Array.unsafe_get y i)
    done
  | F_div _ ->
    for i = lo to hi - 1 do
      Array.unsafe_set d i (Array.unsafe_get x i /. Array.unsafe_get y i)
    done
  | _ -> invalid_arg "Tensor.apply2: unary step"

(* {1 Destination-passing kernels} *)

module Into = struct
  let check name dst expected =
    if not (Shape.equal dst.shape expected) then
      invalid_arg
        (Printf.sprintf "Tensor.Into.%s: dst has shape %s, result needs %s" name
           (Shape.to_string dst.shape) (Shape.to_string expected))

  let fill ~dst v = Array.fill dst.data 0 (Array.length dst.data) v

  let blit ~src ~dst =
    if Array.length src.data <> Array.length dst.data then
      invalid_arg
        (Printf.sprintf "Tensor.Into.blit: %d elements into %d"
           (Array.length src.data) (Array.length dst.data));
    Array.blit src.data 0 dst.data 0 (Array.length src.data)

  (* [dst] may alias [src]: each cell is read before it is written (by the
     domain owning that cell's chunk). The opcode is dispatched once per
     chunk ([apply1]), not per element. *)
  let unary ?(runtime = Parallel.sequential) name step src ~dst =
    check name dst src.shape;
    let s = src.data and d = dst.data in
    Parallel.parallel_for runtime ~work:(fused_step_work step)
      ~n:(Array.length s) (fun lo hi -> apply1 step s d lo hi)

  let neg ?runtime src ~dst = unary ?runtime "neg" F_neg src ~dst
  let scale ?runtime k src ~dst = unary ?runtime "scale" (F_scale k) src ~dst

  let add_scalar ?runtime k src ~dst =
    unary ?runtime "add_scalar" (F_add_scalar k) src ~dst

  let pow_const ?runtime p src ~dst =
    unary ?runtime "pow_const" (F_pow_const p) src ~dst

  let sigmoid ?runtime src ~dst = unary ?runtime "sigmoid" F_sigmoid src ~dst
  let tanh_ ?runtime src ~dst = unary ?runtime "tanh" F_tanh src ~dst
  let relu ?runtime src ~dst = unary ?runtime "relu" F_relu src ~dst
  let exp_ ?runtime src ~dst = unary ?runtime "exp" F_exp src ~dst
  let log_ ?runtime src ~dst = unary ?runtime "log" F_log src ~dst
  let sqrt_ ?runtime src ~dst = unary ?runtime "sqrt" F_sqrt src ~dst
  let sq ?runtime src ~dst = unary ?runtime "sq" F_sq src ~dst
  let recip ?runtime src ~dst = unary ?runtime "recip" F_recip src ~dst
  let sign ?runtime src ~dst = unary ?runtime "sign" F_sign src ~dst

  (* [dst] may alias either operand. *)
  let binary ?(runtime = Parallel.sequential) name step a b ~dst =
    if not (Shape.equal a.shape b.shape) then
      invalid_arg
        (Printf.sprintf "Tensor.Into.%s: shape mismatch %s vs %s" name
           (Shape.to_string a.shape) (Shape.to_string b.shape));
    check name dst a.shape;
    let x = a.data and y = b.data and d = dst.data in
    Parallel.parallel_for runtime ~n:(Array.length x) (fun lo hi ->
        apply2 step x y d lo hi)

  let add ?runtime a b ~dst = binary ?runtime "add" (F_add 1) a b ~dst
  let sub ?runtime a b ~dst = binary ?runtime "sub" (F_sub 1) a b ~dst
  let mul ?runtime a b ~dst = binary ?runtime "mul" (F_mul 1) a b ~dst
  let div ?runtime a b ~dst = binary ?runtime "div" (F_div 1) a b ~dst

  (* The scalar multiplier is read before any write, so [dst] may alias
     either operand — [F_scale] captures it up front, exactly like the
     fused [F_scale_by] opcode reads the same single cell. *)
  let scale_by ?runtime x s ~dst =
    unary ?runtime "scale_by" (F_scale s.data.(0)) x ~dst

  (* Same i -> l (skip a_il = 0) -> j accumulation order as the sequential
     triple loop in every variant, so results are bit-identical across the
     unblocked path, the packed/blocked path, and every domain count. [dst]
     must not alias an operand. Output rows are partitioned across the
     runtime's domains; each chunk zero-fills and accumulates only its own
     rows. *)
  let matmul ?(runtime = Parallel.sequential) ?(trans_a = false)
      ?(trans_b = false) a b ~dst =
    if Shape.rank a.shape <> 2 || Shape.rank b.shape <> 2 then
      invalid_arg "Tensor.Into.matmul: operands must be 2-D";
    let am = a.shape.(0) and an = a.shape.(1) in
    let bm = b.shape.(0) and bn = b.shape.(1) in
    let m, k = if trans_a then (an, am) else (am, an) in
    let k', n = if trans_b then (bn, bm) else (bm, bn) in
    if k <> k' then
      invalid_arg
        (Printf.sprintf "Tensor.Into.matmul: inner dims %d vs %d" k k');
    check "matmul" dst [| m; n |];
    let out = dst.data in
    let ad = a.data and bd = b.data in
    let work = 2 * k * n in
    if m * n * k >= Parallel.blocking_threshold runtime then begin
      if trans_b && not trans_a then
        (* Both operand rows are contiguous along l, so dot-product tiling
           beats packing: no O(k*n) transpose per call, and the 4x4 output
           tile lives in an unboxed scratch. The kernel overwrites every
           element of its rows, so no zero-fill. *)
        Parallel.parallel_for runtime ~work ~n:m (fun lo hi ->
            dot_rows_nt ad bd out ~k ~n ~lo ~hi)
      else begin
        (* Packed/blocked path: normalise both operands to row-major
           notrans layout (packing is a pure copy, so operand bits are
           unchanged), then run the register-blocked kernel on each row
           chunk. Packing happens on the calling domain before the
           fan-out. *)
        let pa =
          if trans_a then begin
            let s = pack_scratch pack_scratch_a (m * k) in
            pack_transpose ad ~rows:am ~cols:an s;
            s
          end
          else ad
        in
        let pb =
          if trans_b then begin
            let s = pack_scratch pack_scratch_b (k * n) in
            pack_transpose bd ~rows:bm ~cols:bn s;
            s
          end
          else bd
        in
        Parallel.parallel_for runtime ~work ~n:m (fun lo hi ->
            Array.fill out (lo * n) ((hi - lo) * n) 0.0;
            gemm_rows pa pb out ~k ~n ~lo ~hi)
      end
    end
    else
      Parallel.parallel_for runtime ~work ~n:m (fun lo hi ->
          Array.fill out (lo * n) ((hi - lo) * n) 0.0;
          match (trans_a, trans_b) with
          | false, false ->
            for i = lo to hi - 1 do
              let arow = i * an and row = i * n in
              for l = 0 to k - 1 do
                let ail = Array.unsafe_get ad (arow + l) in
                if ail <> 0.0 then begin
                  let brow = l * bn in
                  for j = 0 to n - 1 do
                    Array.unsafe_set out (row + j)
                      (Array.unsafe_get out (row + j)
                      +. (ail *. Array.unsafe_get bd (brow + j)))
                  done
                end
              done
            done
          | true, false ->
            for i = lo to hi - 1 do
              let row = i * n in
              for l = 0 to k - 1 do
                let ail = Array.unsafe_get ad ((l * an) + i) in
                if ail <> 0.0 then begin
                  let brow = l * bn in
                  for j = 0 to n - 1 do
                    Array.unsafe_set out (row + j)
                      (Array.unsafe_get out (row + j)
                      +. (ail *. Array.unsafe_get bd (brow + j)))
                  done
                end
              done
            done
          | false, true ->
            for i = lo to hi - 1 do
              let arow = i * an and row = i * n in
              for l = 0 to k - 1 do
                let ail = Array.unsafe_get ad (arow + l) in
                if ail <> 0.0 then
                  for j = 0 to n - 1 do
                    Array.unsafe_set out (row + j)
                      (Array.unsafe_get out (row + j)
                      +. (ail *. Array.unsafe_get bd ((j * bn) + l)))
                  done
              done
            done
          | true, true ->
            for i = lo to hi - 1 do
              let row = i * n in
              for l = 0 to k - 1 do
                let ail = Array.unsafe_get ad ((l * an) + i) in
                if ail <> 0.0 then
                  for j = 0 to n - 1 do
                    Array.unsafe_set out (row + j)
                      (Array.unsafe_get out (row + j)
                      +. (ail *. Array.unsafe_get bd ((j * bn) + l)))
                  done
              done
            done)

  (* [dst] may alias [m] (cell read before write); aliasing [b] only arises
     when rows = 1, where b.(j) is read before dst.(j) is written. *)
  let add_bias ?(runtime = Parallel.sequential) m b ~dst =
    if Shape.rank m.shape <> 2 || Shape.rank b.shape <> 1 then
      invalid_arg "Tensor.Into.add_bias: expects 2-D matrix and 1-D bias";
    let rows = m.shape.(0) and cols = m.shape.(1) in
    if b.shape.(0) <> cols then
      invalid_arg "Tensor.Into.add_bias: bias length mismatch";
    check "add_bias" dst m.shape;
    let md = m.data and bd = b.data and d = dst.data in
    Parallel.parallel_for runtime ~work:cols ~n:rows (fun lo hi ->
        for i = lo to hi - 1 do
          let row = i * cols in
          for j = 0 to cols - 1 do
            Array.unsafe_set d (row + j)
              (Array.unsafe_get md (row + j) +. Array.unsafe_get bd j)
          done
        done)

  let slice ~axis ~lo ~hi src ~dst =
    check "slice" dst (Shape.slice_result ~axis ~lo ~hi src.shape);
    let d = src.shape.(axis) in
    let outer, inner = axis_blocks src.shape axis in
    let width = hi - lo in
    for o = 0 to outer - 1 do
      for a = 0 to width - 1 do
        Array.blit src.data
          (((o * d) + lo + a) * inner)
          dst.data
          (((o * width) + a) * inner)
          inner
      done
    done

  let pad_slice ~axis ~lo ~full src ~dst =
    if axis < 0 || axis >= Shape.rank src.shape then
      invalid_arg "Tensor.Into.pad_slice: bad axis";
    let d = src.shape.(axis) in
    if lo < 0 || lo + d > full then
      invalid_arg "Tensor.Into.pad_slice: slice does not fit";
    check "pad_slice" dst
      (Array.mapi (fun i k -> if i = axis then full else k) src.shape);
    let outer, inner = axis_blocks src.shape axis in
    Array.fill dst.data 0 (Array.length dst.data) 0.0;
    for o = 0 to outer - 1 do
      Array.blit src.data (o * d * inner) dst.data
        (((o * full) + lo) * inner)
        (d * inner)
    done

  let concat ~axis ts ~dst =
    match ts with
    | [] -> invalid_arg "Tensor.Into.concat: empty list"
    | first :: rest ->
      let out_shape =
        List.fold_left
          (fun acc t -> Shape.concat_result ~axis acc t.shape)
          first.shape rest
      in
      check "concat" dst out_shape;
      let outer, inner = axis_blocks first.shape axis in
      let total = out_shape.(axis) in
      let offset = ref 0 in
      List.iter
        (fun t ->
          let d = t.shape.(axis) in
          for o = 0 to outer - 1 do
            Array.blit t.data (o * d * inner) dst.data
              (((o * total) + !offset) * inner)
              (d * inner)
          done;
          offset := !offset + d)
        ts

  (* Partitioned over output rows: each domain gathers one stripe of
     columns of [src], so every dst cell has exactly one writer. *)
  let transpose2d ?(runtime = Parallel.sequential) src ~dst =
    if Shape.rank src.shape <> 2 then
      invalid_arg "Tensor.Into.transpose2d: expects 2-D";
    let m = src.shape.(0) and n = src.shape.(1) in
    check "transpose2d" dst [| n; m |];
    let s = src.data and d = dst.data in
    Parallel.parallel_for runtime ~work:m ~n (fun lo hi ->
        for a = lo to hi - 1 do
          let row = a * m in
          for b = 0 to m - 1 do
            Array.unsafe_set d (row + b) (Array.unsafe_get s ((b * n) + a))
          done
        done)

  (* Partitioned over the [outer] blocks: a chunk owns dst cells
     [lo*inner, hi*inner) outright (zero-fill included), and the a-ascending
     accumulation per cell matches the sequential loop. *)
  let reduce_sum ?(runtime = Parallel.sequential) ~axis ~keepdims src ~dst =
    if axis < 0 || axis >= Shape.rank src.shape then
      invalid_arg "Tensor.Into.reduce_sum: bad axis";
    check "reduce_sum" dst (reduce_shape ~axis ~keepdims src.shape);
    let d = src.shape.(axis) in
    let outer, inner = axis_blocks src.shape axis in
    let s = src.data and out = dst.data in
    Parallel.parallel_for runtime ~work:(d * inner) ~n:outer (fun lo hi ->
        Array.fill out (lo * inner) ((hi - lo) * inner) 0.0;
        for o = lo to hi - 1 do
          for a = 0 to d - 1 do
            let src_off = ((o * d) + a) * inner in
            let dst_off = o * inner in
            for k = 0 to inner - 1 do
              Array.unsafe_set out (dst_off + k)
                (Array.unsafe_get out (dst_off + k)
                +. Array.unsafe_get s (src_off + k))
            done
          done
        done)

  let reduce_mean ?runtime ~axis ~keepdims src ~dst =
    reduce_sum ?runtime ~axis ~keepdims src ~dst;
    let k = 1.0 /. float_of_int src.shape.(axis) in
    let out = dst.data in
    for i = 0 to Array.length out - 1 do
      Array.unsafe_set out i (k *. Array.unsafe_get out i)
    done

  let broadcast_axis ~axis ~n src ~dst =
    if axis < 0 || axis >= Shape.rank src.shape then
      invalid_arg "Tensor.Into.broadcast_axis: bad axis";
    if src.shape.(axis) <> 1 then
      invalid_arg "Tensor.Into.broadcast_axis: axis dim must be 1";
    check "broadcast_axis" dst
      (Array.mapi (fun i d -> if i = axis then n else d) src.shape);
    let outer, inner = axis_blocks src.shape axis in
    for o = 0 to outer - 1 do
      for a = 0 to n - 1 do
        Array.blit src.data (o * inner) dst.data (((o * n) + a) * inner) inner
      done
    done

  (* Softmax family: [dst] may alias the input — within each row the maximum
     and the normaliser are read from the input before any cell of that row
     is overwritten, and each overwrite reads its own cell first. *)
  let softmax ?(runtime = Parallel.sequential) src ~dst =
    check "softmax" dst src.shape;
    let rows, cols = rows_of src in
    let s = src.data and out = dst.data in
    Parallel.parallel_for runtime ~work:(10 * cols) ~n:rows (fun lo hi ->
        for r = lo to hi - 1 do
          let base = r * cols in
          let m = ref neg_infinity in
          for j = 0 to cols - 1 do
            if s.(base + j) > !m then m := s.(base + j)
          done;
          let z = ref 0.0 in
          for j = 0 to cols - 1 do
            let e = exp (s.(base + j) -. !m) in
            out.(base + j) <- e;
            z := !z +. e
          done;
          for j = 0 to cols - 1 do
            out.(base + j) <- out.(base + j) /. !z
          done
        done)

  let log_softmax ?(runtime = Parallel.sequential) src ~dst =
    check "log_softmax" dst src.shape;
    let rows, cols = rows_of src in
    let s = src.data and out = dst.data in
    Parallel.parallel_for runtime ~work:(10 * cols) ~n:rows (fun lo hi ->
        for r = lo to hi - 1 do
          let base = r * cols in
          let m = ref neg_infinity in
          for j = 0 to cols - 1 do
            if s.(base + j) > !m then m := s.(base + j)
          done;
          let z = ref 0.0 in
          for j = 0 to cols - 1 do
            z := !z +. exp (s.(base + j) -. !m)
          done;
          let lz = !m +. log !z in
          for j = 0 to cols - 1 do
            out.(base + j) <- s.(base + j) -. lz
          done
        done)

  (* Per row: log-normaliser from the logits, then acc -= logits[cls] - lz.
     Row order and operand values match [cross_entropy] exactly. *)
  let cross_entropy ~logits ~labels ~dst =
    if Array.length dst.data <> 1 then
      invalid_arg "Tensor.Into.cross_entropy: dst must be scalar";
    let b = check_labels ~logits ~labels in
    let v = (shape logits).(1) in
    let s = logits.data in
    let acc = ref 0.0 in
    for i = 0 to b - 1 do
      let base = i * v in
      let m = ref neg_infinity in
      for j = 0 to v - 1 do
        if s.(base + j) > !m then m := s.(base + j)
      done;
      let z = ref 0.0 in
      for j = 0 to v - 1 do
        z := !z +. exp (s.(base + j) -. !m)
      done;
      let lz = !m +. log !z in
      let cls = int_of_float labels.data.(i) in
      if cls < 0 || cls >= v then
        invalid_arg "cross_entropy: label out of range";
      acc := !acc -. (s.(base + cls) -. lz)
    done;
    dst.data.(0) <- !acc /. float_of_int b

  (* Row-interleaved so [dst] may alias [logits]; each row reads its label
     index before the row is overwritten, so for the degenerate vocab-size-1
     case [dst] may even alias [labels]. *)
  (* The trailing [()] lets the [?runtime] default be erased: these three
     kernels have no positional operand to anchor it. *)
  let cross_entropy_grad ?(runtime = Parallel.sequential) ~logits ~labels ~dst
      () =
    let b = check_labels ~logits ~labels in
    let v = (shape logits).(1) in
    check "cross_entropy_grad" dst logits.shape;
    let s = logits.data and out = dst.data in
    let inv_b = 1.0 /. float_of_int b in
    Parallel.parallel_for runtime ~work:(10 * v) ~n:b (fun lo hi ->
        for i = lo to hi - 1 do
          let base = i * v in
          let cls = int_of_float labels.data.(i) in
          let m = ref neg_infinity in
          for j = 0 to v - 1 do
            if s.(base + j) > !m then m := s.(base + j)
          done;
          let z = ref 0.0 in
          for j = 0 to v - 1 do
            let e = exp (s.(base + j) -. !m) in
            out.(base + j) <- e;
            z := !z +. e
          done;
          for j = 0 to v - 1 do
            out.(base + j) <- out.(base + j) /. !z
          done;
          out.(base + cls) <- out.(base + cls) -. 1.0;
          for j = 0 to v - 1 do
            out.(base + j) <- out.(base + j) *. inv_b
          done
        done)

  let embedding ?(runtime = Parallel.sequential) ~table ~ids ~dst () =
    if Shape.rank (shape table) <> 2 then
      invalid_arg "Tensor.Into.embedding: table must be 2-D";
    if Shape.rank (shape ids) <> 1 then
      invalid_arg "Tensor.Into.embedding: ids must be 1-D";
    let v = (shape table).(0) and d = (shape table).(1) in
    let b = (shape ids).(0) in
    check "embedding" dst [| b; d |];
    Parallel.parallel_for runtime ~work:d ~n:b (fun lo hi ->
        for i = lo to hi - 1 do
          let id = int_of_float ids.data.(i) in
          if id < 0 || id >= v then
            invalid_arg "Tensor.embedding: id out of range";
          Array.blit table.data (id * d) dst.data (i * d) d
        done)

  (* Scatter-add with duplicate ids, so the partition is over {e destination
     table rows}: every chunk scans the full id list and accumulates only
     the rows it owns, preserving the i-ascending addition order per row.
     Cheap because the scan is O(b) per chunk while the scatters are
     O(b*d / chunks). *)
  let embedding_grad ?(runtime = Parallel.sequential) ~ids ~grad_out ~dst () =
    if Shape.rank dst.shape <> 2 then
      invalid_arg "Tensor.Into.embedding_grad: dst must be 2-D";
    let v = dst.shape.(0) and d = dst.shape.(1) in
    let b = (shape ids).(0) in
    if not (Shape.equal (shape grad_out) [| b; d |]) then
      invalid_arg "Tensor.Into.embedding_grad: grad_out shape mismatch";
    let out = dst.data and g = grad_out.data in
    (* Per table row: the O(b) id scan plus this row's share of the O(b*d)
       scatter adds. *)
    Parallel.parallel_for runtime
      ~work:(b + (b * d / max 1 v))
      ~n:v (fun lo hi ->
        Array.fill out (lo * d) ((hi - lo) * d) 0.0;
        for i = 0 to b - 1 do
          let id = int_of_float ids.data.(i) in
          if id < 0 || id >= v then
            invalid_arg "Tensor.Into.embedding_grad: id out of range";
          if id >= lo && id < hi then
            for j = 0 to d - 1 do
              out.((id * d) + j) <- out.((id * d) + j) +. g.((i * d) + j)
            done
        done)

  (* One pass over the output: per element the whole chain folds in a
     register, dispatched by a jump-table match over the step opcodes with
     each scalar kernel applied directly (see [fused_step]). Binary steps'
     data arrays resolve up front; [F_scale_by] reads its multiplier
     per-element like [scale_by] reads it once — same value either way.
     [dst] may alias any operand: element [i] of every operand is read
     before element [i] of [dst] is written, and parallel chunks are
     disjoint. The partition is the same flat-index chunking as
     [unary]/[binary] — with the work hint summing the per-step weights,
     so a fused chain clears the runtime's fan-out gate exactly when the
     separate passes it replaces would have in aggregate — so results are
     bit-identical at every domain count and to running the chain
     unfused. *)
  let fused ?(runtime = Parallel.sequential) steps operands ~dst =
    if Array.length operands = 0 then
      invalid_arg "Tensor.Into.fused: no operands";
    let seed = operands.(0) in
    check "fused" dst seed.shape;
    let datas =
      Array.map
        (fun step ->
          match fused_step_operand step with
          | Some j ->
            let o = operands.(j) in
            (match step with
            | F_scale_by _ -> () (* a [1]-shaped multiplier *)
            | _ -> check "fused" dst o.shape);
            o.data
          | None -> seed.data)
        steps
    in
    let k = Array.length steps in
    let work = Array.fold_left (fun a st -> a + fused_step_work st) 0 steps in
    let s = seed.data and d = dst.data in
    (* Step-outer evaluation: one dispatch and one stride-1 pass per step
       over a per-domain scratch of the running value, instead of
       re-interpreting the step array for every element. Each element still
       sees the exact same operations in the exact same order, so results
       are bit-identical to per-element chain evaluation — and to running
       the chain unfused. The scratch (not [dst]) carries the intermediate
       because in-place transfers may alias [dst] with any operand. *)
    Parallel.parallel_for runtime ~work ~n:(Array.length d) (fun lo hi ->
        let w = hi - lo in
        let cell = Domain.DLS.get fused_scratch in
        if Array.length !cell < w then cell := Array.make w 0.0;
        let buf = !cell in
        Array.blit s lo buf 0 w;
        for st = 0 to k - 1 do
          match Array.unsafe_get steps st with
          | F_add _ ->
            let o = Array.unsafe_get datas st in
            for i = 0 to w - 1 do
              Array.unsafe_set buf i
                (Array.unsafe_get buf i +. Array.unsafe_get o (lo + i))
            done
          | F_sub _ ->
            let o = Array.unsafe_get datas st in
            for i = 0 to w - 1 do
              Array.unsafe_set buf i
                (Array.unsafe_get buf i -. Array.unsafe_get o (lo + i))
            done
          | F_mul _ ->
            let o = Array.unsafe_get datas st in
            for i = 0 to w - 1 do
              Array.unsafe_set buf i
                (Array.unsafe_get buf i *. Array.unsafe_get o (lo + i))
            done
          | F_div _ ->
            let o = Array.unsafe_get datas st in
            for i = 0 to w - 1 do
              Array.unsafe_set buf i
                (Array.unsafe_get buf i /. Array.unsafe_get o (lo + i))
            done
          | F_scale_by _ ->
            let c = Array.unsafe_get (Array.unsafe_get datas st) 0 in
            for i = 0 to w - 1 do
              Array.unsafe_set buf i (c *. Array.unsafe_get buf i)
            done
          | step -> apply1 step buf buf 0 w
        done;
        Array.blit buf 0 d lo w)
end

(* {1 Allocating wrappers over [Into]} *)

let matmul ?(trans_a = false) ?(trans_b = false) a b =
  if Shape.rank a.shape <> 2 || Shape.rank b.shape <> 2 then
    invalid_arg "Tensor.matmul: operands must be 2-D";
  let am = a.shape.(0) and an = a.shape.(1) in
  let bm = b.shape.(0) and bn = b.shape.(1) in
  let m, k = if trans_a then (an, am) else (am, an) in
  let k', n = if trans_b then (bn, bm) else (bm, bn) in
  if k <> k' then
    invalid_arg
      (Printf.sprintf "Tensor.matmul: inner dims %d vs %d (%s%s x %s%s)" k k'
         (Shape.to_string a.shape)
         (if trans_a then "^T" else "")
         (Shape.to_string b.shape)
         (if trans_b then "^T" else ""));
  let dst = zeros [| m; n |] in
  Into.matmul ~trans_a ~trans_b a b ~dst;
  dst

let transpose2d t =
  if Shape.rank t.shape <> 2 then invalid_arg "Tensor.transpose2d: expects 2-D";
  let dst = zeros [| t.shape.(1); t.shape.(0) |] in
  Into.transpose2d t ~dst;
  dst

(* Elementwise: allocate and delegate, one loop body per op. *)

let ew1 kernel src =
  let dst = zeros src.shape in
  kernel src ~dst;
  dst

let ew2 kernel a b =
  let dst = zeros a.shape in
  kernel a b ~dst;
  dst

let add a b = ew2 (Into.add ?runtime:None) a b
let sub a b = ew2 (Into.sub ?runtime:None) a b
let mul a b = ew2 (Into.mul ?runtime:None) a b
let div a b = ew2 (Into.div ?runtime:None) a b
let neg t = ew1 (Into.neg ?runtime:None) t
let scale k t = ew1 (Into.scale ?runtime:None k) t
let add_scalar k t = ew1 (Into.add_scalar ?runtime:None k) t
let sigmoid t = ew1 (Into.sigmoid ?runtime:None) t
let tanh_ t = ew1 (Into.tanh_ ?runtime:None) t
let relu t = ew1 (Into.relu ?runtime:None) t
let exp_ t = ew1 (Into.exp_ ?runtime:None) t
let log_ t = ew1 (Into.log_ ?runtime:None) t
let sqrt_ t = ew1 (Into.sqrt_ ?runtime:None) t
let sq t = ew1 (Into.sq ?runtime:None) t
let pow_const p t = ew1 (Into.pow_const ?runtime:None p) t
let recip t = ew1 (Into.recip ?runtime:None) t
let sign t = ew1 (Into.sign ?runtime:None) t

let reduce_mean ~axis ~keepdims t =
  let dst = zeros (reduce_shape ~axis ~keepdims t.shape) in
  Into.reduce_mean ~axis ~keepdims t ~dst;
  dst

(* {1 Comparison and printing} *)

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let m = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. b.data.(i)) in
        if d > !m then m := d)
      a.data;
    !m
  end

let approx_equal ?(tol = 1e-9) a b = max_abs_diff a b <= tol

let pp fmt t =
  Format.fprintf fmt "%s{" (Shape.to_string t.shape);
  let n = min (numel t) 16 in
  for i = 0 to n - 1 do
    if i > 0 then Format.pp_print_string fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if numel t > n then Format.pp_print_string fmt ", ...";
  Format.pp_print_string fmt "}"

let to_string t = Format.asprintf "%a" pp t
