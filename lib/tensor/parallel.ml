(* A persistent Domain worker pool with a fork-join [parallel_for].

   Workers park on a condition variable between jobs. Each [parallel_for]
   bumps an epoch, publishes one job closure, and wakes everyone; every
   worker runs the job exactly once per epoch (the job itself decides
   whether the worker's slot owns a chunk), decrements the pending count,
   and parks again. The caller executes chunk 0 in place of a worker, then
   waits for the pending count to drain — a full barrier, so kernel calls
   never overlap and the tensor kernels need no per-call state. *)

type pool = {
  domains : int;  (* participants, including the caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable epoch : int;
  mutable job : (int -> unit) option;  (* worker slot in 1 .. domains-1 *)
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable handles : unit Domain.t list;
}

type t = Seq | Pool of pool

let sequential = Seq
let domains = function Seq -> 1 | Pool p -> p.domains

let worker_loop pool slot =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.epoch = !seen && not pool.stop do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with
      | None -> ()
      | Some f -> (
        try f slot
        with e ->
          Mutex.lock pool.mutex;
          if pool.failure = None then pool.failure <- Some e;
          Mutex.unlock pool.mutex));
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let shutdown = function
  | Seq -> ()
  | Pool pool ->
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.handles;
    pool.handles <- []

let env_domains () =
  let fallback () = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "ECHO_DOMAINS" with
  | None | Some "" -> fallback ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None -> fallback ())

let create ?domains () =
  let d = match domains with Some d -> d | None -> env_domains () in
  if d < 1 then invalid_arg "Parallel.create: domains must be >= 1";
  if d = 1 then Seq
  else begin
    let pool =
      {
        domains = d;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        epoch = 0;
        job = None;
        pending = 0;
        failure = None;
        stop = false;
        handles = [];
      }
    in
    let t = Pool pool in
    pool.handles <-
      List.init (d - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
    at_exit (fun () -> shutdown t);
    t
  end

(* Balanced contiguous partition of [0, n) into [parts] chunks: a pure
   function of (n, parts), independent of which domain runs which chunk. *)
let chunk_bounds n parts i = ((i * n) / parts, ((i + 1) * n) / parts)

let run_pool pool ~n ~parts body =
  Mutex.lock pool.mutex;
  pool.job <-
    Some
      (fun slot ->
        if slot < parts then begin
          let lo, hi = chunk_bounds n parts slot in
          if lo < hi then body lo hi
        end);
  pool.pending <- pool.domains - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  (* The caller owns chunk 0; its exception must not skip the join. *)
  let caller_failure =
    try
      let lo, hi = chunk_bounds n parts 0 in
      if lo < hi then body lo hi;
      None
    with e -> Some e
  in
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.work_done pool.mutex
  done;
  pool.job <- None;
  let worker_failure = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.mutex;
  match (caller_failure, worker_failure) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

let parallel_for t ?(grain = 1) ~n body =
  if n > 0 then begin
    match t with
    | Seq -> body 0 n
    | Pool pool ->
      let parts = min pool.domains (max 1 (n / max 1 grain)) in
      if parts <= 1 then body 0 n else run_pool pool ~n ~parts body
  end

(* The process-wide runtime: sized by ECHO_DOMAINS on first use. *)
let default_runtime : t option ref = ref None

let default () =
  match !default_runtime with
  | Some t -> t
  | None ->
    let t = create ~domains:(env_domains ()) () in
    default_runtime := Some t;
    t

let set_default_domains d =
  (match !default_runtime with Some t -> shutdown t | None -> ());
  let t = create ~domains:d () in
  default_runtime := Some t;
  t
