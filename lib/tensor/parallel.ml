(* A persistent Domain worker pool with a fork-join [parallel_for].

   Workers park on a condition variable between jobs. Each [parallel_for]
   bumps an epoch, publishes one job closure, and wakes everyone; every
   participant (workers and the caller) drains chunks from a shared atomic
   counter — deterministic work stealing. Chunk [c] always covers
   [(c*n/parts, (c+1)*n/parts)], a pure function of (n, parts), so the
   bytes written are identical no matter which domain claims which chunk;
   only the schedule is dynamic. The caller then waits for the pending
   count to drain — a full barrier, so kernel calls never overlap and the
   tensor kernels need no per-call state.

   A handle also carries an execution [config]: the matmul blocking
   threshold, the fan-out work gate, the steal granularity, and whether
   the pool may oversubscribe the hardware. The config rides on the
   handle (not in a global) so two executors compiled with different
   settings can run concurrently without racing on process state. *)

type config = {
  blocking_threshold : int;
  min_fanout_work : int;
  chunks_per_domain : int;
  oversubscribe : bool;
}

let default_config =
  {
    blocking_threshold = 32_768;
    min_fanout_work = 1 lsl 18;
    chunks_per_domain = 4;
    oversubscribe = false;
  }

type pool = {
  pool_domains : int;  (* participants, including the caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  next : int Atomic.t;  (* shared chunk queue for the current job *)
  mutable epoch : int;
  mutable job : (unit -> unit) option;  (* the per-participant drain loop *)
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable handles : unit Domain.t list;
}

type kind = Seq | Pool of pool
type t = { kind : kind; config : config }

let sequential = { kind = Seq; config = default_config }
let domains t = match t.kind with Seq -> 1 | Pool p -> p.pool_domains
let blocking_threshold t = t.config.blocking_threshold
let min_fanout_work t = t.config.min_fanout_work
let chunks_per_domain t = t.config.chunks_per_domain
let oversubscribed t = t.config.oversubscribe

let hardware_parallelism =
  let n = lazy (max 1 (Domain.recommended_domain_count ())) in
  fun () -> Lazy.force n

(* How many domains a kernel may actually fan out across: the pool size,
   capped at the hardware unless the handle opted into oversubscription.
   Spawning more runnable domains than cores is a large constant-factor
   loss (the workers time-slice against each other), so the cap is the
   default and oversubscription is a testing device. *)
let effective_fanout t =
  match t.kind with
  | Seq -> 1
  | Pool p ->
    if t.config.oversubscribe then p.pool_domains
    else min p.pool_domains (hardware_parallelism ())

let worker_loop pool =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.epoch = !seen && not pool.stop do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with
      | None -> ()
      | Some f -> (
        try f ()
        with e ->
          Mutex.lock pool.mutex;
          if pool.failure = None then pool.failure <- Some e;
          Mutex.unlock pool.mutex));
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let shutdown t =
  match t.kind with
  | Seq -> ()
  | Pool pool ->
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.handles;
    pool.handles <- []

let env_domains () =
  match Sys.getenv_opt "ECHO_DOMAINS" with
  | None | Some "" -> hardware_parallelism ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "ECHO_DOMAINS=%S: expected a positive integer (number of worker \
            domains), e.g. ECHO_DOMAINS=4"
           s))

let create ?domains ?oversubscribe ?blocking_threshold ?min_fanout_work
    ?chunks_per_domain () =
  let d = match domains with Some d -> d | None -> env_domains () in
  if d < 1 then invalid_arg "Parallel.create: domains must be >= 1";
  let config =
    {
      blocking_threshold =
        Option.value blocking_threshold ~default:default_config.blocking_threshold;
      min_fanout_work =
        Option.value min_fanout_work ~default:default_config.min_fanout_work;
      chunks_per_domain =
        Option.value chunks_per_domain ~default:default_config.chunks_per_domain;
      oversubscribe =
        Option.value oversubscribe ~default:default_config.oversubscribe;
    }
  in
  if config.chunks_per_domain < 1 then
    invalid_arg "Parallel.create: chunks_per_domain must be >= 1";
  if config.min_fanout_work < 0 then
    invalid_arg "Parallel.create: min_fanout_work must be >= 0";
  (* Never spawn a worker the fan-out cap makes unusable. A parked domain
     is not free: every minor collection is a stop-the-world handshake
     across all live domains, which taxes every allocation in the process
     (measured ~2x per-step slowdown on a 1-core machine with idle
     workers). Unless the handle oversubscribes, size the pool at the
     hardware; asking for more parallelism than the machine has then
     degrades gracefully to what it can actually deliver. *)
  let d = if config.oversubscribe then d else min d (hardware_parallelism ()) in
  if d = 1 then { kind = Seq; config }
  else begin
    let pool =
      {
        pool_domains = d;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        next = Atomic.make 0;
        epoch = 0;
        job = None;
        pending = 0;
        failure = None;
        stop = false;
        handles = [];
      }
    in
    let t = { kind = Pool pool; config } in
    pool.handles <-
      List.init (d - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    at_exit (fun () -> shutdown t);
    t
  end

(* A second handle over the same pool (or Seq) with some config fields
   replaced. The workers are shared; only the per-call execution
   parameters differ, which is what lets one process hold executors
   compiled under different blocking thresholds. *)
let with_config ?oversubscribe ?blocking_threshold ?min_fanout_work
    ?chunks_per_domain t =
  let c = t.config in
  {
    t with
    config =
      {
        blocking_threshold =
          Option.value blocking_threshold ~default:c.blocking_threshold;
        min_fanout_work =
          Option.value min_fanout_work ~default:c.min_fanout_work;
        chunks_per_domain =
          Option.value chunks_per_domain ~default:c.chunks_per_domain;
        oversubscribe = Option.value oversubscribe ~default:c.oversubscribe;
      };
  }

(* Balanced contiguous partition of [0, n) into [parts] chunks: a pure
   function of (n, parts), independent of which domain runs which chunk. *)
let chunk_bounds n parts i = ((i * n) / parts, ((i + 1) * n) / parts)

let run_pool pool ~n ~parts body =
  Mutex.lock pool.mutex;
  Atomic.set pool.next 0;
  let drain () =
    let continue = ref true in
    while !continue do
      let c = Atomic.fetch_and_add pool.next 1 in
      if c >= parts then continue := false
      else begin
        let lo, hi = chunk_bounds n parts c in
        if lo < hi then body lo hi
      end
    done
  in
  pool.job <- Some drain;
  pool.pending <- pool.pool_domains - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  (* The caller drains alongside the workers; its exception must not skip
     the join. *)
  let caller_failure = try drain (); None with e -> Some e in
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.work_done pool.mutex
  done;
  pool.job <- None;
  let worker_failure = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.mutex;
  match (caller_failure, worker_failure) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

let parallel_for t ?(work = 1) ~n body =
  if n > 0 then begin
    match t.kind with
    | Seq -> body 0 n
    | Pool pool ->
      let c = t.config in
      let fan =
        if c.oversubscribe then pool.pool_domains
        else min pool.pool_domains (hardware_parallelism ())
      in
      let total_work = n * max 1 work in
      (* Fanning out costs tens of microseconds of wakeup/join latency;
         below the work gate the sequential loop is strictly faster. *)
      if fan <= 1 || total_work < c.min_fanout_work then body 0 n
      else begin
        (* More chunks than domains so a straggler on a ragged row range
           can be stolen from, but never chunks smaller than a quarter of
           the fan-out gate — stealing granularity must stay coarse
           enough to amortize the atomic claim. *)
        let quantum = max 1 (c.min_fanout_work / 4) in
        let parts =
          min
            (fan * c.chunks_per_domain)
            (max 1 (total_work / quantum))
        in
        let parts = min parts n in
        if parts <= 1 then body 0 n else run_pool pool ~n ~parts body
      end
  end

(* The process-wide runtime: sized by ECHO_DOMAINS on first use. *)
let default_runtime : t option ref = ref None

let default () =
  match !default_runtime with
  | Some t -> t
  | None ->
    let t = create ~domains:(env_domains ()) () in
    default_runtime := Some t;
    t

let set_default_domains d =
  (match !default_runtime with Some t -> shutdown t | None -> ());
  let t = create ~domains:d () in
  default_runtime := Some t;
  t
