(** Deterministic pseudo-random number generation (SplitMix64).

    Every source of randomness in the repository flows through this module so
    that runs are reproducible and recomputation of graph nodes that sample
    (e.g. dropout masks) replays bit-identical values. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same future stream. *)

val split : t -> t
(** Draw a new, statistically independent generator from [t]'s stream. *)

val state : t -> int64
(** Current raw state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a state captured with {!state}. The generator then replays the
    same future stream (any buffered normal sample is discarded, matching a
    freshly-seeded generator at that state). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float

val normal : t -> float
(** Standard normal via Box-Muller. *)

val fnv1a : string -> int
(** Stable FNV-1a hash of a string, folded to a non-negative [int]. Unlike
    [Hashtbl.hash] the value is pinned by this implementation, not the
    stdlib version, so it is safe to derive persistent seeds and
    content-addressed keys from it. *)
