(* Memory-budget autotuning: "make this model fit in X memory with the least
   recomputation overhead" — the runtime-tool direction the Echo authors
   describe. The autotuner escalates the overhead budget until the measured
   peak fits, and reports which plan it shipped.

   Run with: dune exec examples/memory_budget.exe *)

open Echo_models
open Echo_core
open Echo_exec
module Pipeline = Echo_compiler.Pipeline

let () =
  let device = Echo_gpusim.Device.titan_xp in
  let nmt = Nmt.build { Nmt.gnmt_like with Nmt.batch = 64 } in
  let planned =
    Pipeline.of_model nmt.Nmt.model |> Pipeline.differentiate
    |> Pipeline.optimize ~enabled:false |> Pipeline.rewrite ~device
    |> Pipeline.plan
  in
  let graph = planned.Pipeline.graph in
  let baseline = planned.Pipeline.memplan.Memplan.live_peak_bytes in
  Format.printf "baseline peak: %s@.@." (Footprint.human baseline);
  List.iter
    (fun frac ->
      let target = int_of_float (frac *. float_of_int baseline) in
      match Autotune.for_memory_target ~device graph ~target_bytes:target with
      | Some outcome ->
        Format.printf
          "target %4.0f%% (%9s): shipped %-12s peak %9s at %+5.1f%% overhead@."
          (100.0 *. frac) (Footprint.human target)
          outcome.Autotune.report.Pass.policy
          (Footprint.human
             outcome.Autotune.report.Pass.optimised_mem.Memplan.live_peak_bytes)
          (100.0 *. Pass.overhead outcome.Autotune.report)
      | None ->
        Format.printf "target %4.0f%%: infeasible — even recompute-heavy plans exceed it@."
          (100.0 *. frac))
    [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5 ]
