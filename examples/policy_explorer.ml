(* Policy explorer: train the same small LSTM LM under the stash-all
   baseline and under Echo, and confirm that (a) the per-step losses are
   exactly identical (the rewrite preserves training semantics bit for bit)
   and (b) perplexity falls on the synthetic Zipf-Markov corpus — while the
   Echo graph needs less simulated GPU memory.

   Run with: dune exec examples/policy_explorer.exe *)

open Echo_models
open Echo_core
open Echo_train
open Echo_workloads
module Pipeline = Echo_compiler.Pipeline

let () =
  let cfg =
    {
      Language_model.ptb_default with
      vocab = 120;
      embed = 32;
      hidden = 32;
      layers = 2;
      seq_len = 12;
      batch = 8;
      dropout = 0.2;
    }
  in
  let lm = Language_model.build cfg in
  let training = Pipeline.differentiate (Pipeline.of_model lm.Language_model.model) in
  let graph = training.Pipeline.autodiff.Echo_autodiff.Grad.graph in
  let device = Echo_gpusim.Device.titan_xp in
  let rw =
    Pipeline.rewrite ~device
      ~policy:(Pass.Echo { overhead_budget = 0.10 })
      (Pipeline.optimize ~enabled:false training)
  in
  let echo_graph = rw.Pipeline.graph in
  Format.printf "%a@.@." Pass.pp_report rw.Pipeline.report;

  let stream = Corpus.generate ~seed:99 ~vocab:cfg.vocab ~length:60_000 in
  let steps = 30 in
  let batches =
    List.map
      (fun (tokens, labels) ->
        [ (lm.Language_model.token_input, tokens);
          (lm.Language_model.label_input, labels) ])
      (Corpus.lm_batches stream ~batch:cfg.batch ~seq_len:cfg.seq_len ~steps)
  in
  let run g =
    let optimizer = Optimizer.create (Optimizer.Sgd { lr = 0.5 }) in
    Loop.train ~graph:g
      ~params:(Params.bindings lm.Language_model.model.Model.params)
      ~optimizer ~clip_norm:5.0 ~batches ()
  in
  let base = run graph in
  let echo = run echo_graph in
  let max_diff =
    List.fold_left2
      (fun acc a b -> Float.max acc (Float.abs (a -. b)))
      0.0 base.Loop.losses echo.Loop.losses
  in
  let first = List.nth base.Loop.losses 0 in
  let last = List.nth base.Loop.losses (steps - 1) in
  Format.printf "steps=%d  ppl %.1f -> %.1f  max |loss(base)-loss(echo)| = %g@."
    steps (Loop.perplexity first) (Loop.perplexity last) max_diff;
  assert (max_diff = 0.0);
  assert (last < first);
  Format.printf "Echo trains bit-identically to the baseline, and learning happens.@."
