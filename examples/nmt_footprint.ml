(* NMT footprint study: the paper's headline workload. Builds the GNMT-like
   attention seq2seq model at increasing batch sizes and reports, per
   policy, the peak training footprint, the reduction factor, the simulated
   iteration overhead, and whether the configuration fits a Titan Xp
   (12 GiB).

   Run with: dune exec examples/nmt_footprint.exe *)

open Echo_models
open Echo_core
open Echo_exec
module Pipeline = Echo_compiler.Pipeline

let () =
  let device = Echo_gpusim.Device.titan_xp in
  let policies =
    [
      Pass.Stash_all;
      Pass.Checkpoint_sqrt;
      Pass.Echo { overhead_budget = 0.03 };
      Pass.Echo { overhead_budget = 0.10 };
      Pass.Echo { overhead_budget = 0.30 };
    ]
  in
  Format.printf
    "NMT-with-attention (H=512, 4+4 layers, Tsrc=Ttgt=30) on %s (%.0f GiB)@.@."
    device.Echo_gpusim.Device.name
    (float_of_int device.Echo_gpusim.Device.memory_bytes /. (1024. ** 3.));
  List.iter
    (fun batch ->
      let cfg = { Nmt.gnmt_like with batch } in
      let nmt = Nmt.build cfg in
      let optimized =
        Pipeline.of_model nmt.Nmt.model |> Pipeline.differentiate
        |> Pipeline.optimize ~enabled:false
      in
      Format.printf "batch=%d:@." batch;
      List.iter
        (fun policy ->
          let report =
            (Pipeline.rewrite ~device ~policy optimized).Pipeline.report
          in
          let total =
            Footprint.total_bytes report.Pass.optimised_mem
              ~optimizer:Footprint.Momentum
          in
          Format.printf "  %-18s peak %-10s (%4.2fx)  +%4.1f%% time  %s@."
            report.Pass.policy (Footprint.human total) (Pass.reduction report)
            (100.0 *. Pass.overhead report)
            (if total <= device.Echo_gpusim.Device.memory_bytes then "fits"
             else "OOM");
          ())
        policies;
      Format.printf "@.")
    [ 32; 64; 128 ]
