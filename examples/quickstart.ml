(* Quickstart: lower a small LSTM language model through the full staged
   compilation pipeline — source -> training -> optimized -> rewritten ->
   planned -> fused -> executable — and verify that the compiled slot-based
   executor
   (a) computes bitwise-identical results to the reference interpreter and
   (b) the Echo rewrite needs less simulated GPU memory.

   Run with: dune exec examples/quickstart.exe *)

open Echo_tensor
open Echo_ir
open Echo_models
open Echo_core
module Pipeline = Echo_compiler.Pipeline
module Executor = Echo_compiler.Executor

let synthetic_feeds (lm : Language_model.t) =
  let rng = Rng.create 1234 in
  let ids node =
    Tensor.init (Node.shape node) (fun _ ->
      float_of_int (Rng.int rng lm.cfg.vocab))
  in
  [ (lm.token_input, ids lm.token_input); (lm.label_input, ids lm.label_input) ]
  @ Params.bindings lm.model.Model.params

let () =
  let cfg =
    {
      Language_model.ptb_default with
      vocab = 300;
      embed = 48;
      hidden = 48;
      seq_len = 16;
      batch = 8;
      layers = 2;
      dropout = 0.25;
    }
  in
  let lm = Language_model.build cfg in
  Format.printf "model: %a@." Model.describe lm.model;

  (* Stage by stage, each an inspectable value. *)
  let training = Pipeline.differentiate (Pipeline.of_model lm.model) in
  let graph = training.Pipeline.autodiff.Echo_autodiff.Grad.graph in
  Format.printf "training graph: %a@." Graph.pp_stats graph;

  let device = Echo_gpusim.Device.titan_xp in
  let feeds = synthetic_feeds lm in
  let baseline_outputs = Echo_exec.Interp.eval graph ~feeds in
  let optimized = Pipeline.optimize ~enabled:false training in

  (* The kernel runtime every compiled executor below partitions work over.
     Sized by ECHO_DOMAINS (default: the machine's recommended count);
     results are bit-identical at any domain count, which the comparison
     against the sequential interpreter exercises for real here. *)
  let runtime = Parallel.default () in
  Format.printf "kernel runtime: %d domain(s)@." (Parallel.domains runtime);

  Format.printf "@.%-18s %-30s %-8s %-24s %s@." "policy" "footprint" "factor"
    "sim time/iter" "bitwise-equal";
  List.iter
    (fun policy ->
      let exe =
        Pipeline.rewrite ~device ~policy optimized |> Pipeline.plan
        |> Pipeline.fuse |> Pipeline.compile ~runtime
      in
      let report =
        (Pipeline.planned_of exe).Pipeline.rewritten.Pipeline.report
      in
      (* The rewritten graph runs through the compiled slot-based executor;
         the unrewritten baseline ran through the reference interpreter. *)
      let outputs = Executor.eval (Pipeline.executor exe) ~feeds in
      let equal = List.for_all2 Tensor.equal baseline_outputs outputs in
      Format.printf "%-18s %12s -> %-12s %5.2fx  %8.2f -> %8.2f ms  %b@."
        report.Pass.policy
        (Echo_exec.Footprint.human
           report.Pass.baseline_mem.Echo_exec.Memplan.live_peak_bytes)
        (Echo_exec.Footprint.human
           report.Pass.optimised_mem.Echo_exec.Memplan.live_peak_bytes)
        (Pass.reduction report)
        (1000.0 *. report.Pass.baseline_time_s)
        (1000.0 *. report.Pass.optimised_time_s)
        equal;
      assert equal)
    Pass.default_policies;

  (* The executable stage in one call, with its per-stage summary. *)
  let exe = Pipeline.compile_source ~device ~optimize:false
      ~policy:(Pass.Echo { overhead_budget = 0.10 })
      (Pipeline.of_model lm.model)
  in
  Format.printf "@.%a@." Pipeline.describe exe;
  Format.printf
    "@.All policies preserved training semantics exactly — compiled executor \
     matches the interpreter bit for bit.@."
