(* DeepSpeech2 generality check: Echo on a conv + bidirectional-LSTM speech
   model. Convolution feature maps are expensive to recompute (the pass must
   leave them alone or spend real budget), while the biLSTM stash behaves
   like the NMT encoder — this exercises the cost-benefit analysis on a
   mixed graph.

   Run with: dune exec examples/deepspeech_sweep.exe *)

open Echo_models
open Echo_core
module Pipeline = Echo_compiler.Pipeline

let () =
  let device = Echo_gpusim.Device.titan_xp in
  List.iter
    (fun (label, cfg) ->
      let ds2 = Deepspeech.build cfg in
      let optimized =
        Pipeline.of_model ds2.Deepspeech.model |> Pipeline.differentiate
        |> Pipeline.optimize ~enabled:false
      in
      Format.printf "=== %s (%d output frames) ===@." label ds2.Deepspeech.out_frames;
      List.iter
        (fun policy ->
          let rw = Pipeline.rewrite ~device ~policy optimized in
          Format.printf "  %a@." Pass.pp_report rw.Pipeline.report)
        [
          Pass.Stash_all;
          Pass.Checkpoint_sqrt;
          Pass.Echo { overhead_budget = 0.03 };
          Pass.Echo { overhead_budget = 0.30 };
        ];
      Format.printf "@.")
    [
      ("ds2-small (3 x biLSTM-400)",
       { Deepspeech.ds2_like with rnn_layers = 3; rnn_hidden = 400; time = 64 });
      ("ds2 (5 x biLSTM-800)", Deepspeech.ds2_like);
    ]
