bench/harness.ml: Deepspeech Echo_autodiff Echo_core Echo_exec Echo_gpusim Echo_models Footprint Format Hashtbl Language_model List Model Nmt Option Params Pass Recurrent Transformer
