bench/main.mli:
