lib/workloads/corpus.ml: Array Echo_tensor List Rng Tensor
