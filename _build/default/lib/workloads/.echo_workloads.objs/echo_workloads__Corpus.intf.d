lib/workloads/corpus.mli: Echo_tensor Tensor
