(** Tensor shapes.

    A shape is a non-empty array of strictly positive dimension sizes. Rank-0
    scalars are represented as [ [||] ]. Shapes are immutable by convention:
    functions never mutate their argument and callers must not mutate a shape
    obtained from this module. *)

type t = int array

val scalar : t
(** The rank-0 shape. *)

val of_list : int list -> t
(** [of_list dims] builds a shape, validating every dimension.
    @raise Invalid_argument if any dimension is [< 1]. *)

val numel : t -> int
(** Number of elements: the product of all dimensions ([1] for scalars). *)

val rank : t -> int

val equal : t -> t -> bool

val dim : t -> int -> int
(** [dim s i] is the [i]-th dimension.
    @raise Invalid_argument if [i] is out of bounds. *)

val concat_result : axis:int -> t -> t -> t
(** Shape of concatenating two tensors along [axis].
    @raise Invalid_argument if shapes disagree off-axis. *)

val slice_result : axis:int -> lo:int -> hi:int -> t -> t
(** Shape of slicing [lo, hi) along [axis].
    @raise Invalid_argument if the range is empty or out of bounds. *)

val strides : t -> int array
(** Row-major strides. The stride of the last axis is [1]. *)

val ravel : t -> int array -> int
(** [ravel s idx] is the linear row-major offset of multi-index [idx]. *)

val unravel : t -> int -> int array
(** Inverse of {!ravel}. *)

val validate : t -> unit
(** @raise Invalid_argument if any dimension is [< 1]. *)

val to_string : t -> string
(** E.g. ["[2x3x4]"]; ["[]"] for scalars. *)

val pp : Format.formatter -> t -> unit
