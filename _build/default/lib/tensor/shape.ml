type t = int array

let scalar : t = [||]

let validate s =
  Array.iter
    (fun d ->
      if d < 1 then
        invalid_arg (Printf.sprintf "Shape.validate: dimension %d < 1" d))
    s

let of_list dims =
  let s = Array.of_list dims in
  validate s;
  s

let numel s = Array.fold_left ( * ) 1 s
let rank s = Array.length s

let equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

let dim s i =
  if i < 0 || i >= Array.length s then
    invalid_arg (Printf.sprintf "Shape.dim: axis %d out of bounds for rank %d" i (Array.length s));
  s.(i)

let concat_result ~axis a b =
  if Array.length a <> Array.length b then
    invalid_arg "Shape.concat_result: rank mismatch";
  if axis < 0 || axis >= Array.length a then
    invalid_arg "Shape.concat_result: axis out of bounds";
  Array.iteri
    (fun i d ->
      if i <> axis && d <> b.(i) then
        invalid_arg "Shape.concat_result: off-axis dimension mismatch")
    a;
  Array.mapi (fun i d -> if i = axis then d + b.(i) else d) a

let slice_result ~axis ~lo ~hi s =
  if axis < 0 || axis >= Array.length s then
    invalid_arg "Shape.slice_result: axis out of bounds";
  if lo < 0 || hi > s.(axis) || lo >= hi then
    invalid_arg
      (Printf.sprintf "Shape.slice_result: bad range [%d,%d) for dim %d" lo hi s.(axis));
  Array.mapi (fun i d -> if i = axis then hi - lo else d) s

let strides s =
  let n = Array.length s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let ravel s idx =
  let st = strides s in
  let off = ref 0 in
  Array.iteri (fun i k -> off := !off + (k * st.(i))) idx;
  !off

let unravel s off =
  let st = strides s in
  let idx = Array.make (Array.length s) 0 in
  let rem = ref off in
  Array.iteri
    (fun i stride ->
      idx.(i) <- !rem / stride;
      rem := !rem mod stride)
    st;
  idx

let to_string s =
  if Array.length s = 0 then "[]"
  else "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp fmt s = Format.pp_print_string fmt (to_string s)
