type t = { shape : Shape.t; data : float array }

(* {1 Construction} *)

let create shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.create: %d elements for shape %s"
         (Array.length data) (Shape.to_string shape));
  { shape; data }

let full shape v = create shape (Array.make (Shape.numel shape) v)
let zeros shape = full shape 0.0
let ones shape = full shape 1.0
let scalar v = create Shape.scalar [| v |]

let init shape f =
  let n = Shape.numel shape in
  let data = Array.init n (fun off -> f (Shape.unravel shape off)) in
  create shape data

let of_list1 xs = create [| List.length xs |] (Array.of_list xs)

let of_list2 rows =
  match rows with
  | [] -> invalid_arg "Tensor.of_list2: empty"
  | first :: _ ->
    let m = List.length rows and n = List.length first in
    List.iter
      (fun r -> if List.length r <> n then invalid_arg "Tensor.of_list2: ragged rows")
      rows;
    create [| m; n |] (Array.of_list (List.concat rows))

let uniform rng shape ~lo ~hi =
  create shape (Array.init (Shape.numel shape) (fun _ -> Rng.uniform rng ~lo ~hi))

let normal rng shape ~mean ~std =
  create shape (Array.init (Shape.numel shape) (fun _ -> mean +. (std *. Rng.normal rng)))

let xavier rng shape =
  if Shape.rank shape <> 2 then invalid_arg "Tensor.xavier: expects a 2-D shape";
  let fan_out = shape.(0) and fan_in = shape.(1) in
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  uniform rng shape ~lo:(-.bound) ~hi:bound

(* {1 Access} *)

let shape t = t.shape
let numel t = Array.length t.data
let get t idx = t.data.(Shape.ravel t.shape idx)
let set t idx v = t.data.(Shape.ravel t.shape idx) <- v
let get1 t i = t.data.(i)
let set1 t i v = t.data.(i) <- v
let to_array t = Array.copy t.data
let copy t = { shape = t.shape; data = Array.copy t.data }

(* {1 Elementwise} *)

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg
      (Printf.sprintf "Tensor.map2: shape mismatch %s vs %s"
         (Shape.to_string a.shape) (Shape.to_string b.shape));
  { shape = a.shape; data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let neg = map (fun x -> -.x)
let scale k = map (fun x -> k *. x)
let add_scalar k = map (fun x -> k +. x)
let sigmoid = map (fun x -> 1.0 /. (1.0 +. exp (-.x)))
let tanh_ = map tanh
let relu = map (fun x -> if x > 0.0 then x else 0.0)
let exp_ = map exp
let log_ = map log
let sqrt_ = map sqrt
let sq = map (fun x -> x *. x)
let pow_const p = map (fun x -> Float.pow x p)
let recip = map (fun x -> 1.0 /. x)
let sign = map (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)

(* {1 Linear algebra} *)

let matmul ?(trans_a = false) ?(trans_b = false) a b =
  if Shape.rank a.shape <> 2 || Shape.rank b.shape <> 2 then
    invalid_arg "Tensor.matmul: operands must be 2-D";
  let am = a.shape.(0) and an = a.shape.(1) in
  let bm = b.shape.(0) and bn = b.shape.(1) in
  let m, k = if trans_a then (an, am) else (am, an) in
  let k', n = if trans_b then (bn, bm) else (bm, bn) in
  if k <> k' then
    invalid_arg
      (Printf.sprintf "Tensor.matmul: inner dims %d vs %d (%s%s x %s%s)" k k'
         (Shape.to_string a.shape)
         (if trans_a then "^T" else "")
         (Shape.to_string b.shape)
         (if trans_b then "^T" else ""));
  let out = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  (* Index helpers honouring the logical transposes. *)
  let a_at i l = if trans_a then ad.((l * an) + i) else ad.((i * an) + l) in
  let b_at l j = if trans_b then bd.((j * bn) + l) else bd.((l * bn) + j) in
  for i = 0 to m - 1 do
    for l = 0 to k - 1 do
      let ail = a_at i l in
      if ail <> 0.0 then begin
        let row = i * n in
        for j = 0 to n - 1 do
          out.(row + j) <- out.(row + j) +. (ail *. b_at l j)
        done
      end
    done
  done;
  create [| m; n |] out

let add_bias m b =
  if Shape.rank m.shape <> 2 || Shape.rank b.shape <> 1 then
    invalid_arg "Tensor.add_bias: expects 2-D matrix and 1-D bias";
  let rows = m.shape.(0) and cols = m.shape.(1) in
  if b.shape.(0) <> cols then invalid_arg "Tensor.add_bias: bias length mismatch";
  let out = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.((i * cols) + j) <- m.data.((i * cols) + j) +. b.data.(j)
    done
  done;
  create m.shape out

let outer a b =
  if Shape.rank a.shape <> 1 || Shape.rank b.shape <> 1 then
    invalid_arg "Tensor.outer: expects 1-D operands";
  let m = a.shape.(0) and n = b.shape.(0) in
  init [| m; n |] (fun idx -> a.data.(idx.(0)) *. b.data.(idx.(1)))

(* {1 Shape manipulation} *)

let reshape t shape =
  if Shape.numel shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %s -> %s" (Shape.to_string t.shape)
         (Shape.to_string shape));
  { shape; data = Array.copy t.data }

let transpose2d t =
  if Shape.rank t.shape <> 2 then invalid_arg "Tensor.transpose2d: expects 2-D";
  let m = t.shape.(0) and n = t.shape.(1) in
  init [| n; m |] (fun idx -> t.data.((idx.(1) * n) + idx.(0)))

(* Iterate over the cartesian product of [outer] positions before [axis],
   the axis range, and [inner] positions after it. Row-major layout means a
   tensor decomposes as outer * axis_dim * inner contiguous blocks. *)
let axis_blocks shape axis =
  let outer = ref 1 and inner = ref 1 in
  Array.iteri
    (fun i d -> if i < axis then outer := !outer * d else if i > axis then inner := !inner * d)
    shape;
  (!outer, !inner)

let slice ~axis ~lo ~hi t =
  let out_shape = Shape.slice_result ~axis ~lo ~hi t.shape in
  let d = t.shape.(axis) in
  let outer, inner = axis_blocks t.shape axis in
  let width = hi - lo in
  let out = Array.make (outer * width * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to width - 1 do
      Array.blit t.data
        (((o * d) + lo + a) * inner)
        out
        (((o * width) + a) * inner)
        inner
    done
  done;
  create out_shape out

let concat ~axis ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat: empty list"
  | first :: rest ->
    let out_shape =
      List.fold_left (fun acc t -> Shape.concat_result ~axis acc t.shape) first.shape rest
    in
    let outer, inner = axis_blocks first.shape axis in
    let total = out_shape.(axis) in
    let out = Array.make (Shape.numel out_shape) 0.0 in
    let offset = ref 0 in
    List.iter
      (fun t ->
        let d = t.shape.(axis) in
        for o = 0 to outer - 1 do
          Array.blit t.data
            (o * d * inner)
            out
            (((o * total) + !offset) * inner)
            (d * inner)
        done;
        offset := !offset + d)
      ts;
    create out_shape out

let pad_slice ~axis ~lo ~full t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.pad_slice: bad axis";
  let d = t.shape.(axis) in
  if lo < 0 || lo + d > full then invalid_arg "Tensor.pad_slice: slice does not fit";
  let out_shape = Array.mapi (fun i k -> if i = axis then full else k) t.shape in
  let outer, inner = axis_blocks t.shape axis in
  let out = Array.make (Shape.numel out_shape) 0.0 in
  for o = 0 to outer - 1 do
    Array.blit t.data (o * d * inner) out (((o * full) + lo) * inner) (d * inner)
  done;
  create out_shape out

(* {1 Reductions} *)

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_elt t = Array.fold_left Float.max neg_infinity t.data

let reduce_shape ~axis ~keepdims shape =
  if keepdims then Array.mapi (fun i d -> if i = axis then 1 else d) shape
  else begin
    match Array.length shape with
    | 1 -> Shape.scalar
    | n ->
      let out = Array.make (n - 1) 0 in
      let j = ref 0 in
      Array.iteri
        (fun i d ->
          if i <> axis then begin
            out.(!j) <- d;
            incr j
          end)
        shape;
      out
  end

let reduce_sum ~axis ~keepdims t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.reduce_sum: bad axis";
  let d = t.shape.(axis) in
  let outer, inner = axis_blocks t.shape axis in
  let out = Array.make (outer * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to d - 1 do
      let src = ((o * d) + a) * inner in
      let dst = o * inner in
      for k = 0 to inner - 1 do
        out.(dst + k) <- out.(dst + k) +. t.data.(src + k)
      done
    done
  done;
  create (reduce_shape ~axis ~keepdims t.shape) out

let reduce_mean ~axis ~keepdims t =
  let d = float_of_int t.shape.(axis) in
  scale (1.0 /. d) (reduce_sum ~axis ~keepdims t)

let broadcast_axis ~axis ~n t =
  if axis < 0 || axis >= Shape.rank t.shape then invalid_arg "Tensor.broadcast_axis: bad axis";
  if t.shape.(axis) <> 1 then invalid_arg "Tensor.broadcast_axis: axis dim must be 1";
  let outer, inner = axis_blocks t.shape axis in
  let out_shape = Array.mapi (fun i d -> if i = axis then n else d) t.shape in
  let out = Array.make (outer * n * inner) 0.0 in
  for o = 0 to outer - 1 do
    for a = 0 to n - 1 do
      Array.blit t.data (o * inner) out (((o * n) + a) * inner) inner
    done
  done;
  create out_shape out

let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

(* {1 Neural-network kernels} *)

(* Softmax over the last axis, shared by softmax / log_softmax / xent. *)
let rows_of t =
  let r = Shape.rank t.shape in
  if r = 0 then invalid_arg "Tensor: scalar has no softmax axis";
  let cols = t.shape.(r - 1) in
  (numel t / cols, cols)

let softmax t =
  let rows, cols = rows_of t in
  let out = Array.make (numel t) 0.0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      if t.data.(base + j) > !m then m := t.data.(base + j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (t.data.(base + j) -. !m) in
      out.(base + j) <- e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      out.(base + j) <- out.(base + j) /. !z
    done
  done;
  create t.shape out

let log_softmax t =
  let rows, cols = rows_of t in
  let out = Array.make (numel t) 0.0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      if t.data.(base + j) > !m then m := t.data.(base + j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      z := !z +. exp (t.data.(base + j) -. !m)
    done;
    let lz = !m +. log !z in
    for j = 0 to cols - 1 do
      out.(base + j) <- t.data.(base + j) -. lz
    done
  done;
  create t.shape out

let check_labels ~logits ~labels =
  if Shape.rank (shape logits) <> 2 then invalid_arg "cross_entropy: logits must be 2-D";
  if Shape.rank (shape labels) <> 1 then invalid_arg "cross_entropy: labels must be 1-D";
  let b = (shape logits).(0) in
  if (shape labels).(0) <> b then invalid_arg "cross_entropy: batch mismatch";
  b

let cross_entropy ~logits ~labels =
  let b = check_labels ~logits ~labels in
  let v = (shape logits).(1) in
  let lsm = log_softmax logits in
  let acc = ref 0.0 in
  for i = 0 to b - 1 do
    let cls = int_of_float labels.data.(i) in
    if cls < 0 || cls >= v then invalid_arg "cross_entropy: label out of range";
    acc := !acc -. lsm.data.((i * v) + cls)
  done;
  !acc /. float_of_int b

let cross_entropy_grad ~logits ~labels =
  let b = check_labels ~logits ~labels in
  let v = (shape logits).(1) in
  let sm = softmax logits in
  let out = to_array sm in
  let inv_b = 1.0 /. float_of_int b in
  for i = 0 to b - 1 do
    let cls = int_of_float labels.data.(i) in
    out.((i * v) + cls) <- out.((i * v) + cls) -. 1.0
  done;
  for i = 0 to Array.length out - 1 do
    out.(i) <- out.(i) *. inv_b
  done;
  create (shape logits) out

let dropout_mask ~seed ~p shape =
  if p < 0.0 || p >= 1.0 then invalid_arg "Tensor.dropout_mask: p must be in [0,1)";
  let rng = Rng.create seed in
  let keep = 1.0 /. (1.0 -. p) in
  create shape
    (Array.init (Shape.numel shape) (fun _ -> if Rng.float rng < p then 0.0 else keep))

let embedding ~table ~ids =
  if Shape.rank (shape table) <> 2 then invalid_arg "Tensor.embedding: table must be 2-D";
  if Shape.rank (shape ids) <> 1 then invalid_arg "Tensor.embedding: ids must be 1-D";
  let v = (shape table).(0) and d = (shape table).(1) in
  let b = (shape ids).(0) in
  let out = Array.make (b * d) 0.0 in
  for i = 0 to b - 1 do
    let id = int_of_float ids.data.(i) in
    if id < 0 || id >= v then invalid_arg "Tensor.embedding: id out of range";
    Array.blit table.data (id * d) out (i * d) d
  done;
  create [| b; d |] out

let embedding_grad ~table_shape ~ids ~grad_out =
  if Shape.rank table_shape <> 2 then invalid_arg "Tensor.embedding_grad: table must be 2-D";
  let d = table_shape.(1) in
  let b = (shape ids).(0) in
  if not (Shape.equal (shape grad_out) [| b; d |]) then
    invalid_arg "Tensor.embedding_grad: grad_out shape mismatch";
  let out = Array.make (Shape.numel table_shape) 0.0 in
  for i = 0 to b - 1 do
    let id = int_of_float ids.data.(i) in
    for j = 0 to d - 1 do
      out.((id * d) + j) <- out.((id * d) + j) +. grad_out.data.((i * d) + j)
    done
  done;
  create table_shape out

(* {1 Convolution (naive direct)} *)

let conv_out_dim ~stride ~pad ~k dim = ((dim + (2 * pad) - k) / stride) + 1

let conv2d ~stride ~pad ~input ~kernel =
  if Shape.rank (shape input) <> 4 || Shape.rank (shape kernel) <> 4 then
    invalid_arg "Tensor.conv2d: expects 4-D input and kernel";
  let b = (shape input).(0) and cin = (shape input).(1) in
  let h = (shape input).(2) and w = (shape input).(3) in
  let cout = (shape kernel).(0) and cin' = (shape kernel).(1) in
  let kh = (shape kernel).(2) and kw = (shape kernel).(3) in
  if cin <> cin' then invalid_arg "Tensor.conv2d: channel mismatch";
  let oh = conv_out_dim ~stride ~pad ~k:kh h and ow = conv_out_dim ~stride ~pad ~k:kw w in
  if oh < 1 || ow < 1 then invalid_arg "Tensor.conv2d: output collapses to zero";
  let out = zeros [| b; cout; oh; ow |] in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = ref 0.0 in
          for ci = 0 to cin - 1 do
            for ky = 0 to kh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy >= 0 && iy < h then
                for kx = 0 to kw - 1 do
                  let ix = (ox * stride) + kx - pad in
                  if ix >= 0 && ix < w then
                    acc :=
                      !acc
                      +. get input [| n; ci; iy; ix |] *. get kernel [| co; ci; ky; kx |]
                done
            done
          done;
          set out [| n; co; oy; ox |] !acc
        done
      done
    done
  done;
  out

let conv2d_grad_input ~stride ~pad ~input_shape ~kernel ~grad_out =
  let b = input_shape.(0) and cin = input_shape.(1) in
  let h = input_shape.(2) and w = input_shape.(3) in
  let cout = (shape kernel).(0) in
  let kh = (shape kernel).(2) and kw = (shape kernel).(3) in
  let oh = (shape grad_out).(2) and ow = (shape grad_out).(3) in
  let out = zeros input_shape in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let g = get grad_out [| n; co; oy; ox |] in
          if g <> 0.0 then
            for ci = 0 to cin - 1 do
              for ky = 0 to kh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then
                  for kx = 0 to kw - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      set out [| n; ci; iy; ix |]
                        (get out [| n; ci; iy; ix |]
                        +. (g *. get kernel [| co; ci; ky; kx |]))
                  done
              done
            done
        done
      done
    done
  done;
  out

let conv2d_grad_kernel ~stride ~pad ~input ~kernel_shape ~grad_out =
  let b = (shape input).(0) and cin = (shape input).(1) in
  let h = (shape input).(2) and w = (shape input).(3) in
  let cout = kernel_shape.(0) in
  let kh = kernel_shape.(2) and kw = kernel_shape.(3) in
  let oh = (shape grad_out).(2) and ow = (shape grad_out).(3) in
  let out = zeros kernel_shape in
  for n = 0 to b - 1 do
    for co = 0 to cout - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let g = get grad_out [| n; co; oy; ox |] in
          if g <> 0.0 then
            for ci = 0 to cin - 1 do
              for ky = 0 to kh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then
                  for kx = 0 to kw - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      set out [| co; ci; ky; kx |]
                        (get out [| co; ci; ky; kx |]
                        +. (g *. get input [| n; ci; iy; ix |]))
                  done
              done
            done
        done
      done
    done
  done;
  out

(* {1 Comparison and printing} *)

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let m = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. b.data.(i)) in
        if d > !m then m := d)
      a.data;
    !m
  end

let approx_equal ?(tol = 1e-9) a b = max_abs_diff a b <= tol

let pp fmt t =
  Format.fprintf fmt "%s{" (Shape.to_string t.shape);
  let n = min (numel t) 16 in
  for i = 0 to n - 1 do
    if i > 0 then Format.pp_print_string fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if numel t > n then Format.pp_print_string fmt ", ...";
  Format.pp_print_string fmt "}"

let to_string t = Format.asprintf "%a" pp t
