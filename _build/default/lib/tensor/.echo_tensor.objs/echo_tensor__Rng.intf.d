lib/tensor/rng.mli:
