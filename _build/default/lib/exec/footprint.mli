(** Footprint arithmetic on top of the memory planner: optimizer state and
    human-readable reporting. *)

type optimizer = Sgd | Momentum | Adam

val state_multiplier : optimizer -> int
(** Persistent per-parameter state tensors the optimizer keeps: SGD 0,
    momentum 1, Adam 2. *)

val total_bytes : Memplan.report -> optimizer:optimizer -> int
(** Static-planner peak footprint ([live_peak]) plus optimizer state. *)

val fits : Memplan.report -> optimizer:optimizer -> budget_bytes:int -> bool

val human : int -> string
(** "512.0 MiB", "3.2 GiB", ... *)

val pp_breakdown : Format.formatter -> Memplan.report -> unit
(** One line per category at the live-peak step. *)
