(* Footprint categories used by the memory planner's breakdown reports. *)

open Echo_ir

type t =
  | Weights  (* trainable parameters *)
  | Inputs  (* mini-batch data and labels *)
  | Feature_maps  (* forward activations stashed for the backward pass *)
  | Fwd_temporaries  (* forward buffers that die within the forward pass *)
  | Gradients  (* parameter-gradient outputs *)
  | Bwd_temporaries  (* backward chain buffers, incl. recomputation clones *)
  | Workspace  (* scratch space for kernels (im2col etc.) *)

let all =
  [ Weights; Inputs; Feature_maps; Fwd_temporaries; Gradients; Bwd_temporaries; Workspace ]

let to_string = function
  | Weights -> "weights"
  | Inputs -> "inputs"
  | Feature_maps -> "feature maps"
  | Fwd_temporaries -> "fwd temporaries"
  | Gradients -> "gradients"
  | Bwd_temporaries -> "bwd temporaries"
  | Workspace -> "workspace"

let index = function
  | Weights -> 0
  | Inputs -> 1
  | Feature_maps -> 2
  | Fwd_temporaries -> 3
  | Gradients -> 4
  | Bwd_temporaries -> 5
  | Workspace -> 6

let count = 7

(* Classify a node's output buffer. [graph] supplies consumer regions. *)
let of_node graph node =
  match Node.op node with
  | Op.Variable -> Weights
  | Op.Placeholder -> Inputs
  | _ -> (
    match Node.region node with
    | Node.Backward ->
      if Graph.is_output graph (Node.id node) then Gradients else Bwd_temporaries
    | Node.Forward ->
      let stashed =
        List.exists
          (fun c -> Node.region c = Node.Backward)
          (Graph.consumers graph (Node.id node))
      in
      if stashed then Feature_maps else Fwd_temporaries)
