type optimizer = Sgd | Momentum | Adam

let state_multiplier = function Sgd -> 0 | Momentum -> 1 | Adam -> 2

let total_bytes (r : Memplan.report) ~optimizer =
  r.live_peak_bytes + (state_multiplier optimizer * r.weight_bytes)

let fits r ~optimizer ~budget_bytes = total_bytes r ~optimizer <= budget_bytes

let human bytes =
  let b = float_of_int bytes in
  if b >= 1024.0 ** 3.0 then Printf.sprintf "%.2f GiB" (b /. (1024.0 ** 3.0))
  else if b >= 1024.0 ** 2.0 then Printf.sprintf "%.1f MiB" (b /. (1024.0 ** 2.0))
  else if b >= 1024.0 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else Printf.sprintf "%d B" bytes

let pp_breakdown fmt (r : Memplan.report) =
  List.iter
    (fun (cat, bytes) ->
      Format.fprintf fmt "  %-16s %12s@\n" (Category.to_string cat) (human bytes))
    r.breakdown
