open Echo_tensor
open Echo_ir

exception Freed_too_early of string

let run graph ~feeds ~on_step =
  let liveness = Liveness.analyse graph in
  let persistent : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, tensor) ->
      if not (Shape.equal (Node.shape node) (Tensor.shape tensor)) then
        invalid_arg
          (Printf.sprintf "Arena_exec.eval: feed shape mismatch for %s"
             (Node.name node));
      Hashtbl.replace persistent (Node.id node) tensor)
    feeds;
  let live : (int, Tensor.t) Hashtbl.t = Hashtbl.create 1024 in
  let outputs : (int, Tensor.t) Hashtbl.t = Hashtbl.create 8 in
  let lookup consumer n =
    match Hashtbl.find_opt persistent (Node.id n) with
    | Some t -> t
    | None -> (
      match Hashtbl.find_opt live (Node.id n) with
      | Some t -> t
      | None ->
        raise
          (Freed_too_early
             (Printf.sprintf "%s read by %s after its buffer was recycled"
                (Node.name n) (Node.name consumer))))
  in
  List.iteri
    (fun step node ->
      if not (Hashtbl.mem persistent (Node.id node)) then begin
        (match Node.op node with
        | Op.Placeholder | Op.Variable ->
          raise (Interp.Missing_feed (Node.name node))
        | op ->
          let inputs = List.map (lookup node) (Node.inputs node) in
          let value = Interp.eval_node op (Node.shape node) inputs in
          Hashtbl.replace live (Node.id node) value;
          if Graph.is_output graph (Node.id node) then
            Hashtbl.replace outputs (Node.id node) value);
        on_step (Hashtbl.length live);
        (* Recycle everything whose last read just happened. *)
        List.iter
          (fun dying -> Hashtbl.remove live (Node.id dying))
          (Liveness.dying_at liveness step)
      end)
    (Graph.nodes graph);
  List.map
    (fun o ->
      match Hashtbl.find_opt outputs (Node.id o) with
      | Some t -> t
      | None -> Hashtbl.find persistent (Node.id o))
    (Graph.outputs graph)

let eval graph ~feeds = run graph ~feeds ~on_step:(fun _ -> ())

let max_live_values graph ~feeds =
  let peak = ref 0 in
  ignore (run graph ~feeds ~on_step:(fun n -> if n > !peak then peak := n));
  !peak
