open Echo_tensor
open Echo_ir

type result = { param : string; max_abs_err : float; max_rel_err : float }

let loss_value loss ~feeds = Interp.eval_scalar (Graph.create [ loss ]) ~feeds

let numeric_grad ~loss ~feeds ~wrt ~eps =
  let base =
    match List.assq_opt wrt feeds with
    | Some t -> t
    | None -> invalid_arg "Gradcheck.numeric_grad: wrt node is not fed"
  in
  let grad = Tensor.zeros (Tensor.shape base) in
  let perturbed delta i =
    let t = Tensor.copy base in
    Tensor.set1 t i (Tensor.get1 t i +. delta);
    let feeds = List.map (fun (n, v) -> if n == wrt then (n, t) else (n, v)) feeds in
    loss_value loss ~feeds
  in
  for i = 0 to Tensor.numel base - 1 do
    let up = perturbed eps i and down = perturbed (-.eps) i in
    Tensor.set1 grad i ((up -. down) /. (2.0 *. eps))
  done;
  grad

let compare_grads ~param ~analytic ~numeric =
  let max_abs = ref 0.0 and max_rel = ref 0.0 in
  for i = 0 to Tensor.numel numeric - 1 do
    let a = Tensor.get1 analytic i and n = Tensor.get1 numeric i in
    let abs_err = Float.abs (a -. n) in
    let rel_err = abs_err /. Float.max 1.0 (Float.abs n) in
    if abs_err > !max_abs then max_abs := abs_err;
    if rel_err > !max_rel then max_rel := rel_err
  done;
  { param; max_abs_err = !max_abs; max_rel_err = !max_rel }

let check ?(eps = 1e-5) ?(tol = 1e-5) ~loss ~feeds ~wrt () =
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt in
  let values = Interp.eval_all training.graph ~feeds in
  let results =
    List.map
      (fun (param, grad_node) ->
        let analytic = Hashtbl.find values (Node.id grad_node) in
        let numeric = numeric_grad ~loss ~feeds ~wrt:param ~eps in
        compare_grads ~param:(Node.name param) ~analytic ~numeric)
      training.grads
  in
  let failures = List.filter (fun r -> r.max_rel_err > tol) results in
  if failures = [] then Ok results else Error failures
