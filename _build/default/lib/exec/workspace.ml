(* Scratch-space requirements of individual kernels, modelled after the
   dominant real-world implementations: direct/implicit-GEMM convolution
   keeps a per-sample im2col (or col2im) panel; everything else runs in
   place. *)

open Echo_ir

let bytes_per_elt = 4

(* One sample's im2col panel: (Cin*Kh*Kw) x (OH*OW). *)
let conv_panel ~kernel_shape ~grad_or_out_shape:o =
  let cin = kernel_shape.(1) and kh = kernel_shape.(2) and kw = kernel_shape.(3) in
  cin * kh * kw * o.(2) * o.(3) * bytes_per_elt

let second_input node =
  match Node.inputs node with
  | [ _; x ] -> Node.shape x
  | _ -> invalid_arg "Workspace.bytes: malformed convolution node"

let first_input node =
  match Node.inputs node with
  | [ x; _ ] -> Node.shape x
  | _ -> invalid_arg "Workspace.bytes: malformed convolution node"

let bytes node =
  match Node.op node with
  | Op.Conv2d _ ->
    conv_panel ~kernel_shape:(second_input node) ~grad_or_out_shape:(Node.shape node)
  | Op.Conv2dGradInput _ ->
    conv_panel ~kernel_shape:(first_input node) ~grad_or_out_shape:(second_input node)
  | Op.Conv2dGradKernel { kernel_shape; _ } ->
    conv_panel ~kernel_shape ~grad_or_out_shape:(second_input node)
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.Matmul _ | Op.AddBias | Op.ScaleBy | Op.Slice _
  | Op.PadSlice _ | Op.Concat _ | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _
  | Op.ReduceMean _ | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax
  | Op.CrossEntropy | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _ ->
    0
