lib/exec/arena_exec.ml: Echo_ir Echo_tensor Graph Hashtbl Interp List Liveness Node Op Printf Shape Tensor
