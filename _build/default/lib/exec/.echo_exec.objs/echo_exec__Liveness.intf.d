lib/exec/liveness.mli: Echo_ir Graph Node
