lib/exec/gradcheck.mli: Echo_ir Echo_tensor Interp Node Stdlib Tensor
