lib/exec/category.ml: Echo_ir Graph List Node Op
