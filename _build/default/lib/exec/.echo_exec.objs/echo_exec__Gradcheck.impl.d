lib/exec/gradcheck.ml: Echo_autodiff Echo_ir Echo_tensor Float Graph Hashtbl Interp List Node Tensor
