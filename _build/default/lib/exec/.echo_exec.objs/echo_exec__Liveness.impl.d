lib/exec/liveness.ml: Echo_ir Graph Hashtbl List Node Op
