lib/exec/memplan.mli: Category Echo_ir Format Graph
