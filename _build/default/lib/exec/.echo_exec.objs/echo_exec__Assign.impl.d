lib/exec/assign.ml: Array Echo_ir Graph Hashtbl List Liveness Node Op Printf Workspace
