lib/exec/footprint.ml: Category Format List Memplan Printf
