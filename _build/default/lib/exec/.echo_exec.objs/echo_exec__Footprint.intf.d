lib/exec/footprint.mli: Format Memplan
