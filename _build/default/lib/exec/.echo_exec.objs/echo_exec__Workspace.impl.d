lib/exec/workspace.ml: Array Echo_ir Node Op
