lib/exec/assign.mli: Echo_ir Graph
