lib/exec/interp.mli: Echo_ir Echo_tensor Graph Hashtbl Node Op Shape Tensor
