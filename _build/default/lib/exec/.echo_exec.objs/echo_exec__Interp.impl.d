lib/exec/interp.ml: Echo_ir Echo_tensor Graph Hashtbl List Node Op Printf Shape Tensor
