lib/exec/arena_exec.mli: Echo_ir Echo_tensor Graph Interp Tensor
