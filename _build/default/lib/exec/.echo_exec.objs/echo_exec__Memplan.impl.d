lib/exec/memplan.ml: Array Category Echo_ir Format Graph Hashtbl List Liveness Node Op Workspace
