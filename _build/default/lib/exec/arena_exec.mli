(** Liveness-validating executor.

    Evaluates a graph like {!Interp}, but *drops* every transient value at
    the death step the liveness analysis computed for it — exactly what a
    real executor's buffer recycling does. If liveness ever frees a buffer
    that is still needed (a planner bug that would silently corrupt results
    on a GPU), evaluation fails loudly with {!Freed_too_early} instead.

    Used by tests to certify that the memory plan backing every footprint
    number in the paper reproduction is actually executable. *)

open Echo_tensor
open Echo_ir

exception Freed_too_early of string
(** Names the node whose input was already recycled. *)

val eval : Graph.t -> feeds:Interp.feeds -> Tensor.t list
(** Outputs in graph-output order; bit-identical to {!Interp.eval} whenever
    the liveness analysis is sound.
    @raise Freed_too_early on a liveness violation. *)

val max_live_values : Graph.t -> feeds:Interp.feeds -> int
(** Peak number of simultaneously retained transient values during the run —
    a host-side witness of the planner's liveness accounting. *)
