lib/models/deepspeech.mli: Echo_ir Model Node
