lib/models/layer.mli: Echo_ir Node Params
