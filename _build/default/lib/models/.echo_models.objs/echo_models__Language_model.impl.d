lib/models/language_model.ml: Echo_ir Layer List Model Node Params Printf Recurrent
