lib/models/params.ml: Echo_ir Echo_tensor List Node Rng Shape Tensor
