lib/models/recurrent.mli: Echo_ir Node Params
