lib/models/nmt.ml: Echo_ir List Model Node Params Recurrent
