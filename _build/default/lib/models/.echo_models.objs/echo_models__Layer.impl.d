lib/models/layer.ml: Echo_ir Echo_tensor List Node Params Shape
