lib/models/transformer.ml: Echo_ir Layer List Model Node Params Printf
