lib/models/model.mli: Echo_autodiff Echo_ir Format Graph Node Params
