lib/models/transformer.mli: Echo_ir Model Node
