lib/models/recurrent.ml: Array Echo_ir Layer List Node Params Printf
