lib/models/nmt.mli: Echo_ir Model Node
