lib/models/language_model.mli: Echo_ir Model Node Recurrent
