lib/models/params.mli: Echo_ir Echo_tensor Node Shape Tensor
