lib/models/model.ml: Echo_autodiff Echo_ir Format Graph Node Params
