lib/models/deepspeech.ml: Echo_ir Echo_tensor Hashtbl List Model Node Params Printf Recurrent Shape
