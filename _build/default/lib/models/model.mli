(** Uniform wrapper every model in the zoo builds into: enough structure for
    the training loop (feeds), the benchmarks (graphs) and the reports
    (parameter counts). *)

open Echo_ir

type t = {
  name : string;
  params : Params.t;
  placeholders : Node.t list;  (** data and label inputs, in feed order *)
  loss : Node.t;  (** scalar training loss *)
}

val forward_graph : t -> Graph.t

val training : t -> Echo_autodiff.Grad.training
(** Differentiate the loss with respect to every registered parameter. *)

val describe : Format.formatter -> t -> unit
(** Name, parameter tensors/scalars, forward node count. *)
