(** Sequence-to-sequence neural machine translation with Luong-style dot
    attention (a Sockeye/GNMT-shaped workload): LSTM encoder, LSTM decoder,
    per-decoder-step attention over the encoder states, attentional hidden
    layer, shared output projection, per-step cross-entropy.

    The attention score/weight maps ([B x Tsrc] per decoder step) are
    computed by elementwise/reduce/softmax chains from hidden states that the
    backward pass stashes anyway — prime Echo recomputation targets. *)

open Echo_ir

type config = {
  src_vocab : int;
  tgt_vocab : int;
  embed : int;
  hidden : int;
  enc_layers : int;
  dec_layers : int;
  src_len : int;
  tgt_len : int;
  batch : int;
  dropout : float;
  attention : bool;
  seed : int;
}

val gnmt_like : config
(** H=512, 4+4 layers, Tsrc=Ttgt=30, B=64, 30k vocabularies. *)

type t = {
  model : Model.t;
  src_input : Node.t;  (** [(Tsrc*B)] ids, time-major *)
  tgt_input : Node.t;  (** [(Ttgt*B)] decoder input ids (shifted target) *)
  label_input : Node.t;  (** [(Ttgt*B)] target ids *)
  attention_weights : Node.t list;  (** one [B x Tsrc] softmax per step *)
  cfg : config;
}

val build : config -> t
