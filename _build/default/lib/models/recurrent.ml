open Echo_ir

type kind = Lstm | Peephole | Gru | Vanilla

let kind_to_string = function
  | Lstm -> "lstm"
  | Peephole -> "lstm-peephole"
  | Gru -> "gru"
  | Vanilla -> "rnn"

let gates = function Lstm | Peephole -> 4 | Gru -> 3 | Vanilla -> 1

type weights = {
  w_x : Node.t;
  w_h : Node.t;
  b : Node.t;
  peep : (Node.t * Node.t * Node.t) option;  (* p_i, p_f, p_o diagonals *)
}

let make_weights params name kind ~input_dim ~hidden =
  let g = gates kind in
  let peep =
    match kind with
    | Peephole ->
      let vec suffix = Params.normal params (name ^ suffix) ~std:0.1 [| hidden |] in
      Some (vec ".p_i", vec ".p_f", vec ".p_o")
    | Lstm | Gru | Vanilla -> None
  in
  {
    w_x = Params.xavier params (name ^ ".w_x") [| g * hidden; input_dim |];
    w_h = Params.xavier params (name ^ ".w_h") [| g * hidden; hidden |];
    b = Params.zeros params (name ^ ".b") [| g * hidden |];
    peep;
  }

type state = { h : Node.t; c : Node.t option }

let zero_state kind ~batch ~hidden =
  let h = Node.zeros ~name:"h0" [| batch; hidden |] in
  match kind with
  | Lstm | Peephole -> { h; c = Some (Node.zeros ~name:"c0" [| batch; hidden |]) }
  | Gru | Vanilla -> { h; c = None }

let gate pre ~hidden i = Node.slice ~axis:1 ~lo:(i * hidden) ~hi:((i + 1) * hidden) pre

let lstm_step w ~hidden ~x { h; c } =
  let c = match c with Some c -> c | None -> invalid_arg "lstm_step: no cell state" in
  let pre =
    Node.add_bias ~name:"pre"
      (Node.add (Node.matmul ~trans_b:true x w.w_x) (Node.matmul ~trans_b:true h w.w_h))
      w.b
  in
  let i = Node.sigmoid ~name:"i" (gate pre ~hidden 0) in
  let f = Node.sigmoid ~name:"f" (gate pre ~hidden 1) in
  let g = Node.tanh_ ~name:"g" (gate pre ~hidden 2) in
  let o = Node.sigmoid ~name:"o" (gate pre ~hidden 3) in
  let c' = Node.add (Node.mul f c) (Node.mul i g) in
  let h' = Node.mul o (Node.tanh_ ~name:"tanh_c" c') in
  { h = h'; c = Some c' }

let gru_step w ~hidden ~x { h; c = _ } =
  let pre_x = Node.add_bias (Node.matmul ~trans_b:true x w.w_x) w.b in
  let pre_h = Node.matmul ~trans_b:true h w.w_h in
  let r =
    Node.sigmoid ~name:"r" (Node.add (gate pre_x ~hidden 0) (gate pre_h ~hidden 0))
  in
  let z =
    Node.sigmoid ~name:"z" (Node.add (gate pre_x ~hidden 1) (gate pre_h ~hidden 1))
  in
  let n =
    Node.tanh_ ~name:"n"
      (Node.add (gate pre_x ~hidden 2) (Node.mul r (gate pre_h ~hidden 2)))
  in
  (* h' = (1 - z) * n + z * h *)
  let one_minus_z = Node.add_scalar 1.0 (Node.neg z) in
  { h = Node.add (Node.mul one_minus_z n) (Node.mul z h); c = None }

let vanilla_step w ~hidden:_ ~x { h; c = _ } =
  let pre =
    Node.add_bias
      (Node.add (Node.matmul ~trans_b:true x w.w_x) (Node.matmul ~trans_b:true h w.w_h))
      w.b
  in
  { h = Node.tanh_ ~name:"h" pre; c = None }

(* Rows of a [H] diagonal vector broadcast over the batch. *)
let diag_rows ~batch ~hidden p =
  Node.broadcast_axis ~axis:0 ~n:batch (Node.reshape [| 1; hidden |] p)

(* Gers & Schmidhuber peephole connections: the input and forget gates also
   see the previous cell state, the output gate sees the new one. The gate
   structure (4 fused nonlinearities off two GEMMs) is unchanged, which is
   why the paper's recomputation analysis carries over verbatim. *)
let peephole_step w ~hidden ~x { h; c } =
  let c =
    match c with Some c -> c | None -> invalid_arg "peephole_step: no cell state"
  in
  let p_i, p_f, p_o =
    match w.peep with
    | Some ps -> ps
    | None -> invalid_arg "peephole_step: weights lack peepholes"
  in
  let batch = (Node.shape h).(0) in
  let diag p = diag_rows ~batch ~hidden p in
  let pre =
    Node.add_bias ~name:"pre"
      (Node.add (Node.matmul ~trans_b:true x w.w_x) (Node.matmul ~trans_b:true h w.w_h))
      w.b
  in
  let i = Node.sigmoid ~name:"i" (Node.add (gate pre ~hidden 0) (Node.mul (diag p_i) c)) in
  let f = Node.sigmoid ~name:"f" (Node.add (gate pre ~hidden 1) (Node.mul (diag p_f) c)) in
  let g = Node.tanh_ ~name:"g" (gate pre ~hidden 2) in
  let c' = Node.add (Node.mul f c) (Node.mul i g) in
  let o = Node.sigmoid ~name:"o" (Node.add (gate pre ~hidden 3) (Node.mul (diag p_o) c')) in
  let h' = Node.mul o (Node.tanh_ ~name:"tanh_c" c') in
  { h = h'; c = Some c' }

let step w kind ~hidden ~x state =
  match kind with
  | Lstm -> lstm_step w ~hidden ~x state
  | Peephole -> peephole_step w ~hidden ~x state
  | Gru -> gru_step w ~hidden ~x state
  | Vanilla -> vanilla_step w ~hidden ~x state

type config = {
  kind : kind;
  input_dim : int;
  hidden : int;
  layers : int;
  dropout : float;
  seed : int;
}

let unroll params name cfg ~batch ~xs =
  if cfg.layers < 1 then invalid_arg "Recurrent.unroll: layers < 1";
  let layer_weights =
    List.init cfg.layers (fun l ->
      let input_dim = if l = 0 then cfg.input_dim else cfg.hidden in
      make_weights params
        (Printf.sprintf "%s.l%d" name l)
        cfg.kind ~input_dim ~hidden:cfg.hidden)
  in
  let outputs, _ =
    List.fold_left
      (fun (inputs, layer) w ->
        let state = ref (zero_state cfg.kind ~batch ~hidden:cfg.hidden) in
        let outputs =
          List.mapi
            (fun t x ->
              let x =
                Layer.dropout ~p:cfg.dropout
                  ~seed:(cfg.seed + (layer * 7919) + (t * 104729))
                  x
              in
              let next = step w cfg.kind ~hidden:cfg.hidden ~x !state in
              state := next;
              next.h)
            inputs
        in
        (outputs, layer + 1))
      (xs, 0) layer_weights
  in
  outputs
