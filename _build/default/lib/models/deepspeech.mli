(** DeepSpeech2-shaped speech model: two strided 2-D convolutions over the
    spectrogram, stacked (optionally bidirectional) recurrent layers on the
    resulting time slices, and a per-frame classifier.

    Substitution note (see DESIGN.md): the original CTC loss is replaced by
    per-frame cross-entropy against synthetic alignments — the loss head is a
    negligible part of the footprint/time profile this repository studies,
    while the conv + biRNN trunk (what matters) is reproduced faithfully. *)

open Echo_ir

type config = {
  batch : int;
  time : int;  (** input spectrogram frames *)
  freq : int;  (** filterbank bins *)
  conv_channels : int;
  rnn_hidden : int;
  rnn_layers : int;
  bidirectional : bool;
  classes : int;  (** output alphabet *)
  dropout : float;
  seed : int;
}

val ds2_like : config
(** B=16, 400 frames (a 4 s utterance at 10 ms hop) x 64 bins, 32 conv
    channels, 5 x biLSTM-800, 29-way output (characters). *)

type t = {
  model : Model.t;
  spectrogram : Node.t;  (** [B x 1 x time x freq] input *)
  label_input : Node.t;  (** [(frames*B)] alignment ids, time-major *)
  out_frames : int;  (** time steps after the strided convolutions *)
  cfg : config;
}

val build : config -> t
