(** Recurrent cells (LSTM, GRU, vanilla RNN) and stacked unrolling.

    Cells are built from primitive operators — two GEMMs per step feeding a
    chain of slices, nonlinearities and elementwise updates — exactly the
    graph structure whose stashed feature maps the Echo paper targets.
    Weights are shared across time steps; the sequence is fully unrolled. *)

open Echo_ir

type kind =
  | Lstm
  | Peephole  (** LSTM with Gers-Schmidhuber peephole connections *)
  | Gru
  | Vanilla

val kind_to_string : kind -> string

val gates : kind -> int
(** Fused gate count: 4 for (peephole) LSTM, 3 for GRU, 1 for vanilla. *)

type weights
(** One layer's shared parameters. *)

val make_weights :
  Params.t -> string -> kind -> input_dim:int -> hidden:int -> weights

type state = { h : Node.t; c : Node.t option }
(** [c] is [Some] only for the LSTM variants. *)

val zero_state : kind -> batch:int -> hidden:int -> state

val step : weights -> kind -> hidden:int -> x:Node.t -> state -> state
(** One cell application on a [B x input_dim] slice. *)

type config = {
  kind : kind;
  input_dim : int;
  hidden : int;
  layers : int;
  dropout : float;  (** applied to each layer's input sequence when > 0 *)
  seed : int;
}

val unroll :
  Params.t -> string -> config -> batch:int -> xs:Node.t list -> Node.t list
(** Stacked multi-layer unroll over the input sequence; returns the top
    layer's hidden state at every step. *)
