(** Transformer encoder for language modelling — the paper's "beyond RNNs"
    generality workload. Activations are [(B*T) x d_model] matrices;
    attention is materialised per (batch element, head) as explicit [T x T]
    score/probability maps, so the quadratic feature maps that dominate
    Transformer training footprints are visible to the planner and the Echo
    pass. *)

open Echo_ir

type config = {
  vocab : int;
  seq_len : int;
  batch : int;
  d_model : int;
  heads : int;
  d_ff : int;
  layers : int;
  dropout : float;
  seed : int;
}

val base_like : config
(** Transformer-base shapes scaled to a single-GPU LM: d_model=512, 8 heads,
    d_ff=2048, 6 layers, T=64, B=8. *)

type t = {
  model : Model.t;
  token_input : Node.t;  (** [(B*T)] ids *)
  label_input : Node.t;
  cfg : config;
}

val build : config -> t
