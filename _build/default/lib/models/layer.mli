(** Reusable layer builders shared by every model in the zoo. *)

open Echo_ir

val linear :
  Params.t -> string -> input_dim:int -> output_dim:int -> Node.t -> Node.t
(** Fully-connected layer [x W^T + b] on a [B x input_dim] activation. *)

val dropout : p:float -> seed:int -> Node.t -> Node.t
(** Inverted dropout: multiply by a seeded mask node. [p = 0] is the
    identity (no nodes created). *)

val layer_norm : Params.t -> string -> dim:int -> eps:float -> Node.t -> Node.t
(** Composite layer normalisation over the last axis of a 2-D activation,
    with learned gain and bias (built from reduce/broadcast/elementwise
    primitives so its feature maps are visible to the Echo pass). *)

val mean_of : Node.t list -> Node.t
(** Arithmetic mean of scalar nodes (e.g. per-step losses).
    @raise Invalid_argument on an empty list. *)
