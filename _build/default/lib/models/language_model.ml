open Echo_ir

type config = {
  vocab : int;
  embed : int;
  hidden : int;
  layers : int;
  seq_len : int;
  batch : int;
  dropout : float;
  cell : Recurrent.kind;
  seed : int;
}

let ptb_default =
  {
    vocab = 10_000;
    embed = 650;
    hidden = 650;
    layers = 2;
    seq_len = 35;
    batch = 32;
    dropout = 0.4;
    cell = Recurrent.Lstm;
    seed = 42;
  }

type t = {
  model : Model.t;
  token_input : Node.t;
  label_input : Node.t;
  logits : Node.t;
  cfg : config;
}

(* Like the MXNet word-LM reference model, the whole batch is embedded with
   one gather and projected with one GEMM: tokens and labels are single
   [(T*B)] tensors laid out time-major, sliced per step for the unroll. *)
let build cfg =
  let params = Params.create ~seed:cfg.seed in
  let table = Params.normal params "embed" ~std:0.1 [| cfg.vocab; cfg.embed |] in
  let w_out = Params.xavier params "proj.w" [| cfg.vocab; cfg.hidden |] in
  let b_out = Params.zeros params "proj.b" [| cfg.vocab |] in
  let rows = cfg.seq_len * cfg.batch in
  let token_input = Node.placeholder ~name:"tokens" [| rows |] in
  let label_input = Node.placeholder ~name:"labels" [| rows |] in
  let embedded_all =
    Layer.dropout ~p:cfg.dropout ~seed:(cfg.seed + 31)
      (Node.embedding ~table ~ids:token_input)
  in
  let step_inputs =
    List.init cfg.seq_len (fun t ->
      Node.slice
        ~name:(Printf.sprintf "x.%d" t)
        ~axis:0 ~lo:(t * cfg.batch)
        ~hi:((t + 1) * cfg.batch)
        embedded_all)
  in
  let rnn_cfg =
    {
      Recurrent.kind = cfg.cell;
      input_dim = cfg.embed;
      hidden = cfg.hidden;
      layers = cfg.layers;
      dropout = cfg.dropout;
      seed = cfg.seed + 1000;
    }
  in
  let tops = Recurrent.unroll params "rnn" rnn_cfg ~batch:cfg.batch ~xs:step_inputs in
  let flat = Node.concat ~name:"tops" ~axis:0 tops in
  let flat = Layer.dropout ~p:cfg.dropout ~seed:(cfg.seed + 77) flat in
  let logits =
    Node.add_bias ~name:"logits" (Node.matmul ~trans_b:true flat w_out) b_out
  in
  let loss = Node.cross_entropy ~logits ~labels:label_input in
  {
    model =
      {
        Model.name = Printf.sprintf "%s-lm" (Recurrent.kind_to_string cfg.cell);
        params;
        placeholders = [ token_input; label_input ];
        loss;
      };
    token_input;
    label_input;
    logits;
    cfg;
  }
