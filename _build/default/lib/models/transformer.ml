open Echo_ir

type config = {
  vocab : int;
  seq_len : int;
  batch : int;
  d_model : int;
  heads : int;
  d_ff : int;
  layers : int;
  dropout : float;
  seed : int;
}

let base_like =
  {
    vocab = 30_000;
    seq_len = 64;
    batch = 8;
    d_model = 512;
    heads = 8;
    d_ff = 2048;
    layers = 6;
    dropout = 0.1;
    seed = 23;
  }

type t = {
  model : Model.t;
  token_input : Node.t;
  label_input : Node.t;
  cfg : config;
}

(* Multi-head self-attention on a [(B*T) x D] activation: per batch element
   and head, explicit T x T score and probability maps. *)
let self_attention params name cfg ~seed x =
  let d = cfg.d_model in
  let dk = d / cfg.heads in
  let proj suffix =
    Params.xavier params (Printf.sprintf "%s.%s" name suffix) [| d; d |]
  in
  let wq = proj "wq" and wk = proj "wk" and wv = proj "wv" and wo = proj "wo" in
  let q = Node.matmul ~trans_b:true x wq in
  let k = Node.matmul ~trans_b:true x wk in
  let v = Node.matmul ~trans_b:true x wv in
  let t = cfg.seq_len in
  let batch_rows m b = Node.slice ~axis:0 ~lo:(b * t) ~hi:((b + 1) * t) m in
  let head_cols m h = Node.slice ~axis:1 ~lo:(h * dk) ~hi:((h + 1) * dk) m in
  let per_batch =
    List.init cfg.batch (fun b ->
      let heads =
        List.init cfg.heads (fun h ->
          let qh = head_cols (batch_rows q b) h in
          let kh = head_cols (batch_rows k b) h in
          let vh = head_cols (batch_rows v b) h in
          let scores =
            Node.scale (1.0 /. sqrt (float_of_int dk)) (Node.matmul ~trans_b:true qh kh)
          in
          let probs =
            Layer.dropout ~p:cfg.dropout
              ~seed:(seed + (b * 131) + (h * 17))
              (Node.softmax ~name:(Printf.sprintf "%s.probs.b%d.h%d" name b h) scores)
          in
          Node.matmul probs vh)
      in
      Node.concat ~axis:1 heads)
  in
  let context = Node.concat ~axis:0 per_batch in
  Node.matmul ~trans_b:true context wo

let feed_forward params name cfg x =
  let w1 = Params.xavier params (name ^ ".w1") [| cfg.d_ff; cfg.d_model |] in
  let b1 = Params.zeros params (name ^ ".b1") [| cfg.d_ff |] in
  let w2 = Params.xavier params (name ^ ".w2") [| cfg.d_model; cfg.d_ff |] in
  let b2 = Params.zeros params (name ^ ".b2") [| cfg.d_model |] in
  let hidden = Node.relu (Node.add_bias (Node.matmul ~trans_b:true x w1) b1) in
  Node.add_bias (Node.matmul ~trans_b:true hidden w2) b2

let encoder_layer params idx cfg x =
  let name = Printf.sprintf "layer%d" idx in
  let seed = cfg.seed + (idx * 7907) in
  let attn = self_attention params (name ^ ".attn") cfg ~seed x in
  let attn = Layer.dropout ~p:cfg.dropout ~seed:(seed + 1) attn in
  let x =
    Layer.layer_norm params (name ^ ".ln1") ~dim:cfg.d_model ~eps:1e-5
      (Node.add x attn)
  in
  let ff = feed_forward params (name ^ ".ffn") cfg x in
  let ff = Layer.dropout ~p:cfg.dropout ~seed:(seed + 2) ff in
  Layer.layer_norm params (name ^ ".ln2") ~dim:cfg.d_model ~eps:1e-5
    (Node.add x ff)

let build cfg =
  if cfg.d_model mod cfg.heads <> 0 then
    invalid_arg "Transformer.build: d_model must divide into heads";
  let params = Params.create ~seed:cfg.seed in
  let rows = cfg.batch * cfg.seq_len in
  let table = Params.normal params "embed" ~std:0.1 [| cfg.vocab; cfg.d_model |] in
  let pos = Params.normal params "pos" ~std:0.1 [| cfg.seq_len; cfg.d_model |] in
  let token_input = Node.placeholder ~name:"tokens" [| rows |] in
  let label_input = Node.placeholder ~name:"labels" [| rows |] in
  let embedded = Node.embedding ~table ~ids:token_input in
  (* Tile the positional table across the batch: T x D -> (B*T) x D. *)
  let pos_tiled =
    Node.reshape [| rows; cfg.d_model |]
      (Node.broadcast_axis ~axis:0 ~n:cfg.batch
         (Node.reshape [| 1; cfg.seq_len * cfg.d_model |] pos))
  in
  let x0 =
    Layer.dropout ~p:cfg.dropout ~seed:(cfg.seed + 5) (Node.add embedded pos_tiled)
  in
  let encoded =
    List.fold_left
      (fun x idx -> encoder_layer params idx cfg x)
      x0
      (List.init cfg.layers (fun i -> i))
  in
  let w_out = Params.xavier params "proj.w" [| cfg.vocab; cfg.d_model |] in
  let b_out = Params.zeros params "proj.b" [| cfg.vocab |] in
  let logits = Node.add_bias (Node.matmul ~trans_b:true encoded w_out) b_out in
  let loss = Node.cross_entropy ~logits ~labels:label_input in
  {
    model =
      {
        Model.name = "transformer-enc";
        params;
        placeholders = [ token_input; label_input ];
        loss;
      };
    token_input;
    label_input;
    cfg;
  }
