open Echo_tensor
open Echo_ir

let linear params name ~input_dim ~output_dim x =
  let w = Params.xavier params (name ^ ".w") [| output_dim; input_dim |] in
  let bias = Params.zeros params (name ^ ".b") [| output_dim |] in
  Node.add_bias ~name (Node.matmul ~trans_b:true x w) bias

let dropout ~p ~seed x =
  if p <= 0.0 then x
  else begin
    let mask = Node.dropout_mask ~p ~seed (Node.shape x) in
    Node.mul x mask
  end

let layer_norm params name ~dim ~eps x =
  let gain = Params.ones params (name ^ ".gain") [| dim |] in
  let bias = Params.zeros params (name ^ ".bias") [| dim |] in
  let cols = Shape.dim (Node.shape x) 1 in
  if cols <> dim then invalid_arg "Layer.layer_norm: dimension mismatch";
  let mean = Node.reduce_mean ~axis:1 ~keepdims:true x in
  let centred = Node.sub x (Node.broadcast_axis ~axis:1 ~n:cols mean) in
  let var = Node.reduce_mean ~axis:1 ~keepdims:true (Node.sq centred) in
  let denom = Node.sqrt_ (Node.add_scalar eps var) in
  let normalised = Node.div centred (Node.broadcast_axis ~axis:1 ~n:cols denom) in
  (* Scale rows by the gain vector, then shift: gain/bias broadcast over the
     batch via AddBias-style row ops. *)
  let b = Shape.dim (Node.shape x) 0 in
  let gain_rows =
    Node.broadcast_axis ~axis:0 ~n:b (Node.reshape [| 1; dim |] gain)
  in
  Node.add_bias ~name (Node.mul normalised gain_rows) bias

let mean_of losses =
  match losses with
  | [] -> invalid_arg "Layer.mean_of: empty list"
  | first :: rest ->
    let total = List.fold_left Node.add first rest in
    Node.scale (1.0 /. float_of_int (List.length losses)) total
