open Echo_ir

type t = {
  name : string;
  params : Params.t;
  placeholders : Node.t list;
  loss : Node.t;
}

let forward_graph m = Graph.create [ m.loss ]

let training m =
  Echo_autodiff.Grad.differentiate ~loss:m.loss ~wrt:(Params.variables m.params)

let describe fmt m =
  Format.fprintf fmt "%s: %d param tensors (%d scalars), %d forward nodes"
    m.name (Params.count m.params) (Params.scalar_count m.params)
    (Graph.node_count (forward_graph m))
