open Echo_ir

type config = {
  src_vocab : int;
  tgt_vocab : int;
  embed : int;
  hidden : int;
  enc_layers : int;
  dec_layers : int;
  src_len : int;
  tgt_len : int;
  batch : int;
  dropout : float;
  attention : bool;
  seed : int;
}

let gnmt_like =
  {
    src_vocab = 30_000;
    tgt_vocab = 30_000;
    embed = 512;
    hidden = 512;
    enc_layers = 4;
    dec_layers = 4;
    src_len = 30;
    tgt_len = 30;
    batch = 64;
    dropout = 0.2;
    attention = true;
    seed = 7;
  }

type t = {
  model : Model.t;
  src_input : Node.t;
  tgt_input : Node.t;
  label_input : Node.t;
  attention_weights : Node.t list;
  cfg : config;
}

(* Luong dot attention: scores_t[b] = <h_dec[b], enc_t[b]> via an
   elementwise product and a row reduction per source position. *)
let attend ~hidden ~batch h_dec enc_states =
  let scores =
    List.map
      (fun enc -> Node.reduce_sum ~axis:1 ~keepdims:true (Node.mul h_dec enc))
      enc_states
  in
  let alpha = Node.softmax ~name:"alpha" (Node.concat ~axis:1 scores) in
  let context =
    match
      List.mapi
        (fun i enc ->
          let a_i = Node.slice ~axis:1 ~lo:i ~hi:(i + 1) alpha in
          Node.mul (Node.broadcast_axis ~axis:1 ~n:hidden a_i) enc)
        enc_states
    with
    | [] -> Node.zeros [| batch; hidden |]
    | first :: rest -> List.fold_left Node.add first rest
  in
  (alpha, context)

(* Embed a whole time-major id tensor at once and slice per step. *)
let embed_steps table ids ~steps ~batch =
  let all = Node.embedding ~table ~ids in
  List.init steps (fun t ->
    Node.slice ~axis:0 ~lo:(t * batch) ~hi:((t + 1) * batch) all)

let build cfg =
  let params = Params.create ~seed:cfg.seed in
  let src_table =
    Params.normal params "src_embed" ~std:0.1 [| cfg.src_vocab; cfg.embed |]
  in
  let tgt_table =
    Params.normal params "tgt_embed" ~std:0.1 [| cfg.tgt_vocab; cfg.embed |]
  in
  let w_ctx =
    Params.xavier params "attn.w_c" [| cfg.hidden; 2 * cfg.hidden |]
  in
  let w_out = Params.xavier params "proj.w" [| cfg.tgt_vocab; cfg.hidden |] in
  let b_out = Params.zeros params "proj.b" [| cfg.tgt_vocab |] in
  let src_input = Node.placeholder ~name:"src" [| cfg.src_len * cfg.batch |] in
  let tgt_input = Node.placeholder ~name:"tgt" [| cfg.tgt_len * cfg.batch |] in
  let label_input =
    Node.placeholder ~name:"labels" [| cfg.tgt_len * cfg.batch |]
  in
  let enc_xs =
    embed_steps src_table src_input ~steps:cfg.src_len ~batch:cfg.batch
  in
  let enc_cfg =
    {
      Recurrent.kind = Recurrent.Lstm;
      input_dim = cfg.embed;
      hidden = cfg.hidden;
      layers = cfg.enc_layers;
      dropout = cfg.dropout;
      seed = cfg.seed + 100;
    }
  in
  let enc_states = Recurrent.unroll params "enc" enc_cfg ~batch:cfg.batch ~xs:enc_xs in
  let dec_xs =
    embed_steps tgt_table tgt_input ~steps:cfg.tgt_len ~batch:cfg.batch
  in
  let dec_cfg =
    { enc_cfg with layers = cfg.dec_layers; seed = cfg.seed + 200 }
  in
  let dec_states = Recurrent.unroll params "dec" dec_cfg ~batch:cfg.batch ~xs:dec_xs in
  let attention_weights = ref [] in
  let attn_hidden =
    List.map
      (fun h_dec ->
        if cfg.attention then begin
          let alpha, context =
            attend ~hidden:cfg.hidden ~batch:cfg.batch h_dec enc_states
          in
          attention_weights := alpha :: !attention_weights;
          Node.tanh_ ~name:"attn_h"
            (Node.matmul ~trans_b:true (Node.concat ~axis:1 [ context; h_dec ]) w_ctx)
        end
        else h_dec)
      dec_states
  in
  let flat = Node.concat ~name:"dec_tops" ~axis:0 attn_hidden in
  let logits =
    Node.add_bias ~name:"logits" (Node.matmul ~trans_b:true flat w_out) b_out
  in
  let loss = Node.cross_entropy ~logits ~labels:label_input in
  {
    model =
      {
        Model.name = (if cfg.attention then "nmt-attn" else "nmt");
        params;
        placeholders = [ src_input; tgt_input; label_input ];
        loss;
      };
    src_input;
    tgt_input;
    label_input;
    attention_weights = List.rev !attention_weights;
    cfg;
  }
