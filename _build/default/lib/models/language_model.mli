(** Word-level language model (Zaremba et al. style): one embedding gather
    for the whole time-major batch, stacked LSTM/GRU/RNN with dropout over
    per-step slices, one shared output projection over the concatenated
    hidden states, softmax cross-entropy. The PTB-shaped configuration is
    the paper's primary LSTM training workload. *)

open Echo_ir

type config = {
  vocab : int;
  embed : int;
  hidden : int;
  layers : int;
  seq_len : int;
  batch : int;
  dropout : float;
  cell : Recurrent.kind;
  seed : int;
}

val ptb_default : config
(** B=32, T=35, H=650, L=2, p=0.4 — the MXNet word-LM defaults the original
    evaluation keeps. Vocabulary 10k. *)

type t = {
  model : Model.t;
  token_input : Node.t;  (** [(T*B)] ids, time-major *)
  label_input : Node.t;  (** [(T*B)] next-token targets, time-major *)
  logits : Node.t;  (** [(T*B) x vocab] *)
  cfg : config;
}

val build : config -> t
