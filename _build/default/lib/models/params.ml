open Echo_tensor
open Echo_ir

type t = { mutable items : (Node.t * Tensor.t) list; rng : Rng.t }

let create ~seed = { items = []; rng = Rng.create seed }

let register t name shape init =
  let node = Node.variable ~name shape in
  t.items <- (node, init) :: t.items;
  node

let xavier t name shape = register t name shape (Tensor.xavier t.rng shape)

let normal t name ~std shape =
  register t name shape (Tensor.normal t.rng shape ~mean:0.0 ~std)

let zeros t name shape = register t name shape (Tensor.zeros shape)
let ones t name shape = register t name shape (Tensor.ones shape)
let bindings t = List.rev t.items
let variables t = List.rev_map fst t.items
let count t = List.length t.items

let scalar_count t =
  List.fold_left (fun acc (n, _) -> acc + Shape.numel (Node.shape n)) 0 t.items

let total_bytes t = 4 * scalar_count t
