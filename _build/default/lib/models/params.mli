(** Parameter registry: creates [Variable] nodes together with their
    deterministic initial values, so a model definition yields both the graph
    and the feed bindings needed to execute it. *)

open Echo_tensor
open Echo_ir

type t

val create : seed:int -> t

val xavier : t -> string -> Shape.t -> Node.t
(** Glorot-uniform initialised 2-D weight. *)

val normal : t -> string -> std:float -> Shape.t -> Node.t
val zeros : t -> string -> Shape.t -> Node.t
val ones : t -> string -> Shape.t -> Node.t

val bindings : t -> (Node.t * Tensor.t) list
(** All registered (variable, initial value) pairs, in registration order. *)

val variables : t -> Node.t list
val count : t -> int
(** Number of parameter tensors. *)

val scalar_count : t -> int
(** Total number of scalar parameters. *)

val total_bytes : t -> int
(** At 4 bytes per scalar (fp32 device accounting). *)
