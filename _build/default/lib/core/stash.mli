(** Stash analysis: which forward feature maps does the backward pass read?

    A forward node is {e stashed} when at least one backward node consumes
    it — its buffer must survive from its forward definition until that
    consumer runs, which is what makes training footprints balloon. These
    sets drive both the Echo selection policy and the reports. *)

open Echo_ir

type t

val analyse : Graph.t -> t

val stashed_ids : t -> Ids.Set.t
val is_stashed : t -> int -> bool

val stashed_nodes : t -> Node.t list
(** In schedule order. *)

val bytes : t -> int
(** Total stashed feature-map bytes. *)

val is_persistent_input : Node.t -> bool
(** [Variable] or [Placeholder]: always available to the backward pass at no
    extra cost — recomputation chains terminate on these for free. *)

val available_for_backward : t -> Node.t -> bool
(** Persistent, or stashed anyway: reading this node during the backward pass
    costs no additional memory. *)
