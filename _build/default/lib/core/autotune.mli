(** Policy autotuning: pick a recomputation plan for an external constraint
    rather than a fixed overhead budget.

    This is the runtime-tool direction the original authors describe —
    selecting the best executor configuration automatically from measured
    (here: simulated) footprint and time, instead of asking the user to
    hand-pick flags. *)

open Echo_ir
open Echo_gpusim

type outcome = {
  policy : Pass.policy;
  graph : Graph.t;  (** rewritten training graph *)
  report : Pass.report;
}

val for_memory_target :
  device:Device.t -> Graph.t -> target_bytes:int -> outcome option
(** Cheapest Echo plan (by simulated overhead) whose measured peak footprint
    fits [target_bytes]: escalates the overhead budget through
    {1%%, 3%%, 5%%, 10%%, 20%%, 30%%, 50%%, 100%%} and stops at the first
    budget that fits. [None] when even the most aggressive plan does not. *)

val best_throughput :
  device:Device.t ->
  Graph.t ->
  budget_bytes:int ->
  candidates:Pass.policy list ->
  outcome option
(** Among [candidates] whose plan fits [budget_bytes], the one with the
    smallest simulated iteration time. [None] if none fits. *)
