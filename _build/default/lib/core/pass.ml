open Echo_ir
open Echo_gpusim
open Echo_exec

type policy =
  | Stash_all
  | Mirror_all_cheap
  | Checkpoint_sqrt
  | Echo of { overhead_budget : float }
  | Echo_cheap_only of { overhead_budget : float }
  | Echo_no_sharing of { overhead_budget : float }
  | Echo_no_transitive of { overhead_budget : float }
  | Recompute_all

let policy_name = function
  | Stash_all -> "stash-all"
  | Mirror_all_cheap -> "mirror-all-cheap"
  | Checkpoint_sqrt -> "checkpoint-sqrt"
  | Echo { overhead_budget } -> Printf.sprintf "echo(%.0f%%)" (100.0 *. overhead_budget)
  | Echo_cheap_only { overhead_budget } ->
    Printf.sprintf "echo-cheap(%.0f%%)" (100.0 *. overhead_budget)
  | Echo_no_sharing { overhead_budget } ->
    Printf.sprintf "echo-noshare(%.0f%%)" (100.0 *. overhead_budget)
  | Echo_no_transitive { overhead_budget } ->
    Printf.sprintf "echo-notrans(%.0f%%)" (100.0 *. overhead_budget)
  | Recompute_all -> "recompute-all"

let default_policies =
  [
    Stash_all;
    Mirror_all_cheap;
    Checkpoint_sqrt;
    Echo { overhead_budget = 0.03 };
    Echo { overhead_budget = 0.30 };
    Recompute_all;
  ]

type report = {
  policy : string;
  mirrored_nodes : int;
  clone_nodes : int;
  claimed_saving_bytes : int;
  claimed_cost_s : float;
  baseline_mem : Memplan.report;
  optimised_mem : Memplan.report;
  baseline_time_s : float;
  optimised_time_s : float;
}

let select ~device policy graph =
  match policy with
  | Stash_all ->
    ({ Select.mirror_ids = Ids.Set.empty; claimed_saving_bytes = 0; claimed_cost_s = 0.0 },
     true)
  | Mirror_all_cheap -> (Select.mirror_all_cheap graph, true)
  | Checkpoint_sqrt -> (Select.checkpoint_sqrt device graph, true)
  | Echo { overhead_budget } ->
    (Select.echo device graph ~overhead_budget, true)
  | Echo_cheap_only { overhead_budget } ->
    (Select.echo ~cheap_only:true device graph ~overhead_budget, true)
  | Echo_no_sharing { overhead_budget } ->
    (Select.echo device graph ~overhead_budget, false)
  | Echo_no_transitive { overhead_budget } ->
    (Select.echo ~transitive:false device graph ~overhead_budget, true)
  | Recompute_all -> (Select.recompute_all device graph, true)

(* Echo measures its own plans with the memory planner: the pass tries a
   descending ladder of overhead budgets and ships the plan with the lowest
   measured peak (recomputation clones that outlive the peak can cost more
   memory than the stash they free — a failure mode the selection
   estimators cannot see, but the planner can). Falls back to a no-op when
   nothing beats the baseline. *)
let run_ladder ~baseline_peak ~select_with budget =
  let empty =
    {
      Select.mirror_ids = Ids.Set.empty;
      claimed_saving_bytes = 0;
      claimed_cost_s = 0.0;
    }
  in
  let budgets = [ budget; budget /. 2.0; budget /. 4.0; budget /. 8.0 ] in
  List.fold_left
    (fun ((_, _, best_peak) as best) b ->
      if b < 0.002 then best
      else begin
        let selection, graph', peak = select_with b in
        if peak < best_peak then (graph', selection, peak) else best
      end)
    (None, empty, baseline_peak) budgets
  |> fun (graph', selection, _) -> (graph', selection)

let run_selected ~share graph selection =
  if Ids.Set.is_empty selection.Select.mirror_ids then graph
  else Rewrite.mirror ~share graph ~mirror_ids:selection.Select.mirror_ids

let run ~device policy graph =
  let baseline_mem = Memplan.plan graph in
  let baseline_peak = baseline_mem.Memplan.live_peak_bytes in
  let ladder ~cheap_only budget =
    let select_with b =
      let selection = Select.echo ~cheap_only device graph ~overhead_budget:b in
      let graph' = run_selected ~share:true graph selection in
      (selection, Some graph', (Memplan.plan graph').Memplan.live_peak_bytes)
    in
    match run_ladder ~baseline_peak ~select_with budget with
    | Some graph', selection -> (graph', selection)
    | None, selection -> (graph, selection)
  in
  let optimised, selection =
    match policy with
    | Echo { overhead_budget } -> ladder ~cheap_only:false overhead_budget
    | Echo_cheap_only { overhead_budget } -> ladder ~cheap_only:true overhead_budget
    | Stash_all | Mirror_all_cheap | Checkpoint_sqrt | Echo_no_sharing _
    | Echo_no_transitive _ | Recompute_all ->
      let selection, share = select ~device policy graph in
      (run_selected ~share graph selection, selection)
  in
  let report =
    {
      policy = policy_name policy;
      mirrored_nodes = Ids.Set.cardinal selection.Select.mirror_ids;
      clone_nodes = Rewrite.clone_count optimised;
      claimed_saving_bytes = selection.Select.claimed_saving_bytes;
      claimed_cost_s = selection.Select.claimed_cost_s;
      baseline_mem;
      optimised_mem = Memplan.plan optimised;
      baseline_time_s = Costmodel.graph_time device graph;
      optimised_time_s = Costmodel.graph_time device optimised;
    }
  in
  (optimised, report)

let reduction r =
  float_of_int r.baseline_mem.Memplan.live_peak_bytes
  /. float_of_int r.optimised_mem.Memplan.live_peak_bytes

let overhead r = (r.optimised_time_s -. r.baseline_time_s) /. r.baseline_time_s

let graph_flops graph =
  List.fold_left (fun acc n -> acc +. Costmodel.node_flops n) 0.0 (Graph.nodes graph)

let recompute_flops_ratio rewritten ~original =
  let f0 = graph_flops original in
  (graph_flops rewritten -. f0) /. f0

let pp_report fmt r =
  Format.fprintf fmt
    "%-18s mirrored=%-5d clones=%-5d footprint %s -> %s (%.2fx) time %.2f ms -> \
     %.2f ms (%+.1f%%)"
    r.policy r.mirrored_nodes r.clone_nodes
    (Footprint.human r.baseline_mem.Memplan.live_peak_bytes)
    (Footprint.human r.optimised_mem.Memplan.live_peak_bytes)
    (reduction r)
    (1000.0 *. r.baseline_time_s)
    (1000.0 *. r.optimised_time_s)
    (100.0 *. overhead r)
