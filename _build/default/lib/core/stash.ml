open Echo_ir

type t = { ids : Ids.Set.t; nodes : Node.t list; bytes : int }

let analyse graph =
  let stashed =
    List.filter
      (fun n ->
        Node.region n = Node.Forward
        && List.exists
             (fun c -> Node.region c = Node.Backward)
             (Graph.consumers graph (Node.id n))
        && not
             (match Node.op n with
             | Op.Placeholder | Op.Variable -> true
             | _ -> false))
      (Graph.forward_nodes graph)
  in
  {
    ids = List.fold_left (fun s n -> Ids.Set.add (Node.id n) s) Ids.Set.empty stashed;
    nodes = stashed;
    bytes = List.fold_left (fun acc n -> acc + Node.size_bytes n) 0 stashed;
  }

let stashed_ids t = t.ids
let is_stashed t id = Ids.Set.mem id t.ids
let stashed_nodes t = t.nodes
let bytes t = t.bytes

let is_persistent_input node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> true
  | _ -> false

let available_for_backward t node =
  is_persistent_input node || Ids.Set.mem (Node.id node) t.ids
