lib/core/autotune.mli: Device Echo_gpusim Echo_ir Graph Pass
