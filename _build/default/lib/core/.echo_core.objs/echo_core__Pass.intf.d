lib/core/pass.mli: Device Echo_exec Echo_gpusim Echo_ir Format Graph
