lib/core/select.mli: Device Echo_gpusim Echo_ir Graph Ids
