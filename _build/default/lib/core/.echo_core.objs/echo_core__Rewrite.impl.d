lib/core/rewrite.ml: Echo_ir Float Graph Hashtbl Ids List Node Op Printf String
