lib/core/pass.ml: Costmodel Echo_exec Echo_gpusim Echo_ir Footprint Format Graph Ids List Memplan Printf Rewrite Select
