lib/core/autotune.ml: Echo_exec Echo_ir List Memplan Pass
