lib/core/stash.ml: Echo_ir Graph Ids List Node Op
