lib/core/rewrite.mli: Echo_ir Graph Ids
