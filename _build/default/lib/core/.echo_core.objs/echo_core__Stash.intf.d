lib/core/stash.mli: Echo_ir Graph Ids Node
