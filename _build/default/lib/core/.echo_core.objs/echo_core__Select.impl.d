lib/core/select.ml: Costmodel Device Echo_gpusim Echo_ir Float Graph Hashtbl Ids List Node Op Option Stash
