open Echo_tensor
open Echo_ir

exception Non_differentiable of string

type training = {
  loss : Node.t;
  grads : (Node.t * Node.t) list;
  graph : Graph.t;
}

(* Backward-region constructors, so every rule reads as plain math. *)
let b = Node.Backward
let ( + ) x y = Node.add ~region:b x y
let ( - ) x y = Node.sub ~region:b x y
let ( * ) x y = Node.mul ~region:b x y
let ( / ) x y = Node.div ~region:b x y
let neg x = Node.neg ~region:b x
let scale k x = Node.scale ~region:b k x
let add_scalar k x = Node.add_scalar ~region:b k x
let pow_const p x = Node.pow_const ~region:b p x
let sq x = Node.sq ~region:b x
let exp_ x = Node.exp_ ~region:b x
let sign x = Node.sign ~region:b x
let matmul ?trans_a ?trans_b x y = Node.matmul ~region:b ?trans_a ?trans_b x y
let transpose2d x = Node.transpose2d ~region:b x
let reshape s x = Node.reshape ~region:b s x
let slice ~axis ~lo ~hi x = Node.slice ~region:b ~axis ~lo ~hi x
let pad_slice ~axis ~lo ~full x = Node.pad_slice ~region:b ~axis ~lo ~full x
let reduce_sum ~axis ~keepdims x = Node.reduce_sum ~region:b ~axis ~keepdims x
let broadcast_axis ~axis ~n x = Node.broadcast_axis ~region:b ~axis ~n x
let scale_by x s = Node.scale_by ~region:b x s

let last_axis n = Stdlib.( - ) (Shape.rank (Node.shape n)) 1

(* Adjoint of a reduction: restore the reduced axis (if dropped) and
   broadcast back to the input width. *)
let unreduce ~axis ~keepdims ~input g =
  let n = Shape.dim (Node.shape input) axis in
  let g =
    if keepdims then g
    else begin
      let keep_shape =
        Array.mapi
          (fun i d -> if i = axis then 1 else d)
          (Array.copy (Node.shape input))
      in
      reshape keep_shape g
    end
  in
  broadcast_axis ~axis ~n g

let vjp node ~adjoint:g =
  let ins = Node.inputs node in
  let y = node in
  match (Node.op node, ins) with
  | (Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _), [] ->
    []
  | Op.Neg, [ x ] -> [ (x, neg g) ]
  | Op.Scale k, [ x ] -> [ (x, scale k g) ]
  | Op.AddScalar _, [ x ] -> [ (x, g) ]
  | Op.PowConst p, [ x ] -> [ (x, g * scale p (pow_const (p -. 1.0) x)) ]
  | Op.Sigmoid, [ x ] -> [ (x, g * (y * add_scalar 1.0 (neg y))) ]
  | Op.Tanh, [ x ] -> [ (x, g * add_scalar 1.0 (neg (sq y))) ]
  | Op.Relu, [ x ] -> [ (x, g * sign y) ]
  | Op.Exp, [ x ] -> [ (x, g * y) ]
  | Op.Log, [ x ] -> [ (x, g / x) ]
  | Op.Sqrt, [ x ] -> [ (x, scale 0.5 (g / y)) ]
  | Op.Sq, [ x ] -> [ (x, scale 2.0 (g * x)) ]
  | Op.Recip, [ x ] -> [ (x, neg (g * sq y)) ]
  | Op.Sign, [ _ ] -> []
  | Op.Add, [ a; bb ] -> [ (a, g); (bb, g) ]
  | Op.Sub, [ a; bb ] -> [ (a, g); (bb, neg g) ]
  | Op.Mul, [ a; bb ] -> [ (a, g * bb); (bb, g * a) ]
  | Op.Div, [ a; bb ] -> [ (a, g / bb); (bb, neg (g * (y / bb))) ]
  | Op.Matmul { trans_a; trans_b }, [ a; bb ] ->
    let da, db =
      match (trans_a, trans_b) with
      | false, false ->
        (matmul ~trans_b:true g bb, matmul ~trans_a:true a g)
      | true, false -> (matmul ~trans_b:true bb g, matmul a g)
      | false, true -> (matmul g bb, matmul ~trans_a:true g a)
      | true, true ->
        ( matmul ~trans_a:true ~trans_b:true bb g,
          matmul ~trans_a:true ~trans_b:true g a )
    in
    [ (a, da); (bb, db) ]
  | Op.AddBias, [ m; bias ] ->
    [ (m, g); (bias, reduce_sum ~axis:0 ~keepdims:false g) ]
  | Op.Slice { axis; lo; hi = _ }, [ x ] ->
    [ (x, pad_slice ~axis ~lo ~full:(Shape.dim (Node.shape x) axis) g) ]
  | Op.PadSlice { axis; lo; full = _ }, [ x ] ->
    let w = Shape.dim (Node.shape x) axis in
    [ (x, slice ~axis ~lo ~hi:(Stdlib.( + ) lo w) g) ]
  | Op.Concat { axis }, xs ->
    let _, contribs =
      List.fold_left
        (fun (off, acc) x ->
          let w = Shape.dim (Node.shape x) axis in
          let hi = Stdlib.( + ) off w in
          (hi, (x, slice ~axis ~lo:off ~hi g) :: acc))
        (0, []) xs
    in
    List.rev contribs
  | Op.Reshape _, [ x ] -> [ (x, reshape (Node.shape x) g) ]
  | Op.Transpose2d, [ x ] -> [ (x, transpose2d g) ]
  | Op.ReduceSum { axis; keepdims }, [ x ] ->
    [ (x, unreduce ~axis ~keepdims ~input:x g) ]
  | Op.ReduceMean { axis; keepdims }, [ x ] ->
    let n = Shape.dim (Node.shape x) axis in
    [ (x, scale (1.0 /. float_of_int n) (unreduce ~axis ~keepdims ~input:x g)) ]
  | Op.BroadcastAxis { axis; n = _ }, [ x ] ->
    [ (x, reduce_sum ~axis ~keepdims:true g) ]
  | Op.Softmax, [ x ] ->
    let ax = last_axis y in
    let inner = reduce_sum ~axis:ax ~keepdims:true (g * y) in
    let n = Shape.dim (Node.shape y) ax in
    [ (x, y * (g - broadcast_axis ~axis:ax ~n inner)) ]
  | Op.LogSoftmax, [ x ] ->
    let ax = last_axis y in
    let s = reduce_sum ~axis:ax ~keepdims:true g in
    let n = Shape.dim (Node.shape y) ax in
    [ (x, g - (exp_ y * broadcast_axis ~axis:ax ~n s)) ]
  | Op.CrossEntropy, [ logits; labels ] ->
    let base = Node.cross_entropy_grad ~logits ~labels in
    let scaled =
      match Node.op g with
      | Op.ConstFill 1.0 -> base
      | _ -> scale_by base g
    in
    [ (logits, scaled) ]
  | Op.Embedding, [ table; ids ] ->
    let vocab = Shape.dim (Node.shape table) 0 in
    [ (table, Node.embedding_grad ~vocab ~ids ~grad_out:g) ]
  | Op.Conv2d { stride; pad }, [ input; kernel ] ->
    let d_input =
      Node.create ~region:b
        (Op.Conv2dGradInput { stride; pad; input_shape = Node.shape input })
        [ kernel; g ]
    in
    let d_kernel =
      Node.create ~region:b
        (Op.Conv2dGradKernel { stride; pad; kernel_shape = Node.shape kernel })
        [ input; g ]
    in
    [ (input, d_input); (kernel, d_kernel) ]
  | ( ( Op.ScaleBy | Op.CrossEntropyGrad | Op.EmbeddingGrad _
      | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ),
      _ ) ->
    raise
      (Non_differentiable
         (Printf.sprintf "no gradient rule for %s (backward-only operator)"
            (Op.to_string (Node.op node))))
  | op, _ ->
    failwith (Printf.sprintf "Grad.vjp: malformed node %s" (Op.to_string op))

let differentiate ~loss ~wrt =
  if Shape.rank (Node.shape loss) <> 0 then
    invalid_arg "Grad.differentiate: loss must be a scalar";
  let forward = Graph.create [ loss ] in
  let adjoints : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace adjoints (Node.id loss)
    (Node.const_fill ~name:"dloss" ~region:b 1.0 Shape.scalar);
  let accumulate input contrib =
    match Hashtbl.find_opt adjoints (Node.id input) with
    | None -> Hashtbl.replace adjoints (Node.id input) contrib
    | Some prev -> Hashtbl.replace adjoints (Node.id input) (prev + contrib)
  in
  (* Reverse schedule order: every consumer's adjoint is final before we
     propagate through a node. *)
  List.iter
    (fun node ->
      match Hashtbl.find_opt adjoints (Node.id node) with
      | None -> ()  (* not on a differentiable path from the loss *)
      | Some g -> List.iter (fun (x, c) -> accumulate x c) (vjp node ~adjoint:g))
    (List.rev (Graph.nodes forward));
  let grads =
    List.map
      (fun p ->
        match Hashtbl.find_opt adjoints (Node.id p) with
        | Some g -> (p, g)
        | None ->
          (p, Node.zeros ~name:(Node.name p ^ "_zero_grad") ~region:b (Node.shape p)))
      wrt
  in
  let graph = Graph.create (loss :: List.map snd grads) in
  { loss; grads; graph }
