lib/autodiff/grad.ml: Array Echo_ir Echo_tensor Graph Hashtbl List Node Op Printf Shape Stdlib
