lib/autodiff/grad.mli: Echo_ir Graph Node
