(** Symbolic reverse-mode differentiation.

    [differentiate] extends a forward graph with gradient nodes, producing
    the full training graph that a framework executor would run. Gradient
    rules are written in the public operator vocabulary wherever possible, so
    backward nodes reference forward feature maps directly — these references
    are exactly the "stash" that the Echo pass optimizes. All nodes created
    here carry the [Backward] region tag. *)

open Echo_ir

exception Non_differentiable of string
(** Raised when a gradient is requested through an operator that only exists
    in backward graphs (fused gradient kernels, [ScaleBy]); higher-order
    differentiation is out of scope. *)

type training = {
  loss : Node.t;  (** the forward scalar loss *)
  grads : (Node.t * Node.t) list;  (** (parameter, gradient) in [wrt] order *)
  graph : Graph.t;  (** outputs = loss followed by every gradient *)
}

val differentiate : loss:Node.t -> wrt:Node.t list -> training
(** @raise Invalid_argument if [loss] is not a scalar.
    @raise Non_differentiable on unsupported operators reachable from a
    requested gradient. Parameters that the loss does not depend on receive a
    [Zeros] gradient. *)

val vjp : Node.t -> adjoint:Node.t -> (Node.t * Node.t) list
(** The per-operator rule: contributions of the node's output adjoint to each
    of its inputs (inputs that receive no gradient, e.g. label tensors, are
    absent). Exposed for tests. *)
